package bench

import (
	"os"
	"sort"
	"testing"
)

func BenchmarkTellFullRefit100(b *testing.B)   { TellFullRefit(100)(b) }
func BenchmarkTellFullRefit400(b *testing.B)   { TellFullRefit(400)(b) }
func BenchmarkTellIncremental100(b *testing.B) { TellIncremental(100)(b) }
func BenchmarkTellIncremental400(b *testing.B) { TellIncremental(400)(b) }
func BenchmarkTellLowRank400(b *testing.B)     { TellLowRank(400)(b) }
func BenchmarkTellLadder400(b *testing.B)      { TellLadder(400)(b) }

// TestIncrementalTellSpeedupGated asserts the headline claim of the
// incremental machinery: at history length 400 the rank-1 maintenance path is
// at least 5x faster than a frozen-hyperparameter full refactorization. The
// observed gap is one-to-two orders of magnitude (O(n³) vs O(n²)), so the 5x
// floor leaves generous slack for noisy CI machines; the median of three
// timing runs per path absorbs scheduler outliers. Gated behind
// MFBO_BENCH_GATE because wall-clock assertions have no place in a default
// `go test` run.
func TestIncrementalTellSpeedupGated(t *testing.T) {
	if os.Getenv("MFBO_BENCH_GATE") == "" {
		t.Skip("set MFBO_BENCH_GATE=1 to run timing assertions")
	}
	median := func(f func(*testing.B)) float64 {
		var ns []float64
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(f)
			ns = append(ns, float64(r.T.Nanoseconds())/float64(r.N))
		}
		sort.Float64s(ns)
		return ns[1]
	}
	full := median(TellFullRefit(400))
	incr := median(TellIncremental(400))
	if incr <= 0 {
		t.Fatal("degenerate incremental timing")
	}
	speedup := full / incr
	t.Logf("n=400: full refit %.0f ns/op, incremental %.0f ns/op, speedup %.1fx", full, incr, speedup)
	if speedup < 5 {
		t.Fatalf("incremental Tell speedup %.2fx at n=400, want >= 5x", speedup)
	}
}

// Package bench defines the hot-path benchmark workloads shared by the
// `go test -bench` entry points in bench_test.go and by cmd/bench, which
// replays them through testing.Benchmark to emit BENCH_hotpaths.json.
//
// Every workload draws its dataset from a fixed seed and performs bit-identical
// arithmetic for every worker count (the determinism contract of
// internal/parallel), so serial-vs-parallel comparisons measure scheduling
// overhead and speedup only — never a different computation.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/acq"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/mfgp"
	"repro/internal/optimize"
	"repro/internal/stats"
)

// dataset builds a deterministic smooth regression set on [0,1]^d.
func dataset(seed int64, n, d int) (X [][]float64, y []float64, lo, hi []float64) {
	rng := rand.New(rand.NewSource(seed))
	lo = make([]float64, d)
	hi = make([]float64, d)
	for j := range hi {
		hi[j] = 1
	}
	X = stats.LatinHypercube(rng, lo, hi, n)
	y = make([]float64, n)
	for i, x := range X {
		s := 0.0
		for j, v := range x {
			s += math.Sin(3*v + float64(j))
		}
		y[i] = s + 0.01*rng.NormFloat64()
	}
	return X, y, lo, hi
}

// GPFit measures hyperparameter training: a 64-point, 6-dimensional SEARD fit
// with 4 L-BFGS restarts fanned across the given worker count.
func GPFit(workers int) func(*testing.B) {
	return func(b *testing.B) {
		X, y, _, _ := dataset(1, 64, 6)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(7))
			if _, err := gp.Fit(X, y, gp.Config{
				Kernel:   kernel.NewSEARD(6),
				Restarts: 4,
				MaxIter:  25,
				Workers:  workers,
			}, rng); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// MSP measures acquisition maximization: 24 concurrent local searches of the
// weighted-EI surface over a fitted surrogate.
func MSP(workers int) func(*testing.B) {
	return func(b *testing.B) {
		X, y, lo, hi := dataset(2, 48, 4)
		rng := rand.New(rand.NewSource(9))
		m, err := gp.Fit(X, y, gp.Config{
			Kernel: kernel.NewSEARD(4), MaxIter: 30, Workers: 1,
		}, rng)
		if err != nil {
			b.Fatal(err)
		}
		best := math.Inf(1)
		for _, v := range y {
			if v < best {
				best = v
			}
		}
		a := acq.WEI(func(x []float64) (float64, float64) { return m.PredictLatent(x) }, nil, best)
		box := optimize.NewBox(lo, hi)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := rand.New(rand.NewSource(11))
			optimize.MaximizeMSP(r, a, box, X[0], nil, optimize.MSPConfig{
				Starts: 24, LocalIter: 40, Workers: workers,
			})
		}
	}
}

// PredictBatch measures fused-posterior grid evaluation: a 512-point batch
// through a two-fidelity model, fanned across the given worker count.
func PredictBatch(workers int) func(*testing.B) {
	return func(b *testing.B) {
		m, grid := fittedMF(workers)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.PredictBatch(grid)
		}
	}
}

// PredictSingle measures the steady-state per-point prediction cost of the
// fused model — the allocation-lean path behind every acquisition call.
func PredictSingle() func(*testing.B) {
	return func(b *testing.B) {
		m, grid := fittedMF(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Predict(grid[i%len(grid)])
		}
	}
}

// fittedMF builds the shared two-fidelity surrogate and prediction grid.
func fittedMF(workers int) (*mfgp.Model, [][]float64) {
	Xl, yl, lo, hi := dataset(3, 60, 3)
	rng := rand.New(rand.NewSource(13))
	Xh := stats.LatinHypercube(rng, lo, hi, 16)
	yh := make([]float64, len(Xh))
	for i, x := range Xh {
		s := 0.0
		for j, v := range x {
			s += math.Sin(3*v + float64(j))
		}
		yh[i] = 1.1*s + 0.05
	}
	m, err := mfgp.Fit(Xl, yl, Xh, yh, mfgp.Config{
		MaxIter: 30, Workers: workers,
	}, rng)
	if err != nil {
		panic(fmt.Sprintf("bench: mfgp fit: %v", err))
	}
	grid := stats.LatinHypercube(rand.New(rand.NewSource(17)), lo, hi, 512)
	return m, grid
}

// Cholesky measures the blocked factorization on an n×n SPD Gram matrix with
// the reusable-buffer entry point — the inner solver of every surrogate fit.
func Cholesky(n int) func(*testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(19))
		g := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g.Set(i, j, rng.NormFloat64())
			}
		}
		a := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += g.At(i, k) * g.At(j, k)
				}
				if i == j {
					s += float64(n)
				}
				a.Set(i, j, s)
				a.Set(j, i, s)
			}
		}
		var reuse *linalg.Cholesky
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := linalg.NewCholeskyReuse(a, reuse)
			if err != nil {
				b.Fatal(err)
			}
			reuse = c
		}
	}
}

// GP-scaling workloads: the per-Tell surrogate maintenance cost as a function
// of history length n, for the three strategies the optimizer can run —
//
//   - full refit: refactorize the n×n Gram matrix with frozen hyperparameters
//     (the pre-incremental Tell path, O(n³)),
//   - incremental: fold the new row into the existing factor with a bordered
//     rank-1 update and retract it again (the Config.Incremental path, O(n²)),
//   - low-rank: the inducing-point surrogate's rank-1 Σ update (O(m²)).
//
// cmd/bench -scaling replays these through testing.Benchmark into
// BENCH_gp_scaling.json; the committed copy is the regression baseline CI
// compares against (speedup ratios, which are hardware-portable).
package bench

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/mfgp"
)

// ScalingSizes are the history lengths the scaling report measures.
var ScalingSizes = []int{50, 100, 200, 400}

// ScalingInducing is the inducing-point count of the low-rank workload.
const ScalingInducing = 48

const scalingDim = 4

// scalingFit trains one exact model on the first n points of the shared
// scaling dataset and returns it with the held-out next observation.
func scalingFit(b *testing.B, n int, inducing int) (m *gp.Model, xNew []float64, yNew float64) {
	X, y, _, _ := dataset(23, n+1, scalingDim)
	noise := 1e-4
	m, err := fitSeeded(X[:n], y[:n], gp.Config{
		Kernel:     kernel.NewSEARD(scalingDim),
		MaxIter:    25,
		FixedNoise: &noise,
		Inducing:   inducing,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m, X[n], y[n]
}

// TellFullRefit measures the pre-incremental Tell path at history length n: a
// from-scratch refactorization of the full Gram matrix with frozen (warm)
// hyperparameters — deliberately excluding hyperparameter search, so the
// incremental speedup is measured against the cheapest possible exact refit.
func TellFullRefit(n int) func(*testing.B) {
	return func(b *testing.B) {
		m, xNew, yNew := scalingFit(b, n, 0)
		X, y, _, _ := dataset(23, n+1, scalingDim)
		X[n], y[n] = xNew, yNew
		warm := m.Hyper()
		noise := 1e-4
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fitSeeded(X, y, gp.Config{
				Kernel:       kernel.NewSEARD(scalingDim),
				FixedNoise:   &noise,
				WarmStart:    warm,
				SkipTraining: true,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TellIncremental measures the rank-1 maintenance path at history length n:
// append the new observation via the bordered Cholesky update, then retract it
// (the same pair of operations a fantasy row costs in AskBatch).
func TellIncremental(n int) func(*testing.B) {
	return func(b *testing.B) {
		m, xNew, yNew := scalingFit(b, n, 0)
		warmAppend(b, m, n, xNew, yNew)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.AppendObservation(xNew, yNew); err != nil {
				b.Fatal(err)
			}
			if err := m.Truncate(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// warmAppend performs one append+truncate cycle before timing starts, so the
// one-off capacity growth of the factor and scratch buffers is excluded and
// every measured iteration is the steady state.
func warmAppend(b *testing.B, m *gp.Model, n int, x []float64, y float64) {
	if err := m.AppendObservation(x, y); err != nil {
		b.Fatal(err)
	}
	if err := m.Truncate(n); err != nil {
		b.Fatal(err)
	}
}

// TellLowRank measures the inducing-point surrogate's maintenance cost at
// history length n: a rank-1 update of the m×m Σ factor plus its downdate.
func TellLowRank(n int) func(*testing.B) {
	return func(b *testing.B) {
		m, xNew, yNew := scalingFit(b, n, ScalingInducing)
		if !m.IsLowRank() {
			b.Fatalf("n=%d did not produce a low-rank model", n)
		}
		warmAppend(b, m, n, xNew, yNew)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.AppendObservation(xNew, yNew); err != nil {
				b.Fatal(err)
			}
			if err := m.Truncate(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ScalingRungs is the ladder depth of the K-rung workload.
const ScalingRungs = 3

// TellLadder measures the K-rung (K = ScalingRungs) incremental Tell path at
// bottom-rung history length n: fold one observation into the TOP level of a
// recursive multi-level chain via AppendLevel's bordered rank-1 update, then
// retract it with TruncateLevel — the per-Tell maintenance cost of the
// fidelity-ladder engine between full refits. Rung sizes taper n, n/2, n/4,
// mirroring the cost-weighted sampling profile of a ladder run, so the timed
// update operates on the smallest (top) factor plus one propagated prediction
// through the chain below it.
func TellLadder(n int) func(*testing.B) {
	return func(b *testing.B) {
		sizes := [ScalingRungs]int{n, n / 2, n / 4}
		X, y, _, _ := dataset(23, n+1, scalingDim)
		var LX [][][]float64
		var Ly [][]float64
		for _, sz := range sizes {
			LX = append(LX, X[:sz])
			Ly = append(Ly, y[:sz])
		}
		noise := 1e-4
		m, err := mfgp.FitMultiLevel(LX, Ly, mfgp.MultiLevelConfig{
			MaxIter:    25,
			FixedNoise: &noise,
		}, rand.New(rand.NewSource(29)))
		if err != nil {
			b.Fatal(err)
		}
		top := ScalingRungs - 1
		xNew, yNew := X[n], y[n]
		// One untimed cycle grows the top factor's capacity (see warmAppend).
		if err := m.AppendLevel(top, xNew, yNew); err != nil {
			b.Fatal(err)
		}
		if err := m.TruncateLevel(top, sizes[top]); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.AppendLevel(top, xNew, yNew); err != nil {
				b.Fatal(err)
			}
			if err := m.TruncateLevel(top, sizes[top]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// fitSeeded runs gp.Fit with a fixed RNG seed so every benchmark iteration
// performs identical arithmetic.
func fitSeeded(X [][]float64, y []float64, cfg gp.Config) (*gp.Model, error) {
	return gp.Fit(X, y, cfg, rand.New(rand.NewSource(29)))
}

// ScalingName labels one scaling workload in reports: "Tell<Mode>/n=<n>".
func ScalingName(mode string, n int) string {
	return fmt.Sprintf("Tell%s/n=%d", mode, n)
}

package bench

import "testing"

// The serial/8-worker pairs quantify the deterministic-parallelism speedup on
// multicore hardware; on a single-CPU machine the pairs should be within
// scheduling noise of each other, never slower by more than the pool overhead.

func BenchmarkGPFitSerial(b *testing.B)          { GPFit(1)(b) }
func BenchmarkGPFitWorkers8(b *testing.B)        { GPFit(8)(b) }
func BenchmarkMSPSerial(b *testing.B)            { MSP(1)(b) }
func BenchmarkMSPWorkers8(b *testing.B)          { MSP(8)(b) }
func BenchmarkPredictBatchSerial(b *testing.B)   { PredictBatch(1)(b) }
func BenchmarkPredictBatchWorkers8(b *testing.B) { PredictBatch(8)(b) }
func BenchmarkPredictSingle(b *testing.B)        { PredictSingle()(b) }
func BenchmarkCholesky160(b *testing.B)          { Cholesky(160)(b) }

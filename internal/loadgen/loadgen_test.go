package loadgen_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/gateway"
	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/storage"
)

func TestHistQuantile(t *testing.T) {
	h := loadgen.NewHist()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty hist quantile = %v, want 0", got)
	}
	// 90 fast samples, 10 slow ones: p50 must land near the fast mode, p99
	// near the slow mode, and the estimate must never undershoot the truth by
	// more than one bucket ratio (the bound is an upper edge).
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(2 * time.Second)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < time.Millisecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ≈1ms", p50)
	}
	if p99 < 2*time.Second || p99 > 3*time.Second {
		t.Fatalf("p99 = %v, want ≈2s", p99)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Fatal("quantiles not monotone")
	}
}

func TestResultCheck(t *testing.T) {
	base := loadgen.Result{
		Sessions: 10, Completed: 10,
		Requests: 1000, Errors: 0,
		P50: 10 * time.Millisecond, P95: 50 * time.Millisecond, P99: 200 * time.Millisecond,
		Throughput: 5,
	}
	cases := []struct {
		name   string
		mutate func(*loadgen.Result)
		slo    loadgen.SLO
		want   string // substring of the violation, "" = pass
	}{
		{"all green", func(r *loadgen.Result) {}, loadgen.SLO{MaxErrorRate: 0.01, MaxP99: time.Second, MinThroughput: 1}, ""},
		{"zero SLO ignores latency", func(r *loadgen.Result) {}, loadgen.SLO{}, ""},
		{"error rate", func(r *loadgen.Result) { r.Errors = 100 }, loadgen.SLO{MaxErrorRate: 0.01}, "error rate"},
		{"errors with no tolerance", func(r *loadgen.Result) { r.Errors = 1 }, loadgen.SLO{}, "error rate"},
		{"p99", func(r *loadgen.Result) {}, loadgen.SLO{MaxP99: 100 * time.Millisecond}, "p99"},
		{"p50", func(r *loadgen.Result) {}, loadgen.SLO{MaxP50: time.Millisecond}, "p50"},
		{"throughput", func(r *loadgen.Result) {}, loadgen.SLO{MinThroughput: 100}, "throughput"},
		{"lost acks always fail", func(r *loadgen.Result) { r.Lost = []string{"lg-00001 (acked 5, history 3)"} }, loadgen.SLO{}, "lost acked"},
		{"verify mismatch always fails", func(r *loadgen.Result) { r.VerifyMismatches = []string{"lg-00000: obs 3 objective differs"} }, loadgen.SLO{}, "diverged"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := base
			tc.mutate(&r)
			err := r.Check(tc.slo)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected violation: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want violation containing %q, got %v", tc.want, err)
			}
		})
	}
}

// replica is one in-process sharded backend.
type replica struct {
	srv *server.Server
	ts  *httptest.Server
}

// newCluster boots n sharded replicas over one shared store and a gateway
// fronting them, mirroring a production 3-replica deployment in-process.
func newCluster(t *testing.T, n int, ttl time.Duration) ([]replica, *httptest.Server) {
	t.Helper()
	store := storage.NewMem(storage.MemConfig{})
	reps := make([]replica, n)
	urls := make([]string, n)
	for i := range reps {
		srv, err := server.New(server.Config{
			Store: store, ReplicaID: "r" + string(rune('a'+i)), OwnershipTTL: ttl,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		reps[i] = replica{srv: srv, ts: ts}
		urls[i] = ts.URL
	}
	gw, err := gateway.New(gateway.Config{
		Replicas:    urls,
		Ring:        shard.RingConfig{Seed: 7},
		HealthEvery: 50 * time.Millisecond,
		RetryBudget: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw)
	t.Cleanup(func() {
		gts.Close()
		gw.Close()
		for _, r := range reps {
			r.ts.Close()
			_ = r.srv.Close()
		}
	})
	return reps, gts
}

// TestLoadgenAgainstCluster: a clean 3-replica run completes every session
// with zero errors, zero lost acks, and a bit-identical verification sample.
func TestLoadgenAgainstCluster(t *testing.T) {
	_, gts := newCluster(t, 3, time.Minute)
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:       gts.URL,
		Sessions:     12,
		Concurrency:  6,
		Seed:         100,
		VerifySample: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 12 || res.Failed != 0 {
		t.Fatalf("completed %d failed %d: %+v", res.Completed, res.Failed, res)
	}
	if res.Acked == 0 {
		t.Fatal("no observations acked")
	}
	if res.Verified != 2 {
		t.Fatalf("verified %d/2: %v", res.Verified, res.VerifyMismatches)
	}
	if err := res.Check(loadgen.SLO{MaxErrorRate: 0, MaxP99: time.Minute}); err != nil {
		t.Fatalf("SLO: %v", err)
	}
}

// TestLoadgenDeleteCleansUp: with Delete on, the deployment ends the run
// empty.
func TestLoadgenDeleteCleansUp(t *testing.T) {
	_, gts := newCluster(t, 2, time.Minute)
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:   gts.URL,
		Sessions: 4, Concurrency: 2, Seed: 7, Delete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4 {
		t.Fatalf("completed %d: %v", res.Completed, res.SessionErrors)
	}
	left, err := client.New(gts.URL).Sessions(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("sessions left after delete run: %v", left)
	}
}

// TestLoadgenSurvivesReplicaKill is the headline chaos acceptance test: a
// replica is SIGKILL-equivalently destroyed mid-load (no goodbye write, no
// final persist beyond the per-observation checkpoints). Every session must
// still complete through the gateway, no acked observation may be lost, and
// a sample of sessions — including any that migrated — must match the
// in-process reference bit-for-bit.
func TestLoadgenSurvivesReplicaKill(t *testing.T) {
	const ttl = 500 * time.Millisecond
	reps, gts := newCluster(t, 3, ttl)

	done := make(chan struct{})
	var res *loadgen.Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = loadgen.Run(context.Background(), loadgen.Config{
			Target:       gts.URL,
			Sessions:     24,
			Concurrency:  8,
			Seed:         500,
			VerifySample: 4,
			Retries:      12,
		})
	}()

	// Wait until the run is warm — some sessions resident on the victim —
	// then pull the plug: Kill skips every goodbye write, exactly like a
	// SIGKILL, so its leases age out rather than being released.
	victim := reps[1]
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("victim never became warm")
		}
		resp, err := victim.ts.Client().Get(victim.ts.URL + "/v1/sessions")
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Sessions []string `json:"sessions"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err == nil && len(body.Sessions) >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	victim.srv.Kill()
	victim.ts.Close()
	t.Logf("killed replica rb mid-run")

	select {
	case <-done:
	case <-time.After(3 * time.Minute):
		t.Fatal("load run wedged after replica kill")
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.Completed != 24 || res.Failed != 0 {
		t.Fatalf("completed %d failed %d; errors: %v", res.Completed, res.Failed, res.SessionErrors)
	}
	if len(res.Lost) != 0 {
		t.Fatalf("acked observations lost: %v", res.Lost)
	}
	if res.Verified != 4 {
		t.Fatalf("verified %d/4 sessions: %v", res.Verified, res.VerifyMismatches)
	}
	// Latency may spike across the ownership handoff (one lease TTL plus
	// rerouting), but the error budget stays zero: the failover is invisible
	// to clients.
	if err := res.Check(loadgen.SLO{MaxErrorRate: 0, MaxP99: time.Minute}); err != nil {
		t.Fatalf("SLO after kill: %v", err)
	}
}

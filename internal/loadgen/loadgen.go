// Package loadgen is the closed-loop load harness for a sharded MFBO
// deployment: it drives many concurrent optimization sessions through a
// gateway (or a single replica), measuring per-request latency, throughput
// and error rate, and audits the deployment's core promise — an acked
// observation is durable, wherever the session migrates.
//
// Closed-loop means each simulated client works exactly like a real one:
// create a session, then suggest → evaluate locally → observe until the
// budget is spent. A new request is issued only after the previous reply, so
// offered load adapts to the deployment's capacity instead of overrunning it
// (the harness measures sustainable latency, not queue explosion).
//
// Three classes of failure are distinguished:
//
//   - resync conflicts (no_pending_ask, tell_mismatch, budget-exhausted race)
//     are part of the protocol's at-least-once semantics — not errors;
//   - transient transport/5xx/wrong_owner failures are retried inside the
//     client and only count as errors if the retry budget runs dry;
//   - everything else fails the session and counts against the error-rate SLO.
//
// The lost-ack audit runs after every session: its final history must contain
// at least as many observations as the harness got acks for. A shortfall
// means a replica acked an observation and then lost it — the one invariant
// a kill-a-replica chaos run must never violate. Optionally a sample of
// sessions is re-run in-process (same seed, same config) and compared
// bit-for-bit, proving migrated sessions converged exactly as an undisturbed
// single-process run would have.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/problem"
)

// Config shapes a load run.
type Config struct {
	// Target is the base URL of the gateway (or a single replica). Ignored
	// when Client is set.
	Target string
	// Client overrides the internally-built client (tests).
	Client *client.Client

	// Sessions is the number of optimization sessions to run (default 10).
	Sessions int
	// Concurrency caps how many sessions are in flight at once (default
	// min(Sessions, 16)).
	Concurrency int
	// Problem names the catalog problem every session optimizes (default
	// "forrester"). Each session gets a fresh instance and its own seed.
	Problem string
	// Budget is the per-session cost budget (default 4).
	Budget float64
	// Seed is the base RNG seed; session i runs with Seed+i.
	Seed int64
	// IDPrefix namespaces the session IDs (default "lg"). Distinct prefixes
	// let several harnesses share a deployment.
	IDPrefix string

	// Tuning mirrors the session-creation knobs (zero = harness fast
	// defaults, sized so a session completes in well under a second).
	InitLow, InitHigh       int
	MSPStarts, MSPLocalIter int
	GPMaxIter               int

	// VerifySample re-runs this many sessions in-process after the load run
	// and compares trajectories bit-for-bit (0 = skip).
	VerifySample int
	// Delete removes each session (and its persisted state) after its audit,
	// keeping long soak runs from accumulating state.
	Delete bool
	// Retries is the per-request transient-retry budget of the internal
	// client (default 8; ignored when Client is set).
	Retries int

	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 10
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.Concurrency > c.Sessions {
		c.Concurrency = c.Sessions
	}
	if c.Problem == "" {
		c.Problem = "forrester"
	}
	if c.Budget <= 0 {
		c.Budget = 4
	}
	if c.IDPrefix == "" {
		c.IDPrefix = "lg"
	}
	if c.InitLow <= 0 {
		c.InitLow = 8
	}
	if c.InitHigh <= 0 {
		c.InitHigh = 4
	}
	if c.MSPStarts <= 0 {
		c.MSPStarts = 4
	}
	if c.MSPLocalIter <= 0 {
		c.MSPLocalIter = 15
	}
	if c.GPMaxIter <= 0 {
		c.GPMaxIter = 30
	}
	if c.Retries <= 0 {
		c.Retries = 8
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// SLO are the gates a Result must clear. Zero-valued fields are unchecked;
// the durability invariants (no lost acked observation, no verification
// mismatch) are always enforced by Check.
type SLO struct {
	// MaxErrorRate is the tolerated fraction of requests that failed
	// terminally (after client-side retries).
	MaxErrorRate float64
	// MaxP50/MaxP95/MaxP99 bound the request latency quantiles.
	MaxP50, MaxP95, MaxP99 time.Duration
	// MinThroughput is the minimum completed sessions per second.
	MinThroughput float64
}

// Result summarizes a load run.
type Result struct {
	Sessions  int           `json:"sessions"`
	Completed int           `json:"completed"`
	Failed    int           `json:"failed"`
	Requests  int64         `json:"requests"`
	Errors    int64         `json:"errors"`
	Elapsed   time.Duration `json:"elapsed_ns"`

	P50, P95, P99 time.Duration `json:"-"`
	P50Seconds    float64       `json:"p50_seconds"`
	P95Seconds    float64       `json:"p95_seconds"`
	P99Seconds    float64       `json:"p99_seconds"`

	// Throughput is completed sessions per second; RequestRate is requests
	// per second.
	Throughput  float64 `json:"sessions_per_second"`
	RequestRate float64 `json:"requests_per_second"`

	// Acked counts observations the deployment acknowledged; Lost lists the
	// sessions whose final history held fewer observations than were acked —
	// the invariant violation the harness exists to catch.
	Acked int64    `json:"acked_observations"`
	Lost  []string `json:"lost_acked_sessions,omitempty"`

	// Verified counts sessions whose trajectory matched the in-process
	// reference bit-for-bit; VerifyMismatches describes the ones that did not.
	Verified         int      `json:"verified_sessions"`
	VerifyMismatches []string `json:"verify_mismatches,omitempty"`

	// SessionErrors holds the first few terminal per-session failures,
	// for diagnosis.
	SessionErrors []string `json:"session_errors,omitempty"`
}

// ErrorRate is Errors/Requests (0 when no requests were issued).
func (r *Result) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Requests)
}

// Check validates the result against the SLO. It returns every violated gate
// joined into one error, nil when all pass. The durability invariants are
// checked unconditionally.
func (r *Result) Check(slo SLO) error {
	var errs []error
	if len(r.Lost) > 0 {
		errs = append(errs, fmt.Errorf("loadgen: %d session(s) lost acked observations: %v", len(r.Lost), r.Lost))
	}
	if len(r.VerifyMismatches) > 0 {
		errs = append(errs, fmt.Errorf("loadgen: %d session(s) diverged from the in-process reference: %v", len(r.VerifyMismatches), r.VerifyMismatches))
	}
	if slo.MaxErrorRate > 0 || r.Errors > 0 {
		if rate := r.ErrorRate(); rate > slo.MaxErrorRate {
			errs = append(errs, fmt.Errorf("loadgen: error rate %.4f > %.4f (%d/%d requests)", rate, slo.MaxErrorRate, r.Errors, r.Requests))
		}
	}
	for _, g := range []struct {
		name string
		got  time.Duration
		max  time.Duration
	}{{"p50", r.P50, slo.MaxP50}, {"p95", r.P95, slo.MaxP95}, {"p99", r.P99, slo.MaxP99}} {
		if g.max > 0 && g.got > g.max {
			errs = append(errs, fmt.Errorf("loadgen: %s latency %v > %v", g.name, g.got, g.max))
		}
	}
	if slo.MinThroughput > 0 && r.Throughput < slo.MinThroughput {
		errs = append(errs, fmt.Errorf("loadgen: throughput %.2f sessions/s < %.2f", r.Throughput, slo.MinThroughput))
	}
	return errors.Join(errs...)
}

// runner is the shared state of one load run.
type runner struct {
	cfg      Config
	cl       *client.Client
	hist     *Hist
	requests atomic.Int64
	errs     atomic.Int64
	acked    atomic.Int64

	mu        sync.Mutex
	lost      []string
	failures  []string
	completed int
	failed    int
}

// Run executes the load run and returns its measurements. The returned error
// covers harness-level failures only (bad config, cancelled context); SLO
// verdicts live in Result.Check so callers can inspect measurements either way.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if _, err := catalog.Lookup(cfg.Problem); err != nil {
		return nil, err
	}
	cl := cfg.Client
	if cl == nil {
		if cfg.Target == "" {
			return nil, errors.New("loadgen: Target or Client required")
		}
		cl = client.New(cfg.Target, client.WithRetries(cfg.Retries))
	}
	r := &runner{cfg: cfg, cl: cl, hist: NewHist()}

	start := time.Now()
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				r.session(ctx, i)
			}
		}()
	}
	for i := 0; i < cfg.Sessions; i++ {
		select {
		case indices <- i:
		case <-ctx.Done():
			i = cfg.Sessions // stop feeding; drain workers
		}
	}
	close(indices)
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Sessions:  cfg.Sessions,
		Completed: r.completed,
		Failed:    r.failed,
		Requests:  r.requests.Load(),
		Errors:    r.errs.Load(),
		Elapsed:   elapsed,
		P50:       r.hist.Quantile(0.50),
		P95:       r.hist.Quantile(0.95),
		P99:       r.hist.Quantile(0.99),
		Acked:     r.acked.Load(),
		Lost:      r.lost,
	}
	res.P50Seconds, res.P95Seconds, res.P99Seconds = res.P50.Seconds(), res.P95.Seconds(), res.P99.Seconds()
	if s := elapsed.Seconds(); s > 0 {
		res.Throughput = float64(res.Completed) / s
		res.RequestRate = float64(res.Requests) / s
	}
	res.SessionErrors = r.failures
	if cfg.VerifySample > 0 {
		r.verify(ctx, res)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// sessionID names session i of the run.
func (c Config) sessionID(i int) string { return fmt.Sprintf("%s-%05d", c.IDPrefix, i) }

// request builds the creation request for session i.
func (c Config) request(i int) api.CreateSessionRequest {
	return api.CreateSessionRequest{
		ID:           c.sessionID(i),
		Problem:      c.Problem,
		Seed:         c.Seed + int64(i),
		Budget:       c.Budget,
		InitLow:      c.InitLow,
		InitHigh:     c.InitHigh,
		MSPStarts:    c.MSPStarts,
		MSPLocalIter: c.MSPLocalIter,
		GPMaxIter:    c.GPMaxIter,
	}
}

// coreConfig is the in-process equivalent of request(i) — the pair must stay
// in lockstep for the bit-identical verification to be meaningful.
func (c Config) coreConfig() core.Config {
	return core.Config{
		Budget:    c.Budget,
		InitLow:   c.InitLow,
		InitHigh:  c.InitHigh,
		MSP:       optimize.MSPConfig{Starts: c.MSPStarts, LocalIter: c.MSPLocalIter},
		GPMaxIter: c.GPMaxIter,
	}
}

// timed runs one request, recording its user-perceived latency (client-side
// retries included) and whether it terminally failed.
func (r *runner) timed(f func() error) error {
	start := time.Now()
	err := f()
	r.hist.Observe(time.Since(start))
	r.requests.Add(1)
	if err != nil && !isResync(err) {
		r.errs.Add(1)
	}
	return err
}

// isResync reports whether err is an expected at-least-once conflict rather
// than a failure: the suggestion was consumed concurrently, the ack was lost
// after ingestion, or the budget ran out between suggest and observe.
func isResync(err error) bool {
	return errors.Is(err, core.ErrNoPendingAsk) ||
		errors.Is(err, core.ErrTellMismatch) ||
		errors.Is(err, core.ErrBudgetExhausted)
}

// session drives one full optimization and audits it.
func (r *runner) session(ctx context.Context, i int) {
	id := r.cfg.sessionID(i)
	if err := r.drive(ctx, i, id); err != nil {
		r.mu.Lock()
		r.failed++
		if len(r.failures) < 8 {
			r.failures = append(r.failures, fmt.Sprintf("%s: %v", id, err))
		}
		r.mu.Unlock()
		r.cfg.Logf("session %s failed: %v", id, err)
		return
	}
	r.mu.Lock()
	r.completed++
	done := r.completed
	r.mu.Unlock()
	if done%50 == 0 {
		r.cfg.Logf("%d/%d sessions complete", done, r.cfg.Sessions)
	}
}

func (r *runner) drive(ctx context.Context, i int, id string) error {
	p, err := catalog.Lookup(r.cfg.Problem) // fresh instance: problems may carry caches
	if err != nil {
		return err
	}
	if err := r.timed(func() error {
		_, e := r.cl.CreateSession(ctx, r.cfg.request(i))
		return e
	}); err != nil {
		return fmt.Errorf("create: %w", err)
	}
	var acks int64
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var sug api.Suggestion
		if err := r.timed(func() error {
			var e error
			sug, e = r.cl.Suggest(ctx, id)
			return e
		}); err != nil {
			return fmt.Errorf("suggest: %w", err)
		}
		if sug.Done {
			break
		}
		ev, everr := problem.EvaluateRich(p, sug.X, problem.Fidelity(sug.Fidelity))
		if everr != nil {
			ev.Failed = true
		}
		obErr := r.timed(func() error {
			_, e := r.cl.Observe(ctx, id, api.Observation{
				X:           sug.X,
				Fidelity:    sug.Fidelity,
				Objective:   ev.Objective,
				Constraints: ev.Constraints,
				Failed:      ev.Failed,
			})
			return e
		})
		switch {
		case obErr == nil:
			acks++
			r.acked.Add(1)
		case isResync(obErr):
			// Maybe ingested, maybe not: the idempotent Suggest re-syncs.
			// Deliberately NOT counted as an ack — the lost-ack audit only
			// asserts about observations the deployment acknowledged.
		default:
			return fmt.Errorf("observe: %w", obErr)
		}
	}

	// Lost-ack audit: everything acked must be in the final history.
	var hist api.HistoryReply
	if err := r.timed(func() error {
		var e error
		hist, e = r.cl.History(ctx, id)
		return e
	}); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	if int64(len(hist.Observations)) < acks {
		r.mu.Lock()
		r.lost = append(r.lost, fmt.Sprintf("%s (acked %d, history %d)", id, acks, len(hist.Observations)))
		r.mu.Unlock()
	}
	if r.cfg.Delete {
		if err := r.timed(func() error { return r.cl.Delete(ctx, id) }); err != nil {
			return fmt.Errorf("delete: %w", err)
		}
	}
	return nil
}

// verify re-runs the first VerifySample sessions in-process and compares the
// remote trajectory bit-for-bit. Skipped for sessions that failed or were
// deleted.
func (r *runner) verify(ctx context.Context, res *Result) {
	if r.cfg.Delete {
		res.VerifyMismatches = append(res.VerifyMismatches, "verify requires Delete=false (histories gone)")
		return
	}
	n := r.cfg.VerifySample
	if n > r.cfg.Sessions {
		n = r.cfg.Sessions
	}
	for i := 0; i < n; i++ {
		id := r.cfg.sessionID(i)
		hist, err := r.cl.History(ctx, id)
		if err != nil {
			res.VerifyMismatches = append(res.VerifyMismatches, fmt.Sprintf("%s: history: %v", id, err))
			continue
		}
		p, err := catalog.Lookup(r.cfg.Problem)
		if err != nil {
			res.VerifyMismatches = append(res.VerifyMismatches, fmt.Sprintf("%s: %v", id, err))
			continue
		}
		ref, err := core.Optimize(p, r.cfg.coreConfig(), rand.New(rand.NewSource(r.cfg.Seed+int64(i))))
		if err != nil {
			res.VerifyMismatches = append(res.VerifyMismatches, fmt.Sprintf("%s: reference run: %v", id, err))
			continue
		}
		if diff := diffHistory(hist.Observations, ref.History); diff != "" {
			res.VerifyMismatches = append(res.VerifyMismatches, fmt.Sprintf("%s: %s", id, diff))
			continue
		}
		res.Verified++
	}
	r.cfg.Logf("verified %d/%d sampled sessions bit-identical", res.Verified, n)
}

// diffHistory compares a remote history against an in-process reference
// bit-for-bit; "" means identical.
func diffHistory(hist []api.HistoryObservation, ref []core.Observation) string {
	if len(hist) != len(ref) {
		return fmt.Sprintf("length %d vs reference %d", len(hist), len(ref))
	}
	for i := range hist {
		h, want := hist[i], ref[i]
		if h.Fidelity != int(want.Fid) || h.Iter != want.Iter || h.Failed != want.Eval.Failed {
			return fmt.Sprintf("obs %d metadata differs", i)
		}
		if len(h.X) != len(want.X) || len(h.Constraints) != len(want.Eval.Constraints) {
			return fmt.Sprintf("obs %d shape differs", i)
		}
		for j := range h.X {
			if math.Float64bits(h.X[j]) != math.Float64bits(want.X[j]) {
				return fmt.Sprintf("obs %d x[%d] differs", i, j)
			}
		}
		if math.Float64bits(h.Objective) != math.Float64bits(want.Eval.Objective) {
			return fmt.Sprintf("obs %d objective differs", i)
		}
		for j := range h.Constraints {
			if math.Float64bits(h.Constraints[j]) != math.Float64bits(want.Eval.Constraints[j]) {
				return fmt.Sprintf("obs %d constraint %d differs", i, j)
			}
		}
		if math.Float64bits(h.CumCost) != math.Float64bits(want.CumCost) {
			return fmt.Sprintf("obs %d cumulative cost differs", i)
		}
	}
	return ""
}

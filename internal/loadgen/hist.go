package loadgen

import (
	"sync/atomic"
	"time"
)

// histBounds are the geometric bucket upper bounds shared by every Hist:
// 10µs growing by ×1.3 per bucket until one hour is covered. Quantile
// estimates are therefore conservative to within +30% — fine for SLO gating,
// where the gate must not pass on an estimate below the true latency.
var histBounds = func() []time.Duration {
	var b []time.Duration
	for d := 10 * time.Microsecond; d < time.Hour; d = d * 13 / 10 {
		b = append(b, d)
	}
	return append(b, time.Hour)
}()

// Hist is a fixed-bucket latency histogram safe for concurrent Observe.
type Hist struct {
	counts []atomic.Uint64 // one per bound, plus overflow at the end
	total  atomic.Uint64
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make([]atomic.Uint64, len(histBounds)+1)}
}

// Observe records one sample.
func (h *Hist) Observe(d time.Duration) {
	i := 0
	for i < len(histBounds) && d > histBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.total.Load() }

// Quantile returns an upper bound for the q-th quantile (q in [0,1]): the
// upper edge of the bucket holding the q·N-th sample. Zero when empty.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > rank {
			if i < len(histBounds) {
				return histBounds[i]
			}
			return histBounds[len(histBounds)-1] // overflow: clamp to the top edge
		}
	}
	return histBounds[len(histBounds)-1]
}

package acq

import (
	"math"

	"repro/internal/parallel"
)

// EvalBatch evaluates a scalar acquisition over a candidate grid on up to
// workers goroutines (0 = default, 1 = serial). Slot i receives exactly
// f(xs[i]) — the output is bit-identical to the serial loop for any worker
// count as long as f is a pure function, which every acquisition built from
// the library's surrogate posteriors is. f must be safe for concurrent calls
// when workers != 1.
func EvalBatch(workers int, f func([]float64) float64, xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	parallel.ForEach(parallel.Workers(workers), len(xs), func(i int) {
		out[i] = f(xs[i])
	})
	return out
}

// EvalBatchPosterior fans a surrogate posterior over a candidate grid,
// returning per-point means and variances with the same determinism contract
// as EvalBatch.
func EvalBatchPosterior(workers int, p Posterior, xs [][]float64) (means, variances []float64) {
	means = make([]float64, len(xs))
	variances = make([]float64, len(xs))
	parallel.ForEach(parallel.Workers(workers), len(xs), func(i int) {
		means[i], variances[i] = p(xs[i])
	})
	return means, variances
}

// ArgMax returns the index of the largest finite value in vals, breaking
// ties toward the lowest index (the deterministic reduction used after a
// parallel EvalBatch). It returns −1 when vals holds no finite value.
func ArgMax(vals []float64) int {
	best := -1
	bestV := math.Inf(-1)
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if best == -1 || v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

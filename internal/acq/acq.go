// Package acq implements the acquisition functions of §2.4: expected
// improvement (eq. 5), probability of feasibility, the weighted expected
// improvement wEI = EI·ΠPF (eq. 6) used by both the proposed method and the
// WEIBO baseline, lower/upper confidence bounds (used by GASPAD), and the
// first-feasible bootstrap objective of §4.2 (eq. 13).
//
// All functions treat optimization as MINIMIZATION of the objective and
// constraints of the form c_i(x) < 0, matching eq. (1).
package acq

import (
	"math"

	"repro/internal/stats"
)

// Posterior returns the posterior mean and variance of a surrogate at x.
// It is the only coupling between this package and the model packages, so
// single-fidelity GPs, fused multi-fidelity models and test doubles all plug
// in uniformly.
type Posterior func(x []float64) (mean, variance float64)

// EI returns the expected improvement of a Gaussian posterior N(mu, sigma2)
// over the incumbent tau, for minimization (eq. 5):
//
//	EI = σ·(λΦ(λ) + φ(λ)),  λ = (τ − µ)/σ.
//
// When sigma2 is (numerically) zero it degrades gracefully to the
// deterministic improvement max(0, τ−µ).
func EI(mu, sigma2, tau float64) float64 {
	sigma := math.Sqrt(math.Max(sigma2, 0))
	if sigma < 1e-12 {
		return math.Max(0, tau-mu)
	}
	lambda := (tau - mu) / sigma
	// Tail guards: for λ ≪ 0 both terms underflow (and λ·Φ(λ) would evaluate
	// as −Inf·0 = NaN at extreme magnitudes); for λ ≫ 0, EI → τ−µ.
	if lambda < -40 {
		return 0
	}
	if lambda > 40 {
		return tau - mu
	}
	return sigma * (lambda*stats.NormCDF(lambda) + stats.NormPDF(lambda))
}

// LogEI returns log(EI) computed stably for very negative λ, where EI
// underflows; useful when comparing tiny acquisition values far from the
// incumbent.
func LogEI(mu, sigma2, tau float64) float64 {
	sigma := math.Sqrt(math.Max(sigma2, 0))
	if sigma < 1e-12 {
		imp := tau - mu
		if imp <= 0 {
			return math.Inf(-1)
		}
		return math.Log(imp)
	}
	lambda := (tau - mu) / sigma
	if lambda > -6 {
		v := lambda*stats.NormCDF(lambda) + stats.NormPDF(lambda)
		if v <= 0 {
			return math.Inf(-1)
		}
		return math.Log(sigma) + math.Log(v)
	}
	// Tail: EI ≈ σ·φ(λ)/λ² for λ → −∞ (from the asymptotics of Mills ratio).
	return math.Log(sigma) - 0.5*lambda*lambda - 0.5*math.Log(2*math.Pi) - 2*math.Log(-lambda)
}

// PF returns the probability of feasibility Φ(−µ/σ) of a constraint modelled
// as c(x) ~ N(mu, sigma2) with feasibility c(x) < 0. A deterministic
// posterior (σ≈0) returns a hard 0/1 indicator.
func PF(mu, sigma2 float64) float64 {
	sigma := math.Sqrt(math.Max(sigma2, 0))
	if sigma < 1e-12 {
		if mu < 0 {
			return 1
		}
		return 0
	}
	return stats.NormCDF(-mu / sigma)
}

// WEI builds the weighted expected improvement acquisition of eq. (6):
//
//	wEI(x) = EI_obj(x) · Π_i PF_i(x).
//
// tau is the incumbent objective value among FEASIBLE observations. cons may
// be empty, in which case WEI reduces to plain EI.
func WEI(obj Posterior, cons []Posterior, tau float64) func(x []float64) float64 {
	return func(x []float64) float64 {
		mu, v := obj(x)
		a := EI(mu, v, tau)
		for _, c := range cons {
			cm, cv := c(x)
			a *= PF(cm, cv)
		}
		return a
	}
}

// PFOnly builds the pure feasibility-seeking acquisition Π_i PF_i(x), used
// when no feasible incumbent exists yet and EI is undefined.
func PFOnly(cons []Posterior) func(x []float64) float64 {
	return func(x []float64) float64 {
		a := 1.0
		for _, c := range cons {
			cm, cv := c(x)
			a *= PF(cm, cv)
		}
		return a
	}
}

// LCB returns the lower confidence bound µ − β·σ (for minimization); GASPAD
// uses it for prescreening evolutionary candidates.
func LCB(mu, sigma2, beta float64) float64 {
	return mu - beta*math.Sqrt(math.Max(sigma2, 0))
}

// UCB returns the upper confidence bound µ + β·σ.
func UCB(mu, sigma2, beta float64) float64 {
	return mu + beta*math.Sqrt(math.Max(sigma2, 0))
}

// FeasibilityObjective builds the §4.2 bootstrap objective (eq. 13)
//
//	minimize Σ_i max(0, µ_i(x)),
//
// the sum of predicted constraint violations, used to drive the search into a
// feasible region before any feasible point is known. The returned function
// is to be MINIMIZED.
func FeasibilityObjective(cons []Posterior) func(x []float64) float64 {
	return func(x []float64) float64 {
		s := 0.0
		for _, c := range cons {
			cm, _ := c(x)
			if cm > 0 {
				s += cm
			}
		}
		return s
	}
}

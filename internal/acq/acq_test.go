package acq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEIKnownValue(t *testing.T) {
	// µ = τ, σ = 1 → λ = 0 → EI = φ(0) = 1/√(2π).
	want := 1 / math.Sqrt(2*math.Pi)
	if got := EI(0, 1, 0); math.Abs(got-want) > 1e-14 {
		t.Fatalf("EI = %v, want %v", got, want)
	}
}

func TestEIDeterministicLimit(t *testing.T) {
	if got := EI(1, 0, 3); got != 2 {
		t.Fatalf("EI(σ=0) = %v, want 2", got)
	}
	if got := EI(5, 0, 3); got != 0 {
		t.Fatalf("EI(σ=0, worse) = %v, want 0", got)
	}
}

func TestEINonNegativeProperty(t *testing.T) {
	f := func(mu, logv, tau float64) bool {
		v := math.Exp(math.Mod(logv, 10))
		e := EI(mu, v, tau)
		return e >= 0 && !math.IsNaN(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEIMonotoneInIncumbent(t *testing.T) {
	// A worse (larger) incumbent means more room to improve.
	if EI(0, 1, 1) <= EI(0, 1, 0.5) {
		t.Fatal("EI should increase with tau")
	}
}

func TestEIMonotoneInSigmaAtMean(t *testing.T) {
	// At µ = τ, EI grows with uncertainty (exploration).
	if EI(0, 4, 0) <= EI(0, 1, 0) {
		t.Fatal("EI should grow with variance at λ=0")
	}
}

func TestLogEIMatchesLogOfEI(t *testing.T) {
	for _, c := range []struct{ mu, v, tau float64 }{
		{0, 1, 0}, {1, 2, 0.5}, {-1, 0.3, -0.5}, {2, 1, 1.5},
	} {
		want := math.Log(EI(c.mu, c.v, c.tau))
		got := LogEI(c.mu, c.v, c.tau)
		if math.Abs(got-want) > 1e-8 {
			t.Fatalf("LogEI(%v,%v,%v) = %v, want %v", c.mu, c.v, c.tau, got, want)
		}
	}
}

func TestLogEIStableInTail(t *testing.T) {
	// Far above the incumbent, EI underflows but LogEI must stay finite and
	// monotone decreasing in µ.
	a := LogEI(50, 1, 0)
	b := LogEI(60, 1, 0)
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		t.Fatalf("tail LogEI not finite: %v %v", a, b)
	}
	if b >= a {
		t.Fatalf("LogEI should decrease with µ: %v vs %v", a, b)
	}
}

func TestPF(t *testing.T) {
	if got := PF(0, 1); math.Abs(got-0.5) > 1e-14 {
		t.Fatalf("PF(0,1) = %v, want 0.5", got)
	}
	if PF(-3, 1) <= PF(3, 1) {
		t.Fatal("PF should favor negative (feasible) means")
	}
	if got := PF(-1, 0); got != 1 {
		t.Fatalf("deterministic feasible PF = %v", got)
	}
	if got := PF(1, 0); got != 0 {
		t.Fatalf("deterministic infeasible PF = %v", got)
	}
}

func TestPFBounds(t *testing.T) {
	f := func(mu, logv float64) bool {
		v := math.Exp(math.Mod(logv, 10))
		p := PF(mu, v)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func constPosterior(mu, v float64) Posterior {
	return func([]float64) (float64, float64) { return mu, v }
}

func TestWEIReducesToEIWithoutConstraints(t *testing.T) {
	w := WEI(constPosterior(0.2, 0.5), nil, 1)
	if got, want := w([]float64{0}), EI(0.2, 0.5, 1); math.Abs(got-want) > 1e-15 {
		t.Fatalf("wEI = %v, want EI %v", got, want)
	}
}

func TestWEIPenalizesInfeasibleRegions(t *testing.T) {
	obj := constPosterior(0, 1)
	feasible := WEI(obj, []Posterior{constPosterior(-2, 0.5)}, 1)
	infeasible := WEI(obj, []Posterior{constPosterior(+2, 0.5)}, 1)
	x := []float64{0}
	if feasible(x) <= infeasible(x) {
		t.Fatal("wEI should favor likely-feasible regions")
	}
}

func TestWEIMultipleConstraintsMultiply(t *testing.T) {
	obj := constPosterior(0, 1)
	c := constPosterior(0, 1) // PF = 0.5 each
	one := WEI(obj, []Posterior{c}, 1)
	two := WEI(obj, []Posterior{c, c}, 1)
	x := []float64{0}
	if math.Abs(two(x)-0.5*one(x)) > 1e-12 {
		t.Fatalf("two constraints %v, want half of %v", two(x), one(x))
	}
}

func TestPFOnly(t *testing.T) {
	a := PFOnly([]Posterior{constPosterior(0, 1), constPosterior(0, 1)})
	if got := a([]float64{0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("PFOnly = %v, want 0.25", got)
	}
	if got := PFOnly(nil)([]float64{0}); got != 1 {
		t.Fatalf("PFOnly(nil) = %v, want 1", got)
	}
}

func TestLCBUCB(t *testing.T) {
	if got := LCB(1, 4, 2); got != 1-4 {
		t.Fatalf("LCB = %v, want -3", got)
	}
	if got := UCB(1, 4, 2); got != 1+4 {
		t.Fatalf("UCB = %v, want 5", got)
	}
	if LCB(1, 4, 2) > UCB(1, 4, 2) {
		t.Fatal("LCB must not exceed UCB")
	}
}

func TestFeasibilityObjective(t *testing.T) {
	cons := []Posterior{constPosterior(2, 1), constPosterior(-3, 1), constPosterior(0.5, 1)}
	f := FeasibilityObjective(cons)
	if got := f([]float64{0}); math.Abs(got-2.5) > 1e-14 {
		t.Fatalf("violation sum = %v, want 2.5", got)
	}
	// All-feasible means zero violation.
	g := FeasibilityObjective([]Posterior{constPosterior(-1, 1)})
	if got := g([]float64{0}); got != 0 {
		t.Fatalf("feasible violation = %v, want 0", got)
	}
}

func TestEIGradientSignNearIncumbent(t *testing.T) {
	// The paper's Figure 2 observation: EI is flat (≈0 gradient) in a
	// confident region at the incumbent value, motivating incumbent-local
	// MSP seeding. Verify EI at the incumbent with tiny variance is ≈0.
	eps := 1e-10
	if got := EI(0, eps, 0); got > 1e-5 {
		t.Fatalf("EI at confident incumbent = %v, want ≈0", got)
	}
}

func TestRandomizedWEIConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		mu := rng.NormFloat64()
		v := math.Abs(rng.NormFloat64()) + 0.1
		tau := rng.NormFloat64()
		cm := rng.NormFloat64()
		cv := math.Abs(rng.NormFloat64()) + 0.1
		w := WEI(constPosterior(mu, v), []Posterior{constPosterior(cm, cv)}, tau)([]float64{0})
		want := EI(mu, v, tau) * PF(cm, cv)
		if math.Abs(w-want) > 1e-12 {
			t.Fatalf("wEI composition mismatch: %v vs %v", w, want)
		}
	}
}

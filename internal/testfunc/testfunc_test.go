package testfunc

import (
	"math"
	"testing"

	"repro/internal/problem"
)

func TestPedagogicalValues(t *testing.T) {
	// f_l(1/16) = sin(π/2) = 1; f_h = (1/16 − √2)·1.
	x := 1.0 / 16
	if got := PedagogicalLow(x); math.Abs(got-1) > 1e-12 {
		t.Fatalf("low(%v) = %v, want 1", x, got)
	}
	if got, want := PedagogicalHigh(x), x-math.Sqrt2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("high(%v) = %v, want %v", x, got, want)
	}
	// Zeros of sin(8πx) are zeros of f_h.
	if got := PedagogicalHigh(0.25); math.Abs(got) > 1e-12 {
		t.Fatalf("high(0.25) = %v, want 0", got)
	}
}

func TestPedagogicalProblemInterface(t *testing.T) {
	p := Pedagogical()
	if p.Dim() != 1 || p.NumConstraints() != 0 {
		t.Fatal("pedagogical shape wrong")
	}
	lo, hi := p.Bounds()
	if lo[0] != 0 || hi[0] != 1 {
		t.Fatalf("bounds [%v, %v]", lo, hi)
	}
	e := p.Evaluate([]float64{0.5}, problem.High)
	if math.Abs(e.Objective-PedagogicalHigh(0.5)) > 1e-15 {
		t.Fatal("Evaluate(high) disagrees with HighFn")
	}
	e = p.Evaluate([]float64{0.5}, problem.Low)
	if math.Abs(e.Objective-PedagogicalLow(0.5)) > 1e-15 {
		t.Fatal("Evaluate(low) disagrees with LowFn")
	}
	if p.Cost(problem.Low) >= p.Cost(problem.High) {
		t.Fatal("low fidelity must be cheaper")
	}
}

func TestForresterKnownMinimum(t *testing.T) {
	p := Forrester()
	// Global minimum near x ≈ 0.7572, f ≈ −6.0207.
	got := p.HighFn([]float64{0.757249})
	if math.Abs(got-(-6.02074)) > 1e-3 {
		t.Fatalf("forrester min value %v, want ≈ -6.0207", got)
	}
	// Low fidelity differs from high (it is a biased transform).
	if math.Abs(p.LowFn([]float64{0.3})-p.HighFn([]float64{0.3})) < 1e-9 {
		t.Fatal("low fidelity should be biased")
	}
}

func TestBraninKnownMinima(t *testing.T) {
	// Branin has three global minima with value ≈ 0.397887.
	for _, pt := range [][]float64{{-math.Pi, 12.275}, {math.Pi, 2.275}, {9.42478, 2.475}} {
		if got := braninValue(pt[0], pt[1]); math.Abs(got-0.397887) > 1e-4 {
			t.Fatalf("branin(%v) = %v, want 0.397887", pt, got)
		}
	}
}

func TestBraninMFCorrelated(t *testing.T) {
	p := BraninMF()
	// Low and high should be positively correlated over the domain.
	var sumH, sumL, sumHL, sumHH, sumLL float64
	n := 0
	for i := 0; i <= 10; i++ {
		for j := 0; j <= 10; j++ {
			x := []float64{-5 + 15*float64(i)/10, 15 * float64(j) / 10}
			h, l := p.HighFn(x), p.LowFn(x)
			sumH += h
			sumL += l
			sumHL += h * l
			sumHH += h * h
			sumLL += l * l
			n++
		}
	}
	fn := float64(n)
	cov := sumHL/fn - (sumH/fn)*(sumL/fn)
	corr := cov / math.Sqrt((sumHH/fn-(sumH/fn)*(sumH/fn))*(sumLL/fn-(sumL/fn)*(sumL/fn)))
	if corr < 0.8 {
		t.Fatalf("branin MF correlation %v too low", corr)
	}
}

func TestCurrinFinite(t *testing.T) {
	p := CurrinMF()
	// x2 = 0 exercises the 1/(2·x2) guard.
	for _, x := range [][]float64{{0, 0}, {1, 0}, {0.5, 0.5}, {1, 1}, {0, 1}} {
		h, l := p.HighFn(x), p.LowFn(x)
		if math.IsNaN(h) || math.IsInf(h, 0) || math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("currin not finite at %v: %v / %v", x, h, l)
		}
	}
}

func TestParkFinite(t *testing.T) {
	p := ParkMF()
	for _, x := range [][]float64{{0, 0, 0, 0}, {1, 1, 1, 1}, {0, 1, 0.5, 0.3}} {
		h, l := p.HighFn(x), p.LowFn(x)
		if math.IsNaN(h) || math.IsInf(h, 0) || math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("park not finite at %v: %v / %v", x, h, l)
		}
	}
	if p.Dim() != 4 {
		t.Fatalf("park dim %d", p.Dim())
	}
}

func TestBoreholeProperties(t *testing.T) {
	p := BoreholeMF()
	if p.Dim() != 8 {
		t.Fatalf("borehole dim %d", p.Dim())
	}
	lo, hi := p.Bounds()
	mid := make([]float64, 8)
	for i := range mid {
		mid[i] = 0.5 * (lo[i] + hi[i])
	}
	h, l := p.HighFn(mid), p.LowFn(mid)
	// Physical flow rate is positive and O(10-300) m³/yr at mid-domain.
	if h <= 0 || h > 500 {
		t.Fatalf("borehole high %v implausible", h)
	}
	if l <= 0 || l > 500 {
		t.Fatalf("borehole low %v implausible", l)
	}
	if h == l {
		t.Fatal("fidelities should differ")
	}
	// Flow grows with the head difference Hu − Hl.
	moreHead := append([]float64(nil), mid...)
	moreHead[3] = hi[3]
	if p.HighFn(moreHead) <= h {
		t.Fatal("flow should increase with Hu")
	}
	// And with well radius rw.
	widerWell := append([]float64(nil), mid...)
	widerWell[0] = hi[0]
	if p.HighFn(widerWell) <= h {
		t.Fatal("flow should increase with rw")
	}
}

func TestBoreholeFidelityCorrelation(t *testing.T) {
	p := BoreholeMF()
	lo, hi := p.Bounds()
	var hs, ls []float64
	// Deterministic grid walk across the domain diagonal + perturbations.
	for k := 0; k < 30; k++ {
		x := make([]float64, 8)
		for i := range x {
			f := math.Mod(float64(k)*0.137+float64(i)*0.31, 1.0)
			x[i] = lo[i] + f*(hi[i]-lo[i])
		}
		hs = append(hs, p.HighFn(x))
		ls = append(ls, p.LowFn(x))
	}
	var mh, ml float64
	for i := range hs {
		mh += hs[i]
		ml += ls[i]
	}
	mh /= float64(len(hs))
	ml /= float64(len(ls))
	var sab, saa, sbb float64
	for i := range hs {
		da, db := hs[i]-mh, ls[i]-ml
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if corr := sab / math.Sqrt(saa*sbb); corr < 0.9 {
		t.Fatalf("borehole fidelity correlation %v too weak", corr)
	}
}

func TestConstrainedSyntheticOptimum(t *testing.T) {
	p := ConstrainedSynthetic()
	xOpt, fOpt := ConstrainedSyntheticOptimum()
	e := p.Evaluate(xOpt, problem.High)
	if math.Abs(e.Objective-fOpt) > 1e-12 {
		t.Fatalf("optimum objective %v, want %v", e.Objective, fOpt)
	}
	// The optimum is exactly on the constraint boundary.
	if math.Abs(e.Constraints[0]) > 1e-12 {
		t.Fatalf("optimum constraint %v, want 0", e.Constraints[0])
	}
	// A slightly-interior point is feasible with a slightly worse objective.
	eIn := p.Evaluate([]float64{0.5, 0.5}, problem.High)
	if !eIn.Feasible() {
		t.Fatal("interior point should be feasible")
	}
	if eIn.Objective <= fOpt {
		t.Fatal("interior point should not beat the optimum")
	}
	// An infeasible point.
	eOut := p.Evaluate([]float64{0.1, 0.1}, problem.High)
	if eOut.Feasible() {
		t.Fatal("(0.1, 0.1) should violate x1·x2 > 0.2")
	}
}

func TestHartmann3KnownMinimum(t *testing.T) {
	p := Hartmann3()
	// Global minimum f(0.1146, 0.5556, 0.8525) ≈ −3.8628.
	got := p.HighFn([]float64{0.114614, 0.555649, 0.852547})
	if math.Abs(got-(-3.86278)) > 1e-3 {
		t.Fatalf("hartmann3 min %v, want ≈ -3.8628", got)
	}
}

func TestEvaluatePanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pedagogical().Evaluate([]float64{0.1, 0.2}, problem.High)
}

func TestNewCustomFunc(t *testing.T) {
	f := New("custom", []float64{0}, []float64{2}, 1,
		func(x []float64) (float64, []float64) { return x[0], []float64{-1} },
		func(x []float64) (float64, []float64) { return 2 * x[0], []float64{-1} },
		0.5, 2)
	if f.Name() != "custom" || f.NumConstraints() != 1 {
		t.Fatal("custom func metadata wrong")
	}
	if f.Cost(problem.Low) != 0.5 || f.Cost(problem.High) != 2 {
		t.Fatal("custom costs wrong")
	}
	e := f.Evaluate([]float64{1}, problem.Low)
	if e.Objective != 2 || !e.Feasible() {
		t.Fatalf("custom eval %+v", e)
	}
}

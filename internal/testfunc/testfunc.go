// Package testfunc provides synthetic two-fidelity benchmark problems used
// by the test suite, the figures and the ablation benchmarks: the
// pedagogical 1-D pair from Perdikaris et al. (2017) that the paper's
// Figures 1–2 are built on, the classic Forrester, Branin, Currin and Park
// multi-fidelity pairs, and a small constrained problem with a known
// optimum for exercising the constrained-BO machinery.
package testfunc

import (
	"fmt"
	"math"

	"repro/internal/problem"
)

// Func is a synthetic two-fidelity problem.
type Func struct {
	name     string
	lo, hi   []float64
	nc       int
	high     func(x []float64) (float64, []float64)
	low      func(x []float64) (float64, []float64)
	costLow  float64
	costHigh float64
}

var _ problem.Problem = (*Func)(nil)

// Name implements problem.Problem.
func (f *Func) Name() string { return f.name }

// Dim implements problem.Problem.
func (f *Func) Dim() int { return len(f.lo) }

// Bounds implements problem.Problem.
func (f *Func) Bounds() (lo, hi []float64) {
	return append([]float64(nil), f.lo...), append([]float64(nil), f.hi...)
}

// NumConstraints implements problem.Problem.
func (f *Func) NumConstraints() int { return f.nc }

// Evaluate implements problem.Problem.
func (f *Func) Evaluate(x []float64, fid problem.Fidelity) problem.Evaluation {
	if len(x) != len(f.lo) {
		panic(fmt.Sprintf("testfunc %s: point dim %d != %d", f.name, len(x), len(f.lo)))
	}
	var obj float64
	var cons []float64
	if fid == problem.High {
		obj, cons = f.high(x)
	} else {
		obj, cons = f.low(x)
	}
	return problem.Evaluation{Objective: obj, Constraints: cons}
}

// Cost implements problem.Problem.
func (f *Func) Cost(fid problem.Fidelity) float64 {
	if fid == problem.Low {
		return f.costLow
	}
	return f.costHigh
}

// HighFn returns the high-fidelity objective value at x (test helper).
func (f *Func) HighFn(x []float64) float64 { v, _ := f.high(x); return v }

// LowFn returns the low-fidelity objective value at x (test helper).
func (f *Func) LowFn(x []float64) float64 { v, _ := f.low(x); return v }

// PedagogicalLow is f_l(x) = sin(8πx), the cheap level of the Perdikaris
// pedagogical pair used in the paper's Figures 1 and 2.
func PedagogicalLow(x float64) float64 { return math.Sin(8 * math.Pi * x) }

// PedagogicalHigh is f_h(x) = (x − √2)·f_l(x)², the expensive level of the
// pedagogical pair: a nonlinear (quadratic) transform of the low-fidelity
// output with an x-dependent scale.
func PedagogicalHigh(x float64) float64 {
	l := PedagogicalLow(x)
	return (x - math.Sqrt2) * l * l
}

// Pedagogical returns the unconstrained 1-D pedagogical pair on [0, 1] with
// a 1:20 low:high cost ratio.
func Pedagogical() *Func {
	return &Func{
		name: "pedagogical",
		lo:   []float64{0}, hi: []float64{1},
		high:    func(x []float64) (float64, []float64) { return PedagogicalHigh(x[0]), nil },
		low:     func(x []float64) (float64, []float64) { return PedagogicalLow(x[0]), nil },
		costLow: 0.05, costHigh: 1,
	}
}

// Forrester returns the classic 1-D Forrester pair on [0, 1]:
//
//	f_h(x) = (6x−2)²·sin(12x−4),
//	f_l(x) = 0.5·f_h(x) + 10(x−0.5) − 5.
func Forrester() *Func {
	fh := func(x float64) float64 {
		t := 6*x - 2
		return t * t * math.Sin(12*x-4)
	}
	return &Func{
		name: "forrester",
		lo:   []float64{0}, hi: []float64{1},
		high:    func(x []float64) (float64, []float64) { return fh(x[0]), nil },
		low:     func(x []float64) (float64, []float64) { return 0.5*fh(x[0]) + 10*(x[0]-0.5) - 5, nil },
		costLow: 0.1, costHigh: 1,
	}
}

// braninValue is the standard Branin function on [−5,10]×[0,15].
func braninValue(x1, x2 float64) float64 {
	const (
		a = 1
		r = 6
		s = 10
	)
	b := 5.1 / (4 * math.Pi * math.Pi)
	c := 5 / math.Pi
	t := 1 / (8 * math.Pi)
	u := x2 - b*x1*x1 + c*x1 - r
	return a*u*u + s*(1-t)*math.Cos(x1) + s
}

// BraninMF returns a 2-D Branin multi-fidelity pair. The low fidelity is a
// shifted, rescaled Branin with an additive linear trend — a standard
// construction in the multi-fidelity literature.
func BraninMF() *Func {
	return &Func{
		name: "branin-mf",
		lo:   []float64{-5, 0}, hi: []float64{10, 15},
		high: func(x []float64) (float64, []float64) { return braninValue(x[0], x[1]), nil },
		low: func(x []float64) (float64, []float64) {
			v := 0.5*braninValue(x[0]-1, x[1]+1) + 10*(x[0]+x[1])/25 - 20
			return v, nil
		},
		costLow: 0.1, costHigh: 1,
	}
}

// currinValue is the Currin exponential function on [0,1]².
func currinValue(x1, x2 float64) float64 {
	factor := 1.0
	if x2 > 0 {
		factor = 1 - math.Exp(-1/(2*x2))
	}
	num := 2300*x1*x1*x1 + 1900*x1*x1 + 2092*x1 + 60
	den := 100*x1*x1*x1 + 500*x1*x1 + 4*x1 + 20
	return factor * num / den
}

// CurrinMF returns the standard Currin exponential multi-fidelity pair on
// [0,1]² (the low fidelity is the four-point average smoother).
func CurrinMF() *Func {
	return &Func{
		name: "currin-mf",
		lo:   []float64{0, 0}, hi: []float64{1, 1},
		high: func(x []float64) (float64, []float64) { return currinValue(x[0], x[1]), nil },
		low: func(x []float64) (float64, []float64) {
			x1, x2 := x[0], x[1]
			m := x2 - 0.05
			if m < 0 {
				m = 0
			}
			v := 0.25*(currinValue(x1+0.05, x2+0.05)+currinValue(x1+0.05, m)) +
				0.25*(currinValue(x1-0.05, x2+0.05)+currinValue(x1-0.05, m))
			return v, nil
		},
		costLow: 0.1, costHigh: 1,
	}
}

// parkValue is the Park (1991) function on [0,1]⁴ (x1 nudged away from 0).
func parkValue(x []float64) float64 {
	x1 := math.Max(x[0], 1e-6)
	x2, x3, x4 := x[1], x[2], x[3]
	t1 := x1 / 2 * (math.Sqrt(1+(x2+x3*x3)*x4/(x1*x1)) - 1)
	t2 := (x1 + 3*x4) * math.Exp(1+math.Sin(x3))
	return t1 + t2
}

// ParkMF returns the standard Park 4-D multi-fidelity pair.
func ParkMF() *Func {
	return &Func{
		name: "park-mf",
		lo:   []float64{0, 0, 0, 0}, hi: []float64{1, 1, 1, 1},
		high: func(x []float64) (float64, []float64) { return parkValue(x), nil },
		low: func(x []float64) (float64, []float64) {
			v := (1+math.Sin(x[0])/10)*parkValue(x) - 2*x[0] + x[1]*x[1] + x[2]*x[2] + 0.5
			return v, nil
		},
		costLow: 0.1, costHigh: 1,
	}
}

// boreholeHigh is the classic 8-D borehole water-flow model (m³/yr):
// x = (rw, r, Tu, Hu, Tl, Hl, L, Kw).
func boreholeHigh(x []float64) float64 {
	rw, r, tu, hu, tl, hl, l, kw := x[0], x[1], x[2], x[3], x[4], x[5], x[6], x[7]
	lnr := math.Log(r / rw)
	return 2 * math.Pi * tu * (hu - hl) /
		(lnr * (1 + 2*l*tu/(lnr*rw*rw*kw) + tu/tl))
}

// boreholeLow is the standard cheap borehole variant (Xiong et al.): the
// 2π factor becomes 5 and the unity term becomes 1.5.
func boreholeLow(x []float64) float64 {
	rw, r, tu, hu, tl, hl, l, kw := x[0], x[1], x[2], x[3], x[4], x[5], x[6], x[7]
	lnr := math.Log(r / rw)
	return 5 * tu * (hu - hl) /
		(lnr * (1.5 + 2*l*tu/(lnr*rw*rw*kw) + tu/tl))
}

// BoreholeMF returns the 8-D borehole multi-fidelity pair on its standard
// domain — the highest-dimensional synthetic pair in the suite, useful for
// stressing the surrogate stack between the 5-D PA and the 36-D charge pump.
func BoreholeMF() *Func {
	return &Func{
		name:    "borehole-mf",
		lo:      []float64{0.05, 100, 63070, 990, 63.1, 700, 1120, 9855},
		hi:      []float64{0.15, 50000, 115600, 1110, 116, 820, 1680, 12045},
		high:    func(x []float64) (float64, []float64) { return boreholeHigh(x), nil },
		low:     func(x []float64) (float64, []float64) { return boreholeLow(x), nil },
		costLow: 0.1, costHigh: 1,
	}
}

// ConstrainedSynthetic returns a 2-D constrained pair with a known optimum:
//
//	minimize  x1 + x2            over [0,1]²
//	s.t.      0.2 − x1·x2 < 0,
//
// whose optimum is x1 = x2 = √0.2 ≈ 0.4472 with objective 2√0.2 ≈ 0.8944.
// The low fidelity adds a smooth nonlinear bias to both outputs, mimicking
// the short-transient bias of a cheap circuit simulation.
func ConstrainedSynthetic() *Func {
	return &Func{
		name: "constrained-synthetic",
		lo:   []float64{0, 0}, hi: []float64{1, 1},
		nc: 1,
		high: func(x []float64) (float64, []float64) {
			return x[0] + x[1], []float64{0.2 - x[0]*x[1]}
		},
		low: func(x []float64) (float64, []float64) {
			obj := x[0] + x[1] + 0.3*math.Sin(5*(x[0]+x[1]))
			con := 0.2 - x[0]*x[1] + 0.05*math.Cos(3*x[0])
			return obj, []float64{con}
		},
		costLow: 0.1, costHigh: 1,
	}
}

// ConstrainedSyntheticOptimum returns the known optimum of
// ConstrainedSynthetic (point and objective value).
func ConstrainedSyntheticOptimum() ([]float64, float64) {
	v := math.Sqrt(0.2)
	return []float64{v, v}, 2 * v
}

// Hartmann3 returns the single-fidelity 3-D Hartmann function (identical at
// both fidelities except for a 0.9 scale and small shift at low fidelity);
// used by higher-dimensional smoke tests.
func Hartmann3() *Func {
	alpha := [4]float64{1.0, 1.2, 3.0, 3.2}
	A := [4][3]float64{{3, 10, 30}, {0.1, 10, 35}, {3, 10, 30}, {0.1, 10, 35}}
	P := [4][3]float64{
		{0.3689, 0.1170, 0.2673},
		{0.4699, 0.4387, 0.7470},
		{0.1091, 0.8732, 0.5547},
		{0.0381, 0.5743, 0.8828},
	}
	h := func(x []float64) float64 {
		s := 0.0
		for i := 0; i < 4; i++ {
			inner := 0.0
			for j := 0; j < 3; j++ {
				d := x[j] - P[i][j]
				inner += A[i][j] * d * d
			}
			s += alpha[i] * math.Exp(-inner)
		}
		return -s
	}
	return &Func{
		name: "hartmann3",
		lo:   []float64{0, 0, 0}, hi: []float64{1, 1, 1},
		high: func(x []float64) (float64, []float64) { return h(x), nil },
		low: func(x []float64) (float64, []float64) {
			shifted := []float64{x[0] + 0.02, x[1] - 0.02, x[2]}
			return 0.9*h(shifted) + 0.1, nil
		},
		costLow: 0.1, costHigh: 1,
	}
}

// New builds a custom synthetic pair; exported for tests and examples that
// need bespoke correlation structure.
func New(name string, lo, hi []float64, nc int,
	high, low func(x []float64) (float64, []float64), costLow, costHigh float64) *Func {
	return &Func{name: name, lo: lo, hi: hi, nc: nc, high: high, low: low,
		costLow: costLow, costHigh: costHigh}
}

// LadderFunc is a synthetic problem with K >= 2 fidelity rungs. Rung k is
// levels[k] with relative cost costs[k]; the last level is the full-accuracy
// target. It implements problem.MultiFidelity so the engine derives a
// K-rung ladder from it.
type LadderFunc struct {
	name   string
	lo, hi []float64
	nc     int
	levels []func(x []float64) (float64, []float64)
	costs  []float64
}

var (
	_ problem.Problem       = (*LadderFunc)(nil)
	_ problem.MultiFidelity = (*LadderFunc)(nil)
)

// NewLadder builds a custom K-rung synthetic problem. levels and costs must
// have equal length >= 2, with costs ascending and the last equal to the
// target cost (conventionally 1).
func NewLadder(name string, lo, hi []float64, nc int,
	levels []func(x []float64) (float64, []float64), costs []float64) *LadderFunc {
	if len(levels) < 2 || len(levels) != len(costs) {
		panic(fmt.Sprintf("testfunc %s: need matching levels/costs with >= 2 rungs, got %d/%d",
			name, len(levels), len(costs)))
	}
	return &LadderFunc{name: name, lo: lo, hi: hi, nc: nc, levels: levels, costs: costs}
}

// Name implements problem.Problem.
func (f *LadderFunc) Name() string { return f.name }

// Dim implements problem.Problem.
func (f *LadderFunc) Dim() int { return len(f.lo) }

// Bounds implements problem.Problem.
func (f *LadderFunc) Bounds() (lo, hi []float64) {
	return append([]float64(nil), f.lo...), append([]float64(nil), f.hi...)
}

// NumConstraints implements problem.Problem.
func (f *LadderFunc) NumConstraints() int { return f.nc }

// NumFidelities implements problem.MultiFidelity.
func (f *LadderFunc) NumFidelities() int { return len(f.levels) }

// rung clamps a fidelity to a valid rung index: anything at or above the top
// rung evaluates at full accuracy (so problem.High still means "accurate"
// for callers unaware of the ladder), anything below rung 0 at rung 0.
func (f *LadderFunc) rung(fid problem.Fidelity) int {
	k := int(fid)
	if k < 0 {
		return 0
	}
	if k >= len(f.levels) {
		return len(f.levels) - 1
	}
	return k
}

// Evaluate implements problem.Problem.
func (f *LadderFunc) Evaluate(x []float64, fid problem.Fidelity) problem.Evaluation {
	if len(x) != len(f.lo) {
		panic(fmt.Sprintf("testfunc %s: point dim %d != %d", f.name, len(x), len(f.lo)))
	}
	obj, cons := f.levels[f.rung(fid)](x)
	return problem.Evaluation{Objective: obj, Constraints: cons}
}

// Cost implements problem.Problem.
func (f *LadderFunc) Cost(fid problem.Fidelity) float64 { return f.costs[f.rung(fid)] }

// LevelFn returns the objective of rung k at x (test helper).
func (f *LadderFunc) LevelFn(k int, x []float64) float64 { v, _ := f.levels[k](x); return v }

// Forrester3 returns a 3-rung Forrester ladder on [0, 1]: the classic high
// and low levels of Forrester() plus a medium level between them,
//
//	f_m(x) = 0.75·f_h(x) + 5(x−0.5) − 2,
//
// at relative costs 0.1 : 0.25 : 1. The bottom and top rungs are exactly the
// two-fidelity pair, so a TwoFidelityView of this problem reproduces
// Forrester() (modulo the name).
func Forrester3() *LadderFunc {
	fh := func(x float64) float64 {
		t := 6*x - 2
		return t * t * math.Sin(12*x-4)
	}
	return NewLadder("forrester3",
		[]float64{0}, []float64{1}, 0,
		[]func(x []float64) (float64, []float64){
			func(x []float64) (float64, []float64) { return 0.5*fh(x[0]) + 10*(x[0]-0.5) - 5, nil },
			func(x []float64) (float64, []float64) { return 0.75*fh(x[0]) + 5*(x[0]-0.5) - 2, nil },
			func(x []float64) (float64, []float64) { return fh(x[0]), nil },
		},
		[]float64{0.1, 0.25, 1})
}

// Incremental model maintenance: fold new observations into a trained model
// with a bordered Cholesky update instead of refitting from scratch, and
// retract speculative (fantasy) observations exactly. This turns the common
// per-Tell path of the BO loop from O(n³) to O(n²); hyperparameters and the
// standardization transform stay frozen until the next full Fit.
package gp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/linalg"
)

// AppendObservation folds one new observation (x, y) into the trained model
// without re-optimizing hyperparameters: the covariance factor is extended
// with a bordered rank-1 Cholesky update (O(n²)) and the weight vector α and
// NLML are recomputed from the updated factor. The standardization transform
// is frozen at its last full-Fit state, so the model is an approximation of a
// fresh fit on the extended dataset; callers interleave periodic full refits
// (see core's fit-skip schedule). On a low-rank model the inducing set stays
// fixed and the m×m information matrix receives a rank-1 update instead.
//
// An error (ErrNotPositiveDefinite after jitter escalation) leaves the model
// unchanged; callers should fall back to a full Fit.
func (m *Model) AppendObservation(x []float64, y float64) error {
	if m.chol == nil && m.lowRank == nil {
		return errors.New("gp: AppendObservation on an unfitted model")
	}
	if len(x) != len(m.xMean) {
		return fmt.Errorf("gp: append dim %d != %d", len(x), len(m.xMean))
	}
	sx := m.toStdX(x)
	sy := (y - m.yMean) / m.yStd
	if m.lowRank != nil {
		if err := m.lowRank.append(m, sx, sy); err != nil {
			return err
		}
		m.xs = append(m.xs, sx)
		m.ys = append(m.ys, sy)
		return nil
	}
	n := len(m.xs)
	row := m.rowScratch(n)
	prof := kernel.ProfileOf(m.kern)
	if prof != nil {
		diff := m.diffScratch(len(sx))
		for i := 0; i < n; i++ {
			xi := m.xs[i]
			for t := range diff {
				diff[t] = sx[t] - xi[t]
			}
			row[i] = prof.Eval(diff)
		}
	} else {
		for i := 0; i < n; i++ {
			row[i] = m.kern.Eval(sx, m.xs[i])
		}
	}
	kss := m.kern.Eval(sx, sx)
	noise2 := math.Exp(2 * m.logNoise)
	if err := m.chol.AppendRow(row, kss+noise2); err != nil {
		return fmt.Errorf("gp: incremental factor update: %w", err)
	}
	m.xs = append(m.xs, sx)
	m.ys = append(m.ys, sy)
	m.refreshAlpha()
	return nil
}

// Truncate drops the trailing observations so the model again covers exactly
// the first n training points — the retraction matching AppendObservation,
// used to pop fantasy observations after a batch proposal. On the exact path
// the restored factor is bit-identical to the pre-append state (the bordered
// update never touches the leading block); on a low-rank model the m×m
// information matrix is rank-1-downdated per popped point.
func (m *Model) Truncate(n int) error {
	cur := len(m.xs)
	if n < 1 || n > cur {
		return fmt.Errorf("gp: truncate to %d of %d", n, cur)
	}
	if n == cur {
		return nil
	}
	if m.lowRank != nil {
		if err := m.lowRank.truncate(m, n); err != nil {
			return err
		}
		m.xs = m.xs[:n]
		m.ys = m.ys[:n]
		return nil
	}
	m.chol.DropLast(cur - n)
	m.xs = m.xs[:n]
	m.ys = m.ys[:n]
	m.refreshAlpha()
	return nil
}

// refreshAlpha recomputes α = K⁻¹y and the NLML from the current factor in
// O(n²), reusing the model's solve buffers. The triangular solves perform the
// same operation sequence as factorize's SolveVec, so recomputing after a
// DropLast restores the pre-append α bit-identically.
func (m *Model) refreshAlpha() {
	n := len(m.xs)
	if cap(m.alpha) < n {
		m.alpha = make([]float64, n, 2*n)
	} else {
		m.alpha = m.alpha[:n]
	}
	if cap(m.solveBuf) < n {
		m.solveBuf = make([]float64, n, 2*n)
	}
	v := m.solveBuf[:n]
	m.chol.ForwardSolveInto(m.ys, v)
	m.chol.BackwardSolveInto(v, m.alpha)
	m.nlml = 0.5*linalg.Dot(m.ys, m.alpha) + 0.5*m.chol.LogDet() + 0.5*float64(n)*math.Log(2*math.Pi)
}

func (m *Model) rowScratch(n int) []float64 {
	if cap(m.rowBuf) < n {
		m.rowBuf = make([]float64, n, 2*n)
	}
	return m.rowBuf[:n]
}

func (m *Model) diffScratch(d int) []float64 {
	if cap(m.diffBuf) < d {
		m.diffBuf = make([]float64, d)
	}
	return m.diffBuf[:d]
}

package gp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
)

// Conditioning on an additional observation must reduce (or keep) the
// posterior variance at that location.
func TestMoreDataReducesVarianceThere(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := [][]float64{{0}, {0.4}, {1}}
	yBase := []float64{0, 0.5, 1}
	newX := []float64{0.7}
	fit := func(X [][]float64, y []float64) *Model {
		m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-4), Restarts: 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1 := fit(base, yBase)
	_, v1 := m1.PredictLatent(newX)
	m2 := fit(append(append([][]float64{}, base...), newX), append(append([]float64{}, yBase...), 0.8))
	_, v2 := m2.PredictLatent(newX)
	if v2 > v1 {
		t.Fatalf("variance at observed point grew: %v -> %v", v1, v2)
	}
}

// The posterior mean at a far-away point must revert toward the prior mean
// (the data mean, by standardization).
func TestMeanReversionFarFromData(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	X := [][]float64{{0}, {0.5}, {1}}
	y := []float64{10, 12, 14}
	m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-4), Restarts: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := m.PredictLatent([]float64{1000})
	dataMean := 12.0
	if math.Abs(mu-dataMean) > 1.0 {
		t.Fatalf("far-field prediction %v should revert to data mean %v", mu, dataMean)
	}
}

// Predictions must be continuous: nearby inputs give nearby posteriors.
func TestPredictionContinuity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	X := [][]float64{{0}, {0.3}, {0.6}, {1}}
	y := []float64{0, 1, -1, 0.5}
	m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-4)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-7
	for _, x := range []float64{0.15, 0.45, 0.8} {
		mu1, v1 := m.PredictLatent([]float64{x})
		mu2, v2 := m.PredictLatent([]float64{x + h})
		if math.Abs(mu1-mu2) > 1e-4 || math.Abs(v1-v2) > 1e-4 {
			t.Fatalf("posterior discontinuous near %v", x)
		}
	}
}

// Duplicated training points with consistent values must not break the fit
// (the jitter path in Cholesky handles the rank deficiency).
func TestDuplicateTrainingPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	X := [][]float64{{0.5}, {0.5}, {0.5}, {1}}
	y := []float64{2, 2, 2, 3}
	m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-4)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := m.PredictLatent([]float64{0.5})
	if math.Abs(mu-2) > 0.1 {
		t.Fatalf("duplicated-point prediction %v, want ≈2", mu)
	}
}

// The kernel choice must not change the exact-interpolation property.
func TestInterpolationAcrossKernels(t *testing.T) {
	kernels := []func() kernel.Kernel{
		func() kernel.Kernel { return kernel.NewSEARD(1) },
		func() kernel.Kernel { return kernel.NewMatern32(1) },
		func() kernel.Kernel { return kernel.NewMatern52(1) },
		func() kernel.Kernel { return kernel.NewRationalQuadratic(1) },
	}
	X := [][]float64{{0}, {0.5}, {1}}
	y := []float64{1, -1, 2}
	for _, mk := range kernels {
		rng := rand.New(rand.NewSource(25))
		m, err := Fit(X, y, Config{Kernel: mk(), FixedNoise: fixedNoise(1e-6), Restarts: 2}, rng)
		if err != nil {
			t.Fatalf("%T: %v", mk(), err)
		}
		for i, x := range X {
			mu, _ := m.PredictLatent(x)
			if math.Abs(mu-y[i]) > 0.01 {
				t.Fatalf("%T fails to interpolate at %v: %v vs %v", mk(), x, mu, y[i])
			}
		}
	}
}

package gp

import (
	"math"

	"repro/internal/kernel"
	"repro/internal/linalg"
)

// fitWorkspace holds everything one training restart needs to evaluate the
// NLML and its gradient without allocating: a cloned kernel (so concurrent
// restarts never share mutable hyperparameter state), the covariance matrix,
// a reusable Cholesky, the precision matrix, and gradient accumulators. The
// geometry cache and the training data are shared read-only across all
// workspaces.
//
// The arithmetic is ordered to be bit-identical to the original
// matrix-per-hyperparameter implementation: the covariance is filled
// symmetric-half-only (same values), and each gradient accumulator receives
// its terms in full-matrix row-major (i, j) order — exactly the order the
// reference tr(W·dK_h) loop used — so the optimizer walks the same
// trajectory to the last ulp.
type fitWorkspace struct {
	kern     kernel.Kernel // private clone, mutated by SetHyper per objective call
	logNoise float64

	// Shared read-only state.
	geo *pairGeo
	xs  [][]float64
	ys  []float64

	// Reusable numerics.
	K       *linalg.Matrix
	chol    *linalg.Cholesky
	alpha   []float64
	Kinv    *linalg.Matrix
	scratch []float64
	gbuf    []float64 // one kernel gradient, length nk
	out     []float64 // NLML gradient accumulators, length nk+1
}

func newFitWorkspace(kern kernel.Kernel, geo *pairGeo, xs [][]float64, ys []float64) *fitWorkspace {
	n := len(xs)
	nk := kern.NumHyper()
	return &fitWorkspace{
		kern:    kern.Clone(),
		geo:     geo,
		xs:      xs,
		ys:      ys,
		K:       linalg.NewMatrix(n, n),
		alpha:   make([]float64, n),
		Kinv:    linalg.NewMatrix(n, n),
		scratch: make([]float64, n),
		gbuf:    make([]float64, nk),
		out:     make([]float64, nk+1),
	}
}

// fillCovariance writes K + σ_n²·I into dst (symmetric-half evaluation, both
// triangles stored) using prof when non-nil, else the direct kernel path.
func fillCovariance(dst *linalg.Matrix, prof kernel.PairProfile, kern kernel.Kernel,
	geo *pairGeo, xs [][]float64, noise2 float64) {
	n := len(xs)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var v float64
			if prof != nil {
				v = prof.Eval(geo.diff(i, j))
			} else {
				v = kern.Eval(xs[i], xs[j])
			}
			dst.Set(i, j, v)
			dst.Set(j, i, v)
		}
		dst.Add(i, i, noise2)
	}
}

// nlmlGrad returns the negative log marginal likelihood and its gradient with
// respect to the packed hyper vector [kernel hypers..., logNoise] for the
// workspace's current kernel state. The returned slice is w.out, valid until
// the next call.
func (w *fitWorkspace) nlmlGrad() (float64, []float64, error) {
	n := len(w.xs)
	nk := w.kern.NumHyper()
	prof := kernel.ProfileOf(w.kern)
	noise2 := math.Exp(2 * w.logNoise)

	// Pass 1: covariance fill and factorization.
	fillCovariance(w.K, prof, w.kern, w.geo, w.xs, noise2)
	chol, err := linalg.NewCholeskyReuse(w.K, w.chol)
	if err != nil {
		return 0, nil, err
	}
	w.chol = chol
	chol.SolveVecInto(w.ys, w.alpha)
	nlml := 0.5*linalg.Dot(w.ys, w.alpha) + 0.5*chol.LogDet() + 0.5*float64(n)*math.Log(2*math.Pi)

	// Pass 2: precision matrix (reused storage, no allocation).
	chol.InverseInto(w.Kinv, w.scratch)

	// Pass 3: grad_h = ½ Σ_ij (K⁻¹_ij − α_i α_j)·∂K_ij/∂logθ_h, accumulated
	// in row-major (i, j) order per h. ∂K is symmetric, so entries below the
	// diagonal reuse the (j, i) profile evaluation.
	out := w.out
	for h := 0; h <= nk; h++ {
		out[h] = 0
	}
	alpha := w.alpha
	for i := 0; i < n; i++ {
		wi := w.Kinv.Row(i)
		ai := alpha[i]
		for j := 0; j < n; j++ {
			lo, hi := i, j
			if lo > hi {
				lo, hi = j, i
			}
			if prof != nil {
				prof.EvalGrad(w.geo.diff(lo, hi), w.gbuf)
			} else {
				w.kern.EvalGrad(w.xs[lo], w.xs[hi], w.gbuf)
			}
			wij := wi[j] - ai*alpha[j]
			for h := 0; h < nk; h++ {
				out[h] += wij * w.gbuf[h]
			}
		}
	}
	for h := 0; h < nk; h++ {
		out[h] *= 0.5
	}
	// Noise gradient: ∂K/∂logσ_n = 2σ_n²·I.
	s := 0.0
	for i := 0; i < n; i++ {
		s += w.Kinv.At(i, i) - alpha[i]*alpha[i]
	}
	out[nk] = 0.5 * s * 2 * noise2
	return nlml, out, nil
}

// Package gp implements exact Gaussian-process regression (§2.3 of the
// paper): zero-mean GPs with trainable kernels, observation-noise estimation,
// negative-log-marginal-likelihood training with analytic gradients and
// multi-restart L-BFGS, and posterior mean/variance prediction (eq. 4).
//
// Inputs and outputs are standardized internally (zero mean, unit variance
// per coordinate) so that the default hyperparameter bounds are meaningful
// for any problem scaling; predictions are mapped back automatically.
package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/optimize"
	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// Config controls model training. The zero value of optional fields selects
// sensible defaults.
type Config struct {
	// Kernel is the covariance function (required). The model owns the
	// kernel after Fit; pass a Clone if the caller needs to keep it.
	Kernel kernel.Kernel
	// Restarts is the number of random restarts for hyperparameter training
	// in addition to the default initialization (default 2).
	Restarts int
	// MaxIter bounds L-BFGS iterations per restart (default 100).
	MaxIter int
	// NoiseBounds are log-space bounds for log σ_n (default [-8, 1]).
	NoiseBounds [2]float64
	// FixedNoise, when non-nil, pins σ_n to the given value (in standardized
	// output units) instead of training it. Use a small value such as 1e-4
	// for noiseless computer experiments.
	FixedNoise *float64
	// NoStandardizeX disables input standardization (used by tests).
	NoStandardizeX bool
	// WarmStart, when non-nil, is used as the primary training start instead
	// of the default initialization — pass a previous fit's Hyper() to speed
	// up incremental refits. Its length must be NumHyper()+1 (kernel hypers
	// plus log-noise); the noise entry is ignored under FixedNoise.
	WarmStart []float64
	// SkipTraining keeps the WarmStart hyperparameters (or the kernel's
	// current ones when WarmStart is nil) without optimizing the NLML. The
	// BO loop uses it between periodic full refits: the covariance is
	// re-factorized with the new data but hyperparameters stay put.
	SkipTraining bool
	// Inducing, when positive and smaller than the training size, switches
	// the model to the opt-in low-rank (inducing-point / DTC) approximation:
	// hyperparameters are trained subset-of-data on Inducing strided points
	// and the posterior is the deterministic-training-conditional over that
	// set — O(n·m²) training, O(m) mean / O(m²) variance prediction, and
	// O(m²) incremental appends. Zero (the default) keeps the exact GP.
	Inducing int
	// Workers bounds the goroutines used for multi-restart training and
	// batched prediction: 0 selects parallel.DefaultWorkers(), 1 forces the
	// serial path, n > 1 uses up to n goroutines. Results are bit-identical
	// for every setting — restarts run on cloned kernels from pre-drawn
	// starting points and reduce in restart order.
	Workers int
	// Span, when non-nil, parents a "gp.fit" trace span around the training
	// run (annotated with the dataset size, restart bookkeeping and final
	// NLML). nil is a zero-allocation no-op and never changes results.
	Span *telemetry.Span
}

func (c *Config) defaults() error {
	if c.Kernel == nil {
		return errors.New("gp: Config.Kernel is required")
	}
	if c.Restarts < 0 {
		return fmt.Errorf("gp: negative restarts %d", c.Restarts)
	}
	if c.Restarts == 0 {
		c.Restarts = 2
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.NoiseBounds == [2]float64{} {
		c.NoiseBounds = [2]float64{-8, 1}
	}
	return nil
}

// Model is a trained Gaussian-process regressor.
type Model struct {
	cfg  Config
	kern kernel.Kernel

	// Standardization parameters.
	xMean, xStd []float64
	yMean, yStd float64

	// Standardized training data.
	xs [][]float64
	ys []float64

	logNoise float64 // log σ_n in standardized output units

	chol  *linalg.Cholesky
	alpha []float64 // K⁻¹ y (standardized)
	nlml  float64
	info  FitInfo

	// lowRank, when non-nil, replaces chol/alpha with the inducing-point
	// approximation (Config.Inducing).
	lowRank *lowRankState

	// Incremental-maintenance scratch (AppendObservation / Truncate).
	rowBuf, diffBuf, solveBuf []float64

	// predPool holds *predictScratch buffers so that PredictLatent allocates
	// nothing in steady state even under concurrent batch prediction.
	predPool sync.Pool
}

// predictScratch is the per-goroutine buffer set for one posterior
// evaluation: the standardized query point, the cross-covariance row, the
// forward-solve vector, a difference vector for the kernel profile, and the
// profile itself (profiles carry scratch and must not be shared across
// goroutines).
type predictScratch struct {
	x, ks, v, diff []float64
	prof           kernel.PairProfile
}

func (m *Model) getPredictScratch() *predictScratch {
	if sc, ok := m.predPool.Get().(*predictScratch); ok {
		return sc
	}
	n, d := len(m.xs), len(m.xMean)
	return &predictScratch{
		x:    make([]float64, d),
		ks:   make([]float64, n),
		v:    make([]float64, n),
		diff: make([]float64, d),
		prof: kernel.ProfileOf(m.kern), // nil for non-Pairwise kernels
	}
}

// Fit trains a GP on the dataset (X, y). Hyperparameters are obtained by
// minimizing the NLML (eq. 3) with analytic gradients, multi-restarted from
// random initializations drawn with rng.
func Fit(X [][]float64, y []float64, cfg Config, rng *rand.Rand) (*Model, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	n := len(X)
	if n == 0 {
		return nil, errors.New("gp: empty training set")
	}
	if len(y) != n {
		return nil, fmt.Errorf("gp: %d inputs but %d observations", n, len(y))
	}
	d := len(X[0])
	if cfg.Kernel.Dim() != d {
		return nil, fmt.Errorf("gp: kernel dim %d != input dim %d", cfg.Kernel.Dim(), d)
	}
	span := cfg.Span.Child("gp.fit")
	defer span.End()
	span.Attr("n", float64(n))
	span.Attr("dim", float64(d))
	m := &Model{cfg: cfg, kern: cfg.Kernel}
	m.standardize(X, y)

	if cfg.Inducing > 0 && cfg.Inducing < n {
		span.Attr("inducing", float64(cfg.Inducing))
		if err := m.fitLowRank(rng); err != nil {
			span.Attr("failed", 1)
			return nil, err
		}
		span.Attr("nlml", m.nlml)
		return m, nil
	}

	nk := m.kern.NumHyper()
	nTotal := nk
	trainNoise := cfg.FixedNoise == nil
	if trainNoise {
		nTotal++
	} else {
		m.logNoise = math.Log(math.Max(*cfg.FixedNoise, 1e-10))
	}

	if cfg.SkipTraining {
		if trainNoise {
			m.logNoise = math.Log(1e-2)
		}
		if len(cfg.WarmStart) >= nk {
			m.kern.SetHyper(cfg.WarmStart[:nk])
			if trainNoise && len(cfg.WarmStart) > nk {
				m.logNoise = clamp(cfg.WarmStart[nk], cfg.NoiseBounds[0], cfg.NoiseBounds[1])
			}
		}
		if err := m.factorize(); err != nil {
			return nil, err
		}
		m.info = FitInfo{SkippedTraining: true}
		span.Attr("skipped", 1)
		span.Attr("nlml", m.nlml)
		return m, nil
	}

	loK, hiK := kernel.BoundsVectors(m.kern)
	// Pre-draw every starting point serially so the rng stream is consumed in
	// the same order regardless of the worker count. Start 0 is the default
	// initialization (zeros: unit amplitude/length scales, modest noise) or
	// the caller's warm start; the rest are random restarts.
	starts := make([][]float64, 1+cfg.Restarts)
	start := make([]float64, nTotal)
	if trainNoise {
		start[nk] = math.Log(1e-2)
	}
	if len(cfg.WarmStart) >= nk {
		copy(start[:nk], cfg.WarmStart[:nk])
		if trainNoise && len(cfg.WarmStart) > nk {
			start[nk] = clamp(cfg.WarmStart[nk], cfg.NoiseBounds[0], cfg.NoiseBounds[1])
		}
	}
	starts[0] = start
	for r := 0; r < cfg.Restarts; r++ {
		theta0 := make([]float64, nTotal)
		for j := 0; j < nk; j++ {
			theta0[j] = loK[j] + rng.Float64()*(hiK[j]-loK[j])*0.5 + 0.25*(hiK[j]-loK[j])
		}
		if trainNoise {
			lo, hi := cfg.NoiseBounds[0], cfg.NoiseBounds[1]
			theta0[nk] = lo + rng.Float64()*(hi-lo)
		}
		starts[1+r] = theta0
	}

	// Geometry cache: the pairwise difference tensor is computed once and
	// shared read-only by every restart and every L-BFGS iteration.
	geo := newPairGeo(m.xs)

	// Run every restart's L-BFGS concurrently on per-worker workspaces with
	// cloned kernels. Task i writes only results[i]; the argmin reduction
	// below runs in restart order, so the selected optimum is identical to
	// the serial schedule for any worker count.
	type fitResult struct {
		f float64
		x []float64
	}
	results := make([]fitResult, len(starts))
	workers := parallel.Workers(cfg.Workers)
	if workers > len(starts) {
		workers = len(starts)
	}
	wss := make([]*fitWorkspace, workers)
	for w := range wss {
		wss[w] = newFitWorkspace(m.kern, geo, m.xs, m.ys)
	}
	fixedLogNoise := m.logNoise
	parallel.ForEachWorker(workers, len(starts), func(w, idx int) {
		ws := wss[w]
		// Objective over the packed hyper vector [kernel hypers..., logNoise?].
		obj := func(theta, grad []float64) float64 {
			ws.kern.SetHyper(theta[:nk])
			if trainNoise {
				ws.logNoise = clamp(theta[nk], cfg.NoiseBounds[0], cfg.NoiseBounds[1])
			} else {
				ws.logNoise = fixedLogNoise
			}
			v, g, err := ws.nlmlGrad()
			if err != nil {
				for i := range grad {
					grad[i] = 0
				}
				return math.Inf(1)
			}
			copy(grad, g[:len(grad)])
			return v
		}
		r := optimize.LBFGS(obj, starts[idx], optimize.LBFGSConfig{MaxIter: cfg.MaxIter})
		results[idx] = fitResult{f: r.F, x: r.X}
	})
	bestTheta := make([]float64, nTotal)
	bestNLML := math.Inf(1)
	info := FitInfo{Restarts: len(starts)}
	for i, r := range results {
		if math.IsNaN(r.f) || math.IsInf(r.f, 1) {
			info.Diverged++
		}
		// Selection is exactly the pre-telemetry rule (strict <, NaN
		// excluded), so recording FitInfo cannot change which start wins.
		if r.f < bestNLML && !math.IsNaN(r.f) {
			bestNLML = r.f
			info.BestStart = i
			copy(bestTheta, r.x)
		}
	}
	if math.IsInf(bestNLML, 1) {
		span.Attr("failed", 1)
		return nil, errors.New("gp: training failed from every restart")
	}
	m.kern.SetHyper(bestTheta[:nk])
	if trainNoise {
		m.logNoise = clamp(bestTheta[nk], cfg.NoiseBounds[0], cfg.NoiseBounds[1])
	}
	if err := m.factorize(); err != nil {
		return nil, err
	}
	m.info = info
	span.Attr("restarts", float64(info.Restarts))
	span.Attr("diverged", float64(info.Diverged))
	span.Attr("nlml", m.nlml)
	return m, nil
}

// FitInfo summarizes the hyperparameter-training bookkeeping of one Fit:
// how many L-BFGS starts ran, how many diverged to a non-finite NLML, and
// which start won. SkippedTraining marks warm-hyperparameter refits that
// bypassed optimization entirely (Config.SkipTraining).
type FitInfo struct {
	Restarts        int // starting points run (default/warm start included)
	Diverged        int // starts whose NLML ended non-finite
	BestStart       int // winning start index (0 = default/warm start)
	SkippedTraining bool
	LowRank         bool // inducing-point approximation active
}

// FitInfo returns the training bookkeeping recorded by Fit.
func (m *Model) FitInfo() FitInfo { return m.info }

// standardize stores standardization parameters and the transformed data.
func (m *Model) standardize(X [][]float64, y []float64) {
	n, d := len(X), len(X[0])
	m.xMean = make([]float64, d)
	m.xStd = make([]float64, d)
	for j := 0; j < d; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += X[i][j]
		}
		mu := s / float64(n)
		ss := 0.0
		for i := 0; i < n; i++ {
			dv := X[i][j] - mu
			ss += dv * dv
		}
		sd := math.Sqrt(ss / float64(n))
		if sd < 1e-12 || m.cfg.NoStandardizeX {
			mu, sd = 0, 1
		}
		m.xMean[j], m.xStd[j] = mu, sd
	}
	sy := 0.0
	for _, v := range y {
		sy += v
	}
	m.yMean = sy / float64(n)
	ssy := 0.0
	for _, v := range y {
		dv := v - m.yMean
		ssy += dv * dv
	}
	m.yStd = math.Sqrt(ssy / float64(n))
	if m.yStd < 1e-12 {
		m.yStd = 1
	}
	m.xs = make([][]float64, n)
	for i := range X {
		m.xs[i] = m.toStdX(X[i])
	}
	m.ys = make([]float64, n)
	for i, v := range y {
		m.ys[i] = (v - m.yMean) / m.yStd
	}
}

func (m *Model) toStdX(x []float64) []float64 {
	out := make([]float64, len(x))
	m.toStdXInto(x, out)
	return out
}

func (m *Model) toStdXInto(x, out []float64) {
	for j := range x {
		out[j] = (x[j] - m.xMean[j]) / m.xStd[j]
	}
}

// factorize builds the Cholesky of K + σ_n²I and the alpha vector for the
// current hyperparameters, using the kernel's pair profile (hyperparameter
// transcendentals hoisted out of the O(n²) loop) when available.
func (m *Model) factorize() error {
	n := len(m.xs)
	K := linalg.NewMatrix(n, n)
	noise2 := math.Exp(2 * m.logNoise)
	prof := kernel.ProfileOf(m.kern)
	var diff []float64
	if prof != nil && n > 0 {
		diff = make([]float64, len(m.xs[0]))
	}
	for i := 0; i < n; i++ {
		xi := m.xs[i]
		for j := i; j < n; j++ {
			var v float64
			if prof != nil {
				xj := m.xs[j]
				for t := range diff {
					diff[t] = xi[t] - xj[t]
				}
				v = prof.Eval(diff)
			} else {
				v = m.kern.Eval(xi, m.xs[j])
			}
			K.Set(i, j, v)
			K.Set(j, i, v)
		}
		K.Add(i, i, noise2)
	}
	chol, err := linalg.NewCholesky(K)
	if err != nil {
		return fmt.Errorf("gp: covariance factorization: %w", err)
	}
	m.chol = chol
	m.alpha = chol.SolveVec(m.ys)
	m.nlml = 0.5*linalg.Dot(m.ys, m.alpha) + 0.5*chol.LogDet() + 0.5*float64(n)*math.Log(2*math.Pi)
	return nil
}

// nlmlGrad evaluates the NLML and its gradient at the model's current kernel
// hyperparameters and noise. Fit uses per-restart workspaces directly; this
// entry point serves gradient-check tests and one-off evaluations.
func (m *Model) nlmlGrad() (float64, []float64, error) {
	ws := newFitWorkspace(m.kern, newPairGeo(m.xs), m.xs, m.ys)
	ws.kern = m.kern // evaluate the live kernel, not a clone
	ws.logNoise = m.logNoise
	return ws.nlmlGrad()
}

// Predict returns the posterior predictive mean and variance at x, including
// observation noise (first line of eq. 4 plus σ_n², matching the paper).
func (m *Model) Predict(x []float64) (mean, variance float64) {
	mean, variance = m.PredictLatent(x)
	variance += math.Exp(2*m.logNoise) * m.yStd * m.yStd
	return mean, variance
}

// PredictLatent returns the posterior mean and variance of the latent
// function value f(x), excluding observation noise. It is safe for
// concurrent use and allocates nothing in steady state: all buffers (and the
// kernel's pair profile) come from a per-model sync.Pool.
func (m *Model) PredictLatent(x []float64) (mean, variance float64) {
	sc := m.getPredictScratch()
	mean, variance = m.predictLatentInto(x, sc)
	m.predPool.Put(sc)
	return mean, variance
}

func (m *Model) predictLatentInto(x []float64, sc *predictScratch) (mean, variance float64) {
	m.toStdXInto(x, sc.x)
	n := len(m.xs)
	// Incremental appends can outgrow pooled buffers sized at fit time.
	if len(sc.ks) < n {
		sc.ks = make([]float64, n)
		sc.v = make([]float64, n)
	}
	if m.lowRank != nil {
		return m.lowRank.predict(m, sc)
	}
	ks := sc.ks[:n]
	if sc.prof != nil {
		diff := sc.diff
		for i := 0; i < n; i++ {
			xi := m.xs[i]
			for t := range diff {
				diff[t] = sc.x[t] - xi[t]
			}
			ks[i] = sc.prof.Eval(diff)
		}
	} else {
		for i := 0; i < n; i++ {
			ks[i] = m.kern.Eval(sc.x, m.xs[i])
		}
	}
	mu := linalg.Dot(ks, m.alpha)
	v := sc.v[:n]
	m.chol.ForwardSolveInto(ks, v)
	var kss float64
	if sc.prof != nil {
		for t := range sc.diff {
			sc.diff[t] = 0
		}
		kss = sc.prof.Eval(sc.diff)
	} else {
		kss = m.kern.Eval(sc.x, sc.x)
	}
	va := kss - linalg.Dot(v, v)
	if va < 0 {
		va = 0
	}
	return m.yMean + m.yStd*mu, va * m.yStd * m.yStd
}

// PredictBatch evaluates PredictLatent over many points, fanning the grid
// across the model's configured worker count. Each point's result depends
// only on that point and the immutable trained model, so the output is
// bit-identical to the serial loop for any worker count.
func (m *Model) PredictBatch(xs [][]float64) (means, variances []float64) {
	means = make([]float64, len(xs))
	variances = make([]float64, len(xs))
	parallel.ForEach(parallel.Workers(m.cfg.Workers), len(xs), func(i int) {
		means[i], variances[i] = m.PredictLatent(xs[i])
	})
	return means, variances
}

// SampleJoint draws one realization of the latent function at the given
// points from the joint posterior — the primitive behind Thompson-sampling
// acquisition (§2.4 lists it among the alternatives to wEI). The joint
// covariance is Σ = K** − K*ᵀ(K+σ²I)⁻¹K*, factorized with jitter.
func (m *Model) SampleJoint(xs [][]float64, rng *rand.Rand) ([]float64, error) {
	if m.lowRank != nil {
		return nil, errors.New("gp: SampleJoint is not supported on low-rank models")
	}
	q := len(xs)
	std := make([][]float64, q)
	for i, x := range xs {
		std[i] = m.toStdX(x)
	}
	n := len(m.xs)
	// Cross-covariances and posterior mean.
	mean := make([]float64, q)
	vcols := make([][]float64, q) // L⁻¹ k*_i
	for i := 0; i < q; i++ {
		ks := make([]float64, n)
		for j := 0; j < n; j++ {
			ks[j] = m.kern.Eval(std[i], m.xs[j])
		}
		mean[i] = m.yMean + m.yStd*linalg.Dot(ks, m.alpha)
		vcols[i] = m.chol.ForwardSolve(ks)
	}
	cov := linalg.NewMatrix(q, q)
	for i := 0; i < q; i++ {
		for j := i; j < q; j++ {
			v := m.kern.Eval(std[i], std[j]) - linalg.Dot(vcols[i], vcols[j])
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	cv, err := linalg.NewCholesky(cov)
	if err != nil {
		return nil, fmt.Errorf("gp: joint posterior covariance: %w", err)
	}
	z := make([]float64, q)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	sample := make([]float64, q)
	for i := 0; i < q; i++ {
		s := 0.0
		for j := 0; j <= i; j++ {
			s += cv.L.At(i, j) * z[j]
		}
		sample[i] = mean[i] + m.yStd*s
	}
	return sample, nil
}

// NLML returns the trained model's negative log marginal likelihood.
func (m *Model) NLML() float64 { return m.nlml }

// OutputStd returns the output standardization scale. Dividing a predictive
// variance by OutputStd()² expresses it in standardized units — the scale on
// which the paper's fidelity-selection threshold γ = 0.01 is meaningful
// across problems.
func (m *Model) OutputStd() float64 { return m.yStd }

// LOO computes analytic leave-one-out residuals from the trained model
// (Rasmussen & Williams eq. 5.10-5.12): for each training point i, the
// prediction error y_i − µ_{−i}(x_i) and the LOO predictive variance, both
// in original output units, without refitting n models:
//
//	µ_i − y_i = α_i / [K⁻¹]_ii,   σ²_i = 1 / [K⁻¹]_ii.
//
// Large standardized residuals flag model misspecification; the experiment
// harness uses them as a surrogate-health diagnostic.
func (m *Model) LOO() (residuals, variances []float64) {
	if m.lowRank != nil {
		return nil, nil // no exact Gram inverse on the low-rank path
	}
	n := len(m.xs)
	Kinv := m.chol.Inverse()
	residuals = make([]float64, n)
	variances = make([]float64, n)
	for i := 0; i < n; i++ {
		kii := Kinv.At(i, i)
		residuals[i] = -m.alpha[i] / kii * m.yStd
		variances[i] = 1 / kii * m.yStd * m.yStd
	}
	return residuals, variances
}

// Noise returns the trained observation-noise standard deviation in original
// output units.
func (m *Model) Noise() float64 { return math.Exp(m.logNoise) * m.yStd }

// Kernel exposes the trained kernel (owned by the model; treat as read-only).
func (m *Model) Kernel() kernel.Kernel { return m.kern }

// TrainingSize returns the number of training points.
func (m *Model) TrainingSize() int { return len(m.xs) }

// Hyper returns the packed trained hyperparameters (kernel log-hypers
// followed by log-noise) — useful for warm-starting refits.
func (m *Model) Hyper() []float64 {
	h := kernel.HyperVector(m.kern)
	return append(h, m.logNoise)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Package gp implements exact Gaussian-process regression (§2.3 of the
// paper): zero-mean GPs with trainable kernels, observation-noise estimation,
// negative-log-marginal-likelihood training with analytic gradients and
// multi-restart L-BFGS, and posterior mean/variance prediction (eq. 4).
//
// Inputs and outputs are standardized internally (zero mean, unit variance
// per coordinate) so that the default hyperparameter bounds are meaningful
// for any problem scaling; predictions are mapped back automatically.
package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/optimize"
)

// Config controls model training. The zero value of optional fields selects
// sensible defaults.
type Config struct {
	// Kernel is the covariance function (required). The model owns the
	// kernel after Fit; pass a Clone if the caller needs to keep it.
	Kernel kernel.Kernel
	// Restarts is the number of random restarts for hyperparameter training
	// in addition to the default initialization (default 2).
	Restarts int
	// MaxIter bounds L-BFGS iterations per restart (default 100).
	MaxIter int
	// NoiseBounds are log-space bounds for log σ_n (default [-8, 1]).
	NoiseBounds [2]float64
	// FixedNoise, when non-nil, pins σ_n to the given value (in standardized
	// output units) instead of training it. Use a small value such as 1e-4
	// for noiseless computer experiments.
	FixedNoise *float64
	// NoStandardizeX disables input standardization (used by tests).
	NoStandardizeX bool
	// WarmStart, when non-nil, is used as the primary training start instead
	// of the default initialization — pass a previous fit's Hyper() to speed
	// up incremental refits. Its length must be NumHyper()+1 (kernel hypers
	// plus log-noise); the noise entry is ignored under FixedNoise.
	WarmStart []float64
	// SkipTraining keeps the WarmStart hyperparameters (or the kernel's
	// current ones when WarmStart is nil) without optimizing the NLML. The
	// BO loop uses it between periodic full refits: the covariance is
	// re-factorized with the new data but hyperparameters stay put.
	SkipTraining bool
}

func (c *Config) defaults() error {
	if c.Kernel == nil {
		return errors.New("gp: Config.Kernel is required")
	}
	if c.Restarts < 0 {
		return fmt.Errorf("gp: negative restarts %d", c.Restarts)
	}
	if c.Restarts == 0 {
		c.Restarts = 2
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.NoiseBounds == [2]float64{} {
		c.NoiseBounds = [2]float64{-8, 1}
	}
	return nil
}

// Model is a trained Gaussian-process regressor.
type Model struct {
	cfg  Config
	kern kernel.Kernel

	// Standardization parameters.
	xMean, xStd []float64
	yMean, yStd float64

	// Standardized training data.
	xs [][]float64
	ys []float64

	logNoise float64 // log σ_n in standardized output units

	chol  *linalg.Cholesky
	alpha []float64 // K⁻¹ y (standardized)
	nlml  float64
}

// Fit trains a GP on the dataset (X, y). Hyperparameters are obtained by
// minimizing the NLML (eq. 3) with analytic gradients, multi-restarted from
// random initializations drawn with rng.
func Fit(X [][]float64, y []float64, cfg Config, rng *rand.Rand) (*Model, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	n := len(X)
	if n == 0 {
		return nil, errors.New("gp: empty training set")
	}
	if len(y) != n {
		return nil, fmt.Errorf("gp: %d inputs but %d observations", n, len(y))
	}
	d := len(X[0])
	if cfg.Kernel.Dim() != d {
		return nil, fmt.Errorf("gp: kernel dim %d != input dim %d", cfg.Kernel.Dim(), d)
	}
	m := &Model{cfg: cfg, kern: cfg.Kernel}
	m.standardize(X, y)

	nk := m.kern.NumHyper()
	nTotal := nk
	trainNoise := cfg.FixedNoise == nil
	if trainNoise {
		nTotal++
	} else {
		m.logNoise = math.Log(math.Max(*cfg.FixedNoise, 1e-10))
	}

	if cfg.SkipTraining {
		if trainNoise {
			m.logNoise = math.Log(1e-2)
		}
		if len(cfg.WarmStart) >= nk {
			m.kern.SetHyper(cfg.WarmStart[:nk])
			if trainNoise && len(cfg.WarmStart) > nk {
				m.logNoise = clamp(cfg.WarmStart[nk], cfg.NoiseBounds[0], cfg.NoiseBounds[1])
			}
		}
		if err := m.factorize(); err != nil {
			return nil, err
		}
		return m, nil
	}

	// Objective over the packed hyper vector [kernel hypers..., logNoise?].
	obj := func(theta, grad []float64) float64 {
		m.kern.SetHyper(theta[:nk])
		if trainNoise {
			m.logNoise = clamp(theta[nk], cfg.NoiseBounds[0], cfg.NoiseBounds[1])
		}
		v, g, err := m.nlmlGrad()
		if err != nil {
			for i := range grad {
				grad[i] = 0
			}
			return math.Inf(1)
		}
		copy(grad, g[:len(grad)])
		return v
	}

	loK, hiK := kernel.BoundsVectors(m.kern)
	bestTheta := make([]float64, nTotal)
	bestNLML := math.Inf(1)
	tryFrom := func(theta0 []float64) {
		r := optimize.LBFGS(obj, theta0, optimize.LBFGSConfig{MaxIter: cfg.MaxIter})
		if r.F < bestNLML && !math.IsNaN(r.F) {
			bestNLML = r.F
			copy(bestTheta, r.X)
		}
	}
	// Default start: zeros (unit amplitude/length scales), modest noise —
	// or the caller's warm start.
	start := make([]float64, nTotal)
	if trainNoise {
		start[nk] = math.Log(1e-2)
	}
	if len(cfg.WarmStart) >= nk {
		copy(start[:nk], cfg.WarmStart[:nk])
		if trainNoise && len(cfg.WarmStart) > nk {
			start[nk] = clamp(cfg.WarmStart[nk], cfg.NoiseBounds[0], cfg.NoiseBounds[1])
		}
	}
	tryFrom(start)
	for r := 0; r < cfg.Restarts; r++ {
		theta0 := make([]float64, nTotal)
		for j := 0; j < nk; j++ {
			theta0[j] = loK[j] + rng.Float64()*(hiK[j]-loK[j])*0.5 + 0.25*(hiK[j]-loK[j])
		}
		if trainNoise {
			lo, hi := cfg.NoiseBounds[0], cfg.NoiseBounds[1]
			theta0[nk] = lo + rng.Float64()*(hi-lo)
		}
		tryFrom(theta0)
	}
	if math.IsInf(bestNLML, 1) {
		return nil, errors.New("gp: training failed from every restart")
	}
	m.kern.SetHyper(bestTheta[:nk])
	if trainNoise {
		m.logNoise = clamp(bestTheta[nk], cfg.NoiseBounds[0], cfg.NoiseBounds[1])
	}
	if err := m.factorize(); err != nil {
		return nil, err
	}
	return m, nil
}

// standardize stores standardization parameters and the transformed data.
func (m *Model) standardize(X [][]float64, y []float64) {
	n, d := len(X), len(X[0])
	m.xMean = make([]float64, d)
	m.xStd = make([]float64, d)
	for j := 0; j < d; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += X[i][j]
		}
		mu := s / float64(n)
		ss := 0.0
		for i := 0; i < n; i++ {
			dv := X[i][j] - mu
			ss += dv * dv
		}
		sd := math.Sqrt(ss / float64(n))
		if sd < 1e-12 || m.cfg.NoStandardizeX {
			mu, sd = 0, 1
		}
		m.xMean[j], m.xStd[j] = mu, sd
	}
	sy := 0.0
	for _, v := range y {
		sy += v
	}
	m.yMean = sy / float64(n)
	ssy := 0.0
	for _, v := range y {
		dv := v - m.yMean
		ssy += dv * dv
	}
	m.yStd = math.Sqrt(ssy / float64(n))
	if m.yStd < 1e-12 {
		m.yStd = 1
	}
	m.xs = make([][]float64, n)
	for i := range X {
		m.xs[i] = m.toStdX(X[i])
	}
	m.ys = make([]float64, n)
	for i, v := range y {
		m.ys[i] = (v - m.yMean) / m.yStd
	}
}

func (m *Model) toStdX(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		out[j] = (x[j] - m.xMean[j]) / m.xStd[j]
	}
	return out
}

// factorize builds the Cholesky of K + σ_n²I and the alpha vector for the
// current hyperparameters.
func (m *Model) factorize() error {
	n := len(m.xs)
	K := linalg.NewMatrix(n, n)
	noise2 := math.Exp(2 * m.logNoise)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := m.kern.Eval(m.xs[i], m.xs[j])
			K.Set(i, j, v)
			K.Set(j, i, v)
		}
		K.Add(i, i, noise2)
	}
	chol, err := linalg.NewCholesky(K)
	if err != nil {
		return fmt.Errorf("gp: covariance factorization: %w", err)
	}
	m.chol = chol
	m.alpha = chol.SolveVec(m.ys)
	m.nlml = 0.5*linalg.Dot(m.ys, m.alpha) + 0.5*chol.LogDet() + 0.5*float64(n)*math.Log(2*math.Pi)
	return nil
}

// nlmlGrad returns the NLML and its gradient with respect to the packed
// hyper vector [kernel hypers..., logNoise].
func (m *Model) nlmlGrad() (float64, []float64, error) {
	n := len(m.xs)
	nk := m.kern.NumHyper()
	K := linalg.NewMatrix(n, n)
	// dK[j] stacked as n×n matrices in one slice to limit allocations.
	dK := make([]*linalg.Matrix, nk)
	for j := range dK {
		dK[j] = linalg.NewMatrix(n, n)
	}
	grad := make([]float64, nk)
	noise2 := math.Exp(2 * m.logNoise)
	gbuf := make([]float64, nk)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := m.kern.EvalGrad(m.xs[i], m.xs[j], gbuf)
			K.Set(i, j, v)
			K.Set(j, i, v)
			for h := 0; h < nk; h++ {
				dK[h].Set(i, j, gbuf[h])
				dK[h].Set(j, i, gbuf[h])
			}
		}
		K.Add(i, i, noise2)
	}
	chol, err := linalg.NewCholesky(K)
	if err != nil {
		return 0, nil, err
	}
	alpha := chol.SolveVec(m.ys)
	nlml := 0.5*linalg.Dot(m.ys, alpha) + 0.5*chol.LogDet() + 0.5*float64(n)*math.Log(2*math.Pi)

	// W = K⁻¹ − α·αᵀ ; grad_j = ½ tr(W · dK_j).
	Kinv := chol.Inverse()
	out := make([]float64, nk+1)
	for h := 0; h < nk; h++ {
		s := 0.0
		for i := 0; i < n; i++ {
			wi := Kinv.Row(i)
			di := dK[h].Row(i)
			ai := alpha[i]
			for j := 0; j < n; j++ {
				s += (wi[j] - ai*alpha[j]) * di[j]
			}
		}
		out[h] = 0.5 * s
	}
	// Noise gradient: dK/dlogσ_n = 2σ_n² I.
	s := 0.0
	for i := 0; i < n; i++ {
		s += Kinv.At(i, i) - alpha[i]*alpha[i]
	}
	out[nk] = 0.5 * s * 2 * noise2
	copy(grad, out[:nk])
	return nlml, out, nil
}

// Predict returns the posterior predictive mean and variance at x, including
// observation noise (first line of eq. 4 plus σ_n², matching the paper).
func (m *Model) Predict(x []float64) (mean, variance float64) {
	mean, variance = m.PredictLatent(x)
	variance += math.Exp(2*m.logNoise) * m.yStd * m.yStd
	return mean, variance
}

// PredictLatent returns the posterior mean and variance of the latent
// function value f(x), excluding observation noise.
func (m *Model) PredictLatent(x []float64) (mean, variance float64) {
	xs := m.toStdX(x)
	n := len(m.xs)
	ks := make([]float64, n)
	for i := 0; i < n; i++ {
		ks[i] = m.kern.Eval(xs, m.xs[i])
	}
	mu := linalg.Dot(ks, m.alpha)
	v := m.chol.ForwardSolve(ks)
	kss := m.kern.Eval(xs, xs)
	va := kss - linalg.Dot(v, v)
	if va < 0 {
		va = 0
	}
	return m.yMean + m.yStd*mu, va * m.yStd * m.yStd
}

// PredictBatch evaluates PredictLatent over many points.
func (m *Model) PredictBatch(xs [][]float64) (means, variances []float64) {
	means = make([]float64, len(xs))
	variances = make([]float64, len(xs))
	for i, x := range xs {
		means[i], variances[i] = m.PredictLatent(x)
	}
	return means, variances
}

// SampleJoint draws one realization of the latent function at the given
// points from the joint posterior — the primitive behind Thompson-sampling
// acquisition (§2.4 lists it among the alternatives to wEI). The joint
// covariance is Σ = K** − K*ᵀ(K+σ²I)⁻¹K*, factorized with jitter.
func (m *Model) SampleJoint(xs [][]float64, rng *rand.Rand) ([]float64, error) {
	q := len(xs)
	std := make([][]float64, q)
	for i, x := range xs {
		std[i] = m.toStdX(x)
	}
	n := len(m.xs)
	// Cross-covariances and posterior mean.
	mean := make([]float64, q)
	vcols := make([][]float64, q) // L⁻¹ k*_i
	for i := 0; i < q; i++ {
		ks := make([]float64, n)
		for j := 0; j < n; j++ {
			ks[j] = m.kern.Eval(std[i], m.xs[j])
		}
		mean[i] = m.yMean + m.yStd*linalg.Dot(ks, m.alpha)
		vcols[i] = m.chol.ForwardSolve(ks)
	}
	cov := linalg.NewMatrix(q, q)
	for i := 0; i < q; i++ {
		for j := i; j < q; j++ {
			v := m.kern.Eval(std[i], std[j]) - linalg.Dot(vcols[i], vcols[j])
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	cv, err := linalg.NewCholesky(cov)
	if err != nil {
		return nil, fmt.Errorf("gp: joint posterior covariance: %w", err)
	}
	z := make([]float64, q)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	sample := make([]float64, q)
	for i := 0; i < q; i++ {
		s := 0.0
		for j := 0; j <= i; j++ {
			s += cv.L.At(i, j) * z[j]
		}
		sample[i] = mean[i] + m.yStd*s
	}
	return sample, nil
}

// NLML returns the trained model's negative log marginal likelihood.
func (m *Model) NLML() float64 { return m.nlml }

// OutputStd returns the output standardization scale. Dividing a predictive
// variance by OutputStd()² expresses it in standardized units — the scale on
// which the paper's fidelity-selection threshold γ = 0.01 is meaningful
// across problems.
func (m *Model) OutputStd() float64 { return m.yStd }

// LOO computes analytic leave-one-out residuals from the trained model
// (Rasmussen & Williams eq. 5.10-5.12): for each training point i, the
// prediction error y_i − µ_{−i}(x_i) and the LOO predictive variance, both
// in original output units, without refitting n models:
//
//	µ_i − y_i = α_i / [K⁻¹]_ii,   σ²_i = 1 / [K⁻¹]_ii.
//
// Large standardized residuals flag model misspecification; the experiment
// harness uses them as a surrogate-health diagnostic.
func (m *Model) LOO() (residuals, variances []float64) {
	n := len(m.xs)
	Kinv := m.chol.Inverse()
	residuals = make([]float64, n)
	variances = make([]float64, n)
	for i := 0; i < n; i++ {
		kii := Kinv.At(i, i)
		residuals[i] = -m.alpha[i] / kii * m.yStd
		variances[i] = 1 / kii * m.yStd * m.yStd
	}
	return residuals, variances
}

// Noise returns the trained observation-noise standard deviation in original
// output units.
func (m *Model) Noise() float64 { return math.Exp(m.logNoise) * m.yStd }

// Kernel exposes the trained kernel (owned by the model; treat as read-only).
func (m *Model) Kernel() kernel.Kernel { return m.kern }

// TrainingSize returns the number of training points.
func (m *Model) TrainingSize() int { return len(m.xs) }

// Hyper returns the packed trained hyperparameters (kernel log-hypers
// followed by log-noise) — useful for warm-starting refits.
func (m *Model) Hyper() []float64 {
	h := kernel.HyperVector(m.kern)
	return append(h, m.logNoise)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Opt-in low-rank (inducing-point) approximate GP for long histories: a
// deterministic-training-conditional (DTC / subset-of-regressors) posterior
// over m inducing points chosen as a stride of the training set, with
// hyperparameters trained subset-of-data on the inducing subset. Training
// costs O(n·m²) instead of O(n³); per-observation updates are O(m²) rank-1
// updates of the m×m information matrix, with the matching downdate for
// fantasy retraction.
package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// lowRankState is the trained DTC approximation:
//
//	Σ  = K_mm + σ⁻²·K_mn·K_nm   (information matrix)
//	w  = σ⁻²·Σ⁻¹·K_mn·y         (predictive weights)
//	µ(x)  = k_m(x)·w
//	σ²(x) = k** − k_mᵀK_mm⁻¹k_m + k_mᵀΣ⁻¹k_m
//
// b = K_mn·y and yy = yᵀy are maintained incrementally so appends and
// retractions never touch the full history.
type lowRankState struct {
	zs        [][]float64 // standardized inducing inputs (m rows)
	cholMM    *linalg.Cholesky
	cholSigma *linalg.Cholesky
	b         []float64
	w         []float64
	yy        float64
	n         int // observations folded in
	noise2    float64

	stack []lrPush // undo log for Truncate, newest last
}

// lrPush records what one AppendObservation added, so Truncate can downdate.
type lrPush struct {
	km []float64 // cross-covariances to the inducing set
	y  float64   // standardized observation
}

// inducingIndices returns m strided indices over [0, n) — deterministic,
// order-preserving coverage of the history (newest and oldest both included).
func inducingIndices(n, m int) []int {
	idx := make([]int, m)
	for i := 0; i < m; i++ {
		idx[i] = i * n / m
	}
	idx[m-1] = n - 1
	return idx
}

// fitLowRank trains the approximation after standardize has run: hypers are
// optimized subset-of-data on the inducing subset (or frozen per
// SkipTraining/WarmStart), then the DTC state is built over the full history.
func (m *Model) fitLowRank(rng *rand.Rand) error {
	cfg := &m.cfg
	n := len(m.xs)
	nk := m.kern.NumHyper()
	trainNoise := cfg.FixedNoise == nil
	idx := inducingIndices(n, cfg.Inducing)
	if cfg.SkipTraining {
		if trainNoise {
			m.logNoise = math.Log(1e-2)
		}
		if len(cfg.WarmStart) >= nk {
			m.kern.SetHyper(cfg.WarmStart[:nk])
			if trainNoise && len(cfg.WarmStart) > nk {
				m.logNoise = clamp(cfg.WarmStart[nk], cfg.NoiseBounds[0], cfg.NoiseBounds[1])
			}
		}
		m.info = FitInfo{SkippedTraining: true, LowRank: true}
	} else {
		subX := make([][]float64, len(idx))
		subY := make([]float64, len(idx))
		for i, j := range idx {
			subX[i] = m.xs[j]
			subY[i] = m.ys[j]
		}
		sub, err := Fit(subX, subY, Config{
			Kernel: m.kern.Clone(), Restarts: cfg.Restarts, MaxIter: cfg.MaxIter,
			NoiseBounds: cfg.NoiseBounds, FixedNoise: cfg.FixedNoise,
			NoStandardizeX: true, WarmStart: cfg.WarmStart,
			Workers: cfg.Workers, Span: cfg.Span,
		}, rng)
		if err != nil {
			return fmt.Errorf("gp: low-rank subset training: %w", err)
		}
		h := sub.Hyper()
		m.kern.SetHyper(h[:nk])
		if trainNoise {
			m.logNoise = clamp(h[nk], cfg.NoiseBounds[0], cfg.NoiseBounds[1])
		} else {
			m.logNoise = math.Log(math.Max(*cfg.FixedNoise, 1e-10))
		}
		m.info = sub.FitInfo()
		m.info.LowRank = true
	}
	return m.buildLowRank(idx)
}

// buildLowRank assembles the DTC state for the current hyperparameters over
// the full standardized history in O(n·m²).
func (m *Model) buildLowRank(idx []int) error {
	n := len(m.xs)
	mi := len(idx)
	lr := &lowRankState{noise2: math.Exp(2 * m.logNoise), n: n}
	lr.zs = make([][]float64, mi)
	for i, j := range idx {
		lr.zs[i] = m.xs[j]
	}
	kmm := linalg.NewMatrix(mi, mi)
	for i := 0; i < mi; i++ {
		for j := i; j < mi; j++ {
			v := m.kern.Eval(lr.zs[i], lr.zs[j])
			kmm.Set(i, j, v)
			kmm.Set(j, i, v)
		}
		// Nugget for the rank-deficient K_mm (duplicate design rows).
		kmm.Add(i, i, 1e-8)
	}
	cholMM, err := linalg.NewCholesky(kmm)
	if err != nil {
		return fmt.Errorf("gp: inducing covariance factorization: %w", err)
	}
	sigma := linalg.NewMatrix(mi, mi)
	copy(sigma.Data, kmm.Data)
	lr.b = make([]float64, mi)
	km := make([]float64, mi)
	inv := 1 / lr.noise2
	for t := 0; t < n; t++ {
		xt := m.xs[t]
		for i := 0; i < mi; i++ {
			km[i] = m.kern.Eval(lr.zs[i], xt)
		}
		yt := m.ys[t]
		lr.yy += yt * yt
		for i := 0; i < mi; i++ {
			lr.b[i] += km[i] * yt
			row := sigma.Data[i*mi : (i+1)*mi]
			s := inv * km[i]
			for j := 0; j < mi; j++ {
				row[j] += s * km[j]
			}
		}
	}
	cholSigma, err := linalg.NewCholesky(sigma)
	if err != nil {
		return fmt.Errorf("gp: information-matrix factorization: %w", err)
	}
	lr.cholMM = cholMM
	lr.cholSigma = cholSigma
	lr.w = make([]float64, mi)
	lr.refreshWeights(m)
	m.lowRank = lr
	m.chol = nil
	m.alpha = nil
	return nil
}

// refreshWeights recomputes w = σ⁻²Σ⁻¹b and the approximate NLML (matrix
// determinant lemma + Woodbury) in O(m²).
func (lr *lowRankState) refreshWeights(m *Model) {
	lr.cholSigma.SolveVecInto(lr.b, lr.w)
	inv := 1 / lr.noise2
	quad := lr.yy
	for i, wi := range lr.w {
		lr.w[i] = wi * inv
		quad -= lr.b[i] * lr.w[i]
	}
	quad *= inv
	logdet := float64(lr.n)*math.Log(lr.noise2) + lr.cholSigma.LogDet() - lr.cholMM.LogDet()
	m.nlml = 0.5*quad + 0.5*logdet + 0.5*float64(lr.n)*math.Log(2*math.Pi)
}

// predict evaluates the DTC posterior at a standardized point, using the
// caller's scratch (ks holds k_m, v the triangular solves).
func (lr *lowRankState) predict(m *Model, sc *predictScratch) (mean, variance float64) {
	mi := len(lr.zs)
	km := sc.ks[:mi]
	if sc.prof != nil {
		diff := sc.diff
		for i, zi := range lr.zs {
			for t := range diff {
				diff[t] = sc.x[t] - zi[t]
			}
			km[i] = sc.prof.Eval(diff)
		}
	} else {
		for i, zi := range lr.zs {
			km[i] = m.kern.Eval(sc.x, zi)
		}
	}
	mu := linalg.Dot(km, lr.w)
	var kss float64
	if sc.prof != nil {
		for t := range sc.diff {
			sc.diff[t] = 0
		}
		kss = sc.prof.Eval(sc.diff)
	} else {
		kss = m.kern.Eval(sc.x, sc.x)
	}
	v := sc.v[:mi]
	lr.cholMM.ForwardSolveInto(km, v)
	va := kss - linalg.Dot(v, v)
	lr.cholSigma.ForwardSolveInto(km, v)
	va += linalg.Dot(v, v)
	if va < 0 {
		va = 0
	}
	return m.yMean + m.yStd*mu, va * m.yStd * m.yStd
}

// append folds one standardized observation in O(m²): Σ gets a rank-1 update
// with k_m/σ, b and yy accumulate, and the weights/NLML are refreshed. The
// push is recorded so truncate can retract it with the matching downdate.
func (lr *lowRankState) append(m *Model, sx []float64, sy float64) error {
	mi := len(lr.zs)
	km := make([]float64, mi)
	for i, zi := range lr.zs {
		km[i] = m.kern.Eval(sx, zi)
	}
	u := m.rowScratch(mi)
	s := 1 / math.Sqrt(lr.noise2)
	for i, v := range km {
		u[i] = v * s
	}
	lr.cholSigma.RankOneUpdate(u)
	for i, v := range km {
		lr.b[i] += v * sy
	}
	lr.yy += sy * sy
	lr.n++
	lr.stack = append(lr.stack, lrPush{km: km, y: sy})
	lr.refreshWeights(m)
	return nil
}

// truncate retracts appends down to n observations by downdating Σ per popped
// point. A failed downdate (numerically indefinite) leaves the state unusable
// and returns ErrNotPositiveDefinite — callers fall back to a full refit.
func (lr *lowRankState) truncate(m *Model, n int) error {
	if lr.n-n > len(lr.stack) {
		return errors.New("gp: low-rank truncation past the last full fit")
	}
	s := 1 / math.Sqrt(lr.noise2)
	for lr.n > n {
		p := lr.stack[len(lr.stack)-1]
		lr.stack = lr.stack[:len(lr.stack)-1]
		u := m.rowScratch(len(p.km))
		for i, v := range p.km {
			u[i] = v * s
		}
		if err := lr.cholSigma.RankOneDowndate(u); err != nil {
			return fmt.Errorf("gp: fantasy retraction: %w", err)
		}
		for i, v := range p.km {
			lr.b[i] -= v * p.y
		}
		lr.yy -= p.y * p.y
		lr.n--
	}
	lr.refreshWeights(m)
	return nil
}

// IsLowRank reports whether the model uses the inducing-point approximation.
func (m *Model) IsLowRank() bool { return m.lowRank != nil }

// InducingCount returns the number of inducing points (0 for exact models).
func (m *Model) InducingCount() int {
	if m.lowRank == nil {
		return 0
	}
	return len(m.lowRank.zs)
}

package gp

// pairGeo is the kernel-geometry cache: the per-dimension pairwise difference
// tensor Δ(i,j)[d] = x_i[d] − x_j[d] over the standardized training set,
// stored once per Fit for the upper triangle (i ≤ j) and shared read-only by
// every restart workspace. With a kernel.PairProfile the ARD-SE covariance
// (and its gradient) becomes a cached-difference dot product per pair — the
// training-set coordinates are never re-read and no per-pair exp of the
// length scales is ever taken inside the O(n²) loops.
type pairGeo struct {
	n, d   int
	diffs  []float64 // pair-major: pair p occupies diffs[p*d : (p+1)*d]
	rowOff []int     // rowOff[i] = index of pair (i, i); pair (i,j) = rowOff[i]+j−i
}

// newPairGeo builds the difference tensor for the standardized inputs xs.
func newPairGeo(xs [][]float64) *pairGeo {
	n := len(xs)
	if n == 0 {
		return &pairGeo{}
	}
	d := len(xs[0])
	g := &pairGeo{n: n, d: d, rowOff: make([]int, n)}
	nPairs := n * (n + 1) / 2
	g.diffs = make([]float64, nPairs*d)
	p := 0
	for i := 0; i < n; i++ {
		g.rowOff[i] = p
		xi := xs[i]
		for j := i; j < n; j++ {
			xj := xs[j]
			row := g.diffs[p*d : p*d+d]
			for t := 0; t < d; t++ {
				row[t] = xi[t] - xj[t]
			}
			p++
		}
	}
	return g
}

// diff returns the cached difference vector x_i − x_j. Requires i ≤ j.
func (g *pairGeo) diff(i, j int) []float64 {
	p := g.rowOff[i] + j - i
	return g.diffs[p*g.d : p*g.d+g.d]
}

package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kernel"
)

func fixedNoise(v float64) *float64 { return &v }

func TestFitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Fit(nil, nil, Config{Kernel: kernel.NewSEARD(1)}, rng); err == nil {
		t.Fatal("expected error on empty data")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Config{Kernel: kernel.NewSEARD(1)}, rng); err == nil {
		t.Fatal("expected error on length mismatch")
	}
	if _, err := Fit([][]float64{{1, 2}}, []float64{1}, Config{Kernel: kernel.NewSEARD(1)}, rng); err == nil {
		t.Fatal("expected error on dim mismatch")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1}, Config{}, rng); err == nil {
		t.Fatal("expected error on missing kernel")
	}
}

// A GP with tiny noise must interpolate its training data.
func TestInterpolation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X := [][]float64{{0}, {0.3}, {0.5}, {0.8}, {1}}
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = math.Sin(3 * x[0])
	}
	m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-6)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		mu, va := m.PredictLatent(x)
		if math.Abs(mu-y[i]) > 1e-3 {
			t.Fatalf("not interpolating at %v: %v vs %v", x, mu, y[i])
		}
		if va > 1e-4 {
			t.Fatalf("variance at training point too large: %v", va)
		}
	}
}

func TestPredictionAccuracyBetweenPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 25
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n-1)
		X[i] = []float64{x}
		y[i] = math.Sin(2*math.Pi*x) + 0.5*x
	}
	m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-5), Restarts: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.13, 0.42, 0.77} {
		mu, _ := m.PredictLatent([]float64{x})
		want := math.Sin(2*math.Pi*x) + 0.5*x
		if math.Abs(mu-want) > 0.02 {
			t.Fatalf("prediction at %v: %v vs %v", x, mu, want)
		}
	}
}

func TestUncertaintyGrowsAwayFromData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X := [][]float64{{0.4}, {0.45}, {0.5}, {0.55}, {0.6}}
	y := []float64{1, 1.2, 1.1, 0.9, 1.0}
	m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, vNear := m.PredictLatent([]float64{0.5})
	_, vFar := m.PredictLatent([]float64{3})
	if vFar <= vNear {
		t.Fatalf("variance should grow away from data: near=%v far=%v", vNear, vFar)
	}
}

func TestPredictIncludesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X := [][]float64{{0}, {1}, {2}}
	y := []float64{0, 1, 2}
	m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(0.1)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, vLatent := m.PredictLatent([]float64{0.5})
	_, vNoisy := m.Predict([]float64{0.5})
	if vNoisy <= vLatent {
		t.Fatal("Predict should add observation noise to the latent variance")
	}
}

func TestNoiseRecovery(t *testing.T) {
	// With many replicated noisy observations, trained noise should land in
	// the right ballpark.
	rng := rand.New(rand.NewSource(6))
	trueNoise := 0.2
	var X [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		x := rng.Float64()
		X = append(X, []float64{x})
		y = append(y, math.Sin(2*x)+trueNoise*rng.NormFloat64())
	}
	m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), Restarts: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.Noise() < trueNoise/3 || m.Noise() > trueNoise*3 {
		t.Fatalf("trained noise %v far from true %v", m.Noise(), trueNoise)
	}
}

func TestNLMLGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 8
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = rng.NormFloat64()
	}
	m := &Model{cfg: Config{Kernel: kernel.NewSEARD(2)}, kern: kernel.NewSEARD(2)}
	m.standardize(X, y)
	m.logNoise = math.Log(0.1)

	theta := []float64{0.3, -0.2, 0.4}
	m.kern.SetHyper(theta)
	v0, g, err := m.nlmlGrad()
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	// Kernel hypers.
	for j := range theta {
		save := theta[j]
		theta[j] = save + h
		m.kern.SetHyper(theta)
		up, _, _ := m.nlmlGrad()
		theta[j] = save - h
		m.kern.SetHyper(theta)
		dn, _, _ := m.nlmlGrad()
		theta[j] = save
		m.kern.SetHyper(theta)
		fd := (up - dn) / (2 * h)
		if math.Abs(fd-g[j]) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("hyper %d: analytic %v vs fd %v", j, g[j], fd)
		}
	}
	// Noise hyper.
	saveN := m.logNoise
	m.logNoise = saveN + h
	up, _, _ := m.nlmlGrad()
	m.logNoise = saveN - h
	dn, _, _ := m.nlmlGrad()
	m.logNoise = saveN
	fd := (up - dn) / (2 * h)
	if math.Abs(fd-g[len(g)-1]) > 1e-4*(1+math.Abs(fd)) {
		t.Fatalf("noise grad: analytic %v vs fd %v", g[len(g)-1], fd)
	}
	_ = v0
}

func TestTrainingImprovesNLML(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 20
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := 3 * rng.Float64()
		X[i] = []float64{x}
		y[i] = math.Exp(-x) * math.Sin(5*x)
	}
	// Model with default hypers (untrained baseline): restarts=0 is not
	// allowed to skip training, so compare against a single-iteration fit.
	quick1, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), MaxIter: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), Restarts: 3, MaxIter: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if full.NLML() > quick1.NLML()+1e-9 {
		t.Fatalf("more training should not worsen NLML: %v vs %v", full.NLML(), quick1.NLML())
	}
}

func TestStandardizationInvariance(t *testing.T) {
	// Shifting and scaling the outputs must shift/scale predictions
	// accordingly (the model standardizes internally).
	rng1 := rand.New(rand.NewSource(9))
	rng2 := rand.New(rand.NewSource(9))
	X := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	y1 := []float64{0, 0.5, 0.8, 0.4, 0.1}
	y2 := make([]float64, len(y1))
	const scale, shift = 1000.0, -500.0
	for i, v := range y1 {
		y2[i] = scale*v + shift
	}
	m1, err := Fit(X, y1, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-6)}, rng1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(X, y2, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-6)}, rng2)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.1, 0.6, 0.9} {
		mu1, v1 := m1.PredictLatent([]float64{x})
		mu2, v2 := m2.PredictLatent([]float64{x})
		if math.Abs(mu2-(scale*mu1+shift)) > 1e-2*scale {
			t.Fatalf("mean not equivariant at %v: %v vs %v", x, mu2, scale*mu1+shift)
		}
		if math.Abs(v2-scale*scale*v1) > 1e-2*scale*scale*(1e-9+v1)+1e-6 {
			t.Fatalf("variance not equivariant at %v: %v vs %v", x, v2, scale*scale*v1)
		}
	}
}

func TestConstantOutputsDoNotCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	X := [][]float64{{0}, {1}, {2}}
	y := []float64{5, 5, 5}
	m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mu, va := m.PredictLatent([]float64{0.5})
	if math.IsNaN(mu) || math.IsNaN(va) {
		t.Fatalf("NaN prediction for constant outputs: %v %v", mu, va)
	}
	if math.Abs(mu-5) > 1 {
		t.Fatalf("prediction %v far from constant 5", mu)
	}
}

func TestSinglePointTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, err := Fit([][]float64{{0.3, 0.7}}, []float64{2}, Config{Kernel: kernel.NewSEARD(2)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := m.PredictLatent([]float64{0.3, 0.7})
	if math.Abs(mu-2) > 0.5 {
		t.Fatalf("single-point prediction %v, want ≈2", mu)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 15
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64() * 4, rng.Float64() * 4}
		y[i] = X[i][0] * math.Sin(X[i][1])
	}
	m, err := Fit(X, y, Config{Kernel: kernel.NewMatern52(2)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		x := []float64{math.Mod(math.Abs(a), 8) - 2, math.Mod(math.Abs(b), 8) - 2}
		mu, va := m.PredictLatent(x)
		return va >= 0 && !math.IsNaN(mu) && !math.IsNaN(va)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictBatchAgreesWithSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	X := [][]float64{{0}, {0.5}, {1}}
	y := []float64{1, 0, 1}
	m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pts := [][]float64{{0.2}, {0.4}, {0.9}}
	mus, vas := m.PredictBatch(pts)
	for i, p := range pts {
		mu, va := m.PredictLatent(p)
		if mu != mus[i] || va != vas[i] {
			t.Fatal("batch prediction disagrees with single")
		}
	}
}

func TestHyperPackedLength(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	k := kernel.NewSEARD(3)
	m, err := Fit([][]float64{{0, 0, 0}, {1, 1, 1}}, []float64{0, 1}, Config{Kernel: k}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(m.Hyper()), k.NumHyper()+1; got != want {
		t.Fatalf("Hyper length %d, want %d", got, want)
	}
	if m.TrainingSize() != 2 {
		t.Fatalf("TrainingSize = %d", m.TrainingSize())
	}
}

func TestSampleJointStatistics(t *testing.T) {
	// Sample statistics across many joint draws must match the marginal
	// posterior mean and variance.
	rng := rand.New(rand.NewSource(18))
	X := [][]float64{{0}, {0.5}, {1}}
	y := []float64{0, 1, 0}
	m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-4)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pts := [][]float64{{0.25}, {0.75}, {1.5}}
	const draws = 3000
	sums := make([]float64, len(pts))
	sqs := make([]float64, len(pts))
	for d := 0; d < draws; d++ {
		s, err := m.SampleJoint(pts, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range s {
			sums[i] += v
			sqs[i] += v * v
		}
	}
	for i, p := range pts {
		mu, va := m.PredictLatent(p)
		sampleMean := sums[i] / draws
		sampleVar := sqs[i]/draws - sampleMean*sampleMean
		if math.Abs(sampleMean-mu) > 0.1*(1+math.Abs(mu)) {
			t.Fatalf("point %v: sample mean %v vs posterior %v", p, sampleMean, mu)
		}
		if va > 1e-6 && (sampleVar < va/2 || sampleVar > va*2) {
			t.Fatalf("point %v: sample var %v vs posterior %v", p, sampleVar, va)
		}
	}
}

func TestSampleJointInterpolatesAtData(t *testing.T) {
	// At training points with tiny noise, every sample must pass close to
	// the observations.
	rng := rand.New(rand.NewSource(19))
	X := [][]float64{{0}, {1}}
	y := []float64{2, -1}
	m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-6)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 20; d++ {
		s, err := m.SampleJoint(X, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s[0]-2) > 0.05 || math.Abs(s[1]+1) > 0.05 {
			t.Fatalf("sample %v strays from data", s)
		}
	}
}

func TestLOOResiduals(t *testing.T) {
	// Compare analytic LOO against brute-force refitting with one point
	// held out, using fixed hyperparameters so the comparison is exact.
	rng := rand.New(rand.NewSource(16))
	n := 10
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := float64(i) / float64(n-1)
		X[i] = []float64{x}
		y[i] = math.Sin(4 * x)
	}
	cfg := Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-3)}
	m, err := Fit(X, y, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	resid, vars := m.LOO()
	if len(resid) != n || len(vars) != n {
		t.Fatalf("LOO lengths %d/%d", len(resid), len(vars))
	}
	for _, v := range vars {
		if v <= 0 {
			t.Fatalf("non-positive LOO variance %v", v)
		}
	}
	// The analytic identity guarantees: residual = µ_{−i}(x_i) − y_i with
	// variance 1/[K⁻¹]_ii; on smooth noise-free data every residual must be
	// consistent with its own LOO uncertainty.
	for i := range resid {
		if math.Abs(resid[i]) > 6*math.Sqrt(vars[i]) {
			t.Fatalf("LOO residual %d inconsistent with its variance: %v vs sd %v",
				i, resid[i], math.Sqrt(vars[i]))
		}
	}
}

func TestLOOFlagsOutlier(t *testing.T) {
	// A corrupted observation should carry a much larger LOO residual than
	// its neighbours.
	rng := rand.New(rand.NewSource(17))
	n := 12
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := float64(i) / float64(n-1)
		X[i] = []float64{x}
		y[i] = x // smooth linear data
	}
	y[5] += 3 // outlier
	m, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-2)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	resid, _ := m.LOO()
	maxAbs, maxIdx := 0.0, -1
	for i, r := range resid {
		if a := math.Abs(r); a > maxAbs {
			maxAbs, maxIdx = a, i
		}
	}
	if maxIdx != 5 {
		t.Fatalf("largest LOO residual at %d, want the outlier at 5 (resid %v)", maxIdx, resid)
	}
}

func TestNARGPKernelTrains(t *testing.T) {
	// Smoke test: the structured multi-fidelity kernel must train without
	// numerical failure on augmented inputs.
	rng := rand.New(rand.NewSource(15))
	n := 12
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := rng.Float64()
		fl := math.Sin(8 * math.Pi * x)
		X[i] = []float64{x, fl}
		y[i] = (x - math.Sqrt2) * fl * fl
	}
	m, err := Fit(X, y, Config{Kernel: kernel.NewNARGP(1), Restarts: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mu, va := m.PredictLatent([]float64{0.5, math.Sin(4 * math.Pi)})
	if math.IsNaN(mu) || math.IsNaN(va) {
		t.Fatal("NaN prediction from NARGP kernel")
	}
}

package gp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/linalg"
)

func incrTrainSet(rng *rand.Rand, n, d int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		s := 0.0
		for j := range X[i] {
			X[i][j] = rng.Float64() * 4
			s += X[i][j]
		}
		y[i] = math.Sin(s) + 0.1*X[i][0]*X[i][0]
	}
	return X, y
}

// TestAppendObservationMatchesBatchFactor appends points one at a time and
// pins the maintained factor, α and NLML against a from-scratch factorization
// of the same kernel matrix (same frozen hyperparameters/standardization).
func TestAppendObservationMatchesBatchFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := incrTrainSet(rng, 30, 2)
	m, err := Fit(X[:20], y[:20], Config{Kernel: kernel.NewSEARD(2), Restarts: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 30; i++ {
		if err := m.AppendObservation(X[i], y[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if m.TrainingSize() != 30 {
		t.Fatalf("size %d, want 30", m.TrainingSize())
	}
	// Rebuild K over the maintained standardized data with the same hypers.
	n := len(m.xs)
	K := linalg.NewMatrix(n, n)
	noise2 := math.Exp(2 * m.logNoise)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := m.kern.Eval(m.xs[i], m.xs[j])
			K.Set(i, j, v)
			K.Set(j, i, v)
		}
		K.Add(i, i, noise2)
	}
	fresh, err := linalg.NewCholesky(K)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if !almostEqF(m.chol.L.At(i, j), fresh.L.At(i, j), 1e-8) {
				t.Fatalf("factor[%d,%d]: incremental %v vs fresh %v", i, j, m.chol.L.At(i, j), fresh.L.At(i, j))
			}
		}
	}
	alpha := fresh.SolveVec(m.ys)
	for i := range alpha {
		if !almostEqF(m.alpha[i], alpha[i], 1e-7) {
			t.Fatalf("alpha[%d]: %v vs %v", i, m.alpha[i], alpha[i])
		}
	}
	wantNLML := 0.5*linalg.Dot(m.ys, alpha) + 0.5*fresh.LogDet() + 0.5*float64(n)*math.Log(2*math.Pi)
	if !almostEqF(m.nlml, wantNLML, 1e-8) {
		t.Fatalf("nlml %v vs %v", m.nlml, wantNLML)
	}
}

// TestTruncateRestoresExactModelBitwise proves the fantasy cycle is an exact
// no-op on the exact path: append then truncate leaves α, NLML and
// predictions bit-identical.
func TestTruncateRestoresExactModelBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := incrTrainSet(rng, 28, 3)
	m, err := Fit(X[:25], y[:25], Config{Kernel: kernel.NewSEARD(3), Restarts: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	probes := make([][]float64, 5)
	for i := range probes {
		probes[i] = []float64{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 4}
	}
	muBefore := make([]float64, len(probes))
	vaBefore := make([]float64, len(probes))
	for i, p := range probes {
		muBefore[i], vaBefore[i] = m.PredictLatent(p)
	}
	nlmlBefore := m.NLML()
	for i := 25; i < 28; i++ {
		if err := m.AppendObservation(X[i], y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Truncate(25); err != nil {
		t.Fatal(err)
	}
	if m.NLML() != nlmlBefore {
		t.Fatalf("nlml changed across append+truncate: %v vs %v", m.NLML(), nlmlBefore)
	}
	for i, p := range probes {
		mu, va := m.PredictLatent(p)
		if mu != muBefore[i] || va != vaBefore[i] {
			t.Fatalf("prediction %d changed across append+truncate", i)
		}
	}
}

// TestLowRankFitApproximatesExact checks the inducing-point model against the
// exact GP on a smooth function: predictions should track closely and the
// NLML must be finite.
func TestLowRankFitApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 160
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{8 * float64(i) / float64(n-1)}
		y[i] = math.Sin(X[i][0]) + 0.2*X[i][0]
	}
	exact, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-3), Restarts: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := Fit(X, y, Config{Kernel: kernel.NewSEARD(1), FixedNoise: fixedNoise(1e-3), Restarts: 1, Inducing: 40}, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	if !lr.IsLowRank() || lr.InducingCount() != 40 {
		t.Fatalf("expected a 40-point low-rank model, got lowRank=%v m=%d", lr.IsLowRank(), lr.InducingCount())
	}
	if exact.IsLowRank() {
		t.Fatal("exact model reports low-rank")
	}
	if math.IsNaN(lr.NLML()) || math.IsInf(lr.NLML(), 0) {
		t.Fatalf("low-rank NLML not finite: %v", lr.NLML())
	}
	var worst float64
	for q := 0.0; q <= 8; q += 0.25 {
		me, _ := exact.PredictLatent([]float64{q})
		ml, vl := lr.PredictLatent([]float64{q})
		if vl < 0 {
			t.Fatalf("negative low-rank variance at %v", q)
		}
		if d := math.Abs(me - ml); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Fatalf("low-rank posterior mean deviates by %v from exact", worst)
	}
	if _, err := lr.SampleJoint([][]float64{{1}}, rng); err == nil {
		t.Fatal("SampleJoint should refuse low-rank models")
	}
	if r, v := lr.LOO(); r != nil || v != nil {
		t.Fatal("LOO should be nil on low-rank models")
	}
}

// TestLowRankAppendMatchesRebuild folds points in incrementally and compares
// the maintained weights/NLML against a from-scratch rebuild of the DTC state
// over the same inducing set.
func TestLowRankAppendMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	X, y := incrTrainSet(rng, 80, 2)
	m, err := Fit(X[:60], y[:60], Config{Kernel: kernel.NewSEARD(2), FixedNoise: fixedNoise(1e-2), Restarts: 1, Inducing: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 60; i < 80; i++ {
		if err := m.AppendObservation(X[i], y[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	lr := m.lowRank
	mi := len(lr.zs)
	// Rebuild Σ and b from scratch over the maintained data.
	kmm := linalg.NewMatrix(mi, mi)
	for i := 0; i < mi; i++ {
		for j := i; j < mi; j++ {
			v := m.kern.Eval(lr.zs[i], lr.zs[j])
			kmm.Set(i, j, v)
			kmm.Set(j, i, v)
		}
		kmm.Add(i, i, 1e-8)
	}
	sigma := kmm.Clone()
	b := make([]float64, mi)
	km := make([]float64, mi)
	inv := 1 / lr.noise2
	for t2 := 0; t2 < len(m.xs); t2++ {
		for i := 0; i < mi; i++ {
			km[i] = m.kern.Eval(lr.zs[i], m.xs[t2])
		}
		for i := 0; i < mi; i++ {
			b[i] += km[i] * m.ys[t2]
			for j := 0; j < mi; j++ {
				sigma.Add(i, j, inv*km[i]*km[j])
			}
		}
	}
	cholS, err := linalg.NewCholesky(sigma)
	if err != nil {
		t.Fatal(err)
	}
	w := cholS.SolveVec(b)
	for i := range w {
		w[i] *= inv
		if !almostEqF(lr.w[i], w[i], 1e-4) {
			t.Fatalf("w[%d]: incremental %v vs rebuilt %v", i, lr.w[i], w[i])
		}
	}
	if !almostEqF(lr.cholSigma.LogDet(), cholS.LogDet(), 1e-6) {
		t.Fatalf("logdet Σ: %v vs %v", lr.cholSigma.LogDet(), cholS.LogDet())
	}
}

// TestLowRankTruncateRetractsFantasies checks the downdate-based retraction:
// append then truncate restores predictions within roundoff.
func TestLowRankTruncateRetractsFantasies(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	X, y := incrTrainSet(rng, 70, 2)
	m, err := Fit(X[:66], y[:66], Config{Kernel: kernel.NewSEARD(2), FixedNoise: fixedNoise(1e-2), Restarts: 1, Inducing: 24}, rng)
	if err != nil {
		t.Fatal(err)
	}
	probes := [][]float64{{1, 1}, {2, 3}, {0.5, 3.5}}
	muBefore := make([]float64, len(probes))
	for i, p := range probes {
		muBefore[i], _ = m.PredictLatent(p)
	}
	for i := 66; i < 70; i++ {
		if err := m.AppendObservation(X[i], y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Truncate(66); err != nil {
		t.Fatal(err)
	}
	if m.TrainingSize() != 66 {
		t.Fatalf("size %d after truncate, want 66", m.TrainingSize())
	}
	for i, p := range probes {
		mu, _ := m.PredictLatent(p)
		if !almostEqF(mu, muBefore[i], 1e-9) {
			t.Fatalf("probe %d: %v vs %v after retraction", i, mu, muBefore[i])
		}
	}
	// Truncating past the last full fit must be refused.
	if err := m.Truncate(60); err == nil {
		t.Fatal("expected error truncating past the fitted prefix")
	}
}

func almostEqF(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

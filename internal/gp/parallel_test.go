package gp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// trainSet builds a deterministic smooth dataset on [0,1]^d.
func trainSet(seed int64, n, d int) (X [][]float64, y []float64, lo, hi []float64) {
	rng := rand.New(rand.NewSource(seed))
	lo = make([]float64, d)
	hi = make([]float64, d)
	for j := range hi {
		hi[j] = 1
	}
	X = stats.LatinHypercube(rng, lo, hi, n)
	y = make([]float64, n)
	for i, x := range X {
		for j, v := range x {
			y[i] += math.Sin(3*v + float64(j))
		}
	}
	return X, y, lo, hi
}

// TestFitParallelDeterminism is the tentpole guarantee for surrogate
// training: concurrent L-BFGS restarts must produce bit-identical
// hyperparameters and predictions for every worker count, across seeds,
// sizes and restart counts.
func TestFitParallelDeterminism(t *testing.T) {
	cases := []struct {
		name     string
		seed     int64
		n, d     int
		restarts int
	}{
		{"small-2d", 1, 20, 2, 3},
		{"medium-3d", 2, 32, 3, 4},
		{"many-restarts", 3, 16, 2, 6},
		{"single-restart", 4, 24, 4, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			X, y, lo, hi := trainSet(tc.seed, tc.n, tc.d)
			fit := func(workers int) *Model {
				m, err := Fit(X, y, Config{
					Kernel:   kernel.NewSEARD(tc.d),
					Restarts: tc.restarts,
					MaxIter:  30,
					Workers:  workers,
				}, rand.New(rand.NewSource(tc.seed+100)))
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			m1 := fit(1)
			m8 := fit(8)
			h1, h8 := m1.Hyper(), m8.Hyper()
			if len(h1) != len(h8) {
				t.Fatalf("hyper lengths differ: %d vs %d", len(h1), len(h8))
			}
			for i := range h1 {
				if math.Float64bits(h1[i]) != math.Float64bits(h8[i]) {
					t.Fatalf("hyper[%d] differs: %v (serial) vs %v (8 workers)", i, h1[i], h8[i])
				}
			}
			probes := stats.LatinHypercube(rand.New(rand.NewSource(tc.seed+200)), lo, hi, 25)
			for pi, x := range probes {
				mu1, v1 := m1.PredictLatent(x)
				mu8, v8 := m8.PredictLatent(x)
				if math.Float64bits(mu1) != math.Float64bits(mu8) ||
					math.Float64bits(v1) != math.Float64bits(v8) {
					t.Fatalf("probe %d: (%v,%v) vs (%v,%v)", pi, mu1, v1, mu8, v8)
				}
			}
		})
	}
}

// TestPredictBatchParallelDeterminism pins the prediction fan-out: a model
// trained once must produce bit-identical batch outputs under any worker
// count, and those must match the single-point path.
func TestPredictBatchParallelDeterminism(t *testing.T) {
	X, y, lo, hi := trainSet(7, 28, 3)
	grid := stats.LatinHypercube(rand.New(rand.NewSource(8)), lo, hi, 64)
	fit := func(workers int) *Model {
		m, err := Fit(X, y, Config{
			Kernel: kernel.NewSEARD(3), MaxIter: 30, Workers: workers,
		}, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1 := fit(1)
	m8 := fit(8)
	mu1, v1 := m1.PredictBatch(grid)
	mu8, v8 := m8.PredictBatch(grid)
	for i := range grid {
		if math.Float64bits(mu1[i]) != math.Float64bits(mu8[i]) ||
			math.Float64bits(v1[i]) != math.Float64bits(v8[i]) {
			t.Fatalf("batch %d: (%v,%v) vs (%v,%v)", i, mu1[i], v1[i], mu8[i], v8[i])
		}
		sm, sv := m8.PredictLatent(grid[i])
		bm, bv := m8.PredictBatch(grid[i : i+1])
		if math.Float64bits(sm) != math.Float64bits(bm[0]) ||
			math.Float64bits(sv) != math.Float64bits(bv[0]) {
			t.Fatalf("single/batch mismatch at %d", i)
		}
	}
}

// TestPredictLatentAllocationLean asserts the pooled scratch path: after
// warmup, a posterior evaluation must not allocate per call.
func TestPredictLatentAllocationLean(t *testing.T) {
	if parallel.RaceEnabled {
		t.Skip("race runtime defeats sync.Pool reuse; alloc counts only hold without -race")
	}
	X, y, lo, hi := trainSet(11, 24, 3)
	m, err := Fit(X, y, Config{
		Kernel: kernel.NewSEARD(3), MaxIter: 30,
	}, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	x := stats.LatinHypercube(rand.New(rand.NewSource(13)), lo, hi, 1)[0]
	m.PredictLatent(x) // warm the pool
	allocs := testing.AllocsPerRun(200, func() { m.PredictLatent(x) })
	if allocs > 1 {
		t.Fatalf("PredictLatent allocates %.1f objects per call; want ≤ 1", allocs)
	}
}

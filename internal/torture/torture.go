// Package torture is the full-stack chaos harness: it runs an optimization
// service through repeated SIGKILL-style crash/restart cycles — with storage
// faults injected underneath (see storage.Chaos) and, optionally, network
// faults in front (see Proxy) — while checking the crash-consistency
// contract from the outside:
//
//   - No acknowledged observation is ever lost: a report the service acked
//     was durably checkpointed first, so it must still be there after any
//     crash.
//   - No double work: a suggestion whose report was acked is never offered
//     to a worker again.
//   - Liveness: despite every fault, the run eventually converges (budget
//     exhausted, session done).
//
// The harness drives any DaemonController — InProc restarts a server.Server
// inside the test process (used by the -race torture test), while
// cmd/mfbo-chaos implements the same interface around a real child process
// and real SIGKILLs.
package torture

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/dispatch"
	"repro/internal/problem"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// Options tunes one torture run.
type Options struct {
	// Session is the pinned session ID (default "torture").
	Session string
	// Problem is the catalog problem name (default "constrained" — cheap,
	// constrained, multi-fidelity).
	Problem string
	// Budget / InitLow / InitHigh size the run (defaults 16.3 / 80 / 8:
	// ~90 observations, almost all cheap design points — enough capacity
	// that every kill cycle can ack up to Workers evaluations and the
	// budget still lasts past Cycles restarts).
	Budget            float64
	InitLow, InitHigh int
	// Batch is the session's in-flight suggestion width (default 3).
	Batch int
	// Seed seeds the session's trajectory (default 11).
	Seed int64
	// Workers is the number of concurrent evaluator loops (default 3).
	Workers int
	// Cycles is the number of kill/restart cycles before the final,
	// kill-free convergence pass (default 25).
	Cycles int
	// AcksPerCycle is how many fresh acks a cycle waits for before killing
	// the daemon (default 1).
	AcksPerCycle int
	// BetweenCycles, when non-nil, runs after each kill with the 0-based
	// cycle index — the hook tests use to corrupt storage heads between
	// process lifetimes.
	BetweenCycles func(cycle int)
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.Session == "" {
		o.Session = "torture"
	}
	if o.Problem == "" {
		o.Problem = "constrained"
	}
	if o.Budget <= 0 {
		o.Budget = 16.3
	}
	if o.InitLow <= 0 {
		o.InitLow = 80
	}
	if o.InitHigh <= 0 {
		o.InitHigh = 8
	}
	if o.Batch <= 0 {
		o.Batch = 3
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
	if o.Workers <= 0 {
		o.Workers = 3
	}
	if o.Cycles <= 0 {
		o.Cycles = 25
	}
	if o.AcksPerCycle <= 0 {
		o.AcksPerCycle = 1
	}
}

// Report is the outcome of a torture run.
type Report struct {
	// Kills counts crash/restart cycles actually executed.
	Kills int
	// Acked counts distinct suggestions acknowledged non-duplicate — each is
	// one observation the service promised was durable.
	Acked int
	// Duplicates counts duplicate acks (idempotent retries, requeue races).
	Duplicates int
	// Violations lists every broken invariant; empty means the contract held.
	Violations []string
	// FinalObs is the session's observation count after convergence.
	FinalObs int
	// Converged reports whether the run finished (budget exhausted).
	Converged bool
}

// DaemonController abstracts "the service process" for the harness: Start
// brings a daemon up over the same durable state as the previous lifetime
// and returns its base URL; Kill tears it down abruptly (SIGKILL semantics —
// no goodbye writes).
type DaemonController interface {
	Start() (string, error)
	Kill()
}

// harness carries the cross-cycle invariant state.
type harness struct {
	opt Options
	ctl DaemonController

	mu         sync.Mutex
	acked      map[string]bool // suggestion IDs acked non-duplicate
	dups       int
	violations []string
	cycleAcks  int
	done       bool // session reported done
}

func (h *harness) logf(format string, args ...any) {
	if h.opt.Logf != nil {
		h.opt.Logf(format, args...)
	}
}

func (h *harness) violate(format string, args ...any) {
	h.mu.Lock()
	h.violations = append(h.violations, fmt.Sprintf(format, args...))
	h.mu.Unlock()
}

// Run executes the torture schedule: opt.Cycles kill/restart cycles, then
// one kill-free pass that must converge. The returned Report is non-nil even
// on error.
func Run(ctx context.Context, ctl DaemonController, opt Options) (*Report, error) {
	opt.defaults()
	h := &harness{opt: opt, ctl: ctl, acked: make(map[string]bool)}
	rep := &Report{}

	for cycle := 0; cycle < opt.Cycles && !h.isDone(); cycle++ {
		if err := h.cycle(ctx, cycle, opt.AcksPerCycle, true); err != nil {
			return h.fill(rep), err
		}
		rep.Kills++
		if opt.BetweenCycles != nil {
			opt.BetweenCycles(cycle)
		}
	}

	// Final lifetime: no kill, run until the session converges. A worker can
	// observe "done" (budget gate) while a sibling's last report is still in
	// flight, so a pass may end with the engine one observation short of
	// terminal — rerun until the session itself reports phase done (the
	// janitor requeues any lease stranded by the early cancellation).
	var st api.StatusReply
	for round := 0; ; round++ {
		if err := h.cycle(ctx, opt.Cycles+round, int(1e9), false); err != nil {
			return h.fill(rep), err
		}
		var err error
		st, err = h.finalStatus(ctx)
		if err != nil {
			return h.fill(rep), err
		}
		if st.Phase == "done" || round >= 9 {
			break
		}
		h.mu.Lock()
		h.done = false
		h.mu.Unlock()
		sleepCtx(ctx, 250*time.Millisecond)
	}
	rep.FinalObs = st.Observations
	rep.Converged = st.Phase == "done"
	h.mu.Lock()
	if st.Observations < len(h.acked) {
		h.violations = append(h.violations, fmt.Sprintf(
			"final history has %d observations, %d were acked", st.Observations, len(h.acked)))
	}
	h.mu.Unlock()
	return h.fill(rep), nil
}

func (h *harness) fill(rep *Report) *Report {
	h.mu.Lock()
	defer h.mu.Unlock()
	rep.Acked = len(h.acked)
	rep.Duplicates = h.dups
	rep.Violations = append([]string(nil), h.violations...)
	return rep
}

func (h *harness) isDone() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.done
}

// cycle runs one daemon lifetime: start, (re)attach the session, serve
// evaluations until quota acks landed (or the session finished), then kill —
// unless kill is false, in which case the lifetime ends only on completion.
func (h *harness) cycle(ctx context.Context, cycle, quota int, kill bool) error {
	baseURL, err := h.ctl.Start()
	if err != nil {
		return fmt.Errorf("torture: start cycle %d: %w", cycle, err)
	}
	cli := client.New(baseURL, client.WithRetries(3), client.WithBackoff(2*time.Millisecond, 50*time.Millisecond))
	if err := h.attach(ctx, cli, cycle > 0); err != nil {
		return fmt.Errorf("torture: attach cycle %d: %w", cycle, err)
	}

	h.mu.Lock()
	h.cycleAcks = 0
	h.mu.Unlock()

	wctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for i := 0; i < h.opt.Workers; i++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			h.worker(wctx, cancel, cli, name, quota)
		}(fmt.Sprintf("tw%d", i))
	}
	wg.Wait()
	cancel()
	if kill {
		h.ctl.Kill()
		h.mu.Lock()
		n, acks := len(h.acked), h.cycleAcks
		h.mu.Unlock()
		h.logf("torture: cycle %d killed daemon (+%d acks, %d total)", cycle, acks, n)
	}
	return ctx.Err()
}

// attach creates (cycle 0) or resumes the torture session, retrying through
// injected faults: a 500 here just means the storage engine refused a write
// or read this instant.
func (h *harness) attach(ctx context.Context, cli *client.Client, resume bool) error {
	req := api.CreateSessionRequest{
		ID:           h.opt.Session,
		Problem:      h.opt.Problem,
		Seed:         h.opt.Seed,
		Budget:       h.opt.Budget,
		InitLow:      h.opt.InitLow,
		InitHigh:     h.opt.InitHigh,
		Batch:        h.opt.Batch,
		MSPStarts:    2,
		MSPLocalIter: 10,
		GPMaxIter:    25,
		Resume:       resume,
	}
	var lastErr error
	for attempt := 0; attempt < 200; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, lastErr = cli.CreateSession(ctx, req)
		if lastErr == nil {
			return nil
		}
		// A fresh create that raced a durable manifest (the previous attempt's
		// ack was lost) must fall back to resuming it.
		var apiErr *client.APIError
		if !resume && errors.As(lastErr, &apiErr) && apiErr.Code == api.CodeConflict {
			req.Resume = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("session attach never succeeded: %w", lastErr)
}

// worker is one evaluator loop: lease → evaluate → report (with an
// idempotency key, retrying until acked). It checks the no-double-offer
// invariant on every grant and stops once the cycle quota is reached.
func (h *harness) worker(ctx context.Context, quotaHit context.CancelFunc, cli *client.Client, name string, quota int) {
	p, err := catalog.Lookup(h.opt.Problem)
	if err != nil {
		h.violate("worker %s: %v", name, err)
		return
	}
	for ctx.Err() == nil {
		lease, err := cli.Lease(ctx, h.opt.Session, api.LeaseRequest{Worker: name})
		switch {
		case err != nil:
			sleepCtx(ctx, 3*time.Millisecond)
			continue
		case lease.Done:
			sctx, scancel := context.WithTimeout(context.Background(), time.Second)
			if st, err := cli.Status(sctx, h.opt.Session); err == nil {
				h.logf("torture: worker %s saw done (reason %q) at status obs=%d cost=%.2f/%.2f phase=%q iter=%d lo=%d hi=%d",
					name, lease.Reason, st.Observations, st.Cost, st.Budget, st.Phase, st.Iter, st.NumLow, st.NumHigh)
			} else {
				h.logf("torture: worker %s saw done (reason %q); status: %v", name, lease.Reason, err)
			}
			scancel()
			h.mu.Lock()
			h.done = true
			h.mu.Unlock()
			quotaHit()
			return
		case lease.None:
			sleepCtx(ctx, 3*time.Millisecond)
			continue
		}
		h.mu.Lock()
		if h.acked[lease.SuggestionID] {
			h.violations = append(h.violations, fmt.Sprintf(
				"suggestion %s offered again after its report was acked", lease.SuggestionID))
		}
		h.mu.Unlock()

		ev := p.Evaluate(lease.X, problem.Fidelity(lease.Fidelity))
		h.report(ctx, quotaHit, cli, &lease, ev, quota)
	}
}

// report delivers one evaluation, retrying with the same idempotency key
// until the service acks it (or the cycle ends). Only a non-duplicate ack
// counts toward the durability ledger.
func (h *harness) report(ctx context.Context, quotaHit context.CancelFunc, cli *client.Client, lease *api.LeaseReply, ev problem.Evaluation, quota int) {
	req := api.ReportRequest{
		LeaseID:        lease.LeaseID,
		SuggestionID:   lease.SuggestionID,
		Objective:      ev.Objective,
		Constraints:    ev.Constraints,
		Failed:         ev.Failed,
		IdempotencyKey: lease.SuggestionID + "/" + strconv.Itoa(lease.Attempt),
	}
	for ctx.Err() == nil {
		// Each POST runs on its own short detached context: once an
		// evaluation is finished its report must not be torn down by the
		// cycle ending (a cancelled POST can still be processed server-side,
		// silently burning budget the ledger never sees). The cycle context
		// only gates retries.
		rctx, rcancel := context.WithTimeout(context.Background(), 2*time.Second)
		rep, err := cli.Report(rctx, h.opt.Session, req)
		rcancel()
		if err != nil {
			// Includes checkpoint-write faults (500): the observation is NOT
			// durable until an ack comes back, so keep retrying the same key.
			sleepCtx(ctx, 3*time.Millisecond)
			continue
		}
		h.mu.Lock()
		if rep.Duplicate {
			h.dups++
		} else {
			h.acked[lease.SuggestionID] = true
			h.cycleAcks++
		}
		if rep.Done {
			h.done = true
		}
		hit := h.cycleAcks >= quota || h.done
		h.mu.Unlock()
		if hit {
			quotaHit()
		}
		return
	}
}

// finalStatus polls the (still running) final daemon for the session status.
func (h *harness) finalStatus(ctx context.Context) (api.StatusReply, error) {
	baseURL, err := h.ctl.Start()
	if err != nil {
		return api.StatusReply{}, err
	}
	cli := client.New(baseURL, client.WithRetries(3))
	var lastErr error
	for attempt := 0; attempt < 100; attempt++ {
		st, err := cli.Status(ctx, h.opt.Session)
		if err == nil {
			return st, nil
		}
		lastErr = err
		sleepCtx(ctx, 3*time.Millisecond)
	}
	return api.StatusReply{}, fmt.Errorf("torture: final status: %w", lastErr)
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// ---- in-process daemon controller ----

// InProc restarts a server.Server over one shared durable backend inside the
// current process — the -race-friendly stand-in for a real daemon process.
// Each lifetime wraps the backend in a fresh storage.Chaos decorator (the
// previous lifetime's decorator died with its Crash), so fault injection
// follows the process boundary exactly like a real crash does.
type InProc struct {
	// Inner is the durable backend shared across lifetimes (required).
	Inner storage.Store
	// Chaos, when any rate is non-zero, decorates each lifetime's store;
	// the seed is advanced per lifetime so every restart draws a fresh but
	// reproducible fault schedule.
	Chaos storage.ChaosConfig
	// Telemetry is the process-wide recorder shared across lifetimes.
	Telemetry *telemetry.Recorder
	// Logf receives server log lines.
	Logf func(format string, args ...any)

	mu        sync.Mutex
	lifetimes int
	srv       *server.Server
	hs        *http.Server
	ln        net.Listener
	chaos     *storage.Chaos
	url       string
}

// Start boots a daemon lifetime (idempotent: a running lifetime is reused).
func (p *InProc) Start() (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.srv != nil {
		return p.url, nil
	}
	st := p.Inner
	p.chaos = nil
	if p.chaosEnabled() {
		cfg := p.Chaos
		cfg.Seed = p.Chaos.Seed + int64(p.lifetimes)
		p.chaos = storage.NewChaos(p.Inner, cfg)
		st = p.chaos
	}
	srv, err := server.New(server.Config{
		Store:     st,
		Telemetry: p.Telemetry,
		Logf:      p.Logf,
		// Torture-friendly lease machine: abandoned leases (killed workers,
		// severed connections) requeue within ~2s instead of 30, and a point
		// is only written off as poisoned after many lost leases.
		Dispatch: dispatch.Config{
			LeaseTTL:    2 * time.Second,
			ScanEvery:   50 * time.Millisecond,
			MaxAttempts: 25,
			RetryAfter:  20 * time.Millisecond,
		},
	})
	if err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	p.srv, p.hs, p.ln = srv, hs, ln
	p.url = "http://" + ln.Addr().String()
	p.lifetimes++
	return p.url, nil
}

func (p *InProc) chaosEnabled() bool {
	c := p.Chaos
	return c.WriteErrRate > 0 || c.TornWriteRate > 0 || c.FsyncLieRate > 0 ||
		c.ReadErrRate > 0 || c.LatencyRate > 0
}

// Kill tears the current lifetime down with SIGKILL semantics: storage dies
// first (in-flight writes fail like a yanked disk), connections are severed,
// and nothing is persisted on the way out.
func (p *InProc) Kill() {
	p.mu.Lock()
	srv, hs, chaos := p.srv, p.hs, p.chaos
	p.srv, p.hs, p.ln, p.chaos = nil, nil, nil, nil
	p.mu.Unlock()
	if srv == nil {
		return
	}
	if chaos != nil {
		chaos.Crash()
	}
	hs.Close() // closes the listener and every live connection
	srv.Kill()
}

// Stop gracefully ends the current lifetime (used after the final pass).
func (p *InProc) Stop() {
	p.mu.Lock()
	srv, hs := p.srv, p.hs
	p.srv, p.hs, p.ln, p.chaos = nil, nil, nil, nil
	p.mu.Unlock()
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	hs.Shutdown(ctx)
	cancel()
	srv.Close()
}

// ChaosCounts returns the fault counts of the current lifetime's decorator
// (zero value when chaos is off or no lifetime is live).
func (p *InProc) ChaosCounts() storage.ChaosCounts {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.chaos == nil {
		return storage.ChaosCounts{}
	}
	return p.chaos.Counts()
}

package torture

import (
	"io"
	"net"
	"sync"
)

// Proxy is a TCP chaos proxy for injecting network faults between workers
// and the daemon: it forwards byte streams to a target address and can, on
// command, sever every live connection (CutAll) or refuse new ones
// (SetDropNew) — the wire-level signature of a partition or a crashed load
// balancer. Client-side retry plus report idempotency keys must absorb both.
type Proxy struct {
	ln net.Listener

	mu      sync.Mutex
	target  string
	conns   map[net.Conn]bool
	dropNew bool
	closed  bool
	cuts    int
}

// NewProxy starts a proxy on a fresh loopback port forwarding to target
// (host:port). Close it when done.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]bool)}
	go p.accept()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's address as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetTarget repoints the proxy (used when the daemon restarts on a new
// port); live connections to the old target are unaffected until cut.
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = target
	p.mu.Unlock()
}

// SetDropNew makes the proxy immediately close (true) or accept (false) new
// connections.
func (p *Proxy) SetDropNew(drop bool) {
	p.mu.Lock()
	p.dropNew = drop
	p.mu.Unlock()
}

// CutAll severs every live proxied connection mid-stream and returns how
// many were cut. In-flight requests surface as transport errors on both
// sides — exactly what a partition looks like.
func (p *Proxy) CutAll() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.conns)
	for c := range p.conns {
		c.Close()
	}
	p.cuts += n
	return n
}

// Cuts returns the total number of connections severed by CutAll.
func (p *Proxy) Cuts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cuts
}

// Close stops accepting and severs everything.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.CutAll()
}

func (p *Proxy) accept() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		drop, closed, target := p.dropNew, p.closed, p.target
		if !drop && !closed {
			p.conns[conn] = true
		}
		p.mu.Unlock()
		if drop || closed {
			conn.Close()
			continue
		}
		go p.forward(conn, target)
	}
}

func (p *Proxy) forward(src net.Conn, target string) {
	dst, err := net.Dial("tcp", target)
	if err != nil {
		p.drop(src)
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		dst.Close()
		p.drop(src)
		return
	}
	p.conns[dst] = true
	p.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(2)
	pipe := func(a, b net.Conn) {
		defer wg.Done()
		io.Copy(a, b)
		// Half-close propagation: when one direction ends, kill the pair —
		// good enough for an HTTP/1.1 fault proxy.
		a.Close()
		b.Close()
	}
	go pipe(dst, src)
	go pipe(src, dst)
	wg.Wait()
	p.drop(src)
	p.drop(dst)
}

func (p *Proxy) drop(c net.Conn) {
	c.Close()
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

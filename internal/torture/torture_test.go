package torture

import (
	"context"
	"strconv"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/problem"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// storageCounter fetches a labeled mfbo_storage_* counter from the registry
// (help strings must match the registration in internal/storage).
func storageCounter(reg *telemetry.Registry, name, help string, kind storage.Kind) *telemetry.Counter {
	return reg.Counter(name, help, "kind", string(kind))
}

func rollbacks(reg *telemetry.Registry, kind storage.Kind) *telemetry.Counter {
	return storageCounter(reg, "mfbo_storage_rollbacks_total",
		"reads recovered by rolling back past a corrupt head, by kind", kind)
}

func quarantines(reg *telemetry.Registry, kind storage.Kind) *telemetry.Counter {
	return storageCounter(reg, "mfbo_storage_quarantines_total",
		"corrupt generations quarantined, by kind", kind)
}

// TestTortureCrashRestartCycles is the acceptance torture run: 25 SIGKILL-
// style crash/restart cycles over a hardened FS store with storage faults
// injected (EIO writes, torn writes, read errors, latency spikes) and
// storage heads deliberately corrupted between lifetimes. Run under -race.
//
// Invariants checked by the harness:
//   - zero acknowledged observations lost across all crashes
//   - zero suggestions re-offered after their report was acked
//   - the run converges (budget exhausted) despite everything
//
// plus, here: every deliberate head corruption is visible as exactly one
// rollback and at least one quarantine in mfbo_storage_*.
func TestTortureCrashRestartCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("torture run is long")
	}
	rec := telemetry.NewRecorder(nil, 0)
	fs, err := storage.NewFS(storage.FSConfig{
		Dir:         t.TempDir(),
		Generations: 5, // deep enough that chaos + deliberate corruption never eat every good head
		Telemetry:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl := &InProc{
		Inner: fs,
		Chaos: storage.ChaosConfig{
			Seed:          1,
			WriteErrRate:  0.05,
			TornWriteRate: 0.05,
			ReadErrRate:   0.03,
			LatencyRate:   0.10,
			Latency:       200 * time.Microsecond,
		},
		Telemetry: rec,
	}
	defer ctl.Stop()

	const session = "torture"
	corruptions := 0
	opt := Options{
		Session: session,
		Cycles:  25,
		Logf:    t.Logf,
		// Every 5th crash also corrupts the newest manifest generation on
		// disk — the next resume must roll back to the previous one (the
		// manifest is rewritten identically on every resume, so nothing is
		// lost) and quarantine the damage.
		BetweenCycles: func(cycle int) {
			if cycle%5 != 4 {
				return
			}
			if err := fs.CorruptHead(storage.KindManifest, session, 9); err != nil {
				t.Errorf("corrupt manifest head after cycle %d: %v", cycle, err)
				return
			}
			corruptions++
		},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	rep, err := Run(ctx, ctl, opt)
	if err != nil {
		t.Fatalf("torture run: %v (report %+v)", err, rep)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if rep.Kills < 25 {
		t.Errorf("executed %d kill cycles, want >= 25", rep.Kills)
	}
	if !rep.Converged {
		t.Errorf("run did not converge (final observations %d, acked %d)", rep.FinalObs, rep.Acked)
	}
	if rep.FinalObs < rep.Acked {
		t.Errorf("final history %d < acked %d: acked observations were lost", rep.FinalObs, rep.Acked)
	}
	if rep.Acked < 25 {
		t.Errorf("only %d acks across 25 cycles, want >= 25", rep.Acked)
	}

	reg := rec.Metrics
	if corruptions == 0 {
		t.Fatal("no deliberate corruptions executed")
	}
	if got := rollbacks(reg, storage.KindManifest).Value(); got < uint64(corruptions) {
		t.Errorf("mfbo_storage_rollbacks_total{kind=manifest} = %d, want >= %d (one per deliberate corruption)", got, corruptions)
	}
	if got := quarantines(reg, storage.KindManifest).Value(); got < uint64(corruptions) {
		t.Errorf("mfbo_storage_quarantines_total{kind=manifest} = %d, want >= %d", got, corruptions)
	}
	t.Logf("torture: kills=%d acked=%d dups=%d finalObs=%d manifestRollbacks=%v",
		rep.Kills, rep.Acked, rep.Duplicates, rep.FinalObs,
		rollbacks(reg, storage.KindManifest).Value())
}

// TestCorruptCheckpointHeadRollsBack pins the exact rollback semantics on
// the checkpoint path: corrupting the newest checkpoint generation after a
// crash loses exactly the last observation, increments the rollback and
// quarantine counters by exactly one each, and the observation whose
// checkpoint was destroyed is re-offered to workers (its suggestion is
// pending again in the rolled-back snapshot).
func TestCorruptCheckpointHeadRollsBack(t *testing.T) {
	rec := telemetry.NewRecorder(nil, 0)
	fs, err := storage.NewFS(storage.FSConfig{Dir: t.TempDir(), Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	ctl := &InProc{Inner: fs, Telemetry: rec} // no chaos: every fault here is deliberate
	defer ctl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const session = "rollback"
	url, err := ctl.Start()
	if err != nil {
		t.Fatal(err)
	}
	cli := client.New(url)
	if _, err := cli.CreateSession(ctx, api.CreateSessionRequest{
		ID: session, Problem: "constrained", Seed: 3, Budget: 10,
		InitLow: 20, InitHigh: 8, Batch: 1,
	}); err != nil {
		t.Fatal(err)
	}

	// Serve five evaluations synchronously, remembering the ack order.
	p, err := catalog.Lookup("constrained")
	if err != nil {
		t.Fatal(err)
	}
	var acked []string
	for i := 0; i < 5; i++ {
		lease, err := cli.Lease(ctx, session, api.LeaseRequest{Worker: "w"})
		if err != nil || lease.None || lease.Done {
			t.Fatalf("lease %d: %+v err=%v", i, lease, err)
		}
		ev := p.Evaluate(lease.X, problem.Fidelity(lease.Fidelity))
		if _, err := cli.Report(ctx, session, api.ReportRequest{
			LeaseID:        lease.LeaseID,
			SuggestionID:   lease.SuggestionID,
			Objective:      ev.Objective,
			Constraints:    ev.Constraints,
			IdempotencyKey: lease.SuggestionID + "/" + strconv.Itoa(lease.Attempt),
		}); err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		acked = append(acked, lease.SuggestionID)
	}

	// SIGKILL, then destroy the newest checkpoint generation.
	ctl.Kill()
	r0 := rollbacks(rec.Metrics, storage.KindCheckpoint).Value()
	q0 := quarantines(rec.Metrics, storage.KindCheckpoint).Value()
	if err := fs.CorruptHead(storage.KindCheckpoint, session, 9); err != nil {
		t.Fatal(err)
	}

	// Restart + resume: the store must roll back exactly one generation.
	url, err = ctl.Start()
	if err != nil {
		t.Fatal(err)
	}
	cli = client.New(url)
	if _, err := cli.CreateSession(ctx, api.CreateSessionRequest{
		ID: session, Problem: "constrained", Seed: 3, Budget: 10,
		InitLow: 20, InitHigh: 8, Batch: 1, Resume: true,
	}); err != nil {
		t.Fatal(err)
	}
	st, err := cli.Status(ctx, session)
	if err != nil {
		t.Fatal(err)
	}
	if st.Observations != len(acked)-1 {
		t.Fatalf("resumed with %d observations, want %d (exactly the corrupted head lost)", st.Observations, len(acked)-1)
	}
	if got := rollbacks(rec.Metrics, storage.KindCheckpoint).Value(); got != r0+1 {
		t.Fatalf("rollbacks{kind=ckpt} = %d, want %d", got, r0+1)
	}
	if got := quarantines(rec.Metrics, storage.KindCheckpoint).Value(); got != q0+1 {
		t.Fatalf("quarantines{kind=ckpt} = %d, want %d", got, q0+1)
	}

	// The rolled-back observation's suggestion is pending again and is the
	// first thing re-offered — the "pending suggestions re-offered" half of
	// the crash contract.
	lease, err := cli.Lease(ctx, session, api.LeaseRequest{Worker: "w"})
	if err != nil || lease.None || lease.Done {
		t.Fatalf("post-rollback lease: %+v err=%v", lease, err)
	}
	if lease.SuggestionID != acked[len(acked)-1] {
		t.Fatalf("re-offered %q, want the rolled-back suggestion %q", lease.SuggestionID, acked[len(acked)-1])
	}
}

// TestProxyNetworkFaults drives a session through the TCP chaos proxy while
// severing every live connection repeatedly: client retries plus report
// idempotency must absorb the cuts and still finish a short run with no
// invariant violations.
func TestProxyNetworkFaults(t *testing.T) {
	rec := telemetry.NewRecorder(nil, 0)
	mem := storage.NewMem(storage.MemConfig{})
	ctl := &InProc{Inner: mem, Telemetry: rec}
	defer ctl.Stop()
	url, err := ctl.Start()
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewProxy(url[len("http://"):])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Saw through the proxy's connections for the whole run.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				proxy.CutAll()
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := Run(ctx, &proxied{ctl: ctl, proxy: proxy}, Options{
		Session: "netchaos",
		Cycles:  3,
		Budget:  5.2, InitLow: 10, InitHigh: 4, // ~17 observations
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("run: %v (report %+v)", err, rep)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if !rep.Converged {
		t.Errorf("run did not converge under network chaos (obs %d, acked %d)", rep.FinalObs, rep.Acked)
	}
	if proxy.Cuts() == 0 {
		t.Error("proxy never cut a connection; network chaos did not engage")
	}
}

// proxied routes a controller's URL through the chaos proxy.
type proxied struct {
	ctl   *InProc
	proxy *Proxy
}

func (p *proxied) Start() (string, error) {
	url, err := p.ctl.Start()
	if err != nil {
		return "", err
	}
	p.proxy.SetTarget(url[len("http://"):])
	return p.proxy.URL(), nil
}

func (p *proxied) Kill() { p.ctl.Kill() }

// TestProxyDropNew covers the partition mode: with new connections refused,
// requests fail; re-enabling heals without restarting anything.
func TestProxyDropNew(t *testing.T) {
	rec := telemetry.NewRecorder(nil, 0)
	ctl := &InProc{Inner: storage.NewMem(storage.MemConfig{}), Telemetry: rec}
	defer ctl.Stop()
	url, err := ctl.Start()
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewProxy(url[len("http://"):])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	ctx := context.Background()
	cli := client.New(proxy.URL(), client.WithRetries(0))

	if _, err := cli.Health(ctx); err != nil {
		t.Fatalf("health through proxy: %v", err)
	}
	proxy.SetDropNew(true)
	proxy.CutAll() // keep-alive would otherwise reuse the pooled connection
	if _, err := cli.Health(ctx); err == nil {
		t.Fatal("health succeeded through a partitioned proxy")
	}
	proxy.SetDropNew(false)
	if _, err := cli.Health(ctx); err != nil {
		t.Fatalf("health after healing the partition: %v", err)
	}
}

package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/problem"
	"repro/internal/testfunc"
)

// driveBatch runs an engine to completion through AskBatch(q)/TellByID,
// always answering the NEWEST outstanding suggestion first (maximally
// out-of-order), and returns the result.
func driveBatch(t *testing.T, eng *Engine, p problem.Problem, q int) *Result {
	t.Helper()
	for {
		sugs, err := eng.AskBatch(context.Background(), q)
		if err != nil {
			if errors.Is(err, ErrBudgetExhausted) {
				break
			}
			t.Fatalf("AskBatch: %v", err)
		}
		if len(sugs) == 0 {
			t.Fatal("AskBatch returned no suggestions and no error")
		}
		s := sugs[len(sugs)-1]
		ev, everr := problem.EvaluateRich(p, s.X, s.Fid)
		if everr != nil {
			ev.Failed = true
		}
		if err := eng.TellByID(s.ID, ev); err != nil {
			t.Fatalf("TellByID(%s): %v", s.ID, err)
		}
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	return res
}

// TestAskBatchQ1Oracle is the batch-mode oracle: AskBatch with q=1 must
// reproduce the sequential Ask/Tell trajectory bit-for-bit — same points,
// fidelities, outcomes and suggestion IDs — for both fantasy strategies
// (which must be inert at q=1).
func TestAskBatchQ1Oracle(t *testing.T) {
	ref, err := Optimize(testfunc.ConstrainedSynthetic(), fastCfg(8), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []FantasyStrategy{FantasyKrigingBeliever, FantasyConstantLiar} {
		t.Run(string(strat), func(t *testing.T) {
			p := testfunc.ConstrainedSynthetic()
			cfg := fastCfg(8)
			cfg.Fantasy = strat
			eng, err := NewEngine(p, cfg, rand.New(rand.NewSource(42)))
			if err != nil {
				t.Fatal(err)
			}
			res := driveBatch(t, eng, p, 1)
			historiesIdentical(t, ref, res)
		})
	}
}

// TestAskBatchOutstandingSet exercises the batch protocol itself: q init
// points outstanding at once, deterministic IDs, out-of-order TellByID,
// ErrUnknownSuggestion for consumed IDs, and the adaptive batch carrying
// distinct iteration labels.
func TestAskBatchOutstandingSet(t *testing.T) {
	p := testfunc.ConstrainedSynthetic()
	eng, err := NewEngine(p, fastCfg(8), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	sugs, err := eng.AskBatch(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) != 3 {
		t.Fatalf("want 3 outstanding init suggestions, got %d", len(sugs))
	}
	for i, want := range []string{"init-low-0", "init-low-1", "init-low-2"} {
		if sugs[i].ID != want {
			t.Fatalf("suggestion %d: ID %q, want %q", i, sugs[i].ID, want)
		}
		if sugs[i].Iter != -1 || sugs[i].Fid != problem.Low {
			t.Fatalf("suggestion %d: want init-phase low-fidelity, got iter %d fid %v", i, sugs[i].Iter, sugs[i].Fid)
		}
	}
	// Idempotent: asking again returns the same outstanding set.
	again, err := eng.AskBatch(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 3 || again[0].ID != sugs[0].ID || again[2].ID != sugs[2].ID {
		t.Fatalf("AskBatch not idempotent: %v vs %v", again, sugs)
	}
	if got := eng.Progress().Outstanding; got != 3 {
		t.Fatalf("Progress.Outstanding = %d, want 3", got)
	}

	// Tell out of order: newest first.
	for i := len(sugs) - 1; i >= 0; i-- {
		ev := p.Evaluate(sugs[i].X, sugs[i].Fid)
		if err := eng.TellByID(sugs[i].ID, ev); err != nil {
			t.Fatalf("TellByID(%s): %v", sugs[i].ID, err)
		}
		// A consumed ID is rejected with the typed sentinel while other
		// suggestions are still outstanding…
		dup := eng.TellByID(sugs[i].ID, problem.Evaluation{})
		if i > 0 && !errors.Is(dup, ErrUnknownSuggestion) {
			t.Fatalf("duplicate TellByID: got %v, want ErrUnknownSuggestion", dup)
		}
		// …and with ErrNoPendingAsk once nothing at all is outstanding.
		if i == 0 && !errors.Is(dup, ErrNoPendingAsk) {
			t.Fatalf("duplicate TellByID on drained engine: got %v, want ErrNoPendingAsk", dup)
		}
	}

	// Drain the rest of initialization so the adaptive phase can start.
	for {
		sugs, err = eng.AskBatch(context.Background(), 4)
		if err != nil {
			t.Fatal(err)
		}
		if sugs[0].Iter >= 0 {
			break
		}
		for _, s := range sugs {
			if err := eng.TellByID(s.ID, p.Evaluate(s.X, s.Fid)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Adaptive batch: distinct iteration labels and IDs, starting at the
	// completed count.
	if len(sugs) != 4 {
		t.Fatalf("want 4 adaptive slots, got %d", len(sugs))
	}
	seen := map[string]bool{}
	for i, s := range sugs {
		if s.Iter != sugs[0].Iter+i {
			t.Fatalf("adaptive slot %d: iter %d, want %d", i, s.Iter, sugs[0].Iter+i)
		}
		if seen[s.ID] {
			t.Fatalf("duplicate suggestion ID %q", s.ID)
		}
		seen[s.ID] = true
	}
}

// TestAskBatchFantasyRetraction verifies that fantasy observations are
// invisible outside the proposal step: while a batch is outstanding the real
// training sets, history and snapshot contain only told observations, and
// the engine completes the run with exactly the real evaluations recorded.
func TestAskBatchFantasyRetraction(t *testing.T) {
	p := testfunc.ConstrainedSynthetic()
	cfg := fastCfg(8)
	cfg.Fantasy = FantasyConstantLiar
	eng, err := NewEngine(p, cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	// Finish initialization sequentially.
	for {
		s, err := eng.Ask(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if s.Iter >= 0 {
			if err := eng.Tell(s.X, s.Fid, p.Evaluate(s.X, s.Fid)); err != nil {
				t.Fatal(err)
			}
			break
		}
		if err := eng.Tell(s.X, s.Fid, p.Evaluate(s.X, s.Fid)); err != nil {
			t.Fatal(err)
		}
	}
	nLow, nHigh := len(eng.st.low.X), len(eng.st.high.X)
	hist := len(eng.st.res.History)

	sugs, err := eng.AskBatch(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) != 3 {
		t.Fatalf("want 3 outstanding, got %d", len(sugs))
	}
	// Three proposals are outstanding, each fantasized for the next — but the
	// real datasets must not have grown.
	if len(eng.st.low.X) != nLow || len(eng.st.high.X) != nHigh {
		t.Fatalf("fantasy rows leaked into training data: low %d→%d, high %d→%d",
			nLow, len(eng.st.low.X), nHigh, len(eng.st.high.X))
	}
	if len(eng.st.res.History) != hist {
		t.Fatalf("fantasy rows leaked into history: %d→%d", hist, len(eng.st.res.History))
	}
	ck := eng.Snapshot()
	if len(ck.LowX) != nLow || len(ck.HighX) != nHigh {
		t.Fatal("fantasy rows leaked into the checkpoint datasets")
	}
	if len(ck.Pending) != 3 {
		t.Fatalf("checkpoint must carry the 3 pending suggestions, got %d", len(ck.Pending))
	}
	for _, ps := range ck.Pending {
		if ps.Fantasy == nil {
			t.Fatalf("pending %s: missing fantasy outputs", ps.ID)
		}
		if len(ps.Fantasy) != 1+p.NumConstraints() {
			t.Fatalf("pending %s: fantasy has %d outputs, want %d", ps.ID, len(ps.Fantasy), 1+p.NumConstraints())
		}
	}

	// Completing the run records exactly the real evaluations.
	res := driveBatch(t, eng, p, 3)
	for i, ob := range res.History {
		ev := p.Evaluate(ob.X, ob.Fid)
		if ev.Objective != ob.Eval.Objective {
			t.Fatalf("history %d: objective %v is not the problem's value %v", i, ob.Eval.Objective, ev.Objective)
		}
	}
}

// TestMidBatchSnapshotRestore proves the pending set round-trips through a
// checkpoint: suggestions asked before the snapshot stay tellable after
// RestoreEngine (same IDs), and the restored engine finishes the run.
func TestMidBatchSnapshotRestore(t *testing.T) {
	p := testfunc.ConstrainedSynthetic()
	cfg := fastCfg(8)
	eng, err := NewEngine(p, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	// Mid-initialization batch: 3 asked, 1 told, snapshot with 2 pending.
	sugs, err := eng.AskBatch(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.TellByID(sugs[1].ID, p.Evaluate(sugs[1].X, sugs[1].Fid)); err != nil {
		t.Fatal(err)
	}
	ck := eng.Snapshot()
	data, err := ck.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck2.Pending) != 2 {
		t.Fatalf("snapshot pending = %d, want 2", len(ck2.Pending))
	}

	restored, err := RestoreEngine(p, cfg, rand.New(rand.NewSource(5)), ck2)
	if err != nil {
		t.Fatal(err)
	}
	rsugs, err := restored.AskBatch(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// The replayed pending set must come back verbatim, oldest first, plus a
	// top-up continuing the design (no duplicate IDs with the told one).
	if rsugs[0].ID != sugs[0].ID || rsugs[1].ID != sugs[2].ID {
		t.Fatalf("restored pending IDs %q,%q; want %q,%q", rsugs[0].ID, rsugs[1].ID, sugs[0].ID, sugs[2].ID)
	}
	for i := range rsugs[0].X {
		if rsugs[0].X[i] != sugs[0].X[i] {
			t.Fatalf("restored pending point differs at coordinate %d", i)
		}
	}
	if rsugs[2].ID != "init-low-3" {
		t.Fatalf("restored top-up ID %q, want init-low-3", rsugs[2].ID)
	}
	// Telling a replayed suggestion works by ID on the restored engine.
	if err := restored.TellByID(rsugs[0].ID, p.Evaluate(rsugs[0].X, rsugs[0].Fid)); err != nil {
		t.Fatalf("TellByID on restored engine: %v", err)
	}
	// And the restored engine completes the run.
	res := driveBatch(t, restored, p, 3)
	if res.NumLow+res.NumHigh != len(res.History) {
		t.Fatalf("inconsistent counts: %d+%d vs %d observations", res.NumLow, res.NumHigh, len(res.History))
	}

	// Mid-ADAPTIVE batch snapshot: run a fresh engine into the adaptive
	// phase, ask a batch, snapshot, restore, and check the fantasy-bearing
	// pending slots replay with their iteration labels.
	eng2, err := NewEngine(p, cfg, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	for {
		s, err := eng2.Ask(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := eng2.Tell(s.X, s.Fid, p.Evaluate(s.X, s.Fid)); err != nil {
			t.Fatal(err)
		}
		if s.Iter >= 0 {
			break
		}
	}
	bsugs, err := eng2.AskBatch(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ck3 := eng2.Snapshot()
	restored2, err := RestoreEngine(p, cfg, rand.New(rand.NewSource(6)), ck3)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := restored2.AskBatch(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(bsugs) {
		t.Fatalf("restored adaptive batch size %d, want %d", len(rs), len(bsugs))
	}
	for i := range rs {
		if rs[i].ID != bsugs[i].ID || rs[i].Iter != bsugs[i].Iter {
			t.Fatalf("restored slot %d: (%s, iter %d), want (%s, iter %d)",
				i, rs[i].ID, rs[i].Iter, bsugs[i].ID, bsugs[i].Iter)
		}
	}
	res2 := driveBatch(t, restored2, p, 2)
	if _, err := restored2.Result(); err != nil {
		t.Fatal(err)
	}
	if res2.EquivalentSims > cfg.Budget+1 {
		t.Fatalf("budget overrun: %v > %v", res2.EquivalentSims, cfg.Budget)
	}
}

// TestAskBatchRespectsCaps verifies that budget and MaxIterations bound the
// batch top-up without invalidating outstanding work: a cap reached with
// work in flight merely stops growth.
func TestAskBatchRespectsCaps(t *testing.T) {
	p := testfunc.ConstrainedSynthetic()
	cfg := fastCfg(8)
	cfg.MaxIterations = 2
	eng, err := NewEngine(p, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	// Drain initialization.
	for {
		s, err := eng.Ask(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if s.Iter >= 0 {
			break
		}
		if err := eng.Tell(s.X, s.Fid, p.Evaluate(s.X, s.Fid)); err != nil {
			t.Fatal(err)
		}
	}
	// Iteration cap 2: a q=4 batch must stop at 2 outstanding adaptive slots.
	sugs, err := eng.AskBatch(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) != 2 {
		t.Fatalf("MaxIterations=2 admits 2 outstanding slots, got %d", len(sugs))
	}
	for _, s := range sugs {
		if err := eng.TellByID(s.ID, p.Evaluate(s.X, s.Fid)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.AskBatch(context.Background(), 4); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("after the cap: got %v, want ErrBudgetExhausted", err)
	}
}

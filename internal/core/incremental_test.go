package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/problem"
	"repro/internal/telemetry"
	"repro/internal/testfunc"
)

// TestIncrementalRefitEvery1Oracle is the exactness oracle demanded by the
// incremental machinery: with RefitEvery = 1 every proposal is a full refit,
// so Incremental = true must reproduce the Incremental = false trajectory
// bit-identically (same seed, low-rank off).
func TestIncrementalRefitEvery1Oracle(t *testing.T) {
	for _, mk := range []func() problem.Problem{
		func() problem.Problem { return testfunc.Forrester() },
		func() problem.Problem { return testfunc.ConstrainedSynthetic() },
	} {
		exact, err := Optimize(mk(), fastCfg(8), rand.New(rand.NewSource(31)))
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastCfg(8)
		cfg.Incremental = true
		cfg.RefitEvery = 1
		incr, err := Optimize(mk(), cfg, rand.New(rand.NewSource(31)))
		if err != nil {
			t.Fatal(err)
		}
		historiesIdentical(t, exact, incr)
	}
}

// TestIncrementalFitSkipSchedule runs a fit-skipping schedule end to end and
// checks the bookkeeping: skipped proposals are counted in the
// mfbo_gp_fit_skipped_total metric, rank-1 extensions in
// mfbo_gp_rank1_updates_total, and the iteration events carry the fit-skip
// decision — while the run itself still completes and spends its budget.
func TestIncrementalFitSkipSchedule(t *testing.T) {
	p := testfunc.Pedagogical()
	ring := telemetry.NewRing(2048)
	rec := telemetry.NewRecorder(ring, 1)
	cfg := fastCfg(14)
	cfg.Incremental = true
	cfg.RefitEvery = 4
	cfg.Telemetry = rec
	res, err := Optimize(p, cfg, rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no history")
	}
	skipped := rec.Metrics.Counter("mfbo_gp_fit_skipped_total", "").Value()
	if skipped == 0 {
		t.Fatal("fit-skipping schedule never skipped a fit")
	}
	if rec.Metrics.Counter("mfbo_gp_rank1_updates_total", "").Value() == 0 {
		t.Fatal("no rank-1 updates recorded")
	}
	var evSkipped, evFull int
	for _, ev := range ring.Snapshot() {
		if ev.Iteration == nil {
			continue
		}
		if ev.Iteration.FitSkipped {
			evSkipped++
			if ev.Iteration.SinceRefit == 0 {
				t.Fatal("skipped iteration reports since_refit = 0")
			}
		} else {
			evFull++
		}
	}
	if evSkipped == 0 || evFull == 0 {
		t.Fatalf("want a mix of skipped and full fits in events, got %d/%d", evSkipped, evFull)
	}
}

// TestIncrementalSkipsUntouchedModels is the regression test for the
// wasted-refit bug: when only the low-fidelity dataset grows, the cached
// high-fidelity (fused) models must be served untouched — same pointers, same
// factorization — while the low models absorb the new row via a rank-1
// update.
func TestIncrementalSkipsUntouchedModels(t *testing.T) {
	p := testfunc.Forrester()
	cfg := fastCfg(20)
	cfg.Incremental = true
	cfg.RefitEvery = 100
	cfg.NLMLTrigger = -1
	eng, err := NewEngine(p, cfg, rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	// Drive through initialization until the first adaptive proposal, which
	// performs the full fit that seeds the cache.
	var sug Suggestion
	for {
		sug, err = eng.Ask(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if sug.Iter >= 0 {
			break
		}
		if err := eng.Tell(sug.X, sug.Fid, p.Evaluate(sug.X, sug.Fid)); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.st
	c := st.cache
	if c == nil {
		t.Fatal("adaptive proposal left no surrogate cache")
	}
	fusedBefore := c.fused[0]
	if fusedBefore == nil {
		t.Fatal("cache holds no fused model")
	}
	highNLML := fusedBefore.High().NLML()
	highSize := fusedBefore.High().TrainingSize()
	lowSize := c.lowGPs[0].TrainingSize()

	// A new LOW observation arrives; the next proposal must extend the low
	// models in place and leave the fused models' high factorization alone.
	x := []float64{0.375}
	st.low.X = append(st.low.X, x)
	st.low.Y = append(st.low.Y, []float64{p.Evaluate(x, problem.Low).Objective})
	lowGPs, fused, ok, skipped := st.incrementalSurrogates(st.iter+1, nil)
	if !ok || !skipped {
		t.Fatalf("expected a skipped fit, got ok=%v skipped=%v", ok, skipped)
	}
	if fused[0] != fusedBefore {
		t.Fatal("fused model was rebuilt despite receiving no new data")
	}
	if got := fused[0].High().NLML(); got != highNLML {
		t.Fatalf("high factorization changed: NLML %v vs %v", got, highNLML)
	}
	if got := fused[0].High().TrainingSize(); got != highSize {
		t.Fatalf("high training size changed: %d vs %d", got, highSize)
	}
	if got := lowGPs[0].TrainingSize(); got != lowSize+1 {
		t.Fatalf("low model did not absorb the new row: size %d, want %d", got, lowSize+1)
	}
}

// TestIncrementalCheckpointRoundTrip proves the fit-skip schedule counter and
// the warm-start hyperparameters survive a snapshot → JSON → RestoreEngine
// round trip, so a resumed run keeps the same refit cadence.
func TestIncrementalCheckpointRoundTrip(t *testing.T) {
	p := testfunc.Forrester()
	cfg := fastCfg(10)
	cfg.Incremental = true
	cfg.RefitEvery = 5
	cfg.NLMLTrigger = -1
	eng, err := NewEngine(p, cfg, rand.New(rand.NewSource(34)))
	if err != nil {
		t.Fatal(err)
	}
	// Run several adaptive iterations so sinceRefit advances past zero and
	// warm hyperparameters exist.
	adaptive := 0
	for adaptive < 4 {
		sug, err := eng.Ask(context.Background())
		if errors.Is(err, ErrBudgetExhausted) {
			t.Fatal("budget exhausted before enough adaptive iterations")
		}
		if err != nil {
			t.Fatal(err)
		}
		if sug.Iter >= 0 {
			adaptive++
		}
		if err := eng.Tell(sug.X, sug.Fid, p.Evaluate(sug.X, sug.Fid)); err != nil {
			t.Fatal(err)
		}
	}
	if eng.st.sinceRefit == 0 {
		t.Fatal("test needs a nonzero sinceRefit to be meaningful")
	}
	ck := eng.Snapshot()
	if ck.SinceRefit != eng.st.sinceRefit {
		t.Fatalf("snapshot SinceRefit %d, live %d", ck.SinceRefit, eng.st.sinceRefit)
	}
	data, err := ck.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(p, cfg, rand.New(rand.NewSource(99)), ck2)
	if err != nil {
		t.Fatal(err)
	}
	if restored.st.sinceRefit != eng.st.sinceRefit {
		t.Fatalf("restored sinceRefit %d, want %d", restored.st.sinceRefit, eng.st.sinceRefit)
	}
	if !reflect.DeepEqual(restored.st.warmLow, eng.st.warmLow) {
		t.Fatalf("warm low hypers did not survive restore:\n%v\nvs\n%v", restored.st.warmLow, eng.st.warmLow)
	}
	if !reflect.DeepEqual(restored.st.warmHigh, eng.st.warmHigh) {
		t.Fatalf("warm high hypers did not survive restore:\n%v\nvs\n%v", restored.st.warmHigh, eng.st.warmHigh)
	}
	// The model cache is deliberately not serialized: a restored engine must
	// start from a clean full refit.
	if restored.st.cache != nil {
		t.Fatal("restored engine has a surrogate cache")
	}
}

// TestIncrementalLowRankEngages runs the opt-in low-rank surrogate inside the
// full loop: once the cheap dataset exceeds LowRankAfter the low GPs switch to
// the inducing-point approximation, and the run still completes.
func TestIncrementalLowRankEngages(t *testing.T) {
	p := testfunc.Pedagogical()
	ring := telemetry.NewRing(2048)
	rec := telemetry.NewRecorder(ring, 1)
	cfg := fastCfg(14)
	cfg.LowRankAfter = 12
	cfg.Telemetry = rec
	res, err := Optimize(p, cfg, rand.New(rand.NewSource(35)))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLow <= cfg.LowRankAfter {
		t.Skipf("run gathered only %d low points, low-rank never engaged", res.NumLow)
	}
	lowRank := false
	for _, ev := range ring.Snapshot() {
		if ev.Iteration != nil && ev.Iteration.LowRank {
			lowRank = true
		}
	}
	if !lowRank {
		t.Fatal("no iteration event reported a low-rank surrogate")
	}
}

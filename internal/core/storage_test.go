package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/storage"
	"repro/internal/testfunc"
)

// TestStoreCheckpointerOracle is the acceptance oracle: the filesystem
// storage.Store backend must produce byte-identical checkpoint/restore
// behavior to the historical FileCheckpointer path on a seeded run.
func TestStoreCheckpointerOracle(t *testing.T) {
	p := testfunc.ConstrainedSynthetic()
	const budget, seed = 6.0, 91

	// Reference: the legacy direct-file path.
	filePath := filepath.Join(t.TempDir(), "run.ckpt.json")
	fcfg := fastCfg(budget)
	fcfg.Checkpointer = FileCheckpointer(filePath)
	fileRes, err := Optimize(p, fcfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}

	// Same run, checkpointed through the storage engine.
	fs, err := storage.NewFS(storage.FSConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	scfg := fastCfg(budget)
	scfg.Checkpointer = StoreCheckpointer(fs, "run")
	storeRes, err := Optimize(p, scfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fileRes.History, storeRes.History) {
		t.Fatal("trajectory diverged between FileCheckpointer and StoreCheckpointer")
	}

	// The persisted snapshot payloads are byte-identical.
	fileBytes, err := os.ReadFile(filePath)
	if err != nil {
		t.Fatal(err)
	}
	storeBytes, err := fs.Get(storage.KindCheckpoint, "run")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileBytes, storeBytes) {
		t.Fatalf("checkpoint payloads differ: file %d bytes, store %d bytes", len(fileBytes), len(storeBytes))
	}

	// And both load paths reconstruct the same snapshot.
	fromFile, err := LoadCheckpoint(filePath)
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := LoadCheckpointFromStore(fs, "run")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFile, fromStore) {
		t.Fatal("loaded checkpoints differ between file and store paths")
	}

	// Resume from the store snapshot behaves exactly like resume from the
	// file snapshot (same continuation seed).
	rcfg := fastCfg(budget * 2)
	rcfg.Budget = budget * 2
	fromFile.Budget, fromStore.Budget = budget*2, budget*2
	resFile, err := Resume(context.Background(), p, rcfg, rand.New(rand.NewSource(7)), fromFile)
	if err != nil {
		t.Fatal(err)
	}
	resStore, err := Resume(context.Background(), p, rcfg, rand.New(rand.NewSource(7)), fromStore)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resFile.History, resStore.History) {
		t.Fatal("resumed trajectories diverged between file and store snapshots")
	}
}

func TestLoadCheckpointFromStoreNotFound(t *testing.T) {
	mem := storage.NewMem(storage.MemConfig{})
	if _, err := LoadCheckpointFromStore(mem, "missing"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("err = %v, want storage.ErrNotFound", err)
	}
}

// TestEveryTellCheckpoints pins the ack-durability cadence: one checkpoint
// per ingested observation, initialization included.
func TestEveryTellCheckpoints(t *testing.T) {
	calls := 0
	cfg := fastCfg(4)
	cfg.Checkpointer = func(*Checkpoint) error { calls++; return nil }
	res, err := Optimize(testfunc.Forrester(), cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(res.History) {
		t.Fatalf("%d checkpoints for %d observations, want one per Tell", calls, len(res.History))
	}
}

// TestCheckpointFaultIsRetriable: a transient checkpoint failure must stall
// the engine (Tell errors, Ask refuses work) without killing it — once the
// flush succeeds the run continues on the exact clean-run trajectory.
func TestCheckpointFaultIsRetriable(t *testing.T) {
	p := testfunc.Forrester()
	const budget, seed = 4.0, 17

	clean := fastCfg(budget)
	ref, err := Optimize(p, clean, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("transient disk fault")
	failures := 0
	calls := 0
	cfg := fastCfg(budget)
	cfg.Checkpointer = func(*Checkpoint) error {
		calls++
		if calls == 3 || calls == 4 { // fail one write and its first retry
			failures++
			return boom
		}
		return nil
	}
	eng, err := NewEngine(p, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sawTellFault, sawAskFault := false, false
	for {
		sug, err := eng.Ask(ctx)
		if errors.Is(err, boom) {
			// Dirty engine: no new work until the flush goes through.
			sawAskFault = true
			continue
		}
		if err != nil {
			if !errors.Is(err, ErrBudgetExhausted) {
				t.Fatalf("Ask: %v", err)
			}
			break
		}
		ev := p.Evaluate(sug.X, sug.Fid)
		if err := eng.Tell(sug.X, sug.Fid, ev); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("Tell: %v", err)
			}
			sawTellFault = true // ingested but not durable; loop retries Ask
		}
	}
	if !sawTellFault || !sawAskFault {
		t.Fatalf("fault not exercised: tell=%v ask=%v (failures=%d)", sawTellFault, sawAskFault, failures)
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.History, ref.History) {
		t.Fatal("transient checkpoint fault changed the trajectory")
	}
}

package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/problem"
	"repro/internal/robust"
	"repro/internal/testfunc"
)

// noSleep keeps the retry backoff out of test wall-clock time.
func noSleep(time.Duration) {}

// chaoticProblem builds the acceptance-criteria workload: failRate injected
// low-fidelity failures plus occasional panics, behind the safe wrapper with
// zero retries so failures actually surface to the optimizer.
func chaoticProblem(p problem.Problem, failRate float64, seed int64) *robust.SafeProblem {
	ch := robust.NewChaos(p, robust.ChaosConfig{
		Low:  robust.FidelityChaos{FailRate: failRate, PanicRate: failRate / 4},
		Seed: seed,
	})
	return robust.Wrap(ch, robust.Policy{MaxRetries: -1, Sleep: noSleep, Seed: seed})
}

// TestOptimizeSurvivesChaos is the headline robustness guarantee: with 0 %,
// 10 % and 20 % injected low-fidelity failure (plus panics at a quarter of
// the failure rate) on two synthetic problems, the loop completes its budget,
// returns a usable best point, and reports the fault log.
func TestOptimizeSurvivesChaos(t *testing.T) {
	problems := []func() problem.Problem{
		func() problem.Problem { return testfunc.Forrester() },
		func() problem.Problem { return testfunc.ConstrainedSynthetic() },
	}
	for _, mk := range problems {
		for _, failRate := range []float64{0, 0.1, 0.2} {
			inner := mk()
			sp := chaoticProblem(inner, failRate, 3)
			const budget = 8.0
			cfg := fastCfg(budget)
			rng := rand.New(rand.NewSource(5))
			res, err := OptimizeCtx(context.Background(), sp, cfg, rng)
			if err != nil {
				t.Fatalf("%s @ %.0f%%: %v", inner.Name(), 100*failRate, err)
			}
			if res.EquivalentSims < budget-1 {
				t.Fatalf("%s @ %.0f%%: budget not completed: %.2f of %v",
					inner.Name(), 100*failRate, res.EquivalentSims, budget)
			}
			if res.BestX == nil || math.IsNaN(res.Best.Objective) {
				t.Fatalf("%s @ %.0f%%: no usable best", inner.Name(), 100*failRate)
			}
			if res.Best.Failed {
				t.Fatalf("%s @ %.0f%%: best observation is a failure penalty", inner.Name(), 100*failRate)
			}
			if res.Faults == nil {
				t.Fatalf("%s @ %.0f%%: Result.Faults not populated", inner.Name(), 100*failRate)
			}
			if failRate == 0 {
				if res.NumFailed != 0 {
					t.Fatalf("%s clean run recorded %d failures", inner.Name(), res.NumFailed)
				}
			} else if failRate >= 0.2 {
				if res.NumFailed == 0 {
					t.Fatalf("%s @ 20%%: chaos injected nothing (history %d)", inner.Name(), len(res.History))
				}
			}
			// Failed evaluations are charged: history cost accounting must
			// include them.
			nLow, nHigh, nFailed := 0, 0, 0
			for _, ob := range res.History {
				if ob.Fid == problem.Low {
					nLow++
				} else {
					nHigh++
				}
				if ob.Eval.Failed {
					nFailed++
					if !ob.Eval.IsFinite() {
						t.Fatalf("%s: failure observation has non-finite payload", inner.Name())
					}
				}
			}
			if nLow != res.NumLow || nHigh != res.NumHigh || nFailed != res.NumFailed {
				t.Fatalf("%s: history counts %d/%d/%d vs result %d/%d/%d", inner.Name(),
					nLow, nHigh, nFailed, res.NumLow, res.NumHigh, res.NumFailed)
			}
			want := problem.EquivalentSims(inner, nLow, nHigh)
			if math.Abs(res.EquivalentSims-want) > 1e-9 {
				t.Fatalf("%s: equivalent sims %v, want %v (failures must be charged)",
					inner.Name(), res.EquivalentSims, want)
			}
		}
	}
}

// TestChaoticRunCheckpointResume is the acceptance criterion's second half: a
// mid-run checkpoint of a chaotic run can be resumed to completion.
func TestChaoticRunCheckpointResume(t *testing.T) {
	p := testfunc.ConstrainedSynthetic()
	sp := chaoticProblem(p, 0.2, 13)
	const budget = 8.0
	cfg := fastCfg(budget)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *Checkpoint
	cfg.Checkpointer = func(ck *Checkpoint) error {
		last = ck
		if ck.Iter >= 3 {
			cancel()
		}
		return nil
	}
	killed, err := OptimizeCtx(ctx, sp, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !killed.Interrupted || last == nil {
		t.Fatal("chaotic run was not killed mid-flight as intended")
	}

	cfg.Checkpointer = nil
	res, err := Resume(context.Background(), sp, cfg, rand.New(rand.NewSource(8)), last)
	if err != nil {
		t.Fatal(err)
	}
	if res.EquivalentSims < budget-1 {
		t.Fatalf("resumed chaotic run did not finish its budget: %.2f", res.EquivalentSims)
	}
	if res.BestX == nil {
		t.Fatal("resumed chaotic run returned no best point")
	}
	if res.Faults == nil {
		t.Fatal("resumed chaotic run lost the fault log")
	}
}

func TestInterruptedRunReportsPartialHistory(t *testing.T) {
	p := testfunc.Forrester()
	cfg := fastCfg(50)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	cfg.Callback = func(Observation) {
		n++
		if n == cfg.InitLow+cfg.InitHigh+2 {
			cancel()
		}
	}
	res, err := OptimizeCtx(ctx, p, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled run must set Interrupted")
	}
	if len(res.History) < cfg.InitLow+cfg.InitHigh {
		t.Fatal("partial history missing")
	}
	if res.EquivalentSims >= 50 {
		t.Fatal("interrupted run claims to have spent the whole budget")
	}
}

// degradingProblem never fails its evaluations, but the surrogate stack is
// sabotaged via a poisoned FixedNoise to check the ladder bookkeeping. Easier
// and more reliable: feed the loop a dataset the GP cannot fit by making all
// low evaluations after a point return the exact same constant (degenerate
// kernel matrix is still fittable), so instead we directly exercise the
// ladder by stubbing gp failures through a tiny budget and MaxLowData=1.
// If the fit machinery still succeeds, the run must simply have no
// degradations — the invariant under test is "Degradations is consistent and
// the run never dies".
func TestDegradationLogConsistency(t *testing.T) {
	p := testfunc.ConstrainedSynthetic()
	sp := chaoticProblem(p, 0.3, 17)
	cfg := fastCfg(6)
	cfg.MaxLowData = 4 // tiny window: fit failures after failure bursts are plausible
	res, err := OptimizeCtx(context.Background(), sp, cfg, rand.New(rand.NewSource(19)))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Degradations {
		switch d.Stage {
		case DegradeWarmHypers, DegradeLowOnly, DegradeRandom:
		default:
			t.Fatalf("unknown degradation stage %q", d.Stage)
		}
		if d.Iter < 0 {
			t.Fatalf("degradation with bad iteration: %+v", d)
		}
	}
}

// TestFitFailureDegradesNotAborts forces a genuine fit failure by injecting a
// gp-incompatible dataset state: an empty low-fidelity training set (every
// low evaluation fails). The loop must fall back to random exploration and
// still complete.
func TestFitFailureDegradesNotAborts(t *testing.T) {
	inner := testfunc.Forrester()
	ch := robust.NewChaos(inner, robust.ChaosConfig{
		Low:  robust.FidelityChaos{FailRate: 1}, // every low-fidelity simulation fails
		Seed: 23,
	})
	sp := robust.Wrap(ch, robust.Policy{MaxRetries: -1, Sleep: noSleep})
	cfg := fastCfg(6)
	cfg.MaxIterations = 4
	res, err := OptimizeCtx(context.Background(), sp, cfg, rand.New(rand.NewSource(29)))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFailed == 0 {
		t.Fatal("total low-fidelity failure not recorded")
	}
	found := false
	for _, d := range res.Degradations {
		if d.Stage == DegradeRandom {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected random-exploration degradations, got %+v", res.Degradations)
	}
	if res.BestX == nil {
		t.Fatal("run with healthy high fidelity must still report a best")
	}
}

// Guard against regressions in the no-observation corner: when even the
// high-fidelity initialization fails completely, the run ends with an error
// instead of a panic.
func TestAllHighFailuresErrorCleanly(t *testing.T) {
	inner := testfunc.Forrester()
	ch := robust.NewChaos(inner, robust.ChaosConfig{
		Low:  robust.FidelityChaos{FailRate: 1},
		High: robust.FidelityChaos{FailRate: 1},
		Seed: 31,
	})
	sp := robust.Wrap(ch, robust.Policy{MaxRetries: -1, Sleep: noSleep})
	cfg := fastCfg(4)
	cfg.MaxIterations = 2
	res, err := OptimizeCtx(context.Background(), sp, cfg, rand.New(rand.NewSource(37)))
	if !errors.Is(err, ErrNoFeasible) {
		t.Fatalf("run with zero successful high-fidelity observations must return ErrNoFeasible, got %v", err)
	}
	if res == nil || res.NumFailed == 0 {
		t.Fatal("error path must still return the partial result")
	}
}

// Incremental surrogate maintenance (Config.Incremental): a cache of the
// fitted per-output models that is extended in place with rank-1 factor
// updates when new observations arrive, instead of refitting from scratch on
// every proposal. Full hyperparameter refits still run on the RefitEvery
// schedule, when the training window slides, when a model's per-point NLML
// degrades past NLMLTrigger, or when an extension fails numerically.
package core

import (
	"errors"

	"repro/internal/gp"
	"repro/internal/mfgp"
	"repro/internal/telemetry"
)

// surrCache holds the models served between full refits, together with the
// dataset coordinates they cover so extensions and retractions line up.
type surrCache struct {
	lowGPs []*gp.Model
	fused  []*mfgp.Model

	lowStart int // window start index of the low training view at fit time
	lowN     int // low rows (window-relative) folded into the models
	highN    int // high rows folded into the models

	// Per-point NLML at the last full refit, for the degradation trigger.
	baseLow, baseHigh []float64
}

var errCacheUnusable = errors.New("core: surrogate cache unusable")

// incrementalSurrogates serves one proposal's models: extend the cache with
// rank-1 updates when the schedule allows, otherwise fall back to a full
// fitSurrogates and rebuild the cache. skipped reports which path ran.
func (st *state) incrementalSurrogates(iter int, span *telemetry.Span) (lowGPs []*gp.Model, fused []*mfgp.Model, ok, skipped bool) {
	cfg := &st.cfg
	lowX, _ := st.low.window(cfg.MaxLowData)
	start := len(st.low.X) - len(lowX)
	if c := st.cache; c != nil && st.sinceRefit+1 < cfg.RefitEvery && c.lowStart == start && !st.nlmlDegraded(c) {
		if err := st.extendCache(c); err == nil {
			st.sinceRefit++
			if st.met != nil {
				st.met.fitSkipped.Add(1)
			}
			return c.lowGPs, c.fused, true, true
		}
		// A failed extension (e.g. an indefinite downdate residue) poisons
		// the cache; fall through to a full refit.
		st.cache = nil
	}
	st.cache = nil
	st.sinceRefit = 0
	lowGPs, fused, ok = st.fitSurrogates(iter, true, span)
	if !ok {
		return nil, nil, false, false
	}
	c := &surrCache{
		lowGPs:   lowGPs,
		fused:    fused,
		lowStart: start,
		lowN:     len(lowX),
		highN:    len(st.high.X),
		baseLow:  make([]float64, st.nOut),
		baseHigh: make([]float64, st.nOut),
	}
	for k := 0; k < st.nOut; k++ {
		c.baseLow[k] = perPointNLML(lowGPs[k])
		if fused[k] != nil {
			c.baseHigh[k] = perPointNLML(fused[k].High())
		}
	}
	st.cache = c
	return lowGPs, fused, true, false
}

func perPointNLML(m *gp.Model) float64 {
	if n := m.TrainingSize(); n > 0 {
		return m.NLML() / float64(n)
	}
	return 0
}

// nlmlDegraded reports whether any cached model's per-point NLML has drifted
// more than NLMLTrigger nats above its last-full-refit baseline — the early
// warning that frozen hyperparameters no longer explain the data.
func (st *state) nlmlDegraded(c *surrCache) bool {
	trig := st.cfg.NLMLTrigger
	if trig < 0 {
		return false
	}
	for k := 0; k < st.nOut; k++ {
		if perPointNLML(c.lowGPs[k]) > c.baseLow[k]+trig {
			return true
		}
		if c.fused[k] != nil && perPointNLML(c.fused[k].High()) > c.baseHigh[k]+trig {
			return true
		}
	}
	return false
}

// extendCache folds every dataset row the cached models have not seen yet —
// real observations and fantasy rows alike — into the models with rank-1
// updates (O(n²) per row). Models whose fidelity received no new data are
// left untouched. On error the caller must discard the cache: some models may
// already hold the new rows.
func (st *state) extendCache(c *surrCache) error {
	cfg := &st.cfg
	lowX, lowView := st.low.window(cfg.MaxLowData)
	updates := 0
	for i := c.lowN; i < len(lowX); i++ {
		for k := 0; k < st.nOut; k++ {
			if err := c.lowGPs[k].AppendObservation(lowX[i], lowView.Y[i][k]); err != nil {
				return err
			}
			updates++
		}
		c.lowN = i + 1
	}
	for i := c.highN; i < len(st.high.X); i++ {
		for k := 0; k < st.nOut; k++ {
			if c.fused[k] == nil {
				// Low-only degraded output: no high model to extend.
				return errCacheUnusable
			}
			if err := c.fused[k].AppendHigh(st.high.X[i], st.high.Y[i][k]); err != nil {
				return err
			}
			updates++
		}
		c.highN = i + 1
	}
	if updates > 0 {
		if st.met != nil {
			st.met.rank1Updates.Add(uint64(updates))
		}
		if ev := st.ev; ev != nil {
			ev.Rank1Updates += updates
		}
	}
	return nil
}

// retractCache truncates the cached models back to the committed dataset
// sizes after a batch proposal retracted its fantasy rows. nLow/nHigh are the
// committed (fantasy-free) dataset lengths. Any mismatch the truncation
// cannot reconcile poisons the cache so the next proposal refits.
func (st *state) retractCache(nLow, nHigh int) {
	c := st.cache
	if c == nil {
		return
	}
	lowTarget := nLow - c.lowStart
	if lowTarget < 1 || nHigh < 1 || lowTarget > c.lowN || nHigh > c.highN {
		st.cache = nil
		return
	}
	if lowTarget < c.lowN {
		for k := 0; k < st.nOut; k++ {
			if err := c.lowGPs[k].Truncate(lowTarget); err != nil {
				st.cache = nil
				return
			}
		}
		c.lowN = lowTarget
	}
	if nHigh < c.highN {
		for k := 0; k < st.nOut; k++ {
			if c.fused[k] == nil {
				continue
			}
			if err := c.fused[k].TruncateHigh(nHigh); err != nil {
				st.cache = nil
				return
			}
		}
		c.highN = nHigh
	}
}

package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/problem"
	"repro/internal/stats"
	"repro/internal/testfunc"
)

// TestChooseRungMatchesSelectFidelity pins the K=2 degradation of the
// generalized rung selector: fed the same standardized low-fidelity variance,
// chooseRung and the paper's selectFidelity must make bit-identical decisions
// — same rung, same σ²_max, same threshold — for every nc and γ.
func TestChooseRungMatchesSelectFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, d := 20, 2
	X := stats.UniformInBox(rng, []float64{0, 0}, []float64{1, 1}, n)
	mkGP := func(f func([]float64) float64) *gp.Model {
		y := make([]float64, n)
		for i, x := range X {
			y[i] = f(x)
		}
		m, err := gp.Fit(X, y, gp.Config{Kernel: kernel.NewSEARD(d), Restarts: 1, MaxIter: 40}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	lowGPs := []*gp.Model{
		mkGP(func(x []float64) float64 { return math.Sin(7*x[0]) + x[1] }),
		mkGP(func(x []float64) float64 { return x[0]*x[0] - math.Cos(5*x[1]) }),
	}
	for _, gamma := range []float64{0.01, 0.05, 0.5} {
		for nc := 0; nc <= 2; nc++ {
			cfg := Config{Gamma: gamma}
			for trial := 0; trial < 200; trial++ {
				x := stats.UniformInBox(rng, []float64{0, 0}, []float64{1, 1}, 1)[0]
				legacy := cfg.selectFidelity(lowGPs, x, nc)
				// The same standardized variance chooseEvalRung would compute.
				maxVar := 0.0
				for _, m := range lowGPs {
					_, va := m.PredictLatent(x)
					std := m.OutputStd()
					if v := va / (std * std); v > maxVar {
						maxVar = v
					}
				}
				dec := chooseRung([]float64{maxVar}, []float64{0.1, 1}, nc, gamma)
				wantHigh := legacy.fid == problem.High
				if (dec.rung == 1) != wantHigh {
					t.Fatalf("γ=%v nc=%d σ²=%v: chooseRung picked rung %d, selectFidelity %v",
						gamma, nc, maxVar, dec.rung, legacy.fid)
				}
				if math.Float64bits(dec.sigma2Max) != math.Float64bits(legacy.sigma2Max) ||
					math.Float64bits(dec.threshold) != math.Float64bits(legacy.threshold) {
					t.Fatalf("decision record differs: (%v, %v) vs (%v, %v)",
						dec.sigma2Max, dec.threshold, legacy.sigma2Max, legacy.threshold)
				}
				if !dec.hasSigma2 || dec.forced {
					t.Fatal("unforced selection must record σ²")
				}
			}
		}
	}
	// ForceHighFidelity short-circuits identically on both selectors.
	cfg := Config{Gamma: 0.01, ForceHighFidelity: true}
	legacy := cfg.selectFidelity(lowGPs, X[0], 1)
	if legacy.fid != problem.High || !legacy.forced {
		t.Fatal("selectFidelity must force high")
	}
}

// ingestShared feeds one evaluation into several states identically.
func ingestShared(iter int, x []float64, fid problem.Fidelity, e problem.Evaluation, sts ...*state) {
	for _, st := range sts {
		st.ingest(iter, append([]float64(nil), x...), fid, e)
	}
}

// TestProposeLadderMatchesProposeAtK2 is the engine-level oracle for the
// ladder generalization: on a two-fidelity problem, the K-level proposal path
// (fitLadder → chooseEvalRung → fantasizeLadder) must reproduce the legacy
// two-fidelity proposal path bit for bit — same rng consumption, same query
// point, same fidelity decision, same fantasy — across full refits, the
// fit-skipping warm schedule, and the incremental rank-1 maintenance path.
func TestProposeLadderMatchesProposeAtK2(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"full-refit", nil},
		{"warm-skip", func(c *Config) { c.RefitEvery = 2 }},
		{"incremental", func(c *Config) { c.Incremental = true; c.RefitEvery = 3 }},
	}
	probs := []func() problem.Problem{
		func() problem.Problem { return testfunc.Forrester() },
		func() problem.Problem { return testfunc.ConstrainedSynthetic() },
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, mk := range probs {
				p := mk()
				mkState := func() *state {
					cfg := fastCfg(100)
					cfg.NumSamples = 20
					if tc.mod != nil {
						tc.mod(&cfg)
					}
					if err := cfg.defaults(); err != nil {
						t.Fatal(err)
					}
					st, err := newState(p, cfg, rand.New(rand.NewSource(17)))
					if err != nil {
						t.Fatal(err)
					}
					return st
				}
				stA, stB := mkState(), mkState()
				if stA.ladder.Rungs() != 2 {
					t.Fatalf("problem %q is not two-fidelity", p.Name())
				}

				// Identical initialization data in both states.
				initRng := rand.New(rand.NewSource(99))
				lo, hi := p.Bounds()
				for _, x := range stats.LatinHypercube(initRng, lo, hi, 8) {
					ingestShared(-1, x, problem.Low, p.Evaluate(x, problem.Low), stA, stB)
				}
				for _, x := range stats.LatinHypercube(initRng, lo, hi, 4) {
					ingestShared(-1, x, problem.High, p.Evaluate(x, problem.High), stA, stB)
				}

				for iter := 0; iter < 5; iter++ {
					xA, fidA, fanA := stA.propose(iter, nil, true)
					xB, fidB, fanB := stB.proposeLadder(iter, nil, true)
					if fidA != fidB {
						t.Fatalf("%s iter %d: fidelity %v vs %v", p.Name(), iter, fidA, fidB)
					}
					for j := range xA {
						if math.Float64bits(xA[j]) != math.Float64bits(xB[j]) {
							t.Fatalf("%s iter %d: x[%d] %v vs %v", p.Name(), iter, j, xA[j], xB[j])
						}
					}
					if !reflect.DeepEqual(fanA, fanB) {
						t.Fatalf("%s iter %d: fantasy %v vs %v", p.Name(), iter, fanA, fanB)
					}
					ingestShared(iter, xA, fidA, p.Evaluate(xA, fidA), stA, stB)
				}
			}
		})
	}
}

// TestLegacyCheckpointRestoresIntoLadderEngine proves two-fidelity snapshots
// are unchanged by the ladder feature — none of the ladder fields leak into
// K=2 JSON — and that a snapshot with no rung metadata (as any pre-ladder
// release would have written) restores into the ladder-aware engine and runs
// to completion.
func TestLegacyCheckpointRestoresIntoLadderEngine(t *testing.T) {
	_, cks := captureCheckpoints(t, 8, 63)
	ck := cks[len(cks)/2]
	data, err := ck.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Rungs", "RungCosts", "InitMid", "NumByRung", "MidX", "MidY", "WarmChain"} {
		if strings.Contains(string(data), `"`+field+`"`) {
			t.Fatalf("two-fidelity checkpoint JSON leaks ladder field %q:\n%s", field, data)
		}
	}
	snap, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Resume(context.Background(), testfunc.ConstrainedSynthetic(), fastCfg(8), rand.New(rand.NewSource(7)), snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) <= len(snap.History) {
		t.Fatalf("resume did not continue: %d <= %d observations", len(res.History), len(snap.History))
	}
	if res.Interrupted || res.BestX == nil {
		t.Fatalf("restored run did not complete: interrupted=%v best=%v", res.Interrupted, res.BestX)
	}
	if res.NumByRung != nil {
		t.Fatal("K=2 result must not grow a NumByRung breakdown")
	}
}

// ladderCfg is the shared 3-rung run configuration for the K>2 tests.
func ladderCfg(budget float64) Config {
	cfg := fastCfg(budget)
	cfg.InitLow, cfg.InitMid, cfg.InitHigh = 6, 3, 3
	return cfg
}

// TestLadderOptimizeForrester3 runs the full K=3 loop end to end: rungs are
// selected from the whole ladder, the per-rung breakdown is reported, costs
// are charged by rung, and the optimum matches the two-fidelity engine's.
func TestLadderOptimizeForrester3(t *testing.T) {
	p := testfunc.Forrester3()
	res, err := Optimize(p, ladderCfg(14), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NumByRung) != 3 {
		t.Fatalf("NumByRung = %v, want 3 rungs", res.NumByRung)
	}
	total := 0
	for _, n := range res.NumByRung {
		total += n
	}
	if total != len(res.History) {
		t.Fatalf("per-rung counts sum to %d, history has %d", total, len(res.History))
	}
	if res.NumByRung[0] < 6 || res.NumByRung[1] < 3 || res.NumByRung[2] < 3 {
		t.Fatalf("initialization missing from per-rung counts: %v", res.NumByRung)
	}
	// Cost accounting: Σ count·γ over sub-target rungs + target count.
	want := float64(res.NumByRung[2]) + 0.1*float64(res.NumByRung[0]) + 0.25*float64(res.NumByRung[1])
	if math.Abs(res.EquivalentSims-want) > 1e-9 {
		t.Fatalf("EquivalentSims %v, want %v from %v", res.EquivalentSims, want, res.NumByRung)
	}
	// The Forrester optimum is x*≈0.757, f*≈−6.02; the ladder run must find
	// the same basin the two-fidelity engine does.
	if !res.Feasible || res.Best.Objective > -5.5 {
		t.Fatalf("ladder run missed the optimum: %+v", res.Best)
	}
}

// TestLadderCheckpointRoundTripK3 kills a 3-rung run mid-flight and resumes
// it from the serialized snapshot: the resumed history must extend the
// snapshot's exactly and the mid-rung dataset must survive the round trip.
func TestLadderCheckpointRoundTripK3(t *testing.T) {
	p := testfunc.Forrester3()
	const budget = 10.0
	cfg := ladderCfg(budget)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *Checkpoint
	kcfg := cfg
	kcfg.Checkpointer = func(ck *Checkpoint) error {
		last = ck
		if ck.Iter >= 3 {
			cancel()
		}
		return nil
	}
	killed, err := OptimizeCtx(ctx, p, kcfg, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	if !killed.Interrupted || last == nil {
		t.Fatalf("no usable mid-flight snapshot (interrupted=%v)", killed.Interrupted)
	}
	if last.Rungs != 3 || len(last.RungCosts) != 3 {
		t.Fatalf("K=3 snapshot missing ladder metadata: rungs=%d costs=%v", last.Rungs, last.RungCosts)
	}
	if len(last.MidX) != 1 || len(last.MidX[0]) == 0 {
		t.Fatalf("K=3 snapshot missing mid-rung dataset: %v", last.MidX)
	}

	data, err := last.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	resume := func(seed int64) *Result {
		r, err := Resume(context.Background(), p, cfg, rand.New(rand.NewSource(seed)), snap)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	resumed := resume(77)
	if len(resumed.History) <= len(snap.History) {
		t.Fatalf("resume did not continue: %d <= %d", len(resumed.History), len(snap.History))
	}
	if !reflect.DeepEqual(resumed.History[:len(snap.History)], snap.History) {
		t.Fatal("resumed history prefix differs from the checkpoint history")
	}
	if resumed.EquivalentSims < budget-1 || resumed.EquivalentSims > budget+1 {
		t.Fatalf("resumed run spent %.2f sims, budget %v", resumed.EquivalentSims, budget)
	}
	again := resume(77)
	if len(again.History) != len(resumed.History) || again.Best.Objective != resumed.Best.Objective {
		t.Fatal("K=3 resume is not deterministic")
	}

	// A two-fidelity binary must refuse the ladder snapshot (rung mismatch)
	// rather than silently mangle the mid-rung data.
	if _, err := Resume(context.Background(), testfunc.Forrester(), cfg, rand.New(rand.NewSource(1)), snap); err == nil {
		t.Fatal("resume onto a 2-rung problem must fail")
	}
}

// TestLadderAskBatch drives a 3-rung engine through AskBatch with q=3 and
// maximally out-of-order tells; the run must complete with a coherent
// per-rung breakdown, and init suggestions must carry mid-rung IDs.
func TestLadderAskBatch(t *testing.T) {
	p := testfunc.Forrester3()
	eng, err := NewEngine(p, ladderCfg(12), rand.New(rand.NewSource(19)))
	if err != nil {
		t.Fatal(err)
	}
	sugs, err := eng.AskBatch(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	// The full init design is 6 low + 3 mid + 3 high.
	if len(sugs) != 12 {
		t.Fatalf("want 12 init suggestions, got %d", len(sugs))
	}
	byFid := map[problem.Fidelity]int{}
	sawMidID := false
	for _, s := range sugs {
		byFid[s.Fid]++
		if strings.HasPrefix(s.ID, "init-mid") {
			sawMidID = true
			if s.Fid != problem.Fidelity(1) {
				t.Fatalf("mid init suggestion %q has fidelity %v", s.ID, s.Fid)
			}
		}
	}
	if byFid[problem.Fidelity(0)] != 6 || byFid[problem.Fidelity(1)] != 3 || byFid[problem.Fidelity(2)] != 3 {
		t.Fatalf("init design per rung = %v, want 6/3/3", byFid)
	}
	if !sawMidID {
		t.Fatal("no init-mid suggestion IDs")
	}
	for i := len(sugs) - 1; i >= 0; i-- {
		if err := eng.TellByID(sugs[i].ID, p.Evaluate(sugs[i].X, sugs[i].Fid)); err != nil {
			t.Fatalf("TellByID(%s): %v", sugs[i].ID, err)
		}
	}
	res := driveBatch(t, eng, p, 3)
	if len(res.NumByRung) != 3 {
		t.Fatalf("NumByRung = %v", res.NumByRung)
	}
	total := 0
	for _, n := range res.NumByRung {
		total += n
	}
	if total != len(res.History) {
		t.Fatalf("per-rung counts sum to %d, history has %d", total, len(res.History))
	}
	if res.BestX == nil {
		t.Fatal("batch ladder run reported no best point")
	}
}

// TestLadderIncrementalMatchesFullRefit checks the K=3 incremental
// maintenance path stays on the same trajectory as its own full-refit
// schedule would at RefitEvery=1 (where every proposal refits and the cache
// is rebuilt each time — rank-1 extension never engages, so the two must
// agree exactly), and that RefitEvery>1 still completes and converges.
func TestLadderIncrementalMatchesFullRefit(t *testing.T) {
	run := func(incremental bool, refitEvery int) *Result {
		cfg := ladderCfg(10)
		cfg.Incremental = incremental
		cfg.RefitEvery = refitEvery
		res, err := Optimize(testfunc.Forrester3(), cfg, rand.New(rand.NewSource(23)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(false, 1)
	inc := run(true, 1)
	historiesIdentical(t, ref, inc)

	relaxed := run(true, 4)
	if !relaxed.Feasible || relaxed.Best.Objective > -5.0 {
		t.Fatalf("incremental K=3 run (RefitEvery=4) missed the optimum: %+v", relaxed.Best)
	}
}

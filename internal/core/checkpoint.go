package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/problem"
	"repro/internal/storage"
)

// CheckpointVersion is bumped whenever the snapshot layout changes
// incompatibly.
const CheckpointVersion = 1

// Checkpoint is a complete, JSON-serializable snapshot of an optimization
// run: everything Resume needs to continue the loop except the live Config
// (function-valued fields cannot round-trip through JSON — the caller passes
// a fresh Config, and the RNG-visible scalar parts recorded here are
// validated against it).
type Checkpoint struct {
	Version int
	// Problem identity, validated on Resume.
	Problem        string
	Dim            int
	NumConstraints int
	// RNG-visible scalar config, validated on Resume (a mismatch would
	// silently change the search trajectory).
	Budget            float64
	Gamma             float64
	InitLow, InitHigh int
	// Loop position.
	Iter            int // next adaptive iteration
	Cost            float64
	NumLow, NumHigh int
	NumFailed       int
	// Training sets (successful evaluations only; failures live in History).
	LowX, LowY   [][]float64
	HighX, HighY [][]float64
	// Warm-start hyperparameters per output (may contain nil entries).
	WarmLow, WarmHigh [][]float64
	// SinceRefit is the Incremental-mode fit-skip counter: the number of
	// proposals served from the cached models since the last full
	// hyperparameter refit. The model cache itself is not serialized — the
	// first proposal after a restore performs a full refit — but restoring
	// the counter keeps the RefitEvery schedule aligned with the original
	// run.
	SinceRefit int `json:",omitempty"`
	// Full simulation history and degradation log.
	History      []Observation
	Degradations []Degradation
	// Pending round-trips the full set of asked-but-untold suggestions (the
	// outstanding batch of a distributed run), so a restored engine replays
	// them verbatim instead of recomputing — workers holding leases on them
	// can still report after a restart. Empty for purely sequential runs
	// snapshotted at the usual post-Tell boundary.
	Pending []PendingSuggestion `json:",omitempty"`

	// Fidelity-ladder state (K>2 runs only — all fields absent on classic
	// two-fidelity snapshots, which therefore stay byte-identical to earlier
	// releases; a snapshot with Rungs == 0 decodes as a two-rung run).
	// Rungs/RungCosts/InitMid are RNG-visible config validated on Resume;
	// MidX/MidY hold the intermediate-rung training sets (index = rung-1);
	// WarmChain carries the per-output per-level chain hyperparameters.
	Rungs     int           `json:",omitempty"`
	RungCosts []float64     `json:",omitempty"`
	InitMid   int           `json:",omitempty"`
	NumByRung []int         `json:",omitempty"`
	MidX      [][][]float64 `json:",omitempty"`
	MidY      [][][]float64 `json:",omitempty"`
	WarmChain [][][]float64 `json:",omitempty"`
}

// PendingSuggestion is the serialized form of one outstanding suggestion:
// identity, query, and — for adaptive batch slots — the fantasy outputs that
// stood in for its observation while later slots were proposed.
type PendingSuggestion struct {
	ID      string
	X       []float64
	Fid     problem.Fidelity
	Iter    int
	Fantasy []float64 `json:",omitempty"`
}

func cloneMatrix(m [][]float64) [][]float64 {
	if m == nil {
		return nil
	}
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// snapshot deep-copies the live state into a Checkpoint.
func (st *state) snapshot() *Checkpoint {
	hist := make([]Observation, len(st.res.History))
	for i, ob := range st.res.History {
		ob.X = append([]float64(nil), ob.X...)
		ob.Eval.Constraints = append([]float64(nil), ob.Eval.Constraints...)
		hist[i] = ob
	}
	ck := &Checkpoint{
		Version:        CheckpointVersion,
		Problem:        st.p.Name(),
		Dim:            st.d,
		NumConstraints: st.nc,
		Budget:         st.cfg.Budget,
		Gamma:          st.cfg.Gamma,
		InitLow:        st.cfg.InitLow,
		InitHigh:       st.cfg.InitHigh,
		Iter:           st.iter,
		Cost:           st.cost,
		NumLow:         st.res.NumLow,
		NumHigh:        st.res.NumHigh,
		NumFailed:      st.res.NumFailed,
		LowX:           cloneMatrix(st.low.X),
		LowY:           cloneMatrix(st.low.Y),
		HighX:          cloneMatrix(st.high.X),
		HighY:          cloneMatrix(st.high.Y),
		WarmLow:        cloneMatrix(st.warmLow),
		WarmHigh:       cloneMatrix(st.warmHigh),
		SinceRefit:     st.sinceRefit,
		History:        hist,
		Degradations:   append([]Degradation(nil), st.res.Degradations...),
	}
	if st.ladder.Rungs() > 2 {
		ck.Rungs = st.ladder.Rungs()
		ck.RungCosts = st.ladder.Costs()
		ck.InitMid = st.cfg.InitMid
		ck.NumByRung = append([]int(nil), st.res.NumByRung...)
		ck.MidX = make([][][]float64, len(st.mid))
		ck.MidY = make([][][]float64, len(st.mid))
		for i, d := range st.mid {
			ck.MidX[i] = cloneMatrix(d.X)
			ck.MidY[i] = cloneMatrix(d.Y)
		}
		for _, levels := range st.warmChain {
			ck.WarmChain = append(ck.WarmChain, cloneMatrix(levels))
		}
	}
	return ck
}

// checkpoint invokes the configured Checkpointer hook, if any, with a full
// snapshot — the engine-level view that includes the outstanding pending set.
func (e *Engine) checkpoint() error {
	if e.st.cfg.Checkpointer == nil {
		return nil
	}
	if err := e.st.cfg.Checkpointer(e.Snapshot()); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}

// Marshal renders the checkpoint as deterministic, human-inspectable JSON.
func (ck *Checkpoint) Marshal() ([]byte, error) {
	return json.MarshalIndent(ck, "", " ")
}

// UnmarshalCheckpoint parses a checkpoint previously produced by Marshal.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("core: corrupt checkpoint: %w", err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	return ck, nil
}

// SaveCheckpoint writes the checkpoint atomically and durably: the data is
// written to a temp file, fsynced, renamed over the destination, and the
// parent directory is fsynced as well — so the snapshot survives not only a
// process crash mid-write but also a power loss right after the rename (an
// unsynced directory entry can otherwise vanish on crash-recovering
// filesystems).
func SaveCheckpoint(path string, ck *Checkpoint) error {
	data, err := ck.Marshal()
	if err != nil {
		return fmt.Errorf("core: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.json")
	if err != nil {
		return fmt.Errorf("core: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	// Flush file contents to stable storage before the rename publishes the
	// new name: rename-before-sync can leave a zero-length file after power
	// loss.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("core: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: commit checkpoint: %w", err)
	}
	// Persist the rename itself: the directory entry is metadata owned by
	// the parent directory, which has its own write-back cache.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("core: sync checkpoint directory: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so recently renamed entries survive power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadCheckpoint reads a snapshot written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	return UnmarshalCheckpoint(data)
}

// FileCheckpointer returns a Checkpointer hook persisting every snapshot to
// path (atomically overwriting the previous one).
func FileCheckpointer(path string) func(*Checkpoint) error {
	return func(ck *Checkpoint) error { return SaveCheckpoint(path, ck) }
}

// StoreCheckpointer returns a Checkpointer hook persisting every snapshot
// into store under (storage.KindCheckpoint, id) — the pluggable-backend
// successor of FileCheckpointer. The serialized bytes are identical to the
// file path's (Marshal output); durability and generational rollback are the
// store's business.
func StoreCheckpointer(store storage.Store, id string) func(*Checkpoint) error {
	return func(ck *Checkpoint) error {
		data, err := ck.Marshal()
		if err != nil {
			return fmt.Errorf("core: marshal checkpoint: %w", err)
		}
		return store.Put(storage.KindCheckpoint, id, data)
	}
}

// LoadCheckpointFromStore reads the newest recoverable snapshot of id from
// store. storage.ErrNotFound passes through for errors.Is classification
// ("no snapshot yet" is a normal fresh-start condition).
func LoadCheckpointFromStore(store storage.Store, id string) (*Checkpoint, error) {
	data, err := store.Get(storage.KindCheckpoint, id)
	if err != nil {
		return nil, err
	}
	return UnmarshalCheckpoint(data)
}

// validateResume cross-checks the snapshot against the live problem/config.
// Every failure wraps ErrResumeMismatch so callers can classify it with
// errors.Is instead of matching message strings.
func validateResume(p problem.Problem, cfg *Config, ck *Checkpoint) error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("%w: checkpoint version %d, want %d", ErrResumeMismatch, ck.Version, CheckpointVersion)
	}
	if ck.Problem != p.Name() {
		return fmt.Errorf("%w: checkpoint is for problem %q, not %q", ErrResumeMismatch, ck.Problem, p.Name())
	}
	if ck.Dim != p.Dim() || ck.NumConstraints != p.NumConstraints() {
		return fmt.Errorf("%w: checkpoint shape (d=%d, nc=%d) does not match problem (d=%d, nc=%d)",
			ErrResumeMismatch, ck.Dim, ck.NumConstraints, p.Dim(), p.NumConstraints())
	}
	if ck.Budget != cfg.Budget {
		return fmt.Errorf("%w: checkpoint budget %v != config budget %v", ErrResumeMismatch, ck.Budget, cfg.Budget)
	}
	if ck.Gamma != cfg.Gamma {
		return fmt.Errorf("%w: checkpoint gamma %v != config gamma %v", ErrResumeMismatch, ck.Gamma, cfg.Gamma)
	}
	// Rung count: a snapshot with Rungs == 0 is a legacy (or current
	// two-fidelity) checkpoint and resumes onto any 2-rung problem; a K>2
	// snapshot requires the same ladder shape.
	rungs := ck.Rungs
	if rungs == 0 {
		rungs = 2
	}
	if k := problem.NumFidelities(p); k != rungs {
		return fmt.Errorf("%w: checkpoint has %d fidelity rungs, problem %q has %d",
			ErrResumeMismatch, rungs, p.Name(), k)
	}
	return nil
}

// Resume continues an optimization run from a snapshot: datasets, history,
// incumbents, spent budget and warm hyperparameters are restored exactly, and
// the adaptive loop picks up at the snapshot's iteration until the remaining
// budget is spent. The caller supplies the same problem and an equivalent
// Config (scalar fields are validated against the snapshot — mismatches
// return ErrResumeMismatch); rng seeds the continuation — the history prefix
// is bit-identical to the snapshot regardless. Snapshots taken before the
// initialization phase completed resume by finishing the initialization
// first (see RestoreEngine).
func Resume(ctx context.Context, p problem.Problem, cfg Config, rng *rand.Rand, ck *Checkpoint) (*Result, error) {
	eng, err := RestoreEngine(p, cfg, rng, ck)
	if err != nil {
		return nil, err
	}
	return eng.drive(ctx)
}

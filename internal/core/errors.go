package core

import "errors"

// Typed sentinel errors. Callers should classify failures with errors.Is
// rather than matching message strings: every error constructed by this
// package that falls into one of these categories wraps the sentinel.
var (
	// ErrBudgetExhausted is returned by Engine.Ask when the run has spent
	// its simulation budget (or hit Config.MaxIterations) and no further
	// suggestions will be produced. It signals normal completion, not a
	// fault: call Engine.Result to collect the outcome.
	ErrBudgetExhausted = errors.New("core: simulation budget exhausted")

	// ErrNoFeasible is returned by Optimize/Resume/Engine.Result when the
	// run ended without a single successful high-fidelity observation, so
	// no best point — feasible or otherwise — can be reported.
	ErrNoFeasible = errors.New("core: no successful high-fidelity observations recorded")

	// ErrResumeMismatch marks a checkpoint that cannot continue under the
	// supplied problem/config: wrong snapshot version, wrong problem
	// identity or shape, or RNG-visible scalar config drift that would
	// silently change the search trajectory.
	ErrResumeMismatch = errors.New("core: checkpoint does not match problem/config")

	// ErrInterrupted is returned by Engine.Ask when the driving context was
	// cancelled; the partial state remains intact and snapshot-able.
	ErrInterrupted = errors.New("core: run interrupted by context cancellation")

	// ErrNoPendingAsk is returned by Engine.Tell when no suggestion is
	// outstanding (Tell without Ask, or a duplicate Tell).
	ErrNoPendingAsk = errors.New("core: no pending suggestion to observe")

	// ErrTellMismatch is returned by Engine.Tell when the observed point or
	// fidelity does not match the pending suggestion. Ask/Tell must
	// alternate on exactly the suggested queries to keep service-driven
	// trajectories bit-identical to in-process ones.
	ErrTellMismatch = errors.New("core: observation does not match the pending suggestion")

	// ErrUnknownSuggestion is returned by Engine.TellByID when the named
	// suggestion is not outstanding: it was never issued, or its observation
	// already arrived (e.g. a duplicate report for a requeued distributed
	// evaluation). The dispatch layer treats it as "result already ingested
	// elsewhere" and discards the report.
	ErrUnknownSuggestion = errors.New("core: unknown or already-observed suggestion id")
)

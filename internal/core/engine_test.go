package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/problem"
	"repro/internal/robust"
	"repro/internal/testfunc"
)

// driveManually runs the full ask/evaluate/tell protocol by hand, the way an
// external evaluator would, and returns the assembled result.
func driveManually(t *testing.T, eng *Engine, p problem.Problem) *Result {
	t.Helper()
	for {
		sug, err := eng.Ask(context.Background())
		if errors.Is(err, ErrBudgetExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ev, everr := problem.EvaluateRich(p, sug.X, sug.Fid)
		if everr != nil {
			ev.Failed = true
		}
		if err := eng.Tell(sug.X, sug.Fid, ev); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEngineMatchesOptimize is the refactor's oracle: a hand-driven ask/tell
// session must reproduce the in-process Optimize trajectory bit-identically
// under the same seed.
func TestEngineMatchesOptimize(t *testing.T) {
	for _, mk := range []func() problem.Problem{
		func() problem.Problem { return testfunc.Forrester() },
		func() problem.Problem { return testfunc.ConstrainedSynthetic() },
	} {
		p := mk()
		ref, err := Optimize(mk(), fastCfg(8), rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(p, fastCfg(8), rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		res := driveManually(t, eng, p)
		historiesIdentical(t, ref, res)
	}
}

// TestEngineAskIdempotent: polling the same pending suggestion must not
// recompute it or consume randomness — crashed clients can simply re-ask.
func TestEngineAskIdempotent(t *testing.T) {
	p := testfunc.Forrester()
	eng, err := NewEngine(p, fastCfg(8), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Ask(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Ask(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated Ask changed the suggestion: %+v vs %+v", a, b)
	}
	// After the Tell, the next Ask differs.
	ev := p.Evaluate(a.X, a.Fid)
	if err := eng.Tell(a.X, a.Fid, ev); err != nil {
		t.Fatal(err)
	}
	c, err := eng.Ask(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("Ask after Tell replayed the consumed suggestion")
	}
}

func TestEngineTellValidation(t *testing.T) {
	p := testfunc.Forrester()
	eng, err := NewEngine(p, fastCfg(8), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// Tell before any Ask.
	if err := eng.Tell([]float64{0.5}, problem.Low, problem.Evaluation{}); !errors.Is(err, ErrNoPendingAsk) {
		t.Fatalf("Tell without Ask: want ErrNoPendingAsk, got %v", err)
	}
	sug, err := eng.Ask(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Wrong point.
	bad := append([]float64(nil), sug.X...)
	bad[0] += 1e-9
	if err := eng.Tell(bad, sug.Fid, problem.Evaluation{}); !errors.Is(err, ErrTellMismatch) {
		t.Fatalf("mismatched point: want ErrTellMismatch, got %v", err)
	}
	// Wrong fidelity.
	if err := eng.Tell(sug.X, problem.High, problem.Evaluation{}); !errors.Is(err, ErrTellMismatch) {
		t.Fatalf("mismatched fidelity: want ErrTellMismatch, got %v", err)
	}
	// A rejected Tell leaves the pending suggestion intact.
	again, err := eng.Ask(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sug, again) {
		t.Fatal("rejected Tell disturbed the pending suggestion")
	}
	// Correct Tell succeeds; a duplicate Tell is then rejected.
	if err := eng.Tell(sug.X, sug.Fid, p.Evaluate(sug.X, sug.Fid)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Tell(sug.X, sug.Fid, problem.Evaluation{}); !errors.Is(err, ErrNoPendingAsk) {
		t.Fatalf("duplicate Tell: want ErrNoPendingAsk, got %v", err)
	}
}

// TestEngineNonFiniteTellSanitized: a told evaluation with non-finite payload
// is charged but excluded from surrogate training, exactly like the
// in-process sanitation path.
func TestEngineNonFiniteTellSanitized(t *testing.T) {
	p := testfunc.Forrester()
	eng, err := NewEngine(p, fastCfg(8), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	sug, err := eng.Ask(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Tell(sug.X, sug.Fid, problem.Evaluation{Failed: true, Objective: problem.PenaltyObjective}); err != nil {
		t.Fatal(err)
	}
	pr := eng.Progress()
	if pr.NumFailed != 1 {
		t.Fatalf("failed Tell not counted: %+v", pr)
	}
	if n := len(eng.st.low.X) + len(eng.st.high.X); n != 0 {
		t.Fatalf("failed observation reached surrogate training sets (%d points)", n)
	}
	if len(eng.History()) != 1 || !eng.History()[0].Eval.Failed {
		t.Fatal("failed observation missing from history")
	}
}

// TestEngineTerminalBudget: once the budget is spent, Ask keeps returning
// ErrBudgetExhausted and Result reports the completed run.
func TestEngineTerminalBudget(t *testing.T) {
	p := testfunc.Forrester()
	eng, err := NewEngine(p, fastCfg(3), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	res := driveManually(t, eng, p)
	if !eng.Done() {
		t.Fatal("engine must be terminal after exhausting the budget")
	}
	for i := 0; i < 2; i++ {
		if _, err := eng.Ask(context.Background()); !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("terminal Ask: want ErrBudgetExhausted, got %v", err)
		}
	}
	if res.BestX == nil {
		t.Fatal("completed run must report a best point")
	}
	if pr := eng.Progress(); pr.Phase != "done" || !pr.HasBest {
		t.Fatalf("terminal progress wrong: %+v", pr)
	}
}

// TestEngineMidInitSnapshotRestore: a snapshot taken in the middle of the
// initialization phase restores into an engine that finishes the exact same
// design (same seed ⇒ identical redraw) and then reproduces the full
// uninterrupted trajectory bit-identically.
func TestEngineMidInitSnapshotRestore(t *testing.T) {
	p := testfunc.ConstrainedSynthetic()
	const seed = 57
	ref, err := Optimize(testfunc.ConstrainedSynthetic(), fastCfg(7), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(p, fastCfg(7), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate 5 of the initialization points, then snapshot.
	for i := 0; i < 5; i++ {
		sug, err := eng.Ask(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if sug.Iter != -1 {
			t.Fatalf("expected initialization suggestion, got iter %d", sug.Iter)
		}
		if err := eng.Tell(sug.X, sug.Fid, p.Evaluate(sug.X, sug.Fid)); err != nil {
			t.Fatal(err)
		}
	}
	ck := eng.Snapshot()
	if len(ck.History) != 5 {
		t.Fatalf("snapshot history has %d entries, want 5", len(ck.History))
	}

	restored, err := RestoreEngine(p, fastCfg(7), rand.New(rand.NewSource(seed)), ck)
	if err != nil {
		t.Fatal(err)
	}
	res := driveManually(t, restored, p)
	historiesIdentical(t, ref, res)
	if !reflect.DeepEqual(res.History[:5], ck.History) {
		t.Fatal("restored run rewrote the snapshot prefix")
	}
}

// TestCheckpointResumeMidDegradation is the degraded-mode round-trip
// guarantee: a snapshot taken while the degradation ladder is active (here
// rung 3, random exploration, forced by a total low-fidelity blackout)
// restores with the degradation log intact, and the continuation is
// deterministic — two resumes from the same snapshot under the same seed are
// bit-identical.
func TestCheckpointResumeMidDegradation(t *testing.T) {
	mkProblem := func() problem.Problem {
		ch := robust.NewChaos(testfunc.Forrester(), robust.ChaosConfig{
			Low:  robust.FidelityChaos{FailRate: 1}, // every low-fidelity simulation fails
			Seed: 23,
		})
		return robust.Wrap(ch, robust.Policy{MaxRetries: -1, Sleep: noSleep})
	}

	cfg := fastCfg(6)
	cfg.MaxIterations = 6
	var mid *Checkpoint
	cfg.Checkpointer = func(ck *Checkpoint) error {
		// Keep the first snapshot taken while a degradation is on the books
		// and the run still has iterations ahead of it.
		if mid == nil && len(ck.Degradations) > 0 && ck.Iter >= 2 && ck.Iter < cfg.MaxIterations {
			mid = ck
		}
		return nil
	}
	if _, err := OptimizeCtx(context.Background(), mkProblem(), cfg, rand.New(rand.NewSource(29))); err != nil {
		t.Fatal(err)
	}
	if mid == nil {
		t.Fatal("no mid-degradation snapshot captured")
	}
	found := false
	for _, d := range mid.Degradations {
		if d.Stage == DegradeRandom {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot does not carry the active degradation: %+v", mid.Degradations)
	}

	// Serialize/deserialize as a real crash-recovery would.
	data, err := mid.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}

	rcfg := fastCfg(6)
	rcfg.MaxIterations = 6
	resume := func() *Result {
		res, err := Resume(context.Background(), mkProblem(), rcfg, rand.New(rand.NewSource(31)), snap)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := resume(), resume()

	// Identical continuation: same length, bit-identical observations.
	historiesIdentical(t, a, b)
	if len(a.History) <= len(snap.History) {
		t.Fatalf("resume did not continue: %d <= %d observations", len(a.History), len(snap.History))
	}
	// The snapshot's history and degradation log are preserved verbatim.
	if !reflect.DeepEqual(a.History[:len(snap.History)], snap.History) {
		t.Fatal("resumed history prefix differs from the snapshot")
	}
	if len(a.Degradations) < len(snap.Degradations) ||
		!reflect.DeepEqual(a.Degradations[:len(snap.Degradations)], snap.Degradations) {
		t.Fatalf("degradation log not preserved: %+v vs snapshot %+v", a.Degradations, snap.Degradations)
	}
	// The blackout persists after resume, so the continuation must keep
	// degrading rather than silently heal.
	if len(a.Degradations) <= len(snap.Degradations) {
		t.Fatal("continuation recorded no further degradations under a persistent low-fidelity blackout")
	}
}

package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/problem"
	"repro/internal/telemetry"
	"repro/internal/testfunc"
)

// TestTelemetryOracle is the bit-identity oracle: a seeded run with full
// telemetry (metrics + event ring + unsampled tracing) must produce exactly
// the same trajectory as the same seed with telemetry off. Telemetry only
// captures values the optimizer computed anyway and never consumes optimizer
// RNG, so any divergence here is a bug in the instrumentation.
func TestTelemetryOracle(t *testing.T) {
	p := testfunc.Pedagogical()
	run := func(rec *telemetry.Recorder) *Result {
		cfg := fastCfg(12)
		cfg.Telemetry = rec
		res, err := Optimize(p, cfg, rand.New(rand.NewSource(21)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ring := telemetry.NewRing(1024)
	on := run(telemetry.NewRecorder(ring, 1))
	off := run(nil)

	if len(on.History) != len(off.History) {
		t.Fatalf("history length %d vs %d", len(on.History), len(off.History))
	}
	for i := range on.History {
		a, b := on.History[i], off.History[i]
		if a.Fid != b.Fid || a.CumCost != b.CumCost || a.Eval.Objective != b.Eval.Objective {
			t.Fatalf("history[%d] diverged: %+v vs %+v", i, a, b)
		}
		for j := range a.X {
			if a.X[j] != b.X[j] {
				t.Fatalf("history[%d].X diverged: %v vs %v", i, a.X, b.X)
			}
		}
	}
	for j := range on.BestX {
		if on.BestX[j] != off.BestX[j] {
			t.Fatalf("BestX diverged: %v vs %v", on.BestX, off.BestX)
		}
	}
	if on.Best.Objective != off.Best.Objective || on.EquivalentSims != off.EquivalentSims {
		t.Fatalf("result diverged: %v/%v vs %v/%v",
			on.Best.Objective, on.EquivalentSims, off.Best.Objective, off.EquivalentSims)
	}
}

// TestTelemetryRemoteTraceOracle is the distributed-tracing oracle: driving
// the engine under a remote-parented trace context — the path a
// gateway-routed request takes through the server middleware — must yield the
// exact trajectory of an untraced drive. Propagation reads request metadata
// only, never optimizer RNG, so the engine spans must join the remote trace
// while the trajectory stays bit-identical.
func TestTelemetryRemoteTraceOracle(t *testing.T) {
	p := testfunc.Pedagogical()
	drive := func(rec *telemetry.Recorder, ctx context.Context) *Result {
		cfg := fastCfg(12)
		cfg.Telemetry = rec
		eng, err := NewEngine(p, cfg, rand.New(rand.NewSource(21)))
		if err != nil {
			t.Fatal(err)
		}
		for {
			s, err := eng.Ask(ctx)
			if errors.Is(err, ErrBudgetExhausted) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			ev, everr := problem.EvaluateRich(p, s.X, s.Fid)
			if everr != nil {
				ev.Failed = true
			}
			if err := eng.TellCtx(ctx, s.X, s.Fid, ev); err != nil {
				t.Fatal(err)
			}
		}
		res, err := eng.Result()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// The traced drive: a request span continuing a fictitious gateway's
	// trace, exactly what server middleware puts into the engine context.
	ring := telemetry.NewRing(4096)
	rec := telemetry.NewRecorder(ring, 1)
	gwTC := telemetry.TraceContext{TraceHi: 0x1111, TraceLo: 0x2222, SpanID: 0x3333, Sampled: true}
	reqSpan := rec.Tracer.StartRemote("server.suggest", gwTC)
	traced := drive(rec, telemetry.ContextWithSpan(context.Background(), reqSpan))
	reqSpan.End()
	plain := drive(nil, context.Background())

	if len(traced.History) != len(plain.History) {
		t.Fatalf("history length %d vs %d", len(traced.History), len(plain.History))
	}
	for i := range traced.History {
		a, b := traced.History[i], plain.History[i]
		if a.Fid != b.Fid || a.CumCost != b.CumCost || a.Eval.Objective != b.Eval.Objective {
			t.Fatalf("history[%d] diverged: %+v vs %+v", i, a, b)
		}
		for j := range a.X {
			if a.X[j] != b.X[j] {
				t.Fatalf("history[%d].X diverged: %v vs %v", i, a.X, b.X)
			}
		}
	}
	if traced.Best.Objective != plain.Best.Objective || traced.EquivalentSims != plain.EquivalentSims {
		t.Fatalf("result diverged: %v/%v vs %v/%v",
			traced.Best.Objective, traced.EquivalentSims, plain.Best.Objective, plain.EquivalentSims)
	}

	// Every emitted span joined the gateway's trace, and the engine roots
	// parented on the request span rather than starting traces of their own.
	want := gwTC.TraceID()
	engineSpans := 0
	for _, ev := range ring.Snapshot() {
		if ev.Span == nil {
			continue
		}
		if ev.Span.Trace != want {
			t.Fatalf("span %s carries trace %s, want %s", ev.Span.Name, ev.Span.Trace, want)
		}
		if ev.Span.Name == "engine.ask" || ev.Span.Name == "engine.tell" {
			engineSpans++
			if ev.Span.Parent == 0 {
				t.Fatalf("%s span did not parent on the request span", ev.Span.Name)
			}
		}
	}
	if engineSpans == 0 {
		t.Fatal("no engine spans joined the remote trace")
	}
}

// TestTelemetryEventStream checks the structured event log carries the
// paper's decision variables: the run header, one event per observation, the
// §3.4 fidelity comparison on adaptive iterations and the acquisition value
// at the argmax.
func TestTelemetryEventStream(t *testing.T) {
	p := testfunc.Pedagogical()
	ring := telemetry.NewRing(1024)
	rec := telemetry.NewRecorder(ring, 1)
	cfg := fastCfg(12)
	cfg.Telemetry = rec
	res, err := Optimize(p, cfg, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}

	events := ring.Snapshot()
	var runEv *telemetry.RunEvent
	var iters []*telemetry.IterationEvent
	spans := map[string]int{}
	for _, ev := range events {
		switch {
		case ev.Run != nil:
			runEv = ev.Run
		case ev.Iteration != nil:
			iters = append(iters, ev.Iteration)
		case ev.Span != nil:
			spans[ev.Span.Name]++
		}
	}
	if runEv == nil {
		t.Fatal("no run event emitted")
	}
	if runEv.Problem != p.Name() || runEv.Dim != p.Dim() || runEv.Budget != 12 ||
		runEv.InitLow != cfg.InitLow || runEv.InitHigh != cfg.InitHigh {
		t.Fatalf("run event = %+v", runEv)
	}
	if len(iters) != len(res.History) {
		t.Fatalf("%d iteration events for %d observations", len(iters), len(res.History))
	}

	nInit, nAdaptive, nSigma, nAcq := 0, 0, 0, 0
	for i, ev := range iters {
		ob := res.History[i]
		if ev.Fidelity != ob.Fid.String() || ev.CumCost != ob.CumCost || ev.Objective != ob.Eval.Objective {
			t.Fatalf("event %d does not match history: %+v vs %+v", i, ev, ob)
		}
		if ev.Iter < 0 {
			nInit++
			continue
		}
		nAdaptive++
		if ev.HasSigma2 {
			nSigma++
			if ev.Threshold != float64(1+ev.Nc)*ev.Gamma {
				t.Fatalf("threshold %v != (1+%d)*%v", ev.Threshold, ev.Nc, ev.Gamma)
			}
		}
		if ev.AcqHigh != 0 || ev.AcqLow != 0 {
			nAcq++
		}
		if ev.MSPStartsHigh == 0 && ev.MSPStartsLow == 0 && ev.Degrade == "" && !ev.ForcedHigh {
			t.Fatalf("adaptive event %d missing MSP bookkeeping: %+v", i, ev)
		}
		if len(ev.NLMLLow) == 0 && ev.Degrade == "" {
			t.Fatalf("adaptive event %d missing fit health: %+v", i, ev)
		}
	}
	if nInit != cfg.InitLow+cfg.InitHigh {
		t.Fatalf("init events = %d, want %d", nInit, cfg.InitLow+cfg.InitHigh)
	}
	if nAdaptive == 0 || nSigma == 0 || nAcq == 0 {
		t.Fatalf("adaptive=%d sigma=%d acq=%d — decision variables missing", nAdaptive, nSigma, nAcq)
	}

	// The span taxonomy: ask/tell roots plus fit and MSP children.
	for _, name := range []string{"engine.ask", "engine.tell", "gp.fit", "optimize.msp"} {
		if spans[name] == 0 {
			t.Fatalf("no %q spans (got %v)", name, spans)
		}
	}

	// The end-of-run table renders from the same stream.
	table := telemetry.Summarize(events).Table()
	if !strings.Contains(table, "sigma2_max") || !strings.Contains(table, "adaptive") {
		t.Fatalf("summary table:\n%s", table)
	}
}

// TestTelemetryMetrics checks the registry view of a run: evaluation and
// iteration counters match the result, and the timing histograms saw the fit
// and acquisition phases.
func TestTelemetryMetrics(t *testing.T) {
	p := testfunc.Forrester()
	rec := telemetry.NewRecorder(nil, 1)
	cfg := fastCfg(10)
	cfg.Telemetry = rec
	res, err := Optimize(p, cfg, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	reg := rec.Metrics
	low := reg.Counter("mfbo_evaluations_total", "", "fidelity", "low").Value()
	high := reg.Counter("mfbo_evaluations_total", "", "fidelity", "high").Value()
	if low != uint64(res.NumLow) || high != uint64(res.NumHigh) {
		t.Fatalf("evaluation counters %d/%d vs result %d/%d", low, high, res.NumLow, res.NumHigh)
	}
	iterations := reg.Counter("mfbo_iterations_total", "").Value()
	adaptive := len(res.History) - cfg.InitLow - cfg.InitHigh
	if iterations != uint64(adaptive) {
		t.Fatalf("iterations counter %d, want %d", iterations, adaptive)
	}
	if reg.Histogram("mfbo_fit_seconds", "", nil).Count() == 0 {
		t.Fatal("fit histogram empty")
	}
	if reg.Histogram("mfbo_acq_seconds", "", nil).Count() == 0 {
		t.Fatal("acq histogram empty")
	}
	if reg.Histogram("mfbo_ask_seconds", "", nil).Count() == 0 {
		t.Fatal("ask histogram empty")
	}
	// The gauge accumulates per-evaluation, so allow for summation order.
	if g := reg.Gauge("mfbo_cost_equivalent_sims", "").Value(); math.Abs(g-res.EquivalentSims) > 1e-9 {
		t.Fatalf("cost gauge %v vs %v", g, res.EquivalentSims)
	}
}

// Fidelity-ladder proposals (K > 2 rungs): the generalized form of
// Algorithm 1 where the low/high fidelity pair becomes an ordered ladder of
// simulation accuracies. Per output the surrogate is the recursive K-level
// NARGP chain (mfgp.MultiLevel); the §3.4 fidelity switch generalizes to a
// cost-weighted rung selector that evaluates at the cheapest rung still
// carrying useful information per unit cost, and falls through to the target
// rung when every cheaper posterior is already resolved. K = 2 problems never
// enter this file — they run the historical two-fidelity path bit for bit.
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/acq"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/mfgp"
	"repro/internal/optimize"
	"repro/internal/problem"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// rungDecision is the outcome of one generalized §3.4 rung selection.
type rungDecision struct {
	rung      int
	sigma2Max float64   // max standardized sub-target chain variance at x
	threshold float64   // (1+Nc)·γ
	vars      []float64 // standardized chain variance per sub-target rung
	hasSigma2 bool
	forced    bool
}

// chooseRung generalizes the §3.4 two-fidelity criterion to a K-rung ladder.
// vars[r] is the maximum (over outputs) standardized posterior variance of
// the chain at rung r < K-1; costs are the ladder's per-rung γ_k. The target
// rung is selected when every sub-target variance is below the paper's
// threshold (1+Nc)·γ — more cheap data would not sharpen any cheaper level.
// Otherwise the evaluation goes to the under-resolved rung with the best
// variance per unit cost (ties to the cheaper rung).
//
// With K = 2 this is exactly the paper's rule: vars = [σ²_l,max], and the
// decision degenerates to "HIGH iff σ²_l,max < (1+Nc)·γ"
// (TestChooseRungMatchesSelectFidelity pins the equivalence).
func chooseRung(vars, costs []float64, nc int, gamma float64) rungDecision {
	target := len(costs) - 1
	threshold := (1 + float64(nc)) * gamma
	maxVar := 0.0
	for _, v := range vars {
		if v > maxVar {
			maxVar = v
		}
	}
	dec := rungDecision{
		rung:      target,
		sigma2Max: maxVar,
		threshold: threshold,
		vars:      vars,
		hasSigma2: true,
	}
	if maxVar < threshold {
		return dec
	}
	bestScore := math.Inf(-1)
	for r, v := range vars {
		if v < threshold {
			continue
		}
		if score := v / costs[r]; score > bestScore {
			bestScore = score
			dec.rung = r
		}
	}
	return dec
}

// ladderCache is the K>2 analogue of surrCache: the fitted per-output chains
// extended in place with per-level rank-1 updates between full refits.
type ladderCache struct {
	chains  []*mfgp.MultiLevel
	lowOnly []*gp.Model // per-output fallback when the chain degraded

	lowStart int   // window start of the rung-0 training view at fit time
	counts   []int // rows folded per rung (rung 0 window-relative)

	// Per-point NLML of the level-0 and target-level GPs at the last full
	// refit, for the early-refit degradation trigger.
	baseLow, baseTop []float64
}

// fitLadder trains one recursive K-level chain per output, walking the
// degradation ladder on failure: (1) refit with the previous chain's warm
// hyperparameters frozen, (2) drop the output to a plain rung-0 surrogate,
// (3) no usable surrogate at all — random exploration. chains[k] == nil with
// lowOnly[k] != nil marks a low-only output.
func (st *state) fitLadder(iter int, fullRefit bool, span *telemetry.Span) (chains []*mfgp.MultiLevel, lowOnly []*gp.Model, ok bool) {
	cfg := &st.cfg
	target := st.ladder.Target()
	lowX, lowView := st.low.window(cfg.MaxLowData)
	levelsX := make([][][]float64, target+1)
	levelsX[0] = lowX
	for r := 1; r <= target; r++ {
		levelsX[r] = st.ds(r).X
	}
	chains = make([]*mfgp.MultiLevel, st.nOut)
	lowOnly = make([]*gp.Model, st.nOut)
	for k := 0; k < st.nOut; k++ {
		levelsY := make([][]float64, target+1)
		levelsY[0] = lowView.column(k)
		for r := 1; r <= target; r++ {
			levelsY[r] = st.ds(r).column(k)
		}
		mlCfg := mfgp.MultiLevelConfig{
			Restarts: cfg.GPRestarts, MaxIter: cfg.GPMaxIter,
			FixedNoise: cfg.FixedNoise, Propagation: cfg.Propagation,
			NumSamples: cfg.NumSamples, Inducing: cfg.LowRankAfter,
			Workers: cfg.Workers, Span: span,
			WarmStarts:   st.warmChain[k],
			SkipTraining: !fullRefit && st.warmChain[k] != nil,
			// Between full refits only the sub-target levels freeze; the small
			// target-level GP always retrains, as in the two-fidelity engine.
			TrainTarget: true,
		}
		chain, err := mfgp.FitMultiLevel(levelsX, levelsY, mlCfg, st.rng)
		if err != nil && st.warmChain[k] != nil && (!mlCfg.SkipTraining || mlCfg.TrainTarget) {
			// Rung 1: freeze the previous chain's hyperparameters entirely.
			mlCfg.SkipTraining = true
			mlCfg.TrainTarget = false
			var err2 error
			chain, err2 = mfgp.FitMultiLevel(levelsX, levelsY, mlCfg, st.rng)
			if err2 == nil {
				st.degrade(iter, DegradeWarmHypers, k, fmt.Errorf("chain fit: %w", err))
				err = nil
			}
		}
		if err == nil {
			st.warmChain[k] = chain.Hyper()
			st.warmLow[k] = chain.Level(0).Hyper()
			chains[k] = chain
			st.noteFit(iter, chain.Level(0), false)
			st.noteFit(iter, chain.Level(target), true)
			continue
		}
		// Rung 2: plain rung-0 surrogate for this output.
		chainErr := err
		lm, lerr := gp.Fit(lowX, levelsY[0], gp.Config{
			Kernel:     kernel.NewSEARD(st.d),
			Restarts:   cfg.GPRestarts,
			MaxIter:    cfg.GPMaxIter,
			FixedNoise: cfg.FixedNoise,
			WarmStart:  st.warmLow[k],
			Inducing:   cfg.LowRankAfter,
			Workers:    cfg.Workers,
			Span:       span,
		}, st.rng)
		if lerr != nil {
			// Rung 3: nothing usable for this output.
			st.degrade(iter, DegradeRandom, k, fmt.Errorf("chain fit: %v; low fit: %w", chainErr, lerr))
			return nil, nil, false
		}
		st.degrade(iter, DegradeLowOnly, k, fmt.Errorf("chain fit: %w", chainErr))
		st.warmLow[k] = lm.Hyper()
		lowOnly[k] = lm
		st.noteFit(iter, lm, false)
	}
	return chains, lowOnly, true
}

// incrementalLadder is the K>2 analogue of incrementalSurrogates: serve the
// proposal from the cached chains extended with per-level rank-1 updates when
// the schedule allows, otherwise refit and rebuild the cache.
func (st *state) incrementalLadder(iter int, span *telemetry.Span) (chains []*mfgp.MultiLevel, lowOnly []*gp.Model, ok, skipped bool) {
	cfg := &st.cfg
	lowX, _ := st.low.window(cfg.MaxLowData)
	start := len(st.low.X) - len(lowX)
	if c := st.lcache; c != nil && st.sinceRefit+1 < cfg.RefitEvery && c.lowStart == start && !st.ladderNLMLDegraded(c) {
		if err := st.extendLadderCache(c); err == nil {
			st.sinceRefit++
			if st.met != nil {
				st.met.fitSkipped.Add(1)
			}
			return c.chains, c.lowOnly, true, true
		}
		st.lcache = nil
	}
	st.lcache = nil
	st.sinceRefit = 0
	chains, lowOnly, ok = st.fitLadder(iter, true, span)
	if !ok {
		return nil, nil, false, false
	}
	target := st.ladder.Target()
	c := &ladderCache{
		chains:   chains,
		lowOnly:  lowOnly,
		lowStart: start,
		counts:   make([]int, target+1),
		baseLow:  make([]float64, st.nOut),
		baseTop:  make([]float64, st.nOut),
	}
	c.counts[0] = len(lowX)
	for r := 1; r <= target; r++ {
		c.counts[r] = len(st.ds(r).X)
	}
	for k := 0; k < st.nOut; k++ {
		if chains[k] != nil {
			c.baseLow[k] = perPointNLML(chains[k].Level(0))
			c.baseTop[k] = perPointNLML(chains[k].Level(target))
		} else {
			c.baseLow[k] = perPointNLML(lowOnly[k])
		}
	}
	st.lcache = c
	return chains, lowOnly, true, false
}

// ladderNLMLDegraded mirrors nlmlDegraded for the chain cache: drift past
// NLMLTrigger at either end of any output's chain forces an early refit.
func (st *state) ladderNLMLDegraded(c *ladderCache) bool {
	trig := st.cfg.NLMLTrigger
	if trig < 0 {
		return false
	}
	target := st.ladder.Target()
	for k := 0; k < st.nOut; k++ {
		if c.chains[k] == nil {
			if perPointNLML(c.lowOnly[k]) > c.baseLow[k]+trig {
				return true
			}
			continue
		}
		if perPointNLML(c.chains[k].Level(0)) > c.baseLow[k]+trig {
			return true
		}
		if perPointNLML(c.chains[k].Level(target)) > c.baseTop[k]+trig {
			return true
		}
	}
	return false
}

// extendLadderCache folds every rung's unseen rows — real observations and
// fantasy rows alike — into the cached chains with per-level rank-1 updates,
// cheapest rung first so lower-level updates inform the frozen augmentations
// of subsequent higher-level rows. A degraded (low-only) output makes the
// cache unusable: its chain cannot absorb new rows above rung 0.
func (st *state) extendLadderCache(c *ladderCache) error {
	cfg := &st.cfg
	target := st.ladder.Target()
	for k := 0; k < st.nOut; k++ {
		if c.chains[k] == nil {
			return errCacheUnusable
		}
	}
	updates := 0
	lowX, lowView := st.low.window(cfg.MaxLowData)
	for i := c.counts[0]; i < len(lowX); i++ {
		for k := 0; k < st.nOut; k++ {
			if err := c.chains[k].AppendLevel(0, lowX[i], lowView.Y[i][k]); err != nil {
				return err
			}
			updates++
		}
		c.counts[0] = i + 1
	}
	for r := 1; r <= target; r++ {
		ds := st.ds(r)
		for i := c.counts[r]; i < len(ds.X); i++ {
			for k := 0; k < st.nOut; k++ {
				if err := c.chains[k].AppendLevel(r, ds.X[i], ds.Y[i][k]); err != nil {
					return err
				}
				updates++
			}
			c.counts[r] = i + 1
		}
	}
	if updates > 0 {
		if st.met != nil {
			st.met.rank1Updates.Add(uint64(updates))
		}
		if ev := st.ev; ev != nil {
			ev.Rank1Updates += updates
		}
	}
	return nil
}

// retractLadderCache truncates the cached chains back to the committed
// per-rung dataset sizes after a batch proposal retracted its fantasy rows.
// Any mismatch poisons the cache so the next proposal refits.
func (st *state) retractLadderCache(sizes []int) {
	c := st.lcache
	if c == nil {
		return
	}
	target := st.ladder.Target()
	lowTarget := sizes[0] - c.lowStart
	if lowTarget < 1 || lowTarget > c.counts[0] {
		st.lcache = nil
		return
	}
	for r := 1; r <= target; r++ {
		if sizes[r] < 1 || sizes[r] > c.counts[r] {
			st.lcache = nil
			return
		}
	}
	truncate := func(r, n int) bool {
		if n >= c.counts[r] {
			return true
		}
		for k := 0; k < st.nOut; k++ {
			if c.chains[k] == nil {
				continue
			}
			if err := c.chains[k].TruncateLevel(r, n); err != nil {
				return false
			}
		}
		c.counts[r] = n
		return true
	}
	if !truncate(0, lowTarget) {
		st.lcache = nil
		return
	}
	for r := 1; r <= target; r++ {
		if !truncate(r, sizes[r]) {
			st.lcache = nil
			return
		}
	}
}

// retract restores every surrogate cache to the committed (fantasy-free)
// dataset sizes; sizes is rung-ordered (datasetSizes). Dispatches to the
// two-fidelity cache, the ladder cache, or neither — whichever is live.
func (st *state) retract(sizes []int) {
	st.retractCache(sizes[0], sizes[len(sizes)-1])
	st.retractLadderCache(sizes)
}

// chooseEvalRung computes the per-rung standardized chain variances at xt and
// applies the generalized §3.4 rule. Degraded (low-only) outputs contribute
// their rung-0 variance only — with no chain there is no evidence that a
// higher intermediate rung needs data for them.
func (st *state) chooseEvalRung(chains []*mfgp.MultiLevel, lowOnly []*gp.Model, xt []float64) rungDecision {
	target := st.ladder.Target()
	if st.cfg.ForceHighFidelity {
		return rungDecision{rung: target, forced: true}
	}
	vars := make([]float64, target)
	for r := 0; r < target; r++ {
		for k := 0; k < st.nOut; k++ {
			var va, std float64
			switch {
			case chains[k] != nil:
				_, va = chains[k].PredictLevel(xt, r)
				std = chains[k].Level(r).OutputStd()
			case r == 0:
				_, va = lowOnly[k].PredictLatent(xt)
				std = lowOnly[k].OutputStd()
			default:
				continue
			}
			if v := va / (std * std); v > vars[r] {
				vars[r] = v
			}
		}
	}
	return chooseRung(vars, st.ladder.Costs(), st.nc, st.cfg.Gamma)
}

// isDuplicateAtRung reports whether xt coincides (to numerical precision)
// with a point already evaluated at rung r.
func (st *state) isDuplicateAtRung(xt []float64, r int) bool {
	for _, x := range st.ds(r).X {
		d2 := 0.0
		for j := range x {
			dd := x[j] - xt[j]
			d2 += dd * dd
		}
		if d2 < 1e-16 {
			return true
		}
	}
	return false
}

// fantasizeLadder produces the synthetic per-output observation for a pending
// ladder suggestion at rung r: the chain posterior mean at that rung
// (kriging-believer) or the per-output worst value observed at the rung
// (constant-liar, falling back to the believer mean on an empty rung).
func (st *state) fantasizeLadder(chains []*mfgp.MultiLevel, lowOnly []*gp.Model, xt []float64, r int) []float64 {
	out := make([]float64, st.nOut)
	believe := func(k int) float64 {
		if chains[k] != nil {
			mu, _ := chains[k].PredictLevel(xt, r)
			return mu
		}
		mu, _ := lowOnly[k].PredictLatent(xt)
		return mu
	}
	switch st.cfg.Fantasy {
	case FantasyConstantLiar:
		ds := st.ds(r)
		for k := 0; k < st.nOut; k++ {
			if len(ds.Y) == 0 {
				out[k] = believe(k)
				continue
			}
			lie := ds.Y[0][k]
			for _, row := range ds.Y[1:] {
				if row[k] > lie {
					lie = row[k]
				}
			}
			out[k] = lie
		}
	default: // FantasyKrigingBeliever
		for k := 0; k < st.nOut; k++ {
			out[k] = believe(k)
		}
	}
	return out
}

// proposeLadder is the K>2 body of one generalized Algorithm 1 iteration:
// fit the per-output K-level chains (walking the degradation ladder on
// failure), maximize the rung-0 and target-rung acquisitions with the §4.1
// multiple-starting-point strategy, and pick the evaluation rung by the
// cost-weighted generalization of the §3.4 criterion.
func (st *state) proposeLadder(iter int, span *telemetry.Span, wantFantasy bool) ([]float64, problem.Fidelity, []float64) {
	cfg := &st.cfg
	target := st.ladder.Target()
	var ev *telemetry.IterationEvent
	if st.telem != nil {
		ev = &telemetry.IterationEvent{Iter: iter, Nc: st.nc, Gamma: cfg.Gamma}
		st.ev = ev
	}
	var tFit time.Time
	if ev != nil {
		tFit = time.Now()
	}
	var chains []*mfgp.MultiLevel
	var lowOnly []*gp.Model
	var ok bool
	if cfg.Incremental {
		var skipped bool
		chains, lowOnly, ok, skipped = st.incrementalLadder(iter, span)
		if ev != nil {
			ev.FitSkipped = skipped
			ev.SinceRefit = st.sinceRefit
		}
	} else {
		fullRefit := iter%cfg.RefitEvery == 0
		chains, lowOnly, ok = st.fitLadder(iter, fullRefit, span)
	}
	if ev != nil {
		if ok {
			for k := 0; k < st.nOut; k++ {
				if chains[k] != nil && chains[k].Level(0).IsLowRank() {
					ev.LowRank = true
					break
				}
			}
		}
		d := time.Since(tFit)
		ev.FitMs = float64(d.Nanoseconds()) / 1e6
		if st.met != nil {
			st.met.fitSeconds.Observe(d.Seconds())
		}
	}
	if !ok {
		xt := stats.UniformInBox(st.rng, st.lo, st.hi, 1)[0]
		rung := 0
		if cfg.ForceHighFidelity {
			rung = target
		}
		if ev != nil {
			ev.Fidelity = st.ladder.Name(rung)
			ev.Rung = rung
			ev.ForcedHigh = cfg.ForceHighFidelity
		}
		return xt, problem.Fidelity(rung), nil
	}

	// Incumbents: the cheapest and the target rung seed the §4.1 starts, as
	// in the two-fidelity algorithm.
	tauLowX, tauLowEval, hasLowFeasible := bestOf(st.low)
	tauHighX, tauHighEval, hasHighFeasible := bestOf(st.high)
	if ev != nil {
		if hasLowFeasible {
			ev.HasTauLow = true
			ev.TauLow = tauLowEval.Objective
		}
		if hasHighFeasible {
			ev.HasTauHigh = true
			ev.TauHigh = tauHighEval.Objective
		}
	}

	// Posterior adapters: rung-0 chain level for the cheap acquisition, the
	// fused target level for the expensive one. A nil chain (low-only
	// degradation) aliases the plain rung-0 surrogate for both.
	nc := st.nc
	levelPost := func(k, level int) acq.Posterior {
		if chains[k] != nil {
			m := chains[k]
			return func(x []float64) (float64, float64) { return m.PredictLevel(x, level) }
		}
		m := lowOnly[k]
		return func(x []float64) (float64, float64) { return m.PredictLatent(x) }
	}
	lowObj := levelPost(0, 0)
	lowCons := make([]acq.Posterior, nc)
	for i := 0; i < nc; i++ {
		lowCons[i] = levelPost(1+i, 0)
	}
	fusedObj := levelPost(0, target)
	fusedCons := make([]acq.Posterior, nc)
	for i := 0; i < nc; i++ {
		fusedCons[i] = levelPost(1+i, target)
	}

	mspCfg := cfg.MSP
	var incHigh, incLow []float64
	if !cfg.DisableIncumbentSeeding {
		if hasHighFeasible {
			incHigh = tauHighX
		}
		if hasLowFeasible {
			incLow = tauLowX
		}
	}

	// Rung-0 acquisition → x*_l.
	var acqLow func([]float64) float64
	bootstrapLow := false
	switch {
	case hasLowFeasible:
		acqLow = acq.WEI(lowObj, lowCons, tauLowEval.Objective)
	case nc > 0:
		fo := acq.FeasibilityObjective(lowCons)
		acqLow = func(x []float64) float64 { return -fo(x) }
		bootstrapLow = true
	default:
		acqLow = acq.WEI(lowObj, nil, math.Inf(1))
	}
	var tAcq time.Time
	var mspLow, mspHigh optimize.MSPStats
	if ev != nil {
		tAcq = time.Now()
		mspCfg.Stats = &mspLow
		mspCfg.Span = span
	}
	xStarLow, acqLowVal := optimize.MaximizeMSP(st.rng, acqLow, st.box, incHigh, incLow, mspCfg)

	// Target-rung acquisition seeded with x*_l.
	var acqHigh func([]float64) float64
	bootstrap := false
	switch {
	case hasHighFeasible:
		acqHigh = acq.WEI(fusedObj, fusedCons, tauHighEval.Objective)
	case nc > 0:
		// §4.2: no feasible target point yet — chase predicted feasibility.
		fo := acq.FeasibilityObjective(fusedCons)
		acqHigh = func(x []float64) float64 { return -fo(x) }
		bootstrap = true
	default:
		acqHigh = acq.WEI(fusedObj, nil, math.Inf(1))
	}
	mspCfg.Extra = append(append([][]float64(nil), cfg.MSP.Extra...), xStarLow)
	if ev != nil {
		mspCfg.Stats = &mspHigh
	}
	xt, acqHighVal := optimize.MaximizeMSP(st.rng, acqHigh, st.box, incHigh, incLow, mspCfg)
	if ev != nil {
		d := time.Since(tAcq)
		ev.AcqMs = float64(d.Nanoseconds()) / 1e6
		if st.met != nil {
			st.met.acqSeconds.Observe(d.Seconds())
		}
		ev.AcqLow = acqLowVal
		ev.AcqHigh = acqHighVal
		ev.Bootstrap = bootstrap
		ev.BootstrapLow = bootstrapLow
		ev.MSPStartsLow = mspLow.Starts
		ev.MSPDivergedLow = mspLow.Diverged
		ev.MSPStartsHigh = mspHigh.Starts
		ev.MSPDivergedHigh = mspHigh.Diverged
	}

	dec := st.chooseEvalRung(chains, lowOnly, xt)
	if st.isDuplicateAtRung(xt, dec.rung) {
		xt = stats.UniformInBox(st.rng, st.lo, st.hi, 1)[0]
		dec = st.chooseEvalRung(chains, lowOnly, xt)
		if ev != nil {
			ev.DuplicateFallback = true
		}
	}
	if ev != nil {
		ev.Fidelity = st.ladder.Name(dec.rung)
		ev.Rung = dec.rung
		ev.RungVars = dec.vars
		ev.Sigma2Max = dec.sigma2Max
		ev.Threshold = dec.threshold
		ev.HasSigma2 = dec.hasSigma2
		ev.ForcedHigh = dec.forced
	}
	var fantasy []float64
	if wantFantasy {
		fantasy = st.fantasizeLadder(chains, lowOnly, xt, dec.rung)
	}
	return xt, problem.Fidelity(dec.rung), fantasy
}

package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/problem"
	"repro/internal/telemetry"
)

// Suggestion is one query proposed by the optimizer: evaluate X at fidelity
// Fid and feed the outcome back through Engine.Tell. Iter is the adaptive
// iteration the suggestion belongs to; initialization-design points carry
// Iter == -1.
type Suggestion struct {
	X    []float64
	Fid  problem.Fidelity
	Iter int
}

// Engine is the explicit ask/tell state machine behind Optimize: the same
// fit → acquire → fidelity-select pipeline of Algorithm 1, but with the
// "run the simulation" step inverted out of the loop so that external
// evaluators (HTTP clients, job schedulers, distributed SPICE farms) can
// drive it.
//
// The protocol is strict alternation:
//
//	for {
//		s, err := eng.Ask(ctx)        // errors.Is(err, ErrBudgetExhausted) → done
//		ev := <evaluate s.X at s.Fid> // anywhere, any way
//		eng.Tell(s.X, s.Fid, ev)
//	}
//	res, err := eng.Result()
//
// Ask is idempotent: until the pending suggestion is told, repeated Asks
// return the same Suggestion without recomputing (and without consuming
// randomness), so a polling client that crashes between ask and tell can
// simply ask again. Tell validates that the observation matches the pending
// suggestion (ErrTellMismatch otherwise) — the trajectory of an engine-driven
// run is bit-identical to the in-process Optimize under the same seed.
//
// Engine is not safe for concurrent use; callers that share one across
// goroutines (e.g. the session layer in internal/session) must serialize
// access.
type Engine struct {
	st *state

	// Remaining initialization design points, handed out low first, then
	// high — the same order OptimizeCtx evaluates them.
	initLow, initHigh [][]float64
	// initDone records that the post-initialization checkpoint was taken
	// and the engine is in (or past) the adaptive phase.
	initDone bool

	// pending is the outstanding suggestion awaiting its Tell.
	pending *Suggestion

	interrupted bool
	// termErr, once set, makes the engine terminal: Ask keeps returning it.
	// ErrBudgetExhausted / ErrInterrupted are normal terminations; anything
	// else (checkpoint failure) is a fault that Result propagates.
	termErr error
}

// NewEngine validates cfg and builds a fresh engine for p. The
// initialization designs are drawn from rng immediately (low design first,
// then high), so the RNG consumption matches OptimizeCtx exactly.
func NewEngine(p problem.Problem, cfg Config, rng *rand.Rand) (*Engine, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	st := newState(p, cfg, rng)
	st.emitRun(false)
	return &Engine{
		st:       st,
		initLow:  cfg.InitSampler(rng, st.lo, st.hi, cfg.InitLow),
		initHigh: cfg.InitSampler(rng, st.lo, st.hi, cfg.InitHigh),
	}, nil
}

// emitRun publishes the run-metadata event that makes an event log
// self-describing. No-op when telemetry is off.
func (st *state) emitRun(resumed bool) {
	if st.telem == nil {
		return
	}
	st.telem.EmitRun(&telemetry.RunEvent{
		Problem:        st.p.Name(),
		Dim:            st.d,
		NumConstraints: st.nc,
		Budget:         st.cfg.Budget,
		Gamma:          st.cfg.Gamma,
		InitLow:        st.cfg.InitLow,
		InitHigh:       st.cfg.InitHigh,
		Resumed:        resumed,
	})
}

// RestoreEngine rebuilds an engine from a Checkpoint: datasets, history,
// spent budget and warm hyperparameters are restored exactly, and the next
// Ask picks up where the snapshot left off. The caller supplies the same
// problem and an equivalent Config (scalar fields are validated against the
// snapshot — mismatches return ErrResumeMismatch); rng seeds the
// continuation.
//
// Snapshots taken mid-initialization are supported: the initialization
// designs are redrawn from rng and the already-evaluated prefix (derived
// from the history, failures included) is skipped, so restoring with the
// original seed continues the exact original design.
func RestoreEngine(p problem.Problem, cfg Config, rng *rand.Rand, ck *Checkpoint) (*Engine, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if err := validateResume(p, &cfg, ck); err != nil {
		return nil, err
	}
	st := newState(p, cfg, rng)
	st.iter = ck.Iter
	st.cost = ck.Cost
	st.low = &dataset{X: cloneMatrix(ck.LowX), Y: cloneMatrix(ck.LowY)}
	st.high = &dataset{X: cloneMatrix(ck.HighX), Y: cloneMatrix(ck.HighY)}
	if len(ck.WarmLow) == st.nOut {
		st.warmLow = cloneMatrix(ck.WarmLow)
	}
	if len(ck.WarmHigh) == st.nOut {
		st.warmHigh = cloneMatrix(ck.WarmHigh)
	}
	st.res.NumLow = ck.NumLow
	st.res.NumHigh = ck.NumHigh
	st.res.NumFailed = ck.NumFailed
	st.res.History = make([]Observation, len(ck.History))
	for i, ob := range ck.History {
		ob.X = append([]float64(nil), ob.X...)
		ob.Eval.Constraints = append([]float64(nil), ob.Eval.Constraints...)
		st.res.History[i] = ob
	}
	st.res.Degradations = append([]Degradation(nil), ck.Degradations...)
	st.emitRun(true)

	e := &Engine{st: st}
	// Initialization progress is derived from the restored history: every
	// initialization observation was recorded there (failures included).
	doneLow, doneHigh := 0, 0
	for _, ob := range st.res.History {
		if ob.Iter == -1 {
			if ob.Fid == problem.Low {
				doneLow++
			} else {
				doneHigh++
			}
		}
	}
	if doneLow >= cfg.InitLow && doneHigh >= cfg.InitHigh {
		// Initialization complete: no RNG consumption on restore, matching
		// the historical Resume trajectory exactly.
		e.initDone = true
		return e, nil
	}
	lows := cfg.InitSampler(rng, st.lo, st.hi, cfg.InitLow)
	highs := cfg.InitSampler(rng, st.lo, st.hi, cfg.InitHigh)
	if doneLow < len(lows) {
		e.initLow = lows[doneLow:]
	}
	if doneHigh < len(highs) {
		e.initHigh = highs[doneHigh:]
	}
	return e, nil
}

// finishInit takes the post-initialization checkpoint and flips the engine
// into the adaptive phase.
func (e *Engine) finishInit() error {
	e.initDone = true
	if err := e.st.checkpoint(); err != nil {
		e.termErr = err
		return err
	}
	return nil
}

// Ask returns the next query. Terminal conditions surface as errors:
// ErrBudgetExhausted when the budget (or Config.MaxIterations) is spent,
// ErrInterrupted when ctx was cancelled, and the underlying fault when a
// checkpoint write failed — classify with errors.Is. A non-terminal Ask
// either replays the pending suggestion or computes a new one (running the
// full surrogate-fit/acquisition pipeline, which can take a while).
//
// ctx only gates the decision to keep going; it is not threaded into the
// surrogate fits. Long-running services should pass context.Background()
// and handle their own request deadlines, because a cancelled ctx
// terminally interrupts the engine (matching OptimizeCtx semantics).
func (e *Engine) Ask(ctx context.Context) (Suggestion, error) {
	if e.termErr != nil {
		return Suggestion{}, e.termErr
	}
	if e.pending != nil {
		return *e.pending, nil
	}
	if !e.initDone {
		if ctx.Err() != nil {
			// Match OptimizeCtx: skip the remaining initialization
			// evaluations, still take the post-init checkpoint, and
			// report interruption.
			e.initLow, e.initHigh = nil, nil
			e.interrupted = true
			if err := e.finishInit(); err != nil {
				return Suggestion{}, err
			}
			e.termErr = ErrInterrupted
			return Suggestion{}, e.termErr
		}
		if len(e.initLow) > 0 {
			e.pending = &Suggestion{X: append([]float64(nil), e.initLow[0]...), Fid: problem.Low, Iter: -1}
			return *e.pending, nil
		}
		if len(e.initHigh) > 0 {
			e.pending = &Suggestion{X: append([]float64(nil), e.initHigh[0]...), Fid: problem.High, Iter: -1}
			return *e.pending, nil
		}
		// Degenerate designs (both queues empty before any Tell): close the
		// initialization phase and fall through to the adaptive one.
		if err := e.finishInit(); err != nil {
			return Suggestion{}, err
		}
	}
	// Adaptive-phase termination checks, in the same order as the loop
	// condition of Algorithm 1's driver.
	cfg := &e.st.cfg
	if e.st.cost >= cfg.Budget {
		e.termErr = ErrBudgetExhausted
		return Suggestion{}, e.termErr
	}
	if cfg.MaxIterations > 0 && e.st.iter >= cfg.MaxIterations {
		e.termErr = fmt.Errorf("%w (iteration cap %d reached)", ErrBudgetExhausted, cfg.MaxIterations)
		return Suggestion{}, e.termErr
	}
	if ctx.Err() != nil {
		e.interrupted = true
		e.termErr = ErrInterrupted
		return Suggestion{}, e.termErr
	}
	// Compute the next suggestion, traced and timed when telemetry is on.
	var span *telemetry.Span
	var t0 time.Time
	if e.st.telem != nil {
		span = e.st.telem.StartSpan("engine.ask")
		span.Attr("iter", float64(e.st.iter))
		t0 = time.Now()
	}
	x, fid := e.st.propose(span)
	if e.st.telem != nil {
		span.End()
		if e.st.met != nil {
			e.st.met.askSeconds.Observe(time.Since(t0).Seconds())
		}
	}
	e.pending = &Suggestion{X: x, Fid: fid, Iter: e.st.iter}
	return *e.pending, nil
}

// Tell ingests the outcome of the pending suggestion: the evaluation is
// routed through the same sanitation as the in-process loop (non-finite or
// explicitly Failed outcomes are charged but excluded from surrogate
// training), the budget is charged, the history extended, and — after
// adaptive iterations and at the end of initialization — a checkpoint is
// taken. x and fid must match the pending suggestion exactly
// (ErrTellMismatch); a Tell without a pending Ask returns ErrNoPendingAsk.
func (e *Engine) Tell(x []float64, fid problem.Fidelity, ev problem.Evaluation) error {
	if e.pending == nil {
		if e.termErr != nil {
			return e.termErr
		}
		return ErrNoPendingAsk
	}
	sug := *e.pending
	if fid != sug.Fid || len(x) != len(sug.X) {
		return fmt.Errorf("%w: got fidelity %v dim %d, want %v dim %d",
			ErrTellMismatch, fid, len(x), sug.Fid, len(sug.X))
	}
	for i := range x {
		if x[i] != sug.X[i] {
			return fmt.Errorf("%w: coordinate %d is %v, suggested %v",
				ErrTellMismatch, i, x[i], sug.X[i])
		}
	}
	e.pending = nil
	var span *telemetry.Span
	if e.st.telem != nil {
		span = e.st.telem.StartSpan("engine.tell")
		span.Attr("iter", float64(sug.Iter))
		defer span.End()
	}
	e.st.ingest(sug.Iter, sug.X, sug.Fid, ev)
	if sug.Iter < 0 {
		if sug.Fid == problem.Low {
			e.initLow = e.initLow[1:]
		} else {
			e.initHigh = e.initHigh[1:]
		}
		if len(e.initLow) == 0 && len(e.initHigh) == 0 {
			return e.finishInit()
		}
		return nil
	}
	e.st.iter++ // advance before checkpointing: snapshots store the next iteration
	if err := e.st.checkpoint(); err != nil {
		e.termErr = err
		return err
	}
	return nil
}

// Done reports whether the engine reached a terminal state (budget spent,
// interrupted, or faulted) and will produce no further suggestions.
func (e *Engine) Done() bool { return e.termErr != nil }

// Snapshot returns a deep-copied checkpoint of the current state. A pending
// (asked-but-untold) suggestion is not part of the snapshot: a restored
// engine recomputes its next suggestion from the continuation RNG.
func (e *Engine) Snapshot() *Checkpoint { return e.st.snapshot() }

// History returns the live observation log (shared storage — callers must
// not mutate it and must serialize access with Ask/Tell).
func (e *Engine) History() []Observation { return e.st.res.History }

// Progress is a cheap point-in-time summary of a run, suitable for status
// endpoints.
type Progress struct {
	// Phase is "initializing", "running" or "done".
	Phase string
	// Iter is the next adaptive iteration.
	Iter int
	// Cost is the budget spent so far, Budget the configured total, both in
	// equivalent high-fidelity simulations.
	Cost, Budget               float64
	NumLow, NumHigh, NumFailed int
	// HasBest reports whether a successful high-fidelity observation exists;
	// BestX/Best/Feasible describe it when it does.
	HasBest  bool
	BestX    []float64
	Best     problem.Evaluation
	Feasible bool
	// Degradations counts graceful downgrades taken so far.
	Degradations int
	Interrupted  bool
}

// Progress summarizes the current state without mutating it.
func (e *Engine) Progress() Progress {
	p := Progress{
		Iter:         e.st.iter,
		Cost:         e.st.cost,
		Budget:       e.st.cfg.Budget,
		NumLow:       e.st.res.NumLow,
		NumHigh:      e.st.res.NumHigh,
		NumFailed:    e.st.res.NumFailed,
		Degradations: len(e.st.res.Degradations),
		Interrupted:  e.interrupted,
	}
	switch {
	case e.termErr != nil:
		p.Phase = "done"
	case !e.initDone:
		p.Phase = "initializing"
	default:
		p.Phase = "running"
	}
	if bx, be, feas := bestOf(e.st.high); bx != nil {
		p.HasBest = true
		p.BestX = append([]float64(nil), bx...)
		p.Best = be
		p.Feasible = feas
	}
	return p
}

// Result assembles the final Result. It may be called at any time (the
// session layer uses it for status of live runs); on a terminal engine it
// reports exactly what Optimize would have returned: the terminal fault if
// one occurred, ErrNoFeasible when no successful high-fidelity observation
// exists, the completed Result otherwise.
func (e *Engine) Result() (*Result, error) {
	res := e.st.finish(context.Background())
	res.Interrupted = e.interrupted
	if e.termErr != nil && !errors.Is(e.termErr, ErrBudgetExhausted) && !errors.Is(e.termErr, ErrInterrupted) {
		return res, e.termErr
	}
	if res.BestX == nil {
		return res, ErrNoFeasible
	}
	return res, nil
}

// drive runs the classic in-process loop on top of the ask/tell machine:
// ask, evaluate on the problem itself, tell, until a terminal condition.
// OptimizeCtx and Resume are thin wrappers over it.
func (e *Engine) drive(ctx context.Context) (*Result, error) {
	for {
		sug, err := e.Ask(ctx)
		if err != nil {
			break
		}
		ev, everr := e.st.evaluate(ctx, sug.X, sug.Fid)
		if everr != nil {
			ev.Failed = true
		}
		if err := e.Tell(sug.X, sug.Fid, ev); err != nil {
			break
		}
	}
	if ctx.Err() != nil {
		e.interrupted = true
	}
	return e.Result()
}

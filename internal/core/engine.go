package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/problem"
	"repro/internal/telemetry"
)

// Suggestion is one query proposed by the optimizer: evaluate X at fidelity
// Fid and feed the outcome back through Engine.Tell (or Engine.TellByID,
// keyed on ID). Iter is the adaptive iteration the suggestion belongs to;
// initialization-design points carry Iter == -1.
//
// ID is deterministic ("init-low-3", "iter-12"): two engines running the
// same trajectory assign identical IDs, and a restored engine replays the
// IDs of its snapshot, so distributed evaluators holding references across
// a server restart stay consistent.
type Suggestion struct {
	ID   string
	X    []float64
	Fid  problem.Fidelity
	Iter int
}

// pendingSug is one outstanding (asked-but-untold) suggestion together with
// the fantasy outputs that stand in for its observation while later batch
// slots are proposed. fantasy is nil for initialization points and for
// degraded (random-exploration) proposals.
type pendingSug struct {
	sug     Suggestion
	fantasy []float64
}

// Engine is the explicit ask/tell state machine behind Optimize: the same
// fit → acquire → fidelity-select pipeline of Algorithm 1, but with the
// "run the simulation" step inverted out of the loop so that external
// evaluators (HTTP clients, job schedulers, distributed SPICE farms) can
// drive it.
//
// The sequential protocol is strict alternation:
//
//	for {
//		s, err := eng.Ask(ctx)        // errors.Is(err, ErrBudgetExhausted) → done
//		ev := <evaluate s.X at s.Fid> // anywhere, any way
//		eng.Tell(s.X, s.Fid, ev)
//	}
//	res, err := eng.Result()
//
// Ask is idempotent: until the pending suggestion is told, repeated Asks
// return the same Suggestion without recomputing (and without consuming
// randomness), so a polling client that crashes between ask and tell can
// simply ask again. Tell validates that the observation matches an
// outstanding suggestion (ErrTellMismatch otherwise) — the trajectory of an
// engine-driven run is bit-identical to the in-process Optimize under the
// same seed.
//
// AskBatch generalizes Ask to q concurrently-outstanding suggestions for
// parallel evaluation farms (see its doc comment); observations then return
// out of order through TellByID. AskBatch with q=1 degenerates exactly to
// the sequential protocol.
//
// Engine is not safe for concurrent use; callers that share one across
// goroutines (e.g. the session layer in internal/session) must serialize
// access.
type Engine struct {
	st *state

	// Remaining (not yet handed out) initialization design points per ladder
	// rung, issued cheapest rung first — for classic two-fidelity problems
	// that is low first, then high, the same order OptimizeCtx evaluates
	// them. initNext[r] indexes the next design point within rung r's full
	// design, for deterministic suggestion IDs across restores.
	initQ    [][][]float64
	initNext []int
	// initDone records that the post-initialization checkpoint was taken
	// and the engine is in (or past) the adaptive phase.
	initDone bool

	// pending is the ordered set of outstanding suggestions awaiting their
	// Tell (oldest first). During initialization it holds only design
	// points; afterwards only adaptive slots.
	pending []*pendingSug

	interrupted bool
	// termErr, once set, makes the engine terminal: Ask keeps returning it.
	// ErrBudgetExhausted / ErrInterrupted are the normal terminations.
	termErr error
	// ckptDirty records that the latest ingested observation is not yet
	// durably checkpointed (the checkpoint write failed). A dirty engine
	// keeps accepting Tells but refuses to hand out work — Ask/AskBatch
	// first retry the flush — so transient storage faults stall the run
	// instead of killing it, and a crash can never lose more than the
	// observations whose checkpoint writes errored (which were never
	// positively acknowledged to their reporters).
	ckptDirty bool
}

// NewEngine validates cfg and builds a fresh engine for p. The
// initialization designs are drawn from rng immediately, cheapest rung first
// (for two-fidelity problems: low design, then high), so the RNG consumption
// matches OptimizeCtx exactly.
func NewEngine(p problem.Problem, cfg Config, rng *rand.Rand) (*Engine, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	st, err := newState(p, cfg, rng)
	if err != nil {
		return nil, err
	}
	st.emitRun(false)
	e := &Engine{st: st}
	sizes := st.initSizes()
	e.initQ = make([][][]float64, len(sizes))
	e.initNext = make([]int, len(sizes))
	for r, n := range sizes {
		e.initQ[r] = cfg.InitSampler(rng, st.lo, st.hi, n)
	}
	return e, nil
}

// initSizes returns the per-rung initialization design sizes, rung order:
// InitLow at rung 0, InitMid per intermediate rung, InitHigh at the target.
func (st *state) initSizes() []int {
	sizes := make([]int, st.ladder.Rungs())
	sizes[0] = st.cfg.InitLow
	for r := 1; r < st.ladder.Target(); r++ {
		sizes[r] = st.cfg.InitMid
	}
	sizes[st.ladder.Target()] = st.cfg.InitHigh
	return sizes
}

// initID names rung r's idx-th initialization design point. The two-fidelity
// vocabulary is preserved at the ladder extremes so restored engines replay
// historical suggestion IDs verbatim.
func (st *state) initID(r, idx int) string {
	switch {
	case r == 0:
		return fmt.Sprintf("init-low-%d", idx)
	case r == st.ladder.Target():
		return fmt.Sprintf("init-high-%d", idx)
	default:
		return fmt.Sprintf("init-mid%d-%d", r, idx)
	}
}

// emitRun publishes the run-metadata event that makes an event log
// self-describing. No-op when telemetry is off.
func (st *state) emitRun(resumed bool) {
	if st.telem == nil {
		return
	}
	ev := &telemetry.RunEvent{
		Problem:        st.p.Name(),
		Dim:            st.d,
		NumConstraints: st.nc,
		Budget:         st.cfg.Budget,
		Gamma:          st.cfg.Gamma,
		InitLow:        st.cfg.InitLow,
		InitHigh:       st.cfg.InitHigh,
		Resumed:        resumed,
	}
	if st.ladder.Rungs() > 2 {
		ev.Rungs = st.ladder.Rungs()
		ev.RungCosts = st.ladder.Costs()
		ev.InitMid = st.cfg.InitMid
	}
	st.telem.EmitRun(ev)
}

// RestoreEngine rebuilds an engine from a Checkpoint: datasets, history,
// spent budget and warm hyperparameters are restored exactly, and the next
// Ask picks up where the snapshot left off. The caller supplies the same
// problem and an equivalent Config (scalar fields are validated against the
// snapshot — mismatches return ErrResumeMismatch); rng seeds the
// continuation.
//
// Snapshots taken mid-initialization are supported: the initialization
// designs are redrawn from rng and the already-evaluated prefix (derived
// from the history, failures included) is skipped, so restoring with the
// original seed continues the exact original design.
//
// Snapshots taken mid-batch (with asked-but-untold suggestions) round-trip
// the full pending set: the restored engine replays every outstanding
// suggestion verbatim — same IDs, points, fidelities and fantasy values —
// without recomputing or consuming randomness, so distributed evaluators
// still holding those suggestions can Tell them after the restart.
func RestoreEngine(p problem.Problem, cfg Config, rng *rand.Rand, ck *Checkpoint) (*Engine, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if err := validateResume(p, &cfg, ck); err != nil {
		return nil, err
	}
	st, err := newState(p, cfg, rng)
	if err != nil {
		return nil, err
	}
	st.iter = ck.Iter
	st.cost = ck.Cost
	st.low = &dataset{X: cloneMatrix(ck.LowX), Y: cloneMatrix(ck.LowY)}
	st.high = &dataset{X: cloneMatrix(ck.HighX), Y: cloneMatrix(ck.HighY)}
	for i := range st.mid {
		// Legacy (pre-ladder) snapshots carry no MidX/MidY — the rungs start
		// empty and refill through the redrawn initialization design below.
		if i < len(ck.MidX) {
			st.mid[i] = &dataset{X: cloneMatrix(ck.MidX[i]), Y: cloneMatrix(ck.MidY[i])}
		}
	}
	if len(ck.WarmLow) == st.nOut {
		st.warmLow = cloneMatrix(ck.WarmLow)
	}
	if len(ck.WarmHigh) == st.nOut {
		st.warmHigh = cloneMatrix(ck.WarmHigh)
	}
	if len(ck.WarmChain) == st.nOut && st.ladder.Rungs() > 2 {
		for k, levels := range ck.WarmChain {
			st.warmChain[k] = cloneMatrix(levels)
		}
	}
	st.sinceRefit = ck.SinceRefit
	st.res.NumLow = ck.NumLow
	st.res.NumHigh = ck.NumHigh
	st.res.NumFailed = ck.NumFailed
	if len(ck.NumByRung) == st.ladder.Rungs() && st.ladder.Rungs() > 2 {
		st.res.NumByRung = append([]int(nil), ck.NumByRung...)
	}
	st.res.History = make([]Observation, len(ck.History))
	for i, ob := range ck.History {
		ob.X = append([]float64(nil), ob.X...)
		ob.Eval.Constraints = append([]float64(nil), ob.Eval.Constraints...)
		st.res.History[i] = ob
	}
	st.res.Degradations = append([]Degradation(nil), ck.Degradations...)
	st.emitRun(true)

	e := &Engine{st: st}
	// Replay the outstanding pending set verbatim (deep-copied): suggestions
	// asked before the snapshot stay askable and tellable after it.
	pend := make([]int, st.ladder.Rungs())
	pendInit := 0
	for _, ps := range ck.Pending {
		e.pending = append(e.pending, &pendingSug{
			sug: Suggestion{
				ID:   ps.ID,
				X:    append([]float64(nil), ps.X...),
				Fid:  ps.Fid,
				Iter: ps.Iter,
			},
			fantasy: append([]float64(nil), ps.Fantasy...),
		})
		if ps.Iter < 0 {
			pend[st.rungOf(ps.Fid)]++
			pendInit++
		}
	}
	// Initialization progress is derived from the restored history (every
	// initialization observation was recorded there, failures included) plus
	// the replayed pending set (handed out but not yet told).
	done := make([]int, st.ladder.Rungs())
	for _, ob := range st.res.History {
		if ob.Iter == -1 {
			done[st.rungOf(ob.Fid)]++
		}
	}
	sizes := st.initSizes()
	e.initNext = make([]int, len(sizes))
	e.initQ = make([][][]float64, len(sizes))
	allOut := true
	for r := range sizes {
		e.initNext[r] = done[r] + pend[r]
		if e.initNext[r] < sizes[r] {
			allOut = false
		}
	}
	if allOut {
		// Every design point was handed out: no RNG consumption on restore,
		// matching the historical Resume trajectory exactly. The phase is
		// closed only once the outstanding ones are told.
		if pendInit == 0 {
			e.initDone = true
		}
		return e, nil
	}
	for r, n := range sizes {
		design := cfg.InitSampler(rng, st.lo, st.hi, n)
		if e.initNext[r] < len(design) {
			e.initQ[r] = design[e.initNext[r]:]
		}
	}
	return e, nil
}

// finishInit takes the post-initialization checkpoint and flips the engine
// into the adaptive phase.
func (e *Engine) finishInit() error {
	return e.finishInitIn(nil)
}

// finishInitIn is finishInit with the checkpoint write attributed to span's
// trace.
func (e *Engine) finishInitIn(span *telemetry.Span) error {
	e.initDone = true
	return e.checkpointDurableIn(span)
}

// checkpointDurable takes a checkpoint and tracks durability: on failure the
// engine is marked dirty (not terminal) and the fault is returned so the
// caller can refuse to acknowledge the observation it just ingested.
func (e *Engine) checkpointDurable() error {
	if err := e.checkpoint(); err != nil {
		e.ckptDirty = true
		return err
	}
	e.ckptDirty = false
	return nil
}

// checkpointDurableIn is checkpointDurable with the write wrapped in a
// storage.put child span, so checkpoint serialization + fsync latency
// attributes to the request that paid for it (nil-safe: a nil or unsampled
// parent costs nothing).
func (e *Engine) checkpointDurableIn(parent *telemetry.Span) error {
	sp := parent.Child("storage.put")
	err := e.checkpointDurable()
	if err != nil {
		sp.Attr("error", 1)
	}
	sp.End()
	return err
}

// flushCheckpoint retries a failed checkpoint before any new work is handed
// out. No-op when the engine is clean.
func (e *Engine) flushCheckpoint() error {
	if !e.ckptDirty {
		return nil
	}
	return e.checkpointDurable()
}

// adaptiveOutstanding counts pending adaptive (non-initialization) slots.
func (e *Engine) adaptiveOutstanding() int {
	n := 0
	for _, p := range e.pending {
		if p.sug.Iter >= 0 {
			n++
		}
	}
	return n
}

// outstandingCost is the budget already committed to the pending set: each
// outstanding suggestion will be charged on Tell, so batch top-up must count
// it against the budget before issuing more work.
func (e *Engine) outstandingCost() float64 {
	var c float64
	for _, p := range e.pending {
		rung := e.st.rungOf(p.sug.Fid)
		if rung == e.st.ladder.Target() {
			c++
		} else {
			c += e.st.ladder.Cost(rung)
		}
	}
	return c
}

// Ask returns the next query. Terminal conditions surface as errors:
// ErrBudgetExhausted when the budget (or Config.MaxIterations) is spent,
// ErrInterrupted when ctx was cancelled, and the underlying fault when a
// checkpoint write failed — classify with errors.Is. A non-terminal Ask
// either replays the oldest pending suggestion or computes a new one
// (running the full surrogate-fit/acquisition pipeline, which can take a
// while).
//
// ctx only gates the decision to keep going; it is not threaded into the
// surrogate fits. Long-running services should pass context.Background()
// and handle their own request deadlines, because a cancelled ctx
// terminally interrupts the engine (matching OptimizeCtx semantics).
func (e *Engine) Ask(ctx context.Context) (Suggestion, error) {
	if e.termErr != nil {
		return Suggestion{}, e.termErr
	}
	if err := e.flushCheckpoint(); err != nil {
		return Suggestion{}, err
	}
	if len(e.pending) > 0 {
		return cloneSuggestion(e.pending[0].sug), nil
	}
	if err := e.fill(ctx, 1); err != nil {
		return Suggestion{}, err
	}
	return cloneSuggestion(e.pending[0].sug), nil
}

// AskBatch tops the outstanding set up to q concurrently-pending suggestions
// and returns the full set (oldest first) — the batch face of the engine for
// parallel evaluation fleets. Additional slots beyond the first are proposed
// against fantasy-augmented surrogates: each outstanding adaptive suggestion
// contributes a synthetic observation (Config.Fantasy selects the
// kriging-believer posterior mean or a constant-liar pessimistic value), the
// models are refitted with those fantasies included, and the §3.4 fidelity
// criterion is applied per fantasy point — so slot j avoids re-proposing
// slot i's neighborhood without waiting for its simulation. Fantasies never
// touch the real training sets: they are retracted automatically as real
// observations arrive through Tell/TellByID.
//
// AskBatch is idempotent and incremental: already-outstanding suggestions
// are returned as-is (never recomputed), and calling it with q=1 is
// bit-identical to the sequential Ask protocol — no fantasy work happens
// with a single slot. When the remaining budget or Config.MaxIterations
// caps the batch below q, the set is simply smaller; once no suggestions
// are outstanding and none can be created, the terminal error is returned
// exactly like Ask.
func (e *Engine) AskBatch(ctx context.Context, q int) ([]Suggestion, error) {
	if q < 1 {
		q = 1
	}
	if e.termErr != nil {
		return nil, e.termErr
	}
	if err := e.flushCheckpoint(); err != nil {
		return nil, err
	}
	if err := e.fill(ctx, q); err != nil {
		return nil, err
	}
	out := make([]Suggestion, len(e.pending))
	for i, p := range e.pending {
		out[i] = cloneSuggestion(p.sug)
	}
	return out, nil
}

func cloneSuggestion(s Suggestion) Suggestion {
	s.X = append([]float64(nil), s.X...)
	return s
}

// fill grows the pending set to q outstanding suggestions (or as many as
// the phase/budget admits). With an empty pending set it reproduces the
// sequential Ask decision sequence exactly; it returns an error only when
// the engine is terminal AND nothing is outstanding.
func (e *Engine) fill(ctx context.Context, q int) error {
	if !e.initDone {
		if ctx.Err() != nil && len(e.pending) == 0 {
			// Match OptimizeCtx: skip the remaining initialization
			// evaluations, still take the post-init checkpoint, and
			// report interruption.
			for r := range e.initQ {
				e.initQ[r] = nil
			}
			e.interrupted = true
			if err := e.finishInit(); err != nil {
				return err
			}
			e.termErr = ErrInterrupted
			return e.termErr
		}
		for len(e.pending) < q && e.initRemaining() > 0 {
			for r := range e.initQ {
				if len(e.initQ[r]) > 0 {
					e.pushInit(r)
					break
				}
			}
		}
		if len(e.pending) > 0 {
			// Design points outstanding (or just issued): the adaptive
			// phase cannot start until all of them are told.
			return nil
		}
		// Degenerate designs (both queues empty before any Tell): close the
		// initialization phase and fall through to the adaptive one.
		if err := e.finishInit(); err != nil {
			return err
		}
	}
	// Adaptive-phase termination checks, in the same order as the loop
	// condition of Algorithm 1's driver. For batch slots beyond the first,
	// hitting a cap merely stops the top-up: outstanding work stays valid.
	cfg := &e.st.cfg
	for len(e.pending) < q {
		// Gate on committed cost (spent plus outstanding leases): a batch may
		// overrun the budget by at most one slot's cost, the same bound the
		// sequential loop has for its single in-flight evaluation.
		if e.st.cost+e.outstandingCost() >= cfg.Budget {
			if len(e.pending) == 0 {
				e.termErr = ErrBudgetExhausted
				return e.termErr
			}
			return nil
		}
		if cfg.MaxIterations > 0 && e.st.iter+e.adaptiveOutstanding() >= cfg.MaxIterations {
			if len(e.pending) == 0 {
				e.termErr = fmt.Errorf("%w (iteration cap %d reached)", ErrBudgetExhausted, cfg.MaxIterations)
				return e.termErr
			}
			return nil
		}
		if ctx.Err() != nil {
			if len(e.pending) == 0 {
				e.interrupted = true
				e.termErr = ErrInterrupted
				return e.termErr
			}
			return nil
		}
		e.proposeSlot(ctx, q > 1)
	}
	return nil
}

// initRemaining counts the design points not yet handed out, across rungs.
func (e *Engine) initRemaining() int {
	n := 0
	for _, q := range e.initQ {
		n += len(q)
	}
	return n
}

// pushInit hands out the next initialization design point at rung r.
func (e *Engine) pushInit(r int) {
	x := e.initQ[r][0]
	e.initQ[r] = e.initQ[r][1:]
	id := e.st.initID(r, e.initNext[r])
	e.initNext[r]++
	e.pending = append(e.pending, &pendingSug{
		sug: Suggestion{ID: id, X: append([]float64(nil), x...), Fid: problem.Fidelity(r), Iter: -1},
	})
}

// proposeSlot computes one new adaptive suggestion and appends it to the
// pending set. In batch mode the surrogates are fitted against the training
// sets temporarily augmented with the outstanding slots' fantasy
// observations (constant-liar / kriging-believer), which are retracted
// before returning — the real datasets never see a fantasy row. The
// engine.ask span continues the trace carried by ctx when a request span is
// present (the service path), otherwise it roots a locally sampled trace.
func (e *Engine) proposeSlot(ctx context.Context, batch bool) {
	st := e.st
	iter := st.iter + e.adaptiveOutstanding()
	var span *telemetry.Span
	var t0 time.Time
	if st.telem != nil {
		span = st.telem.StartSpanIn(ctx, "engine.ask")
		span.Attr("iter", float64(iter))
		t0 = time.Now()
	}
	sizes := st.datasetSizes()
	if batch {
		for _, p := range e.pending {
			if p.sug.Iter < 0 || p.fantasy == nil {
				continue
			}
			ds := st.ds(st.rungOf(p.sug.Fid))
			// Rows are never mutated downstream, so sharing storage with the
			// pending suggestion is safe; the append is undone below.
			ds.X = append(ds.X, p.sug.X)
			ds.Y = append(ds.Y, p.fantasy)
		}
	}
	x, fid, fantasy := st.propose(iter, span, batch)
	for r := range sizes {
		ds := st.ds(r)
		ds.X, ds.Y = ds.X[:sizes[r]], ds.Y[:sizes[r]]
	}
	st.retract(sizes)
	if st.telem != nil {
		span.End()
		if st.met != nil {
			st.met.askSeconds.Observe(time.Since(t0).Seconds())
		}
	}
	e.pending = append(e.pending, &pendingSug{
		sug:     Suggestion{ID: fmt.Sprintf("iter-%d", iter), X: x, Fid: fid, Iter: iter},
		fantasy: fantasy,
	})
}

// Tell ingests the outcome of an outstanding suggestion identified by its
// exact (x, fid) pair: the evaluation is routed through the same sanitation
// as the in-process loop (non-finite or explicitly Failed outcomes are
// charged but excluded from surrogate training), the budget is charged, the
// history extended, and a checkpoint is taken — after every observation,
// initialization included, so an acknowledged Tell is always durable. A
// failed checkpoint write is returned (the observation is ingested but not
// yet durable) without making the engine terminal: Ask refuses to hand out
// further work until a retried flush succeeds. x and fid must match an
// outstanding suggestion exactly (ErrTellMismatch); a Tell without any
// pending Ask returns ErrNoPendingAsk. Batch consumers should prefer
// TellByID, which is unambiguous under concurrent outstanding suggestions.
func (e *Engine) Tell(x []float64, fid problem.Fidelity, ev problem.Evaluation) error {
	return e.TellCtx(context.Background(), x, fid, ev)
}

// TellCtx is Tell with a context: when ctx carries a request span (the
// service path), the engine.tell and storage.put spans join that trace.
// Cancellation is not consulted — an ingested observation is never rolled
// back.
func (e *Engine) TellCtx(ctx context.Context, x []float64, fid problem.Fidelity, ev problem.Evaluation) error {
	if len(e.pending) == 0 {
		if e.termErr != nil {
			return e.termErr
		}
		return ErrNoPendingAsk
	}
	for i, p := range e.pending {
		if p.sug.Fid == fid && equalPoint(p.sug.X, x) {
			return e.tellAt(ctx, i, ev)
		}
	}
	// No outstanding suggestion matches: report the mismatch against the
	// oldest pending one, preserving the sequential protocol's diagnostics.
	sug := e.pending[0].sug
	if fid != sug.Fid || len(x) != len(sug.X) {
		return fmt.Errorf("%w: got fidelity %v dim %d, want %v dim %d",
			ErrTellMismatch, fid, len(x), sug.Fid, len(sug.X))
	}
	for i := range x {
		if x[i] != sug.X[i] {
			return fmt.Errorf("%w: coordinate %d is %v, suggested %v",
				ErrTellMismatch, i, x[i], sug.X[i])
		}
	}
	return fmt.Errorf("%w: observation matches no outstanding suggestion", ErrTellMismatch)
}

// TellByID ingests the outcome of the outstanding suggestion with the given
// ID — the out-of-order observation path of a distributed batch run. The
// suggestion's recorded point and fidelity are used verbatim; an unknown or
// already-told ID returns ErrUnknownSuggestion (ErrNoPendingAsk when nothing
// at all is outstanding), which duplicate reports from requeued evaluations
// should treat as "already ingested".
func (e *Engine) TellByID(id string, ev problem.Evaluation) error {
	return e.TellByIDCtx(context.Background(), id, ev)
}

// TellByIDCtx is TellByID with a context, for trace attribution like
// TellCtx.
func (e *Engine) TellByIDCtx(ctx context.Context, id string, ev problem.Evaluation) error {
	if len(e.pending) == 0 {
		if e.termErr != nil {
			return e.termErr
		}
		return ErrNoPendingAsk
	}
	for i, p := range e.pending {
		if p.sug.ID == id {
			return e.tellAt(ctx, i, ev)
		}
	}
	return fmt.Errorf("%w: %q", ErrUnknownSuggestion, id)
}

func equalPoint(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tellAt consumes pending slot i: its fantasy (if any) vanishes with the
// slot, the real observation is ingested, and the phase bookkeeping runs.
func (e *Engine) tellAt(ctx context.Context, i int, ev problem.Evaluation) error {
	p := e.pending[i]
	e.pending = append(e.pending[:i], e.pending[i+1:]...)
	sug := p.sug
	var span *telemetry.Span
	if e.st.telem != nil {
		span = e.st.telem.StartSpanIn(ctx, "engine.tell")
		span.Attr("iter", float64(sug.Iter))
		defer span.End()
	}
	e.st.ingest(sug.Iter, sug.X, sug.Fid, ev)
	if sug.Iter < 0 {
		if len(e.pending) == 0 && e.initRemaining() == 0 {
			return e.finishInitIn(span)
		}
		// Initialization observations are checkpointed one by one too: a
		// distributed run acks each report as it lands, and "acked" must mean
		// "durably snapshotted" from the very first design point.
		return e.checkpointDurableIn(span)
	}
	e.st.iter++ // advance before checkpointing: snapshots store the completed count
	return e.checkpointDurableIn(span)
}

// Done reports whether the engine reached a terminal state (budget spent,
// interrupted, or faulted) and will produce no further suggestions.
func (e *Engine) Done() bool { return e.termErr != nil }

// Snapshot returns a deep-copied checkpoint of the current state, including
// the full pending set: a restored engine replays every outstanding
// suggestion (IDs, points, fidelities, fantasies) instead of recomputing.
func (e *Engine) Snapshot() *Checkpoint {
	ck := e.st.snapshot()
	for _, p := range e.pending {
		ck.Pending = append(ck.Pending, PendingSuggestion{
			ID:      p.sug.ID,
			X:       append([]float64(nil), p.sug.X...),
			Fid:     p.sug.Fid,
			Iter:    p.sug.Iter,
			Fantasy: append([]float64(nil), p.fantasy...),
		})
	}
	return ck
}

// Pending returns copies of the outstanding suggestions, oldest first,
// without computing anything — the dispatch layer's view of work that can
// be (re)leased.
func (e *Engine) Pending() []Suggestion {
	out := make([]Suggestion, len(e.pending))
	for i, p := range e.pending {
		out[i] = cloneSuggestion(p.sug)
	}
	return out
}

// History returns the live observation log (shared storage — callers must
// not mutate it and must serialize access with Ask/Tell).
func (e *Engine) History() []Observation { return e.st.res.History }

// Progress is a cheap point-in-time summary of a run, suitable for status
// endpoints.
type Progress struct {
	// Phase is "initializing", "running" or "done".
	Phase string
	// Iter is the next adaptive iteration.
	Iter int
	// Cost is the budget spent so far, Budget the configured total, both in
	// equivalent high-fidelity simulations.
	Cost, Budget               float64
	NumLow, NumHigh, NumFailed int
	// Outstanding counts asked-but-untold suggestions (the in-flight batch).
	Outstanding int
	// HasBest reports whether a successful high-fidelity observation exists;
	// BestX/Best/Feasible describe it when it does.
	HasBest  bool
	BestX    []float64
	Best     problem.Evaluation
	Feasible bool
	// Degradations counts graceful downgrades taken so far.
	Degradations int
	Interrupted  bool
}

// Progress summarizes the current state without mutating it.
func (e *Engine) Progress() Progress {
	p := Progress{
		Iter:         e.st.iter,
		Cost:         e.st.cost,
		Budget:       e.st.cfg.Budget,
		NumLow:       e.st.res.NumLow,
		NumHigh:      e.st.res.NumHigh,
		NumFailed:    e.st.res.NumFailed,
		Outstanding:  len(e.pending),
		Degradations: len(e.st.res.Degradations),
		Interrupted:  e.interrupted,
	}
	switch {
	case e.termErr != nil:
		p.Phase = "done"
	case !e.initDone:
		p.Phase = "initializing"
	default:
		p.Phase = "running"
	}
	if bx, be, feas := bestOf(e.st.high); bx != nil {
		p.HasBest = true
		p.BestX = append([]float64(nil), bx...)
		p.Best = be
		p.Feasible = feas
	}
	return p
}

// Result assembles the final Result. It may be called at any time (the
// session layer uses it for status of live runs); on a terminal engine it
// reports exactly what Optimize would have returned: the terminal fault if
// one occurred, ErrNoFeasible when no successful high-fidelity observation
// exists, the completed Result otherwise.
func (e *Engine) Result() (*Result, error) {
	res := e.st.finish(context.Background())
	res.Interrupted = e.interrupted
	if e.termErr != nil && !errors.Is(e.termErr, ErrBudgetExhausted) && !errors.Is(e.termErr, ErrInterrupted) {
		return res, e.termErr
	}
	if res.BestX == nil {
		return res, ErrNoFeasible
	}
	return res, nil
}

// drive runs the classic in-process loop on top of the ask/tell machine:
// ask, evaluate on the problem itself, tell, until a terminal condition.
// OptimizeCtx and Resume are thin wrappers over it.
func (e *Engine) drive(ctx context.Context) (*Result, error) {
	var loopErr error
	for {
		sug, err := e.Ask(ctx)
		if err != nil {
			loopErr = err
			break
		}
		ev, everr := e.st.evaluate(ctx, sug.X, sug.Fid)
		if everr != nil {
			ev.Failed = true
		}
		if err := e.Tell(sug.X, sug.Fid, ev); err != nil {
			loopErr = err
			break
		}
	}
	if ctx.Err() != nil {
		e.interrupted = true
	}
	res, rerr := e.Result()
	// A checkpoint fault is not terminal for the engine (a service retries
	// the flush), but the in-process loop has no second chance: surface it
	// alongside the partial result, as the historical abort semantics did.
	if loopErr != nil && !errors.Is(loopErr, ErrBudgetExhausted) && !errors.Is(loopErr, ErrInterrupted) {
		return res, loopErr
	}
	return res, rerr
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/doe"
	"repro/internal/mfgp"
	"repro/internal/optimize"
	"repro/internal/problem"
	"repro/internal/testfunc"
)

// fastCfg keeps unit-test runtimes low: small budget, few MSP starts.
func fastCfg(budget float64) Config {
	return Config{
		Budget:    budget,
		InitLow:   8,
		InitHigh:  4,
		MSP:       optimize.MSPConfig{Starts: 6, LocalIter: 25},
		GPMaxIter: 40,
	}
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Optimize(testfunc.Pedagogical(), Config{}, rng); err == nil {
		t.Fatal("expected error for zero budget")
	}
}

func TestOptimizePedagogical(t *testing.T) {
	// Global optimum of f_h on [0,1] is near x ≈ 0.938 (last negative lobe
	// deepest because (x−√2) shrinks in magnitude as x grows... the deepest
	// lobe is actually the first one): verify against a grid.
	p := testfunc.Pedagogical()
	bestGrid := math.Inf(1)
	for i := 0; i <= 2000; i++ {
		x := float64(i) / 2000
		if v := testfunc.PedagogicalHigh(x); v < bestGrid {
			bestGrid = v
		}
	}
	rng := rand.New(rand.NewSource(2))
	res, err := Optimize(p, fastCfg(15), rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("unconstrained problem must be 'feasible'")
	}
	if res.Best.Objective > bestGrid+0.15 {
		t.Fatalf("MFBO best %.4f too far from grid optimum %.4f", res.Best.Objective, bestGrid)
	}
}

func TestBudgetRespected(t *testing.T) {
	p := testfunc.Pedagogical()
	rng := rand.New(rand.NewSource(3))
	budget := 10.0
	res, err := Optimize(p, fastCfg(budget), rng)
	if err != nil {
		t.Fatal(err)
	}
	// The loop stops at the first crossing, so overshoot is at most one
	// high-fidelity simulation.
	if res.EquivalentSims > budget+1 {
		t.Fatalf("spent %v equivalent sims, budget %v", res.EquivalentSims, budget)
	}
	if res.EquivalentSims < budget-1 {
		t.Fatalf("left budget unspent: %v of %v", res.EquivalentSims, budget)
	}
}

func TestHistoryAccounting(t *testing.T) {
	p := testfunc.Forrester()
	rng := rand.New(rand.NewSource(4))
	res, err := Optimize(p, fastCfg(12), rng)
	if err != nil {
		t.Fatal(err)
	}
	nLow, nHigh := 0, 0
	prevCost := 0.0
	for _, ob := range res.History {
		if ob.Fid == problem.Low {
			nLow++
		} else {
			nHigh++
		}
		if ob.CumCost <= prevCost {
			t.Fatal("cumulative cost must increase")
		}
		prevCost = ob.CumCost
	}
	if nLow != res.NumLow || nHigh != res.NumHigh {
		t.Fatalf("history counts %d/%d vs result %d/%d", nLow, nHigh, res.NumLow, res.NumHigh)
	}
	want := problem.EquivalentSims(p, nLow, nHigh)
	if math.Abs(res.EquivalentSims-want) > 1e-9 {
		t.Fatalf("equivalent sims %v, want %v", res.EquivalentSims, want)
	}
	if res.NumLow < 8 || res.NumHigh < 4 {
		t.Fatal("initialization points missing from counts")
	}
}

func TestUsesBothFidelities(t *testing.T) {
	// The pedagogical low fidelity (sin 8πx) stays uncertain with few
	// points, so the §3.4 criterion must route early queries to the cheap
	// level and later confident queries to the expensive one.
	p := testfunc.Pedagogical()
	rng := rand.New(rand.NewSource(5))
	cfg := fastCfg(12)
	cfg.InitLow = 6
	res, err := Optimize(p, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLow <= cfg.InitLow {
		t.Fatalf("no adaptive low-fidelity queries: %d", res.NumLow)
	}
	if res.NumHigh <= cfg.InitHigh {
		t.Fatalf("no adaptive high-fidelity queries: %d", res.NumHigh)
	}
}

func TestConstrainedFindsFeasible(t *testing.T) {
	p := testfunc.ConstrainedSynthetic()
	rng := rand.New(rand.NewSource(6))
	res, err := Optimize(p, fastCfg(18), rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("no feasible point found; best %+v", res.Best)
	}
	_, fOpt := testfunc.ConstrainedSyntheticOptimum()
	if res.Best.Objective > fOpt+0.35 {
		t.Fatalf("feasible best %.4f too far from optimum %.4f", res.Best.Objective, fOpt)
	}
	// The reported best must itself be feasible.
	e := p.Evaluate(res.BestX, problem.High)
	if !e.Feasible() {
		t.Fatal("reported best point is not feasible on re-evaluation")
	}
}

func TestCallbackInvoked(t *testing.T) {
	p := testfunc.Pedagogical()
	rng := rand.New(rand.NewSource(7))
	var n int
	cfg := fastCfg(8)
	cfg.Callback = func(ob Observation) {
		n++
		if len(ob.X) != 1 {
			t.Fatal("callback observation has wrong dim")
		}
	}
	res, err := Optimize(p, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(res.History) {
		t.Fatalf("callback count %d != history %d", n, len(res.History))
	}
}

func TestForceHighFidelityAblation(t *testing.T) {
	p := testfunc.Forrester()
	rng := rand.New(rand.NewSource(8))
	cfg := fastCfg(12)
	cfg.ForceHighFidelity = true
	res, err := Optimize(p, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Only initialization points may be low fidelity.
	if res.NumLow != cfg.InitLow {
		t.Fatalf("ablation still queried low fidelity: %d > %d", res.NumLow, cfg.InitLow)
	}
}

func TestGammaExtremesSteerFidelity(t *testing.T) {
	p := testfunc.Forrester()
	// Huge γ: criterion (σ² < γ) always true → all adaptive queries high.
	rngA := rand.New(rand.NewSource(9))
	cfgA := fastCfg(12)
	cfgA.Gamma = 1e9
	resA, err := Optimize(p, cfgA, rngA)
	if err != nil {
		t.Fatal(err)
	}
	if resA.NumLow != cfgA.InitLow {
		t.Fatalf("γ=∞ should force high fidelity, got %d low", resA.NumLow)
	}
	// Tiny γ: criterion never true → all adaptive queries low.
	rngB := rand.New(rand.NewSource(10))
	cfgB := fastCfg(9)
	cfgB.Gamma = 1e-300
	resB, err := Optimize(p, cfgB, rngB)
	if err != nil {
		t.Fatal(err)
	}
	if resB.NumHigh != cfgB.InitHigh {
		t.Fatalf("γ=0 should force low fidelity, got %d high", resB.NumHigh)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	p := testfunc.Pedagogical()
	run := func() *Result {
		rng := rand.New(rand.NewSource(11))
		res, err := Optimize(p, fastCfg(8), rng)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.NumLow != b.NumLow || a.NumHigh != b.NumHigh {
		t.Fatal("same seed produced different runs")
	}
	if a.Best.Objective != b.Best.Objective {
		t.Fatal("same seed produced different best values")
	}
}

func TestPropagationVariants(t *testing.T) {
	p := testfunc.Pedagogical()
	for _, prop := range []mfgp.Propagation{mfgp.MonteCarlo, mfgp.GaussHermite, mfgp.PlugIn} {
		rng := rand.New(rand.NewSource(12))
		cfg := fastCfg(8)
		cfg.Propagation = prop
		cfg.NumSamples = 10
		if _, err := Optimize(p, cfg, rng); err != nil {
			t.Fatalf("propagation %v failed: %v", prop, err)
		}
	}
}

func TestRefitEveryStillWorks(t *testing.T) {
	p := testfunc.Forrester()
	rng := rand.New(rand.NewSource(13))
	cfg := fastCfg(10)
	cfg.RefitEvery = 5
	res, err := Optimize(p, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no history")
	}
}

func TestInitSamplerPluggable(t *testing.T) {
	p := testfunc.Forrester()
	rng := rand.New(rand.NewSource(16))
	cfg := fastCfg(8)
	cfg.InitSampler = doe.SobolInBox
	res, err := Optimize(p, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLow < cfg.InitLow || res.NumHigh < cfg.InitHigh {
		t.Fatal("Sobol initialization missing points")
	}
	// High-dimensional automatic fallback (Halton) also works.
	cp := testfunc.ParkMF()
	rng = rand.New(rand.NewSource(17))
	cfg = fastCfg(6)
	cfg.InitSampler = doe.Auto
	if _, err := Optimize(cp, cfg, rng); err != nil {
		t.Fatal(err)
	}
}

func TestMaxIterationsBoundsLoop(t *testing.T) {
	p := testfunc.Pedagogical()
	rng := rand.New(rand.NewSource(14))
	cfg := fastCfg(1000) // budget far beyond what 3 iterations can spend
	cfg.MaxIterations = 3
	res, err := Optimize(p, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := len(res.History) - cfg.InitLow - cfg.InitHigh
	if adaptive != 3 {
		t.Fatalf("adaptive iterations = %d, want 3", adaptive)
	}
}

func TestMaxLowDataWindow(t *testing.T) {
	// With a tiny low-data window the run must still work and use both
	// fidelities; the window only affects surrogate training.
	p := testfunc.Pedagogical()
	rng := rand.New(rand.NewSource(15))
	cfg := fastCfg(10)
	cfg.MaxLowData = 6
	res, err := Optimize(p, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLow < cfg.InitLow {
		t.Fatal("history lost low-fidelity observations")
	}
}

func TestDatasetWindow(t *testing.T) {
	d := &dataset{}
	for i := 0; i < 5; i++ {
		d.add([]float64{float64(i)}, problem.Evaluation{Objective: float64(i)})
	}
	x, ys := d.window(3)
	if len(x) != 3 || x[0][0] != 2 {
		t.Fatalf("window = %v", x)
	}
	col := ys.column(0)
	if len(col) != 3 || col[2] != 4 {
		t.Fatalf("window column = %v", col)
	}
	// Unlimited window returns everything.
	x, _ = d.window(0)
	if len(x) != 5 {
		t.Fatal("window(0) should return all points")
	}
	x, _ = d.window(99)
	if len(x) != 5 {
		t.Fatal("window larger than data should return all points")
	}
}

func TestBestOfOrdering(t *testing.T) {
	d := &dataset{}
	d.add([]float64{0}, problem.Evaluation{Objective: 5, Constraints: []float64{1}})   // infeasible
	d.add([]float64{1}, problem.Evaluation{Objective: 9, Constraints: []float64{-1}})  // feasible
	d.add([]float64{2}, problem.Evaluation{Objective: 7, Constraints: []float64{-2}})  // feasible, better
	d.add([]float64{3}, problem.Evaluation{Objective: 1, Constraints: []float64{0.5}}) // infeasible, low obj
	x, e, feas := bestOf(d)
	if !feas || x[0] != 2 || e.Objective != 7 {
		t.Fatalf("bestOf = %v %+v %v", x, e, feas)
	}
	// All-infeasible dataset: least violation wins.
	d2 := &dataset{}
	d2.add([]float64{0}, problem.Evaluation{Objective: 1, Constraints: []float64{3}})
	d2.add([]float64{1}, problem.Evaluation{Objective: 9, Constraints: []float64{0.5}})
	x2, _, feas2 := bestOf(d2)
	if feas2 || x2[0] != 1 {
		t.Fatalf("least-violation pick wrong: %v %v", x2, feas2)
	}
}

func TestIsDuplicate(t *testing.T) {
	lowD, highD := &dataset{}, &dataset{}
	lowD.add([]float64{0.5, 0.5}, problem.Evaluation{})
	if !isDuplicate([]float64{0.5, 0.5}, lowD, highD, problem.Low) {
		t.Fatal("exact duplicate not detected")
	}
	if isDuplicate([]float64{0.5, 0.5}, lowD, highD, problem.High) {
		t.Fatal("duplicate reported against wrong fidelity")
	}
	if isDuplicate([]float64{0.6, 0.5}, lowD, highD, problem.Low) {
		t.Fatal("distinct point reported as duplicate")
	}
}

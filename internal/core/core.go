// Package core implements the paper's primary contribution: the
// multi-fidelity Bayesian optimization algorithm of §3 (Algorithm 1).
//
// Each iteration
//
//  1. fits one low-fidelity GP per output (objective + constraints) on the
//     cheap data and one fused NARGP model per output on top of it,
//  2. maximizes the low-fidelity wEI acquisition to obtain x*_l,
//  3. maximizes the high-fidelity (fused) wEI acquisition with the §4.1
//     multiple-starting-point strategy — 40 % of starts near the
//     high-fidelity incumbent, 10 % near the low-fidelity incumbent, and
//     x*_l injected as an extra start,
//  4. chooses the evaluation fidelity by the §3.4 criterion: the point is
//     simulated at HIGH fidelity only when every low-fidelity posterior
//     variance is already below the threshold (eqs. 11–12),
//  5. runs the simulation, charges its cost, and updates the training set.
//
// While no feasible high-fidelity point is known, the §4.2 bootstrap
// objective (eq. 13) replaces wEI to force the search into the feasible
// region.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/acq"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/mfgp"
	"repro/internal/optimize"
	"repro/internal/problem"
	"repro/internal/stats"
)

// Config tunes the optimizer. Zero values select the paper's settings where
// the paper specifies them (γ = 0.01, MSP fractions 40 %/10 %).
type Config struct {
	// Budget is the total simulation budget in equivalent high-fidelity
	// simulations (required, > 0). Initialization cost counts against it.
	Budget float64
	// InitLow / InitHigh are the Latin-hypercube initialization sizes
	// (defaults 10 and 5, the paper's power-amplifier setting).
	InitLow, InitHigh int
	// Gamma is the fidelity-selection threshold of eq. (11) on standardized
	// posterior variance (default 0.01).
	Gamma float64
	// MSP configures acquisition maximization (§4.1).
	MSP optimize.MSPConfig
	// GPRestarts / GPMaxIter tune surrogate training (defaults 1 / 60).
	GPRestarts, GPMaxIter int
	// RefitEvery controls how often hyperparameters are re-optimized; in
	// between, models are re-factorized with warm hyperparameters
	// (default 1 = every iteration).
	RefitEvery int
	// Propagation and NumSamples configure the fused posterior (§3.2);
	// defaults: MonteCarlo with 30 common-random-number samples.
	Propagation mfgp.Propagation
	NumSamples  int
	// FixedNoise pins the GP observation noise (standardized units);
	// deterministic simulators should use a small value (default 1e-4).
	FixedNoise *float64
	// DisableIncumbentSeeding turns off the §4.1 τ_l/τ_h-local start points
	// (ablation).
	DisableIncumbentSeeding bool
	// ForceHighFidelity disables the §3.4 criterion and evaluates every
	// query at high fidelity (ablation; degenerates toward WEIBO with a
	// fused model).
	ForceHighFidelity bool
	// MaxLowData, when positive, caps the low-fidelity training window for
	// surrogate fitting: the newest MaxLowData cheap observations are used
	// (all are still recorded in History). Exact GP training is O(n³), so
	// high-dimensional problems whose cost ratio admits hundreds of cheap
	// simulations need this to stay tractable.
	MaxLowData int
	// MaxIterations, when positive, bounds the number of adaptive
	// iterations regardless of remaining budget — a wall-clock guard for
	// problems whose low fidelity is so cheap that the budget admits
	// thousands of iterations.
	MaxIterations int
	// Callback, when non-nil, observes every simulation as it happens.
	Callback func(Observation)
	// InitSampler generates the initialization designs (default
	// stats.LatinHypercube; doe.SobolInBox / doe.HaltonInBox / doe.Auto are
	// drop-in alternatives).
	InitSampler func(rng *rand.Rand, lo, hi []float64, n int) [][]float64
}

func (c *Config) defaults() error {
	if c.Budget <= 0 {
		return errors.New("core: Config.Budget must be positive")
	}
	if c.InitLow <= 0 {
		c.InitLow = 10
	}
	if c.InitHigh <= 0 {
		c.InitHigh = 5
	}
	if c.Gamma <= 0 {
		c.Gamma = 0.01
	}
	if c.GPRestarts <= 0 {
		c.GPRestarts = 1
	}
	if c.GPMaxIter <= 0 {
		c.GPMaxIter = 60
	}
	if c.RefitEvery <= 0 {
		c.RefitEvery = 1
	}
	if c.NumSamples <= 0 {
		c.NumSamples = 30
	}
	if c.FixedNoise == nil {
		v := 1e-4
		c.FixedNoise = &v
	}
	if c.InitSampler == nil {
		c.InitSampler = stats.LatinHypercube
	}
	return nil
}

// Observation records one simulation performed by the optimizer.
type Observation struct {
	Iter    int // 0-based; initialization points share iteration −1
	X       []float64
	Fid     problem.Fidelity
	Eval    problem.Evaluation
	CumCost float64 // equivalent high-fidelity simulations spent so far
}

// Result summarizes an optimization run.
type Result struct {
	// BestX / Best are the best feasible HIGH-fidelity observation (or, if
	// none is feasible, the least-violating one). Feasible tells which.
	BestX    []float64
	Best     problem.Evaluation
	Feasible bool
	// NumLow / NumHigh count simulations at each fidelity.
	NumLow, NumHigh int
	// EquivalentSims is the paper's cost metric: total cost divided by the
	// cost of one high-fidelity simulation.
	EquivalentSims float64
	// History lists every simulation in order.
	History []Observation
}

// dataset is the growing training set at one fidelity.
type dataset struct {
	X [][]float64
	Y [][]float64 // per point: [objective, constraints...]
}

func (d *dataset) add(x []float64, e problem.Evaluation) {
	d.X = append(d.X, append([]float64(nil), x...))
	d.Y = append(d.Y, e.Outputs())
}

func (d *dataset) column(k int) []float64 {
	col := make([]float64, len(d.Y))
	for i, row := range d.Y {
		col[i] = row[k]
	}
	return col
}

// window returns the newest max points (all of them when max <= 0) as a
// training view. The returned dataset shares backing storage with d.
func (d *dataset) window(max int) ([][]float64, *dataset) {
	if max <= 0 || len(d.X) <= max {
		return d.X, d
	}
	start := len(d.X) - max
	view := &dataset{X: d.X[start:], Y: d.Y[start:]}
	return view.X, view
}

// Optimize runs Algorithm 1 on p until the simulation budget is exhausted.
func Optimize(p problem.Problem, cfg Config, rng *rand.Rand) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	d := p.Dim()
	nc := p.NumConstraints()
	nOut := 1 + nc
	lo, hi := p.Bounds()
	box := optimize.NewBox(lo, hi)

	res := &Result{}
	low, high := &dataset{}, &dataset{}
	cost := 0.0
	costLow := p.Cost(problem.Low) / p.Cost(problem.High)
	record := func(iter int, x []float64, fid problem.Fidelity) problem.Evaluation {
		e := p.Evaluate(x, fid)
		if fid == problem.Low {
			low.add(x, e)
			res.NumLow++
			cost += costLow
		} else {
			high.add(x, e)
			res.NumHigh++
			cost += 1
		}
		ob := Observation{Iter: iter, X: append([]float64(nil), x...), Fid: fid, Eval: e, CumCost: cost}
		res.History = append(res.History, ob)
		if cfg.Callback != nil {
			cfg.Callback(ob)
		}
		return e
	}

	// Initialization designs at both fidelities.
	for _, x := range cfg.InitSampler(rng, lo, hi, cfg.InitLow) {
		record(-1, x, problem.Low)
	}
	for _, x := range cfg.InitSampler(rng, lo, hi, cfg.InitHigh) {
		record(-1, x, problem.High)
	}

	// Warm-start stores per output model.
	warmLow := make([][]float64, nOut)
	warmHigh := make([][]float64, nOut)

	for iter := 0; cost < cfg.Budget; iter++ {
		if cfg.MaxIterations > 0 && iter >= cfg.MaxIterations {
			break
		}
		lowX, lowYs := low.window(cfg.MaxLowData)
		fullRefit := iter%cfg.RefitEvery == 0
		lowGPs := make([]*gp.Model, nOut)
		fused := make([]*mfgp.Model, nOut)
		for k := 0; k < nOut; k++ {
			lm, err := gp.Fit(lowX, lowYs.column(k), gp.Config{
				Kernel:       kernel.NewSEARD(d),
				Restarts:     cfg.GPRestarts,
				MaxIter:      cfg.GPMaxIter,
				FixedNoise:   cfg.FixedNoise,
				WarmStart:    warmLow[k],
				SkipTraining: !fullRefit && warmLow[k] != nil,
			}, rng)
			if err != nil {
				return nil, fmt.Errorf("core: iter %d output %d low fit: %w", iter, k, err)
			}
			warmLow[k] = lm.Hyper()
			lowGPs[k] = lm
			fm, err := mfgp.FitWithLow(lm, d, high.X, high.column(k), mfgp.Config{
				Restarts:      cfg.GPRestarts,
				MaxIter:       cfg.GPMaxIter,
				FixedNoise:    cfg.FixedNoise,
				Propagation:   cfg.Propagation,
				NumSamples:    cfg.NumSamples,
				WarmStartHigh: warmHigh[k],
			}, rng)
			if err != nil {
				return nil, fmt.Errorf("core: iter %d output %d fusion fit: %w", iter, k, err)
			}
			warmHigh[k] = fm.High().Hyper()
			fused[k] = fm
		}

		// Incumbents.
		tauLowX, tauLowEval, hasLowFeasible := bestOf(low)
		tauHighX, tauHighEval, hasHighFeasible := bestOf(high)

		// Posterior adapters.
		lowObj := func(x []float64) (float64, float64) { return lowGPs[0].PredictLatent(x) }
		lowCons := make([]acq.Posterior, nc)
		for i := 0; i < nc; i++ {
			m := lowGPs[1+i]
			lowCons[i] = func(x []float64) (float64, float64) { return m.PredictLatent(x) }
		}
		fusedObj := func(x []float64) (float64, float64) { return fused[0].Predict(x) }
		fusedCons := make([]acq.Posterior, nc)
		for i := 0; i < nc; i++ {
			m := fused[1+i]
			fusedCons[i] = func(x []float64) (float64, float64) { return m.Predict(x) }
		}

		mspCfg := cfg.MSP
		var incHigh, incLow []float64
		if !cfg.DisableIncumbentSeeding {
			if hasHighFeasible {
				incHigh = tauHighX
			}
			if hasLowFeasible {
				incLow = tauLowX
			}
		}

		// Step 5: low-fidelity acquisition → x*_l.
		var acqLow func([]float64) float64
		switch {
		case hasLowFeasible:
			acqLow = acq.WEI(lowObj, lowCons, tauLowEval.Objective)
		case nc > 0:
			fo := acq.FeasibilityObjective(lowCons)
			acqLow = func(x []float64) float64 { return -fo(x) }
		default:
			acqLow = acq.WEI(lowObj, nil, math.Inf(1))
		}
		xStarLow, _ := optimize.MaximizeMSP(rng, acqLow, box, incHigh, incLow, mspCfg)

		// Step 6: high-fidelity acquisition seeded with x*_l.
		var acqHigh func([]float64) float64
		switch {
		case hasHighFeasible:
			acqHigh = acq.WEI(fusedObj, fusedCons, tauHighEval.Objective)
		case nc > 0:
			// §4.2: no feasible point yet — chase predicted feasibility.
			fo := acq.FeasibilityObjective(fusedCons)
			acqHigh = func(x []float64) float64 { return -fo(x) }
		default:
			acqHigh = acq.WEI(fusedObj, nil, math.Inf(1))
		}
		mspCfg.Extra = append(append([][]float64(nil), cfg.MSP.Extra...), xStarLow)
		xt, _ := optimize.MaximizeMSP(rng, acqHigh, box, incHigh, incLow, mspCfg)

		// Degenerate-query guard: re-sampling an existing point adds no
		// information; fall back to a random exploration point.
		fid := cfg.selectFidelity(lowGPs, xt, nc)
		if isDuplicate(xt, low, high, fid) {
			xt = stats.UniformInBox(rng, lo, hi, 1)[0]
			fid = cfg.selectFidelity(lowGPs, xt, nc)
		}
		record(iter, xt, fid)
	}

	bx, be, feas := bestOf(high)
	if bx == nil {
		return nil, errors.New("core: no high-fidelity observations recorded")
	}
	res.BestX = bx
	res.Best = be
	res.Feasible = feas
	res.EquivalentSims = cost
	return res, nil
}

// selectFidelity applies the §3.4 criterion (eqs. 11–12): evaluate at HIGH
// fidelity when every low-fidelity posterior variance (standardized) is
// below (1+Nc)·γ — i.e. when more cheap data would not improve the
// low-fidelity models around xt.
func (c *Config) selectFidelity(lowGPs []*gp.Model, x []float64, nc int) problem.Fidelity {
	if c.ForceHighFidelity {
		return problem.High
	}
	maxVar := 0.0
	for _, m := range lowGPs {
		_, va := m.PredictLatent(x)
		std := m.OutputStd()
		if v := va / (std * std); v > maxVar {
			maxVar = v
		}
	}
	threshold := (1 + float64(nc)) * c.Gamma
	if maxVar < threshold {
		return problem.High
	}
	return problem.Low
}

// bestOf returns the best observation of a dataset under the constrained
// ordering (feasible-first). The boolean reports whether it is feasible.
func bestOf(d *dataset) ([]float64, problem.Evaluation, bool) {
	if len(d.X) == 0 {
		return nil, problem.Evaluation{}, false
	}
	bi := 0
	be := rowEval(d.Y[0])
	for i := 1; i < len(d.X); i++ {
		e := rowEval(d.Y[i])
		if problem.Better(e, be) {
			bi, be = i, e
		}
	}
	return d.X[bi], be, be.Feasible()
}

func rowEval(row []float64) problem.Evaluation {
	return problem.Evaluation{Objective: row[0], Constraints: row[1:]}
}

// isDuplicate reports whether xt coincides (to numerical precision) with a
// point already evaluated at the target fidelity.
func isDuplicate(xt []float64, low, high *dataset, fid problem.Fidelity) bool {
	ds := low
	if fid == problem.High {
		ds = high
	}
	for _, x := range ds.X {
		d2 := 0.0
		for j := range x {
			dd := x[j] - xt[j]
			d2 += dd * dd
		}
		if d2 < 1e-16 {
			return true
		}
	}
	return false
}

// Package core implements the paper's primary contribution: the
// multi-fidelity Bayesian optimization algorithm of §3 (Algorithm 1).
//
// Each iteration
//
//  1. fits one low-fidelity GP per output (objective + constraints) on the
//     cheap data and one fused NARGP model per output on top of it,
//  2. maximizes the low-fidelity wEI acquisition to obtain x*_l,
//  3. maximizes the high-fidelity (fused) wEI acquisition with the §4.1
//     multiple-starting-point strategy — 40 % of starts near the
//     high-fidelity incumbent, 10 % near the low-fidelity incumbent, and
//     x*_l injected as an extra start,
//  4. chooses the evaluation fidelity by the §3.4 criterion: the point is
//     simulated at HIGH fidelity only when every low-fidelity posterior
//     variance is already below the threshold (eqs. 11–12),
//  5. runs the simulation, charges its cost, and updates the training set.
//
// While no feasible high-fidelity point is known, the §4.2 bootstrap
// objective (eq. 13) replaces wEI to force the search into the feasible
// region.
//
// # Fault tolerance
//
// The loop is built to survive the failure modes of SPICE-class evaluation
// (see internal/robust and DESIGN.md "Failure handling & resume"):
//
//   - Failed evaluations — problems implementing problem.RichEvaluator (e.g.
//     robust.SafeProblem) report failures explicitly; the loop charges them
//     against the budget, records them in History with Eval.Failed set, and
//     excludes them from surrogate training.
//   - Surrogate-fit failures degrade instead of aborting, down a three-rung
//     ladder recorded in Result.Degradations: (1) refit with the previous
//     iteration's warm hyperparameters frozen, (2) drop to a pure
//     low-fidelity surrogate for the iteration, (3) pure random exploration.
//   - OptimizeCtx observes ctx: cancellation ends the run gracefully with
//     Result.Interrupted set and the partial history intact.
//   - Config.Checkpointer snapshots the full optimizer state after every
//     iteration; Resume continues a run from such a snapshot.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/acq"
	"repro/internal/fidelity"
	"repro/internal/gp"
	"repro/internal/kernel"
	"repro/internal/mfgp"
	"repro/internal/optimize"
	"repro/internal/problem"
	"repro/internal/robust"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Config tunes the optimizer. Zero values select the paper's settings where
// the paper specifies them (γ = 0.01, MSP fractions 40 %/10 %).
type Config struct {
	// Budget is the total simulation budget in equivalent high-fidelity
	// simulations (required, > 0). Initialization cost counts against it.
	Budget float64
	// InitLow / InitHigh are the Latin-hypercube initialization sizes
	// (defaults 10 and 5, the paper's power-amplifier setting).
	InitLow, InitHigh int
	// Gamma is the fidelity-selection threshold of eq. (11) on standardized
	// posterior variance (default 0.01).
	Gamma float64
	// InitMid is the Latin-hypercube initialization size per intermediate
	// rung of a K>2 fidelity ladder (default 5). Ignored by two-fidelity
	// problems.
	InitMid int
	// Ladder, when non-nil, overrides the fidelity ladder derived from the
	// problem's Cost schedule (fidelity.OfProblem). The rung count must match
	// the problem's. Nil (the default) derives it from the problem; for
	// classic two-fidelity problems that reproduces the historical
	// low/high-cost-ratio engine exactly.
	Ladder *fidelity.Ladder
	// MSP configures acquisition maximization (§4.1).
	MSP optimize.MSPConfig
	// GPRestarts / GPMaxIter tune surrogate training (defaults 1 / 60).
	GPRestarts, GPMaxIter int
	// RefitEvery controls how often hyperparameters are re-optimized; in
	// between, models are re-factorized with warm hyperparameters
	// (default 1 = every iteration).
	RefitEvery int
	// Incremental enables O(n²) surrogate maintenance between full refits:
	// instead of re-factorizing the Gram matrix from scratch on every
	// proposal (O(n³)), new observations are folded into the cached models
	// with bordered rank-1 Cholesky updates, fantasy rows are retracted
	// exactly, and models whose fidelity received no new data are left
	// untouched. Hyperparameters are still re-optimized every RefitEvery
	// proposals, or earlier when a model's per-point NLML degrades by more
	// than NLMLTrigger nats versus its last full refit. With RefitEvery = 1
	// every proposal is a full refit and the trajectory is bit-identical to
	// Incremental = false (the exact path).
	Incremental bool
	// NLMLTrigger is the per-point NLML degradation (in nats, standardized
	// units) that forces an early full refit in Incremental mode
	// (default 0.5; negative disables the trigger).
	NLMLTrigger float64
	// LowRankAfter, when positive, switches any surrogate whose training set
	// exceeds this many points to the opt-in low-rank inducing-point
	// approximation with LowRankAfter inducing points (see
	// gp.Config.Inducing). Zero (the default) keeps exact GPs everywhere.
	LowRankAfter int
	// Propagation and NumSamples configure the fused posterior (§3.2);
	// defaults: MonteCarlo with 30 common-random-number samples.
	Propagation mfgp.Propagation
	NumSamples  int
	// FixedNoise pins the GP observation noise (standardized units);
	// deterministic simulators should use a small value (default 1e-4).
	FixedNoise *float64
	// DisableIncumbentSeeding turns off the §4.1 τ_l/τ_h-local start points
	// (ablation).
	DisableIncumbentSeeding bool
	// ForceHighFidelity disables the §3.4 criterion and evaluates every
	// query at high fidelity (ablation; degenerates toward WEIBO with a
	// fused model).
	ForceHighFidelity bool
	// MaxLowData, when positive, caps the low-fidelity training window for
	// surrogate fitting: the newest MaxLowData cheap observations are used
	// (all are still recorded in History). Exact GP training is O(n³), so
	// high-dimensional problems whose cost ratio admits hundreds of cheap
	// simulations need this to stay tractable.
	MaxLowData int
	// MaxIterations, when positive, bounds the number of adaptive
	// iterations regardless of remaining budget — a wall-clock guard for
	// problems whose low fidelity is so cheap that the budget admits
	// thousands of iterations.
	MaxIterations int
	// Callback, when non-nil, observes every simulation as it happens.
	Callback func(Observation)
	// InitSampler generates the initialization designs (default
	// stats.LatinHypercube; doe.SobolInBox / doe.HaltonInBox / doe.Auto are
	// drop-in alternatives).
	InitSampler func(rng *rand.Rand, lo, hi []float64, n int) [][]float64
	// Checkpointer, when non-nil, receives a full state snapshot after the
	// initialization phase and after every adaptive iteration. Use
	// FileCheckpointer for atomic JSON-on-disk persistence; a non-nil error
	// aborts the run (the partial Result is still returned alongside it).
	Checkpointer func(*Checkpoint) error
	// Fantasy selects the synthetic-observation strategy used by AskBatch
	// when proposing the 2nd..q-th concurrently-outstanding suggestions
	// (default FantasyKrigingBeliever). Sequential Ask (q = 1) never
	// fantasizes, so this setting cannot perturb single-suggestion
	// trajectories.
	Fantasy FantasyStrategy
	// Workers bounds the goroutines used by every hot path — GP training
	// restarts, acquisition maximization, batched posterior prediction:
	// 0 selects parallel.DefaultWorkers() (runtime.NumCPU() unless the
	// MFBO_WORKERS environment variable overrides it), 1 forces the serial
	// path, n > 1 uses up to n goroutines. The optimization trajectory is
	// bit-identical for every setting, so checkpoints taken under one worker
	// count resume correctly under any other. When MSP.Workers is unset it
	// inherits this value.
	Workers int
	// Telemetry, when non-nil, wires full-loop observability into the run:
	// a structured event per iteration (the §3.4 σ²_l-vs-(1+Nc)γ fidelity
	// comparison, wEI values at the argmax, incumbents, surrogate NLML and
	// restart bookkeeping, degradation rungs, MSP convergence counts),
	// metrics into Telemetry.Metrics, and trace spans through Ask/Tell,
	// gp.Fit and optimize.MaximizeMSP. Telemetry never consumes optimizer
	// randomness or adds floating-point work, so the trajectory is
	// bit-identical with it on or off; nil (the default) is a
	// zero-allocation no-op on every hot path.
	Telemetry *telemetry.Recorder
}

func (c *Config) defaults() error {
	if c.Budget <= 0 {
		return errors.New("core: Config.Budget must be positive")
	}
	if c.InitLow <= 0 {
		c.InitLow = 10
	}
	if c.InitHigh <= 0 {
		c.InitHigh = 5
	}
	if c.Gamma <= 0 {
		c.Gamma = 0.01
	}
	if c.InitMid <= 0 {
		c.InitMid = 5
	}
	if c.GPRestarts <= 0 {
		c.GPRestarts = 1
	}
	if c.GPMaxIter <= 0 {
		c.GPMaxIter = 60
	}
	if c.RefitEvery <= 0 {
		c.RefitEvery = 1
	}
	if c.NLMLTrigger == 0 {
		c.NLMLTrigger = 0.5
	}
	if c.LowRankAfter < 0 {
		return fmt.Errorf("core: negative LowRankAfter %d", c.LowRankAfter)
	}
	if c.NumSamples <= 0 {
		c.NumSamples = 30
	}
	if c.FixedNoise == nil {
		v := 1e-4
		c.FixedNoise = &v
	}
	if c.InitSampler == nil {
		c.InitSampler = stats.LatinHypercube
	}
	if c.MSP.Workers == 0 {
		c.MSP.Workers = c.Workers
	}
	switch c.Fantasy {
	case "":
		c.Fantasy = FantasyKrigingBeliever
	case FantasyKrigingBeliever, FantasyConstantLiar:
	default:
		return fmt.Errorf("core: unknown Config.Fantasy %q", c.Fantasy)
	}
	return nil
}

// FantasyStrategy names the synthetic-observation rule batch acquisition uses
// for suggestions whose real outcome is still outstanding (see AskBatch).
type FantasyStrategy string

const (
	// FantasyKrigingBeliever hallucinates the posterior mean at the pending
	// point: the surrogate "believes" its own prediction, which keeps the
	// fantasy consistent with the model and spreads the batch by the
	// variance reduction the believed point induces.
	FantasyKrigingBeliever FantasyStrategy = "kriging-believer"
	// FantasyConstantLiar hallucinates a pessimistic constant — the worst
	// (maximum, under minimization) value observed so far per output at the
	// pending point's fidelity. The lie discourages the next slot from
	// crowding the same basin more aggressively than kriging-believer.
	FantasyConstantLiar FantasyStrategy = "constant-liar"
)

// Observation records one simulation performed by the optimizer.
type Observation struct {
	Iter    int // 0-based; initialization points share iteration −1
	X       []float64
	Fid     problem.Fidelity
	Eval    problem.Evaluation
	CumCost float64 // equivalent high-fidelity simulations spent so far
}

// DegradeStage identifies one rung of the graceful-degradation ladder.
type DegradeStage string

const (
	// DegradeWarmHypers: a full surrogate refit failed and the model was
	// re-factorized with the previous iteration's hyperparameters frozen.
	DegradeWarmHypers DegradeStage = "warm-hypers"
	// DegradeLowOnly: the fused model was unavailable and the iteration ran
	// on the pure low-fidelity surrogate.
	DegradeLowOnly DegradeStage = "low-fidelity-only"
	// DegradeRandom: no usable surrogate at all — the iteration fell back to
	// uniform random exploration.
	DegradeRandom DegradeStage = "random-exploration"
)

// Degradation records one downgrade taken by the loop.
type Degradation struct {
	// Iter is the adaptive iteration at which the downgrade happened.
	Iter int
	// Stage names the ladder rung.
	Stage DegradeStage
	// Output is the surrogate output index concerned (0 = objective,
	// 1+i = constraint i) or −1 when the whole iteration degraded.
	Output int
	// Reason carries the underlying fit error.
	Reason string
}

// Result summarizes an optimization run.
type Result struct {
	// BestX / Best are the best feasible HIGH-fidelity observation (or, if
	// none is feasible, the least-violating one). Feasible tells which.
	BestX    []float64
	Best     problem.Evaluation
	Feasible bool
	// NumLow / NumHigh count simulations at each fidelity (failed ones
	// included — they are charged). On a K>2 fidelity ladder NumLow
	// aggregates every sub-target rung; NumByRung has the full breakdown.
	NumLow, NumHigh int
	// NumByRung counts simulations per ladder rung (index = rung). Populated
	// only for K>2 ladders; nil on classic two-fidelity runs.
	NumByRung []int `json:",omitempty"`
	// NumFailed counts evaluations that failed (simulator crash, panic,
	// timeout, non-finite output). They are charged against the budget and
	// recorded in History with Eval.Failed set, but excluded from surrogate
	// training.
	NumFailed int
	// EquivalentSims is the paper's cost metric: total cost divided by the
	// cost of one high-fidelity simulation.
	EquivalentSims float64
	// History lists every simulation in order.
	History []Observation
	// Degradations lists every graceful downgrade taken by the loop (empty
	// on a healthy run).
	Degradations []Degradation
	// Interrupted reports that the run was stopped by context cancellation
	// before exhausting its budget; the partial history is intact.
	Interrupted bool
	// Faults is the per-fidelity fault log of the evaluation wrapper, when
	// the problem was wrapped with robust.Wrap (nil otherwise).
	Faults map[string]robust.FaultCounts `json:",omitempty"`
}

// dataset is the growing training set at one fidelity.
type dataset struct {
	X [][]float64
	Y [][]float64 // per point: [objective, constraints...]
}

func (d *dataset) add(x []float64, e problem.Evaluation) {
	d.X = append(d.X, append([]float64(nil), x...))
	d.Y = append(d.Y, e.Outputs())
}

func (d *dataset) column(k int) []float64 {
	col := make([]float64, len(d.Y))
	for i, row := range d.Y {
		col[i] = row[k]
	}
	return col
}

// window returns the newest max points (all of them when max <= 0) as a
// training view. The returned dataset shares backing storage with d.
func (d *dataset) window(max int) ([][]float64, *dataset) {
	if max <= 0 || len(d.X) <= max {
		return d.X, d
	}
	start := len(d.X) - max
	view := &dataset{X: d.X[start:], Y: d.Y[start:]}
	return view.X, view
}

// coreMetrics caches the optimizer's metric handles so the hot path never
// hits the registry's lock. All fields are nil (and every operation a no-op)
// when telemetry is off.
type coreMetrics struct {
	iterations   *telemetry.Counter
	evalsLow     *telemetry.Counter
	evalsHigh    *telemetry.Counter
	evalsByRung  []*telemetry.Counter
	costByRung   []*telemetry.Gauge
	evalsFailed  *telemetry.Counter
	degrade      map[DegradeStage]*telemetry.Counter
	fitRestarts  *telemetry.Counter
	fitDiverged  *telemetry.Counter
	fitSkipped   *telemetry.Counter
	rank1Updates *telemetry.Counter
	fitSeconds   *telemetry.Histogram
	acqSeconds   *telemetry.Histogram
	askSeconds   *telemetry.Histogram
	cost         *telemetry.Gauge
	best         *telemetry.Gauge
}

func newCoreMetrics(reg *telemetry.Registry, ladder fidelity.Ladder) *coreMetrics {
	if reg == nil {
		return nil
	}
	evalsByRung := make([]*telemetry.Counter, ladder.Rungs())
	costByRung := make([]*telemetry.Gauge, ladder.Rungs())
	for k := 0; k < ladder.Rungs(); k++ {
		rung := fmt.Sprintf("%d", k)
		evalsByRung[k] = reg.Counter("mfbo_fidelity_evals_total", "simulations by ladder rung (0 = cheapest)", "rung", rung)
		costByRung[k] = reg.Gauge("mfbo_fidelity_cost_equivalent_sims", "budget spent per ladder rung, in equivalent target-rung simulations", "rung", rung)
	}
	return &coreMetrics{
		iterations:  reg.Counter("mfbo_iterations_total", "adaptive optimizer iterations completed"),
		evalsLow:    reg.Counter("mfbo_evaluations_total", "simulations by fidelity", "fidelity", "low"),
		evalsHigh:   reg.Counter("mfbo_evaluations_total", "simulations by fidelity", "fidelity", "high"),
		evalsByRung: evalsByRung,
		costByRung:  costByRung,
		evalsFailed: reg.Counter("mfbo_evaluations_failed_total", "evaluations that failed (charged, excluded from training)"),
		degrade: map[DegradeStage]*telemetry.Counter{
			DegradeWarmHypers: reg.Counter("mfbo_degradations_total", "graceful surrogate downgrades by ladder rung", "stage", string(DegradeWarmHypers)),
			DegradeLowOnly:    reg.Counter("mfbo_degradations_total", "graceful surrogate downgrades by ladder rung", "stage", string(DegradeLowOnly)),
			DegradeRandom:     reg.Counter("mfbo_degradations_total", "graceful surrogate downgrades by ladder rung", "stage", string(DegradeRandom)),
		},
		fitRestarts:  reg.Counter("mfbo_fit_restarts_total", "GP hyperparameter-training starts run"),
		fitDiverged:  reg.Counter("mfbo_fit_diverged_total", "GP training starts that diverged to a non-finite NLML"),
		fitSkipped:   reg.Counter("mfbo_gp_fit_skipped_total", "proposals served by extending cached surrogates instead of refitting"),
		rank1Updates: reg.Counter("mfbo_gp_rank1_updates_total", "rank-1 surrogate factor extensions applied (fantasy rows included)"),
		fitSeconds:   reg.Histogram("mfbo_fit_seconds", "surrogate-fit wall time per iteration", nil),
		acqSeconds:   reg.Histogram("mfbo_acq_seconds", "acquisition-maximization wall time per iteration", nil),
		askSeconds:   reg.Histogram("mfbo_ask_seconds", "end-to-end Ask wall time (adaptive iterations)", nil),
		cost:         reg.Gauge("mfbo_cost_equivalent_sims", "budget spent, summed across runs sharing the registry"),
		best:         reg.Gauge("mfbo_best_objective", "best feasible high-fidelity objective (last run to update wins)"),
	}
}

// state is the live optimizer: everything a Checkpoint snapshots.
type state struct {
	p   problem.Problem
	cfg Config
	rng *rand.Rand

	d, nc, nOut int
	lo, hi      []float64
	box         optimize.Box

	res       *Result
	low, high *dataset
	cost      float64
	costLow   float64
	iter      int // next adaptive iteration

	// Fidelity ladder (always set; two rungs for classic problems). mid
	// holds the intermediate-rung training sets (len = Rungs()-2, empty for
	// K=2); warmChain carries per-output per-level warm hyperparameters for
	// the K>2 recursive surrogate.
	ladder    fidelity.Ladder
	mid       []*dataset
	warmChain [][][]float64

	warmLow, warmHigh [][]float64

	// Incremental-surrogate state (Config.Incremental): the cached models
	// extended in place between full refits, and the proposals-since-refit
	// counter driving the fit-skip schedule. cache is never checkpointed —
	// a restore starts with a full refit — but sinceRefit is, so the
	// schedule phase survives resume. lcache is the K>2 ladder analogue.
	cache      *surrCache
	lcache     *ladderCache
	sinceRefit int

	// Telemetry plumbing (all nil when Config.Telemetry is nil; never part
	// of a Checkpoint). ev is the in-flight iteration event: propose fills
	// the decision fields, ingest completes it with the observation and
	// emits it.
	telem *telemetry.Recorder
	met   *coreMetrics
	ev    *telemetry.IterationEvent
}

func newState(p problem.Problem, cfg Config, rng *rand.Rand) (*state, error) {
	d := p.Dim()
	nc := p.NumConstraints()
	lo, hi := p.Bounds()
	ladder, err := fidelity.OfProblem(p)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.Ladder != nil {
		if cfg.Ladder.Rungs() != ladder.Rungs() {
			return nil, fmt.Errorf("core: Config.Ladder has %d rungs, problem %q has %d",
				cfg.Ladder.Rungs(), p.Name(), ladder.Rungs())
		}
		ladder = *cfg.Ladder
	}
	st := &state{
		p: p, cfg: cfg, rng: rng,
		d: d, nc: nc, nOut: 1 + nc,
		lo: lo, hi: hi,
		box:     optimize.NewBox(lo, hi),
		res:     &Result{},
		low:     &dataset{},
		high:    &dataset{},
		ladder:  ladder,
		costLow: ladder.Cost(0),
		warmLow: make([][]float64, 1+nc), warmHigh: make([][]float64, 1+nc),
		// warmChain is allocated for every K so the ladder path is exercisable
		// on two-rung problems (the K=2 bit-identity oracle test); production
		// proposals only consult it when K > 2.
		warmChain: make([][][]float64, 1+nc),
	}
	if k := ladder.Rungs(); k > 2 {
		st.mid = make([]*dataset, k-2)
		for i := range st.mid {
			st.mid[i] = &dataset{}
		}
	}
	if cfg.Telemetry != nil {
		st.telem = cfg.Telemetry
		st.met = newCoreMetrics(cfg.Telemetry.Metrics, ladder)
	}
	return st, nil
}

// rungOf clamps a fidelity value into the ladder's rung range. For classic
// two-fidelity problems this is the identity on {Low, High}.
func (st *state) rungOf(fid problem.Fidelity) int {
	k := int(fid)
	if k < 0 {
		return 0
	}
	if t := st.ladder.Target(); k > t {
		return t
	}
	return k
}

// ds returns the training set of rung k.
func (st *state) ds(k int) *dataset {
	switch {
	case k == 0:
		return st.low
	case k == st.ladder.Target():
		return st.high
	default:
		return st.mid[k-1]
	}
}

// datasetSizes snapshots every rung's training-set length, rung order.
func (st *state) datasetSizes() []int {
	sizes := make([]int, st.ladder.Rungs())
	for k := range sizes {
		sizes[k] = len(st.ds(k).X)
	}
	return sizes
}

// evaluate dispatches to the richest evaluation interface the problem
// offers, so failures surface as errors rather than poisoned values.
func (st *state) evaluate(ctx context.Context, x []float64, fid problem.Fidelity) (problem.Evaluation, error) {
	if ce, ok := st.p.(problem.ContextEvaluator); ok {
		return ce.EvaluateCtx(ctx, x, fid)
	}
	return problem.EvaluateRich(st.p, x, fid)
}

// ingest charges one completed simulation against the budget, files it in
// History and — when it succeeded — in the fidelity's training set. It is the
// sanitation boundary of the loop: explicitly Failed or non-finite outcomes
// are charged and logged but never reach surrogate training.
func (st *state) ingest(iter int, x []float64, fid problem.Fidelity, e problem.Evaluation) problem.Evaluation {
	failed := e.Failed || !e.IsFinite()
	if failed {
		e.Failed = true
		st.res.NumFailed++
	}
	rung := st.rungOf(fid)
	if rung == st.ladder.Target() {
		st.res.NumHigh++
		st.cost++
	} else {
		st.res.NumLow++
		st.cost += st.ladder.Cost(rung)
	}
	if st.ladder.Rungs() > 2 {
		if st.res.NumByRung == nil {
			st.res.NumByRung = make([]int, st.ladder.Rungs())
		}
		st.res.NumByRung[rung]++
	}
	if !failed {
		st.ds(rung).add(x, e)
	}
	ob := Observation{Iter: iter, X: append([]float64(nil), x...), Fid: fid, Eval: e, CumCost: st.cost}
	st.res.History = append(st.res.History, ob)
	if st.telem != nil {
		st.observeTelemetry(&ob, failed)
	}
	if st.cfg.Callback != nil {
		st.cfg.Callback(ob)
	}
	return e
}

// observeTelemetry completes (or, for initialization points, creates) the
// iteration event for one ingested observation, emits it, and updates the
// optimizer metrics. Called only when telemetry is on; it reads — never
// mutates — optimizer state.
func (st *state) observeTelemetry(ob *Observation, failed bool) {
	rung := st.rungOf(ob.Fid)
	ev := st.ev
	if ev == nil || ev.Iter != ob.Iter {
		// Initialization point (or an observation without a matching
		// propose, e.g. right after a resume): emit a minimal event. The
		// ladder rung name degrades to "low"/"high" on two-rung problems.
		ev = &telemetry.IterationEvent{Iter: ob.Iter, Nc: st.nc, Fidelity: st.ladder.Name(rung)}
		if st.ladder.Rungs() > 2 {
			ev.Rung = rung
		}
	}
	st.ev = nil
	ev.X = ob.X
	ev.Objective = ob.Eval.Objective
	ev.Constraints = ob.Eval.Constraints
	ev.Failed = failed
	ev.CumCost = ob.CumCost
	if fp, ok := st.p.(interface{ Faults() *robust.FaultLog }); ok {
		fl := fp.Faults()
		ev.RetriesCum = fl.TotalRetries()
		ev.FailuresCum = fl.TotalFailures()
	}
	st.telem.EmitIteration(ev)

	m := st.met
	if m == nil {
		return
	}
	target := st.ladder.Target()
	if rung == target {
		m.evalsHigh.Inc()
	} else {
		m.evalsLow.Inc()
	}
	m.evalsByRung[rung].Inc()
	m.costByRung[rung].Add(st.ladder.Cost(rung))
	if failed {
		m.evalsFailed.Inc()
	}
	if ob.Iter >= 0 {
		m.iterations.Inc()
	}
	if rung == target {
		m.cost.Add(1)
	} else {
		m.cost.Add(st.ladder.Cost(rung))
	}
	if rung == target && !failed {
		if _, be, feas := bestOf(st.high); feas {
			m.best.Set(be.Objective)
		}
	}
}

// degradeRank orders the ladder rungs from mild to severe so the iteration
// event can record the worst one taken.
func degradeRank(s DegradeStage) int {
	switch s {
	case DegradeWarmHypers:
		return 1
	case DegradeLowOnly:
		return 2
	case DegradeRandom:
		return 3
	}
	return 0
}

func (st *state) degrade(iter int, stage DegradeStage, output int, reason error) {
	msg := ""
	if reason != nil {
		msg = reason.Error()
	}
	st.res.Degradations = append(st.res.Degradations,
		Degradation{Iter: iter, Stage: stage, Output: output, Reason: msg})
	if st.met != nil {
		st.met.degrade[stage].Inc()
	}
	if ev := st.ev; ev != nil && ev.Iter == iter && degradeRank(stage) > degradeRank(DegradeStage(ev.Degrade)) {
		ev.Degrade = string(stage)
	}
}

// Optimize runs Algorithm 1 on p until the simulation budget is exhausted.
func Optimize(p problem.Problem, cfg Config, rng *rand.Rand) (*Result, error) {
	return OptimizeCtx(context.Background(), p, cfg, rng)
}

// OptimizeCtx is the context-aware Optimize: cancelling ctx stops the run
// gracefully after the in-flight simulation, returning the partial result
// with Interrupted set. It is a thin driver over the ask/tell Engine — the
// loop asks for the next query, evaluates it on p, and tells the outcome
// back; external evaluators can run the identical trajectory through
// Engine (or the service layers in internal/session and internal/server)
// directly.
func OptimizeCtx(ctx context.Context, p problem.Problem, cfg Config, rng *rand.Rand) (*Result, error) {
	eng, err := NewEngine(p, cfg, rng)
	if err != nil {
		return nil, err
	}
	return eng.drive(ctx)
}

// fitSurrogates builds the per-output low and fused models, walking the
// degradation ladder on failure. ok=false means not even the low-fidelity
// surrogates are usable and the iteration must fall back to random
// exploration. fused[k] may be nil (low-fidelity-only mode for output k).
func (st *state) fitSurrogates(iter int, fullRefit bool, span *telemetry.Span) (lowGPs []*gp.Model, fused []*mfgp.Model, ok bool) {
	cfg := &st.cfg
	lowX, lowYs := st.low.window(cfg.MaxLowData)
	lowGPs = make([]*gp.Model, st.nOut)
	fused = make([]*mfgp.Model, st.nOut)
	for k := 0; k < st.nOut; k++ {
		lm, err := gp.Fit(lowX, lowYs.column(k), gp.Config{
			Kernel:       kernel.NewSEARD(st.d),
			Restarts:     cfg.GPRestarts,
			MaxIter:      cfg.GPMaxIter,
			FixedNoise:   cfg.FixedNoise,
			WarmStart:    st.warmLow[k],
			SkipTraining: !fullRefit && st.warmLow[k] != nil,
			Inducing:     cfg.LowRankAfter,
			Workers:      cfg.Workers,
			Span:         span,
		}, st.rng)
		if err != nil && st.warmLow[k] != nil {
			// Rung 1: freeze last iteration's hyperparameters.
			var err2 error
			lm, err2 = gp.Fit(lowX, lowYs.column(k), gp.Config{
				Kernel:       kernel.NewSEARD(st.d),
				Restarts:     cfg.GPRestarts,
				MaxIter:      cfg.GPMaxIter,
				FixedNoise:   cfg.FixedNoise,
				WarmStart:    st.warmLow[k],
				SkipTraining: true,
				Inducing:     cfg.LowRankAfter,
				Workers:      cfg.Workers,
				Span:         span,
			}, st.rng)
			if err2 == nil {
				st.degrade(iter, DegradeWarmHypers, k, fmt.Errorf("low fit: %w", err))
				err = nil
			}
		}
		if err != nil {
			// Rung 3: no usable low model for this output — the whole
			// iteration explores randomly.
			st.degrade(iter, DegradeRandom, k, fmt.Errorf("low fit: %w", err))
			return nil, nil, false
		}
		st.warmLow[k] = lm.Hyper()
		lowGPs[k] = lm
		st.noteFit(iter, lm, false)

		fm, err := mfgp.FitWithLow(lm, st.d, st.high.X, st.high.column(k), mfgp.Config{
			Restarts:      cfg.GPRestarts,
			MaxIter:       cfg.GPMaxIter,
			FixedNoise:    cfg.FixedNoise,
			Propagation:   cfg.Propagation,
			NumSamples:    cfg.NumSamples,
			WarmStartHigh: st.warmHigh[k],
			Inducing:      cfg.LowRankAfter,
			Workers:       cfg.Workers,
			Span:          span,
		}, st.rng)
		if err != nil && st.warmHigh[k] != nil {
			// Rung 1 for the fused level.
			var err2 error
			fm, err2 = mfgp.FitWithLow(lm, st.d, st.high.X, st.high.column(k), mfgp.Config{
				Restarts:      cfg.GPRestarts,
				MaxIter:       cfg.GPMaxIter,
				FixedNoise:    cfg.FixedNoise,
				Propagation:   cfg.Propagation,
				NumSamples:    cfg.NumSamples,
				WarmStartHigh: st.warmHigh[k],
				SkipTraining:  true,
				Inducing:      cfg.LowRankAfter,
				Workers:       cfg.Workers,
				Span:          span,
			}, st.rng)
			if err2 == nil {
				st.degrade(iter, DegradeWarmHypers, k, fmt.Errorf("fusion fit: %w", err))
				err = nil
			}
		}
		if err != nil {
			// Rung 2: run this output on the low-fidelity surrogate only.
			st.degrade(iter, DegradeLowOnly, k, fmt.Errorf("fusion fit: %w", err))
			fused[k] = nil
			continue
		}
		st.warmHigh[k] = fm.High().Hyper()
		fused[k] = fm
		st.noteFit(iter, fm.High(), true)
	}
	return lowGPs, fused, true
}

// noteFit records one fitted model's NLML and restart bookkeeping into the
// in-flight iteration event and the fit counters. No-op when telemetry is
// off; it only reads values the fit already computed.
func (st *state) noteFit(iter int, m *gp.Model, fusedHigh bool) {
	if st.telem == nil {
		return
	}
	info := m.FitInfo()
	if ev := st.ev; ev != nil && ev.Iter == iter {
		if fusedHigh {
			ev.NLMLHigh = append(ev.NLMLHigh, m.NLML())
		} else {
			ev.NLMLLow = append(ev.NLMLLow, m.NLML())
		}
		ev.FitRestarts += info.Restarts
		ev.FitDiverged += info.Diverged
	}
	if st.met != nil {
		st.met.fitRestarts.Add(uint64(info.Restarts))
		st.met.fitDiverged.Add(uint64(info.Diverged))
	}
}

// propose computes the next adaptive query — the body of one Algorithm 1
// iteration up to (but excluding) the simulation itself: fit the surrogates
// (walking the degradation ladder on failure), maximize the low- and
// high-fidelity acquisitions with the §4.1 multiple-starting-point strategy,
// and pick the evaluation fidelity by the §3.4 criterion.
//
// iter labels the slot being proposed (it may run ahead of st.iter while a
// batch is outstanding). When wantFantasy is set the third return value
// carries the synthetic outputs (per Config.Fantasy) that stand in for the
// point's observation while later batch slots are proposed; it is nil for a
// random-exploration fallback, where no surrogate exists to fantasize from.
func (st *state) propose(iter int, span *telemetry.Span, wantFantasy bool) ([]float64, problem.Fidelity, []float64) {
	if st.ladder.Rungs() > 2 {
		// K>2 fidelity ladders run the generalized recursive-surrogate path
		// (ladder.go); K=2 stays on this code path untouched, so classic
		// two-fidelity trajectories are bit-identical to every prior release.
		return st.proposeLadder(iter, span, wantFantasy)
	}
	cfg := &st.cfg
	var ev *telemetry.IterationEvent
	if st.telem != nil {
		// The in-flight event: decision fields are filled here, the outcome
		// fields when the observation is told back (observeTelemetry).
		ev = &telemetry.IterationEvent{Iter: iter, Nc: st.nc, Gamma: cfg.Gamma}
		st.ev = ev
	}
	var tFit time.Time
	if ev != nil {
		tFit = time.Now()
	}
	var lowGPs []*gp.Model
	var fused []*mfgp.Model
	var ok bool
	if cfg.Incremental {
		var skipped bool
		lowGPs, fused, ok, skipped = st.incrementalSurrogates(iter, span)
		if ev != nil {
			ev.FitSkipped = skipped
			ev.SinceRefit = st.sinceRefit
		}
	} else {
		fullRefit := iter%cfg.RefitEvery == 0
		lowGPs, fused, ok = st.fitSurrogates(iter, fullRefit, span)
	}
	if ev != nil {
		if ok && lowGPs[0].IsLowRank() {
			ev.LowRank = true
		}
		d := time.Since(tFit)
		ev.FitMs = float64(d.Nanoseconds()) / 1e6
		if st.met != nil {
			st.met.fitSeconds.Observe(d.Seconds())
		}
	}
	if !ok {
		// Random exploration keeps the budget moving while the training
		// sets recover (e.g. after a burst of failed evaluations).
		xt := stats.UniformInBox(st.rng, st.lo, st.hi, 1)[0]
		fid := problem.Low
		if cfg.ForceHighFidelity {
			fid = problem.High
		}
		if ev != nil {
			ev.Fidelity = fid.String()
			ev.ForcedHigh = cfg.ForceHighFidelity
		}
		return xt, fid, nil
	}

	// Incumbents.
	tauLowX, tauLowEval, hasLowFeasible := bestOf(st.low)
	tauHighX, tauHighEval, hasHighFeasible := bestOf(st.high)
	if ev != nil {
		if hasLowFeasible {
			ev.HasTauLow = true
			ev.TauLow = tauLowEval.Objective
		}
		if hasHighFeasible {
			ev.HasTauHigh = true
			ev.TauHigh = tauHighEval.Objective
		}
	}

	// Posterior adapters. A nil fused[k] (low-only degradation) aliases
	// the low-fidelity posterior.
	nc := st.nc
	lowObj := func(x []float64) (float64, float64) { return lowGPs[0].PredictLatent(x) }
	lowCons := make([]acq.Posterior, nc)
	for i := 0; i < nc; i++ {
		m := lowGPs[1+i]
		lowCons[i] = func(x []float64) (float64, float64) { return m.PredictLatent(x) }
	}
	fusedObj := lowObj
	if fused[0] != nil {
		m := fused[0]
		fusedObj = func(x []float64) (float64, float64) { return m.Predict(x) }
	}
	fusedCons := make([]acq.Posterior, nc)
	for i := 0; i < nc; i++ {
		if fused[1+i] != nil {
			m := fused[1+i]
			fusedCons[i] = func(x []float64) (float64, float64) { return m.Predict(x) }
		} else {
			fusedCons[i] = lowCons[i]
		}
	}

	mspCfg := cfg.MSP
	var incHigh, incLow []float64
	if !cfg.DisableIncumbentSeeding {
		if hasHighFeasible {
			incHigh = tauHighX
		}
		if hasLowFeasible {
			incLow = tauLowX
		}
	}

	// Step 5: low-fidelity acquisition → x*_l.
	var acqLow func([]float64) float64
	bootstrapLow := false
	switch {
	case hasLowFeasible:
		acqLow = acq.WEI(lowObj, lowCons, tauLowEval.Objective)
	case nc > 0:
		fo := acq.FeasibilityObjective(lowCons)
		acqLow = func(x []float64) float64 { return -fo(x) }
		bootstrapLow = true
	default:
		acqLow = acq.WEI(lowObj, nil, math.Inf(1))
	}
	var tAcq time.Time
	var mspLow, mspHigh optimize.MSPStats
	if ev != nil {
		tAcq = time.Now()
		mspCfg.Stats = &mspLow
		mspCfg.Span = span
	}
	xStarLow, acqLowVal := optimize.MaximizeMSP(st.rng, acqLow, st.box, incHigh, incLow, mspCfg)

	// Step 6: high-fidelity acquisition seeded with x*_l.
	var acqHigh func([]float64) float64
	bootstrap := false
	switch {
	case hasHighFeasible:
		acqHigh = acq.WEI(fusedObj, fusedCons, tauHighEval.Objective)
	case nc > 0:
		// §4.2: no feasible point yet — chase predicted feasibility.
		fo := acq.FeasibilityObjective(fusedCons)
		acqHigh = func(x []float64) float64 { return -fo(x) }
		bootstrap = true
	default:
		acqHigh = acq.WEI(fusedObj, nil, math.Inf(1))
	}
	mspCfg.Extra = append(append([][]float64(nil), cfg.MSP.Extra...), xStarLow)
	if ev != nil {
		mspCfg.Stats = &mspHigh
	}
	xt, acqHighVal := optimize.MaximizeMSP(st.rng, acqHigh, st.box, incHigh, incLow, mspCfg)
	if ev != nil {
		d := time.Since(tAcq)
		ev.AcqMs = float64(d.Nanoseconds()) / 1e6
		if st.met != nil {
			st.met.acqSeconds.Observe(d.Seconds())
		}
		ev.AcqLow = acqLowVal
		ev.AcqHigh = acqHighVal
		ev.Bootstrap = bootstrap
		ev.BootstrapLow = bootstrapLow
		ev.MSPStartsLow = mspLow.Starts
		ev.MSPDivergedLow = mspLow.Diverged
		ev.MSPStartsHigh = mspHigh.Starts
		ev.MSPDivergedHigh = mspHigh.Diverged
	}

	// Degenerate-query guard: re-sampling an existing point adds no
	// information; fall back to a random exploration point.
	dec := cfg.selectFidelity(lowGPs, xt, nc)
	if isDuplicate(xt, st.low, st.high, dec.fid) {
		xt = stats.UniformInBox(st.rng, st.lo, st.hi, 1)[0]
		dec = cfg.selectFidelity(lowGPs, xt, nc)
		if ev != nil {
			ev.DuplicateFallback = true
		}
	}
	if ev != nil {
		// §3.4 decision record: the final comparison that chose the fidelity.
		ev.Fidelity = dec.fid.String()
		ev.Sigma2Max = dec.sigma2Max
		ev.Threshold = dec.threshold
		ev.HasSigma2 = dec.hasSigma2
		ev.ForcedHigh = dec.forced
	}
	var fantasy []float64
	if wantFantasy {
		fantasy = st.fantasize(lowGPs, fused, xt, dec.fid)
	}
	return xt, dec.fid, fantasy
}

// fantasize produces the synthetic per-output observation batch acquisition
// substitutes for xt while its real outcome is outstanding (Config.Fantasy).
//
// Kriging-believer returns the posterior mean at xt from the model the next
// slot will actually train against: the fused NARGP posterior for a
// high-fidelity pending point (falling back to the low posterior when that
// output degraded to low-only), the low-fidelity posterior for a cheap one.
// Constant-liar returns, per output, the maximum value observed so far at the
// target fidelity — the pessimistic lie under minimization — and falls back to
// the believer mean for outputs with no data yet.
func (st *state) fantasize(lowGPs []*gp.Model, fused []*mfgp.Model, xt []float64, fid problem.Fidelity) []float64 {
	out := make([]float64, st.nOut)
	believe := func(k int) float64 {
		if fid == problem.High && fused[k] != nil {
			mu, _ := fused[k].Predict(xt)
			return mu
		}
		mu, _ := lowGPs[k].PredictLatent(xt)
		return mu
	}
	switch st.cfg.Fantasy {
	case FantasyConstantLiar:
		ds := st.low
		if fid == problem.High {
			ds = st.high
		}
		for k := 0; k < st.nOut; k++ {
			if len(ds.Y) == 0 {
				out[k] = believe(k)
				continue
			}
			lie := ds.Y[0][k]
			for _, row := range ds.Y[1:] {
				if row[k] > lie {
					lie = row[k]
				}
			}
			out[k] = lie
		}
	default: // FantasyKrigingBeliever
		for k := 0; k < st.nOut; k++ {
			out[k] = believe(k)
		}
	}
	return out
}

// finish assembles the terminal Result fields from the current state.
func (st *state) finish(context.Context) *Result {
	res := st.res
	if bx, be, feas := bestOf(st.high); bx != nil {
		res.BestX = bx
		res.Best = be
		res.Feasible = feas
	}
	res.EquivalentSims = st.cost
	if fp, ok := st.p.(interface{ Faults() *robust.FaultLog }); ok {
		res.Faults = fp.Faults().Snapshot()
	}
	return res
}

// fidelityDecision is the outcome of one §3.4 fidelity selection, with the
// comparison values behind it (for telemetry). hasSigma2 is false when the
// variance comparison was skipped (ForceHighFidelity ablation).
type fidelityDecision struct {
	fid       problem.Fidelity
	sigma2Max float64 // max standardized low-fidelity posterior variance at x
	threshold float64 // (1+Nc)·γ
	hasSigma2 bool
	forced    bool
}

// selectFidelity applies the §3.4 criterion (eqs. 11–12): evaluate at HIGH
// fidelity when every low-fidelity posterior variance (standardized) is
// below (1+Nc)·γ — i.e. when more cheap data would not improve the
// low-fidelity models around xt.
func (c *Config) selectFidelity(lowGPs []*gp.Model, x []float64, nc int) fidelityDecision {
	if c.ForceHighFidelity {
		return fidelityDecision{fid: problem.High, forced: true}
	}
	maxVar := 0.0
	for _, m := range lowGPs {
		_, va := m.PredictLatent(x)
		std := m.OutputStd()
		if v := va / (std * std); v > maxVar {
			maxVar = v
		}
	}
	threshold := (1 + float64(nc)) * c.Gamma
	fid := problem.Low
	if maxVar < threshold {
		fid = problem.High
	}
	return fidelityDecision{fid: fid, sigma2Max: maxVar, threshold: threshold, hasSigma2: true}
}

// bestOf returns the best observation of a dataset under the constrained
// ordering (feasible-first). The boolean reports whether it is feasible.
func bestOf(d *dataset) ([]float64, problem.Evaluation, bool) {
	if len(d.X) == 0 {
		return nil, problem.Evaluation{}, false
	}
	bi := 0
	be := rowEval(d.Y[0])
	for i := 1; i < len(d.X); i++ {
		e := rowEval(d.Y[i])
		if problem.Better(e, be) {
			bi, be = i, e
		}
	}
	return d.X[bi], be, be.Feasible()
}

func rowEval(row []float64) problem.Evaluation {
	return problem.Evaluation{Objective: row[0], Constraints: row[1:]}
}

// isDuplicate reports whether xt coincides (to numerical precision) with a
// point already evaluated at the target fidelity.
func isDuplicate(xt []float64, low, high *dataset, fid problem.Fidelity) bool {
	ds := low
	if fid == problem.High {
		ds = high
	}
	for _, x := range ds.X {
		d2 := 0.0
		for j := range x {
			dd := x[j] - xt[j]
			d2 += dd * dd
		}
		if d2 < 1e-16 {
			return true
		}
	}
	return false
}

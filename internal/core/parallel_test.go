package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/testfunc"
)

// historiesIdentical compares two run histories bitwise: same fidelity
// schedule, same evaluated points, same outcomes.
func historiesIdentical(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.History) != len(b.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		oa, ob := a.History[i], b.History[i]
		if oa.Fid != ob.Fid {
			t.Fatalf("obs %d: fidelity %s vs %s", i, oa.Fid, ob.Fid)
		}
		for j := range oa.X {
			if math.Float64bits(oa.X[j]) != math.Float64bits(ob.X[j]) {
				t.Fatalf("obs %d: x[%d] differs: %v vs %v", i, j, oa.X[j], ob.X[j])
			}
		}
		if math.Float64bits(oa.Eval.Objective) != math.Float64bits(ob.Eval.Objective) {
			t.Fatalf("obs %d: objective differs: %v vs %v", i, oa.Eval.Objective, ob.Eval.Objective)
		}
	}
	if math.Float64bits(a.Best.Objective) != math.Float64bits(b.Best.Objective) {
		t.Fatalf("best objective differs: %v vs %v", a.Best.Objective, b.Best.Objective)
	}
}

// TestOptimizeParallelWorkersBitIdentical is the end-to-end determinism
// guarantee: the full BO trajectory — every evaluated point, fidelity choice
// and the final best — is bit-identical whether the hot paths run serially or
// on 8 workers.
func TestOptimizeParallelWorkersBitIdentical(t *testing.T) {
	run := func(workers int) *Result {
		cfg := fastCfg(8)
		cfg.Workers = workers
		rng := rand.New(rand.NewSource(17))
		res, err := Optimize(testfunc.Forrester(), cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	historiesIdentical(t, run(1), run(8))
}

// TestChaosWithParallelWorkers exercises the interaction between the fault
// runtime of the robustness layer and the parallel hot paths: with injected
// low-fidelity failures and panics, the degraded-mode ladder must still
// produce the same trajectory for every worker count, and the run must
// complete its budget under the race detector.
func TestChaosWithParallelWorkers(t *testing.T) {
	const failRate = 0.15
	run := func(workers int) *Result {
		sp := chaoticProblem(testfunc.Forrester(), failRate, 3)
		cfg := fastCfg(8)
		cfg.Workers = workers
		rng := rand.New(rand.NewSource(5))
		res, err := OptimizeCtx(context.Background(), sp, cfg, rng)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.BestX == nil || math.IsNaN(res.Best.Objective) {
			t.Fatalf("workers=%d: no usable best", workers)
		}
		return res
	}
	r1 := run(1)
	r8 := run(8)
	historiesIdentical(t, r1, r8)
	if r1.Faults == nil || r8.Faults == nil {
		t.Fatal("fault log not populated")
	}
}

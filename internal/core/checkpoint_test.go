package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/testfunc"
)

// captureCheckpoints runs an optimization collecting every snapshot.
func captureCheckpoints(t *testing.T, budget float64, seed int64) (*Result, []*Checkpoint) {
	t.Helper()
	var cks []*Checkpoint
	cfg := fastCfg(budget)
	cfg.Checkpointer = func(ck *Checkpoint) error {
		cks = append(cks, ck)
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	res, err := Optimize(testfunc.ConstrainedSynthetic(), cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) == 0 {
		t.Fatal("no checkpoints captured")
	}
	return res, cks
}

func TestCheckpointRoundTripByteIdentical(t *testing.T) {
	_, cks := captureCheckpoints(t, 8, 21)
	ck := cks[len(cks)/2]
	data, err := ck.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("checkpoint JSON round-trip is not byte-identical")
	}
}

func TestCheckpointFilePersistence(t *testing.T) {
	_, cks := captureCheckpoints(t, 6, 22)
	ck := cks[len(cks)-1]
	path := filepath.Join(t.TempDir(), "run.ckpt.json")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, back) {
		t.Fatal("loaded checkpoint differs from saved one")
	}
	// FileCheckpointer overwrites atomically.
	hook := FileCheckpointer(path)
	if err := hook(cks[0]); err != nil {
		t.Fatal(err)
	}
	first, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if first.Iter != cks[0].Iter {
		t.Fatalf("overwrite lost data: iter %d, want %d", first.Iter, cks[0].Iter)
	}
}

func TestCheckpointerErrorAbortsRun(t *testing.T) {
	boom := errors.New("disk full")
	cfg := fastCfg(8)
	n := 0
	cfg.Checkpointer = func(*Checkpoint) error {
		n++
		if n >= 3 {
			return boom
		}
		return nil
	}
	rng := rand.New(rand.NewSource(23))
	res, err := Optimize(testfunc.Forrester(), cfg, rng)
	if !errors.Is(err, boom) {
		t.Fatalf("want checkpoint error, got %v", err)
	}
	if res == nil || len(res.History) == 0 {
		t.Fatal("partial result must accompany the checkpoint error")
	}
}

// killAndResume cancels a run after nIter adaptive iterations, then resumes
// from the last snapshot.
func TestKillMidFlightAndResume(t *testing.T) {
	p := testfunc.ConstrainedSynthetic()
	const budget = 8.0
	cfg := fastCfg(budget)

	// Reference: uninterrupted run (same seed) for sanity.
	refRng := rand.New(rand.NewSource(31))
	ref, err := Optimize(p, cfg, refRng)
	if err != nil {
		t.Fatal(err)
	}

	// Killed run: cancel after the 3rd adaptive iteration's checkpoint.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *Checkpoint
	kcfg := cfg
	kcfg.Checkpointer = func(ck *Checkpoint) error {
		last = ck
		if ck.Iter >= 3 {
			cancel() // "kill" the run mid-flight
		}
		return nil
	}
	killRng := rand.New(rand.NewSource(31))
	killed, err := OptimizeCtx(ctx, p, kcfg, killRng)
	if err != nil {
		t.Fatal(err)
	}
	if !killed.Interrupted {
		t.Fatal("cancelled run must report Interrupted")
	}
	if last == nil || last.Iter < 3 {
		t.Fatalf("no usable snapshot captured: %+v", last)
	}
	if killed.EquivalentSims >= budget {
		t.Fatal("killed run must stop before exhausting the budget")
	}

	// Serialize/deserialize the snapshot as a real crash-recovery would.
	data, err := last.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}

	resume := func(seed int64) *Result {
		r, err := Resume(context.Background(), p, cfg, rand.New(rand.NewSource(seed)), snap)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	resumed := resume(77)

	// The resumed history must extend the snapshot's history exactly: same
	// length prefix, byte-identical entries.
	if len(resumed.History) <= len(snap.History) {
		t.Fatalf("resume did not continue: %d <= %d observations", len(resumed.History), len(snap.History))
	}
	if !reflect.DeepEqual(resumed.History[:len(snap.History)], snap.History) {
		t.Fatal("resumed history prefix differs from the checkpoint history")
	}
	// Budget accounting continues seamlessly.
	if resumed.EquivalentSims < budget-1 || resumed.EquivalentSims > budget+1 {
		t.Fatalf("resumed run spent %.2f sims, budget %v", resumed.EquivalentSims, budget)
	}
	if resumed.Interrupted {
		t.Fatal("completed resume must not be Interrupted")
	}
	if resumed.BestX == nil {
		t.Fatal("resumed run must report a best point")
	}
	// Resuming twice with the same seed is fully deterministic — identical
	// history lengths and identical outcomes.
	again := resume(77)
	if len(again.History) != len(resumed.History) {
		t.Fatalf("resume not deterministic: %d vs %d observations", len(again.History), len(resumed.History))
	}
	if again.Best.Objective != resumed.Best.Objective {
		t.Fatal("resume not deterministic in outcome")
	}
	// And the resumed run is in the same ballpark as the uninterrupted one.
	if resumed.Feasible != ref.Feasible && !resumed.Feasible {
		t.Fatalf("resumed run lost feasibility (ref %v)", ref.Feasible)
	}
}

func TestResumeValidation(t *testing.T) {
	_, cks := captureCheckpoints(t, 6, 41)
	ck := cks[len(cks)-1]
	rng := rand.New(rand.NewSource(1))

	// Wrong problem.
	if _, err := Resume(context.Background(), testfunc.Forrester(), fastCfg(6), rng, ck); !errors.Is(err, ErrResumeMismatch) {
		t.Fatalf("resume must reject a mismatched problem with ErrResumeMismatch, got %v", err)
	}
	// Wrong budget.
	if _, err := Resume(context.Background(), testfunc.ConstrainedSynthetic(), fastCfg(99), rng, ck); !errors.Is(err, ErrResumeMismatch) {
		t.Fatalf("resume must reject a mismatched budget with ErrResumeMismatch, got %v", err)
	}
	// Wrong version.
	bad := *ck
	bad.Version = 999
	if _, err := Resume(context.Background(), testfunc.ConstrainedSynthetic(), fastCfg(6), rng, &bad); !errors.Is(err, ErrResumeMismatch) {
		t.Fatalf("resume must reject an unknown version with ErrResumeMismatch, got %v", err)
	}
}

package dispatch

import (
	"fmt"
	"strings"
)

// leaseID builds a lease identifier that embeds the session it belongs to:
// "l<seq>.<sessionID>.<sugID>". The '.' separator cannot appear in session
// IDs (the server restricts them to [A-Za-z0-9_-]) or suggestion IDs
// ("iter-3", "init-low-0"), so the session is recoverable from the opaque
// token — which is what lets a sharding gateway route a bare
// POST /v1/leases/{id}/heartbeat to the replica owning the session.
func leaseID(seq uint64, sessionID, sugID string) string {
	return fmt.Sprintf("l%d.%s.%s", seq, sessionID, sugID)
}

// SessionOfLease recovers the session ID a lease identifier was minted for
// (false for malformed or foreign tokens, in which case a router must fall
// back to broadcasting the heartbeat). Inverse of the grant's ID scheme;
// workers still treat lease IDs as opaque.
func SessionOfLease(id string) (string, bool) {
	if !strings.HasPrefix(id, "l") {
		return "", false
	}
	first := strings.IndexByte(id, '.')
	last := strings.LastIndexByte(id, '.')
	if first < 0 || last <= first+1 {
		return "", false
	}
	return id[first+1 : last], true
}

// Package dispatch implements the lease-based work queue that fans a
// session's outstanding suggestions out to a fleet of evaluation workers —
// the coordination layer between the batch ask/tell engine (core.AskBatch /
// core.Engine.TellByID, surfaced through internal/session) and the
// mfbo-worker daemons evaluating circuits on remote machines.
//
// # Lease state machine
//
// Every outstanding suggestion of a session moves through:
//
//	pending ──Lease──▶ leased ──Report──▶ observed (told to the engine)
//	   ▲                  │
//	   └────expiry────────┘   (attempt++, requeued; after Config.MaxAttempts
//	                           expiries the suggestion is told as Failed)
//
// A worker holding a lease must heartbeat before the TTL elapses; a missed
// heartbeat (worker crash, network partition, OOM-killed SPICE job) expires
// the lease and the suggestion becomes leasable again — by a different
// worker, with the attempt counter bumped. A report for an expired lease is
// still accepted when the suggestion is outstanding (late work is real work);
// when the requeued evaluation already reported from another worker, the
// duplicate is discarded and acknowledged as such.
//
// # Durability
//
// The queue itself is deliberately memory-only: the ground truth of "which
// evaluations are outstanding" is the engine's pending set, which rides in
// every session checkpoint (core.Checkpoint.Pending). After a server restart
// the restored sessions replay their pending suggestions verbatim and the
// queue re-leases them on demand; workers whose leases vanished in the
// restart simply see lease_expired on their next heartbeat/report and move
// on. No separate queue journal can drift out of sync with the optimizer
// state, because there is none.
//
// Sessions are resolved lazily through Config.Resolve on every operation, so
// the queue never holds a stale *session.Session across the server's
// idle-eviction / lazy-restore cycle.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/problem"
	"repro/internal/session"
	"repro/internal/telemetry"
)

// Typed sentinel errors; classify with errors.Is.
var (
	// ErrNoWork reports that every outstanding suggestion of the session is
	// already leased (or the session is waiting on other workers' results
	// before it can propose more). The worker should retry after a delay.
	ErrNoWork = errors.New("dispatch: no work available, retry later")

	// ErrLeaseExpired rejects a heartbeat or report whose lease is unknown:
	// it expired and was requeued, the suggestion completed elsewhere, or the
	// server restarted. The worker should drop the unit and lease afresh.
	ErrLeaseExpired = errors.New("dispatch: lease expired or unknown")
)

// Config tunes a Queue. The zero value of every field selects a sensible
// default; Resolve is required.
type Config struct {
	// Resolve maps a session ID to its live session — required. The server
	// passes its lazy-restoring lookup so evicted sessions come back from
	// their checkpoints transparently.
	Resolve func(sessionID string) (*session.Session, error)
	// MaxInFlight bounds the concurrently-outstanding suggestions per
	// session — the AskBatch width and therefore the backpressure limit on
	// how many workers one session feeds (default 4).
	MaxInFlight int
	// LeaseTTL is the default lease duration (default 30s); a worker may
	// request a different TTL per lease, capped at MaxTTL (default 10m).
	LeaseTTL time.Duration
	MaxTTL   time.Duration
	// MaxAttempts is the number of lease expiries after which a suggestion
	// is abandoned and told to the engine as a Failed evaluation (charged,
	// excluded from training) instead of being requeued forever (default 3).
	MaxAttempts int
	// RetryAfter is the poll-again hint returned with ErrNoWork (default 1s).
	RetryAfter time.Duration
	// ScanEvery is the janitor period for expiring dead leases (default 1s);
	// negative disables the background janitor (tests drive Scan directly).
	ScanEvery time.Duration
	// Now is the clock (default time.Now; tests inject a fake).
	Now func() time.Time
	// Telemetry, when non-nil, registers the mfbo_dispatch_* metrics on its
	// registry.
	Telemetry *telemetry.Recorder
}

func (c *Config) defaults() error {
	if c.Resolve == nil {
		return errors.New("dispatch: Config.Resolve is required")
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 10 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.ScanEvery == 0 {
		// An embedded queue without an explicit period still needs the
		// janitor: without it a crashed worker's lease would never expire.
		c.ScanEvery = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return nil
}

// Grant is one successfully leased evaluation.
type Grant struct {
	// LeaseID names the lease for heartbeats and the report.
	LeaseID string
	// SessionID echoes the session the work belongs to.
	SessionID string
	// Suggestion is the query to evaluate (ID, point, fidelity, iteration).
	Suggestion core.Suggestion
	// Attempt counts prior leases of this suggestion that expired.
	Attempt int
	// Deadline is the lease expiry; Heartbeat extends it.
	Deadline time.Time
}

// Ack acknowledges a report.
type Ack struct {
	// Duplicate reports that the suggestion's observation had already been
	// ingested (requeued evaluation reported twice); the report was
	// discarded. Not an error.
	Duplicate bool
}

// lease is the queue's record of one granted lease.
type lease struct {
	id        string
	sessionID string
	sugID     string
	worker    string
	ttl       time.Duration
	granted   time.Time
	deadline  time.Time
	attempt   int
}

// metrics caches the queue's metric handles (nil when telemetry is off).
type metrics struct {
	granted    *telemetry.Counter
	expired    *telemetry.Counter
	requeued   *telemetry.Counter
	failed     *telemetry.Counter
	heartbeats *telemetry.Counter
	reportOK   *telemetry.Counter
	reportDup  *telemetry.Counter
	reportLate *telemetry.Counter
	leaseAge   *telemetry.Histogram
}

// Queue is the lease-based dispatch queue. It is safe for concurrent use.
type Queue struct {
	cfg Config
	met *metrics

	mu       sync.Mutex
	leases   map[string]*lease // by lease ID
	bySug    map[string]string // session/suggestion key → lease ID
	attempts map[string]int    // session/suggestion key → expired-lease count
	depth    map[string]int    // session ID → outstanding suggestions at last look
	seq      uint64            // lease ID sequence
	// Acked idempotency keys (session/key → true) with FIFO eviction, so a
	// worker retrying a report whose ack was lost in transit gets a clean
	// Duplicate ack instead of a confusing lease/suggestion error. Keys are
	// recorded only once an ack was actually produced — a report that failed
	// server-side stays retriable.
	acked      map[string]bool
	ackedOrder []string

	stop chan struct{}
	done sync.WaitGroup
}

// New builds a queue and, when cfg.ScanEvery > 0, starts its expiry janitor
// (stop it with Close).
func New(cfg Config) (*Queue, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	q := &Queue{
		cfg:      cfg,
		leases:   make(map[string]*lease),
		bySug:    make(map[string]string),
		attempts: make(map[string]int),
		depth:    make(map[string]int),
		acked:    make(map[string]bool),
		stop:     make(chan struct{}),
	}
	if cfg.Telemetry != nil && cfg.Telemetry.Metrics != nil {
		reg := cfg.Telemetry.Metrics
		q.met = &metrics{
			granted:    reg.Counter("mfbo_dispatch_leases_granted_total", "evaluation leases handed to workers"),
			expired:    reg.Counter("mfbo_dispatch_leases_expired_total", "leases expired by missed heartbeats"),
			requeued:   reg.Counter("mfbo_dispatch_requeues_total", "expired evaluations made leasable again"),
			failed:     reg.Counter("mfbo_dispatch_suggestions_failed_total", "evaluations abandoned after exhausting lease attempts"),
			heartbeats: reg.Counter("mfbo_dispatch_heartbeats_total", "lease heartbeats accepted"),
			reportOK:   reg.Counter("mfbo_dispatch_reports_total", "evaluation reports by outcome", "outcome", "ok"),
			reportDup:  reg.Counter("mfbo_dispatch_reports_total", "evaluation reports by outcome", "outcome", "duplicate"),
			reportLate: reg.Counter("mfbo_dispatch_reports_total", "evaluation reports by outcome", "outcome", "late"),
			leaseAge:   reg.Histogram("mfbo_dispatch_lease_age_seconds", "lease hold time at report", nil),
		}
		reg.GaugeFunc("mfbo_dispatch_leases_active", "leases currently held by workers", func() float64 {
			q.mu.Lock()
			defer q.mu.Unlock()
			return float64(len(q.leases))
		})
		reg.GaugeFunc("mfbo_dispatch_queue_depth", "outstanding suggestions across sessions known to the queue", func() float64 {
			q.mu.Lock()
			defer q.mu.Unlock()
			n := 0
			for _, d := range q.depth {
				n += d
			}
			return float64(n)
		})
	}
	if cfg.ScanEvery > 0 {
		q.done.Add(1)
		go q.janitor()
	}
	return q, nil
}

// Close stops the expiry janitor. Leases and attempt counters are dropped
// with the process; see the package comment for why that is safe.
func (q *Queue) Close() {
	select {
	case <-q.stop:
	default:
		close(q.stop)
	}
	q.done.Wait()
}

func (q *Queue) janitor() {
	defer q.done.Done()
	t := time.NewTicker(q.cfg.ScanEvery)
	defer t.Stop()
	for {
		select {
		case <-q.stop:
			return
		case <-t.C:
			q.Scan(q.cfg.Now())
		}
	}
}

func sugKey(sessionID, sugID string) string { return sessionID + "/" + sugID }

// Lease asks the session for its outstanding batch (topping it up to width
// suggestions — this is where fantasy-augmented proposals happen) and grants
// the oldest suggestion not currently leased. width <= 0 selects
// Config.MaxInFlight; larger values are capped by it (the queue-wide
// backpressure limit). ErrNoWork means every outstanding suggestion is taken;
// a terminal engine error (classify with errors.Is against
// core.ErrBudgetExhausted / core.ErrInterrupted) means the session is
// finished and the worker fleet can drain.
func (q *Queue) Lease(ctx context.Context, sessionID, worker string, ttl time.Duration, width int) (*Grant, error) {
	sess, err := q.cfg.Resolve(sessionID)
	if err != nil {
		return nil, err
	}
	if ttl <= 0 {
		ttl = q.cfg.LeaseTTL
	}
	if ttl > q.cfg.MaxTTL {
		ttl = q.cfg.MaxTTL
	}
	if width <= 0 || width > q.cfg.MaxInFlight {
		width = q.cfg.MaxInFlight
	}
	// The batch top-up runs outside q.mu: surrogate fitting is slow and the
	// session serializes it internally. Concurrent Lease calls for one
	// session see the identical outstanding set and race only for the grant
	// below, under the lock.
	sugs, err := sess.AskBatch(ctx, width)
	if err != nil {
		return nil, err
	}
	now := q.cfg.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.depth[sessionID] = len(sugs)
	for i := range sugs {
		key := sugKey(sessionID, sugs[i].ID)
		if _, taken := q.bySug[key]; taken {
			continue
		}
		q.seq++
		l := &lease{
			id:        leaseID(q.seq, sessionID, sugs[i].ID),
			sessionID: sessionID,
			sugID:     sugs[i].ID,
			worker:    worker,
			ttl:       ttl,
			granted:   now,
			deadline:  now.Add(ttl),
			attempt:   q.attempts[key],
		}
		q.leases[l.id] = l
		q.bySug[key] = l.id
		if q.met != nil {
			q.met.granted.Inc()
		}
		return &Grant{
			LeaseID:    l.id,
			SessionID:  sessionID,
			Suggestion: sugs[i],
			Attempt:    l.attempt,
			Deadline:   l.deadline,
		}, nil
	}
	return nil, ErrNoWork
}

// Heartbeat extends a live lease by its TTL and returns the new deadline.
func (q *Queue) Heartbeat(leaseID string) (time.Time, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leases[leaseID]
	if !ok {
		return time.Time{}, fmt.Errorf("%w: %s", ErrLeaseExpired, leaseID)
	}
	l.deadline = q.cfg.Now().Add(l.ttl)
	if q.met != nil {
		q.met.heartbeats.Inc()
	}
	return l.deadline, nil
}

// maxAckedKeys bounds the idempotency cache; old keys are evicted FIFO. At
// one key per completed evaluation this covers thousands of reports — far
// beyond any plausible retry window.
const maxAckedKeys = 4096

// Report ingests the outcome of a leased evaluation into the session (via
// TellByID, so reports may arrive in any order within the batch) and releases
// the lease. A report whose lease already expired is still accepted while the
// suggestion is outstanding — the work is real even if the heartbeat died —
// and acknowledged as a Duplicate when another worker's result arrived first.
// A non-empty idemKey identifies the evaluation attempt: a retry of an
// already-acked report short-circuits to a Duplicate ack.
func (q *Queue) Report(sessionID, leaseID, sugID, idemKey string, ev problem.Evaluation) (*Ack, error) {
	return q.ReportCtx(context.Background(), sessionID, leaseID, sugID, idemKey, ev)
}

// ReportCtx is Report with a context: a request span carried by ctx
// attributes the Tell-side engine work (surrogate ingestion, checkpoint
// fsync) to the reporting worker's trace. Cancellation is not forwarded —
// an accepted report is always fully ingested.
func (q *Queue) ReportCtx(ctx context.Context, sessionID, leaseID, sugID, idemKey string, ev problem.Evaluation) (*Ack, error) {
	sess, err := q.cfg.Resolve(sessionID)
	if err != nil {
		return nil, err
	}
	key := sugKey(sessionID, sugID)
	now := q.cfg.Now()
	q.mu.Lock()
	if idemKey != "" && q.acked[sugKey(sessionID, idemKey)] {
		q.mu.Unlock()
		if q.met != nil {
			q.met.reportDup.Inc()
		}
		return &Ack{Duplicate: true}, nil
	}
	l, live := q.leases[leaseID]
	if live && (l.sessionID != sessionID || l.sugID != sugID) {
		q.mu.Unlock()
		return nil, fmt.Errorf("%w: lease %s does not cover suggestion %s", ErrLeaseExpired, leaseID, sugID)
	}
	if live {
		delete(q.leases, leaseID)
		if q.bySug[key] == leaseID {
			delete(q.bySug, key)
		}
	}
	q.mu.Unlock()

	if err := sess.TellByIDCtx(ctx, sugID, ev); err != nil {
		if errors.Is(err, core.ErrUnknownSuggestion) || errors.Is(err, core.ErrNoPendingAsk) {
			// The requeued evaluation already reported from elsewhere (or
			// the suggestion was abandoned as failed): discard.
			q.recordAck(sessionID, idemKey)
			if q.met != nil {
				q.met.reportDup.Inc()
			}
			return &Ack{Duplicate: true}, nil
		}
		return nil, err
	}
	q.mu.Lock()
	delete(q.attempts, key)
	if d := q.depth[sessionID]; d > 0 {
		q.depth[sessionID] = d - 1
	}
	q.mu.Unlock()
	q.recordAck(sessionID, idemKey)
	if q.met != nil {
		if live {
			q.met.reportOK.Inc()
			q.met.leaseAge.Observe(now.Sub(l.granted).Seconds())
		} else {
			q.met.reportLate.Inc()
		}
	}
	return &Ack{}, nil
}

// recordAck remembers an idempotency key once its report has been answered
// with an ack (real or duplicate) — errors never record, so retries after a
// server-side failure are re-processed. FIFO-bounded at maxAckedKeys.
func (q *Queue) recordAck(sessionID, idemKey string) {
	if idemKey == "" {
		return
	}
	k := sugKey(sessionID, idemKey)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.acked[k] {
		return
	}
	q.acked[k] = true
	q.ackedOrder = append(q.ackedOrder, k)
	if len(q.ackedOrder) > maxAckedKeys {
		delete(q.acked, q.ackedOrder[0])
		q.ackedOrder = q.ackedOrder[1:]
	}
}

// Scan expires leases whose deadline passed: the suggestion becomes leasable
// again with its attempt counter bumped, and after MaxAttempts expiries it is
// abandoned — told to the engine as a Failed evaluation so the optimizer
// charges it and moves on instead of waiting forever on a poisoned point.
// Returns the number of leases expired. The janitor calls this every
// ScanEvery; tests call it directly with a controlled clock.
func (q *Queue) Scan(now time.Time) int {
	type abandoned struct {
		sessionID, sugID string
	}
	var giveUp []abandoned
	q.mu.Lock()
	n := 0
	for id, l := range q.leases {
		if now.Before(l.deadline) {
			continue
		}
		n++
		key := sugKey(l.sessionID, l.sugID)
		delete(q.leases, id)
		if q.bySug[key] == id {
			delete(q.bySug, key)
		}
		q.attempts[key]++
		if q.met != nil {
			q.met.expired.Inc()
		}
		if q.attempts[key] >= q.cfg.MaxAttempts {
			giveUp = append(giveUp, abandoned{l.sessionID, l.sugID})
			if q.met != nil {
				q.met.failed.Inc()
			}
		} else if q.met != nil {
			q.met.requeued.Inc()
		}
	}
	q.mu.Unlock()
	for _, a := range giveUp {
		sess, err := q.cfg.Resolve(a.sessionID)
		if err != nil {
			continue // session gone; its checkpointed pending set is intact
		}
		nc := sess.Problem().NumConstraints()
		// ErrUnknownSuggestion here means a late report won the race — fine.
		_ = sess.TellByID(a.sugID, problem.PenaltyEvaluation(nc))
		q.mu.Lock()
		delete(q.attempts, sugKey(a.sessionID, a.sugID))
		if d := q.depth[a.sessionID]; d > 0 {
			q.depth[a.sessionID] = d - 1
		}
		q.mu.Unlock()
	}
	return n
}

// RetryAfter is the poll-again hint for ErrNoWork replies.
func (q *Queue) RetryAfter() time.Duration { return q.cfg.RetryAfter }

// Active returns the number of currently held leases.
func (q *Queue) Active() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.leases)
}

package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/problem"
	"repro/internal/session"
	"repro/internal/testfunc"
)

// fakeClock is a manually-advanced clock for driving lease expiry
// deterministically (the janitor is disabled via a negative ScanEvery and
// tests call Scan themselves).
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time                  { return c.now }
func (c *fakeClock) Advance(d time.Duration)         { c.now = c.now.Add(d) }
func (c *fakeClock) After(d time.Duration) time.Time { return c.now.Add(d) }

// newTestQueue builds a queue over one fresh session with a controllable
// clock. The session config keeps the initialization design large enough that
// every lease in these tests is a cheap design point — no GP fits.
func newTestQueue(t *testing.T, mut func(*Config)) (*Queue, *session.Session, *fakeClock) {
	t.Helper()
	sess, err := session.New(session.Config{
		Problem: testfunc.ConstrainedSynthetic(),
		Core: core.Config{
			Budget:    8,
			InitLow:   8,
			InitHigh:  4,
			MSP:       optimize.MSPConfig{Starts: 4, LocalIter: 15},
			GPMaxIter: 30,
		},
		Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{now: time.Unix(1000, 0)}
	cfg := Config{
		Resolve: func(id string) (*session.Session, error) {
			if id != "s1" {
				return nil, errors.New("unknown session")
			}
			return sess, nil
		},
		MaxInFlight: 3,
		LeaseTTL:    10 * time.Second,
		MaxAttempts: 3,
		ScanEvery:   -1, // tests drive Scan directly
		Now:         clock.Now,
	}
	if mut != nil {
		mut(&cfg)
	}
	q, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Close)
	return q, sess, clock
}

func mustLease(t *testing.T, q *Queue, worker string) *Grant {
	t.Helper()
	g, err := q.Lease(context.Background(), "s1", worker, 0, 0)
	if err != nil {
		t.Fatalf("Lease(%s): %v", worker, err)
	}
	return g
}

func TestLeaseGrantReportTopUp(t *testing.T) {
	q, sess, _ := newTestQueue(t, nil)
	p := sess.Problem()

	// MaxInFlight = 3: three grants, all distinct, then the queue is dry.
	g1, g2, g3 := mustLease(t, q, "w1"), mustLease(t, q, "w2"), mustLease(t, q, "w3")
	ids := map[string]bool{g1.Suggestion.ID: true, g2.Suggestion.ID: true, g3.Suggestion.ID: true}
	if len(ids) != 3 {
		t.Fatalf("grants not distinct: %s %s %s", g1.Suggestion.ID, g2.Suggestion.ID, g3.Suggestion.ID)
	}
	if g1.Suggestion.ID != "init-low-0" {
		t.Fatalf("first grant %q, want the oldest pending suggestion init-low-0", g1.Suggestion.ID)
	}
	if _, err := q.Lease(context.Background(), "s1", "w4", 0, 0); !errors.Is(err, ErrNoWork) {
		t.Fatalf("4th lease: got %v, want ErrNoWork", err)
	}
	if q.Active() != 3 {
		t.Fatalf("Active = %d, want 3", q.Active())
	}

	// Reporting frees capacity: the next lease tops the batch back up.
	ack, err := q.Report("s1", g2.LeaseID, g2.Suggestion.ID, "", p.Evaluate(g2.Suggestion.X, g2.Suggestion.Fid))
	if err != nil || ack.Duplicate {
		t.Fatalf("Report: ack=%+v err=%v", ack, err)
	}
	g4 := mustLease(t, q, "w4")
	if ids[g4.Suggestion.ID] {
		t.Fatalf("top-up grant %q repeats a leased suggestion", g4.Suggestion.ID)
	}
	if got := sess.Status().Observations; got != 1 {
		t.Fatalf("Observations = %d, want 1", got)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	q, _, clock := newTestQueue(t, nil)
	g := mustLease(t, q, "w1")
	if !g.Deadline.Equal(clock.After(10 * time.Second)) {
		t.Fatalf("deadline %v, want now+10s", g.Deadline)
	}

	// Heartbeats push the deadline; a heartbeat-kept lease survives Scan.
	clock.Advance(8 * time.Second)
	dl, err := q.Heartbeat(g.LeaseID)
	if err != nil {
		t.Fatal(err)
	}
	if !dl.Equal(clock.After(10 * time.Second)) {
		t.Fatalf("extended deadline %v, want now+10s", dl)
	}
	clock.Advance(9 * time.Second)
	if n := q.Scan(clock.Now()); n != 0 {
		t.Fatalf("Scan expired %d leases under heartbeat, want 0", n)
	}

	// Without heartbeats the lease expires and the same suggestion is
	// re-granted with the attempt counter bumped.
	clock.Advance(2 * time.Second)
	if n := q.Scan(clock.Now()); n != 1 {
		t.Fatalf("Scan expired %d leases, want 1", n)
	}
	if _, err := q.Heartbeat(g.LeaseID); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("heartbeat on expired lease: got %v, want ErrLeaseExpired", err)
	}
	g2 := mustLease(t, q, "w2")
	if g2.Suggestion.ID != g.Suggestion.ID {
		t.Fatalf("requeued grant %q, want %q", g2.Suggestion.ID, g.Suggestion.ID)
	}
	if g2.Attempt != 1 {
		t.Fatalf("requeued attempt = %d, want 1", g2.Attempt)
	}
	if g2.LeaseID == g.LeaseID {
		t.Fatal("requeued lease reuses the expired lease ID")
	}
}

func TestLateReportThenDuplicate(t *testing.T) {
	q, sess, clock := newTestQueue(t, nil)
	p := sess.Problem()

	// w1's lease expires mid-evaluation; the unit is requeued to w2.
	g1 := mustLease(t, q, "w1")
	clock.Advance(11 * time.Second)
	q.Scan(clock.Now())
	g2 := mustLease(t, q, "w2")
	if g2.Suggestion.ID != g1.Suggestion.ID {
		t.Fatalf("requeue granted %q, want %q", g2.Suggestion.ID, g1.Suggestion.ID)
	}

	// w1 finishes anyway: the late report is real work and is ingested.
	ev := p.Evaluate(g1.Suggestion.X, g1.Suggestion.Fid)
	ack, err := q.Report("s1", g1.LeaseID, g1.Suggestion.ID, "", ev)
	if err != nil {
		t.Fatalf("late report: %v", err)
	}
	if ack.Duplicate {
		t.Fatal("late report for an outstanding suggestion marked duplicate")
	}
	if got := sess.Status().Observations; got != 1 {
		t.Fatalf("Observations = %d, want 1", got)
	}

	// w2's result now loses the race: acknowledged as a duplicate, dropped.
	ack, err = q.Report("s1", g2.LeaseID, g2.Suggestion.ID, "", ev)
	if err != nil {
		t.Fatalf("duplicate report: %v", err)
	}
	if !ack.Duplicate {
		t.Fatal("second report for a told suggestion not marked duplicate")
	}
	if got := sess.Status().Observations; got != 1 {
		t.Fatalf("Observations after duplicate = %d, want 1", got)
	}
}

func TestReportLeaseSuggestionMismatch(t *testing.T) {
	q, _, _ := newTestQueue(t, nil)
	g1, g2 := mustLease(t, q, "w1"), mustLease(t, q, "w2")
	_, err := q.Report("s1", g1.LeaseID, g2.Suggestion.ID, "", testfunc.ConstrainedSynthetic().Evaluate(g2.Suggestion.X, g2.Suggestion.Fid))
	if !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("cross-lease report: got %v, want ErrLeaseExpired", err)
	}
}

func TestAbandonAfterMaxAttempts(t *testing.T) {
	q, sess, clock := newTestQueue(t, func(c *Config) { c.MaxAttempts = 2 })

	g := mustLease(t, q, "w1")
	for i := 0; i < 2; i++ {
		clock.Advance(11 * time.Second)
		if n := q.Scan(clock.Now()); n != 1 {
			t.Fatalf("expiry %d: Scan expired %d, want 1", i, n)
		}
		if i == 0 {
			// First expiry requeues; re-lease so the second expiry abandons.
			g2 := mustLease(t, q, "w2")
			if g2.Suggestion.ID != g.Suggestion.ID || g2.Attempt != 1 {
				t.Fatalf("requeue grant %q attempt %d, want %q attempt 1", g2.Suggestion.ID, g2.Attempt, g.Suggestion.ID)
			}
		}
	}

	// The poisoned point was told as a Failed evaluation: charged, recorded,
	// and no longer outstanding.
	hist := sess.History()
	if len(hist) != 1 {
		t.Fatalf("history has %d observations, want 1 (the abandoned point)", len(hist))
	}
	if !hist[0].Eval.Failed {
		t.Fatal("abandoned suggestion not recorded as Failed")
	}
	for _, s := range sess.Pending() {
		if s.ID == g.Suggestion.ID {
			t.Fatalf("abandoned suggestion %q still outstanding", s.ID)
		}
	}
	// The queue moves on to fresh work.
	g3 := mustLease(t, q, "w3")
	if g3.Suggestion.ID == g.Suggestion.ID {
		t.Fatal("abandoned suggestion was granted again")
	}
}

func TestLeaseTTLClamping(t *testing.T) {
	q, _, clock := newTestQueue(t, func(c *Config) { c.MaxTTL = 30 * time.Second })

	// Requested TTL is honored…
	g, err := q.Lease(context.Background(), "s1", "w1", 20*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Deadline.Equal(clock.After(20 * time.Second)) {
		t.Fatalf("deadline %v, want now+20s", g.Deadline)
	}
	// …and capped at MaxTTL.
	g2, err := q.Lease(context.Background(), "s1", "w1", time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Deadline.Equal(clock.After(30 * time.Second)) {
		t.Fatalf("capped deadline %v, want now+30s", g2.Deadline)
	}
}

func TestResolveErrorPropagates(t *testing.T) {
	q, _, _ := newTestQueue(t, nil)
	if _, err := q.Lease(context.Background(), "nope", "w1", 0, 0); err == nil {
		t.Fatal("lease for unknown session succeeded")
	}
	if _, err := q.Report("nope", "lease-x", "sug-x", "", problem.Evaluation{}); err == nil {
		t.Fatal("report for unknown session succeeded")
	}
}

func TestIdempotentReportRetry(t *testing.T) {
	q, sess, _ := newTestQueue(t, nil)
	p := sess.Problem()
	g := mustLease(t, q, "w1")
	ev := p.Evaluate(g.Suggestion.X, g.Suggestion.Fid)
	key := g.Suggestion.ID + "/0"

	ack, err := q.Report("s1", g.LeaseID, g.Suggestion.ID, key, ev)
	if err != nil || ack.Duplicate {
		t.Fatalf("first report: ack=%+v err=%v", ack, err)
	}
	// The worker's ack was lost in transit; it retries the identical report.
	// The key short-circuits to a duplicate ack even though the lease is long
	// gone — no lease error, no double Tell.
	ack, err = q.Report("s1", g.LeaseID, g.Suggestion.ID, key, ev)
	if err != nil {
		t.Fatalf("retried report: %v", err)
	}
	if !ack.Duplicate {
		t.Fatal("retried report not acked as duplicate")
	}
	if got := sess.Status().Observations; got != 1 {
		t.Fatalf("Observations = %d, want 1 after retry", got)
	}
}

func TestIdempotencyCacheBounded(t *testing.T) {
	q, _, _ := newTestQueue(t, nil)
	for i := 0; i < maxAckedKeys+100; i++ {
		q.recordAck("s1", fmt.Sprintf("sug-%d/0", i))
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.acked) != maxAckedKeys || len(q.ackedOrder) != maxAckedKeys {
		t.Fatalf("cache size %d/%d, want %d (FIFO-bounded)", len(q.acked), len(q.ackedOrder), maxAckedKeys)
	}
	if q.acked[sugKey("s1", "sug-0/0")] {
		t.Fatal("oldest key not evicted")
	}
	if !q.acked[sugKey("s1", fmt.Sprintf("sug-%d/0", maxAckedKeys+99))] {
		t.Fatal("newest key missing")
	}
}

// TestJanitorRaceLateReport races the expiry janitor against an in-flight
// report of the expiring lease (run under -race): whatever the interleaving,
// the evaluation lands exactly once, a racing re-grant of the same suggestion
// is acked as a duplicate, and no call errors out.
func TestJanitorRaceLateReport(t *testing.T) {
	for iter := 0; iter < 8; iter++ {
		q, sess, clock := newTestQueue(t, nil)
		p := sess.Problem()
		g := mustLease(t, q, "w1")
		ev := p.Evaluate(g.Suggestion.X, g.Suggestion.Fid)
		clock.Advance(11 * time.Second) // lease is past its deadline

		var (
			start    = make(chan struct{})
			wg       sync.WaitGroup
			mu       sync.Mutex
			nonDup   int
			reported = 1 // w1's report below
		)
		report := func(leaseID, key string) {
			ack, err := q.Report("s1", leaseID, g.Suggestion.ID, key, ev)
			if err != nil {
				t.Errorf("iter %d: report: %v", iter, err)
				return
			}
			if !ack.Duplicate {
				mu.Lock()
				nonDup++
				mu.Unlock()
			}
		}
		wg.Add(3)
		go func() { // the janitor expires the lease…
			defer wg.Done()
			<-start
			q.Scan(clock.Now())
		}()
		go func() { // …while w1's report for it is in flight…
			defer wg.Done()
			<-start
			report(g.LeaseID, g.Suggestion.ID+"/0")
		}()
		go func() { // …and w2 races to pick up the requeued grant.
			defer wg.Done()
			<-start
			g2, err := q.Lease(context.Background(), "s1", "w2", 0, 0)
			if err != nil || g2.Suggestion.ID != g.Suggestion.ID {
				return // fresh work or no work; only the re-grant matters here
			}
			mu.Lock()
			reported++
			mu.Unlock()
			report(g2.LeaseID, g2.Suggestion.ID+"/1")
		}()
		close(start)
		wg.Wait()

		if nonDup != 1 {
			t.Fatalf("iter %d: %d non-duplicate acks across %d reports, want exactly 1", iter, nonDup, reported)
		}
		if got := sess.Status().Observations; got != 1 {
			t.Fatalf("iter %d: Observations = %d, want 1", iter, got)
		}
		q.Close()
	}
}

package server_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/problem"
	"repro/internal/server"
	"repro/internal/testfunc"
)

// fastReq mirrors the fastCfg used by the core tests on the wire, so a remote
// session and an in-process core.Optimize resolve to the same core.Config.
func fastReq(name string, budget float64, seed int64) api.CreateSessionRequest {
	return api.CreateSessionRequest{
		Problem:      name,
		Seed:         seed,
		Budget:       budget,
		InitLow:      8,
		InitHigh:     4,
		MSPStarts:    6,
		MSPLocalIter: 25,
		GPMaxIter:    40,
	}
}

func fastCfg(budget float64) core.Config {
	return core.Config{
		Budget:    budget,
		InitLow:   8,
		InitHigh:  4,
		MSP:       optimize.MSPConfig{Starts: 6, LocalIter: 25},
		GPMaxIter: 40,
	}
}

// newTestServer boots a server over an httptest listener and returns a client
// for it.
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	cl := client.New(ts.URL, client.WithBackoff(time.Millisecond, 10*time.Millisecond))
	return srv, ts, cl
}

func sameHistory(t *testing.T, hist []api.HistoryObservation, ref []core.Observation) {
	t.Helper()
	if len(hist) != len(ref) {
		t.Fatalf("history lengths differ: remote %d vs in-process %d", len(hist), len(ref))
	}
	for i := range hist {
		h, r := hist[i], ref[i]
		if h.Fidelity != int(r.Fid) || h.Iter != r.Iter || h.Failed != r.Eval.Failed {
			t.Fatalf("obs %d: metadata differs: %+v vs %+v", i, h, r)
		}
		for j := range h.X {
			if math.Float64bits(h.X[j]) != math.Float64bits(r.X[j]) {
				t.Fatalf("obs %d: x[%d] differs: %v vs %v", i, j, h.X[j], r.X[j])
			}
		}
		if math.Float64bits(h.Objective) != math.Float64bits(r.Eval.Objective) {
			t.Fatalf("obs %d: objective differs: %v vs %v", i, h.Objective, r.Eval.Objective)
		}
		for j := range h.Constraints {
			if math.Float64bits(h.Constraints[j]) != math.Float64bits(r.Eval.Constraints[j]) {
				t.Fatalf("obs %d: constraint %d differs", i, j)
			}
		}
		if math.Float64bits(h.CumCost) != math.Float64bits(r.CumCost) {
			t.Fatalf("obs %d: cumulative cost differs", i)
		}
	}
}

// TestRemoteTrajectoryMatchesInProcess is the headline acceptance test: a
// client-driven HTTP session reproduces the in-process core.Optimize
// trajectory bit-for-bit — every point, fidelity choice, objective,
// constraint value and cumulative cost — under the same seed. JSON float64
// round-tripping is exact, so nothing is lost on the wire.
func TestRemoteTrajectoryMatchesInProcess(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() problem.Problem
	}{
		{"forrester", func() problem.Problem { return testfunc.Forrester() }},
		{"constrained", func() problem.Problem { return testfunc.ConstrainedSynthetic() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := core.Optimize(tc.mk(), fastCfg(8), rand.New(rand.NewSource(42)))
			if err != nil {
				t.Fatal(err)
			}
			_, _, cl := newTestServer(t, server.Config{})
			ctx := context.Background()
			info, err := cl.CreateSession(ctx, fastReq(tc.name, 8, 42))
			if err != nil {
				t.Fatal(err)
			}
			st, err := cl.Drive(ctx, info.ID, tc.mk())
			if err != nil {
				t.Fatal(err)
			}
			if st.Phase != "done" {
				t.Fatalf("remote run did not finish: %+v", st)
			}
			hist, err := cl.History(ctx, info.ID)
			if err != nil {
				t.Fatal(err)
			}
			sameHistory(t, hist.Observations, ref.History)
			if math.Float64bits(st.BestObj) != math.Float64bits(ref.Best.Objective) {
				t.Fatalf("best objective differs: remote %v vs in-process %v", st.BestObj, ref.Best.Objective)
			}
		})
	}
}

// TestServerKillResume: a server killed mid-run (after a handful of
// observations) restarts over the same checkpoint directory, the client
// reattaches with resume, and the completed trajectory is bit-identical to an
// uninterrupted in-process run — the crash leaves no trace in the math.
func TestServerKillResume(t *testing.T) {
	ref, err := core.Optimize(testfunc.Forrester(), fastCfg(6), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ctx := context.Background()
	req := fastReq("forrester", 6, 9)
	req.ID = "kill-resume"

	// First server: evaluate 6 points, then die without ceremony.
	srv1, err := server.New(server.Config{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	cl1 := client.New(ts1.URL)
	if _, err := cl1.CreateSession(ctx, req); err != nil {
		t.Fatal(err)
	}
	p := testfunc.Forrester()
	for i := 0; i < 6; i++ {
		sug, err := cl1.Suggest(ctx, req.ID)
		if err != nil || sug.Done {
			t.Fatalf("suggest %d: done=%v err=%v", i, sug.Done, err)
		}
		ev := p.Evaluate(sug.X, problem.Fidelity(sug.Fidelity))
		if _, err := cl1.Observe(ctx, req.ID, api.Observation{
			X: sug.X, Fidelity: sug.Fidelity,
			Objective: ev.Objective, Constraints: ev.Constraints,
		}); err != nil {
			t.Fatal(err)
		}
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second server over the same directory: resume and run to completion.
	_, _, cl2 := newTestServer(t, server.Config{CheckpointDir: dir})
	req.Resume = true
	info, err := cl2.CreateSession(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Resumed {
		t.Fatal("reattach did not report resumed")
	}
	pre, err := cl2.History(ctx, req.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(pre.Observations) != 6 {
		t.Fatalf("restored session has %d observations, want 6", len(pre.Observations))
	}
	st, err := cl2.Drive(ctx, req.ID, testfunc.Forrester())
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != "done" {
		t.Fatalf("resumed run did not finish: %+v", st)
	}
	hist, err := cl2.History(ctx, req.ID)
	if err != nil {
		t.Fatal(err)
	}
	sameHistory(t, hist.Observations, ref.History)
}

// TestServerLazyRestoreWithoutResumeFlag: after a restart, plain requests
// against a persisted session id transparently restore it from disk — no
// explicit resume handshake required.
func TestServerLazyRestoreWithoutResumeFlag(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req := fastReq("forrester", 6, 13)
	req.ID = "lazy"

	srv1, err := server.New(server.Config{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	cl1 := client.New(ts1.URL)
	if _, err := cl1.CreateSession(ctx, req); err != nil {
		t.Fatal(err)
	}
	p := testfunc.Forrester()
	sug, err := cl1.Suggest(ctx, req.ID)
	if err != nil {
		t.Fatal(err)
	}
	ev := p.Evaluate(sug.X, problem.Fidelity(sug.Fidelity))
	if _, err := cl1.Observe(ctx, req.ID, api.Observation{
		X: sug.X, Fidelity: sug.Fidelity, Objective: ev.Objective, Constraints: ev.Constraints,
	}); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, cl2 := newTestServer(t, server.Config{CheckpointDir: dir})
	st, err := cl2.Status(ctx, req.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Observations != 1 {
		t.Fatalf("lazy restore lost observations: %+v", st)
	}
}

// TestServerConcurrentSessions drives four sessions in parallel through one
// server — the race-detector workout for the registry, the per-session
// mutexes and the shared fit limiter.
func TestServerConcurrentSessions(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{MaxConcurrentFits: 2})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			info, err := cl.CreateSession(ctx, fastReq("forrester", 4, seed))
			if err != nil {
				errs <- err
				return
			}
			st, err := cl.Drive(ctx, info.ID, testfunc.Forrester())
			if err != nil {
				errs <- err
				return
			}
			if st.Phase != "done" {
				errs <- errors.New("session " + info.ID + " did not finish")
			}
		}(int64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServerAPIValidation covers the error surface of the HTTP API and the
// errors.Is mapping of wire codes back onto core sentinels.
func TestServerAPIValidation(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{})
	ctx := context.Background()

	// Unknown session → 404.
	if _, err := cl.Status(ctx, "nope"); !isStatus(err, 404, api.CodeNotFound) {
		t.Fatalf("unknown session: %v", err)
	}
	// Bad budget → 400.
	if _, err := cl.CreateSession(ctx, api.CreateSessionRequest{Problem: "forrester"}); !isStatus(err, 400, api.CodeBadRequest) {
		t.Fatalf("zero budget: %v", err)
	}
	// Unknown problem → 400.
	if _, err := cl.CreateSession(ctx, fastReq("nonesuch", 5, 1)); !isStatus(err, 400, api.CodeBadRequest) {
		t.Fatalf("unknown problem: %v", err)
	}
	// Invalid explicit id → 400.
	bad := fastReq("forrester", 5, 1)
	bad.ID = "no/slashes"
	if _, err := cl.CreateSession(ctx, bad); !isStatus(err, 400, api.CodeBadRequest) {
		t.Fatalf("invalid id: %v", err)
	}

	req := fastReq("forrester", 5, 1)
	req.ID = "alpha"
	if _, err := cl.CreateSession(ctx, req); err != nil {
		t.Fatal(err)
	}
	// Duplicate id without resume → 409.
	if _, err := cl.CreateSession(ctx, req); !isStatus(err, 409, api.CodeConflict) {
		t.Fatalf("duplicate id: %v", err)
	}
	// Tell without a pending ask → 409 mapping to core.ErrNoPendingAsk.
	_, err := cl.Observe(ctx, "alpha", api.Observation{X: []float64{0.5}, Objective: 1})
	if !isStatus(err, 409, api.CodeNoPendingAsk) || !errors.Is(err, core.ErrNoPendingAsk) {
		t.Fatalf("observe without ask: %v", err)
	}
	// Tell for the wrong point → 409 mapping to core.ErrTellMismatch.
	sug, err := cl.Suggest(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	wrong := append([]float64(nil), sug.X...)
	wrong[0] += 0.25
	_, err = cl.Observe(ctx, "alpha", api.Observation{X: wrong, Fidelity: sug.Fidelity, Objective: 1})
	if !isStatus(err, 409, api.CodeTellMismatch) || !errors.Is(err, core.ErrTellMismatch) {
		t.Fatalf("mismatched observe: %v", err)
	}
	// The pending suggestion survives the rejected tell (idempotent suggest).
	again, err := cl.Suggest(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(again.X[0]) != math.Float64bits(sug.X[0]) {
		t.Fatal("rejected observe disturbed the pending suggestion")
	}

	// Catalog + liveness + listing.
	probs, err := cl.Problems(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range probs {
		if p == "forrester" {
			found = true
		}
	}
	if !found {
		t.Fatalf("catalog missing forrester: %v", probs)
	}
	h, err := cl.Health(ctx)
	if err != nil || !h.OK || h.Sessions != 1 {
		t.Fatalf("health: %+v err=%v", h, err)
	}
	ids, err := cl.Sessions(ctx)
	if err != nil || len(ids) != 1 || ids[0] != "alpha" {
		t.Fatalf("sessions: %v err=%v", ids, err)
	}

	// Delete → gone.
	if err := cl.Delete(ctx, "alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Status(ctx, "alpha"); !isStatus(err, 404, api.CodeNotFound) {
		t.Fatalf("deleted session still answers: %v", err)
	}
	if err := cl.Delete(ctx, "alpha"); !isStatus(err, 404, api.CodeNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

// TestServerSuggestAfterDone: a finished session answers suggest with a
// terminal Done marker rather than an error.
func TestServerSuggestAfterDone(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{})
	ctx := context.Background()
	info, err := cl.CreateSession(ctx, fastReq("forrester", 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Drive(ctx, info.ID, testfunc.Forrester()); err != nil {
		t.Fatal(err)
	}
	sug, err := cl.Suggest(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !sug.Done || sug.Reason != api.CodeBudgetExhausted {
		t.Fatalf("terminal suggest: %+v", sug)
	}
}

// isStatus reports whether err is an *client.APIError with the given HTTP
// status and wire code.
func isStatus(err error, status int, code string) bool {
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	return apiErr.Status == status && apiErr.Code == code
}

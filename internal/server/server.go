// Package server exposes optimization sessions over a JSON/HTTP API — the
// service face of the MFBO engine. External evaluators create a session,
// poll it for suggestions, run the (SPICE-class) simulations on their own
// infrastructure, and post the outcomes back:
//
//	POST   /v1/sessions                    create / resume a session
//	GET    /v1/sessions                    list live sessions
//	GET    /v1/sessions/{id}/suggest       next query (idempotent until told)
//	POST   /v1/sessions/{id}/observations  report an evaluation
//	GET    /v1/sessions/{id}/status        progress summary
//	GET    /v1/sessions/{id}/history       full observation log
//	DELETE /v1/sessions/{id}               evict and forget a session
//	GET    /v1/problems                    problem catalog
//	GET    /v1/healthz                     liveness
//
// Distributed evaluation fleets use the lease-based dispatch queue instead of
// suggest/observe (see internal/dispatch for the lease state machine):
//
//	POST   /v1/sessions/{id}/lease         lease one evaluation to a worker
//	POST   /v1/sessions/{id}/report        report a leased evaluation
//	POST   /v1/leases/{id}/heartbeat       keep a lease alive mid-evaluation
//
// The registry is concurrency-bounded: sessions serialize their own engine
// behind a per-session mutex, and a global session.Limiter caps how many
// sessions may run their surrogate-fit pipeline at once. Every session is
// persisted through the pluggable storage engine (internal/storage; Config
// .Store, or a hardened filesystem store over CheckpointDir) after every
// ingested observation; a server restarted over the same state restores
// sessions lazily on first touch, so a killed deployment resumes exactly
// where its checkpoints left off — rolling back past torn or corrupt
// snapshot generations when the store detects them. Idle sessions
// are persisted and evicted from memory by a janitor, and Close drains the
// registry through one final persistence pass.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/buildinfo"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/fidelity"
	"repro/internal/optimize"
	"repro/internal/problem"
	"repro/internal/session"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// Config tunes the service.
type Config struct {
	// Store, when non-nil, is the durability engine every session's state
	// (checkpoints, manifests, telemetry rings) is persisted through — see
	// internal/storage for the crash-consistency contract. Takes precedence
	// over CheckpointDir.
	Store storage.Store
	// CheckpointDir persists every session under this directory when Store
	// is nil, by building a hardened filesystem store (storage.NewFS) over
	// it: CRC-framed generational records, with the previous flat
	// <id>.ckpt.json / <id>.session.json layout still readable. Empty with
	// a nil Store = volatile sessions (lost on restart/eviction).
	CheckpointDir string
	// StorageGenerations is the per-record generation depth of the implicit
	// CheckpointDir store (default 3; ignored when Store is set).
	StorageGenerations int
	// IdleTimeout evicts sessions untouched for this long from memory
	// (after persisting them; durable sessions restore lazily on next
	// touch). 0 disables eviction.
	IdleTimeout time.Duration
	// MaxConcurrentFits bounds sessions running their surrogate-fit
	// pipeline simultaneously; 0 selects parallel.DefaultWorkers().
	MaxConcurrentFits int
	// MaxSessions rejects new sessions beyond this many live ones
	// (0 = unbounded).
	MaxSessions int
	// Lookup resolves problem names; nil selects catalog.Lookup.
	Lookup func(name string) (problem.Problem, error)
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Telemetry, when non-nil, is the process-wide recorder: HTTP and
	// session metrics register into its registry (exposed by cmd/mfbod at
	// /metrics), and every session's event stream also flows into its sink.
	// Independent of it, each session keeps a bounded in-memory event ring
	// served at GET /v1/sessions/{id}/telemetry.
	Telemetry *telemetry.Recorder
	// EventRingSize bounds each session's in-memory event ring
	// (default 512; < 0 disables per-session rings).
	EventRingSize int
	// Dispatch tunes the lease-based work queue behind the lease/report/
	// heartbeat endpoints (see dispatch.Config). Resolve, Telemetry and Now
	// are supplied by the server; the remaining fields (MaxInFlight,
	// LeaseTTL, MaxAttempts, ScanEvery, ...) default sensibly when zero.
	Dispatch dispatch.Config
	// ReplicaID identifies this process as one replica of a horizontally
	// sharded deployment. Setting it (together with a Store/CheckpointDir
	// shared by every replica) turns on session-ownership leases: sessions
	// are claimed before being served, renewed while resident, fenced on
	// every checkpoint write, and requests for sessions owned elsewhere
	// answer wrong_owner (HTTP 421). Empty = unsharded single-node service.
	// See internal/shard and DESIGN.md §13.
	ReplicaID string
	// OwnershipTTL is the session-ownership lease duration (default 5s).
	// Shorter TTLs migrate sessions off dead replicas faster at the cost of
	// more lease-renewal writes. Sharded deployments only.
	OwnershipTTL time.Duration
}

// Server is the HTTP handler plus its session registry.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	limiter *session.Limiter
	started time.Time
	met     *serverMetrics
	queue   *dispatch.Queue
	// store is the resolved durability engine (Config.Store, or an FS store
	// over CheckpointDir); nil for a fully volatile server.
	store storage.Store
	// baseCtx scopes engine calls made on behalf of HTTP requests to the
	// server's lifetime instead of the request's. A session is shared state:
	// if the request context reached the engine, one worker hanging up
	// mid-lease would trip the engine's interrupt path and poison the
	// session terminal (every later lease answered "done") until a restart.
	// The chaos harness (internal/torture) found exactly that.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// leases/membership are non-nil only in sharded deployments
	// (Config.ReplicaID set): session-ownership leases and the replica
	// heartbeat behind the healthz ring view. See shard.go for the glue.
	leases     *shard.Leases
	membership *shard.Membership

	mu       sync.RWMutex
	sessions map[string]*entry
	closed   bool

	janitorStop chan struct{}
	janitorDone chan struct{}
	renewStop   chan struct{}
	renewDone   chan struct{}
}

// entry pairs a live session with the request that created it (needed to
// rebuild its config on restore and to answer status queries) and its
// telemetry ring (nil when rings are disabled).
type entry struct {
	sess *session.Session
	req  api.CreateSessionRequest
	ring *telemetry.Ring
	// epoch is the ownership-lease epoch this replica serves the session
	// under (0 when unsharded). Stable for the entry's lifetime: renewals
	// keep the epoch, only ownership changes bump it.
	epoch uint64
}

// serverMetrics caches the service-level metric handles. All fields are nil
// (and every use a no-op) when Config.Telemetry carries no registry.
type serverMetrics struct {
	reg       *telemetry.Registry
	inFlight  *telemetry.Gauge
	created   *telemetry.Counter
	restored  *telemetry.Counter
	evicted   *telemetry.Counter
	deleted   *telemetry.Counter
	reqSecs   map[string]*telemetry.Histogram // keyed by route
	reqTotals *telemetry.CounterVec           // labeled route/code, cached handles
}

func newServerMetrics(reg *telemetry.Registry, s *Server) *serverMetrics {
	if reg == nil {
		return nil
	}
	m := &serverMetrics{
		reg:      reg,
		inFlight: reg.Gauge("mfbo_http_in_flight_requests", "HTTP requests currently being served"),
		created:  reg.Counter("mfbo_sessions_created_total", "sessions created fresh"),
		restored: reg.Counter("mfbo_sessions_restored_total", "sessions restored from checkpoints (restart/eviction recovery)"),
		evicted:  reg.Counter("mfbo_sessions_evicted_total", "idle sessions persisted and evicted from memory"),
		deleted:  reg.Counter("mfbo_sessions_deleted_total", "sessions deleted by clients"),
		reqSecs:  make(map[string]*telemetry.Histogram),
		reqTotals: reg.CounterVec("mfbo_http_requests_total",
			"HTTP requests served by route and status code", "route", "code"),
	}
	reg.GaugeFunc("mfbo_sessions_live", "sessions currently resident in memory", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.sessions))
	})
	reg.GaugeFunc("mfbo_fit_slots", "surrogate-fit limiter capacity", func() float64 {
		return float64(s.limiter.Cap())
	})
	reg.GaugeFunc("mfbo_fit_slots_in_use", "surrogate-fit limiter slots held", func() float64 {
		return float64(s.limiter.InUse())
	})
	reg.GaugeFunc("mfbo_fit_slots_waiting", "goroutines waiting for a fit slot", func() float64 {
		return float64(s.limiter.Waiting())
	})
	return m
}

// inflight moves the in-flight gauge (nil-safe, for trace-only servers).
func (m *serverMetrics) inflight(delta float64) {
	if m == nil {
		return
	}
	m.inFlight.Add(delta)
}

// request records one served request into the middleware metrics.
func (m *serverMetrics) request(route string, code int, dur time.Duration) {
	if m == nil {
		return
	}
	m.reqTotals.With(route, strconv.Itoa(code)).Inc()
	if h := m.reqSecs[route]; h != nil {
		h.Observe(dur.Seconds())
	}
}

// statusRecorder captures the response code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps one route handler with request accounting and distributed
// tracing: an inbound W3C traceparent header continues the caller's trace
// (malformed headers degrade to a fresh root, never an error), otherwise a
// locally sampled root starts here. The server span rides the request
// context so handlers can thread it into the engine. With telemetry fully
// off it returns h unchanged, so the uninstrumented server serves
// identically to previous releases.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	var tracer *telemetry.Tracer
	if s.cfg.Telemetry != nil {
		tracer = s.cfg.Telemetry.Tracer
	}
	if s.met == nil && tracer == nil {
		return h
	}
	if s.met != nil {
		s.met.reqSecs[route] = s.met.reg.Histogram(
			"mfbo_http_request_seconds", "request latency by route", nil, "route", route)
	}
	name := "server." + route
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.inflight(1)
		// A remote continuation is created even when this replica has no span
		// sink of its own: the span still carries the trace downstream (into
		// engine context and lease replies) for processes that do record.
		var span *telemetry.Span
		if tc, ok := telemetry.Extract(r.Header); ok {
			span = tracer.StartRemote(name, tc)
		} else if tracer.Enabled() {
			span = tracer.Start(name)
		}
		if span != nil {
			r = r.WithContext(telemetry.ContextWithSpan(r.Context(), span))
		}
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(sr, r)
		s.met.inflight(-1)
		span.Attr("code", float64(sr.code))
		span.End()
		s.met.request(route, sr.code, time.Since(start))
	}
}

// engineCtx builds the context handlers pass into engine-touching calls:
// s.baseCtx for lifetime (the session outlives any one client; only server
// shutdown interrupts the engine) carrying the request's trace span for
// latency attribution. Allocation-free when the request is untraced.
func (s *Server) engineCtx(r *http.Request) context.Context {
	return telemetry.ContextWithSpan(s.baseCtx, telemetry.SpanFromContext(r.Context()))
}

// New builds the server and, when CheckpointDir is set, ensures the
// directory exists. Sessions persisted by a previous process are NOT loaded
// eagerly — they restore lazily on first touch.
func New(cfg Config) (*Server, error) {
	if cfg.Lookup == nil {
		cfg.Lookup = catalog.Lookup
	}
	store := cfg.Store
	if store == nil && cfg.CheckpointDir != "" {
		fs, err := storage.NewFS(storage.FSConfig{
			Dir:         cfg.CheckpointDir,
			Generations: cfg.StorageGenerations,
			Telemetry:   cfg.Telemetry,
		})
		if err != nil {
			return nil, fmt.Errorf("server: checkpoint dir: %w", err)
		}
		store = fs
	}
	s := &Server{
		cfg:         cfg,
		store:       store,
		limiter:     session.NewLimiter(cfg.MaxConcurrentFits),
		started:     time.Now(),
		sessions:    make(map[string]*entry),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
		renewStop:   make(chan struct{}),
		renewDone:   make(chan struct{}),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.ReplicaID != "" {
		if store == nil {
			return nil, errors.New("server: ReplicaID requires a durable store (Store or CheckpointDir)")
		}
		lcfg := shard.LeaseConfig{Store: store, Replica: cfg.ReplicaID, TTL: cfg.OwnershipTTL}
		leases, err := shard.NewLeases(lcfg)
		if err != nil {
			return nil, err
		}
		membership, err := shard.StartMembership(lcfg, 0)
		if err != nil {
			return nil, err
		}
		s.leases = leases
		s.membership = membership
	}
	s.met = newServerMetrics(cfg.Telemetry.Registry(), s)
	qcfg := cfg.Dispatch
	qcfg.Resolve = func(id string) (*session.Session, error) {
		e, err := s.getSession(id)
		if err != nil {
			return nil, err
		}
		return e.sess, nil
	}
	qcfg.Telemetry = cfg.Telemetry
	queue, err := dispatch.New(qcfg)
	if err != nil {
		return nil, err
	}
	s.queue = queue
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.instrument("create", s.handleCreate))
	mux.HandleFunc("GET /v1/sessions", s.instrument("list", s.handleList))
	mux.HandleFunc("GET /v1/sessions/{id}/suggest", s.instrument("suggest", s.handleSuggest))
	mux.HandleFunc("POST /v1/sessions/{id}/observations", s.instrument("observe", s.handleObserve))
	mux.HandleFunc("GET /v1/sessions/{id}/status", s.instrument("status", s.handleStatus))
	mux.HandleFunc("GET /v1/sessions/{id}/history", s.instrument("history", s.handleHistory))
	mux.HandleFunc("GET /v1/sessions/{id}/telemetry", s.instrument("telemetry", s.handleTelemetry))
	mux.HandleFunc("POST /v1/sessions/{id}/lease", s.instrument("lease", s.handleLease))
	mux.HandleFunc("POST /v1/sessions/{id}/report", s.instrument("report", s.handleReport))
	mux.HandleFunc("POST /v1/leases/{id}/heartbeat", s.instrument("heartbeat", s.handleHeartbeat))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("delete", s.handleDelete))
	mux.HandleFunc("GET /v1/problems", s.instrument("problems", s.handleProblems))
	mux.HandleFunc("GET /v1/healthz", s.instrument("healthz", s.handleHealth))
	s.mux = mux
	if cfg.IdleTimeout > 0 {
		go s.janitor()
	} else {
		close(s.janitorDone)
	}
	if s.sharded() {
		go s.renewer()
	} else {
		close(s.renewDone)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Close persists every live session and stops the janitor. Call it after
// http.Server.Shutdown has drained in-flight requests (fits included).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	entries := make([]*entry, 0, len(s.sessions))
	ids := make([]string, 0, len(s.sessions))
	for id, e := range s.sessions {
		entries = append(entries, e)
		ids = append(ids, id)
	}
	s.mu.Unlock()
	s.baseCancel()
	close(s.janitorStop)
	<-s.janitorDone
	close(s.renewStop)
	<-s.renewDone
	s.queue.Close()

	var errs []error
	for i, e := range entries {
		if err := e.sess.Persist(); err != nil {
			errs = append(errs, err)
		}
		s.persistRing(ids[i], e)
		// After the final persist the lease is surrendered so the session's
		// next owner claims it immediately instead of waiting out the TTL.
		s.releaseOwned(ids[i], e)
	}
	if s.membership != nil {
		s.membership.Close()
	}
	return errors.Join(errs...)
}

// Kill abandons the registry without persisting anything — the simulated
// SIGKILL of the in-process torture harness (cmd/mfbo-chaos sends the real
// signal). Whatever the storage engine holds at this instant is exactly
// what a restarted server will see; a dead process gets no goodbye writes.
// The HTTP listener, if any, must be torn down separately.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.sessions = make(map[string]*entry)
	s.mu.Unlock()
	s.baseCancel()
	close(s.janitorStop)
	<-s.janitorDone
	close(s.renewStop)
	<-s.renewDone
	s.queue.Close()
	if s.membership != nil {
		// Abandon, not Close: a killed process writes no goodbye. The leases
		// and the membership record age out by TTL expiry, exactly as after a
		// real SIGKILL.
		s.membership.Abandon()
	}
}

// janitor periodically persists and evicts idle sessions.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	tick := time.NewTicker(s.cfg.IdleTimeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
			s.evictIdle(time.Now().Add(-s.cfg.IdleTimeout))
		}
	}
}

// evictIdle persists and drops sessions untouched since the deadline.
func (s *Server) evictIdle(deadline time.Time) {
	s.mu.Lock()
	var victims []*entry
	var ids []string
	for id, e := range s.sessions {
		if e.sess.LastUsed().Before(deadline) {
			victims = append(victims, e)
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	for i, e := range victims {
		if s.met != nil {
			s.met.evicted.Inc()
		}
		if err := e.sess.Persist(); err != nil {
			s.logf("server: persist evicted session %s: %v", ids[i], err)
		} else {
			s.logf("server: evicted idle session %s", ids[i])
		}
		s.persistRing(ids[i], e)
	}
}

// ---- persistence layout ----

// durable reports whether sessions survive restart/eviction.
func (s *Server) durable() bool { return s.store != nil }

// saveManifest durably records the creation request so a restarted server
// can rebuild the session config. A create is acknowledged only after this
// succeeds — an acked session ID must survive a crash.
func (s *Server) saveManifest(id string, req *api.CreateSessionRequest) error {
	if !s.durable() {
		return nil
	}
	data, err := json.MarshalIndent(req, "", " ")
	if err != nil {
		return err
	}
	return s.store.Put(storage.KindManifest, id, data)
}

func (s *Server) loadManifest(id string) (*api.CreateSessionRequest, error) {
	data, err := s.store.Get(storage.KindManifest, id)
	if err != nil {
		return nil, err
	}
	req := &api.CreateSessionRequest{}
	if err := json.Unmarshal(data, req); err != nil {
		return nil, fmt.Errorf("server: corrupt session manifest %s: %w", id, err)
	}
	return req, nil
}

// persistRing saves the session's buffered telemetry events (best-effort:
// introspection should survive a restart, but never block one).
func (s *Server) persistRing(id string, e *entry) {
	if !s.durable() || e.ring == nil {
		return
	}
	events := e.ring.Snapshot()
	if len(events) == 0 {
		return
	}
	data, err := json.Marshal(events)
	if err != nil {
		return
	}
	if err := s.store.Put(storage.KindTelemetry, id, data); err != nil {
		s.logf("server: persist telemetry ring %s: %v", id, err)
	}
}

// restoreRing refills a fresh ring with the events persisted before the
// last eviction/shutdown, so /telemetry keeps its history across restarts.
func (s *Server) restoreRing(id string, ring *telemetry.Ring) {
	if !s.durable() || ring == nil {
		return
	}
	data, err := s.store.Get(storage.KindTelemetry, id)
	if err != nil {
		return
	}
	var events []telemetry.Event
	if err := json.Unmarshal(data, &events); err != nil {
		return
	}
	for i := range events {
		ring.Emit(events[i])
	}
}

// ---- session construction ----

// coreConfig maps wire tuning fields onto the optimizer config.
func coreConfig(req *api.CreateSessionRequest) core.Config {
	return core.Config{
		Budget:        req.Budget,
		InitLow:       req.InitLow,
		InitHigh:      req.InitHigh,
		InitMid:       req.InitMid,
		Gamma:         req.Gamma,
		MSP:           optimize.MSPConfig{Starts: req.MSPStarts, LocalIter: req.MSPLocalIter},
		GPRestarts:    req.GPRestarts,
		GPMaxIter:     req.GPMaxIter,
		RefitEvery:    req.RefitEvery,
		Incremental:   req.Incremental,
		NLMLTrigger:   req.NLMLTrigger,
		LowRankAfter:  req.LowRankAfter,
		MaxLowData:    req.MaxLowData,
		MaxIterations: req.MaxIterations,
		Workers:       req.Workers,
		Fantasy:       core.FantasyStrategy(req.Fantasy),
	}
}

// buildSession instantiates (or restores, when its checkpoint exists) the
// session described by req. Each session gets its own bounded event ring
// (served at /v1/sessions/{id}/telemetry); when the server carries a
// process-wide recorder the session's events and metrics also flow into it.
func (s *Server) buildSession(id string, req *api.CreateSessionRequest, epoch uint64) (*entry, error) {
	p, err := s.cfg.Lookup(req.Problem)
	if err != nil {
		return nil, err
	}
	var ring *telemetry.Ring
	size := s.cfg.EventRingSize
	if size == 0 {
		size = 512
	}
	if size > 0 {
		ring = telemetry.NewRing(size)
		s.restoreRing(id, ring)
	}
	var rec *telemetry.Recorder
	if ring != nil || s.cfg.Telemetry != nil {
		rec = s.cfg.Telemetry.Child(ring)
	}
	sess, err := session.Open(session.Config{
		Problem: p,
		Core:    coreConfig(req),
		Seed:    req.Seed,
		// Sharded replicas persist through a lease-fenced store so a stale
		// ex-owner can never clobber the new owner's checkpoints (shard.go).
		Store:     s.sessionStore(id, epoch),
		StoreID:   id,
		Limiter:   s.limiter,
		Telemetry: rec,
	})
	if err != nil {
		return nil, err
	}
	return &entry{sess: sess, req: *req, ring: ring, epoch: epoch}, nil
}

// getSession resolves id, lazily restoring a persisted session after a
// restart or eviction.
func (s *Server) getSession(id string) (*entry, error) {
	s.mu.RLock()
	e, ok := s.sessions[id]
	closed := s.closed
	s.mu.RUnlock()
	if ok {
		return e, nil
	}
	if closed {
		return nil, errShuttingDown
	}
	if !s.durable() {
		return nil, errNotFound
	}
	req, err := s.loadManifest(id)
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return nil, errNotFound
		}
		return nil, err
	}
	// Sharded: become the owner before restoring. A session owned by a live
	// replica fails here with *shard.WrongOwnerError → wrong_owner on the
	// wire; one whose owner died is claimed once the old lease expires, and
	// the restore below IS the migration (checkpoints are ground truth).
	epoch, err := s.claimOwnership(id)
	if err != nil {
		return nil, err
	}
	fresh, err := s.buildSession(id, req, epoch)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errShuttingDown
	}
	if e, ok := s.sessions[id]; ok { // lost the race: use the winner
		return e, nil
	}
	s.sessions[id] = fresh
	if s.met != nil {
		s.met.restored.Inc()
	}
	s.logf("server: restored session %s (problem %s)", id, req.Problem)
	return fresh, nil
}

var (
	errNotFound     = errors.New("server: session not found")
	errShuttingDown = errors.New("server: shutting down")
)

func newID() string {
	b := make([]byte, 8)
	if _, err := rand.Read(b); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return "s" + hex.EncodeToString(b)
}

func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// ---- handlers ----

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.Budget <= 0 {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "budget must be positive")
		return
	}
	id := req.ID
	if id == "" {
		if req.Resume {
			writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "resume requires an explicit session id")
			return
		}
		id = newID()
	} else if !validID(id) {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "session id must be 1-64 chars of [A-Za-z0-9_-]")
		return
	}
	req.ID = id

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, api.CodeShuttingDown, "server is shutting down")
		return
	}
	if _, exists := s.sessions[id]; exists && !req.Resume {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, api.CodeConflict, "session "+id+" already exists")
		return
	}
	if s.cfg.MaxSessions > 0 && len(s.sessions) >= s.cfg.MaxSessions {
		if _, exists := s.sessions[id]; !exists {
			s.mu.Unlock()
			writeErr(w, http.StatusTooManyRequests, api.CodeConflict, "session limit reached")
			return
		}
	}
	s.mu.Unlock()

	resumed := false
	var e *entry
	if req.Resume {
		// Reattach: live session wins, then a persisted one.
		if live, err := s.getSession(id); err == nil {
			e, resumed = live, true
		} else if !errors.Is(err, errNotFound) {
			s.writeSessionErr(w, err)
			return
		}
	} else if s.durable() {
		// Fresh create must not silently adopt stale persisted state.
		if _, err := s.store.Get(storage.KindManifest, id); err == nil {
			writeErr(w, http.StatusConflict, api.CodeConflict,
				"session "+id+" exists in storage; pass resume or delete it first")
			return
		}
	}
	createdFresh := false
	if e == nil {
		epoch, err := s.claimOwnership(id)
		if err != nil {
			s.writeSessionErr(w, err)
			return
		}
		fresh, err := s.buildSession(id, &req, epoch)
		if err != nil {
			s.writeSessionErr(w, err)
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			writeErr(w, http.StatusServiceUnavailable, api.CodeShuttingDown, "server is shutting down")
			return
		}
		if live, ok := s.sessions[id]; ok {
			if !req.Resume {
				s.mu.Unlock()
				writeErr(w, http.StatusConflict, api.CodeConflict, "session "+id+" already exists")
				return
			}
			e, resumed = live, true
		} else {
			s.sessions[id] = fresh
			e = fresh
			createdFresh = true
			if s.met != nil {
				s.met.created.Inc()
			}
		}
		s.mu.Unlock()
	}
	if err := s.saveManifest(id, &e.req); err != nil {
		// A create acked without a durable manifest would vanish on restart:
		// fail the request instead, and un-register the half-born session so
		// a retry can succeed.
		if createdFresh {
			s.mu.Lock()
			if s.sessions[id] == e {
				delete(s.sessions, id)
			}
			s.mu.Unlock()
		}
		s.logf("server: save manifest %s: %v", id, err)
		writeErr(w, http.StatusInternalServerError, api.CodeInternal,
			"persist session manifest: "+err.Error())
		return
	}
	s.logf("server: session %s created (problem %s, budget %g, seed %d, resumed %v)",
		id, e.req.Problem, e.req.Budget, e.req.Seed, resumed)

	p := e.sess.Problem()
	lo, hi := p.Bounds()
	info := api.SessionInfo{
		ID:             id,
		Problem:        p.Name(),
		Dim:            p.Dim(),
		NumConstraints: p.NumConstraints(),
		BoundsLo:       lo,
		BoundsHi:       hi,
		CostLow:        p.Cost(problem.Low),
		CostHigh:       p.Cost(problem.High),
		Rungs:          problem.NumFidelities(p),
		Budget:         e.req.Budget,
		Seed:           e.req.Seed,
		Resumed:        resumed,
	}
	if ladder, err := fidelity.OfProblem(p); err == nil {
		info.RungCosts = ladder.Costs()
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, api.SessionsReply{Sessions: ids})
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	e, err := s.getSession(r.PathValue("id"))
	if err != nil {
		s.writeSessionErr(w, err)
		return
	}
	// engineCtx (s.baseCtx + trace span), not r.Context(): the session
	// outlives any one client, so only server shutdown may interrupt the
	// engine (see Server.baseCtx).
	sug, err := e.sess.Ask(s.engineCtx(r))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, api.Suggestion{X: sug.X, Fidelity: int(sug.Fid), Iter: sug.Iter})
	case errors.Is(err, core.ErrBudgetExhausted):
		writeJSON(w, http.StatusOK, api.Suggestion{Done: true, Reason: api.CodeBudgetExhausted})
	case errors.Is(err, core.ErrInterrupted) && s.baseCtx.Err() == nil:
		writeJSON(w, http.StatusOK, api.Suggestion{Done: true, Reason: api.CodeInterrupted})
	case errors.Is(err, s.baseCtx.Err()), errors.Is(err, core.ErrInterrupted):
		// Server shutting down mid-ask; the conn is being torn down anyway.
		writeErr(w, http.StatusServiceUnavailable, api.CodeShuttingDown, "server shutting down")
	default:
		writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
	}
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, err := s.getSession(id)
	if err != nil {
		s.writeSessionErr(w, err)
		return
	}
	var ob api.Observation
	if err := json.NewDecoder(r.Body).Decode(&ob); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "invalid JSON: "+err.Error())
		return
	}
	ev := problem.Evaluation{Objective: ob.Objective, Constraints: ob.Constraints, Failed: ob.Failed}
	err = e.sess.TellCtx(s.engineCtx(r), ob.X, problem.Fidelity(ob.Fidelity), ev)
	switch {
	case err == nil:
		st := e.sess.Status()
		writeJSON(w, http.StatusOK, api.ObserveReply{Cost: st.Cost, Budget: st.Budget, Done: st.Phase == "done"})
	case errors.Is(err, core.ErrNoPendingAsk):
		writeErr(w, http.StatusConflict, api.CodeNoPendingAsk, err.Error())
	case errors.Is(err, core.ErrTellMismatch):
		writeErr(w, http.StatusConflict, api.CodeTellMismatch, err.Error())
	case errors.Is(err, core.ErrBudgetExhausted):
		writeErr(w, http.StatusConflict, api.CodeBudgetExhausted, err.Error())
	default:
		// Includes the lease fence tripping mid-Tell on a sharded replica
		// (wrong_owner): the checkpoint was refused, so the observation was
		// NOT ingested — the client must retry against the new owner.
		s.writeSessionErr(w, err)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, err := s.getSession(id)
	if err != nil {
		s.writeSessionErr(w, err)
		return
	}
	st := e.sess.Status()
	writeJSON(w, http.StatusOK, api.StatusReply{
		ID:           id,
		Problem:      e.req.Problem,
		Phase:        st.Phase,
		Iter:         st.Iter,
		Cost:         st.Cost,
		Budget:       st.Budget,
		NumLow:       st.NumLow,
		NumHigh:      st.NumHigh,
		NumFailed:    st.NumFailed,
		Observations: st.Observations,
		HasBest:      st.HasBest,
		BestX:        st.BestX,
		BestObj:      st.Best.Objective,
		BestCons:     st.Best.Constraints,
		Feasible:     st.Feasible,
		Degradations: st.Degradations,
		Interrupted:  st.Interrupted,
	})
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, err := s.getSession(id)
	if err != nil {
		s.writeSessionErr(w, err)
		return
	}
	hist := e.sess.History()
	obs := make([]api.HistoryObservation, len(hist))
	for i, h := range hist {
		obs[i] = api.HistoryObservation{
			Iter:        h.Iter,
			X:           h.X,
			Fidelity:    int(h.Fid),
			Objective:   h.Eval.Objective,
			Constraints: h.Eval.Constraints,
			Failed:      h.Eval.Failed,
			CumCost:     h.CumCost,
		}
	}
	writeJSON(w, http.StatusOK, api.HistoryReply{ID: id, Observations: obs})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Sharded: only the owner may destroy a session — a replica that merely
	// believes an old ring view must not delete state another replica is
	// actively serving from.
	if s.sharded() {
		if _, err := s.leases.Claim(id); err != nil {
			s.writeSessionErr(w, err)
			return
		}
	}
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if s.durable() {
		// Session-scoped kinds only: KindReplica records are replica-scoped
		// heartbeats, not session state, and must survive session deletion
		// even if a session ID collides with a replica ID. The lease record
		// (KindOwner) goes too — it never counts toward existence, since the
		// Claim above just created one.
		for _, kind := range []storage.Kind{storage.KindCheckpoint, storage.KindManifest, storage.KindTelemetry, storage.KindOwner} {
			if kind != storage.KindOwner {
				if _, err := s.store.Get(kind, id); err == nil {
					ok = true
				}
			}
			if err := s.store.Delete(kind, id); err != nil {
				s.logf("server: delete %s %s: %v", kind, id, err)
			}
		}
	}
	if !ok {
		writeErr(w, http.StatusNotFound, api.CodeNotFound, "session "+id+" not found")
		return
	}
	if s.met != nil {
		s.met.deleted.Inc()
	}
	s.logf("server: session %s deleted", id)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleProblems(w http.ResponseWriter, r *http.Request) {
	reply := api.ProblemsReply{Problems: catalog.Names()}
	if infos, err := catalog.Infos(); err == nil {
		for _, info := range infos {
			reply.Details = append(reply.Details, api.ProblemInfo{
				Name:        info.Name,
				Dim:         info.Dim,
				Constraints: info.Constraints,
				Rungs:       info.Rungs,
				RungCosts:   info.RungCosts,
			})
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

// handleTelemetry serves the session's buffered event stream: the newest
// EventRingSize structured optimizer events (iterations, spans, faults),
// oldest first, for live debugging of a stuck or slow run.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, err := s.getSession(id)
	if err != nil {
		s.writeSessionErr(w, err)
		return
	}
	reply := api.TelemetryReply{ID: id, Events: []json.RawMessage{}}
	if e.ring != nil {
		events := e.ring.Snapshot()
		reply.Dropped = e.ring.Dropped()
		reply.Events = make([]json.RawMessage, 0, len(events))
		for i := range events {
			raw, err := json.Marshal(&events[i])
			if err != nil {
				continue // unmarshalable event: skip rather than fail the reply
			}
			reply.Events = append(reply.Events, raw)
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

// handleLease grants one evaluation of the session to the requesting worker
// (see dispatch.Queue.Lease). The reply distinguishes "here is work", "no
// work right now, retry later" and "session finished".
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, err := s.getSession(id)
	if err != nil {
		s.writeSessionErr(w, err)
		return
	}
	var req api.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "invalid JSON: "+err.Error())
		return
	}
	width := e.req.Batch
	if width <= 0 {
		width = 1 // sessions are sequential unless created with batch > 1
	}
	ttl := time.Duration(req.TTLSeconds * float64(time.Second))
	// engineCtx (s.baseCtx + trace span), not r.Context(): the lease top-up
	// runs the shared engine's batch proposal — a worker disconnecting must
	// not interrupt it (see Server.baseCtx).
	grant, err := s.queue.Lease(s.engineCtx(r), id, req.Worker, ttl, width)
	switch {
	case err == nil:
		// The grant carries the suggesting request's trace context so the
		// worker's evaluation spans join the trace that asked for the work.
		writeJSON(w, http.StatusOK, api.LeaseReply{
			LeaseID:        grant.LeaseID,
			SuggestionID:   grant.Suggestion.ID,
			X:              grant.Suggestion.X,
			Fidelity:       int(grant.Suggestion.Fid),
			Iter:           grant.Suggestion.Iter,
			Attempt:        grant.Attempt,
			DeadlineUnixMs: grant.Deadline.UnixMilli(),
			TraceParent:    telemetry.SpanFromContext(r.Context()).Context().Traceparent(),
		})
	case errors.Is(err, dispatch.ErrNoWork):
		writeJSON(w, http.StatusOK, api.LeaseReply{
			None:              true,
			RetryAfterSeconds: s.queue.RetryAfter().Seconds(),
		})
	case errors.Is(err, core.ErrBudgetExhausted):
		writeJSON(w, http.StatusOK, api.LeaseReply{Done: true, Reason: api.CodeBudgetExhausted})
	case errors.Is(err, core.ErrInterrupted) && s.baseCtx.Err() == nil:
		writeJSON(w, http.StatusOK, api.LeaseReply{Done: true, Reason: api.CodeInterrupted})
	case errors.Is(err, s.baseCtx.Err()), errors.Is(err, core.ErrInterrupted):
		// Server shutting down mid-lease; workers retry against the restart.
		writeErr(w, http.StatusServiceUnavailable, api.CodeShuttingDown, "server shutting down")
	default:
		s.writeSessionErr(w, err)
	}
}

// handleReport ingests the outcome of a leased evaluation (out-of-order
// within the session's batch; see dispatch.Queue.Report).
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, err := s.getSession(id)
	if err != nil {
		s.writeSessionErr(w, err)
		return
	}
	var req api.ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.SuggestionID == "" {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "suggestion_id is required")
		return
	}
	ev := problem.Evaluation{Objective: req.Objective, Constraints: req.Constraints, Failed: req.Failed}
	ack, err := s.queue.ReportCtx(s.engineCtx(r), id, req.LeaseID, req.SuggestionID, req.IdempotencyKey, ev)
	switch {
	case err == nil:
		st := e.sess.Status()
		writeJSON(w, http.StatusOK, api.ReportReply{
			Cost:      st.Cost,
			Budget:    st.Budget,
			Done:      st.Phase == "done",
			Duplicate: ack.Duplicate,
		})
	case errors.Is(err, dispatch.ErrLeaseExpired):
		writeErr(w, http.StatusConflict, api.CodeLeaseExpired, err.Error())
	case errors.Is(err, core.ErrTellMismatch):
		writeErr(w, http.StatusConflict, api.CodeTellMismatch, err.Error())
	default:
		s.writeSessionErr(w, err)
	}
}

// handleHeartbeat extends a live lease; a 409 with code lease_expired tells
// the worker its lease is gone and the work unit should be dropped.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	deadline, err := s.queue.Heartbeat(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, api.HeartbeatReply{DeadlineUnixMs: deadline.UnixMilli()})
	case errors.Is(err, dispatch.ErrLeaseExpired):
		writeErr(w, http.StatusConflict, api.CodeLeaseExpired, err.Error())
	default:
		s.writeSessionErr(w, err)
	}
}

// handleHealth reports liveness plus the readiness facts an operator needs:
// uptime, live-session count, fit-limiter queue state, and — when sessions
// are durable — an actual write probe of the checkpoint directory, so a full
// disk flips OK to false before it eats a checkpoint.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.sessions)
	s.mu.RUnlock()
	reply := api.HealthReply{
		OK:              true,
		Sessions:        n,
		UptimeSeconds:   time.Since(s.started).Seconds(),
		Version:         buildinfo.Version(),
		CheckpointDir:   s.cfg.CheckpointDir,
		FitSlotsInUse:   s.limiter.InUse(),
		FitSlotsWaiting: s.limiter.Waiting(),
		FitSlots:        s.limiter.Cap(),
	}
	if s.durable() {
		reply.Storage = storageName(s.store)
		writable := s.store.Probe() == nil
		reply.CheckpointWritable = &writable
		if !writable {
			reply.OK = false
		}
	}
	if s.sharded() {
		reply.ReplicaID = s.leases.Replica()
		reply.OwnedSessions = n
		if ring, err := shard.LiveReplicas(s.store, time.Now()); err == nil {
			reply.Ring = ring
		}
	}
	status := http.StatusOK
	if !reply.OK {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, reply)
}

// storageName classifies the backend for the health reply.
func storageName(st storage.Store) string {
	switch st.(type) {
	case *storage.FS:
		return "fs"
	case *storage.Mem:
		return "mem"
	case *storage.Chaos:
		return "chaos"
	default:
		return fmt.Sprintf("%T", st)
	}
}

// writeSessionErr maps registry/session-construction failures onto wire
// errors.
func (s *Server) writeSessionErr(w http.ResponseWriter, err error) {
	var wrong *shard.WrongOwnerError
	switch {
	case errors.As(err, &wrong):
		retry := time.Until(wrong.Expires).Seconds()
		if retry < 0 {
			retry = 0
		}
		writeJSON(w, api.StatusWrongOwner, api.ErrorReply{
			Error:             err.Error(),
			Code:              api.CodeWrongOwner,
			Owner:             wrong.Owner,
			RetryAfterSeconds: retry,
		})
	case errors.Is(err, shard.ErrNotOwner):
		writeErr(w, api.StatusWrongOwner, api.CodeWrongOwner, err.Error())
	case errors.Is(err, errNotFound):
		writeErr(w, http.StatusNotFound, api.CodeNotFound, err.Error())
	case errors.Is(err, errShuttingDown):
		writeErr(w, http.StatusServiceUnavailable, api.CodeShuttingDown, err.Error())
	case errors.Is(err, core.ErrResumeMismatch):
		writeErr(w, http.StatusConflict, api.CodeResumeMismatch, err.Error())
	case strings.Contains(err.Error(), "unknown problem"):
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, api.ErrorReply{Error: msg, Code: code})
}

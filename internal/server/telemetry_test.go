package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/testfunc"
)

// TestServerTelemetryEndpointAndMetrics drives one session on an instrumented
// server and checks the two introspection surfaces: the per-session event
// ring at /v1/sessions/{id}/telemetry and the shared metrics registry the
// daemon exposes at /metrics.
func TestServerTelemetryEndpointAndMetrics(t *testing.T) {
	rec := telemetry.NewRecorder(nil, 1)
	_, ts, cl := newTestServer(t, server.Config{Telemetry: rec, EventRingSize: 256})
	ctx := context.Background()

	info, err := cl.CreateSession(ctx, fastReq("pedagogical", 8, 31))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Drive(ctx, info.ID, testfunc.Pedagogical()); err != nil {
		t.Fatal(err)
	}

	// Session event ring over the wire.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + info.ID + "/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("telemetry status = %d", resp.StatusCode)
	}
	var reply api.TelemetryReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.ID != info.ID || len(reply.Events) == 0 {
		t.Fatalf("telemetry reply: id=%q events=%d", reply.ID, len(reply.Events))
	}
	var runs, iters int
	for _, raw := range reply.Events {
		var ev telemetry.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("undecodable event %s: %v", raw, err)
		}
		switch {
		case ev.Run != nil:
			runs++
		case ev.Iteration != nil:
			iters++
		}
	}
	if runs != 1 || iters == 0 {
		t.Fatalf("event stream: %d run, %d iteration events", runs, iters)
	}

	// Unknown session → 404, not an empty reply.
	resp2, err := http.Get(ts.URL + "/v1/sessions/nope/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("missing-session telemetry status = %d", resp2.StatusCode)
	}

	// The shared registry saw the HTTP layer and the optimizer.
	var b strings.Builder
	if err := rec.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exposition := b.String()
	for _, want := range []string{
		`mfbo_http_requests_total{code="200",route="suggest"}`,
		`mfbo_http_requests_total{code="201",route="create"}`,
		"mfbo_http_request_seconds_bucket",
		"mfbo_sessions_created_total 1",
		"mfbo_sessions_live",
		"mfbo_fit_slots",
		"mfbo_iterations_total",
		`mfbo_evaluations_total{fidelity="high"}`,
	} {
		if !strings.Contains(exposition, want) {
			t.Fatalf("exposition missing %q:\n%s", want, exposition)
		}
	}
}

// TestServerTracePropagation checks the distributed-tracing middleware: a
// request carrying a W3C traceparent gets its server-side work — request
// span, engine spans, lease handling — joined to the caller's trace, and the
// lease reply relays the trace context onward for workers.
func TestServerTracePropagation(t *testing.T) {
	ring := telemetry.NewRing(4096)
	rec := telemetry.NewRecorder(ring, 1)
	_, ts, cl := newTestServer(t, server.Config{Telemetry: rec, EventRingSize: 256})
	ctx := context.Background()

	req := fastReq("pedagogical", 8, 33)
	req.Batch = 1
	info, err := cl.CreateSession(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	const parent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	tc, ok := telemetry.ParseTraceparent(parent)
	if !ok {
		t.Fatal("test traceparent invalid")
	}
	do := func(method, path, body string) *http.Response {
		t.Helper()
		hreq, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("traceparent", parent)
		if body != "" {
			hreq.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := do(http.MethodPost, "/v1/sessions/"+info.ID+"/lease", `{"worker":"w0"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease status = %d", resp.StatusCode)
	}
	var lease api.LeaseReply
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	if lease.None || lease.Done {
		t.Fatalf("lease reply: %+v", lease)
	}
	// The lease relays the request's trace so the worker's evaluation span
	// joins it.
	ltc, ok := telemetry.ParseTraceparent(lease.TraceParent)
	if !ok {
		t.Fatalf("lease TraceParent %q does not parse", lease.TraceParent)
	}
	if ltc.TraceHi != tc.TraceHi || ltc.TraceLo != tc.TraceLo {
		t.Fatalf("lease trace %s, want %s", ltc.TraceID(), tc.TraceID())
	}

	// Reporting the evaluation runs the Tell-side engine work synchronously
	// under the same trace.
	report, err := json.Marshal(api.ReportRequest{
		LeaseID:        lease.LeaseID,
		SuggestionID:   lease.SuggestionID,
		Objective:      1.5,
		IdempotencyKey: lease.SuggestionID + "/0",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp3 := do(http.MethodPost, "/v1/sessions/"+info.ID+"/report", string(report))
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d", resp3.StatusCode)
	}

	// Process-stream spans: the request spans continue the caller's trace and
	// parent on the caller's span; engine work nests beneath them.
	names := map[string]bool{}
	for _, ev := range ring.Snapshot() {
		if ev.Span == nil || ev.Span.Trace != tc.TraceID() {
			continue
		}
		names[ev.Span.Name] = true
		if strings.HasPrefix(ev.Span.Name, "server.") && ev.Span.Parent != tc.SpanID {
			t.Fatalf("%s parent = %016x, want caller's %016x", ev.Span.Name, ev.Span.Parent, tc.SpanID)
		}
	}
	for _, want := range []string{"server.lease", "server.report", "engine.tell"} {
		if !names[want] {
			t.Fatalf("no %q span joined trace %s (got %v)", want, tc.TraceID(), names)
		}
	}

	// A request without a traceparent starts a fresh local root — the server
	// must not refuse or mis-join untraced traffic.
	resp2, err := http.Get(ts.URL + "/v1/sessions/" + info.ID + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("untraced status = %d", resp2.StatusCode)
	}
}

// TestServerTelemetryDisabled checks the endpoint degrades gracefully when
// the ring is disabled (EventRingSize < 0) and that an uninstrumented server
// keeps working without a Telemetry recorder.
func TestServerTelemetryDisabled(t *testing.T) {
	_, ts, cl := newTestServer(t, server.Config{EventRingSize: -1})
	ctx := context.Background()
	info, err := cl.CreateSession(ctx, fastReq("forrester", 6, 5))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/sessions/" + info.ID + "/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply api.TelemetryReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Events) != 0 || reply.Dropped != 0 {
		t.Fatalf("disabled ring returned %d events", len(reply.Events))
	}
}

// TestHealthzExtended checks the readiness facts: session count, uptime, fit
// slots, and the checkpoint-directory write probe flipping the endpoint to
// 503 when the directory disappears.
func TestHealthzExtended(t *testing.T) {
	dir := t.TempDir() + "/ckpts"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	_, ts, cl := newTestServer(t, server.Config{CheckpointDir: dir})
	ctx := context.Background()

	if _, err := cl.CreateSession(ctx, fastReq("forrester", 6, 6)); err != nil {
		t.Fatal(err)
	}
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Sessions != 1 || h.UptimeSeconds < 0 || h.FitSlots < 1 {
		t.Fatalf("health = %+v", h)
	}
	if h.CheckpointDir != dir || h.CheckpointWritable == nil || !*h.CheckpointWritable {
		t.Fatalf("checkpoint probe = %+v", h)
	}

	// Losing the checkpoint directory flips readiness to 503 with OK=false.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status after losing dir = %d", resp.StatusCode)
	}
	var bad api.HealthReply
	if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
		t.Fatal(err)
	}
	if bad.OK || bad.CheckpointWritable == nil || *bad.CheckpointWritable {
		t.Fatalf("unwritable probe = %+v", bad)
	}

	// Restore the directory so the shutdown persistence in Cleanup succeeds.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
}

// Sharding glue: what turns a single-node server into one replica of a
// horizontally sharded deployment. Setting Config.ReplicaID (plus a durable
// store shared by every replica) switches the registry to lease-guarded
// ownership:
//
//   - a session is claimed (internal/shard.Leases) before it is built or
//     restored, so exactly one replica has it resident at a time;
//   - a background renewer keeps the leases of resident sessions alive and
//     drops — WITHOUT persisting — any session whose lease moved to another
//     replica (our state is stale; a goodbye write would clobber the new
//     owner's newer checkpoints);
//   - every checkpoint Put goes through fencedStore, which re-verifies the
//     lease immediately before writing, so acks keep their meaning: an
//     observation is acknowledged only if its checkpoint landed under a
//     live, owned lease;
//   - requests for sessions owned elsewhere answer wrong_owner (HTTP 421)
//     with the owner's identity and the remaining lease TTL as routing
//     hints for the gateway.
package server

import (
	"errors"
	"time"

	"repro/internal/shard"
	"repro/internal/storage"
)

// sharded reports whether this server runs as one replica of a sharded
// deployment (Config.ReplicaID set).
func (s *Server) sharded() bool { return s.leases != nil }

// claimOwnership acquires the session's ownership lease (no-op epoch 0 when
// unsharded). The returned epoch fences every subsequent write of the
// session through fencedStore.
func (s *Server) claimOwnership(id string) (uint64, error) {
	if !s.sharded() {
		return 0, nil
	}
	info, err := s.leases.Claim(id)
	if err != nil {
		return 0, err
	}
	return info.Epoch, nil
}

// fencedStore guards a sharded session's writes with its ownership lease:
// every Put re-verifies owner + epoch + expiry margin immediately before
// writing, so a paused or partitioned ex-owner refuses the write instead of
// clobbering the replica that took the session over. Reads and deletes pass
// through — restores happen under a freshly claimed lease.
type fencedStore struct {
	storage.Store
	leases *shard.Leases
	id     string
	epoch  uint64
}

func (f *fencedStore) Put(kind storage.Kind, id string, data []byte) error {
	if err := f.leases.Verify(f.id, f.epoch); err != nil {
		return err
	}
	return f.Store.Put(kind, id, data)
}

// sessionStore returns the store a session persists through: the shared
// engine directly when unsharded, lease-fenced when sharded.
func (s *Server) sessionStore(id string, epoch uint64) storage.Store {
	if !s.sharded() || s.store == nil {
		return s.store
	}
	return &fencedStore{Store: s.store, leases: s.leases, id: id, epoch: epoch}
}

// renewer keeps the ownership leases of resident sessions alive, ticking a
// few times per TTL so an ordinarily scheduled replica never lets a lease
// lapse while it still serves the session.
func (s *Server) renewer() {
	defer close(s.renewDone)
	tick := time.NewTicker(s.leases.TTL() / 3)
	defer tick.Stop()
	for {
		select {
		case <-s.renewStop:
			return
		case <-tick.C:
			s.renewOwned()
		}
	}
}

func (s *Server) renewOwned() {
	type owned struct {
		id string
		e  *entry
	}
	s.mu.RLock()
	list := make([]owned, 0, len(s.sessions))
	for id, e := range s.sessions {
		list = append(list, owned{id, e})
	}
	s.mu.RUnlock()
	for _, o := range list {
		_, err := s.leases.Renew(o.id, o.e.epoch)
		if errors.Is(err, shard.ErrNotOwner) {
			s.dropNotOwned(o.id, o.e)
		} else if err != nil {
			// Store hiccup: leave the session resident; the fence on its next
			// checkpoint write is what actually protects correctness.
			s.logf("server: renew lease %s: %v", o.id, err)
		}
	}
}

// dropNotOwned evicts a session whose lease moved to another replica. No
// persistence pass: the new owner restored from the checkpoints this replica
// wrote while it still held the lease, and anything newer in our memory was
// never acknowledged.
func (s *Server) dropNotOwned(id string, e *entry) {
	s.mu.Lock()
	if s.sessions[id] == e {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	s.logf("server: session %s moved to another replica; dropped without persisting", id)
}

// releaseOwned voluntarily surrenders one session's lease (graceful
// shutdown, after the final persistence pass) so the next replica claims it
// immediately instead of waiting out the TTL.
func (s *Server) releaseOwned(id string, e *entry) {
	if !s.sharded() {
		return
	}
	if err := s.leases.Release(id, e.epoch); err != nil {
		s.logf("server: release lease %s: %v", id, err)
	}
}

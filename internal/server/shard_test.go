package server_test

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/problem"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/testfunc"
)

// newReplica boots one sharded replica over the shared store. No client
// retries here: these tests assert raw wire behavior (421s included).
func newReplica(t *testing.T, store storage.Store, id string, ttl time.Duration) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(server.Config{Store: store, ReplicaID: id, OwnershipTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	return srv, ts
}

// drive answers suggestions with real evaluations until done or n
// observations were ingested (n < 0 = until done); returns observations made.
func drive(t *testing.T, ts *httptest.Server, id string, p problem.Problem, n int) int {
	t.Helper()
	made := 0
	for n < 0 || made < n {
		var sug api.Suggestion
		getJSON(t, ts, "/v1/sessions/"+id+"/suggest", &sug)
		if sug.Done {
			break
		}
		ev := p.Evaluate(sug.X, problem.Fidelity(sug.Fidelity))
		ob := api.Observation{X: sug.X, Fidelity: sug.Fidelity, Objective: ev.Objective, Constraints: ev.Constraints, Failed: ev.Failed}
		var rep api.ObserveReply
		postJSON(t, ts, "/v1/sessions/"+id+"/observations", ob, &rep)
		made++
		if rep.Done {
			break
		}
	}
	return made
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er api.ErrorReply
		_ = json.NewDecoder(resp.Body).Decode(&er)
		t.Fatalf("GET %s: %d %+v", path, resp.StatusCode, er)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path string, in, out any) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var er api.ErrorReply
		_ = json.NewDecoder(resp.Body).Decode(&er)
		t.Fatalf("POST %s: %d %+v", path, resp.StatusCode, er)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// rawStatus returns status code + error reply without failing on non-2xx.
func rawGet(t *testing.T, ts *httptest.Server, path string) (int, api.ErrorReply) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er api.ErrorReply
	_ = json.NewDecoder(resp.Body).Decode(&er)
	return resp.StatusCode, er
}

// TestShardedWrongOwner: a session claimed by replica A answers wrong_owner
// (421, with owner + retry hints) when its requests land on replica B.
func TestShardedWrongOwner(t *testing.T) {
	store := storage.NewMem(storage.MemConfig{})
	srvA, tsA := newReplica(t, store, "ra", time.Minute)
	defer func() { tsA.Close(); _ = srvA.Close() }()
	srvB, tsB := newReplica(t, store, "rb", time.Minute)
	defer func() { tsB.Close(); _ = srvB.Close() }()

	req := fastReq("forrester", 6, 1)
	req.ID = "shared-session"
	var info api.SessionInfo
	postJSON(t, tsA, "/v1/sessions", req, &info)

	code, er := rawGet(t, tsB, "/v1/sessions/shared-session/status")
	if code != api.StatusWrongOwner || er.Code != api.CodeWrongOwner {
		t.Fatalf("replica B answered %d %+v, want 421 wrong_owner", code, er)
	}
	if er.Owner != "ra" {
		t.Fatalf("wrong_owner names owner %q, want ra", er.Owner)
	}
	if er.RetryAfterSeconds <= 0 || er.RetryAfterSeconds > 61 {
		t.Fatalf("retry hint %v not within the lease TTL", er.RetryAfterSeconds)
	}
	// A fresh create for an owned session 421s too (resume or not).
	resp, err := tsB.Client().Post(tsB.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"id":"shared-session","problem":"forrester","budget":6,"resume":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != api.StatusWrongOwner {
		t.Fatalf("resume on replica B answered %d, want 421", resp.StatusCode)
	}
}

// TestShardedGracefulHandoff: replica A serves half the session, releases on
// Close, replica B claims instantly and finishes it — and the stitched
// trajectory is bit-identical to the unsharded in-process reference.
func TestShardedGracefulHandoff(t *testing.T) {
	ref, err := core.Optimize(testfunc.Forrester(), fastCfg(8), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}

	store := storage.NewMem(storage.MemConfig{})
	srvA, tsA := newReplica(t, store, "ra", time.Minute)
	req := fastReq("forrester", 8, 42)
	req.ID = "hand"
	var info api.SessionInfo
	postJSON(t, tsA, "/v1/sessions", req, &info)
	drive(t, tsA, "hand", testfunc.Forrester(), 6)
	tsA.Close()
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}

	// No TTL wait: the released lease is claimable immediately.
	srvB, tsB := newReplica(t, store, "rb", time.Minute)
	defer func() { tsB.Close(); _ = srvB.Close() }()
	drive(t, tsB, "hand", testfunc.Forrester(), -1)

	var hist api.HistoryReply
	getJSON(t, tsB, "/v1/sessions/hand/history", &hist)
	sameHistory(t, hist.Observations, ref.History)
}

// TestShardedKillHandoff: replica A is killed mid-session (no lease release,
// no final persist). Until the lease TTL lapses replica B answers
// wrong_owner; after it, B claims the session, restores the checkpoint that
// backed every acked observation, and converges bit-identically.
func TestShardedKillHandoff(t *testing.T) {
	ref, err := core.Optimize(testfunc.ConstrainedSynthetic(), fastCfg(8), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}

	const ttl = 300 * time.Millisecond
	store := storage.NewMem(storage.MemConfig{})
	srvA, tsA := newReplica(t, store, "ra", ttl)
	req := fastReq("constrained", 8, 7)
	req.ID = "kill"
	var info api.SessionInfo
	postJSON(t, tsA, "/v1/sessions", req, &info)
	drive(t, tsA, "kill", testfunc.ConstrainedSynthetic(), 7)
	srvA.Kill()
	tsA.Close()

	srvB, tsB := newReplica(t, store, "rb", ttl)
	defer func() { tsB.Close(); _ = srvB.Close() }()

	// The dead replica's lease must hold B off until it expires…
	if code, er := rawGet(t, tsB, "/v1/sessions/kill/status"); code != api.StatusWrongOwner {
		t.Fatalf("status before lease expiry answered %d %+v, want 421", code, er)
	}
	// …and admit B afterwards.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, er := rawGet(t, tsB, "/v1/sessions/kill/status")
		if code == http.StatusOK {
			break
		}
		if code != api.StatusWrongOwner {
			t.Fatalf("unexpected reply during takeover: %d %+v", code, er)
		}
		if time.Now().After(deadline) {
			t.Fatal("replica B never took the session over")
		}
		time.Sleep(ttl / 4)
	}
	drive(t, tsB, "kill", testfunc.ConstrainedSynthetic(), -1)

	var hist api.HistoryReply
	getJSON(t, tsB, "/v1/sessions/kill/history", &hist)
	sameHistory(t, hist.Observations, ref.History)
}

// TestShardedHealthz: replicas report their identity, owned-session count and
// the membership-derived ring view.
func TestShardedHealthz(t *testing.T) {
	store := storage.NewMem(storage.MemConfig{})
	srvA, tsA := newReplica(t, store, "ra", time.Minute)
	defer func() { tsA.Close(); _ = srvA.Close() }()
	srvB, tsB := newReplica(t, store, "rb", time.Minute)

	var h api.HealthReply
	getJSON(t, tsA, "/v1/healthz", &h)
	if h.ReplicaID != "ra" {
		t.Fatalf("replica_id = %q", h.ReplicaID)
	}
	if len(h.Ring) != 2 || h.Ring[0] != "ra" || h.Ring[1] != "rb" {
		t.Fatalf("ring = %v", h.Ring)
	}
	if h.OwnedSessions != 0 {
		t.Fatalf("owned = %d before any session", h.OwnedSessions)
	}
	var info api.SessionInfo
	postJSON(t, tsA, "/v1/sessions", fastReq("forrester", 4, 3), &info)
	getJSON(t, tsA, "/v1/healthz", &h)
	if h.OwnedSessions != 1 {
		t.Fatalf("owned = %d after create", h.OwnedSessions)
	}
	// Graceful close removes rb from the view immediately.
	tsB.Close()
	if err := srvB.Close(); err != nil {
		t.Fatal(err)
	}
	getJSON(t, tsA, "/v1/healthz", &h)
	if len(h.Ring) != 1 || h.Ring[0] != "ra" {
		t.Fatalf("ring after close = %v", h.Ring)
	}
}

// TestShardedDeleteRequiresOwnership: deleting a session another replica
// serves answers wrong_owner instead of destroying live state.
func TestShardedDeleteRequiresOwnership(t *testing.T) {
	store := storage.NewMem(storage.MemConfig{})
	srvA, tsA := newReplica(t, store, "ra", time.Minute)
	defer func() { tsA.Close(); _ = srvA.Close() }()
	srvB, tsB := newReplica(t, store, "rb", time.Minute)
	defer func() { tsB.Close(); _ = srvB.Close() }()

	req := fastReq("forrester", 4, 5)
	req.ID = "owned"
	var info api.SessionInfo
	postJSON(t, tsA, "/v1/sessions", req, &info)

	del, err := http.NewRequest(http.MethodDelete, tsB.URL+"/v1/sessions/owned", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tsB.Client().Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != api.StatusWrongOwner {
		t.Fatalf("delete on non-owner answered %d, want 421", resp.StatusCode)
	}
	// The owner still serves it.
	if code, _ := rawGet(t, tsA, "/v1/sessions/owned/status"); code != http.StatusOK {
		t.Fatalf("owner lost the session: %d", code)
	}
}

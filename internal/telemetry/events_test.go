package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRingKeepsNewestOldestFirst(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Type: EventIteration, Iteration: &IterationEvent{Iter: i}})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	for i, ev := range snap {
		if ev.Iteration.Iter != i+2 {
			t.Fatalf("snapshot[%d].Iter = %d, want %d", i, ev.Iteration.Iter, i+2)
		}
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
}

func TestRingPartialAndMinCapacity(t *testing.T) {
	r := NewRing(4)
	r.Emit(Event{Type: EventRun})
	r.Emit(Event{Type: EventSpan})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Type != EventRun || snap[1].Type != EventSpan {
		t.Fatalf("partial snapshot = %+v", snap)
	}
	if r.Dropped() != 0 {
		t.Fatal("no events should be dropped before the ring fills")
	}
	// Capacity is clamped to at least 1.
	tiny := NewRing(0)
	tiny.Emit(Event{Type: EventRun})
	tiny.Emit(Event{Type: EventFault})
	if snap := tiny.Snapshot(); len(snap) != 1 || snap[0].Type != EventFault {
		t.Fatalf("tiny ring snapshot = %+v", snap)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Emit(Event{Type: EventSpan})
				if i%50 == 0 {
					_ = r.Snapshot()
					_ = r.Dropped()
				}
			}
		}()
	}
	wg.Wait()
	if got := len(r.Snapshot()); got != 64 {
		t.Fatalf("full ring snapshot len = %d", got)
	}
	if r.Dropped() != 8*200-64 {
		t.Fatalf("dropped = %d, want %d", r.Dropped(), 8*200-64)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(Event{Type: EventRun, TimeUnixMs: 1, Run: &RunEvent{
		Problem: "pedagogical", Dim: 1, Budget: 15, Gamma: 0.01, InitLow: 8, InitHigh: 4,
	}})
	j.Emit(Event{Type: EventIteration, TimeUnixMs: 2, Iteration: &IterationEvent{
		Iter: 0, Fidelity: "high", Sigma2Max: 0.003, Threshold: 0.01, HasSigma2: true,
		AcqHigh: 1.5, X: []float64{0.25}, Objective: -5.5, CumCost: 12.2,
		NLMLLow: []float64{-3.1}, MSPStartsHigh: 6,
	}})
	j.Emit(Event{Type: EventFault, TimeUnixMs: 3, Fault: &FaultEvent{
		Fidelity: "low", Kind: "retry", Attempt: 1, Err: "boom",
	}})
	j.Emit(Event{Type: EventSpan, TimeUnixMs: 4, Span: &SpanEvent{
		ID: 1, Name: "engine.ask", StartUnixNs: 10, DurNs: 99,
		Attrs: map[string]float64{"iter": 0},
	}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("read %d events, want 4", len(events))
	}
	if events[0].Run == nil || events[0].Run.Problem != "pedagogical" {
		t.Fatalf("run event = %+v", events[0])
	}
	it := events[1].Iteration
	if it == nil || it.Fidelity != "high" || !it.HasSigma2 || it.Sigma2Max != 0.003 ||
		it.Threshold != 0.01 || it.AcqHigh != 1.5 || it.X[0] != 0.25 ||
		it.NLMLLow[0] != -3.1 || it.MSPStartsHigh != 6 {
		t.Fatalf("iteration event = %+v", it)
	}
	if f := events[2].Fault; f == nil || f.Kind != "retry" || f.Err != "boom" {
		t.Fatalf("fault event = %+v", f)
	}
	if sp := events[3].Span; sp == nil || sp.Name != "engine.ask" || sp.DurNs != 99 || sp.Attrs["iter"] != 0 {
		t.Fatalf("span event = %+v", sp)
	}
}

func TestJSONLFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/events.jsonl"
	j, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Type: EventRun, Run: &RunEvent{Problem: "x"}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJSONLFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Run.Problem != "x" {
		t.Fatalf("file round trip = %+v", events)
	}
}

func TestReadJSONLMalformedLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"type\":\"run\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 failure", err)
	}
}

// errSink always fails at marshal time via an unmarshalable attr — instead we
// test sticky write errors with a writer that fails.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return 0, fmt.Errorf("disk full")
}

func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(&failWriter{})
	for i := 0; i < 3000; i++ { // overflow the bufio buffer to force a write
		j.Emit(Event{Type: EventSpan, Span: &SpanEvent{Name: strings.Repeat("x", 64)}})
	}
	if err := j.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("sticky error = %v", err)
	}
}

func TestMultiFiltersNils(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	var nilRing *Ring
	var nilJSONL *JSONL
	if Multi(nilRing, nilJSONL, nil) != nil {
		t.Fatal("Multi of typed nils should be nil")
	}
	r := NewRing(4)
	if s := Multi(nilJSONL, r); s != Sink(r) {
		t.Fatal("single live sink should be returned unwrapped")
	}
	r2 := NewRing(4)
	m := Multi(r, r2)
	m.Emit(Event{Type: EventRun})
	if len(r.Snapshot()) != 1 || len(r2.Snapshot()) != 1 {
		t.Fatal("multi did not fan out")
	}
}

func TestTracerSampling(t *testing.T) {
	ring := NewRing(64)
	tr := NewTracer(ring, 3)
	sampled := 0
	for i := 0; i < 9; i++ {
		sp := tr.Start("root")
		if sp != nil {
			sampled++
			child := sp.Child("child")
			child.Attr("k", 1)
			child.End()
			sp.End()
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d roots of 9 at 1/3, want 3", sampled)
	}
	snap := ring.Snapshot()
	if len(snap) != 6 { // 3 roots + 3 children
		t.Fatalf("emitted %d span events, want 6", len(snap))
	}
	// Children end before parents and carry the parent link.
	if snap[0].Span.Name != "child" || snap[0].Span.Parent == 0 {
		t.Fatalf("first span = %+v", snap[0].Span)
	}
	if snap[1].Span.Name != "root" || snap[1].Span.Parent != 0 {
		t.Fatalf("second span = %+v", snap[1].Span)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	ring := NewRing(8)
	tr := NewTracer(ring, 1)
	sp := tr.Start("once")
	sp.End()
	sp.End()
	if n := len(ring.Snapshot()); n != 1 {
		t.Fatalf("double End emitted %d events", n)
	}
}

func TestRecorderChildSharesRegistryAndFansOut(t *testing.T) {
	parentRing := NewRing(8)
	parent := NewRecorder(parentRing, 1)
	childRing := NewRing(8)
	child := parent.Child(childRing)

	if child.Registry() != parent.Registry() {
		t.Fatal("child must share the parent registry")
	}
	child.EmitIteration(&IterationEvent{Iter: 7})
	if len(parentRing.Snapshot()) != 1 || len(childRing.Snapshot()) != 1 {
		t.Fatal("child events must reach both sinks")
	}
	sp := child.StartSpan("s")
	sp.End()
	if len(childRing.Snapshot()) != 2 {
		t.Fatal("child spans must reach the child ring")
	}

	// A child of a nil recorder still works, sinking only to its own ring.
	var nilRec *Recorder
	orphan := nilRec.Child(childRing)
	orphan.EmitIteration(&IterationEvent{Iter: 1})
	if len(childRing.Snapshot()) != 3 {
		t.Fatal("orphan child lost its event")
	}
}

func TestRecorderEmitStampsTime(t *testing.T) {
	ring := NewRing(4)
	rec := NewRecorder(ring, 1)
	rec.Emit(Event{Type: EventRun, Run: &RunEvent{}})
	if ring.Snapshot()[0].TimeUnixMs == 0 {
		t.Fatal("Emit must stamp TimeUnixMs")
	}
	rec.Emit(Event{Type: EventRun, TimeUnixMs: 42, Run: &RunEvent{}})
	if ring.Snapshot()[1].TimeUnixMs != 42 {
		t.Fatal("Emit must preserve an explicit timestamp")
	}
}

func TestSummarizeAndTable(t *testing.T) {
	events := []Event{
		{Run: &RunEvent{Problem: "p", Dim: 2, NumConstraints: 1, Budget: 20, Gamma: 0.01, InitLow: 4, InitHigh: 2}},
		// Two init observations (Iter == -1).
		{Iteration: &IterationEvent{Iter: -1, Fidelity: "low"}},
		{Iteration: &IterationEvent{Iter: -1, Fidelity: "high"}},
		// Adaptive iterations.
		{Iteration: &IterationEvent{Iter: 0, Fidelity: "low", HasSigma2: true, Sigma2Max: 0.5, Threshold: 0.02, Objective: 3, CumCost: 5}},
		{Iteration: &IterationEvent{Iter: 1, Fidelity: "high", HasSigma2: true, Sigma2Max: 0.001, Threshold: 0.02, AcqHigh: 2.5, Objective: -1.25, CumCost: 6, Bootstrap: true}},
		{Iteration: &IterationEvent{Iter: 2, Fidelity: "high", Objective: -0.5, CumCost: 7, Failed: true, Degrade: "warm-hypers", DuplicateFallback: true}},
		{Span: &SpanEvent{Name: "gp.fit", DurNs: 4e6}},
		{Span: &SpanEvent{Name: "gp.fit", DurNs: 2e6}},
		{Span: &SpanEvent{Name: "engine.ask", DurNs: 9e6}},
	}
	s := Summarize(events)
	if s.Run == nil || s.InitLow != 1 || s.InitHigh != 1 {
		t.Fatalf("init accounting: %+v", s)
	}
	if len(s.Iterations) != 3 || s.NumLow != 1 || s.NumHigh != 2 {
		t.Fatalf("iteration accounting: %+v", s)
	}
	if s.NumFailed != 1 || s.Degraded != 1 || s.Bootstrap != 1 || s.Duplicates != 1 {
		t.Fatalf("flag accounting: %+v", s)
	}
	if st := s.Spans["gp.fit"]; st.Count != 2 || st.TotalNs != 6e6 || st.MaxNs != 4e6 {
		t.Fatalf("span stats: %+v", st)
	}

	table := s.Table()
	for _, want := range []string{
		"problem=p", "sigma2_max", "bootstrap", "degrade:warm-hypers",
		"dup-fallback", "FAILED", "-1.25",
		"2 init (1 low + 1 high)", "3 adaptive (1 low + 2 high)",
	} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	// The failed high observation must not become the running best: the row
	// flagged FAILED still shows -1.25 as the incumbent.
	for _, line := range strings.Split(table, "\n") {
		if strings.Contains(line, "FAILED") && !strings.Contains(line, "-1.25") {
			t.Fatalf("failed row affected the running best:\n%s", table)
		}
	}

	spans := s.SpanTable()
	if !strings.Contains(spans, "engine.ask") || !strings.Contains(spans, "gp.fit") {
		t.Fatalf("span table:\n%s", spans)
	}
	// Sorted by total time: engine.ask (9ms) first.
	if strings.Index(spans, "engine.ask") > strings.Index(spans, "gp.fit") {
		t.Fatalf("span table not sorted by total:\n%s", spans)
	}
	if (&Summary{Spans: map[string]SpanStats{}}).SpanTable() != "no spans recorded\n" {
		t.Fatal("empty span table")
	}
}

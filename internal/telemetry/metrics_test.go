package telemetry

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Idempotent lookup returns the live metric.
	if r.Counter("c_total", "a counter").Value() != 5 {
		t.Fatal("second lookup did not return the same counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "", "route", "create")
	b := r.Counter("reqs_total", "", "route", "delete")
	a.Inc()
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 1 {
		t.Fatalf("label series leaked: %d, %d", a.Value(), b.Value())
	}
	// Label order must not matter.
	x := r.Counter("multi_total", "", "b", "2", "a", "1")
	y := r.Counter("multi_total", "", "a", "1", "b", "2")
	x.Inc()
	if y.Value() != 1 {
		t.Fatal("label ordering created distinct series")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 5})
	// v <= le semantics: an observation exactly on a bound lands in that
	// bucket.
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 5.0, 7.0} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	// le=1: {0.5, 1.0}; le=2: +{1.5, 2.0}; le=5: +{5.0}; +Inf: +{7.0}.
	want := []uint64{2, 4, 5}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (cum=%v)", i, cum[i], want[i], cum)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-17.0) > 1e-12 {
		t.Fatalf("sum = %v, want 17", h.Sum())
	}
	// NaN observations are dropped, not counted.
	h.Observe(math.NaN())
	if h.Count() != 6 {
		t.Fatal("NaN observation was counted")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestNilRegistryAndMetricsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("nope", "")
	g := r.Gauge("nope2", "")
	h := r.Histogram("nope3", "", nil)
	r.GaugeFunc("nope4", "", func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestNoopPathAllocations pins the zero-allocation contract of the disabled
// telemetry path: the optimizer hot loops call these on nil receivers every
// iteration.
func TestNoopPathAllocations(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var sp *Span
	var tr *Tracer
	var rec *Recorder
	var cv *CounterVec
	ctx := context.Background()
	remote := TraceContext{TraceHi: 1, TraceLo: 2, SpanID: 3, Sampled: true}
	n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(1)
		h.Observe(0.5)
		cv.With("a", "b").Inc()
		_ = tr.Start("x")
		_ = tr.StartRemote("x", remote)
		_ = sp.Child("y")
		sp.Attr("k", 1)
		sp.End()
		_ = sp.Context()
		rec.EmitIteration(nil)
		_ = rec.StartSpan("z")
		_ = rec.StartSpanIn(ctx, "z")
		_ = SpanFromContext(ctx)
		_ = ContextWithSpan(ctx, nil) // nil span: ctx returned unchanged
		_ = Detach(ctx)
	})
	if n != 0 {
		t.Fatalf("no-op telemetry path allocates %v times per run", n)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "total requests", "route", "create").Add(3)
	r.Counter("app_requests_total", "total requests", "route", "delete").Inc()
	r.Gauge("app_live", "live sessions").Set(2)
	r.GaugeFunc("app_uptime_seconds", "uptime", func() float64 { return 1.5 })
	h := r.Histogram("app_latency_seconds", "request latency", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)
	hl := r.Histogram("app_fit_seconds", "fit latency", []float64{1}, "kind", "low")
	hl.Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP app_requests_total total requests
# TYPE app_requests_total counter
app_requests_total{route="create"} 3
app_requests_total{route="delete"} 1
# HELP app_live live sessions
# TYPE app_live gauge
app_live 2
# HELP app_uptime_seconds uptime
# TYPE app_uptime_seconds gauge
app_uptime_seconds 1.5
# HELP app_latency_seconds request latency
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.5"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 3
app_latency_seconds_count 3
# HELP app_fit_seconds fit latency
# TYPE app_fit_seconds histogram
app_fit_seconds_bucket{kind="low",le="1"} 1
app_fit_seconds_bucket{kind="low",le="+Inf"} 1
app_fit_seconds_sum{kind="low"} 0.5
app_fit_seconds_count{kind="low"} 1
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("one_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "one_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", "k", "v").Add(7)
	r.Gauge("g", "").Set(1.25)
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	snap := r.Snapshot()
	if snap[`c_total{k="v"}`] != uint64(7) {
		t.Fatalf("counter snapshot = %v", snap[`c_total{k="v"}`])
	}
	if snap["g"] != 1.25 {
		t.Fatalf("gauge snapshot = %v", snap["g"])
	}
	hs, ok := snap["h"].(HistogramSnapshot)
	if !ok {
		t.Fatalf("histogram snapshot type %T", snap["h"])
	}
	if hs.Count != 2 || hs.Cumsum[0] != 1 || hs.Cumsum[1] != 2 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
	} {
		if got := formatFloat(v); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Fatalf("formatFloat(NaN) = %q", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	ls := labelString([]string{"msg", "a\"b\\c\nd"})
	if ls != `{msg="a\"b\\c\nd"}` {
		t.Fatalf("escaped label = %q", ls)
	}
}

// TestRegistryConcurrency exercises registration and updates from many
// goroutines; run with -race to validate the locking discipline.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			route := string(rune('a' + w%4))
			for i := 0; i < 500; i++ {
				r.Counter("conc_total", "", "route", route).Inc()
				r.Gauge("conc_gauge", "").Add(1)
				r.Histogram("conc_hist", "", nil, "route", route).Observe(float64(i) / 100)
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, route := range []string{"a", "b", "c", "d"} {
		total += r.Counter("conc_total", "", "route", route).Value()
	}
	if total != workers*500 {
		t.Fatalf("lost increments: %d, want %d", total, workers*500)
	}
	if g := r.Gauge("conc_gauge", "").Value(); g != workers*500 {
		t.Fatalf("lost gauge adds: %v", g)
	}
}

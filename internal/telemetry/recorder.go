package telemetry

import "context"

// Recorder bundles the three observability planes — metrics, structured
// events, trace spans — into the single handle the optimizer stack threads
// around. Any (or all) of the fields may be nil; every method is nil-safe
// with zero allocations on the no-op path, so `var r *Recorder; r.Emit(...)`
// is legal and free.
type Recorder struct {
	// Metrics is the registry counters/gauges/histograms register into.
	Metrics *Registry
	// Events receives the structured event stream (iterations, spans,
	// faults).
	Events Sink
	// Tracer creates spans; typically built over the same sink.
	Tracer *Tracer
}

// NewRecorder builds a recorder over a fresh registry, the given sink, and a
// tracer emitting every sampleEvery-th root span into the sink.
func NewRecorder(sink Sink, sampleEvery int) *Recorder {
	return &Recorder{
		Metrics: NewRegistry(),
		Events:  sink,
		Tracer:  NewTracer(sink, sampleEvery),
	}
}

// Emit sends one event to the sink (nil-safe). The envelope's timestamp is
// stamped here when unset.
func (r *Recorder) Emit(ev Event) {
	if r == nil || r.Events == nil {
		return
	}
	if ev.TimeUnixMs == 0 {
		ev.TimeUnixMs = nowUnixMs()
	}
	r.Events.Emit(ev)
}

// EmitIteration wraps one IterationEvent in its envelope and emits it.
func (r *Recorder) EmitIteration(it *IterationEvent) {
	if r == nil || r.Events == nil || it == nil {
		return
	}
	r.Emit(Event{Type: EventIteration, Iteration: it})
}

// EmitRun emits run metadata.
func (r *Recorder) EmitRun(run *RunEvent) {
	if r == nil || r.Events == nil || run == nil {
		return
	}
	r.Emit(Event{Type: EventRun, Run: run})
}

// StartSpan begins a root span (nil when tracing is off or unsampled).
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return r.Tracer.Start(name)
}

// StartSpanIn begins a span inside the trace carried by ctx: when ctx holds
// a request span (put there by server middleware), the new span continues
// that trace on r's own tracer — so it lands in r's sinks, e.g. the
// per-session ring, not just the process stream — parented on the request
// span. With no span in ctx it falls back to a locally sampled root.
// Nil-safe with zero allocations when r is nil or the request is unsampled.
func (r *Recorder) StartSpanIn(ctx context.Context, name string) *Span {
	if r == nil {
		return nil
	}
	if parent := SpanFromContext(ctx); parent != nil {
		return r.Tracer.StartRemote(name, parent.Context())
	}
	return r.Tracer.Start(name)
}

// SetService stamps the service name onto r's tracer (nil-safe); Child
// recorders inherit it.
func (r *Recorder) SetService(name string) {
	if r == nil {
		return
	}
	r.Tracer.SetService(name)
}

// Registry returns the metrics registry (nil-safe).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.Metrics
}

// Child derives a recorder that shares r's metrics registry and tracer
// sampling but emits events into sink as well as r's own sink — the
// per-session pattern: the server keeps one registry while every session
// also fills its own introspection ring.
func (r *Recorder) Child(sink Sink) *Recorder {
	if r == nil {
		return &Recorder{Events: sink, Tracer: NewTracer(sink, 1)}
	}
	combined := Multi(r.Events, sink)
	every := 1
	service := ""
	if r.Tracer != nil {
		every = int(r.Tracer.sampleEvery)
		service = r.Tracer.service
	}
	tr := NewTracer(combined, every)
	tr.SetService(service)
	return &Recorder{
		Metrics: r.Metrics,
		Events:  combined,
		Tracer:  tr,
	}
}

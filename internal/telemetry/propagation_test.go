package telemetry

import (
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		tc := TraceContext{
			TraceHi: rng.Uint64(),
			TraceLo: rng.Uint64(),
			SpanID:  rng.Uint64(),
			Sampled: rng.Intn(2) == 0,
		}
		if tc.SpanID == 0 {
			tc.SpanID = 1
		}
		if tc.TraceHi == 0 && tc.TraceLo == 0 {
			tc.TraceLo = 1
		}
		h := tc.Traceparent()
		if len(h) != 55 {
			t.Fatalf("Traceparent() = %q, want 55 bytes", h)
		}
		got, ok := ParseTraceparent(h)
		if !ok || got != tc {
			t.Fatalf("round trip: %q -> (%+v, %v), want %+v", h, got, ok, tc)
		}
	}
}

func TestInjectExtractRoundTrip(t *testing.T) {
	tc := TraceContext{TraceHi: 0xdeadbeef, TraceLo: 0xcafe, SpanID: 0x1234, Sampled: true}
	h := make(http.Header)
	tc.Inject(h)
	got, ok := Extract(h)
	if !ok || got != tc {
		t.Fatalf("Extract = (%+v, %v), want %+v", got, ok, tc)
	}

	// Invalid contexts must not set the header at all.
	h = make(http.Header)
	(TraceContext{}).Inject(h)
	if v := h.Get(TraceparentHeader); v != "" {
		t.Fatalf("zero TraceContext injected %q", v)
	}
	if _, ok := Extract(h); ok {
		t.Fatal("Extract of absent header must fail")
	}
}

// TestParseTraceparentMalformed pins the propagation failure contract: a
// malformed header never errors and never panics — the caller just starts a
// fresh root.
func TestParseTraceparentMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // truncated
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span ID
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902g7-01", // non-hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // wrong separator
		"0-44bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		strings.Repeat("0", 55),
	}
	for _, v := range bad {
		if tc, ok := ParseTraceparent(v); ok {
			t.Fatalf("ParseTraceparent(%q) accepted malformed header: %+v", v, tc)
		}
	}
}

// TestParseTraceparentMutations fuzzes one-byte corruptions of a valid
// header: every mutation must either still parse to a valid context or be
// rejected — never panic, never yield an invalid context.
func TestParseTraceparentMutations(t *testing.T) {
	valid := TraceContext{TraceHi: 0xa1b2, TraceLo: 0xc3d4, SpanID: 0xe5f6, Sampled: true}.Traceparent()
	for i := 0; i < len(valid); i++ {
		for _, c := range []byte{0, ' ', '-', 'G', 'z', 'A', 0xff} {
			mut := []byte(valid)
			mut[i] = c
			if tc, ok := ParseTraceparent(string(mut)); ok && !tc.Valid() {
				t.Fatalf("mutation %q parsed to invalid context %+v", mut, tc)
			}
		}
	}
	// Length mutations.
	for _, v := range []string{valid[:54], valid + "0", valid[1:], " " + valid} {
		if _, ok := ParseTraceparent(v); ok {
			t.Fatalf("length-mutated %q accepted", v)
		}
	}
}

// TestRingDroppedInvariant hammers the ring from concurrent writers while a
// reader repeatedly checks the conservation law: everything emitted is either
// still in the ring or counted dropped — at every instant, not just at rest.
func TestRingDroppedInvariant(t *testing.T) {
	const writers, perWriter, cap = 8, 500, 32
	r := NewRing(cap)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if n := len(r.Snapshot()); n > cap {
				t.Errorf("snapshot holds %d events, ring capacity %d", n, cap)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Emit(Event{Type: EventSpan})
			}
		}()
	}
	wg.Wait()
	<-done
	if got, want := int(r.Dropped())+len(r.Snapshot()), writers*perWriter; got != want {
		t.Fatalf("dropped+retained = %d, want every emitted event accounted (%d)", got, want)
	}
}

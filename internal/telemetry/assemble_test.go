package telemetry

import (
	"strings"
	"testing"
)

// span builds one SpanEvent wrapped in its envelope, the shape a merged
// multi-process JSONL stream yields.
func span(trace string, id, parent uint64, svc, name string, start, dur int64) Event {
	return Event{Type: EventSpan, Span: &SpanEvent{
		Trace: trace, ID: id, Parent: parent, Service: svc, Name: name,
		StartUnixNs: start, DurNs: dur,
	}}
}

// fleetTrace is the canonical gateway→replica→worker request used across the
// assembler tests: a routed suggest whose engine work and storage write
// happened on the replica.
func fleetTrace(id string) []Event {
	return []Event{
		span(id, 1, 0, "gateway", "gateway.suggest", 1000, 10000),
		span(id, 2, 1, "mfbod/ra", "server.suggest", 2000, 8000),
		span(id, 3, 2, "mfbod/ra", "engine.ask", 2500, 6000),
		span(id, 4, 3, "mfbod/ra", "gp.fit", 3000, 4000),
		span(id, 5, 2, "mfbod/ra", "storage.put", 8600, 1000),
	}
}

func TestAssembleCrossProcess(t *testing.T) {
	const id = "0123456789abcdef0123456789abcdef"
	events := fleetTrace(id)
	// A second, single-process trace and trace-less noise events.
	events = append(events,
		span("ffff0000ffff0000ffff0000ffff0000", 9, 0, "mfbod/rb", "server.status", 500, 100),
		Event{Type: EventIteration},
		Event{Type: EventSpan, Span: &SpanEvent{Name: "legacy.span", DurNs: 5}}, // no trace ID: ignored
	)

	traces := AssembleTraces(events)
	if len(traces) != 2 {
		t.Fatalf("assembled %d traces, want 2", len(traces))
	}
	// Ordered by earliest start: the rb trace starts at 500.
	first, second := traces[0], traces[1]
	if first.ID != "ffff0000ffff0000ffff0000ffff0000" || second.ID != id {
		t.Fatalf("trace order: %s, %s", first.ID, second.ID)
	}
	if first.CrossProcess() {
		t.Fatal("single-service trace reported cross-process")
	}
	if !second.Complete() || !second.CrossProcess() {
		t.Fatalf("fleet trace: complete=%v crossProcess=%v", second.Complete(), second.CrossProcess())
	}
	if got := strings.Join(second.Services, ","); got != "gateway,mfbod/ra" {
		t.Fatalf("services = %q", got)
	}
	if second.Root == nil || second.Root.Name != "gateway.suggest" {
		t.Fatalf("root = %+v", second.Root)
	}
	if len(second.Root.Children) != 1 || len(second.Root.Children[0].Children) != 2 {
		t.Fatal("tree shape wrong: want gateway → server → (engine.ask, storage.put)")
	}
}

func TestAssembleOrphans(t *testing.T) {
	const id = "0123456789abcdef0123456789abcdef"
	events := fleetTrace(id)
	// Drop the replica's server.suggest span (id 2): its process was
	// SIGKILLed before flushing. Its children become orphans.
	events = append(events[:1], events[2:]...)
	tr := AssembleTraces(events)[0]
	if tr.Complete() {
		t.Fatal("trace with missing parent reported complete")
	}
	if len(tr.Orphans) != 2 { // engine.ask and storage.put both pointed at span 2
		t.Fatalf("orphans = %d, want 2", len(tr.Orphans))
	}
	if len(tr.Roots) != 1 || tr.Roots[0].ID != 1 {
		t.Fatalf("roots = %+v", tr.Roots)
	}
	if !strings.Contains(tr.Render(), "ORPHAN") {
		t.Fatal("Render must flag orphaned spans")
	}
}

func TestCriticalPath(t *testing.T) {
	const id = "0123456789abcdef0123456789abcdef"
	tr := AssembleTraces(fleetTrace(id))[0]
	path := tr.CriticalPath()
	want := []string{"gateway.suggest", "server.suggest", "engine.ask", "gp.fit"}
	if len(path) != len(want) {
		t.Fatalf("critical path length %d, want %d", len(path), len(want))
	}
	for i, n := range path {
		if n.Name != want[i] {
			t.Fatalf("path[%d] = %s, want %s", i, n.Name, want[i])
		}
	}
	out := tr.RenderCriticalPath()
	if !strings.Contains(out, "gp.fit") || !strings.Contains(out, "critical path") {
		t.Fatalf("RenderCriticalPath output:\n%s", out)
	}
}

func TestStageAttribution(t *testing.T) {
	const id = "0123456789abcdef0123456789abcdef"
	stats := AggregateStages(AssembleTraces(fleetTrace(id)))
	bySelf := make(map[string]int64)
	for _, st := range stats {
		bySelf[st.Stage] = st.SelfNs
	}
	// gp.fit has no children: all 4000ns are self time. engine.ask awaited it:
	// 6000-4000 = 2000ns self.
	if bySelf["mfbod/ra gp.fit"] != 4000 {
		t.Fatalf("gp.fit self = %d", bySelf["mfbod/ra gp.fit"])
	}
	if bySelf["mfbod/ra engine.ask"] != 2000 {
		t.Fatalf("engine.ask self = %d", bySelf["mfbod/ra engine.ask"])
	}
	// Sorted by self time descending; gp.fit must lead.
	if stats[0].Stage != "mfbod/ra gp.fit" {
		t.Fatalf("top stage = %s", stats[0].Stage)
	}
	table := StageTable(AssembleTraces(fleetTrace(id)))
	for _, col := range []string{"stage", "self_ms", "max_ms", "gp.fit"} {
		if !strings.Contains(table, col) {
			t.Fatalf("stage table missing %q:\n%s", col, table)
		}
	}
}

func TestAssembleDuplicateSpans(t *testing.T) {
	const id = "0123456789abcdef0123456789abcdef"
	events := append(fleetTrace(id), fleetTrace(id)...) // same log merged twice
	tr := AssembleTraces(events)[0]
	if !tr.Complete() {
		t.Fatal("duplicated stream must still assemble complete")
	}
	if len(tr.Root.Children) != 1 {
		t.Fatalf("duplicate spans created %d children under root", len(tr.Root.Children))
	}
}

// TestEndToEndAssembly drives real tracers in three simulated processes —
// gateway root, replica continuing via Inject/Extract, worker joining off a
// relayed traceparent — and proves the three streams reassemble into one
// complete cross-process trace.
func TestEndToEndAssembly(t *testing.T) {
	gwRing, raRing, wkRing := NewRing(16), NewRing(16), NewRing(16)
	gw := NewTracer(gwRing, 1)
	gw.SetService("gateway")
	ra := NewTracer(raRing, 1)
	ra.SetService("mfbod/ra")
	wk := NewTracer(wkRing, 1)
	wk.SetService("worker/w0")

	root := gw.Start("gateway.suggest")
	h := make(map[string][]string)
	root.Context().Inject(h)

	tc, ok := Extract(h)
	if !ok {
		t.Fatal("replica failed to extract gateway context")
	}
	srv := ra.StartRemote("server.suggest", tc)
	ask := srv.Child("engine.ask")
	relayed := ask.Context().Traceparent() // rides a LeaseReply to the worker

	wtc, ok := ParseTraceparent(relayed)
	if !ok {
		t.Fatal("worker failed to parse relayed traceparent")
	}
	eval := wk.StartRemote("worker.evaluate", wtc)
	eval.End()
	ask.End()
	srv.End()
	root.End()

	merged := append(append(gwRing.Snapshot(), raRing.Snapshot()...), wkRing.Snapshot()...)
	traces := AssembleTraces(merged)
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if !tr.Complete() || !tr.CrossProcess() {
		t.Fatalf("complete=%v crossProcess=%v\n%s", tr.Complete(), tr.CrossProcess(), tr.Render())
	}
	if tr.Spans != 4 || len(tr.Services) != 3 {
		t.Fatalf("spans=%d services=%v", tr.Spans, tr.Services)
	}
	if tr.ID != root.Context().TraceID() {
		t.Fatalf("trace ID %s, want the gateway root's %s", tr.ID, root.Context().TraceID())
	}
}

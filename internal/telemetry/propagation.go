package telemetry

import (
	"context"
	"net/http"
)

// TraceparentHeader is the W3C trace-context header this package speaks:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// It is the only header crossing process boundaries; tracestate is not used.
const TraceparentHeader = "traceparent"

// flagSampled is the W3C sampled bit.
const flagSampled = 0x01

// Traceparent renders tc as a W3C traceparent value. Invalid contexts render
// as "" so callers can guard with a single check.
func (tc TraceContext) Traceparent() string {
	if !tc.Valid() {
		return ""
	}
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	// 55 bytes: "00-" + 32 + "-" + 16 + "-" + 2.
	b := make([]byte, 0, 55)
	b = append(b, '0', '0', '-')
	b = appendHex(b, tc.TraceHi)
	b = appendHex(b, tc.TraceLo)
	b = append(b, '-')
	b = appendHex(b, tc.SpanID)
	b = append(b, '-')
	b = append(b, flags...)
	return string(b)
}

// Inject sets the traceparent header on h (a no-op for invalid contexts, so
// `span.Context().Inject(req.Header)` is safe on a nil span).
func (tc TraceContext) Inject(h http.Header) {
	if v := tc.Traceparent(); v != "" {
		h.Set(TraceparentHeader, v)
	}
}

// ParseTraceparent parses a W3C traceparent value. ok is false — never an
// error — on anything malformed: absent, wrong length, bad hex, the reserved
// version ff, or all-zero trace/parent IDs. Callers degrade to a fresh root
// span, so a corrupted header can delay tracing but never fail a request.
func ParseTraceparent(v string) (tc TraceContext, ok bool) {
	if len(v) != 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return TraceContext{}, false
	}
	ver, ok := parseHex(v[0:2])
	if !ok || ver == 0xff {
		return TraceContext{}, false
	}
	hi, ok1 := parseHex(v[3:19])
	lo, ok2 := parseHex(v[19:35])
	span, ok3 := parseHex(v[36:52])
	flags, ok4 := parseHex(v[53:55])
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return TraceContext{}, false
	}
	tc = TraceContext{TraceHi: hi, TraceLo: lo, SpanID: span, Sampled: flags&flagSampled != 0}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// Extract reads the traceparent header from h. Same degradation contract as
// ParseTraceparent.
func Extract(h http.Header) (TraceContext, bool) {
	return ParseTraceparent(h.Get(TraceparentHeader))
}

const hexDigits = "0123456789abcdef"

// appendHex appends v as exactly 16 lowercase hex digits.
func appendHex(b []byte, v uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		b = append(b, hexDigits[(v>>shift)&0xf])
	}
	return b
}

// parseHex parses strict lowercase hex — the W3C wire form. Uppercase,
// signs, prefixes and underscores (which strconv would have to be guarded
// against) all fail.
func parseHex(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// spanKey keys the request span in a context.Context.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s. A nil span returns ctx unchanged
// (zero allocations), preserving the tracing-off fast path.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Detach returns a context that carries ctx's span but none of its deadlines
// or cancellation — the session layer hands this to the engine so a client
// disconnect cannot interrupt surrogate fitting mid-Cholesky, while latency
// still attributes to the request's trace. With no span present it returns
// context.Background() allocation-free.
func Detach(ctx context.Context) context.Context {
	return ContextWithSpan(context.Background(), SpanFromContext(ctx))
}

package telemetry

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// Tracer creates lightweight trace spans. Spans use the monotonic clock for
// durations, carry parent/child links and a 128-bit trace ID that survives
// process hops, and are emitted as SpanEvents into a Sink when they End.
// Sampling is deterministic and RNG-free with respect to the optimizer:
// every SampleEvery-th root span (counted atomically) is sampled, children
// and remote continuations inherit their parent's decision — so enabling
// tracing can never perturb the optimizer's random stream. (Span and trace
// IDs are seeded from crypto/rand at construction time, a separate stream
// the optimizer never reads.)
//
// A nil *Tracer and a nil *Span are valid no-ops: Start/Child/StartRemote
// return nil and every Span method on nil does nothing, with zero
// allocations.
type Tracer struct {
	sink        Sink
	service     string
	sampleEvery uint64
	roots       atomic.Uint64
	ids         atomic.Uint64
	// idBase and traceHi randomize this process's span and trace IDs so
	// streams merged across a fleet never collide: span IDs are a bijective
	// mix of (idBase + counter), root trace IDs pair traceHi with the root's
	// span ID.
	idBase  uint64
	traceHi uint64
}

// NewTracer builds a tracer emitting sampled spans into sink. sampleEvery
// selects every n-th root span (1 = all, 0 defaults to 1); a nil sink
// disables emission (spans still time themselves and propagate context,
// useful for tests and for relaying a trace through an uninstrumented
// process).
func NewTracer(sink Sink, sampleEvery int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Tracer{
		sink:        sink,
		sampleEvery: uint64(sampleEvery),
		idBase:      randomNonZero(),
		traceHi:     randomNonZero(),
	}
}

// SetService stamps every span emitted by this tracer with a service name —
// the per-process identity ("gateway", "mfbod/ra", "worker/w1") that the
// cross-process assembler groups by.
func (t *Tracer) SetService(name string) {
	if t != nil {
		t.service = name
	}
}

// Enabled reports whether spans emitted by this tracer go anywhere.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// randomNonZero draws 8 bytes from crypto/rand — never from math/rand, whose
// global stream belongs to the optimizer's determinism contract. A zero draw
// (or an unreadable entropy source) falls back to a process-local counter
// mixed through the finalizer so IDs stay non-zero and distinct.
func randomNonZero() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		if v := binary.LittleEndian.Uint64(b[:]); v != 0 {
			return v
		}
	}
	return mix64(fallbackSeed.Add(1))
}

var fallbackSeed atomic.Uint64

// mix64 is the splitmix64 finalizer: a bijection on uint64, so
// mix64(base+counter) yields process-unique IDs whose low bits are
// well-distributed even for sequential counters.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// nextID mints a span ID: unique within the process by construction and
// collision-resistant across processes thanks to the random base.
func (t *Tracer) nextID() uint64 {
	return mix64(t.idBase + t.ids.Add(1))
}

// TraceContext is the wire-portable identity of a span: the 128-bit trace ID
// shared by every span in the request tree, the ID of the span that is the
// parent on the far side of a process hop, and the sampling decision. The
// zero value is "no trace".
type TraceContext struct {
	TraceHi, TraceLo uint64
	SpanID           uint64
	Sampled          bool
}

// Valid reports whether tc identifies a real span (non-zero trace and span
// IDs, per W3C trace-context).
func (tc TraceContext) Valid() bool {
	return tc.TraceHi|tc.TraceLo != 0 && tc.SpanID != 0
}

// TraceID renders the 128-bit trace ID as 32 lowercase hex digits — the form
// SpanEvents carry and the assembler groups by.
func (tc TraceContext) TraceID() string {
	return fmt.Sprintf("%016x%016x", tc.TraceHi, tc.TraceLo)
}

// Span is one in-flight operation. Create with Tracer.Start, Tracer.
// StartRemote or Span.Child; finish with End. Not safe for concurrent
// mutation (one goroutine owns a span), matching how the optimizer threads
// them — but Child and Context are safe to call from another goroutine, so a
// heartbeat loop may hang children off the request span it was handed.
type Span struct {
	tr               *Tracer
	id               uint64
	parent           uint64
	traceHi, traceLo uint64
	name             string
	start            time.Time
	attrs            map[string]float64
	ended            bool
}

// Start begins a sampled root span (nil when this root is not sampled or the
// tracer is nil). The root's span ID doubles as the low word of the new
// 128-bit trace ID.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	n := t.roots.Add(1)
	if (n-1)%t.sampleEvery != 0 {
		return nil
	}
	id := t.nextID()
	return &Span{tr: t, id: id, traceHi: t.traceHi, traceLo: id, name: name, start: time.Now()}
}

// StartRemote begins a span continuing a trace that started in another
// process: it inherits tc's trace ID and sampling decision (per W3C
// semantics the caller decided sampling; the local root counter is not
// consulted or advanced) and parents itself on tc.SpanID. Returns nil when
// the tracer is nil or tc is unsampled/invalid, so unsampled requests cost
// nothing downstream.
func (t *Tracer) StartRemote(name string, tc TraceContext) *Span {
	if t == nil || !tc.Sampled || !tc.Valid() {
		return nil
	}
	return &Span{
		tr: t, id: t.nextID(), parent: tc.SpanID,
		traceHi: tc.TraceHi, traceLo: tc.TraceLo,
		name: name, start: time.Now(),
	}
}

// Child begins a span parented on s (nil-safe: a nil parent yields a nil
// child, so unsampled subtrees cost nothing).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tr: s.tr, id: s.tr.nextID(), parent: s.id,
		traceHi: s.traceHi, traceLo: s.traceLo,
		name: name, start: time.Now(),
	}
}

// Context returns s's wire identity for propagation: inject it into an
// outbound request, or hand it to another tracer's StartRemote. The zero
// TraceContext (from a nil span) is invalid and injects nothing.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceHi: s.traceHi, TraceLo: s.traceLo, SpanID: s.id, Sampled: true}
}

// Attr attaches a numeric attribute (nil-safe).
func (s *Span) Attr(key string, v float64) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]float64, 4)
	}
	s.attrs[key] = v
}

// End finishes the span and emits it (idempotent, nil-safe). It returns the
// span's duration for callers that also feed a histogram.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.ended {
		return d
	}
	s.ended = true
	if s.tr != nil && s.tr.sink != nil {
		var trace string
		if s.traceHi|s.traceLo != 0 {
			trace = fmt.Sprintf("%016x%016x", s.traceHi, s.traceLo)
		}
		s.tr.sink.Emit(Event{
			Type:       EventSpan,
			TimeUnixMs: nowUnixMs(),
			Span: &SpanEvent{
				ID:          s.id,
				Parent:      s.parent,
				Trace:       trace,
				Service:     s.tr.service,
				Name:        s.name,
				StartUnixNs: s.start.UnixNano(),
				DurNs:       d.Nanoseconds(),
				Attrs:       s.attrs,
			},
		})
	}
	return d
}

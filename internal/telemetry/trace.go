package telemetry

import (
	"sync/atomic"
	"time"
)

// Tracer creates lightweight trace spans. Spans use the monotonic clock for
// durations, carry parent/child links, and are emitted as SpanEvents into a
// Sink when they End. Sampling is deterministic and RNG-free: every
// SampleEvery-th root span (counted atomically) is sampled, children inherit
// their parent's decision — so enabling tracing can never perturb the
// optimizer's random stream.
//
// A nil *Tracer and a nil *Span are valid no-ops: Start/Child return nil and
// every Span method on nil does nothing, with zero allocations.
type Tracer struct {
	sink        Sink
	sampleEvery uint64
	roots       atomic.Uint64
	ids         atomic.Uint64
}

// NewTracer builds a tracer emitting sampled spans into sink. sampleEvery
// selects every n-th root span (1 = all, 0 defaults to 1); a nil sink
// disables emission (spans still time themselves, useful for tests).
func NewTracer(sink Sink, sampleEvery int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Tracer{sink: sink, sampleEvery: uint64(sampleEvery)}
}

// Span is one in-flight operation. Create with Tracer.Start or Span.Child;
// finish with End. Not safe for concurrent mutation (one goroutine owns a
// span), matching how the optimizer threads them.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  map[string]float64
	ended  bool
}

// Start begins a sampled root span (nil when this root is not sampled or the
// tracer is nil).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	n := t.roots.Add(1)
	if (n-1)%t.sampleEvery != 0 {
		return nil
	}
	return &Span{tr: t, id: t.ids.Add(1), name: name, start: time.Now()}
}

// Child begins a span parented on s (nil-safe: a nil parent yields a nil
// child, so unsampled subtrees cost nothing).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{tr: s.tr, id: s.tr.ids.Add(1), parent: s.id, name: name, start: time.Now()}
}

// Attr attaches a numeric attribute (nil-safe).
func (s *Span) Attr(key string, v float64) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]float64, 4)
	}
	s.attrs[key] = v
}

// End finishes the span and emits it (idempotent, nil-safe). It returns the
// span's duration for callers that also feed a histogram.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.ended {
		return d
	}
	s.ended = true
	if s.tr != nil && s.tr.sink != nil {
		s.tr.sink.Emit(Event{
			Type:       EventSpan,
			TimeUnixMs: nowUnixMs(),
			Span: &SpanEvent{
				ID:          s.id,
				Parent:      s.parent,
				Name:        s.name,
				StartUnixNs: s.start.UnixNano(),
				DurNs:       d.Nanoseconds(),
				Attrs:       s.attrs,
			},
		})
	}
	return d
}

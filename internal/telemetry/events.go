package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Event type tags carried by Event.Type.
const (
	EventRun       = "run"       // run metadata, emitted once at engine creation
	EventIteration = "iteration" // one Algorithm 1 iteration (or one init point)
	EventSpan      = "span"      // one completed trace span
	EventFault     = "fault"     // one robust-layer fault event
)

// RunEvent records run-level metadata so an event log is self-describing.
type RunEvent struct {
	Problem        string  `json:"problem"`
	Dim            int     `json:"dim"`
	NumConstraints int     `json:"num_constraints"`
	Budget         float64 `json:"budget"`
	Gamma          float64 `json:"gamma"`
	InitLow        int     `json:"init_low"`
	InitHigh       int     `json:"init_high"`
	Resumed        bool    `json:"resumed,omitempty"`

	// Fidelity-ladder metadata (K>2 runs only; absent on classic two-fidelity
	// runs so their event logs are byte-identical to earlier releases).
	// Rungs is the rung count K, RungCosts the per-rung relative costs
	// (RungCosts[K-1] == 1), InitMid the LHS initialization size per
	// intermediate rung.
	Rungs     int       `json:"rungs,omitempty"`
	RungCosts []float64 `json:"rung_costs,omitempty"`
	InitMid   int       `json:"init_mid,omitempty"`
}

// IterationEvent records the decision variables of one optimizer iteration —
// everything the paper treats as first-class: the §3.4 fidelity-selection
// comparison (σ²_l vs (1+Nc)·γ, eqs. 11–12), the wEI acquisition values at
// the argmax (eqs. 5–6), the §4.2 bootstrap switch (eq. 13), incumbents
// τ_l/τ_h, surrogate-fit health (NLML, restarts, degradation rung), and MSP
// start/convergence counts. Initialization design points appear with
// Iter == -1 and only the evaluation-outcome fields populated.
//
// All decision fields are captured from values the optimizer computed anyway;
// recording them never adds floating-point work, which is what keeps a
// telemetry-on trajectory bit-identical to a telemetry-off one.
type IterationEvent struct {
	Iter int `json:"iter"`

	// Fidelity decision (§3.4): evaluate HIGH iff Sigma2Max < Threshold,
	// where Sigma2Max is the largest standardized low-fidelity posterior
	// variance across the 1+Nc outputs at the query point and
	// Threshold = (1+Nc)·Gamma.
	Fidelity   string  `json:"fidelity"`
	Sigma2Max  float64 `json:"sigma2_max,omitempty"`
	Threshold  float64 `json:"threshold,omitempty"`
	Gamma      float64 `json:"gamma,omitempty"`
	Nc         int     `json:"nc"`
	HasSigma2  bool    `json:"has_sigma2,omitempty"`
	ForcedHigh bool    `json:"forced_high,omitempty"`
	// DuplicateFallback marks iterations whose acquisition argmax coincided
	// with an already-evaluated point and was replaced by a random
	// exploration point.
	DuplicateFallback bool `json:"duplicate_fallback,omitempty"`

	// Fidelity-ladder decision record (K>2 runs only — absent on classic
	// two-fidelity runs). Rung is the selected ladder rung (0 = cheapest,
	// K-1 = target); RungVars holds the standardized chain posterior variance
	// per sub-target rung at the query point, the inputs of the generalized
	// §3.4 cost-weighted selection.
	Rung     int       `json:"rung,omitempty"`
	RungVars []float64 `json:"rung_vars,omitempty"`

	// Acquisition values at the argmax. Bootstrap marks the §4.2 first-
	// feasible mode where the (negated) predicted-feasibility objective
	// replaces wEI on the fused level; BootstrapLow the same on the low
	// level.
	AcqLow       float64 `json:"acq_low,omitempty"`
	AcqHigh      float64 `json:"acq_high,omitempty"`
	Bootstrap    bool    `json:"bootstrap,omitempty"`
	BootstrapLow bool    `json:"bootstrap_low,omitempty"`

	// Incumbents (best feasible objective per fidelity, when one exists).
	HasTauLow  bool    `json:"has_tau_low,omitempty"`
	TauLow     float64 `json:"tau_low,omitempty"`
	HasTauHigh bool    `json:"has_tau_high,omitempty"`
	TauHigh    float64 `json:"tau_high,omitempty"`

	// Surrogate-fit health. Degrade is the worst degradation rung taken this
	// iteration ("" healthy, else "warm-hypers" | "low-fidelity-only" |
	// "random-exploration"); NLML holds per-output negative log marginal
	// likelihoods (low then fused-high levels), FitRestarts/FitDiverged
	// aggregate L-BFGS restart bookkeeping across all fitted models.
	Degrade     string    `json:"degrade,omitempty"`
	NLMLLow     []float64 `json:"nlml_low,omitempty"`
	NLMLHigh    []float64 `json:"nlml_high,omitempty"`
	FitRestarts int       `json:"fit_restarts,omitempty"`
	FitDiverged int       `json:"fit_diverged,omitempty"`

	// Incremental-surrogate bookkeeping (core's fit-skip schedule):
	// FitSkipped marks iterations that extended the cached models with
	// rank-1 updates instead of refitting (Rank1Updates counts the per-model
	// factor extensions applied, fantasy rows included), SinceRefit counts
	// proposals since the last hyperparameter re-optimization, and LowRank
	// marks iterations whose surrogates use the inducing-point approximation.
	FitSkipped   bool `json:"fit_skipped,omitempty"`
	Rank1Updates int  `json:"rank1_updates,omitempty"`
	SinceRefit   int  `json:"since_refit,omitempty"`
	LowRank      bool `json:"low_rank,omitempty"`

	// MSP bookkeeping (§4.1): starts run and locally-diverged starts for the
	// low- and high-fidelity acquisition maximizations.
	MSPStartsLow    int `json:"msp_starts_low,omitempty"`
	MSPDivergedLow  int `json:"msp_diverged_low,omitempty"`
	MSPStartsHigh   int `json:"msp_starts_high,omitempty"`
	MSPDivergedHigh int `json:"msp_diverged_high,omitempty"`

	// Evaluation outcome (filled when the observation is told back).
	X           []float64 `json:"x,omitempty"`
	Objective   float64   `json:"objective"`
	Constraints []float64 `json:"constraints,omitempty"`
	Failed      bool      `json:"failed,omitempty"`
	CumCost     float64   `json:"cum_cost"`

	// Robust-layer cumulative counters at the time of the observation (only
	// when the problem carries a robust.FaultLog).
	RetriesCum  int `json:"retries_cum,omitempty"`
	FailuresCum int `json:"failures_cum,omitempty"`

	// Wall-clock timings (milliseconds). Non-deterministic by nature; the
	// oracle test excludes them from trajectory comparison.
	FitMs float64 `json:"fit_ms,omitempty"`
	AcqMs float64 `json:"acq_ms,omitempty"`
}

// SpanEvent is one completed trace span.
type SpanEvent struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Trace is the 128-bit trace ID as 32 lowercase hex digits, shared by
	// every span in one request tree across all processes it touched.
	Trace string `json:"trace,omitempty"`
	// Service names the emitting process ("gateway", "mfbod/ra", ...).
	Service string `json:"svc,omitempty"`
	Name    string `json:"name"`
	// StartUnixNs is wall-clock; DurNs comes from the monotonic clock.
	StartUnixNs int64              `json:"start_ns"`
	DurNs       int64              `json:"dur_ns"`
	Attrs       map[string]float64 `json:"attrs,omitempty"`
}

// FaultEvent mirrors one robust-layer fault-log entry.
type FaultEvent struct {
	Fidelity string `json:"fidelity"`
	Kind     string `json:"kind"` // "retry" | "error" | "failure"
	Attempt  int    `json:"attempt,omitempty"`
	Err      string `json:"err,omitempty"`
}

// Event is the tagged envelope written to sinks. Exactly one payload pointer
// is non-nil, matching Type.
type Event struct {
	Type string `json:"type"`
	// TimeUnixMs is the wall-clock emission time.
	TimeUnixMs int64           `json:"t_ms,omitempty"`
	Run        *RunEvent       `json:"run,omitempty"`
	Iteration  *IterationEvent `json:"iteration,omitempty"`
	Span       *SpanEvent      `json:"span,omitempty"`
	Fault      *FaultEvent     `json:"fault,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent Emit.
type Sink interface {
	Emit(Event)
}

// Ring is a bounded in-memory event buffer: the newest Cap events are kept,
// older ones are overwritten (Dropped counts the overwritten ones). It backs
// the live-introspection endpoints.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped uint64
}

// NewRing returns a ring keeping the newest capacity events (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the buffered events oldest-first.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped reports how many events were overwritten.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// JSONL streams events as JSON lines to an io.Writer (buffered). Close
// flushes; OpenJSONL also closes the underlying file.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONL wraps w in a line-buffered JSONL sink.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: bufio.NewWriter(w)} }

// OpenJSONL creates (truncating) path and streams events into it.
func OpenJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open event log: %w", err)
	}
	return &JSONL{w: bufio.NewWriter(f), c: f}, nil
}

// Emit implements Sink. Marshal or write failures are sticky and reported by
// Close — event logging must never fail an optimization run.
func (j *JSONL) Emit(ev Event) {
	if j == nil {
		return
	}
	data, err := json.Marshal(ev)
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		if j.err == nil {
			j.err = err
		}
		return
	}
	if j.err == nil {
		data = append(data, '\n')
		if _, werr := j.w.Write(data); werr != nil {
			j.err = werr
		}
	}
}

// Flush drains the buffer.
func (j *JSONL) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close flushes and closes the underlying file (when opened by OpenJSONL),
// returning the first error seen over the sink's lifetime.
func (j *JSONL) Close() error {
	if j == nil {
		return nil
	}
	err := j.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// ReadJSONL parses an event log produced by a JSONL sink. Blank lines are
// skipped; a malformed line fails with its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("telemetry: event log line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadJSONLFile reads an event-log file.
func ReadJSONLFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}

// multi fans one Emit out to several sinks.
type multi struct{ sinks []Sink }

func (m multi) Emit(ev Event) {
	for _, s := range m.sinks {
		s.Emit(ev)
	}
}

// Multi returns a sink broadcasting to every non-nil sink (nil when none).
func Multi(sinks ...Sink) Sink {
	var keep []Sink
	for _, s := range sinks {
		switch v := s.(type) {
		case nil:
		case *Ring:
			if v != nil {
				keep = append(keep, v)
			}
		case *JSONL:
			if v != nil {
				keep = append(keep, v)
			}
		default:
			keep = append(keep, s)
		}
	}
	switch len(keep) {
	case 0:
		return nil
	case 1:
		return keep[0]
	}
	return multi{sinks: keep}
}

func nowUnixMs() int64 { return time.Now().UnixMilli() }

package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary aggregates an event log for reporting.
type Summary struct {
	Run        *RunEvent
	Iterations []*IterationEvent // adaptive iterations, in order
	InitLow    int               // initialization observations per fidelity
	InitHigh   int
	NumLow     int // adaptive evaluations per fidelity
	NumHigh    int
	NumFailed  int
	Degraded   int // iterations that took any degradation rung
	Bootstrap  int // iterations in §4.2 first-feasible mode
	Duplicates int // duplicate-argmax fallbacks
	FitSkipped int // proposals served from the cached surrogates (incremental mode)
	Rank1      int // rank-1 factor extensions applied across the run
	LowRank    int // iterations served by the low-rank inducing-point surrogate
	Spans      map[string]SpanStats
}

// SpanStats aggregates the spans sharing one name.
type SpanStats struct {
	Count          int
	TotalNs, MaxNs int64
}

// Summarize folds an event stream into a Summary.
func Summarize(events []Event) *Summary {
	s := &Summary{Spans: make(map[string]SpanStats)}
	for _, ev := range events {
		switch {
		case ev.Run != nil:
			s.Run = ev.Run
		case ev.Iteration != nil:
			it := ev.Iteration
			if it.Iter < 0 {
				if it.Fidelity == "high" {
					s.InitHigh++
				} else {
					s.InitLow++
				}
				if it.Failed {
					s.NumFailed++
				}
				continue
			}
			s.Iterations = append(s.Iterations, it)
			if it.Fidelity == "high" {
				s.NumHigh++
			} else {
				s.NumLow++
			}
			if it.Failed {
				s.NumFailed++
			}
			if it.Degrade != "" {
				s.Degraded++
			}
			if it.Bootstrap {
				s.Bootstrap++
			}
			if it.DuplicateFallback {
				s.Duplicates++
			}
			if it.FitSkipped {
				s.FitSkipped++
			}
			s.Rank1 += it.Rank1Updates
			if it.LowRank {
				s.LowRank++
			}
		case ev.Span != nil:
			st := s.Spans[ev.Span.Name]
			st.Count++
			st.TotalNs += ev.Span.DurNs
			if ev.Span.DurNs > st.MaxNs {
				st.MaxNs = ev.Span.DurNs
			}
			s.Spans[ev.Span.Name] = st
		}
	}
	return s
}

// Table renders the per-iteration convergence/fidelity-decision table the
// EXPERIMENTS.md-style reports use: one row per adaptive iteration with the
// σ²_l vs (1+Nc)·γ comparison, the wEI value at the argmax, the outcome and
// the running best.
func (s *Summary) Table() string {
	var b strings.Builder
	if s.Run != nil {
		fmt.Fprintf(&b, "run: problem=%s d=%d nc=%d budget=%g gamma=%g init=%d+%d\n",
			s.Run.Problem, s.Run.Dim, s.Run.NumConstraints, s.Run.Budget,
			s.Run.Gamma, s.Run.InitLow, s.Run.InitHigh)
	}
	fmt.Fprintf(&b, "%-5s %-4s %-11s %-11s %-11s %-11s %-11s %-8s %s\n",
		"iter", "fid", "sigma2_max", "threshold", "acq", "objective", "best", "cost", "notes")
	best := math.Inf(1)
	haveBest := false
	for _, it := range s.Iterations {
		sigma := "-"
		thr := "-"
		if it.HasSigma2 {
			sigma = fmt.Sprintf("%.4g", it.Sigma2Max)
			thr = fmt.Sprintf("%.4g", it.Threshold)
		}
		if it.Fidelity == "high" && !it.Failed && feasibleRow(it) {
			if !haveBest || it.Objective < best {
				best = it.Objective
				haveBest = true
			}
		}
		bestStr := "-"
		if haveBest {
			bestStr = fmt.Sprintf("%.6g", best)
		}
		var notes []string
		if it.Bootstrap {
			notes = append(notes, "bootstrap")
		}
		if it.Degrade != "" {
			notes = append(notes, "degrade:"+it.Degrade)
		}
		if it.DuplicateFallback {
			notes = append(notes, "dup-fallback")
		}
		if it.Failed {
			notes = append(notes, "FAILED")
		}
		if it.ForcedHigh {
			notes = append(notes, "forced-high")
		}
		if it.FitSkipped {
			notes = append(notes, fmt.Sprintf("fit-skip:%d", it.SinceRefit))
		}
		if it.LowRank {
			notes = append(notes, "low-rank")
		}
		fmt.Fprintf(&b, "%-5d %-4s %-11s %-11s %-11.4g %-11.6g %-11s %-8.2f %s\n",
			it.Iter, it.Fidelity, sigma, thr, it.AcqHigh, it.Objective,
			bestStr, it.CumCost, strings.Join(notes, ","))
	}
	fmt.Fprintf(&b, "totals: %d init (%d low + %d high), %d adaptive (%d low + %d high), %d failed, %d degraded, %d bootstrap, %d duplicate-fallbacks\n",
		s.InitLow+s.InitHigh, s.InitLow, s.InitHigh,
		len(s.Iterations), s.NumLow, s.NumHigh, s.NumFailed,
		s.Degraded, s.Bootstrap, s.Duplicates)
	if s.FitSkipped > 0 || s.Rank1 > 0 || s.LowRank > 0 {
		fmt.Fprintf(&b, "incremental: %d fit-skips, %d rank-1 updates, %d low-rank iterations\n",
			s.FitSkipped, s.Rank1, s.LowRank)
	}
	return b.String()
}

// feasibleRow reports whether the iteration's observation satisfies every
// constraint (g_i(x) >= 0 in this repo's convention).
func feasibleRow(it *IterationEvent) bool {
	for _, c := range it.Constraints {
		if c < 0 {
			return false
		}
	}
	return true
}

// SpanTable renders per-name span aggregates sorted by total time.
func (s *Summary) SpanTable() string {
	if len(s.Spans) == 0 {
		return "no spans recorded\n"
	}
	names := make([]string, 0, len(s.Spans))
	for n := range s.Spans {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return s.Spans[names[i]].TotalNs > s.Spans[names[j]].TotalNs
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %12s %12s %12s\n", "span", "count", "total_ms", "mean_ms", "max_ms")
	for _, n := range names {
		st := s.Spans[n]
		mean := float64(st.TotalNs) / float64(st.Count) / 1e6
		fmt.Fprintf(&b, "%-24s %8d %12.2f %12.3f %12.3f\n",
			n, st.Count, float64(st.TotalNs)/1e6, mean, float64(st.MaxNs)/1e6)
	}
	return b.String()
}

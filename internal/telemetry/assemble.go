package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// This file reconstructs distributed traces from merged span streams: N
// processes each write their own JSONL event log; the assembler groups
// SpanEvents by 128-bit trace ID, rebuilds each request tree from parent
// links, flags spans whose parents never arrived (a process died before
// flushing, or its stream was not collected), and renders per-trace
// critical paths plus a fleet-wide per-stage latency table.

// SpanNode is one span in a reconstructed trace tree.
type SpanNode struct {
	SpanEvent
	Children []*SpanNode
}

// EndUnixNs returns the span's wall-clock end.
func (n *SpanNode) EndUnixNs() int64 { return n.StartUnixNs + n.DurNs }

// SelfNs is the span's duration minus its children's — time attributable to
// this stage itself rather than anything it awaited. Concurrent children can
// drive it negative; it clamps to zero.
func (n *SpanNode) SelfNs() int64 {
	self := n.DurNs
	for _, c := range n.Children {
		self -= c.DurNs
	}
	if self < 0 {
		self = 0
	}
	return self
}

// Trace is one reconstructed request tree.
type Trace struct {
	ID string
	// Root is the tree root when the trace assembled cleanly (exactly one
	// parentless span); nil otherwise.
	Root *SpanNode
	// Roots holds every parentless span (normally one).
	Roots []*SpanNode
	// Orphans are spans whose parent ID appears nowhere in the merged
	// stream: the parent's process died before flushing, or its log was not
	// merged.
	Orphans []*SpanNode
	// Spans counts every span observed for this trace ID.
	Spans int
	// Services is the sorted set of service names that contributed spans.
	Services []string
}

// Complete reports whether the trace assembled with a single root and no
// orphaned spans.
func (t *Trace) Complete() bool { return len(t.Roots) == 1 && len(t.Orphans) == 0 }

// CrossProcess reports whether spans arrived from at least two services.
func (t *Trace) CrossProcess() bool { return len(t.Services) >= 2 }

// CriticalPath walks from the root following the largest-duration child at
// each level — the chain of stages that bounded the request's latency. Nil
// for traces without a single root.
func (t *Trace) CriticalPath() []*SpanNode {
	if t.Root == nil {
		return nil
	}
	var path []*SpanNode
	for n := t.Root; n != nil; {
		path = append(path, n)
		var next *SpanNode
		for _, c := range n.Children {
			if next == nil || c.DurNs > next.DurNs {
				next = c
			}
		}
		n = next
	}
	return path
}

// AssembleTraces groups the span events in a merged stream by trace ID and
// rebuilds each tree. Spans without a trace ID (pre-distributed-tracing
// streams, or process-local roots that never crossed a hop — they still
// carry one, so in practice only legacy logs) are ignored. Traces come back
// ordered by earliest span start.
func AssembleTraces(events []Event) []*Trace {
	groups := make(map[string][]*SpanNode)
	for _, ev := range events {
		if ev.Span == nil || ev.Span.Trace == "" {
			continue
		}
		groups[ev.Span.Trace] = append(groups[ev.Span.Trace], &SpanNode{SpanEvent: *ev.Span})
	}
	traces := make([]*Trace, 0, len(groups))
	for id, nodes := range groups {
		traces = append(traces, assembleOne(id, nodes))
	}
	sort.Slice(traces, func(i, j int) bool {
		si, sj := traceStart(traces[i]), traceStart(traces[j])
		if si != sj {
			return si < sj
		}
		return traces[i].ID < traces[j].ID
	})
	return traces
}

func assembleOne(id string, nodes []*SpanNode) *Trace {
	t := &Trace{ID: id, Spans: len(nodes)}
	byID := make(map[uint64]*SpanNode, len(nodes))
	for _, n := range nodes {
		// Duplicate span IDs within one trace (a replayed log merged twice)
		// keep the first occurrence.
		if _, dup := byID[n.ID]; !dup {
			byID[n.ID] = n
		}
	}
	services := make(map[string]bool)
	for _, n := range byID {
		if n.Service != "" {
			services[n.Service] = true
		}
		switch {
		case n.Parent == 0:
			t.Roots = append(t.Roots, n)
		case byID[n.Parent] != nil:
			p := byID[n.Parent]
			p.Children = append(p.Children, n)
		default:
			t.Orphans = append(t.Orphans, n)
		}
	}
	for _, n := range byID {
		sort.Slice(n.Children, func(i, j int) bool {
			if n.Children[i].StartUnixNs != n.Children[j].StartUnixNs {
				return n.Children[i].StartUnixNs < n.Children[j].StartUnixNs
			}
			return n.Children[i].ID < n.Children[j].ID
		})
	}
	sortNodes(t.Roots)
	sortNodes(t.Orphans)
	if len(t.Roots) == 1 {
		t.Root = t.Roots[0]
	}
	for s := range services {
		t.Services = append(t.Services, s)
	}
	sort.Strings(t.Services)
	return t
}

func sortNodes(ns []*SpanNode) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].StartUnixNs != ns[j].StartUnixNs {
			return ns[i].StartUnixNs < ns[j].StartUnixNs
		}
		return ns[i].ID < ns[j].ID
	})
}

func traceStart(t *Trace) int64 {
	start := int64(1<<63 - 1)
	for _, set := range [][]*SpanNode{t.Roots, t.Orphans} {
		for _, n := range set {
			if n.StartUnixNs < start {
				start = n.StartUnixNs
			}
		}
	}
	return start
}

// stageName renders a span's (service, name) identity for attribution
// tables.
func stageName(sp *SpanEvent) string {
	if sp.Service == "" {
		return sp.Name
	}
	return sp.Service + " " + sp.Name
}

// Render draws the trace tree: one line per span with service, name,
// duration and self time, children indented under parents, orphans flagged
// at the end.
func (t *Trace) Render() string {
	var b strings.Builder
	status := "complete"
	if !t.Complete() {
		status = fmt.Sprintf("INCOMPLETE (%d roots, %d orphans)", len(t.Roots), len(t.Orphans))
	}
	fmt.Fprintf(&b, "trace %s  spans=%d services=%s  %s\n",
		t.ID, t.Spans, strings.Join(t.Services, ","), status)
	seen := make(map[uint64]bool)
	for _, r := range t.Roots {
		renderNode(&b, r, 0, seen)
	}
	for _, o := range t.Orphans {
		fmt.Fprintf(&b, "  ORPHAN (parent %016x missing):\n", o.Parent)
		renderNode(&b, o, 1, seen)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *SpanNode, depth int, seen map[uint64]bool) {
	if seen[n.ID] {
		return // defensive: a parent-link cycle in a corrupt stream
	}
	seen[n.ID] = true
	fmt.Fprintf(b, "  %s%-*s %10.3fms self %8.3fms\n",
		strings.Repeat("  ", depth), 46-2*depth, stageName(&n.SpanEvent),
		float64(n.DurNs)/1e6, float64(n.SelfNs())/1e6)
	for _, c := range n.Children {
		renderNode(b, c, depth+1, seen)
	}
}

// RenderCriticalPath renders the latency-bounding chain of one trace.
func (t *Trace) RenderCriticalPath() string {
	path := t.CriticalPath()
	if len(path) == 0 {
		return "no single root: critical path undefined\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical path (%.3fms total):\n", float64(path[0].DurNs)/1e6)
	for i, n := range path {
		fmt.Fprintf(&b, "  %2d. %-44s %10.3fms (%5.1f%%)\n",
			i+1, stageName(&n.SpanEvent), float64(n.DurNs)/1e6,
			100*float64(n.DurNs)/float64(max64(path[0].DurNs, 1)))
	}
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// StageStats aggregates self-time per (service, span name) across a set of
// traces — the fleet-wide answer to "where do requests spend their time".
type StageStats struct {
	Stage          string
	Count          int
	TotalNs, MaxNs int64
	SelfNs         int64
}

// AggregateStages folds every span of every trace into per-stage totals,
// sorted by total self-time descending (the attribution order: stages that
// spent the time themselves come first, not the roots that merely contained
// them).
func AggregateStages(traces []*Trace) []StageStats {
	agg := make(map[string]*StageStats)
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		key := stageName(&n.SpanEvent)
		st := agg[key]
		if st == nil {
			st = &StageStats{Stage: key}
			agg[key] = st
		}
		st.Count++
		st.TotalNs += n.DurNs
		st.SelfNs += n.SelfNs()
		if n.DurNs > st.MaxNs {
			st.MaxNs = n.DurNs
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, t := range traces {
		for _, r := range t.Roots {
			walk(r)
		}
		for _, o := range t.Orphans {
			walk(o)
		}
	}
	out := make([]StageStats, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfNs != out[j].SelfNs {
			return out[i].SelfNs > out[j].SelfNs
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// StageTable renders AggregateStages as the per-stage latency attribution
// table.
func StageTable(traces []*Trace) string {
	stats := AggregateStages(traces)
	if len(stats) == 0 {
		return "no spans with trace IDs\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %8s %12s %12s %12s %12s\n",
		"stage", "count", "self_ms", "total_ms", "mean_ms", "max_ms")
	for _, st := range stats {
		fmt.Fprintf(&b, "%-44s %8d %12.2f %12.2f %12.3f %12.3f\n",
			st.Stage, st.Count, float64(st.SelfNs)/1e6, float64(st.TotalNs)/1e6,
			float64(st.TotalNs)/float64(st.Count)/1e6, float64(st.MaxNs)/1e6)
	}
	return b.String()
}

// Package telemetry is the zero-dependency observability subsystem of the
// repo: a metrics registry (atomic counters, gauges, fixed-bucket
// histograms) with Prometheus-text and JSON exposition, a structured event
// log (JSONL sink + in-memory ring buffer) that records the paper's
// per-iteration decision variables, and lightweight monotonic-clock trace
// spans.
//
// Everything is allocation-lean and safe for concurrent use. All consumers
// accept a nil *Recorder / *Span / *Tracer and degrade to a no-op with zero
// allocations, so the optimizer hot paths (gp.Fit, optimize.MaximizeMSP,
// core.Engine.Ask/Tell) are bit-identical and benchmark-neutral when
// telemetry is off — the oracle test in internal/core proves the seeded
// trajectory does not change when it is on.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta atomically.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: Observe finds the first bucket with
// upper bound >= v. Exposition is Prometheus-compatible (cumulative
// _bucket{le=...} series plus _sum and _count).
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf implicit
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    Gauge // atomic float accumulator
	count  atomic.Uint64
}

// DefBuckets are general-purpose latency buckets in seconds.
var DefBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30,
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Buckets returns the bucket upper bounds and their cumulative counts
// (excluding the implicit +Inf bucket, whose cumulative count is Count()).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.bounds))
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
		cumulative[i] = c
	}
	return bounds, cumulative
}

// metricKind discriminates series families for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one (family, label-set) time series.
type series struct {
	labels string // rendered `{k="v",...}` or ""
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name, help string
	kind       metricKind
	series     map[string]*series // keyed by rendered label string
	order      []string
}

// Registry holds metric families and renders them as Prometheus text or
// JSON. Registration is idempotent: asking for an existing (name, labels)
// pair returns the live metric, so call sites don't need to cache handles
// (though hot paths should).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// labelString renders alternating key/value pairs sorted by key:
// `{k1="v1",k2="v2"}`. Odd trailing keys are dropped.
func labelString(kv []string) string {
	if len(kv) < 2 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns (creating if needed) the series for (name, labels); the
// family's kind and help are fixed by the first registration.
func (r *Registry) lookup(name, help string, kind metricKind, kv []string) *series {
	if r == nil {
		return nil
	}
	ls := labelString(kv)
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if s, ok := f.series[ls]; ok && f.kind == kind {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		// Misregistration: surface loudly at development time rather than
		// silently exposing a corrupt family.
		panic(fmt.Sprintf("telemetry: metric %q registered as %v and %v", name, f.kind, kind))
	}
	s, ok := f.series[ls]
	if !ok {
		s = &series{labels: ls}
		f.series[ls] = s
		f.order = append(f.order, ls)
	}
	return s
}

// Counter returns (registering if needed) the counter for name and optional
// alternating label key/value pairs. Safe on a nil registry (returns nil,
// and nil metrics no-op).
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	s := r.lookup(name, help, kindCounter, kv)
	if s == nil {
		return nil
	}
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge returns (registering if needed) the gauge for name/labels.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	s := r.lookup(name, help, kindGauge, kv)
	if s == nil {
		return nil
	}
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time — ideal
// for uptime, queue depths and registry sizes owned by other subsystems.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	s := r.lookup(name, help, kindGaugeFunc, kv)
	if s == nil {
		return
	}
	s.fn = fn
}

// Histogram returns (registering if needed) the fixed-bucket histogram for
// name/labels; buckets are upper bounds (nil selects DefBuckets) and are
// fixed by the first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, kv ...string) *Histogram {
	s := r.lookup(name, help, kindHistogram, kv)
	if s == nil {
		return nil
	}
	if s.hist == nil {
		s.hist = newHistogram(buckets)
	}
	return s.hist
}

// CounterVec is a handle cache over one counter family with a fixed label
// schema: With(values...) returns the live counter for those label values,
// registering it on first use and serving repeats lock-free from a sync.Map.
// It replaces the bare per-call-site `sync.Map` keyed by hand-joined label
// strings that hot HTTP paths otherwise grow — every series it mints goes
// through the Registry, so it appears in /metrics exposition consistently
// and survives promlint. Nil-safe: a nil vec (from a nil registry) returns
// nil counters, which no-op.
type CounterVec struct {
	reg        *Registry
	name, help string
	keys       []string
	handles    sync.Map // "\x00"-joined label values -> *Counter
}

// CounterVec declares a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{reg: r, name: name, help: help, keys: labelNames}
}

// With returns the counter for the given label values (positionally matching
// the declared label names; missing values render as ""). The first call per
// distinct value set registers the series; subsequent calls are a single
// lock-free map hit.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := strings.Join(values, "\x00")
	if c, ok := v.handles.Load(key); ok {
		return c.(*Counter)
	}
	kv := make([]string, 0, 2*len(v.keys))
	for i, name := range v.keys {
		val := ""
		if i < len(values) {
			val = values[i]
		}
		kv = append(kv, name, val)
	}
	c := v.reg.Counter(v.name, v.help, kv...)
	actual, _ := v.handles.LoadOrStore(key, c)
	return actual.(*Counter)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (# HELP / # TYPE lines, series sorted within each family, families
// in registration order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	r.mu.RUnlock()
	var b strings.Builder
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		keys := append([]string(nil), f.order...)
		r.mu.RUnlock()
		sort.Strings(keys)
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			r.mu.RLock()
			s := f.series[k]
			r.mu.RUnlock()
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.ctr.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.gauge.Value()))
			case kindGaugeFunc:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(v))
			case kindHistogram:
				writeHistogram(&b, f.name, s.labels, s.hist)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series with labels merged into the
// per-bucket le label.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	bounds, cum := h.Buckets()
	base := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	for i, ub := range bounds {
		le := formatFloat(ub)
		if base != "" {
			fmt.Fprintf(b, "%s_bucket{%s,le=\"%s\"} %d\n", name, base, le, cum[i])
		} else {
			fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n", name, le, cum[i])
		}
	}
	if base != "" {
		fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, base, h.Count())
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, base, formatFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, base, h.Count())
	} else {
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
		fmt.Fprintf(b, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
	}
}

// HistogramSnapshot is the JSON form of one histogram series.
type HistogramSnapshot struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Cumsum  []uint64  `json:"cumulative"`
	Labels  string    `json:"labels,omitempty"`
	Buckets int       `json:"-"`
}

// Snapshot returns a JSON-marshalable view of every series, keyed by
// "name{labels}" — the expvar/debug-vars exposition.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	r.mu.RUnlock()
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		keys := append([]string(nil), f.order...)
		r.mu.RUnlock()
		for _, k := range keys {
			r.mu.RLock()
			s := f.series[k]
			r.mu.RUnlock()
			key := f.name + s.labels
			switch f.kind {
			case kindCounter:
				out[key] = s.ctr.Value()
			case kindGauge:
				out[key] = s.gauge.Value()
			case kindGaugeFunc:
				if s.fn != nil {
					out[key] = s.fn()
				}
			case kindHistogram:
				bounds, cum := s.hist.Buckets()
				out[key] = HistogramSnapshot{
					Count: s.hist.Count(), Sum: s.hist.Sum(),
					Bounds: bounds, Cumsum: cum, Labels: s.labels,
				}
			}
		}
	}
	return out
}

// Handler returns an http.Handler serving the Prometheus text exposition —
// mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

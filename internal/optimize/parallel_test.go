package optimize

import (
	"math"
	"math/rand"
	"testing"
)

// multimodal is a 2-D surface with many local maxima — the worst case for a
// worker-count-dependent argmax.
func multimodal(x []float64) float64 {
	return math.Sin(5*x[0])*math.Cos(4*x[1]) - 0.1*(x[0]*x[0]+x[1]*x[1])
}

// TestMaximizeMSPParallelDeterminism pins the acquisition maximizer: the
// selected optimum must be bit-identical for Workers=1 and Workers=8 across
// seeds, including the tie-breaking among equally good local optima.
func TestMaximizeMSPParallelDeterminism(t *testing.T) {
	box := NewBox([]float64{-2, -2}, []float64{2, 2})
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		run := func(workers int) ([]float64, float64) {
			rng := rand.New(rand.NewSource(seed))
			return MaximizeMSP(rng, multimodal, box, []float64{0.3, -0.2}, nil,
				MSPConfig{Starts: 12, LocalIter: 30, Workers: workers})
		}
		x1, f1 := run(1)
		x8, f8 := run(8)
		if math.Float64bits(f1) != math.Float64bits(f8) {
			t.Fatalf("seed %d: objective differs: %v vs %v", seed, f1, f8)
		}
		for j := range x1 {
			if math.Float64bits(x1[j]) != math.Float64bits(x8[j]) {
				t.Fatalf("seed %d: x[%d] differs: %v vs %v", seed, j, x1[j], x8[j])
			}
		}
	}
}

// TestMaximizeMSPAllDivergedFallsBack covers the non-finite guard: when every
// local search produces NaN, the maximizer must still return an in-box point
// (the clipped first start) instead of a NaN coordinate vector.
func TestMaximizeMSPAllDivergedFallsBack(t *testing.T) {
	box := NewBox([]float64{0, 0}, []float64{1, 1})
	nan := func(x []float64) float64 { return math.NaN() }
	for _, workers := range []int{1, 4} {
		rng := rand.New(rand.NewSource(6))
		x, _ := MaximizeMSP(rng, nan, box, nil, nil,
			MSPConfig{Starts: 5, LocalIter: 10, Workers: workers})
		if len(x) != 2 || !box.Contains(x) {
			t.Fatalf("workers=%d: fallback point out of box: %v", workers, x)
		}
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("workers=%d: non-finite coordinate %d: %v", workers, j, v)
			}
		}
	}
}

// TestDEParallelEvalDeterminism pins the synchronous-generation DE variant:
// for a fixed seed, the evolved optimum is bit-identical for every worker
// count (the variant freezes the generation-start population so trial
// generation, evaluation order, and selection do not depend on scheduling).
func TestDEParallelEvalDeterminism(t *testing.T) {
	box := NewBox([]float64{-3, -3, -3}, []float64{3, 3, 3})
	sphere := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += v * v
		}
		return s
	}
	for _, seed := range []int64{1, 2, 3} {
		run := func(workers int) ([]float64, float64) {
			rng := rand.New(rand.NewSource(seed))
			return DE(rng, sphere, box, DEConfig{
				PopSize: 16, MaxGen: 25, ParallelEval: true, Workers: workers,
			})
		}
		x1, f1 := run(1)
		x8, f8 := run(8)
		if math.Float64bits(f1) != math.Float64bits(f8) {
			t.Fatalf("seed %d: best value differs: %v vs %v", seed, f1, f8)
		}
		for j := range x1 {
			if math.Float64bits(x1[j]) != math.Float64bits(x8[j]) {
				t.Fatalf("seed %d: best x[%d] differs: %v vs %v", seed, j, x1[j], x8[j])
			}
		}
		if f1 > 0.5 {
			t.Fatalf("seed %d: synchronous DE failed to optimize sphere: %v", seed, f1)
		}
	}
}

// TestDEParallelEvalRespectsBudget checks the batched evaluator against
// MaxEvals: the callback (serialized in index order) must fire at most
// MaxEvals times, and the unevaluated tail must never win selection.
func TestDEParallelEvalRespectsBudget(t *testing.T) {
	box := NewBox([]float64{-1, -1}, []float64{1, 1})
	f := func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }
	count := 0
	const maxEvals = 37
	x, best := DE(rand.New(rand.NewSource(4)), f, box, DEConfig{
		PopSize: 10, MaxGen: 50, MaxEvals: maxEvals,
		ParallelEval: true, Workers: 4,
		Callback: func([]float64, float64) { count++ },
	})
	if count != maxEvals {
		t.Fatalf("callback fired %d times; want exactly %d", count, maxEvals)
	}
	if math.IsInf(best, 1) || len(x) != 2 {
		t.Fatalf("budgeted run returned unusable best: %v at %v", best, x)
	}
}

package optimize

import (
	"math"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// DEConfig tunes the differential-evolution engine (DE/rand/1/bin).
type DEConfig struct {
	PopSize int     // population size (default 10·d, min 8)
	F       float64 // differential weight (default 0.7)
	CR      float64 // crossover rate (default 0.9)
	MaxGen  int     // maximum generations (default 100)
	// MaxEvals, when positive, stops evolution once the total number of
	// objective evaluations (including the initial population) reaches it.
	MaxEvals int
	// Callback, when non-nil, is invoked after every objective evaluation
	// with the evaluated point and value. The experiment harness uses it to
	// track convergence versus simulation count.
	Callback func(x []float64, f float64)
	// Init, when non-nil, seeds part of the initial population.
	Init [][]float64
	// ParallelEval switches to the synchronous-generation DE variant: every
	// generation's trial vectors are produced serially from the
	// start-of-generation population (fixed rng order), the whole batch is
	// evaluated concurrently, and selection runs serially in population
	// order. Results are bit-identical for any Workers value, but differ
	// from the default sequential variant (which lets trial i see the
	// already-selected survivors 0..i−1 of the same generation). f must be
	// safe for concurrent calls; Callback stays serialized in index order.
	ParallelEval bool
	// Workers bounds the evaluation goroutines when ParallelEval is set
	// (0 = default, 1 = serial).
	Workers int
}

func (c *DEConfig) defaults(d int) {
	if c.PopSize <= 0 {
		c.PopSize = 10 * d
		if c.PopSize < 8 {
			c.PopSize = 8
		}
	}
	if c.F <= 0 {
		c.F = 0.7
	}
	if c.CR <= 0 {
		c.CR = 0.9
	}
	if c.MaxGen <= 0 {
		c.MaxGen = 100
	}
}

// DE minimizes f over the box with DE/rand/1/bin and returns the best point
// and value found. It is both the paper's DE baseline and the proposal
// engine inside GASPAD.
func DE(rng *rand.Rand, f func([]float64) float64, box Box, cfg DEConfig) ([]float64, float64) {
	d := box.Dim()
	cfg.defaults(d)
	if cfg.ParallelEval {
		return deSync(rng, f, box, cfg)
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if cfg.Callback != nil {
			cfg.Callback(x, v)
		}
		return v
	}
	budgetLeft := func() bool { return cfg.MaxEvals <= 0 || evals < cfg.MaxEvals }

	pop := make([][]float64, 0, cfg.PopSize)
	for _, x := range cfg.Init {
		if len(pop) == cfg.PopSize {
			break
		}
		pop = append(pop, box.Clip(x))
	}
	if need := cfg.PopSize - len(pop); need > 0 {
		pop = append(pop, stats.LatinHypercube(rng, box.Lo, box.Hi, need)...)
	}
	fit := make([]float64, cfg.PopSize)
	bestX, bestF := pop[0], math.Inf(1)
	for i, x := range pop {
		if !budgetLeft() {
			fit[i] = math.Inf(1) // unevaluated tail loses every selection
			continue
		}
		fit[i] = eval(x)
		if fit[i] < bestF {
			bestX, bestF = x, fit[i]
		}
	}

	trial := make([]float64, d)
	for gen := 0; gen < cfg.MaxGen && budgetLeft(); gen++ {
		for i := 0; i < cfg.PopSize && budgetLeft(); i++ {
			a, b, c := distinctThree(rng, cfg.PopSize, i)
			jRand := rng.Intn(d)
			for j := 0; j < d; j++ {
				if j == jRand || rng.Float64() < cfg.CR {
					trial[j] = pop[a][j] + cfg.F*(pop[b][j]-pop[c][j])
					// Reflect out-of-box coordinates back inside.
					if trial[j] < box.Lo[j] {
						trial[j] = box.Lo[j] + rng.Float64()*(pop[i][j]-box.Lo[j])
					} else if trial[j] > box.Hi[j] {
						trial[j] = box.Hi[j] - rng.Float64()*(box.Hi[j]-pop[i][j])
					}
				} else {
					trial[j] = pop[i][j]
				}
			}
			ft := eval(trial)
			if ft <= fit[i] {
				copy(pop[i], trial)
				fit[i] = ft
				if ft < bestF {
					bestF = ft
					bestX = append([]float64(nil), trial...)
				}
			}
		}
	}
	return append([]float64(nil), bestX...), bestF
}

// deSync is the synchronous-generation DE variant behind
// DEConfig.ParallelEval: trial generation and selection stay serial (so the
// rng stream and the evolution are a pure function of the seed), while each
// generation's objective evaluations fan out across workers.
func deSync(rng *rand.Rand, f func([]float64) float64, box Box, cfg DEConfig) ([]float64, float64) {
	d := box.Dim()
	workers := parallel.Workers(cfg.Workers)
	evals := 0
	remaining := func() int {
		if cfg.MaxEvals <= 0 {
			return int(^uint(0) >> 1) // effectively unbounded
		}
		r := cfg.MaxEvals - evals
		if r < 0 {
			r = 0
		}
		return r
	}
	// evalBatch evaluates xs[0:k] concurrently (k capped by the remaining
	// budget), fills the unevaluated tail with +Inf so it loses every
	// selection, and replays callbacks serially in index order.
	evalBatch := func(xs [][]float64, out []float64) {
		k := len(xs)
		if r := remaining(); k > r {
			k = r
		}
		parallel.ForEach(workers, k, func(i int) { out[i] = f(xs[i]) })
		evals += k
		if cfg.Callback != nil {
			for i := 0; i < k; i++ {
				cfg.Callback(xs[i], out[i])
			}
		}
		for i := k; i < len(xs); i++ {
			out[i] = math.Inf(1)
		}
	}

	pop := make([][]float64, 0, cfg.PopSize)
	for _, x := range cfg.Init {
		if len(pop) == cfg.PopSize {
			break
		}
		pop = append(pop, box.Clip(x))
	}
	if need := cfg.PopSize - len(pop); need > 0 {
		pop = append(pop, stats.LatinHypercube(rng, box.Lo, box.Hi, need)...)
	}
	fit := make([]float64, cfg.PopSize)
	evalBatch(pop, fit)
	bestX, bestF := pop[0], math.Inf(1)
	for i, ft := range fit {
		if ft < bestF {
			bestX, bestF = pop[i], ft
		}
	}

	trials := make([][]float64, cfg.PopSize)
	tfit := make([]float64, cfg.PopSize)
	for i := range trials {
		trials[i] = make([]float64, d)
	}
	for gen := 0; gen < cfg.MaxGen && remaining() > 0; gen++ {
		// Serial trial generation against the frozen generation-start
		// population.
		for i := 0; i < cfg.PopSize; i++ {
			a, b, c := distinctThree(rng, cfg.PopSize, i)
			jRand := rng.Intn(d)
			trial := trials[i]
			for j := 0; j < d; j++ {
				if j == jRand || rng.Float64() < cfg.CR {
					trial[j] = pop[a][j] + cfg.F*(pop[b][j]-pop[c][j])
					if trial[j] < box.Lo[j] {
						trial[j] = box.Lo[j] + rng.Float64()*(pop[i][j]-box.Lo[j])
					} else if trial[j] > box.Hi[j] {
						trial[j] = box.Hi[j] - rng.Float64()*(box.Hi[j]-pop[i][j])
					}
				} else {
					trial[j] = pop[i][j]
				}
			}
		}
		evalBatch(trials, tfit)
		// Serial selection in population order.
		for i := 0; i < cfg.PopSize; i++ {
			if tfit[i] <= fit[i] && !math.IsInf(tfit[i], 1) {
				copy(pop[i], trials[i])
				fit[i] = tfit[i]
				if tfit[i] < bestF {
					bestF = tfit[i]
					bestX = append([]float64(nil), trials[i]...)
				}
			}
		}
	}
	return append([]float64(nil), bestX...), bestF
}

// distinctThree draws three distinct population indices, all different from
// excl.
func distinctThree(rng *rand.Rand, n, excl int) (int, int, int) {
	pick := func(avoid ...int) int {
	retry:
		for {
			v := rng.Intn(n)
			for _, a := range avoid {
				if v == a {
					continue retry
				}
			}
			return v
		}
	}
	a := pick(excl)
	b := pick(excl, a)
	c := pick(excl, a, b)
	return a, b, c
}

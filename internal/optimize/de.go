package optimize

import (
	"math"
	"math/rand"

	"repro/internal/stats"
)

// DEConfig tunes the differential-evolution engine (DE/rand/1/bin).
type DEConfig struct {
	PopSize int     // population size (default 10·d, min 8)
	F       float64 // differential weight (default 0.7)
	CR      float64 // crossover rate (default 0.9)
	MaxGen  int     // maximum generations (default 100)
	// MaxEvals, when positive, stops evolution once the total number of
	// objective evaluations (including the initial population) reaches it.
	MaxEvals int
	// Callback, when non-nil, is invoked after every objective evaluation
	// with the evaluated point and value. The experiment harness uses it to
	// track convergence versus simulation count.
	Callback func(x []float64, f float64)
	// Init, when non-nil, seeds part of the initial population.
	Init [][]float64
}

func (c *DEConfig) defaults(d int) {
	if c.PopSize <= 0 {
		c.PopSize = 10 * d
		if c.PopSize < 8 {
			c.PopSize = 8
		}
	}
	if c.F <= 0 {
		c.F = 0.7
	}
	if c.CR <= 0 {
		c.CR = 0.9
	}
	if c.MaxGen <= 0 {
		c.MaxGen = 100
	}
}

// DE minimizes f over the box with DE/rand/1/bin and returns the best point
// and value found. It is both the paper's DE baseline and the proposal
// engine inside GASPAD.
func DE(rng *rand.Rand, f func([]float64) float64, box Box, cfg DEConfig) ([]float64, float64) {
	d := box.Dim()
	cfg.defaults(d)
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if cfg.Callback != nil {
			cfg.Callback(x, v)
		}
		return v
	}
	budgetLeft := func() bool { return cfg.MaxEvals <= 0 || evals < cfg.MaxEvals }

	pop := make([][]float64, 0, cfg.PopSize)
	for _, x := range cfg.Init {
		if len(pop) == cfg.PopSize {
			break
		}
		pop = append(pop, box.Clip(x))
	}
	if need := cfg.PopSize - len(pop); need > 0 {
		pop = append(pop, stats.LatinHypercube(rng, box.Lo, box.Hi, need)...)
	}
	fit := make([]float64, cfg.PopSize)
	bestX, bestF := pop[0], math.Inf(1)
	for i, x := range pop {
		if !budgetLeft() {
			fit[i] = math.Inf(1) // unevaluated tail loses every selection
			continue
		}
		fit[i] = eval(x)
		if fit[i] < bestF {
			bestX, bestF = x, fit[i]
		}
	}

	trial := make([]float64, d)
	for gen := 0; gen < cfg.MaxGen && budgetLeft(); gen++ {
		for i := 0; i < cfg.PopSize && budgetLeft(); i++ {
			a, b, c := distinctThree(rng, cfg.PopSize, i)
			jRand := rng.Intn(d)
			for j := 0; j < d; j++ {
				if j == jRand || rng.Float64() < cfg.CR {
					trial[j] = pop[a][j] + cfg.F*(pop[b][j]-pop[c][j])
					// Reflect out-of-box coordinates back inside.
					if trial[j] < box.Lo[j] {
						trial[j] = box.Lo[j] + rng.Float64()*(pop[i][j]-box.Lo[j])
					} else if trial[j] > box.Hi[j] {
						trial[j] = box.Hi[j] - rng.Float64()*(box.Hi[j]-pop[i][j])
					}
				} else {
					trial[j] = pop[i][j]
				}
			}
			ft := eval(trial)
			if ft <= fit[i] {
				copy(pop[i], trial)
				fit[i] = ft
				if ft < bestF {
					bestF = ft
					bestX = append([]float64(nil), trial...)
				}
			}
		}
	}
	return append([]float64(nil), bestX...), bestF
}

// distinctThree draws three distinct population indices, all different from
// excl.
func distinctThree(rng *rand.Rand, n, excl int) (int, int, int) {
	pick := func(avoid ...int) int {
	retry:
		for {
			v := rng.Intn(n)
			for _, a := range avoid {
				if v == a {
					continue retry
				}
			}
			return v
		}
	}
	a := pick(excl)
	b := pick(excl, a)
	c := pick(excl, a, b)
	return a, b, c
}

package optimize

import (
	"math"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// MSPConfig configures the multiple-starting-point maximizer of §4.1.
//
// A fraction FracHigh of starting points is scattered in a Gaussian ball
// around the high-fidelity incumbent, FracLow around the low-fidelity
// incumbent, and the remainder uniformly over the box. The paper uses
// FracHigh = 0.4 and FracLow = 0.1.
type MSPConfig struct {
	Starts    int     // number of starting points (default 20)
	FracHigh  float64 // fraction seeded near IncumbentHigh (default 0.4)
	FracLow   float64 // fraction seeded near IncumbentLow (default 0.1)
	SigmaFrac float64 // ball std as a fraction of each box width (default 0.02)
	LocalIter int     // local refinement iterations per start (default 60)
	UseNM     bool    // use Nelder–Mead instead of L-BFGS for local refinement
	// Extra starting points appended verbatim (clipped to the box). The BO
	// loop passes the low-fidelity acquisition optimum here (Algorithm 1,
	// line 6: the high-fidelity acquisition is optimized "based on x*_l").
	Extra [][]float64
	// Workers bounds the goroutines running local searches (0 = default,
	// 1 = serial). f must be safe for concurrent calls when Workers != 1;
	// every surrogate posterior in this library is. The selected optimum is
	// bit-identical for every worker count: start points are drawn serially
	// before the fan-out and the argmax reduction runs in start order.
	Workers int
	// Stats, when non-nil, is filled with start/convergence bookkeeping of
	// this maximization. nil (the default) is a zero-allocation no-op.
	Stats *MSPStats
	// Span, when non-nil, parents an "optimize.msp" trace span around the
	// maximization. nil is a zero-allocation no-op.
	Span *telemetry.Span
}

// MSPStats records what one MaximizeMSP run did: how many local searches
// started, how many diverged to a non-finite value (and were discarded by
// the argmax), which start won, and the winning acquisition value. The MFBO
// loop surfaces these in its per-iteration telemetry events so a stuck MSP
// search is visible at runtime.
type MSPStats struct {
	Starts    int     // local searches launched (incumbent/uniform/Extra)
	Diverged  int     // starts whose refined value was NaN/±Inf
	BestStart int     // index of the winning start (-1 = total-divergence fallback)
	BestF     float64 // maximized objective value
}

func (c *MSPConfig) defaults() {
	if c.Starts <= 0 {
		c.Starts = 20
	}
	if c.FracHigh <= 0 {
		c.FracHigh = 0.4
	}
	if c.FracLow <= 0 {
		c.FracLow = 0.1
	}
	if c.SigmaFrac <= 0 {
		c.SigmaFrac = 0.02
	}
	if c.LocalIter <= 0 {
		c.LocalIter = 60
	}
}

// MaximizeMSP maximizes f over the box using the multiple-starting-point
// strategy. incumbentHigh and incumbentLow may be nil when no incumbent is
// known yet (their start-point shares then fall back to uniform sampling).
// It returns the best point found and its objective value.
//
// Local searches from all starts run concurrently (see MSPConfig.Workers);
// each start's refinement is a pure function of its starting point, and the
// argmax reduction walks results in start order with a strict comparison, so
// ties break toward the lowest start index and the outcome is independent of
// the worker count. Non-finite local-search results (a diverged L-BFGS run)
// are discarded so they can never win the argmax; if every start diverges,
// the raw objective at the first start is returned as a safe fallback.
func MaximizeMSP(rng *rand.Rand, f func([]float64) float64, box Box,
	incumbentHigh, incumbentLow []float64, cfg MSPConfig) ([]float64, float64) {
	cfg.defaults()
	span := cfg.Span.Child("optimize.msp")
	defer span.End()
	starts := mspStarts(rng, box, incumbentHigh, incumbentLow, cfg)
	span.Attr("starts", float64(len(starts)))
	neg := func(x []float64) float64 { return -f(x) }
	type local struct {
		x []float64
		f float64 // maximized objective value
	}
	results := make([]local, len(starts))
	parallel.ForEach(parallel.Workers(cfg.Workers), len(starts), func(i int) {
		s := starts[i]
		var r Result
		if cfg.UseNM {
			r = NelderMead(func(x []float64) float64 {
				if !box.Contains(x) {
					x = box.Clip(x)
				}
				return neg(x)
			}, s, NelderMeadConfig{MaxIter: cfg.LocalIter * len(s)})
			r.X = box.Clip(r.X)
			r.F = neg(r.X)
		} else {
			r = MinimizeInBox(neg, box, s, LBFGSConfig{MaxIter: cfg.LocalIter})
		}
		results[i] = local{x: r.X, f: -r.F}
	})
	var bestX []float64
	bestF := math.Inf(-1)
	bestIdx, diverged := -1, 0
	for i, r := range results {
		if math.IsNaN(r.f) || math.IsInf(r.f, 0) {
			diverged++
			continue
		}
		if bestX == nil || r.f > bestF {
			bestF = r.f
			bestX = r.x
			bestIdx = i
		}
	}
	if bestX == nil {
		// Every local search diverged: fall back to the first start itself.
		// This is also the only raw (pre-refinement) objective evaluation —
		// the common path no longer pays the duplicated f(starts[0]) call
		// that the local search from starts[0] subsumes.
		bestX = box.Clip(starts[0])
		bestF = f(bestX)
	}
	if cfg.Stats != nil {
		*cfg.Stats = MSPStats{Starts: len(starts), Diverged: diverged, BestStart: bestIdx, BestF: bestF}
	}
	span.Attr("diverged", float64(diverged))
	span.Attr("best_f", bestF)
	return bestX, bestF
}

// mspStarts builds the §4.1 start-point set: FracHigh near the high-fidelity
// incumbent, FracLow near the low-fidelity incumbent, remainder uniform.
func mspStarts(rng *rand.Rand, box Box, incHigh, incLow []float64, cfg MSPConfig) [][]float64 {
	nHigh, nLow := 0, 0
	if incHigh != nil {
		nHigh = int(cfg.FracHigh * float64(cfg.Starts))
	}
	if incLow != nil {
		nLow = int(cfg.FracLow * float64(cfg.Starts))
	}
	nUniform := cfg.Starts - nHigh - nLow
	pts := make([][]float64, 0, cfg.Starts)
	if nHigh > 0 {
		pts = append(pts, stats.GaussianBall(rng, incHigh, box.Lo, box.Hi, cfg.SigmaFrac, nHigh)...)
	}
	if nLow > 0 {
		pts = append(pts, stats.GaussianBall(rng, incLow, box.Lo, box.Hi, cfg.SigmaFrac, nLow)...)
	}
	if nUniform > 0 {
		pts = append(pts, stats.LatinHypercube(rng, box.Lo, box.Hi, nUniform)...)
	}
	for _, e := range cfg.Extra {
		pts = append(pts, box.Clip(e))
	}
	return pts
}

package optimize

import (
	"math/rand"

	"repro/internal/stats"
)

// MSPConfig configures the multiple-starting-point maximizer of §4.1.
//
// A fraction FracHigh of starting points is scattered in a Gaussian ball
// around the high-fidelity incumbent, FracLow around the low-fidelity
// incumbent, and the remainder uniformly over the box. The paper uses
// FracHigh = 0.4 and FracLow = 0.1.
type MSPConfig struct {
	Starts    int     // number of starting points (default 20)
	FracHigh  float64 // fraction seeded near IncumbentHigh (default 0.4)
	FracLow   float64 // fraction seeded near IncumbentLow (default 0.1)
	SigmaFrac float64 // ball std as a fraction of each box width (default 0.02)
	LocalIter int     // local refinement iterations per start (default 60)
	UseNM     bool    // use Nelder–Mead instead of L-BFGS for local refinement
	// Extra starting points appended verbatim (clipped to the box). The BO
	// loop passes the low-fidelity acquisition optimum here (Algorithm 1,
	// line 6: the high-fidelity acquisition is optimized "based on x*_l").
	Extra [][]float64
}

func (c *MSPConfig) defaults() {
	if c.Starts <= 0 {
		c.Starts = 20
	}
	if c.FracHigh <= 0 {
		c.FracHigh = 0.4
	}
	if c.FracLow <= 0 {
		c.FracLow = 0.1
	}
	if c.SigmaFrac <= 0 {
		c.SigmaFrac = 0.02
	}
	if c.LocalIter <= 0 {
		c.LocalIter = 60
	}
}

// MaximizeMSP maximizes f over the box using the multiple-starting-point
// strategy. incumbentHigh and incumbentLow may be nil when no incumbent is
// known yet (their start-point shares then fall back to uniform sampling).
// It returns the best point found and its objective value.
func MaximizeMSP(rng *rand.Rand, f func([]float64) float64, box Box,
	incumbentHigh, incumbentLow []float64, cfg MSPConfig) ([]float64, float64) {
	cfg.defaults()
	starts := mspStarts(rng, box, incumbentHigh, incumbentLow, cfg)
	neg := func(x []float64) float64 { return -f(x) }
	bestX := starts[0]
	bestF := f(bestX)
	for _, s := range starts {
		var r Result
		if cfg.UseNM {
			r = NelderMead(func(x []float64) float64 {
				if !box.Contains(x) {
					x = box.Clip(x)
				}
				return neg(x)
			}, s, NelderMeadConfig{MaxIter: cfg.LocalIter * len(s)})
			r.X = box.Clip(r.X)
			r.F = neg(r.X)
		} else {
			r = MinimizeInBox(neg, box, s, LBFGSConfig{MaxIter: cfg.LocalIter})
		}
		if v := -r.F; v > bestF {
			bestF = v
			bestX = r.X
		}
	}
	return bestX, bestF
}

// mspStarts builds the §4.1 start-point set: FracHigh near the high-fidelity
// incumbent, FracLow near the low-fidelity incumbent, remainder uniform.
func mspStarts(rng *rand.Rand, box Box, incHigh, incLow []float64, cfg MSPConfig) [][]float64 {
	nHigh, nLow := 0, 0
	if incHigh != nil {
		nHigh = int(cfg.FracHigh * float64(cfg.Starts))
	}
	if incLow != nil {
		nLow = int(cfg.FracLow * float64(cfg.Starts))
	}
	nUniform := cfg.Starts - nHigh - nLow
	pts := make([][]float64, 0, cfg.Starts)
	if nHigh > 0 {
		pts = append(pts, stats.GaussianBall(rng, incHigh, box.Lo, box.Hi, cfg.SigmaFrac, nHigh)...)
	}
	if nLow > 0 {
		pts = append(pts, stats.GaussianBall(rng, incLow, box.Lo, box.Hi, cfg.SigmaFrac, nLow)...)
	}
	if nUniform > 0 {
		pts = append(pts, stats.LatinHypercube(rng, box.Lo, box.Hi, nUniform)...)
	}
	for _, e := range cfg.Extra {
		pts = append(pts, box.Clip(e))
	}
	return pts
}

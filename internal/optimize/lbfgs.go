// Package optimize provides the numerical optimizers used throughout the
// library: L-BFGS with a strong-Wolfe line search (hyperparameter training,
// acquisition maximization), Nelder–Mead (derivative-free fallback), a
// differential-evolution engine (the DE baseline and GASPAD's proposal pool),
// and the paper's multiple-starting-point (MSP) driver with incumbent-local
// seeding (§4.1).
package optimize

import (
	"math"

	"repro/internal/linalg"
)

// Objective is a scalar function with gradient. The gradient slice is owned
// by the caller and must be fully overwritten.
type Objective func(x []float64, grad []float64) float64

// LBFGSConfig tunes the quasi-Newton minimizer. Zero values select defaults.
type LBFGSConfig struct {
	Memory   int     // history pairs (default 10)
	MaxIter  int     // maximum iterations (default 200)
	GradTol  float64 // stop when ‖∇f‖∞ < GradTol (default 1e-6)
	FuncTol  float64 // stop on relative f decrease below FuncTol (default 1e-10)
	StepInit float64 // initial line-search step (default 1)
}

func (c *LBFGSConfig) defaults() {
	if c.Memory <= 0 {
		c.Memory = 10
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	if c.GradTol <= 0 {
		c.GradTol = 1e-6
	}
	if c.FuncTol <= 0 {
		c.FuncTol = 1e-10
	}
	if c.StepInit <= 0 {
		c.StepInit = 1
	}
}

// Result reports the outcome of a minimization.
type Result struct {
	X         []float64
	F         float64
	Gradient  []float64
	Iters     int
	Evals     int
	Converged bool
}

// LBFGS minimizes f starting from x0 using limited-memory BFGS with a
// strong-Wolfe cubic line search. x0 is not modified.
func LBFGS(f Objective, x0 []float64, cfg LBFGSConfig) Result {
	cfg.defaults()
	n := len(x0)
	x := append([]float64(nil), x0...)
	g := make([]float64, n)
	evals := 0
	eval := func(p []float64, grad []float64) float64 {
		evals++
		return f(p, grad)
	}
	fx := eval(x, g)

	type pair struct {
		s, y []float64
		rho  float64
	}
	var hist []pair
	d := make([]float64, n)
	res := Result{}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if maxAbs(g) < cfg.GradTol {
			res.Converged = true
			res.Iters = iter
			break
		}
		// Two-loop recursion for d = −H·g.
		copy(d, g)
		alphas := make([]float64, len(hist))
		for i := len(hist) - 1; i >= 0; i-- {
			h := hist[i]
			alphas[i] = h.rho * linalg.Dot(h.s, d)
			linalg.AXPY(-alphas[i], h.y, d)
		}
		if len(hist) > 0 {
			last := hist[len(hist)-1]
			gamma := linalg.Dot(last.s, last.y) / linalg.Dot(last.y, last.y)
			for i := range d {
				d[i] *= gamma
			}
		}
		for i := 0; i < len(hist); i++ {
			h := hist[i]
			beta := h.rho * linalg.Dot(h.y, d)
			linalg.AXPY(alphas[i]-beta, h.s, d)
		}
		for i := range d {
			d[i] = -d[i]
		}
		// Ensure descent; fall back to steepest descent if not.
		dg := linalg.Dot(d, g)
		if dg >= 0 {
			for i := range d {
				d[i] = -g[i]
			}
			dg = -linalg.Dot(g, g)
			hist = hist[:0]
		}
		step0 := cfg.StepInit
		if iter == 0 {
			// Conservative first step scaled by gradient magnitude.
			if gn := linalg.Norm2(g); gn > 1 {
				step0 = 1 / gn
			}
		}
		xNew, fNew, gNew, ok := wolfeSearch(eval, x, fx, g, d, dg, step0)
		if !ok {
			res.Iters = iter
			break
		}
		s := linalg.SubVec(xNew, x)
		y := linalg.SubVec(gNew, g)
		sy := linalg.Dot(s, y)
		if sy > 1e-12*linalg.Norm2(s)*linalg.Norm2(y) {
			hist = append(hist, pair{s: s, y: y, rho: 1 / sy})
			if len(hist) > cfg.Memory {
				hist = hist[1:]
			}
		}
		rel := math.Abs(fx-fNew) / math.Max(1, math.Abs(fx))
		x, fx = xNew, fNew
		copy(g, gNew)
		if rel < cfg.FuncTol {
			res.Converged = true
			res.Iters = iter + 1
			break
		}
		res.Iters = iter + 1
	}
	res.X = x
	res.F = fx
	res.Gradient = g
	res.Evals = evals
	return res
}

// wolfeSearch performs a strong-Wolfe line search along d from x. It returns
// the accepted point, value and gradient, or ok=false when no acceptable step
// was found.
func wolfeSearch(eval func([]float64, []float64) float64,
	x []float64, fx float64, g, d []float64, dg float64, step0 float64) (xn []float64, fn float64, gn []float64, ok bool) {
	const (
		c1      = 1e-4
		c2      = 0.9
		maxTry  = 30
		stepMax = 1e10
	)
	n := len(x)
	phi := func(a float64, grad []float64) (float64, float64, []float64) {
		p := make([]float64, n)
		for i := range p {
			p[i] = x[i] + a*d[i]
		}
		f := eval(p, grad)
		return f, linalg.Dot(grad, d), p
	}
	aPrev, fPrev, dgPrev := 0.0, fx, dg
	a := step0
	gTmp := make([]float64, n)
	var fA, dgA float64
	var pA []float64
	for try := 0; try < maxTry; try++ {
		fA, dgA, pA = phi(a, gTmp)
		if math.IsNaN(fA) || math.IsInf(fA, 0) {
			a = 0.5 * (aPrev + a)
			continue
		}
		if fA > fx+c1*a*dg || (try > 0 && fA >= fPrev) {
			return zoom(eval, x, fx, dg, d, aPrev, a, fPrev, dgPrev, c1, c2)
		}
		if math.Abs(dgA) <= -c2*dg {
			gOut := append([]float64(nil), gTmp...)
			return pA, fA, gOut, true
		}
		if dgA >= 0 {
			return zoom(eval, x, fx, dg, d, a, aPrev, fA, dgA, c1, c2)
		}
		aPrev, fPrev, dgPrev = a, fA, dgA
		a *= 2
		if a > stepMax {
			break
		}
	}
	return nil, 0, nil, false
}

// zoom brackets a Wolfe point in [aLo, aHi] by bisection/interpolation.
func zoom(eval func([]float64, []float64) float64,
	x []float64, fx, dg0 float64, d []float64,
	aLo, aHi, fLo, dgLo, c1, c2 float64) (xn []float64, fn float64, gn []float64, ok bool) {
	n := len(x)
	gTmp := make([]float64, n)
	phi := func(a float64) (float64, float64, []float64) {
		p := make([]float64, n)
		for i := range p {
			p[i] = x[i] + a*d[i]
		}
		f := eval(p, gTmp)
		return f, linalg.Dot(gTmp, d), p
	}
	for try := 0; try < 30; try++ {
		a := 0.5 * (aLo + aHi)
		fA, dgA, pA := phi(a)
		if math.IsNaN(fA) || fA > fx+c1*a*dg0 || fA >= fLo {
			aHi = a
			continue
		}
		if math.Abs(dgA) <= -c2*dg0 {
			gOut := append([]float64(nil), gTmp...)
			return pA, fA, gOut, true
		}
		if dgA*(aHi-aLo) >= 0 {
			aHi = aLo
		}
		aLo, fLo = a, fA
		if math.Abs(aHi-aLo) < 1e-14*(1+math.Abs(aLo)) {
			gOut := append([]float64(nil), gTmp...)
			return pA, fA, gOut, true
		}
	}
	// Accept the best sufficient-decrease point found, if any.
	if aLo > 0 {
		fA, _, pA := phi(aLo)
		if fA < fx {
			gOut := append([]float64(nil), gTmp...)
			return pA, fA, gOut, true
		}
	}
	return nil, 0, nil, false
}

func maxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// NumericalGradient wraps a gradient-free function into an Objective using
// central finite differences with step h (default 1e-6 when h <= 0).
func NumericalGradient(f func([]float64) float64, h float64) Objective {
	if h <= 0 {
		h = 1e-6
	}
	return func(x, grad []float64) float64 {
		fx := f(x)
		p := append([]float64(nil), x...)
		for i := range x {
			save := p[i]
			p[i] = save + h
			up := f(p)
			p[i] = save - h
			dn := f(p)
			p[i] = save
			grad[i] = (up - dn) / (2 * h)
		}
		return fx
	}
}

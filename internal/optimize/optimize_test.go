package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quadratic is a simple strictly convex objective with known minimum.
func quadratic(center []float64) Objective {
	return func(x, grad []float64) float64 {
		f := 0.0
		for i := range x {
			d := x[i] - center[i]
			f += d * d
			grad[i] = 2 * d
		}
		return f
	}
}

func TestLBFGSQuadratic(t *testing.T) {
	center := []float64{1, -2, 3}
	r := LBFGS(quadratic(center), []float64{0, 0, 0}, LBFGSConfig{})
	if !r.Converged {
		t.Fatalf("did not converge: %+v", r)
	}
	for i := range center {
		if math.Abs(r.X[i]-center[i]) > 1e-5 {
			t.Fatalf("x = %v, want %v", r.X, center)
		}
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	rosen := func(x, grad []float64) float64 {
		a, b := x[0], x[1]
		f := (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
		grad[0] = -2*(1-a) - 400*a*(b-a*a)
		grad[1] = 200 * (b - a*a)
		return f
	}
	r := LBFGS(rosen, []float64{-1.2, 1}, LBFGSConfig{MaxIter: 500})
	if math.Abs(r.X[0]-1) > 1e-4 || math.Abs(r.X[1]-1) > 1e-4 {
		t.Fatalf("Rosenbrock solution %v, f=%v", r.X, r.F)
	}
}

func TestLBFGSHighDimensional(t *testing.T) {
	d := 30
	center := make([]float64, d)
	for i := range center {
		center[i] = float64(i%5) - 2
	}
	x0 := make([]float64, d)
	r := LBFGS(quadratic(center), x0, LBFGSConfig{})
	for i := range center {
		if math.Abs(r.X[i]-center[i]) > 1e-4 {
			t.Fatalf("dim %d: %v vs %v", i, r.X[i], center[i])
		}
	}
}

func TestLBFGSDoesNotModifyStart(t *testing.T) {
	x0 := []float64{5, 5}
	LBFGS(quadratic([]float64{0, 0}), x0, LBFGSConfig{})
	if x0[0] != 5 || x0[1] != 5 {
		t.Fatal("LBFGS modified its starting point")
	}
}

func TestNumericalGradientMatchesAnalytic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		obj := NumericalGradient(func(p []float64) float64 {
			return math.Sin(p[0]) + p[1]*p[1]*p[0]
		}, 0)
		grad := make([]float64, 2)
		obj(x, grad)
		wantG0 := math.Cos(x[0]) + x[1]*x[1]
		wantG1 := 2 * x[1] * x[0]
		return math.Abs(grad[0]-wantG0) < 1e-4*(1+math.Abs(wantG0)) &&
			math.Abs(grad[1]-wantG1) < 1e-4*(1+math.Abs(wantG1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-2)*(x[0]-2) + (x[1]+1)*(x[1]+1) + 3
	}
	r := NelderMead(f, []float64{0, 0}, NelderMeadConfig{})
	if math.Abs(r.X[0]-2) > 1e-3 || math.Abs(r.X[1]+1) > 1e-3 {
		t.Fatalf("NM solution %v", r.X)
	}
	if math.Abs(r.F-3) > 1e-5 {
		t.Fatalf("NM value %v, want 3", r.F)
	}
}

func TestNelderMeadHandlesNaN(t *testing.T) {
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 1) * (x[0] - 1)
	}
	r := NelderMead(f, []float64{2}, NelderMeadConfig{})
	if math.Abs(r.X[0]-1) > 1e-3 {
		t.Fatalf("NM with NaN region: %v", r.X)
	}
}

func TestBoxBasics(t *testing.T) {
	b := NewBox([]float64{0, -1}, []float64{1, 1})
	if !b.Contains([]float64{0.5, 0}) || b.Contains([]float64{2, 0}) {
		t.Fatal("Contains wrong")
	}
	c := b.Clip([]float64{5, -5})
	if c[0] != 1 || c[1] != -1 {
		t.Fatalf("Clip = %v", c)
	}
	mid := b.Center()
	if mid[0] != 0.5 || mid[1] != 0 {
		t.Fatalf("Center = %v", mid)
	}
}

func TestBoxPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBox([]float64{1}, []float64{0})
}

func TestBoxUnitRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBox([]float64{-3, 10}, []float64{5, 20})
		x := []float64{-3 + 8*rng.Float64(), 10 + 10*rng.Float64()}
		back := b.FromUnit(b.ToUnit(x))
		return math.Abs(back[0]-x[0]) < 1e-12 && math.Abs(back[1]-x[1]) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoxUnconstrainedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBox([]float64{0, -5}, []float64{1, 5})
		// Interior points only (transform is open-box).
		x := []float64{0.01 + 0.98*rng.Float64(), -4.9 + 9.8*rng.Float64()}
		back := b.FromUnconstrained(b.ToUnconstrained(x))
		return math.Abs(back[0]-x[0]) < 1e-9 && math.Abs(back[1]-x[1]) < 1e-7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoxUnconstrainedStaysInside(t *testing.T) {
	b := NewBox([]float64{0}, []float64{1})
	for _, tv := range []float64{-100, -1, 0, 1, 100} {
		x := b.FromUnconstrained([]float64{tv})
		if x[0] < 0 || x[0] > 1 {
			t.Fatalf("FromUnconstrained(%v) = %v escaped box", tv, x)
		}
	}
	// Boundary points must map to finite values.
	tb := b.ToUnconstrained([]float64{0})
	if math.IsInf(tb[0], 0) || math.IsNaN(tb[0]) {
		t.Fatalf("boundary transform not finite: %v", tb)
	}
}

func TestMinimizeInBoxRespectsBounds(t *testing.T) {
	// Unconstrained minimum at 5, but box caps at 1: solution should push to
	// the upper boundary.
	b := NewBox([]float64{0}, []float64{1})
	f := func(x []float64) float64 { return (x[0] - 5) * (x[0] - 5) }
	r := MinimizeInBox(f, b, []float64{0.5}, LBFGSConfig{MaxIter: 100})
	if r.X[0] < 0.99 || r.X[0] > 1 {
		t.Fatalf("boundary solution %v, want ≈1", r.X)
	}
}

func TestMaximizeMSPFindsGlobalAmongLocals(t *testing.T) {
	// Two-peak function: taller peak at 0.8, shorter at 0.2.
	f := func(x []float64) float64 {
		return math.Exp(-100*(x[0]-0.8)*(x[0]-0.8)) + 0.5*math.Exp(-100*(x[0]-0.2)*(x[0]-0.2))
	}
	b := NewBox([]float64{0}, []float64{1})
	rng := rand.New(rand.NewSource(1))
	x, v := MaximizeMSP(rng, f, b, nil, nil, MSPConfig{Starts: 15})
	if math.Abs(x[0]-0.8) > 0.02 {
		t.Fatalf("MSP found %v (f=%v), want ≈0.8", x, v)
	}
}

func TestMaximizeMSPSeedsNearIncumbent(t *testing.T) {
	// A very narrow peak at the incumbent that uniform sampling is unlikely
	// to hit with few starts; incumbent-local seeding should find it.
	peak := []float64{0.513}
	f := func(x []float64) float64 {
		return math.Exp(-1e6 * (x[0] - peak[0]) * (x[0] - peak[0]))
	}
	b := NewBox([]float64{0}, []float64{1})
	rng := rand.New(rand.NewSource(2))
	_, v := MaximizeMSP(rng, f, b, peak, nil, MSPConfig{Starts: 10, SigmaFrac: 0.001, UseNM: true})
	if v < 0.5 {
		t.Fatalf("incumbent seeding failed to find the narrow peak: f=%v", v)
	}
}

func TestDESphere(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBox([]float64{-5, -5, -5}, []float64{5, 5, 5})
	f := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += (v - 1) * (v - 1)
		}
		return s
	}
	x, v := DE(rng, f, b, DEConfig{MaxGen: 200})
	if v > 1e-3 {
		t.Fatalf("DE failed on sphere: x=%v f=%v", x, v)
	}
}

func TestDEStaysInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := NewBox([]float64{0, 0}, []float64{1, 1})
	seen := 0
	f := func(x []float64) float64 {
		seen++
		if !b.Contains(x) {
			t.Fatalf("DE evaluated out-of-box point %v", x)
		}
		return x[0] + x[1]
	}
	DE(rng, f, b, DEConfig{PopSize: 10, MaxGen: 20})
	if seen == 0 {
		t.Fatal("DE never evaluated")
	}
}

func TestDERespectsEvalBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBox([]float64{0}, []float64{1})
	count := 0
	f := func(x []float64) float64 {
		count++
		return x[0]
	}
	DE(rng, f, b, DEConfig{PopSize: 8, MaxGen: 1000, MaxEvals: 50})
	if count != 50 {
		t.Fatalf("evals = %d, want exactly 50", count)
	}
}

func TestDECallbackSeesEveryEval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := NewBox([]float64{0}, []float64{1})
	direct, viaCB := 0, 0
	f := func(x []float64) float64 {
		direct++
		return x[0] * x[0]
	}
	DE(rng, f, b, DEConfig{PopSize: 8, MaxGen: 5, Callback: func(x []float64, v float64) {
		viaCB++
		if v != x[0]*x[0] {
			t.Fatalf("callback value mismatch")
		}
	}})
	if direct != viaCB {
		t.Fatalf("callback count %d != eval count %d", viaCB, direct)
	}
}

func TestDEInitSeeding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBox([]float64{0, 0}, []float64{1, 1})
	// Seed the exact optimum; DE must return something at least as good.
	opt := []float64{0.25, 0.75}
	f := func(x []float64) float64 {
		return (x[0]-0.25)*(x[0]-0.25) + (x[1]-0.75)*(x[1]-0.75)
	}
	_, v := DE(rng, f, b, DEConfig{PopSize: 8, MaxGen: 3, Init: [][]float64{opt}})
	if v > 1e-12 {
		t.Fatalf("seeded optimum lost: f=%v", v)
	}
}

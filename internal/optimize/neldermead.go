package optimize

import (
	"math"
	"sort"
)

// NelderMeadConfig tunes the derivative-free simplex minimizer. Zero values
// select standard defaults.
type NelderMeadConfig struct {
	MaxIter   int     // default 200·d
	Tol       float64 // simplex function-value spread tolerance (default 1e-9)
	InitScale float64 // initial simplex edge as a fraction of ‖x0‖+1 (default 0.05)
}

// NelderMead minimizes the gradient-free objective f from x0 with the
// standard (α=1, γ=2, ρ=0.5, σ=0.5) downhill-simplex method. It is the
// robust fallback used where L-BFGS's finite-difference gradients are too
// noisy (e.g. Monte-Carlo acquisition surfaces).
func NelderMead(f func([]float64) float64, x0 []float64, cfg NelderMeadConfig) Result {
	n := len(x0)
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 200 * n
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-9
	}
	if cfg.InitScale <= 0 {
		cfg.InitScale = 0.05
	}
	evals := 0
	eval := func(p []float64) float64 {
		evals++
		v := f(p)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{x: append([]float64(nil), x0...), f: eval(x0)}
	scale := cfg.InitScale * (norm(x0) + 1)
	for i := 0; i < n; i++ {
		p := append([]float64(nil), x0...)
		p[i] += scale
		simplex[i+1] = vertex{x: p, f: eval(p)}
	}
	order := func() {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	}
	order()

	centroid := make([]float64, n)
	iters := 0
	for ; iters < cfg.MaxIter; iters++ {
		if simplex[n].f-simplex[0].f < cfg.Tol*(1+math.Abs(simplex[0].f)) {
			break
		}
		// Centroid of all but the worst vertex.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := range centroid {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		worst := simplex[n]
		refl := combine(centroid, worst.x, 2, -1) // c + (c − w)
		fr := eval(refl)
		switch {
		case fr < simplex[0].f:
			// Expansion: c + 2(c − w).
			exp := combine(centroid, worst.x, 3, -2)
			fe := eval(exp)
			if fe < fr {
				simplex[n] = vertex{x: exp, f: fe}
			} else {
				simplex[n] = vertex{x: refl, f: fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{x: refl, f: fr}
		default:
			// Contraction.
			var cx []float64
			if fr < worst.f {
				cx = combine(centroid, refl, 0.5, 0.5) // outside
			} else {
				cx = combine(centroid, worst.x, 0.5, 0.5) // inside
			}
			fc := eval(cx)
			if fc < math.Min(fr, worst.f) {
				simplex[n] = vertex{x: cx, f: fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					simplex[i].x = combine(simplex[0].x, simplex[i].x, 0.5, 0.5)
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
		order()
	}
	return Result{
		X:         simplex[0].x,
		F:         simplex[0].f,
		Iters:     iters,
		Evals:     evals,
		Converged: iters < cfg.MaxIter,
	}
}

// combine returns a·p + b·q element-wise as a new slice.
func combine(p, q []float64, a, b float64) []float64 {
	out := make([]float64, len(p))
	for i := range p {
		out[i] = a*p[i] + b*q[i]
	}
	return out
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

package optimize

import (
	"fmt"
	"math"
)

// Box is an axis-aligned feasible region lo ≤ x ≤ hi.
type Box struct {
	Lo, Hi []float64
}

// NewBox validates and returns a box. It panics on inconsistent bounds since
// those always indicate a programming error in problem definitions.
func NewBox(lo, hi []float64) Box {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("optimize: box bounds length mismatch %d vs %d", len(lo), len(hi)))
	}
	for i := range lo {
		if !(lo[i] < hi[i]) {
			panic(fmt.Sprintf("optimize: box bound %d inverted: [%v, %v]", i, lo[i], hi[i]))
		}
	}
	return Box{Lo: append([]float64(nil), lo...), Hi: append([]float64(nil), hi...)}
}

// Dim returns the box dimensionality.
func (b Box) Dim() int { return len(b.Lo) }

// Contains reports whether x lies inside the box (inclusive).
func (b Box) Contains(x []float64) bool {
	for i := range x {
		if x[i] < b.Lo[i] || x[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Clip returns x clamped to the box as a new slice.
func (b Box) Clip(x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		v := x[i]
		if v < b.Lo[i] {
			v = b.Lo[i]
		} else if v > b.Hi[i] {
			v = b.Hi[i]
		}
		out[i] = v
	}
	return out
}

// Center returns the box midpoint.
func (b Box) Center() []float64 {
	c := make([]float64, b.Dim())
	for i := range c {
		c[i] = 0.5 * (b.Lo[i] + b.Hi[i])
	}
	return c
}

// ToUnit maps x ∈ [lo, hi] to u ∈ [0, 1] element-wise.
func (b Box) ToUnit(x []float64) []float64 {
	u := make([]float64, len(x))
	for i := range x {
		u[i] = (x[i] - b.Lo[i]) / (b.Hi[i] - b.Lo[i])
	}
	return u
}

// FromUnit maps u ∈ [0, 1] back to the box.
func (b Box) FromUnit(u []float64) []float64 {
	x := make([]float64, len(u))
	for i := range u {
		x[i] = b.Lo[i] + u[i]*(b.Hi[i]-b.Lo[i])
	}
	return x
}

// logitEps keeps the logit transform away from the box boundary where its
// Jacobian vanishes and gradients become useless.
const logitEps = 1e-9

// ToUnconstrained maps an interior box point to ℝ^d via the logit transform
// t = log((x−lo)/(hi−x)). Boundary points are nudged inside by logitEps of
// the box width.
func (b Box) ToUnconstrained(x []float64) []float64 {
	t := make([]float64, len(x))
	for i := range x {
		w := b.Hi[i] - b.Lo[i]
		u := (x[i] - b.Lo[i]) / w
		if u < logitEps {
			u = logitEps
		} else if u > 1-logitEps {
			u = 1 - logitEps
		}
		t[i] = math.Log(u / (1 - u))
	}
	return t
}

// FromUnconstrained maps t ∈ ℝ^d back into the open box via the sigmoid.
func (b Box) FromUnconstrained(t []float64) []float64 {
	x := make([]float64, len(t))
	for i := range t {
		u := sigmoid(t[i])
		x[i] = b.Lo[i] + u*(b.Hi[i]-b.Lo[i])
	}
	return x
}

// UnconstrainedJacobian returns dx_i/dt_i for the sigmoid reparameterization
// at unconstrained point t.
func (b Box) UnconstrainedJacobian(t []float64) []float64 {
	j := make([]float64, len(t))
	for i := range t {
		u := sigmoid(t[i])
		j[i] = u * (1 - u) * (b.Hi[i] - b.Lo[i])
	}
	return j
}

func sigmoid(t float64) float64 {
	if t >= 0 {
		return 1 / (1 + math.Exp(-t))
	}
	e := math.Exp(t)
	return e / (1 + e)
}

// MinimizeInBox minimizes a gradient-free objective inside the box starting
// from x0 by running L-BFGS in the logit-reparameterized space with numeric
// gradients. It returns the best point in original coordinates.
func MinimizeInBox(f func([]float64) float64, b Box, x0 []float64, cfg LBFGSConfig) Result {
	inner := NumericalGradient(func(t []float64) float64 {
		return f(b.FromUnconstrained(t))
	}, 1e-6)
	r := LBFGS(inner, b.ToUnconstrained(x0), cfg)
	if r.X != nil {
		r.X = b.FromUnconstrained(r.X)
	} else {
		r.X = append([]float64(nil), x0...)
		r.F = f(x0)
	}
	return r
}

// Package shard is the placement layer of the horizontally sharded service
// tier: a seeded consistent-hash ring decides which replica *should* serve a
// session, and storage-backed ownership leases guarantee that exactly one
// replica *does* serve it at a time — even while replicas die, restart, and
// the ring view changes under load.
//
// The two mechanisms are deliberately independent. The ring is a routing
// hint: deterministic, stateless, recomputed by every gateway from its
// healthy-replica view. The lease is the safety interlock: persisted through
// the same crash-consistent storage engine as the checkpoints themselves
// (internal/storage), claimed on first touch, renewed while serving, fenced
// on every checkpoint write, and expiring on its own when the owner dies —
// which is what lets ownership move to a new replica without losing a single
// acknowledged observation (the checkpoint-is-ground-truth invariant of
// DESIGN.md §11 makes the handoff a restore, not a migration).
package shard

import (
	"fmt"
	"sort"
	"sync"
)

// RingConfig tunes a Ring. Zero values select defaults.
type RingConfig struct {
	// VNodes is the number of virtual nodes per replica (default 64). More
	// vnodes smooth the load split at the cost of a larger table.
	VNodes int
	// Seed perturbs the hash so placement is deterministic per deployment
	// but not exploitable/predictable across unrelated ones. Every gateway
	// and replica of one deployment must share it.
	Seed uint64
}

func (c *RingConfig) defaults() {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
}

// Ring is a consistent-hash ring over replica names with virtual nodes.
// Placement is a pure function of (seed, vnodes, replica set, key): replicas
// may be added in any order, on any machine, and every holder of the same
// configuration computes the identical owner for every session — the
// property the gateway relies on to route without coordination.
type Ring struct {
	cfg RingConfig

	mu       sync.RWMutex
	points   []ringPoint
	replicas []string // sorted
}

type ringPoint struct {
	hash    uint64
	replica string
}

// NewRing builds an empty ring; call SetReplicas to populate it.
func NewRing(cfg RingConfig) *Ring {
	cfg.defaults()
	return &Ring{cfg: cfg}
}

// fnv64a with the ring seed folded into the offset basis, so two deployments
// with different seeds place the same session differently. The raw FNV value
// is passed through a 64-bit avalanche finalizer: without it, keys differing
// only in their trailing bytes (sequential session IDs like "s-00017") stay
// within ~prime64·255 ≈ 2⁴⁸ of each other — one sliver of the ring — and all
// hash to the same replica.
func (r *Ring) hash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	seed := r.cfg.Seed
	for i := 0; i < 8; i++ {
		h ^= seed & 0xff
		h *= prime64
		seed >>= 8
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// SetReplicas rebuilds the ring over the given replica set. The input is
// copied, deduplicated and sorted, so the resulting placement is independent
// of call order and duplicates.
func (r *Ring) SetReplicas(replicas []string) {
	seen := make(map[string]bool, len(replicas))
	uniq := make([]string, 0, len(replicas))
	for _, rep := range replicas {
		if rep == "" || seen[rep] {
			continue
		}
		seen[rep] = true
		uniq = append(uniq, rep)
	}
	sort.Strings(uniq)
	points := make([]ringPoint, 0, len(uniq)*r.cfg.VNodes)
	for _, rep := range uniq {
		for v := 0; v < r.cfg.VNodes; v++ {
			points = append(points, ringPoint{r.hash(fmt.Sprintf("%s#%d", rep, v)), rep})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].replica < points[j].replica // total order under collisions
	})
	r.mu.Lock()
	r.points = points
	r.replicas = uniq
	r.mu.Unlock()
}

// Replicas returns the current replica set, sorted.
func (r *Ring) Replicas() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.replicas...)
}

// Size returns the number of replicas on the ring.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.replicas)
}

// Owner returns the replica the key hashes to (false on an empty ring).
func (r *Ring) Owner(key string) (string, bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Owners returns up to n distinct replicas in ring order starting at the
// key's position — the preference list for failover routing: Owners(k, n)[0]
// is the primary placement, the rest are the successors a gateway tries when
// the primary is down.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	h := r.hash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

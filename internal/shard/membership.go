// Replica membership: each replica heartbeats a small record into the shared
// store so that any replica (and its operators, via /v1/healthz) can see the
// deployment's live membership without talking to the others. This is a
// reporting surface, not a coordination mechanism — routing is the gateway's
// job (health checks + ring) and mutual exclusion is the leases'.
package shard

import (
	"encoding/json"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/storage"
)

// memberRecord is the stored heartbeat of one replica.
type memberRecord struct {
	Replica       string `json:"replica"`
	ExpiresUnixMs int64  `json:"expires_unix_ms"`
}

// Membership periodically announces this replica into the store until
// closed. Construct with StartMembership.
type Membership struct {
	cfg   LeaseConfig
	every time.Duration
	stop  chan struct{}
	done  chan struct{}

	stopOnce sync.Once
	haltMu   sync.Mutex
	halted   bool
}

// StartMembership begins heartbeating the replica's membership record every
// `every` (default TTL/2), with records expiring after cfg.TTL. The first
// heartbeat is written synchronously so the replica is visible as soon as
// this returns.
func StartMembership(cfg LeaseConfig, every time.Duration) (*Membership, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if every <= 0 {
		every = cfg.TTL / 2
	}
	m := &Membership{cfg: cfg, every: every, stop: make(chan struct{}), done: make(chan struct{})}
	m.beat()
	go m.run()
	return m, nil
}

func (m *Membership) beat() {
	rec := memberRecord{
		Replica:       m.cfg.Replica,
		ExpiresUnixMs: m.cfg.Now().Add(m.cfg.TTL).UnixMilli(),
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	// Best-effort by design: a failed heartbeat only ages this replica out
	// of the membership view; sessions it owns are protected by their
	// leases, not by membership.
	_ = m.cfg.Store.Put(storage.KindReplica, m.cfg.Replica, data)
}

func (m *Membership) run() {
	defer close(m.done)
	t := time.NewTicker(m.every)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.beat()
		}
	}
}

// Close stops heartbeating and expires the record so the replica leaves the
// membership view immediately on graceful shutdown.
func (m *Membership) Close() {
	if !m.halt() {
		return
	}
	data, err := json.Marshal(memberRecord{Replica: m.cfg.Replica, ExpiresUnixMs: 0})
	if err == nil {
		_ = m.cfg.Store.Put(storage.KindReplica, m.cfg.Replica, data)
	}
}

// Abandon stops heartbeating WITHOUT expiring the record — the simulated-
// crash path (server.Kill): a SIGKILLed process writes no goodbye, so the
// replica must age out of the membership view by TTL expiry exactly as a
// real crash would. Close after Abandon is a no-op.
func (m *Membership) Abandon() { m.halt() }

// halt stops the heartbeat loop once; false if it was already stopped.
func (m *Membership) halt() bool {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
	m.haltMu.Lock()
	defer m.haltMu.Unlock()
	if m.halted {
		return false
	}
	m.halted = true
	return true
}

// LiveReplicas lists the replicas whose membership heartbeat has not
// expired, sorted — the ring-membership view /v1/healthz reports.
func LiveReplicas(store storage.Store, now time.Time) ([]string, error) {
	ids, err := store.List(storage.KindReplica)
	if err != nil {
		return nil, err
	}
	var live []string
	for _, id := range ids {
		data, err := store.Get(storage.KindReplica, id)
		if errors.Is(err, storage.ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		var rec memberRecord
		if json.Unmarshal(data, &rec) != nil {
			continue
		}
		if now.Before(time.UnixMilli(rec.ExpiresUnixMs)) {
			live = append(live, rec.Replica)
		}
	}
	sort.Strings(live)
	return live, nil
}

package shard

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/storage"
)

func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing(RingConfig{VNodes: 32, Seed: 7})
	a.SetReplicas([]string{"r1", "r2", "r3"})
	b := NewRing(RingConfig{VNodes: 32, Seed: 7})
	b.SetReplicas([]string{"r3", "r1", "r2", "r1"}) // order and duplicates must not matter
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("s%d", i)
		ao, aok := a.Owner(key)
		bo, bok := b.Owner(key)
		if !aok || !bok || ao != bo {
			t.Fatalf("placement differs for %s: %q vs %q", key, ao, bo)
		}
	}
}

func TestRingSeedChangesPlacement(t *testing.T) {
	a := NewRing(RingConfig{Seed: 1})
	a.SetReplicas([]string{"r1", "r2", "r3"})
	b := NewRing(RingConfig{Seed: 2})
	b.SetReplicas([]string{"r1", "r2", "r3"})
	moved := 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("s%d", i)
		ao, _ := a.Owner(key)
		bo, _ := b.Owner(key)
		if ao != bo {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("different seeds produced identical placement for every key")
	}
}

// TestRingBalance checks that virtual nodes spread sessions reasonably: with
// 3 replicas no replica should own more than twice its fair share.
func TestRingBalance(t *testing.T) {
	r := NewRing(RingConfig{VNodes: 64, Seed: 42})
	r.SetReplicas([]string{"r1", "r2", "r3"})
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		o, ok := r.Owner(fmt.Sprintf("session-%d", i))
		if !ok {
			t.Fatal("empty ring")
		}
		counts[o]++
	}
	fair := float64(n) / 3
	for rep, c := range counts {
		if math.Abs(float64(c)-fair) > fair {
			t.Fatalf("replica %s owns %d of %d sessions (fair share %.0f)", rep, c, n, fair)
		}
	}
}

// TestRingSequentialKeysSpread is the regression test for the avalanche
// finalizer: zero-padded sequential IDs (exactly what a load harness or any
// batch creator mints) differ only in trailing bytes, which raw FNV-1a maps
// into one sliver of the ring — every key on one replica. Each replica must
// own at least one of a small sequential batch's worth of fair share.
func TestRingSequentialKeysSpread(t *testing.T) {
	for _, seed := range []uint64{0, 7, 42, 99} {
		r := NewRing(RingConfig{VNodes: 64, Seed: seed})
		r.SetReplicas([]string{"ra", "rb", "rc"})
		counts := map[string]int{}
		for i := 0; i < 60; i++ {
			o, _ := r.Owner(fmt.Sprintf("lg-%05d", i))
			counts[o]++
		}
		if len(counts) != 3 {
			t.Fatalf("seed %d: 60 sequential keys landed on only %d replica(s): %v", seed, len(counts), counts)
		}
	}
}

// TestRingMinimalMovement checks the consistent-hashing property: removing
// one of three replicas must only move the sessions that replica owned.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(RingConfig{VNodes: 64, Seed: 42})
	r.SetReplicas([]string{"r1", "r2", "r3"})
	before := map[string]string{}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("s%d", i)
		before[key], _ = r.Owner(key)
	}
	r.SetReplicas([]string{"r1", "r2"})
	for key, was := range before {
		now, _ := r.Owner(key)
		if was != "r3" && now != was {
			t.Fatalf("session %s moved %s→%s although its owner survived", key, was, now)
		}
		if was == "r3" && now == "r3" {
			t.Fatalf("session %s still placed on removed replica", key)
		}
	}
}

func TestRingOwnersPreferenceList(t *testing.T) {
	r := NewRing(RingConfig{VNodes: 16, Seed: 5})
	r.SetReplicas([]string{"r1", "r2", "r3"})
	owners := r.Owners("some-session", 3)
	if len(owners) != 3 {
		t.Fatalf("want 3 distinct owners, got %v", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate replica in preference list: %v", owners)
		}
		seen[o] = true
	}
	if first, _ := r.Owner("some-session"); first != owners[0] {
		t.Fatalf("Owner %q != Owners[0] %q", first, owners[0])
	}
}

// fakeClock is a controllable time source for lease tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newLeases(t *testing.T, store storage.Store, replica string, clk *fakeClock) *Leases {
	t.Helper()
	l, err := NewLeases(LeaseConfig{Store: store, Replica: replica, TTL: time.Second, Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLeaseClaimRenewExpireTakeover(t *testing.T) {
	store := storage.NewMem(storage.MemConfig{})
	clk := &fakeClock{t: time.UnixMilli(1_000_000)}
	a := newLeases(t, store, "ra", clk)
	b := newLeases(t, store, "rb", clk)

	// a claims fresh.
	info, err := a.Claim("s1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Owner != "ra" || info.Epoch != 1 {
		t.Fatalf("claim: %+v", info)
	}
	// b cannot claim a live lease, and learns who holds it.
	_, err = b.Claim("s1")
	var wo *WrongOwnerError
	if !errors.As(err, &wo) || wo.Owner != "ra" {
		t.Fatalf("want WrongOwnerError{ra}, got %v", err)
	}
	if !errors.Is(err, ErrNotOwner) {
		t.Fatal("WrongOwnerError must unwrap to ErrNotOwner")
	}
	// a renews within the TTL: epoch stable, expiry pushed.
	clk.advance(600 * time.Millisecond)
	renewed, err := a.Renew("s1", info.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if renewed.Epoch != info.Epoch || !renewed.Expires().After(info.Expires()) {
		t.Fatalf("renew: %+v vs %+v", renewed, info)
	}
	if err := a.Verify("s1", info.Epoch); err != nil {
		t.Fatal(err)
	}
	// a dies (stops renewing); after expiry b takes over under a new epoch.
	clk.advance(2 * time.Second)
	if err := a.Verify("s1", info.Epoch); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("expired lease must fail Verify, got %v", err)
	}
	got, err := b.Claim("s1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner != "rb" || got.Epoch != info.Epoch+1 {
		t.Fatalf("takeover: %+v", got)
	}
	// The fence: a's stale epoch must never verify again.
	if err := a.Verify("s1", info.Epoch); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("stale epoch verified: %v", err)
	}
	// And a re-claim by a now fails while b is live.
	if _, err := a.Claim("s1"); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("stale owner reclaimed a live lease: %v", err)
	}
}

func TestLeaseReleaseHandsOverImmediately(t *testing.T) {
	store := storage.NewMem(storage.MemConfig{})
	clk := &fakeClock{t: time.UnixMilli(1_000_000)}
	a := newLeases(t, store, "ra", clk)
	b := newLeases(t, store, "rb", clk)
	info, err := a.Claim("s1")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Release("s1", info.Epoch); err != nil {
		t.Fatal(err)
	}
	// No clock advance: the release alone lets b in.
	got, err := b.Claim("s1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner != "rb" {
		t.Fatalf("claim after release: %+v", got)
	}
	// Releasing a lease that moved on is a no-op.
	if err := a.Release("s1", info.Epoch); err != nil {
		t.Fatal(err)
	}
	if cur, ok, _ := b.Peek("s1"); !ok || cur.Owner != "rb" {
		t.Fatalf("stale release damaged the live lease: %+v ok=%v", cur, ok)
	}
}

func TestLeaseSelfRenewalAfterExpiryBumpsEpoch(t *testing.T) {
	store := storage.NewMem(storage.MemConfig{})
	clk := &fakeClock{t: time.UnixMilli(1_000_000)}
	a := newLeases(t, store, "ra", clk)
	info, err := a.Claim("s1")
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(3 * time.Second) // lease lapses while the session idles
	got, err := a.Claim("s1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != info.Epoch+1 {
		t.Fatalf("re-claim after lapse kept epoch %d", got.Epoch)
	}
}

func TestMembershipView(t *testing.T) {
	store := storage.NewMem(storage.MemConfig{})
	clk := &fakeClock{t: time.UnixMilli(1_000_000)}
	cfg := func(rep string) LeaseConfig {
		return LeaseConfig{Store: store, Replica: rep, TTL: time.Second, Now: clk.now}
	}
	m1, err := StartMembership(cfg("r1"), time.Hour) // heartbeat loop idle; first beat is synchronous
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	m2, err := StartMembership(cfg("r2"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	live, err := LiveReplicas(store, clk.now())
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 2 || live[0] != "r1" || live[1] != "r2" {
		t.Fatalf("live = %v", live)
	}
	// Graceful close leaves the view immediately…
	m2.Close()
	live, _ = LiveReplicas(store, clk.now())
	if len(live) != 1 || live[0] != "r1" {
		t.Fatalf("after close live = %v", live)
	}
	// …and a crashed replica ages out by expiry.
	clk.advance(2 * time.Second)
	live, _ = LiveReplicas(store, clk.now())
	if len(live) != 0 {
		t.Fatalf("after expiry live = %v", live)
	}
}

// Session-ownership leases: the interlock that makes "exactly one replica
// serves a session at a time" true even though the ring view of different
// gateways can momentarily disagree.
//
// # State machine
//
//	unowned ──Claim──▶ owned(replica, epoch) ──Renew──▶ owned (expiry pushed)
//	   ▲                      │         │
//	   │◀──────Release────────┘         │ owner dies / stops renewing
//	   └────────────── expiry ──────────┘  (next Claim bumps the epoch)
//
// A lease is a record in the shared storage engine: {owner, epoch, expiry}.
// Claim writes a fresh record only over an absent or expired one and then
// reads its own write back — the storage engine serializes Puts, so of two
// racing claimants the one whose record survives the read-back owns the
// session; the loser sees the winner's record and backs off. The epoch
// increments on every ownership change and fences stale writers: a replica
// must Verify (re-read) its lease immediately before persisting a checkpoint,
// so a paused or partitioned ex-owner that wakes up after its lease expired
// finds a younger epoch and refuses the write instead of clobbering the new
// owner's state.
//
// The guarantee this gives the service tier: an observation is acknowledged
// only after its checkpoint Put succeeded, and a checkpoint Put succeeds only
// under a live, verified lease — so the replica that next claims the session
// restores a checkpoint containing every acknowledged observation. Lease
// expiry costs availability (a killed replica's sessions stall until the TTL
// lapses), never consistency.
//
// Clock assumption: replicas sharing a store must have clocks synchronized
// well within the lease TTL (the usual lease-system requirement). The
// default TTL of seconds tolerates ordinary NTP-grade skew.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/storage"
)

// ErrNotOwner reports that the caller does not (or no longer does) hold the
// session's ownership lease. Classify with errors.Is; errors.As against
// *WrongOwnerError recovers the actual owner for routing hints.
var ErrNotOwner = errors.New("shard: not the session owner")

// WrongOwnerError carries who does own the session and until when — the
// server turns it into the wire-level wrong_owner reply the gateway uses to
// re-route, with the remaining lease time as the retry hint.
type WrongOwnerError struct {
	SessionID string
	Owner     string
	Epoch     uint64
	Expires   time.Time
}

func (e *WrongOwnerError) Error() string {
	return fmt.Sprintf("shard: session %s owned by replica %s (epoch %d)", e.SessionID, e.Owner, e.Epoch)
}

func (e *WrongOwnerError) Unwrap() error { return ErrNotOwner }

// OwnerInfo is the decoded ownership record of one session.
type OwnerInfo struct {
	Owner string `json:"owner"`
	Epoch uint64 `json:"epoch"`
	// ExpiresUnixMs is the wall-clock lease expiry.
	ExpiresUnixMs int64 `json:"expires_unix_ms"`
}

// Expires returns the expiry as a time.Time.
func (o OwnerInfo) Expires() time.Time { return time.UnixMilli(o.ExpiresUnixMs) }

// LeaseConfig tunes a lease manager.
type LeaseConfig struct {
	// Store is the shared storage engine ownership records live in
	// (required; must be the same store every replica of the deployment
	// persists its sessions through).
	Store storage.Store
	// Replica is this replica's identity (required).
	Replica string
	// TTL is how long a claim or renewal holds without further renewals
	// (default 5s). Shorter TTLs migrate sessions off dead replicas faster
	// at the cost of more renewal writes.
	TTL time.Duration
	// Now is the clock (default time.Now; tests inject a fake).
	Now func() time.Time
}

func (c *LeaseConfig) defaults() error {
	if c.Store == nil {
		return errors.New("shard: LeaseConfig.Store is required")
	}
	if c.Replica == "" {
		return errors.New("shard: LeaseConfig.Replica is required")
	}
	if c.TTL <= 0 {
		c.TTL = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return nil
}

// Leases manages this replica's session-ownership leases over the shared
// store. It is stateless (safe for concurrent use): every operation reads
// and writes the storage record, which is the single source of truth.
type Leases struct {
	cfg LeaseConfig
}

// NewLeases builds a lease manager.
func NewLeases(cfg LeaseConfig) (*Leases, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	return &Leases{cfg: cfg}, nil
}

// TTL returns the configured lease duration.
func (l *Leases) TTL() time.Duration { return l.cfg.TTL }

// Replica returns the identity the manager claims under.
func (l *Leases) Replica() string { return l.cfg.Replica }

func (l *Leases) load(sessionID string) (OwnerInfo, bool, error) {
	data, err := l.cfg.Store.Get(storage.KindOwner, sessionID)
	switch {
	case errors.Is(err, storage.ErrNotFound):
		return OwnerInfo{}, false, nil
	case err != nil:
		return OwnerInfo{}, false, fmt.Errorf("shard: read lease %s: %w", sessionID, err)
	}
	var info OwnerInfo
	if err := json.Unmarshal(data, &info); err != nil {
		// A corrupt lease record is treated as absent: the storage engine
		// already quarantined anything unverifiable, and ownership is
		// reconstructible (the next claimant simply starts a fresh epoch —
		// checkpoints, not leases, are ground truth).
		return OwnerInfo{}, false, nil
	}
	return info, true, nil
}

func (l *Leases) store(sessionID string, info OwnerInfo) error {
	data, err := json.Marshal(info)
	if err != nil {
		return err
	}
	if err := l.cfg.Store.Put(storage.KindOwner, sessionID, data); err != nil {
		return fmt.Errorf("shard: write lease %s: %w", sessionID, err)
	}
	return nil
}

// Claim acquires (or re-acquires/renews) ownership of the session for this
// replica. A live lease held by another replica fails with *WrongOwnerError;
// an absent or expired lease is claimed under a bumped epoch, and the write
// is read back to settle races through the store's Put serialization.
func (l *Leases) Claim(sessionID string) (OwnerInfo, error) {
	now := l.cfg.Now()
	cur, ok, err := l.load(sessionID)
	if err != nil {
		return OwnerInfo{}, err
	}
	if ok && cur.Owner != l.cfg.Replica && now.Before(cur.Expires()) {
		return OwnerInfo{}, &WrongOwnerError{SessionID: sessionID, Owner: cur.Owner, Epoch: cur.Epoch, Expires: cur.Expires()}
	}
	next := OwnerInfo{
		Owner:         l.cfg.Replica,
		Epoch:         cur.Epoch + 1,
		ExpiresUnixMs: now.Add(l.cfg.TTL).UnixMilli(),
	}
	if ok && cur.Owner == l.cfg.Replica && now.Before(cur.Expires()) {
		// Renewal of our own live lease keeps the epoch: nothing changed
		// hands, and stable epochs keep the fence checks of in-flight
		// checkpoint writes valid.
		next.Epoch = cur.Epoch
	}
	if err := l.store(sessionID, next); err != nil {
		return OwnerInfo{}, err
	}
	// Read-back: of two racing claimants the store kept one record as the
	// newest generation; the one that reads its own (owner, epoch) back won.
	got, ok, err := l.load(sessionID)
	if err != nil {
		return OwnerInfo{}, err
	}
	if !ok || got.Owner != l.cfg.Replica || got.Epoch != next.Epoch {
		return OwnerInfo{}, &WrongOwnerError{SessionID: sessionID, Owner: got.Owner, Epoch: got.Epoch, Expires: got.Expires()}
	}
	return got, nil
}

// Renew extends a lease this replica holds under the given epoch. A lease
// that moved on (different owner or epoch) fails with ErrNotOwner — the
// caller must drop the session without persisting it.
func (l *Leases) Renew(sessionID string, epoch uint64) (OwnerInfo, error) {
	now := l.cfg.Now()
	cur, ok, err := l.load(sessionID)
	if err != nil {
		return OwnerInfo{}, err
	}
	if !ok || cur.Owner != l.cfg.Replica || cur.Epoch != epoch {
		return OwnerInfo{}, &WrongOwnerError{SessionID: sessionID, Owner: cur.Owner, Epoch: cur.Epoch, Expires: cur.Expires()}
	}
	if !now.Before(cur.Expires()) {
		// Expired but unclaimed: safe to re-claim, but under a new epoch —
		// another replica may have served (and released) it meanwhile.
		return l.Claim(sessionID)
	}
	cur.ExpiresUnixMs = now.Add(l.cfg.TTL).UnixMilli()
	if err := l.store(sessionID, cur); err != nil {
		return OwnerInfo{}, err
	}
	return cur, nil
}

// Verify re-reads the lease and confirms this replica still owns the session
// under the given epoch — the fence called immediately before every
// checkpoint write. It demands TTL/4 of slack before expiry, not mere
// liveness: a successor can only claim after expiry, so a writer that passed
// the fence must stall longer than that margin between check and write
// before its Put could land on a taken-over session. ErrNotOwner (possibly
// as *WrongOwnerError) means the lease moved: the write must not happen.
func (l *Leases) Verify(sessionID string, epoch uint64) error {
	cur, ok, err := l.load(sessionID)
	if err != nil {
		return err
	}
	if !ok || cur.Owner != l.cfg.Replica || cur.Epoch != epoch {
		return &WrongOwnerError{SessionID: sessionID, Owner: cur.Owner, Epoch: cur.Epoch, Expires: cur.Expires()}
	}
	if !l.cfg.Now().Add(l.cfg.TTL / 4).Before(cur.Expires()) {
		return &WrongOwnerError{SessionID: sessionID, Owner: cur.Owner, Epoch: cur.Epoch, Expires: cur.Expires()}
	}
	return nil
}

// Release voluntarily surrenders a lease held under the given epoch by
// writing it back expired, so a successor claims it immediately instead of
// waiting out the TTL — the graceful-shutdown path. Releasing a lease that
// already moved on is a no-op.
func (l *Leases) Release(sessionID string, epoch uint64) error {
	cur, ok, err := l.load(sessionID)
	if err != nil {
		return err
	}
	if !ok || cur.Owner != l.cfg.Replica || cur.Epoch != epoch {
		return nil
	}
	cur.ExpiresUnixMs = 0
	return l.store(sessionID, cur)
}

// Peek reports the session's current ownership without touching it.
func (l *Leases) Peek(sessionID string) (OwnerInfo, bool, error) {
	return l.load(sessionID)
}

package storage

import (
	"fmt"
	"strconv"
	"strings"
)

// ChaosEnv is the environment variable daemons consult to wrap their store
// with fault injection — the knob that lets the torture runner vary chaos
// without code changes (see cmd/mfbod, cmd/mfbo-chaos).
const ChaosEnv = "MFBO_STORAGE_CHAOS"

// ParseChaosEnv parses the "seed:rate" syntax of the MFBO_STORAGE_CHAOS
// knob into a ChaosConfig: the seed fixes the injection sequence and the
// rate (a probability in [0, 1]) applies uniformly to write errors, torn
// writes, read errors, and latency spikes. Fsync lies are never enabled
// from the environment — they deliberately break the durability contract
// and must be opted into in code. An empty value returns ok=false: chaos
// stays off.
func ParseChaosEnv(v string) (cfg ChaosConfig, ok bool, err error) {
	v = strings.TrimSpace(v)
	if v == "" {
		return ChaosConfig{}, false, nil
	}
	seedStr, rateStr, found := strings.Cut(v, ":")
	if !found {
		return ChaosConfig{}, false, fmt.Errorf("storage: %s=%q: want \"seed:rate\"", ChaosEnv, v)
	}
	seed, err := strconv.ParseInt(strings.TrimSpace(seedStr), 10, 64)
	if err != nil {
		return ChaosConfig{}, false, fmt.Errorf("storage: %s=%q: bad seed: %w", ChaosEnv, v, err)
	}
	rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
	if err != nil {
		return ChaosConfig{}, false, fmt.Errorf("storage: %s=%q: bad rate: %w", ChaosEnv, v, err)
	}
	if rate < 0 || rate > 1 {
		return ChaosConfig{}, false, fmt.Errorf("storage: %s=%q: rate outside [0, 1]", ChaosEnv, v)
	}
	return ChaosConfig{
		Seed:          seed,
		WriteErrRate:  rate,
		TornWriteRate: rate,
		ReadErrRate:   rate,
		LatencyRate:   rate,
	}, true, nil
}

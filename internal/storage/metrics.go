package storage

import (
	"time"

	"repro/internal/telemetry"
)

// metrics caches the mfbo_storage_* handles. A nil *metrics (telemetry off)
// makes every record method a no-op.
type metrics struct {
	writes      map[Kind]*telemetry.Counter
	reads       map[Kind]*telemetry.Counter
	writeErrs   *telemetry.Counter
	readErrs    *telemetry.Counter
	verifyFails *telemetry.Counter
	rollbacks   map[Kind]*telemetry.Counter
	quarantines map[Kind]*telemetry.Counter
	fsync       *telemetry.Histogram
}

// newMetrics registers the storage metric family on reg (nil-safe).
func newMetrics(rec *telemetry.Recorder) *metrics {
	reg := rec.Registry()
	if reg == nil {
		return nil
	}
	m := &metrics{
		writes:      make(map[Kind]*telemetry.Counter, len(kinds)),
		reads:       make(map[Kind]*telemetry.Counter, len(kinds)),
		rollbacks:   make(map[Kind]*telemetry.Counter, len(kinds)),
		quarantines: make(map[Kind]*telemetry.Counter, len(kinds)),
		writeErrs:   reg.Counter("mfbo_storage_write_errors_total", "storage writes that failed"),
		readErrs:    reg.Counter("mfbo_storage_read_errors_total", "storage reads that failed (I/O errors, not corruption)"),
		verifyFails: reg.Counter("mfbo_storage_verify_failures_total", "stored generations that failed envelope verification"),
		fsync:       reg.Histogram("mfbo_storage_fsync_seconds", "fsync latency of durable record writes", nil),
	}
	for _, k := range kinds {
		m.writes[k] = reg.Counter("mfbo_storage_writes_total", "durable record writes by kind", "kind", string(k))
		m.reads[k] = reg.Counter("mfbo_storage_reads_total", "record reads by kind", "kind", string(k))
		m.rollbacks[k] = reg.Counter("mfbo_storage_rollbacks_total", "reads recovered by rolling back past a corrupt head, by kind", "kind", string(k))
		m.quarantines[k] = reg.Counter("mfbo_storage_quarantines_total", "corrupt generations quarantined, by kind", "kind", string(k))
	}
	return m
}

func (m *metrics) write(k Kind) {
	if m != nil {
		m.writes[k].Inc()
	}
}

func (m *metrics) read(k Kind) {
	if m != nil {
		m.reads[k].Inc()
	}
}

func (m *metrics) writeErr() {
	if m != nil {
		m.writeErrs.Inc()
	}
}

func (m *metrics) readErr() {
	if m != nil {
		m.readErrs.Inc()
	}
}

func (m *metrics) verifyFail() {
	if m != nil {
		m.verifyFails.Inc()
	}
}

func (m *metrics) rollback(k Kind) {
	if m != nil {
		m.rollbacks[k].Inc()
	}
}

func (m *metrics) quarantine(k Kind) {
	if m != nil {
		m.quarantines[k].Inc()
	}
}

func (m *metrics) fsyncDur(d time.Duration) {
	if m != nil {
		m.fsync.Observe(d.Seconds())
	}
}

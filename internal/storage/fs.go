package storage

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// FSConfig tunes the hardened filesystem backend.
type FSConfig struct {
	// Dir is the root directory (required; created if missing).
	Dir string
	// Generations is how many generations of each record to keep (default
	// 3). A larger K tolerates longer runs of failed writes before recovery
	// depth is exhausted, at the cost of K files per record.
	Generations int
	// Telemetry, when it carries a registry, registers the mfbo_storage_*
	// metrics (write/read/verify counters, rollback and quarantine counts,
	// fsync latency histogram).
	Telemetry *telemetry.Recorder
}

// FS is the hardened filesystem Store: each Put writes a checksummed,
// length-prefixed envelope to a temp file, fsyncs it, renames it over the
// new generation name and fsyncs the directory — the same discipline as
// core.SaveCheckpoint, plus generational rollback. Layout under Dir:
//
//	<id>.<kind>.g<%012d>.mfbo   record generations (envelope-framed)
//	<id>.ckpt.json              legacy checkpoint (read-only fallback)
//	<id>.session.json           legacy manifest (read-only fallback)
//	corrupt/                    quarantined generations, never deleted
//
// Operations on distinct records run concurrently (striped locks); two
// writers of the same record serialize.
type FS struct {
	dir  string
	keep int
	met  *metrics

	stripes [16]sync.Mutex

	mu   sync.Mutex
	gens map[string]uint64 // record key → next generation number
}

var (
	_ Store     = (*FS)(nil)
	_ Tearer    = (*FS)(nil)
	_ Corrupter = (*FS)(nil)
)

// NewFS builds the filesystem store rooted at cfg.Dir.
func NewFS(cfg FSConfig) (*FS, error) {
	if cfg.Dir == "" {
		return nil, errors.New("storage: FSConfig.Dir is required")
	}
	if cfg.Generations <= 0 {
		cfg.Generations = 3
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: fs root: %w", err)
	}
	return &FS{
		dir:  cfg.Dir,
		keep: cfg.Generations,
		met:  newMetrics(cfg.Telemetry),
		gens: make(map[string]uint64),
	}, nil
}

// Dir returns the store's root directory.
func (s *FS) Dir() string { return s.dir }

func recordKey(kind Kind, id string) string { return id + "." + string(kind) }

func (s *FS) lock(key string) *sync.Mutex {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &s.stripes[h.Sum32()%uint32(len(s.stripes))]
}

func (s *FS) genPath(kind Kind, id string, n uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.g%012d.mfbo", recordKey(kind, id), n))
}

// legacyPath maps a record to its pre-storage-engine file name ("" when the
// kind had no legacy layout).
func (s *FS) legacyPath(kind Kind, id string) string {
	switch kind {
	case KindCheckpoint:
		return filepath.Join(s.dir, id+".ckpt.json")
	case KindManifest:
		return filepath.Join(s.dir, id+".session.json")
	}
	return ""
}

// generations lists the stored generation numbers of (kind, id), newest
// first.
func (s *FS) generations(kind Kind, id string) ([]uint64, error) {
	prefix := recordKey(kind, id) + ".g"
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".mfbo") {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".mfbo")
		n, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		gens = append(gens, n)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens, nil
}

// nextGen reserves the next generation number for key (callers hold the
// record's stripe lock).
func (s *FS) nextGen(kind Kind, id string) (uint64, error) {
	key := recordKey(kind, id)
	s.mu.Lock()
	if n, ok := s.gens[key]; ok {
		s.gens[key] = n + 1
		s.mu.Unlock()
		return n, nil
	}
	s.mu.Unlock()
	gens, err := s.generations(kind, id)
	if err != nil {
		return 0, err
	}
	var next uint64 = 1
	if len(gens) > 0 {
		next = gens[0] + 1
	}
	s.mu.Lock()
	s.gens[key] = next + 1
	s.mu.Unlock()
	return next, nil
}

// Put implements Store with the temp-file + fsync + rename + dir-fsync
// discipline, then prunes generations beyond the configured K.
func (s *FS) Put(kind Kind, id string, data []byte) error {
	key := recordKey(kind, id)
	l := s.lock(key)
	l.Lock()
	defer l.Unlock()
	n, err := s.nextGen(kind, id)
	if err != nil {
		s.met.writeErr()
		return fmt.Errorf("storage: fs put %s: %w", key, err)
	}
	if err := s.writeDurable(s.genPath(kind, id, n), encodeRecord(data)); err != nil {
		s.met.writeErr()
		return fmt.Errorf("storage: fs put %s: %w", key, err)
	}
	s.met.write(kind)
	s.prune(kind, id)
	return nil
}

// writeDurable lands env at path atomically and durably.
func (s *FS) writeDurable(path string, env []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".storage-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	start := time.Now()
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	s.met.fsyncDur(time.Since(start))
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// The rename is metadata owned by the parent directory, which has its
	// own write-back cache; sync it or the entry can vanish on power loss.
	start = time.Now()
	if err := syncDir(dir); err != nil {
		return err
	}
	s.met.fsyncDur(time.Since(start))
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// prune deletes generations beyond the newest K. It runs only after a
// successful Put, so the newest kept generation always verifies — recovery
// depth can shrink but never reach zero. Failures are ignored: stale
// generations are garbage, not state.
func (s *FS) prune(kind Kind, id string) {
	gens, err := s.generations(kind, id)
	if err != nil || len(gens) <= s.keep {
		return
	}
	for _, n := range gens[s.keep:] {
		os.Remove(s.genPath(kind, id, n))
	}
}

// Get implements Store: newest verified generation wins; corrupt newer
// generations are quarantined and counted as a rollback when an older one
// (or a legacy file) recovers the record.
func (s *FS) Get(kind Kind, id string) ([]byte, error) {
	key := recordKey(kind, id)
	l := s.lock(key)
	l.Lock()
	defer l.Unlock()
	gens, err := s.generations(kind, id)
	if err != nil {
		s.met.readErr()
		return nil, fmt.Errorf("storage: fs get %s: %w", key, err)
	}
	skipped := 0
	for _, n := range gens {
		path := s.genPath(kind, id, n)
		env, err := os.ReadFile(path)
		if err != nil {
			// A transient I/O error must not quarantine a possibly-good
			// generation; surface it and let the caller retry.
			s.met.readErr()
			return nil, fmt.Errorf("storage: fs get %s: %w", key, err)
		}
		payload, err := decodeRecord(env)
		if err != nil {
			s.met.verifyFail()
			s.quarantine(kind, path)
			skipped++
			continue
		}
		if skipped > 0 {
			s.met.rollback(kind)
		}
		s.met.read(kind)
		return payload, nil
	}
	// No verified generation: fall back to the pre-engine layout (plain
	// JSON, no envelope) so existing checkpoint directories keep working.
	if legacy := s.legacyPath(kind, id); legacy != "" {
		data, err := os.ReadFile(legacy)
		if err == nil {
			if skipped > 0 {
				s.met.rollback(kind)
			}
			s.met.read(kind)
			return data, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			s.met.readErr()
			return nil, fmt.Errorf("storage: fs get %s: %w", key, err)
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
}

// quarantine moves a corrupt generation into corrupt/ (never deleting it);
// on any failure the file is left in place — a corrupt record must not
// become less inspectable because quarantine failed.
func (s *FS) quarantine(kind Kind, path string) {
	qdir := filepath.Join(s.dir, "corrupt")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	dest := filepath.Join(qdir, fmt.Sprintf("%s.%d", filepath.Base(path), time.Now().UnixNano()))
	if err := os.Rename(path, dest); err != nil {
		return
	}
	s.met.quarantine(kind)
}

// Delete implements Store (quarantined copies are intentionally kept).
func (s *FS) Delete(kind Kind, id string) error {
	key := recordKey(kind, id)
	l := s.lock(key)
	l.Lock()
	defer l.Unlock()
	gens, err := s.generations(kind, id)
	if err != nil {
		return fmt.Errorf("storage: fs delete %s: %w", key, err)
	}
	var errs []error
	for _, n := range gens {
		if err := os.Remove(s.genPath(kind, id, n)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			errs = append(errs, err)
		}
	}
	if legacy := s.legacyPath(kind, id); legacy != "" {
		if err := os.Remove(legacy); err != nil && !errors.Is(err, fs.ErrNotExist) {
			errs = append(errs, err)
		}
	}
	s.mu.Lock()
	delete(s.gens, key)
	s.mu.Unlock()
	return errors.Join(errs...)
}

// List implements Store, including records only present in the legacy
// layout.
func (s *FS) List(kind Kind) ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: fs list %s: %w", kind, err)
	}
	suffix := "." + string(kind) + ".g"
	var legacySuffix string
	switch kind {
	case KindCheckpoint:
		legacySuffix = ".ckpt.json"
	case KindManifest:
		legacySuffix = ".session.json"
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if i := strings.Index(name, suffix); i > 0 && strings.HasSuffix(name, ".mfbo") {
			seen[name[:i]] = true
			continue
		}
		if legacySuffix != "" && strings.HasSuffix(name, legacySuffix) && len(name) > len(legacySuffix) {
			seen[strings.TrimSuffix(name, legacySuffix)] = true
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Probe implements Store with an actual write probe, so a full disk or
// permission regression is detected before it eats a record.
func (s *FS) Probe() error {
	f, err := os.CreateTemp(s.dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("storage: fs probe: %w", err)
	}
	name := f.Name()
	_, werr := f.Write([]byte("probe"))
	cerr := f.Close()
	rerr := os.Remove(name)
	return errors.Join(werr, cerr, rerr)
}

// Close implements Store (the filesystem store holds no resources).
func (s *FS) Close() error { return nil }

// PutTorn implements Tearer: the envelope is cut at offset and written
// straight to the final generation name with no temp file, no fsync and no
// rename barrier — the on-disk state a power loss mid-write leaves behind.
func (s *FS) PutTorn(kind Kind, id string, data []byte, offset int) error {
	key := recordKey(kind, id)
	l := s.lock(key)
	l.Lock()
	defer l.Unlock()
	env := encodeRecord(data)
	if offset < 0 {
		offset = 0
	}
	if offset > len(env) {
		offset = len(env)
	}
	n, err := s.nextGen(kind, id)
	if err != nil {
		return err
	}
	return os.WriteFile(s.genPath(kind, id, n), env[:offset], 0o644)
}

// CorruptHead implements Corrupter: the newest generation is truncated in
// place to keep bytes — what a lying fsync leaves after power loss.
func (s *FS) CorruptHead(kind Kind, id string, keep int) error {
	l := s.lock(recordKey(kind, id))
	l.Lock()
	defer l.Unlock()
	gens, err := s.generations(kind, id)
	if err != nil || len(gens) == 0 {
		return err
	}
	if keep < 0 {
		keep = 0
	}
	return os.Truncate(s.genPath(kind, id, gens[0]), int64(keep))
}

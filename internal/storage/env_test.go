package storage

import "testing"

func TestParseChaosEnv(t *testing.T) {
	cfg, ok, err := ParseChaosEnv("7:0.25")
	if err != nil || !ok {
		t.Fatalf("ParseChaosEnv: ok=%v err=%v", ok, err)
	}
	if cfg.Seed != 7 {
		t.Errorf("seed = %d, want 7", cfg.Seed)
	}
	for name, rate := range map[string]float64{
		"write": cfg.WriteErrRate, "torn": cfg.TornWriteRate,
		"read": cfg.ReadErrRate, "latency": cfg.LatencyRate,
	} {
		if rate != 0.25 {
			t.Errorf("%s rate = %v, want 0.25", name, rate)
		}
	}
	if cfg.FsyncLieRate != 0 {
		t.Error("fsync lies must never be enabled from the environment")
	}

	if _, ok, err := ParseChaosEnv(""); err != nil || ok {
		t.Errorf("empty value: ok=%v err=%v, want off", ok, err)
	}
	if _, ok, err := ParseChaosEnv("  "); err != nil || ok {
		t.Errorf("blank value: ok=%v err=%v, want off", ok, err)
	}
	for _, bad := range []string{"nope", "x:0.1", "1:y", "1:1.5", "1:-0.1"} {
		if _, _, err := ParseChaosEnv(bad); err == nil {
			t.Errorf("ParseChaosEnv(%q): want error", bad)
		}
	}
}

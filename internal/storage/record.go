package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record envelope: every stored generation is framed as
//
//	offset  size  field
//	0       4     magic "MFBS"
//	4       2     format version (big endian)
//	6       8     payload length (big endian)
//	14      4     CRC32C (Castagnoli) of the payload (big endian)
//	18      n     payload
//
// The length prefix detects truncation cheaply (a torn write cuts the
// payload short of the declared length) and the checksum catches bit rot
// and partial-page writes inside the declared length. The header is checked
// field by field so diagnostics name the failure mode.

const (
	recordMagic   = "MFBS"
	recordVersion = 1
	headerSize    = 4 + 2 + 8 + 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeRecord frames payload in the envelope.
func encodeRecord(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	copy(buf, recordMagic)
	binary.BigEndian.PutUint16(buf[4:], recordVersion)
	binary.BigEndian.PutUint64(buf[6:], uint64(len(payload)))
	binary.BigEndian.PutUint32(buf[14:], crc32.Checksum(payload, castagnoli))
	copy(buf[headerSize:], payload)
	return buf
}

// decodeRecord verifies the envelope and returns the payload. Every failure
// wraps ErrCorrupt so callers can classify with errors.Is.
func decodeRecord(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	if string(data[:4]) != recordMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	if v := binary.BigEndian.Uint16(data[4:]); v != recordVersion {
		return nil, fmt.Errorf("%w: record version %d, want %d", ErrCorrupt, v, recordVersion)
	}
	n := binary.BigEndian.Uint64(data[6:])
	if n != uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("%w: declared payload %d bytes, stored %d (torn write)", ErrCorrupt, n, len(data)-headerSize)
	}
	payload := data[headerSize:]
	want := binary.BigEndian.Uint32(data[14:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	return payload, nil
}

package storage

import (
	"fmt"
	"sort"
	"sync"
)

// MemConfig tunes the in-memory backend.
type MemConfig struct {
	// Generations is how many generations of each record to keep (default 3).
	Generations int
}

// Mem is the in-memory Store for tests: same envelope framing, generation
// retention and rollback semantics as FS, no disk. It implements Tearer and
// Corrupter so chaos tests can run against it byte-for-byte like the
// filesystem backend.
type Mem struct {
	keep int

	mu      sync.Mutex
	recs    map[string][][]byte // record key → generations, oldest first (envelope-framed)
	corrupt map[string][][]byte // quarantined generations, for test inspection
	closed  bool
}

var (
	_ Store     = (*Mem)(nil)
	_ Tearer    = (*Mem)(nil)
	_ Corrupter = (*Mem)(nil)
)

// NewMem builds an in-memory store.
func NewMem(cfg MemConfig) *Mem {
	if cfg.Generations <= 0 {
		cfg.Generations = 3
	}
	return &Mem{
		keep:    cfg.Generations,
		recs:    make(map[string][][]byte),
		corrupt: make(map[string][][]byte),
	}
}

// Put implements Store.
func (s *Mem) Put(kind Kind, id string, data []byte) error {
	key := recordKey(kind, id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: mem put %s: store closed", key)
	}
	gens := append(s.recs[key], encodeRecord(data))
	if len(gens) > s.keep {
		gens = gens[len(gens)-s.keep:]
	}
	s.recs[key] = gens
	return nil
}

// Get implements Store with the same newest-verified-generation rollback as
// the filesystem backend.
func (s *Mem) Get(kind Kind, id string) ([]byte, error) {
	key := recordKey(kind, id)
	s.mu.Lock()
	defer s.mu.Unlock()
	gens := s.recs[key]
	for i := len(gens) - 1; i >= 0; i-- {
		payload, err := decodeRecord(gens[i])
		if err != nil {
			s.corrupt[key] = append(s.corrupt[key], gens[i])
			gens = gens[:i]
			s.recs[key] = gens
			continue
		}
		out := make([]byte, len(payload))
		copy(out, payload)
		return out, nil
	}
	if len(gens) == 0 {
		delete(s.recs, key)
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
}

// Delete implements Store.
func (s *Mem) Delete(kind Kind, id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.recs, recordKey(kind, id))
	return nil
}

// List implements Store.
func (s *Mem) List(kind Kind) ([]string, error) {
	suffix := "." + string(kind)
	s.mu.Lock()
	defer s.mu.Unlock()
	var ids []string
	for key, gens := range s.recs {
		if len(gens) > 0 && len(key) > len(suffix) && key[len(key)-len(suffix):] == suffix {
			ids = append(ids, key[:len(key)-len(suffix)])
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Probe implements Store.
func (s *Mem) Probe() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: mem probe: store closed")
	}
	return nil
}

// Close implements Store.
func (s *Mem) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// PutTorn implements Tearer.
func (s *Mem) PutTorn(kind Kind, id string, data []byte, offset int) error {
	key := recordKey(kind, id)
	env := encodeRecord(data)
	if offset < 0 {
		offset = 0
	}
	if offset > len(env) {
		offset = len(env)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gens := append(s.recs[key], env[:offset])
	if len(gens) > s.keep+1 { // torn writes bypass prune-on-success; cap anyway
		gens = gens[len(gens)-(s.keep+1):]
	}
	s.recs[key] = gens
	return nil
}

// CorruptHead implements Corrupter.
func (s *Mem) CorruptHead(kind Kind, id string, keep int) error {
	key := recordKey(kind, id)
	if keep < 0 {
		keep = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gens := s.recs[key]
	if len(gens) == 0 {
		return nil
	}
	head := gens[len(gens)-1]
	if keep < len(head) {
		gens[len(gens)-1] = head[:keep]
	}
	return nil
}

// Quarantined reports how many generations of (kind, id) were quarantined
// (test helper mirroring the FS corrupt/ subdir).
func (s *Mem) Quarantined(kind Kind, id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.corrupt[recordKey(kind, id)])
}

package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// backends under test: every Store implementation must satisfy the same
// contract suite.
func testStores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFS(FSConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewFS: %v", err)
	}
	return map[string]Store{
		"fs":  fs,
		"mem": NewMem(MemConfig{}),
	}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Get(KindCheckpoint, "a"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get missing: err = %v, want ErrNotFound", err)
			}
			want := []byte(`{"x": 1}`)
			if err := s.Put(KindCheckpoint, "a", want); err != nil {
				t.Fatalf("Put: %v", err)
			}
			got, err := s.Get(KindCheckpoint, "a")
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("Get = %q, want %q", got, want)
			}
			// Kinds are separate namespaces.
			if _, err := s.Get(KindManifest, "a"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("cross-kind Get: err = %v, want ErrNotFound", err)
			}
			// Newest generation wins.
			want2 := []byte(`{"x": 2}`)
			if err := s.Put(KindCheckpoint, "a", want2); err != nil {
				t.Fatalf("Put gen 2: %v", err)
			}
			if got, _ := s.Get(KindCheckpoint, "a"); !bytes.Equal(got, want2) {
				t.Fatalf("Get after overwrite = %q, want %q", got, want2)
			}
			if err := s.Delete(KindCheckpoint, "a"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := s.Get(KindCheckpoint, "a"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after Delete: err = %v, want ErrNotFound", err)
			}
			if err := s.Probe(); err != nil {
				t.Fatalf("Probe: %v", err)
			}
		})
	}
}

func TestStoreList(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			for _, id := range []string{"b", "a", "c"} {
				if err := s.Put(KindManifest, id, []byte(id)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Put(KindCheckpoint, "z", []byte("z")); err != nil {
				t.Fatal(err)
			}
			ids, err := s.List(KindManifest)
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			if want := []string{"a", "b", "c"}; !reflect.DeepEqual(ids, want) {
				t.Fatalf("List = %v, want %v", ids, want)
			}
		})
	}
}

// TestRollbackPastTornHead is the headline recovery property: a torn newest
// generation is quarantined and Get falls back to the newest generation
// that verifies.
func TestRollbackPastTornHead(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			good := []byte("generation-1-good")
			if err := s.Put(KindCheckpoint, "run", good); err != nil {
				t.Fatal(err)
			}
			tearer := s.(Tearer)
			if err := tearer.PutTorn(KindCheckpoint, "run", []byte("generation-2-torn"), 9); err != nil {
				t.Fatalf("PutTorn: %v", err)
			}
			got, err := s.Get(KindCheckpoint, "run")
			if err != nil {
				t.Fatalf("Get after torn head: %v", err)
			}
			if !bytes.Equal(got, good) {
				t.Fatalf("Get = %q, want rollback to %q", got, good)
			}
		})
	}
}

func TestAllGenerationsCorruptIsNotFound(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			tearer := s.(Tearer)
			if err := tearer.PutTorn(KindCheckpoint, "run", []byte("only-gen"), 5); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(KindCheckpoint, "run"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get with only corrupt generations: err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestCorruptHeadTruncatesInPlace(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put(KindCheckpoint, "run", []byte("gen-1")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(KindCheckpoint, "run", []byte("gen-2")); err != nil {
				t.Fatal(err)
			}
			if err := s.(Corrupter).CorruptHead(KindCheckpoint, "run", headerSize/2); err != nil {
				t.Fatalf("CorruptHead: %v", err)
			}
			got, err := s.Get(KindCheckpoint, "run")
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if want := []byte("gen-1"); !bytes.Equal(got, want) {
				t.Fatalf("Get = %q, want %q", got, want)
			}
		})
	}
}

func TestFSGenerationPruning(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFS(FSConfig{Dir: dir, Generations: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(KindCheckpoint, "run", []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := s.generations(KindCheckpoint, "run")
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("kept %d generations, want 2 (gens %v)", len(gens), gens)
	}
	if got, _ := s.Get(KindCheckpoint, "run"); !bytes.Equal(got, []byte("4")) {
		t.Fatalf("Get = %q, want newest generation \"4\"", got)
	}
}

func TestFSQuarantineAndMetrics(t *testing.T) {
	rec := &telemetry.Recorder{Metrics: telemetry.NewRegistry()}
	dir := t.TempDir()
	s, err := NewFS(FSConfig{Dir: dir, Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindCheckpoint, "run", []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTorn(KindCheckpoint, "run", []byte("torn"), 7); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(KindCheckpoint, "run"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	// The torn head must now live in corrupt/, not in the main directory.
	q, err := os.ReadDir(filepath.Join(dir, "corrupt"))
	if err != nil || len(q) != 1 {
		t.Fatalf("corrupt/ = %v entries (err %v), want 1 quarantined file", len(q), err)
	}
	m := s.met
	if v := m.rollbacks[KindCheckpoint].Value(); v != 1 {
		t.Errorf("rollbacks = %d, want 1", v)
	}
	if v := m.quarantines[KindCheckpoint].Value(); v != 1 {
		t.Errorf("quarantines = %d, want 1", v)
	}
	if v := m.verifyFails.Value(); v != 1 {
		t.Errorf("verify failures = %d, want 1", v)
	}
	if v := m.writes[KindCheckpoint].Value(); v != 1 {
		t.Errorf("writes = %d, want 1 (torn write must not count)", v)
	}
	if v := m.reads[KindCheckpoint].Value(); v != 1 {
		t.Errorf("reads = %d, want 1", v)
	}
	if m.fsync.Count() == 0 {
		t.Error("fsync histogram empty, want observations from the durable write")
	}
	// A second Get sees the already-clean head: no new rollback.
	if _, err := s.Get(KindCheckpoint, "run"); err != nil {
		t.Fatal(err)
	}
	if v := m.rollbacks[KindCheckpoint].Value(); v != 1 {
		t.Errorf("rollbacks after clean Get = %d, want still 1", v)
	}
}

func TestFSLegacyFallback(t *testing.T) {
	dir := t.TempDir()
	legacyCkpt := []byte(`{"version": 1}`)
	legacyMan := []byte(`{"id": "old"}`)
	if err := os.WriteFile(filepath.Join(dir, "old.ckpt.json"), legacyCkpt, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "old.session.json"), legacyMan, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewFS(FSConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(KindCheckpoint, "old"); err != nil || !bytes.Equal(got, legacyCkpt) {
		t.Fatalf("legacy checkpoint Get = %q, %v", got, err)
	}
	if got, err := s.Get(KindManifest, "old"); err != nil || !bytes.Equal(got, legacyMan) {
		t.Fatalf("legacy manifest Get = %q, %v", got, err)
	}
	ids, err := s.List(KindCheckpoint)
	if err != nil || !reflect.DeepEqual(ids, []string{"old"}) {
		t.Fatalf("List with legacy layout = %v, %v", ids, err)
	}
	// A new Put shadows the legacy file; Delete removes both.
	if err := s.Put(KindCheckpoint, "old", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(KindCheckpoint, "old"); !bytes.Equal(got, []byte("new")) {
		t.Fatalf("Get after shadowing Put = %q", got)
	}
	if err := s.Delete(KindCheckpoint, "old"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "old.ckpt.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("legacy file survived Delete: %v", err)
	}
}

func TestRecordCodec(t *testing.T) {
	payload := []byte("the quick brown fox")
	env := encodeRecord(payload)
	got, err := decodeRecord(env)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("decode = %q, want %q", got, payload)
	}
	// Every single-byte truncation of the envelope must fail verification.
	for cut := 0; cut < len(env); cut++ {
		if _, err := decodeRecord(env[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("decode of %d/%d bytes: err = %v, want ErrCorrupt", cut, len(env), err)
		}
	}
	// So must a single flipped payload bit.
	flipped := append([]byte(nil), env...)
	flipped[headerSize] ^= 0x01
	if _, err := decodeRecord(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode with flipped bit: err = %v, want ErrCorrupt", err)
	}
	// Empty payloads round-trip.
	if got, err := decodeRecord(encodeRecord(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty payload round trip = %q, %v", got, err)
	}
}

func TestFSConcurrentAccess(t *testing.T) {
	s, err := NewFS(FSConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			id := string(rune('a' + w%4))
			var err error
			for i := 0; i < 25 && err == nil; i++ {
				if err = s.Put(KindCheckpoint, id, []byte{byte(w), byte(i)}); err == nil {
					_, err = s.Get(KindCheckpoint, id)
				}
			}
			done <- err
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

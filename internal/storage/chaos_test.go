package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestChaosDeterministicSequence(t *testing.T) {
	run := func() (ChaosCounts, []error) {
		c := NewChaos(NewMem(MemConfig{}), ChaosConfig{
			Seed:          42,
			WriteErrRate:  0.2,
			TornWriteRate: 0.2,
			ReadErrRate:   0.2,
		})
		var errs []error
		for i := 0; i < 50; i++ {
			errs = append(errs, c.Put(KindCheckpoint, "run", []byte{byte(i)}))
			_, err := c.Get(KindCheckpoint, "run")
			errs = append(errs, err)
		}
		return c.Counts(), errs
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 {
		t.Fatalf("same seed, different fault counts: %+v vs %+v", c1, c2)
	}
	if c1.WriteErrs == 0 || c1.TornWrites == 0 || c1.ReadErrs == 0 {
		t.Fatalf("expected every configured fault kind to fire over 50 ops: %+v", c1)
	}
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("same seed, different error at op %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestChaosInjectedErrorsAreTyped(t *testing.T) {
	c := NewChaos(NewMem(MemConfig{}), ChaosConfig{WriteErrRate: 1})
	err := c.Put(KindCheckpoint, "run", []byte("x"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Put err = %v, want ErrInjected", err)
	}
	c = NewChaos(NewMem(MemConfig{}), ChaosConfig{ReadErrRate: 1})
	if _, err := c.Get(KindCheckpoint, "run"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Get err = %v, want ErrInjected", err)
	}
}

// TestChaosTornWriteRollsBack: a chaos-torn write must be recoverable by
// the backend exactly like a real torn write — prior generation survives.
func TestChaosTornWriteRollsBack(t *testing.T) {
	inner := NewMem(MemConfig{})
	// Seed 6 at rate 0.5 rolls torn on the first Put, clean on the second.
	c := NewChaos(inner, ChaosConfig{Seed: 6, TornWriteRate: 0.5})
	good := []byte("durable")
	if err := inner.Put(KindCheckpoint, "run", good); err != nil {
		t.Fatal(err)
	}
	err := c.Put(KindCheckpoint, "run", []byte("doomed"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn Put err = %v, want ErrInjected", err)
	}
	if !c.TornHead(KindCheckpoint, "run") {
		t.Fatal("TornHead = false after torn write")
	}
	got, err := inner.Get(KindCheckpoint, "run")
	if err != nil || !bytes.Equal(got, good) {
		t.Fatalf("backend Get after torn write = %q, %v; want rollback to %q", got, err, good)
	}
	// A successful Put clears the torn marker.
	if err := c.Put(KindCheckpoint, "run", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if c.TornHead(KindCheckpoint, "run") {
		t.Fatal("TornHead = true after successful Put")
	}
}

// TestChaosFsyncLieLostOnCrash: a lied-about write reads back fine until
// Crash(), after which the head is torn and recovery rolls back — the
// power-loss-after-lying-fsync scenario.
func TestChaosFsyncLieLostOnCrash(t *testing.T) {
	inner := NewMem(MemConfig{})
	if err := inner.Put(KindCheckpoint, "run", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	c := NewChaos(inner, ChaosConfig{FsyncLieRate: 1})
	if err := c.Put(KindCheckpoint, "run", []byte("volatile")); err != nil {
		t.Fatalf("lied Put must report success, got %v", err)
	}
	if got, _ := c.Get(KindCheckpoint, "run"); !bytes.Equal(got, []byte("volatile")) {
		t.Fatalf("pre-crash Get = %q, want the lied write visible", got)
	}
	c.Crash()
	if _, err := c.Get(KindCheckpoint, "run"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Get via decorator = %v, want ErrCrashed", err)
	}
	if err := c.Put(KindCheckpoint, "run", []byte("zombie")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Put = %v, want ErrCrashed", err)
	}
	// The "restarted process" opens the backend directly: the lie is gone,
	// the durable generation survives.
	got, err := inner.Get(KindCheckpoint, "run")
	if err != nil || !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("backend Get after crash = %q, %v; want rollback to durable", got, err)
	}
}

func TestChaosCleanPassThrough(t *testing.T) {
	c := NewChaos(NewMem(MemConfig{}), ChaosConfig{})
	if err := c.Put(KindManifest, "m", []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(KindManifest, "m")
	if err != nil || !bytes.Equal(got, []byte("data")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	ids, err := c.List(KindManifest)
	if err != nil || len(ids) != 1 {
		t.Fatalf("List = %v, %v", ids, err)
	}
	if err := c.Probe(); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(KindManifest, "m"); err != nil {
		t.Fatal(err)
	}
	if c.Counts() != (ChaosCounts{}) {
		t.Fatalf("clean run injected faults: %+v", c.Counts())
	}
}

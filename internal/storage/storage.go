// Package storage is the pluggable durable-state engine of the optimization
// service: everything the daemon must not lose — session manifests,
// optimizer checkpoints, telemetry rings — goes through the Store interface
// instead of ad-hoc file I/O, so backends can be swapped (hardened
// filesystem, in-memory for tests, future KV/SQL) without touching the
// layers above.
//
// # Crash consistency
//
// The contract every backend honors: a Put that returns nil has made the
// record durable (it survives an immediate process kill or power loss), and
// a Put that returns an error has left every previously-durable generation
// of the record intact. Records are framed by a length-prefixed, CRC32C-
// checksummed envelope (see record.go), so torn writes, truncation and bit
// rot are detected on read rather than silently deserialized. Backends keep
// the last K generations of each record: when the newest generation fails
// verification, Get quarantines it and rolls back to the newest generation
// that verifies — a torn head costs one iteration of progress, never the
// run. Corrupt data is preserved (moved aside, not deleted) for forensics.
//
// # Fault injection
//
// The Chaos decorator wraps any backend and injects storage faults (write
// and read errors, torn writes truncated at a byte offset, lying fsyncs,
// latency spikes) from a seeded RNG, mirroring the fault-injection
// discipline of internal/robust.Chaos. cmd/mfbo-chaos and the torture tests
// use it to prove the recovery machinery under fire.
package storage

import "errors"

// Kind names a class of records. Backends may lay each kind out
// differently; the interface treats them as separate namespaces.
type Kind string

const (
	// KindCheckpoint is an optimizer snapshot (core.Checkpoint JSON) —
	// ground truth of a session, written after every ingested observation.
	KindCheckpoint Kind = "ckpt"
	// KindManifest is a session manifest (the creation request), written
	// once per create/resume so a restarted server can rebuild configs.
	KindManifest Kind = "manifest"
	// KindTelemetry is a session's buffered telemetry ring, persisted
	// best-effort at eviction/shutdown so introspection survives restarts.
	KindTelemetry Kind = "ring"
	// KindOwner is a session-ownership lease (internal/shard): which replica
	// of a sharded deployment currently serves the session, under which
	// epoch, and until when — the fence that keeps exactly one replica
	// writing a session's checkpoints at a time.
	KindOwner Kind = "owner"
	// KindReplica is a replica-membership heartbeat (internal/shard), the
	// record behind the ring-membership view /v1/healthz reports.
	KindReplica Kind = "replica"
)

// kinds lists every known kind (for Delete-everything sweeps and tests).
var kinds = []Kind{KindCheckpoint, KindManifest, KindTelemetry, KindOwner, KindReplica}

// Kinds returns every record kind the engine knows about.
func Kinds() []Kind { return append([]Kind(nil), kinds...) }

// Typed sentinel errors; classify with errors.Is.
var (
	// ErrNotFound reports that no recoverable record exists under the key.
	// Callers treat it as "start fresh": a record whose every generation
	// failed verification also surfaces as ErrNotFound (after quarantining
	// the corrupt data), because recovering from nothing is the only safe
	// automatic response.
	ErrNotFound = errors.New("storage: record not found")

	// ErrCorrupt reports that stored bytes failed envelope verification
	// (bad magic, truncated payload, checksum mismatch). Get handles it
	// internally via rollback; it escapes only from direct codec use.
	ErrCorrupt = errors.New("storage: record corrupt")

	// ErrInjected is returned by chaos-injected storage faults.
	ErrInjected = errors.New("storage: chaos-injected fault")

	// ErrCrashed rejects every operation on a Chaos store after Crash():
	// the simulated process is dead, and a dead process issues no I/O.
	ErrCrashed = errors.New("storage: store crashed (chaos)")
)

// Store is the pluggable durability engine. Implementations must be safe
// for concurrent use; operations on distinct (kind, id) pairs must not
// block each other on slow I/O.
type Store interface {
	// Put durably persists data as the newest generation of (kind, id).
	// On nil return the record survives an immediate crash; on error every
	// previously-durable generation is still intact.
	Put(kind Kind, id string, data []byte) error
	// Get returns the newest generation of (kind, id) that passes
	// verification, quarantining corrupt newer generations along the way.
	// ErrNotFound when nothing recoverable exists.
	Get(kind Kind, id string) ([]byte, error)
	// Delete removes every generation of (kind, id). Deleting a missing
	// record is not an error.
	Delete(kind Kind, id string) error
	// List returns the IDs that have at least one stored generation of
	// kind, in unspecified order.
	List(kind Kind) ([]string, error)
	// Probe verifies the backend can currently accept writes (health
	// checks; e.g. a filesystem store creates and removes a scratch file).
	Probe() error
	// Close releases backend resources. The store must not be used after.
	Close() error
}

// Tearer is implemented by backends that can simulate a torn write: the
// encoded record is persisted truncated at a byte offset, exactly as if the
// process died mid-write with no rename barrier. The chaos decorator uses
// it; production code never should.
type Tearer interface {
	// PutTorn writes the record's envelope cut at offset bytes as the
	// newest generation, bypassing the atomic temp+rename path, and returns
	// the error the interrupted writer would have seen.
	PutTorn(kind Kind, id string, data []byte, offset int) error
}

// Corrupter is implemented by backends that can corrupt the newest stored
// generation in place (truncate it to keep bytes) — the "power loss after a
// lying fsync" simulation hook.
type Corrupter interface {
	CorruptHead(kind Kind, id string, keep int) error
}

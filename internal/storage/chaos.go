package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ChaosConfig is the storage fault-injection schedule. Rates are
// probabilities in [0, 1], rolled per operation in order
// write-error → torn-write → fsync-lie → latency (writes) and
// read-error → latency (reads); at most one fault fires per operation.
type ChaosConfig struct {
	// Seed makes the injection sequence deterministic (default 1).
	Seed int64
	// WriteErrRate makes Put fail with ErrInjected before touching the
	// backend (EIO on write).
	WriteErrRate float64
	// TornWriteRate persists the record truncated at a random byte offset
	// via the backend's Tearer hook and returns ErrInjected — the state a
	// crash mid-write leaves behind. Ignored when the backend cannot tear.
	TornWriteRate float64
	// FsyncLieRate makes Put report success while the write is actually
	// volatile: a later Crash() truncates the lied-about head in place (via
	// the backend's Corrupter hook), as power loss after a lying fsync
	// would. This fault genuinely breaks the "nil Put ⟹ durable" contract —
	// that is the point; use it only to measure blast radius, not in
	// tortures asserting zero loss of acked state.
	FsyncLieRate float64
	// ReadErrRate makes Get fail with ErrInjected (EIO on read).
	ReadErrRate float64
	// LatencyRate stalls the operation for Latency before proceeding.
	LatencyRate float64
	// Latency is the stall duration of a latency fault (default 5 ms).
	Latency time.Duration
}

// ChaosCounts tallies injected storage faults.
type ChaosCounts struct {
	WriteErrs, TornWrites, FsyncLies, ReadErrs, Latencies int
}

// Chaos decorates any Store with seeded fault injection. Crash() simulates
// the process dying: every fsync-lied write is lost (head truncated in the
// backend) and all further operations fail with ErrCrashed. Safe for
// concurrent use.
type Chaos struct {
	inner Store
	cfg   ChaosConfig

	mu       sync.Mutex
	rng      *rand.Rand
	counts   ChaosCounts
	crashed  bool
	volatile map[string][2]string // record key → (kind, id) of fsync-lied head
	torn     map[string]bool      // record key → newest generation is torn
}

var _ Store = (*Chaos)(nil)

// NewChaos wraps inner with fault injection.
func NewChaos(inner Store, cfg ChaosConfig) *Chaos {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 5 * time.Millisecond
	}
	return &Chaos{
		inner:    inner,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		volatile: make(map[string][2]string),
		torn:     make(map[string]bool),
	}
}

// Counts returns the fault tallies so far.
func (c *Chaos) Counts() ChaosCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

// Crash simulates the wrapped process dying mid-flight: fsync-lied writes
// are truncated in the backend (they were never durable) and every
// subsequent operation on this decorator fails with ErrCrashed. The
// underlying backend stays valid — a "restarted" process opens a fresh
// store over the same state.
func (c *Chaos) Crash() {
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return
	}
	c.crashed = true
	lost := c.volatile
	c.volatile = map[string][2]string{}
	c.mu.Unlock()
	cor, ok := c.inner.(Corrupter)
	if !ok {
		return
	}
	for key, rec := range lost {
		// Keep half the header: unambiguously torn, forensically non-empty.
		cor.CorruptHead(Kind(rec[0]), rec[1], headerSize/2)
		c.mu.Lock()
		c.torn[key] = true
		c.mu.Unlock()
	}
}

// TornHead reports whether the newest generation of (kind, id) was left
// torn by injection (torn write, or fsync lie realized by Crash) with no
// successful Put after it. Torture tests use it to predict the exact
// rollback count of the next recovery.
func (c *Chaos) TornHead(kind Kind, id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.torn[recordKey(kind, id)]
}

type storageFault int

const (
	faultNone storageFault = iota
	faultErr
	faultTorn
	faultLie
	faultLatency
)

// rollWrite draws the fault (if any) for one Put.
func (c *Chaos) rollWrite() storageFault {
	c.mu.Lock()
	defer c.mu.Unlock()
	u := c.rng.Float64()
	switch {
	case u < c.cfg.WriteErrRate:
		c.counts.WriteErrs++
		return faultErr
	case u < c.cfg.WriteErrRate+c.cfg.TornWriteRate:
		c.counts.TornWrites++
		return faultTorn
	case u < c.cfg.WriteErrRate+c.cfg.TornWriteRate+c.cfg.FsyncLieRate:
		c.counts.FsyncLies++
		return faultLie
	case u < c.cfg.WriteErrRate+c.cfg.TornWriteRate+c.cfg.FsyncLieRate+c.cfg.LatencyRate:
		c.counts.Latencies++
		return faultLatency
	}
	return faultNone
}

// rollRead draws the fault (if any) for one Get.
func (c *Chaos) rollRead() storageFault {
	c.mu.Lock()
	defer c.mu.Unlock()
	u := c.rng.Float64()
	switch {
	case u < c.cfg.ReadErrRate:
		c.counts.ReadErrs++
		return faultErr
	case u < c.cfg.ReadErrRate+c.cfg.LatencyRate:
		c.counts.Latencies++
		return faultLatency
	}
	return faultNone
}

func (c *Chaos) dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Put implements Store with write-fault injection.
func (c *Chaos) Put(kind Kind, id string, data []byte) error {
	if c.dead() {
		return ErrCrashed
	}
	key := recordKey(kind, id)
	switch c.rollWrite() {
	case faultErr:
		return fmt.Errorf("%w: write error on %s", ErrInjected, key)
	case faultTorn:
		if t, ok := c.inner.(Tearer); ok {
			offset := c.tornOffset(len(data))
			if err := t.PutTorn(kind, id, data, offset); err != nil {
				return fmt.Errorf("storage: chaos torn write on %s: %w", key, err)
			}
			c.mu.Lock()
			c.torn[key] = true
			delete(c.volatile, key)
			c.mu.Unlock()
			return fmt.Errorf("%w: torn write on %s (cut at %d)", ErrInjected, key, offset)
		}
		// Backend can't tear; degrade to a plain write error.
		return fmt.Errorf("%w: write error on %s", ErrInjected, key)
	case faultLie:
		if err := c.inner.Put(kind, id, data); err != nil {
			return err
		}
		c.mu.Lock()
		c.volatile[key] = [2]string{string(kind), id}
		delete(c.torn, key)
		c.mu.Unlock()
		return nil
	case faultLatency:
		time.Sleep(c.cfg.Latency)
	}
	if err := c.inner.Put(kind, id, data); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.torn, key)
	delete(c.volatile, key)
	c.mu.Unlock()
	return nil
}

// tornOffset picks where the torn write cuts: anywhere inside the envelope,
// biased nowhere in particular.
func (c *Chaos) tornOffset(payloadLen int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Intn(headerSize + payloadLen)
}

// Get implements Store with read-fault injection.
func (c *Chaos) Get(kind Kind, id string) ([]byte, error) {
	if c.dead() {
		return nil, ErrCrashed
	}
	switch c.rollRead() {
	case faultErr:
		return nil, fmt.Errorf("%w: read error on %s", ErrInjected, recordKey(kind, id))
	case faultLatency:
		time.Sleep(c.cfg.Latency)
	}
	return c.inner.Get(kind, id)
}

// Delete implements Store (no injection: deletes are control-plane).
func (c *Chaos) Delete(kind Kind, id string) error {
	if c.dead() {
		return ErrCrashed
	}
	return c.inner.Delete(kind, id)
}

// List implements Store.
func (c *Chaos) List(kind Kind) ([]string, error) {
	if c.dead() {
		return nil, ErrCrashed
	}
	return c.inner.List(kind)
}

// Probe implements Store.
func (c *Chaos) Probe() error {
	if c.dead() {
		return ErrCrashed
	}
	return c.inner.Probe()
}

// Close implements Store (closing does not close the wrapped backend: the
// torture harness reuses it across simulated process lifetimes).
func (c *Chaos) Close() error { return nil }

// Package buildinfo derives a human-readable build identifier from the
// binary's embedded module and VCS metadata (runtime/debug.ReadBuildInfo) —
// no linker flags, no generated files. Every binary exposes it behind a
// -version flag and the server reports it in /v1/healthz, so an operator can
// tell at a glance what a fleet of daemons and workers is actually running.
package buildinfo

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// Version returns the build identifier: the module version when the binary
// was built from a tagged module, otherwise the VCS revision (short hash,
// "+dirty" when the tree was modified), falling back to "devel" when neither
// is stamped (e.g. `go test` binaries).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	return fromBuildInfo(bi)
}

// fromBuildInfo is the testable core of Version.
func fromBuildInfo(bi *debug.BuildInfo) string {
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	v := bi.Main.Version
	switch {
	case v != "" && v != "(devel)" && v != "devel":
		if rev != "" {
			return fmt.Sprintf("%s (%s%s)", v, rev, modified)
		}
		return v
	case rev != "":
		return rev + modified
	default:
		return "devel"
	}
}

// String renders a one-line banner for a -version flag: binary name, build
// identifier, and the toolchain that compiled it.
func String(binary string) string {
	go_ := "go?"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.GoVersion != "" {
		go_ = bi.GoVersion
	}
	return strings.TrimSpace(fmt.Sprintf("%s %s (%s)", binary, Version(), go_))
}

package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func bi(version string, settings ...debug.BuildSetting) *debug.BuildInfo {
	info := &debug.BuildInfo{}
	info.Main.Version = version
	info.Settings = settings
	return info
}

func TestFromBuildInfo(t *testing.T) {
	rev := debug.BuildSetting{Key: "vcs.revision", Value: "0123456789abcdef0123"}
	dirty := debug.BuildSetting{Key: "vcs.modified", Value: "true"}
	clean := debug.BuildSetting{Key: "vcs.modified", Value: "false"}

	for _, tc := range []struct {
		name string
		in   *debug.BuildInfo
		want string
	}{
		{"nothing stamped", bi(""), "devel"},
		{"devel module, no vcs", bi("(devel)"), "devel"},
		{"vcs only", bi("(devel)", rev, clean), "0123456789ab"},
		{"vcs dirty", bi("(devel)", rev, dirty), "0123456789ab+dirty"},
		{"tagged module", bi("v1.2.3"), "v1.2.3"},
		{"tagged module with vcs", bi("v1.2.3", rev, clean), "v1.2.3 (0123456789ab)"},
		{"tagged dirty", bi("v1.2.3", rev, dirty), "v1.2.3 (0123456789ab+dirty)"},
		{"short revision kept whole", bi("(devel)", debug.BuildSetting{Key: "vcs.revision", Value: "abc123"}), "abc123"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := fromBuildInfo(tc.in); got != tc.want {
				t.Fatalf("fromBuildInfo = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestStringBanner(t *testing.T) {
	s := String("mfbod")
	if !strings.HasPrefix(s, "mfbod ") {
		t.Fatalf("banner %q does not start with the binary name", s)
	}
	if strings.Contains(s, "\n") {
		t.Fatalf("banner %q is not one line", s)
	}
}

//go:build race

package parallel

// RaceEnabled reports whether the binary was built with the race detector.
// Allocation-count tests consult it: the race runtime intentionally defeats
// sync.Pool reuse, so steady-state alloc assertions only hold without -race.
const RaceEnabled = true

package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8, 100} {
		const n = 137
		counts := make([]int64, n)
		ForEach(workers, n, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ran := 0
	ForEach(8, 0, func(int) { ran++ })
	if ran != 0 {
		t.Fatalf("n=0 ran %d tasks", ran)
	}
	ForEach(8, 1, func(i int) { ran += i + 1 })
	if ran != 1 {
		t.Fatalf("n=1 ran wrong task set: %d", ran)
	}
}

func TestForEachWorkerSlotBounds(t *testing.T) {
	const workers, n = 4, 64
	var bad int64
	ForEachWorker(workers, n, func(w, i int) {
		if w < 0 || w >= workers || i < 0 || i >= n {
			atomic.AddInt64(&bad, 1)
		}
	})
	if bad != 0 {
		t.Fatalf("%d tasks saw out-of-range worker slot or index", bad)
	}
}

func TestForEachDeterministicOutputs(t *testing.T) {
	// The canonical usage pattern: task i writes slot i from a derived
	// stream. Any worker count must produce identical output.
	run := func(workers int) []float64 {
		const n = 50
		out := make([]float64, n)
		base := int64(12345)
		ForEach(workers, n, func(i int) {
			rng := rand.New(rand.NewSource(SeedFor(base, uint64(i))))
			out[i] = rng.NormFloat64() + rng.Float64()
		})
		return out
	}
	want := run(1)
	for _, w := range []int{2, 3, 8} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %v, serial %v", w, i, got[i], want[i])
			}
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
			}()
			ForEach(workers, 16, func(i int) {
				if i == 7 {
					panic("task failure")
				}
			})
		}()
	}
}

func TestSplitMix64ReferenceVectors(t *testing.T) {
	// First three outputs of the reference SplitMix64 sequence with seed 0
	// (Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
	// Generators", OOPSLA 2014; also the Java SplittableRandom stream).
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	x := uint64(0) // generator state; SplitMix64 adds the gamma internally
	for i, w := range want {
		if got := SplitMix64(x); got != w {
			t.Fatalf("output %d: got %#x, want %#x", i, got, w)
		}
		x += splitMix64Gamma
	}
}

func TestSeedForStableAndDistinct(t *testing.T) {
	seen := map[int64]uint64{}
	for s := uint64(0); s < 1000; s++ {
		v := SeedFor(42, s)
		if v < 0 {
			t.Fatalf("stream %d: negative seed %d", s, v)
		}
		if v2 := SeedFor(42, s); v2 != v {
			t.Fatalf("stream %d: unstable seed %d vs %d", s, v, v2)
		}
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d collide on seed %d", prev, s, v)
		}
		seen[v] = s
	}
	if SeedFor(42, 0) == SeedFor(43, 0) {
		t.Fatal("different base seeds produced the same stream-0 seed")
	}
}

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d", got)
	}
	if got := Workers(-3); got < 1 {
		t.Fatalf("Workers(-3) = %d", got)
	}
	t.Setenv(EnvWorkers, "6")
	if got := DefaultWorkers(); got != 6 {
		t.Fatalf("DefaultWorkers with %s=6 = %d", EnvWorkers, got)
	}
	t.Setenv(EnvWorkers, "bogus")
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers with bogus env = %d", got)
	}
}

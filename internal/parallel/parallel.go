// Package parallel provides the deterministic worker-pool primitives used by
// every hot path of the library (GP training restarts, acquisition
// maximization, batched posterior prediction).
//
// # Determinism contract
//
// Every helper here guarantees that results are bit-identical regardless of
// the worker count (including the serial Workers=1 path) as long as each task
// i writes only to its own output slot and reads only immutable shared state.
// Work distribution uses an atomic counter, so *which* goroutine runs a task
// is scheduling-dependent — but per-worker scratch must carry no cross-task
// state that can influence a task's output, and reductions are performed by
// the caller in task-index order.
//
// Randomness inside tasks must come from per-task streams derived with
// SeedFor (a SplitMix64 hash of a base seed and the task index), never from a
// shared *rand.Rand: that keeps random draws a pure function of (base seed,
// task index), independent of both GOMAXPROCS and scheduling order.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable that overrides DefaultWorkers —
// CI sets it to force Workers>1 on every code path regardless of the
// runner's core count.
const EnvWorkers = "MFBO_WORKERS"

// DefaultWorkers returns the default worker count: the EnvWorkers override
// when set to a positive integer, otherwise runtime.NumCPU().
func DefaultWorkers() int {
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.NumCPU()
}

// Workers normalizes a requested worker count: n > 0 is honored as given,
// anything else selects DefaultWorkers(). Configs throughout the library use
// 0 for "default" and 1 for "serial".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return DefaultWorkers()
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines.
// With workers <= 1 (or n <= 1) the tasks run inline on the caller's
// goroutine in index order — the reference serial schedule that parallel
// runs must reproduce bit-identically. A panic in any task is re-raised on
// the caller's goroutine after all workers have drained.
func ForEach(workers, n int, fn func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the worker slot exposed: fn(w, i) runs task i
// on worker w ∈ [0, workers). The slot lets callers hand each worker its own
// pre-allocated scratch state (cloned kernels, factorization buffers) without
// locking. Slot 0 is the caller's goroutine on the serial path.
func ForEachWorker(workers, n int, fn func(w, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next int64 = 0
		wg   sync.WaitGroup
		pmu  sync.Mutex
		pval any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if pval == nil {
						pval = r
					}
					pmu.Unlock()
					// Drain remaining tasks so sibling workers exit promptly.
					atomic.StoreInt64(&next, int64(n))
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
}

// splitMix64Gamma is the Weyl-sequence increment of Steele, Lea & Flood's
// SplitMix64 generator.
const splitMix64Gamma = 0x9E3779B97F4A7C15

// SplitMix64 is one step of the SplitMix64 mix function: a high-quality
// 64-bit finalizer used to derive statistically independent seed streams
// from (base, stream-index) pairs.
func SplitMix64(x uint64) uint64 {
	x += splitMix64Gamma
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SeedFor derives the seed of per-task stream `stream` from a base seed.
// The mapping is a pure function — the same (base, stream) always yields the
// same seed, so task-local RNGs are reproducible for any worker count.
func SeedFor(base int64, stream uint64) int64 {
	z := SplitMix64(uint64(base) ^ splitMix64Gamma*(stream+1))
	// Keep seeds positive for APIs that treat negative seeds specially.
	return int64(z &^ (1 << 63))
}

// Package problem defines the black-box optimization problem abstraction
// shared by the optimizer (internal/core), the baselines, the synthetic test
// functions and the circuit testbenches: a constrained minimization problem
// (eq. 1) whose objective and constraints can be evaluated at two fidelity
// levels with different costs.
package problem

import (
	"fmt"
	"math"
)

// Fidelity selects an evaluation precision level.
type Fidelity int

const (
	// Low is the cheap, potentially inaccurate evaluation (short transient,
	// single PVT corner, coarse mesh…).
	Low Fidelity = iota
	// High is the accurate, expensive evaluation the optimizer ultimately
	// cares about.
	High
)

// String implements fmt.Stringer.
func (f Fidelity) String() string {
	switch f {
	case Low:
		return "low"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Fidelity(%d)", int(f))
	}
}

// Evaluation is the outcome of one simulation: the objective to minimize and
// the constraint values (feasible iff every entry is < 0, per eq. 1).
type Evaluation struct {
	Objective   float64
	Constraints []float64
}

// Feasible reports whether all constraints are satisfied.
func (e Evaluation) Feasible() bool {
	for _, c := range e.Constraints {
		if c >= 0 {
			return false
		}
	}
	return true
}

// Violation returns the total constraint violation Σ max(0, c_i).
func (e Evaluation) Violation() float64 {
	s := 0.0
	for _, c := range e.Constraints {
		if c > 0 {
			s += c
		}
	}
	return s
}

// Outputs returns the packed output vector [objective, constraints...],
// the layout surrogate stacks are trained on.
func (e Evaluation) Outputs() []float64 {
	out := make([]float64, 0, 1+len(e.Constraints))
	out = append(out, e.Objective)
	return append(out, e.Constraints...)
}

// Problem is a two-fidelity constrained minimization problem.
type Problem interface {
	// Name identifies the problem in logs and tables.
	Name() string
	// Dim returns the number of design variables.
	Dim() int
	// Bounds returns the design box.
	Bounds() (lo, hi []float64)
	// NumConstraints returns the number of c_i(x) < 0 constraints.
	NumConstraints() int
	// Evaluate runs one simulation of x at fidelity f.
	Evaluate(x []float64, f Fidelity) Evaluation
	// Cost returns the evaluation cost at fidelity f, in arbitrary units.
	// Reported simulation counts are normalized by Cost(High).
	Cost(f Fidelity) float64
}

// EquivalentSims converts raw evaluation counts into the paper's metric:
// the number of high-fidelity simulations with the same total cost.
func EquivalentSims(p Problem, nLow, nHigh int) float64 {
	return (float64(nLow)*p.Cost(Low) + float64(nHigh)*p.Cost(High)) / p.Cost(High)
}

// CheckPoint validates that x is finite and matches the problem dimension;
// optimizer internals call it before spending a simulation.
func CheckPoint(p Problem, x []float64) error {
	if len(x) != p.Dim() {
		return fmt.Errorf("problem %s: point dim %d != %d", p.Name(), len(x), p.Dim())
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("problem %s: coordinate %d is %v", p.Name(), i, v)
		}
	}
	return nil
}

// Better reports whether candidate a improves on b under the standard
// constrained comparison: a feasible point beats any infeasible point;
// two feasible points compare by objective; two infeasible points compare
// by total violation.
func Better(a, b Evaluation) bool {
	af, bf := a.Feasible(), b.Feasible()
	switch {
	case af && !bf:
		return true
	case !af && bf:
		return false
	case af && bf:
		return a.Objective < b.Objective
	default:
		return a.Violation() < b.Violation()
	}
}

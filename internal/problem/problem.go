// Package problem defines the black-box optimization problem abstraction
// shared by the optimizer (internal/core), the baselines, the synthetic test
// functions and the circuit testbenches: a constrained minimization problem
// (eq. 1) whose objective and constraints can be evaluated at two fidelity
// levels with different costs.
package problem

import (
	"context"
	"fmt"
	"math"
)

// Fidelity selects an evaluation precision level.
type Fidelity int

const (
	// Low is the cheap, potentially inaccurate evaluation (short transient,
	// single PVT corner, coarse mesh…).
	Low Fidelity = iota
	// High is the accurate, expensive evaluation the optimizer ultimately
	// cares about.
	High
)

// String implements fmt.Stringer. Values beyond High are intermediate ladder
// rungs (see internal/fidelity); without the ladder in hand the best generic
// label is the rung index. Note that on a K>2 problem the top rung is
// Fidelity(K-1), not High — use fidelity.Ladder.Name for ladder-aware labels.
func (f Fidelity) String() string {
	switch f {
	case Low:
		return "low"
	case High:
		return "high"
	default:
		return fmt.Sprintf("rung%d", int(f))
	}
}

// Evaluation is the outcome of one simulation: the objective to minimize and
// the constraint values (feasible iff every entry is < 0, per eq. 1).
type Evaluation struct {
	Objective   float64
	Constraints []float64
	// Failed marks a synthesized penalty standing in for a simulation that
	// could not produce a result (crash, panic, timeout, non-finite output).
	// Failed evaluations are charged against the budget but excluded from
	// surrogate training and never considered feasible. The zero value
	// (false) preserves the semantics of every pre-existing construction
	// site.
	Failed bool `json:",omitempty"`
}

// Feasible reports whether all constraints are satisfied. A failed
// evaluation is never feasible.
func (e Evaluation) Feasible() bool {
	if e.Failed {
		return false
	}
	for _, c := range e.Constraints {
		if c >= 0 {
			return false
		}
	}
	return true
}

// IsFinite reports whether the objective and every constraint are finite
// (neither NaN nor ±Inf) — the precondition for feeding an evaluation to the
// surrogate stack.
func (e Evaluation) IsFinite() bool {
	if math.IsNaN(e.Objective) || math.IsInf(e.Objective, 0) {
		return false
	}
	for _, c := range e.Constraints {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return false
		}
	}
	return true
}

// Violation returns the total constraint violation Σ max(0, c_i).
func (e Evaluation) Violation() float64 {
	s := 0.0
	for _, c := range e.Constraints {
		if c > 0 {
			s += c
		}
	}
	return s
}

// Outputs returns the packed output vector [objective, constraints...],
// the layout surrogate stacks are trained on.
func (e Evaluation) Outputs() []float64 {
	out := make([]float64, 0, 1+len(e.Constraints))
	out = append(out, e.Objective)
	return append(out, e.Constraints...)
}

// Problem is a two-fidelity constrained minimization problem.
type Problem interface {
	// Name identifies the problem in logs and tables.
	Name() string
	// Dim returns the number of design variables.
	Dim() int
	// Bounds returns the design box.
	Bounds() (lo, hi []float64)
	// NumConstraints returns the number of c_i(x) < 0 constraints.
	NumConstraints() int
	// Evaluate runs one simulation of x at fidelity f.
	Evaluate(x []float64, f Fidelity) Evaluation
	// Cost returns the evaluation cost at fidelity f, in arbitrary units.
	// Reported simulation counts are normalized by Cost(High).
	Cost(f Fidelity) float64
}

// PenaltyObjective is the canonical huge-but-finite objective assigned to
// failed evaluations. It is large enough to lose every comparison yet finite,
// so downstream arithmetic (tables, traces) stays well-defined.
const PenaltyObjective = 1e9

// PenaltyEvaluation returns the well-defined infeasible stand-in for a failed
// simulation on a problem with nc constraints: a PenaltyObjective objective,
// every constraint maximally violated, and the Failed marker set.
func PenaltyEvaluation(nc int) Evaluation {
	cons := make([]float64, nc)
	for i := range cons {
		cons[i] = PenaltyObjective
	}
	return Evaluation{Objective: PenaltyObjective, Constraints: cons, Failed: true}
}

// RichEvaluator is an optional extension of Problem for implementations that
// can report evaluation failure explicitly instead of encoding it in penalty
// values. Wrappers such as robust.Wrap implement it; the optimizer prefers it
// when available so that failed simulations can be excluded from surrogate
// training. Existing Problem implementations keep compiling unchanged.
type RichEvaluator interface {
	// EvaluateRich runs one simulation; a non-nil error means the simulation
	// failed and the returned Evaluation is a penalty stand-in (Failed set).
	EvaluateRich(x []float64, f Fidelity) (Evaluation, error)
}

// ContextEvaluator is an optional extension of Problem for implementations
// that honor cancellation and per-evaluation deadlines. robust.SafeProblem
// implements it; core.OptimizeCtx threads its context through when available.
type ContextEvaluator interface {
	EvaluateCtx(ctx context.Context, x []float64, f Fidelity) (Evaluation, error)
}

// EvaluateRich evaluates p at x, using the RichEvaluator fast path when p
// implements it and falling back to the plain Evaluate otherwise. In the
// fallback the evaluation is sanity-checked: non-finite outputs are converted
// into a penalty evaluation with an explanatory error.
func EvaluateRich(p Problem, x []float64, f Fidelity) (Evaluation, error) {
	if re, ok := p.(RichEvaluator); ok {
		return re.EvaluateRich(x, f)
	}
	e := p.Evaluate(x, f)
	if !e.IsFinite() {
		return PenaltyEvaluation(p.NumConstraints()),
			fmt.Errorf("problem %s: non-finite evaluation at fidelity %v", p.Name(), f)
	}
	return e, nil
}

// MultiFidelity is an optional extension of Problem for implementations with
// more than two fidelity rungs. Evaluate and Cost must accept every
// Fidelity(k) for k in [0, NumFidelities()); rung 0 is the cheapest and rung
// NumFidelities()-1 is the full-accuracy target. Two-fidelity problems need
// not implement it.
type MultiFidelity interface {
	NumFidelities() int
}

// Unwrapper is implemented by problem wrappers (robust.SafeProblem,
// fidelity.TwoFidelityView) that decorate an inner problem. NumFidelities
// follows the chain so wrapping never hides a ladder.
type Unwrapper interface {
	Unwrap() Problem
}

// NumFidelities reports the number of fidelity rungs p exposes, following
// wrapper chains; plain problems have the classic two.
func NumFidelities(p Problem) int {
	for p != nil {
		if mf, ok := p.(MultiFidelity); ok {
			if k := mf.NumFidelities(); k >= 2 {
				return k
			}
			return 2
		}
		u, ok := p.(Unwrapper)
		if !ok {
			break
		}
		p = u.Unwrap()
	}
	return 2
}

// EquivalentSims converts raw evaluation counts into the paper's metric:
// the number of high-fidelity simulations with the same total cost.
func EquivalentSims(p Problem, nLow, nHigh int) float64 {
	return (float64(nLow)*p.Cost(Low) + float64(nHigh)*p.Cost(High)) / p.Cost(High)
}

// CheckPoint validates that x is finite and matches the problem dimension;
// optimizer internals call it before spending a simulation.
func CheckPoint(p Problem, x []float64) error {
	if len(x) != p.Dim() {
		return fmt.Errorf("problem %s: point dim %d != %d", p.Name(), len(x), p.Dim())
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("problem %s: coordinate %d is %v", p.Name(), i, v)
		}
	}
	return nil
}

// Better reports whether candidate a improves on b under the standard
// constrained comparison: a feasible point beats any infeasible point;
// two feasible points compare by objective; two infeasible points compare
// by total violation.
func Better(a, b Evaluation) bool {
	af, bf := a.Feasible(), b.Feasible()
	switch {
	case af && !bf:
		return true
	case !af && bf:
		return false
	case af && bf:
		return a.Objective < b.Objective
	default:
		return a.Violation() < b.Violation()
	}
}

package problem

import (
	"math"
	"testing"
)

type stubProblem struct{}

func (stubProblem) Name() string               { return "stub" }
func (stubProblem) Dim() int                   { return 2 }
func (stubProblem) Bounds() (lo, hi []float64) { return []float64{0, 0}, []float64{1, 1} }
func (stubProblem) NumConstraints() int        { return 1 }
func (stubProblem) Evaluate(x []float64, f Fidelity) Evaluation {
	return Evaluation{Objective: x[0], Constraints: []float64{x[1] - 0.5}}
}
func (stubProblem) Cost(f Fidelity) float64 {
	if f == Low {
		return 0.1
	}
	return 2
}

func TestFidelityString(t *testing.T) {
	if Low.String() != "low" || High.String() != "high" {
		t.Fatal("fidelity names wrong")
	}
	if Fidelity(9).String() == "" {
		t.Fatal("unknown fidelity should still render")
	}
}

func TestEvaluationFeasible(t *testing.T) {
	if !(Evaluation{Constraints: []float64{-1, -0.001}}).Feasible() {
		t.Fatal("all-negative constraints should be feasible")
	}
	if (Evaluation{Constraints: []float64{-1, 0}}).Feasible() {
		t.Fatal("zero constraint violates strict c < 0")
	}
	if !(Evaluation{}).Feasible() {
		t.Fatal("unconstrained evaluation is feasible")
	}
}

func TestEvaluationViolation(t *testing.T) {
	e := Evaluation{Constraints: []float64{-1, 2, 0.5}}
	if e.Violation() != 2.5 {
		t.Fatalf("violation = %v, want 2.5", e.Violation())
	}
	if (Evaluation{Constraints: []float64{-1}}).Violation() != 0 {
		t.Fatal("feasible violation should be 0")
	}
}

func TestOutputsLayout(t *testing.T) {
	e := Evaluation{Objective: 7, Constraints: []float64{1, 2}}
	out := e.Outputs()
	if len(out) != 3 || out[0] != 7 || out[1] != 1 || out[2] != 2 {
		t.Fatalf("Outputs = %v", out)
	}
}

func TestEquivalentSims(t *testing.T) {
	p := stubProblem{}
	// 20 low at 0.1 + 3 high at 2 = 8 cost units = 4 equivalent high sims.
	if got := EquivalentSims(p, 20, 3); math.Abs(got-4) > 1e-12 {
		t.Fatalf("EquivalentSims = %v, want 4", got)
	}
}

func TestCheckPoint(t *testing.T) {
	p := stubProblem{}
	if err := CheckPoint(p, []float64{0.5, 0.5}); err != nil {
		t.Fatalf("valid point rejected: %v", err)
	}
	if err := CheckPoint(p, []float64{0.5}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if err := CheckPoint(p, []float64{math.NaN(), 0}); err == nil {
		t.Fatal("NaN accepted")
	}
	if err := CheckPoint(p, []float64{math.Inf(1), 0}); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestBetterOrdering(t *testing.T) {
	feasGood := Evaluation{Objective: 1, Constraints: []float64{-1}}
	feasBad := Evaluation{Objective: 2, Constraints: []float64{-1}}
	infeasSmall := Evaluation{Objective: 0, Constraints: []float64{0.5}}
	infeasBig := Evaluation{Objective: 0, Constraints: []float64{5}}

	if !Better(feasGood, feasBad) || Better(feasBad, feasGood) {
		t.Fatal("feasible ordering by objective broken")
	}
	if !Better(feasBad, infeasSmall) {
		t.Fatal("feasible should beat infeasible regardless of objective")
	}
	if Better(infeasSmall, feasGood) {
		t.Fatal("infeasible should not beat feasible")
	}
	if !Better(infeasSmall, infeasBig) {
		t.Fatal("infeasible ordering by violation broken")
	}
}

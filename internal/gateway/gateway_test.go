package gateway_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/gateway"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// replica is one in-process backend.
type replica struct {
	srv *server.Server
	ts  *httptest.Server
}

// newCluster boots n sharded replicas over one shared store plus a gateway
// fronting them.
func newCluster(t *testing.T, n int, ttl time.Duration) ([]replica, *gateway.Gateway, *httptest.Server) {
	t.Helper()
	store := storage.NewMem(storage.MemConfig{})
	reps := make([]replica, n)
	urls := make([]string, n)
	for i := range reps {
		id := string(rune('a' + i))
		srv, err := server.New(server.Config{Store: store, ReplicaID: "r" + id, OwnershipTTL: ttl})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		reps[i] = replica{srv: srv, ts: ts}
		urls[i] = ts.URL
	}
	gw, err := gateway.New(gateway.Config{
		Replicas:    urls,
		Ring:        shard.RingConfig{Seed: 99},
		HealthEvery: 50 * time.Millisecond,
		RetryBudget: 10 * time.Second,
		Telemetry:   telemetry.NewRecorder(nil, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw)
	t.Cleanup(func() {
		gts.Close()
		gw.Close()
		for _, r := range reps {
			r.ts.Close()
			_ = r.srv.Close()
		}
	})
	return reps, gw, gts
}

func gwPost(t *testing.T, ts *httptest.Server, path string, in, out any) int {
	t.Helper()
	body, _ := json.Marshal(in)
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func gwGet(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func sessionReq(id string, seed int64) api.CreateSessionRequest {
	return api.CreateSessionRequest{
		ID: id, Problem: "forrester", Seed: seed, Budget: 4,
		InitLow: 8, InitHigh: 4, MSPStarts: 4, MSPLocalIter: 15, GPMaxIter: 30,
	}
}

// TestGatewayRoutesAndServes: sessions created through the gateway land on
// exactly one replica each, and every subsequent request reaches it — the
// client never sees a wrong_owner even though it talks only to the gateway.
func TestGatewayRoutesAndServes(t *testing.T) {
	reps, _, gts := newCluster(t, 3, time.Minute)
	ids := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	for i, id := range ids {
		var info api.SessionInfo
		if code := gwPost(t, gts, "/v1/sessions", sessionReq(id, int64(i)), &info); code != http.StatusCreated {
			t.Fatalf("create %s: %d", id, code)
		}
		if info.ID != id {
			t.Fatalf("create %s echoed %q", id, info.ID)
		}
	}
	for _, id := range ids {
		var st api.StatusReply
		if code := gwGet(t, gts, "/v1/sessions/"+id+"/status", &st); code != http.StatusOK {
			t.Fatalf("status %s: %d", id, code)
		}
		if st.ID != id {
			t.Fatalf("status %s answered for %q", id, st.ID)
		}
	}
	// Each session is resident on exactly one replica.
	for _, id := range ids {
		owners := 0
		for _, r := range reps {
			var reply api.SessionsReply
			resp, err := r.ts.Client().Get(r.ts.URL + "/v1/sessions")
			if err != nil {
				t.Fatal(err)
			}
			_ = json.NewDecoder(resp.Body).Decode(&reply)
			resp.Body.Close()
			for _, s := range reply.Sessions {
				if s == id {
					owners++
				}
			}
		}
		if owners != 1 {
			t.Fatalf("session %s resident on %d replicas, want 1", id, owners)
		}
	}
	// The merged gateway listing sees them all.
	var list api.SessionsReply
	if code := gwGet(t, gts, "/v1/sessions", &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(list.Sessions) != len(ids) {
		t.Fatalf("merged list %v, want %d sessions", list.Sessions, len(ids))
	}
}

// TestGatewayGeneratesID: an anonymous create gets its ID minted by the
// gateway (placement needs the ID before routing).
func TestGatewayGeneratesID(t *testing.T) {
	_, _, gts := newCluster(t, 2, time.Minute)
	req := sessionReq("", 1)
	var info api.SessionInfo
	if code := gwPost(t, gts, "/v1/sessions", req, &info); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if info.ID == "" {
		t.Fatal("no session ID assigned")
	}
	var st api.StatusReply
	if code := gwGet(t, gts, "/v1/sessions/"+info.ID+"/status", &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
}

// TestGatewayFollowsWrongOwner: a session claimed directly on one replica
// (bypassing the gateway, so likely off-ring) is still reachable through the
// gateway — the wrong_owner reply's owner hint redirects the forward.
func TestGatewayFollowsWrongOwner(t *testing.T) {
	reps, _, gts := newCluster(t, 3, time.Minute)
	// Create on every replica directly so at least one placement disagrees
	// with the ring for some session.
	for i, r := range reps {
		id := "direct-" + string(rune('0'+i))
		body, _ := json.Marshal(sessionReq(id, int64(i)))
		resp, err := r.ts.Client().Post(r.ts.URL+"/v1/sessions", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("direct create on replica %d: %d", i, resp.StatusCode)
		}
	}
	for i := range reps {
		id := "direct-" + string(rune('0'+i))
		var st api.StatusReply
		if code := gwGet(t, gts, "/v1/sessions/"+id+"/status", &st); code != http.StatusOK {
			t.Fatalf("gateway status %s: %d", id, code)
		}
	}
}

// TestGatewayHealthView: the gateway health endpoint reports per-replica
// state and drops dead replicas from the ring after a sweep.
func TestGatewayHealthView(t *testing.T) {
	reps, _, gts := newCluster(t, 3, time.Minute)
	var h api.GatewayHealthReply
	if code := gwGet(t, gts, "/v1/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if !h.OK || len(h.Replicas) != 3 || len(h.Ring) != 3 {
		t.Fatalf("health = %+v", h)
	}
	// Kill one replica; the sweep notices.
	reps[2].srv.Kill()
	reps[2].ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		gwGet(t, gts, "/v1/healthz", &h)
		healthy := 0
		for _, r := range h.Replicas {
			if r.Healthy {
				healthy++
			}
		}
		if healthy == 2 && len(h.Ring) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never noticed the dead replica: %+v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGatewayDispatchEndpoints: the worker-facing lease/report/heartbeat
// endpoints ride the ring through the gateway, heartbeats routed by the
// session embedded in the lease ID.
func TestGatewayDispatchEndpoints(t *testing.T) {
	_, _, gts := newCluster(t, 3, time.Minute)
	var info api.SessionInfo
	if code := gwPost(t, gts, "/v1/sessions", sessionReq("work", 3), &info); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	var grant api.LeaseReply
	if code := gwPost(t, gts, "/v1/sessions/work/lease", api.LeaseRequest{Worker: "w1"}, &grant); code != http.StatusOK {
		t.Fatalf("lease: %d", code)
	}
	if grant.LeaseID == "" {
		t.Fatalf("no lease granted: %+v", grant)
	}
	var hb api.HeartbeatReply
	if code := gwPost(t, gts, "/v1/leases/"+grant.LeaseID+"/heartbeat", api.HeartbeatRequest{Worker: "w1"}, &hb); code != http.StatusOK {
		t.Fatalf("heartbeat: %d", code)
	}
	if hb.DeadlineUnixMs == 0 {
		t.Fatal("heartbeat extended nothing")
	}
	var rep api.ReportReply
	code := gwPost(t, gts, "/v1/sessions/work/report", api.ReportRequest{
		LeaseID: grant.LeaseID, SuggestionID: grant.SuggestionID, Objective: 1.5,
	}, &rep)
	if code != http.StatusOK {
		t.Fatalf("report: %d", code)
	}
	// An opaque (foreign-format) lease ID falls back to broadcast and gets an
	// honest lease_expired from some replica rather than a routing error.
	var er api.ErrorReply
	code = gwPost(t, gts, "/v1/leases/not-a-real-lease/heartbeat", api.HeartbeatRequest{}, &er)
	if code != http.StatusConflict || er.Code != api.CodeLeaseExpired {
		t.Fatalf("broadcast heartbeat: %d %+v", code, er)
	}
}

// TestGatewayMetricsExposition: the mfbo_gateway_* series exist in the
// Prometheus exposition (CI's gateway-smoke job additionally runs promlint
// over the live endpoint).
func TestGatewayMetricsExposition(t *testing.T) {
	rec := telemetry.NewRecorder(nil, 0)
	store := storage.NewMem(storage.MemConfig{})
	srv, err := server.New(server.Config{Store: store, ReplicaID: "ra"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); _ = srv.Close() }()
	gw, err := gateway.New(gateway.Config{
		Replicas:  []string{ts.URL},
		Telemetry: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gts := httptest.NewServer(gw)
	defer gts.Close()
	var info api.SessionInfo
	if code := gwPost(t, gts, "/v1/sessions", sessionReq("m", 1), &info); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	var sb strings.Builder
	if err := rec.Metrics.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"mfbo_gateway_requests_total",
		"mfbo_gateway_healthy_replicas",
		"mfbo_gateway_ring_size",
		"mfbo_gateway_proxy_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition lacks %s:\n%s", want, text)
		}
	}
}

// TestGatewayTraceInjection checks the distributed-tracing contract of the
// routing layer: every forwarded attempt — the wrong_owner follow-up
// included — carries the same W3C traceparent, so the replica spans of one
// routed request all join the gateway's root span.
func TestGatewayTraceInjection(t *testing.T) {
	var mu sync.Mutex
	seen := map[string][]string{} // replica id -> traceparent per forwarded request

	mkReplica := func(id string, h http.HandlerFunc) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(api.HealthReply{OK: true, ReplicaID: id})
		})
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			seen[id] = append(seen[id], r.Header.Get("traceparent"))
			mu.Unlock()
			h(w, r)
		})
		return httptest.NewServer(mux)
	}
	// ra refuses everything as wrong_owner naming rb; rb serves.
	ra := mkReplica("ra", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(api.StatusWrongOwner)
		_ = json.NewEncoder(w).Encode(api.ErrorReply{Error: "not mine", Code: api.CodeWrongOwner, Owner: "rb"})
	})
	defer ra.Close()
	rb := mkReplica("rb", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(api.StatusReply{})
	})
	defer rb.Close()

	ring := telemetry.NewRing(128)
	rec := telemetry.NewRecorder(ring, 1)
	rec.SetService("gateway")
	gw, err := gateway.New(gateway.Config{
		Replicas:    []string{ra.URL, rb.URL},
		Ring:        shard.RingConfig{Seed: 7},
		HealthEvery: 50 * time.Millisecond,
		RetryBudget: 5 * time.Second,
		Telemetry:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gts := httptest.NewServer(gw)
	defer gts.Close()

	// Find a session the ring routes to ra first: its request must bounce
	// ra → rb with one shared traceparent.
	bounced := false
	for i := 0; i < 64 && !bounced; i++ {
		id := fmt.Sprintf("s%d", i)
		if code := gwGet(t, gts, "/v1/sessions/"+id+"/status", nil); code != http.StatusOK {
			t.Fatalf("status(%s) = %d", id, code)
		}
		mu.Lock()
		bounced = len(seen["ra"]) > 0
		mu.Unlock()
	}
	if !bounced {
		t.Fatal("no session routed to ra; cannot exercise the wrong_owner follow-up")
	}
	mu.Lock()
	defer mu.Unlock()
	first := seen["ra"][len(seen["ra"])-1]
	follow := seen["rb"][len(seen["rb"])-1]
	tc, ok := telemetry.ParseTraceparent(first)
	if !ok {
		t.Fatalf("first attempt carried unparseable traceparent %q", first)
	}
	if follow != first {
		t.Fatalf("wrong_owner follow-up carried %q, want the original %q", follow, first)
	}

	// The routing episode emitted exactly one gateway span per request, on
	// the same trace the replicas saw.
	found := false
	for _, ev := range ring.Snapshot() {
		if ev.Span == nil || ev.Span.Trace != tc.TraceID() {
			continue
		}
		found = true
		if ev.Span.Name != "gateway.status" {
			t.Fatalf("span %q on the routed trace", ev.Span.Name)
		}
		if ev.Span.Attrs["retries"] < 1 {
			t.Fatalf("bounced request recorded %v retries", ev.Span.Attrs["retries"])
		}
	}
	if !found {
		t.Fatalf("no gateway span emitted for trace %s", tc.TraceID())
	}
}

// Package gateway is the stateless HTTP front of a sharded deployment: it
// routes every /v1/sessions/* request (dispatch lease/report/heartbeat
// included) to the replica that owns the session, by consistent-hash ring
// lookup over the healthy-replica set.
//
// The gateway holds no session state and makes no placement decisions of its
// own — the ring is a pure function of (seed, healthy replicas, session ID),
// so any number of gateways route identically without coordination, and the
// ownership leases of internal/shard remain the single safety interlock. The
// gateway's job is liveness: it health-checks replicas, learns their
// self-reported IDs, rebuilds the ring as membership changes, and absorbs
// the two transients of a moving deployment so clients rarely see them:
//
//   - a dead replica (connection refused, 502/503/504): marked suspect on
//     the spot, the request retries against the ring successors;
//   - ownership movement (wrong_owner, HTTP 421): the reply names the owner
//     and how long its lease could still hold, so the gateway re-routes —
//     to the named owner when it is routable, otherwise back off and
//     re-resolve until the lease expires and a successor claims.
//
// Both retries burn one shared per-request budget (Config.RetryBudget);
// when it runs out the last upstream answer is relayed as-is, so a client
// still sees an honest wrong_owner/503 rather than a gateway timeout shape.
package gateway

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/buildinfo"
	"repro/internal/dispatch"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// Config tunes a Gateway.
type Config struct {
	// Replicas are the base URLs of the backend replicas (required,
	// e.g. "http://10.0.0.1:8932"). Identities are learned from each
	// replica's /v1/healthz, not configured.
	Replicas []string
	// Ring tunes the consistent-hash ring. Ring.Seed must match across every
	// gateway of one deployment (replicas don't hash; they fence by lease).
	Ring shard.RingConfig
	// HealthEvery is the replica health-check period (default 500ms).
	HealthEvery time.Duration
	// HealthTimeout bounds one health probe (default HealthEvery, capped 2s).
	HealthTimeout time.Duration
	// RetryBudget bounds the total time one request may spend retrying
	// across dead replicas and ownership movement (default 15s). It should
	// comfortably exceed the deployment's ownership-lease TTL, or failover
	// mid-request surfaces to clients as wrong_owner.
	RetryBudget time.Duration
	// Client performs the proxied requests (default: http.Client with no
	// overall timeout — suggests may legitimately wait on surrogate fits).
	Client *http.Client
	// Telemetry, when non-nil, registers the mfbo_gateway_* metrics into its
	// registry.
	Telemetry *telemetry.Recorder
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// replicaState is the gateway's live view of one backend.
type replicaState struct {
	url     string
	id      string // self-reported; "" until first successful probe
	healthy bool
}

// Gateway routes requests to session owners. Safe for concurrent use.
type Gateway struct {
	cfg     Config
	ring    *shard.Ring
	client  *http.Client
	mux     *http.ServeMux
	met     *gatewayMetrics
	tracer  *telemetry.Tracer
	started time.Time

	mu       sync.RWMutex
	replicas []*replicaState // configured order
	byID     map[string]*replicaState

	stop chan struct{}
	done chan struct{}
}

type gatewayMetrics struct {
	retries    *telemetry.Counter
	wrongOwner *telemetry.Counter
	suspects   *telemetry.Counter
	proxySecs  *telemetry.Histogram
	reqTotals  *telemetry.CounterVec
}

func newGatewayMetrics(reg *telemetry.Registry, g *Gateway) *gatewayMetrics {
	if reg == nil {
		return nil
	}
	m := &gatewayMetrics{
		retries:    reg.Counter("mfbo_gateway_retries_total", "forwards retried against another replica (dead backend or ownership movement)"),
		wrongOwner: reg.Counter("mfbo_gateway_wrong_owner_total", "wrong_owner replies received from replicas while routing"),
		suspects:   reg.Counter("mfbo_gateway_replica_suspected_total", "replicas marked suspect after a failed forward"),
		proxySecs:  reg.Histogram("mfbo_gateway_proxy_seconds", "end-to-end proxied request latency", nil),
		reqTotals:  reg.CounterVec("mfbo_gateway_requests_total", "requests routed by the gateway, by route and upstream status code", "route", "code"),
	}
	reg.GaugeFunc("mfbo_gateway_healthy_replicas", "backend replicas currently passing health checks", func() float64 {
		g.mu.RLock()
		defer g.mu.RUnlock()
		n := 0
		for _, r := range g.replicas {
			if r.healthy {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("mfbo_gateway_ring_size", "replicas on the routing ring", func() float64 {
		return float64(g.ring.Size())
	})
	return m
}

func (m *gatewayMetrics) request(route string, code int, dur time.Duration) {
	if m == nil {
		return
	}
	m.reqTotals.With(route, strconv.Itoa(code)).Inc()
	m.proxySecs.Observe(dur.Seconds())
}

// New builds the gateway and runs one synchronous health sweep so routing
// works as soon as it returns; the background checker keeps the view fresh
// until Close.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("gateway: at least one replica URL is required")
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = 500 * time.Millisecond
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = cfg.HealthEvery
		if cfg.HealthTimeout > 2*time.Second {
			cfg.HealthTimeout = 2 * time.Second
		}
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 15 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	g := &Gateway{
		cfg:     cfg,
		ring:    shard.NewRing(cfg.Ring),
		client:  cfg.Client,
		started: time.Now(),
		byID:    make(map[string]*replicaState),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	seen := make(map[string]bool)
	for _, u := range cfg.Replicas {
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		g.replicas = append(g.replicas, &replicaState{url: u})
	}
	if rec := cfg.Telemetry; rec != nil {
		g.met = newGatewayMetrics(rec.Registry(), g)
		g.tracer = rec.Tracer
	}
	g.sweep()
	go g.checker()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", g.handleCreate)
	mux.HandleFunc("GET /v1/sessions", g.handleList)
	mux.HandleFunc("/v1/sessions/{id}", g.handleSession)
	mux.HandleFunc("/v1/sessions/{id}/{verb}", g.handleSession)
	mux.HandleFunc("POST /v1/leases/{id}/heartbeat", g.handleHeartbeat)
	mux.HandleFunc("GET /v1/problems", g.handleProblems)
	mux.HandleFunc("GET /v1/healthz", g.handleHealth)
	g.mux = mux
	return g, nil
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Close stops the health checker.
func (g *Gateway) Close() {
	select {
	case <-g.stop:
		return
	default:
	}
	close(g.stop)
	<-g.done
}

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// ---- health view ----

func (g *Gateway) checker() {
	defer close(g.done)
	tick := time.NewTicker(g.cfg.HealthEvery)
	defer tick.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-tick.C:
			g.sweep()
		}
	}
}

// sweep probes every replica once and rebuilds the ring from the healthy set.
func (g *Gateway) sweep() {
	type result struct {
		r       *replicaState
		id      string
		healthy bool
	}
	g.mu.RLock()
	reps := append([]*replicaState(nil), g.replicas...)
	g.mu.RUnlock()
	results := make([]result, len(reps))
	var wg sync.WaitGroup
	for i, r := range reps {
		wg.Add(1)
		go func(i int, r *replicaState) {
			defer wg.Done()
			id, ok := g.probe(r.url)
			results[i] = result{r: r, id: id, healthy: ok}
		}(i, r)
	}
	wg.Wait()

	g.mu.Lock()
	for _, res := range results {
		if res.id != "" {
			res.r.id = res.id
			g.byID[res.id] = res.r
		}
		res.r.healthy = res.healthy
	}
	g.rebuildRingLocked()
	g.mu.Unlock()
}

// probe health-checks one replica; the ID is returned even from degraded
// (503) replies so the gateway can still name replicas it won't route to.
func (g *Gateway) probe(url string) (id string, healthy bool) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/healthz", nil)
	if err != nil {
		return "", false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	var h api.HealthReply
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h) != nil {
		return "", false
	}
	return h.ReplicaID, resp.StatusCode == http.StatusOK && h.OK
}

// rebuildRingLocked recomputes the routing ring from the healthy replicas
// that have reported an identity. Callers hold g.mu.
func (g *Gateway) rebuildRingLocked() {
	ids := make([]string, 0, len(g.replicas))
	for _, r := range g.replicas {
		if r.healthy && r.id != "" {
			ids = append(ids, r.id)
		}
	}
	g.ring.SetReplicas(ids)
}

// suspect marks a replica unroutable after a failed forward, without waiting
// for the next health sweep (which will rehabilitate it once it answers).
func (g *Gateway) suspect(url string) {
	g.mu.Lock()
	for _, r := range g.replicas {
		if r.url == url && r.healthy {
			r.healthy = false
			if g.met != nil {
				g.met.suspects.Inc()
			}
			g.logf("gateway: replica %s (%s) marked suspect", r.id, url)
		}
	}
	g.rebuildRingLocked()
	g.mu.Unlock()
}

// urlOf resolves a replica ID to its base URL if currently routable.
func (g *Gateway) urlOf(id string) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.byID[id]
	if !ok || !r.healthy {
		return "", false
	}
	return r.url, true
}

// healthyURLs returns the routable replica base URLs, configured order.
func (g *Gateway) healthyURLs() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	urls := make([]string, 0, len(g.replicas))
	for _, r := range g.replicas {
		if r.healthy {
			urls = append(urls, r.url)
		}
	}
	return urls
}

// ownerURL resolves the session's preferred routable replica: the ring
// owner when routable, else the first routable ring successor.
func (g *Gateway) ownerURL(sessionID string) (string, bool) {
	for _, id := range g.ring.Owners(sessionID, g.ring.Size()) {
		if url, ok := g.urlOf(id); ok {
			return url, true
		}
	}
	// Ring empty (no identified healthy replica): any healthy URL.
	if urls := g.healthyURLs(); len(urls) > 0 {
		return urls[0], true
	}
	return "", false
}

// ---- forwarding ----

// upstream is one relayed reply.
type upstream struct {
	code   int
	header http.Header
	body   []byte
}

// tryOnce forwards the request body to one replica, stamping tc as the W3C
// traceparent when valid — every attempt, wrong_owner follow-ups included,
// carries the same trace so the replica-side spans join it. err != nil means
// the replica was unreachable (transport-level) — retryable against another.
func (g *Gateway) tryOnce(ctx context.Context, method, url, path, query, contentType string, body []byte, tc telemetry.TraceContext) (*upstream, error) {
	full := url + path
	if query != "" {
		full += "?" + query
	}
	req, err := http.NewRequestWithContext(ctx, method, full, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	tc.Inject(req.Header)
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &upstream{code: resp.StatusCode, header: resp.Header, body: data}, nil
}

// retryableStatus are upstream codes that mean "this replica cannot serve
// anyone right now" — worth a different replica, unlike e.g. a 409.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

// startSpan begins the request's span: joining the caller's trace when the
// inbound request already carries a traceparent, else a locally sampled root
// — the gateway is where most fleet traces are born. May return nil (tracing
// off or unsampled); every use below is nil-safe.
func (g *Gateway) startSpan(r *http.Request, name string) *telemetry.Span {
	if tc, ok := telemetry.Extract(r.Header); ok {
		return g.tracer.StartRemote(name, tc)
	}
	if g.tracer.Enabled() {
		return g.tracer.Start(name)
	}
	return nil
}

// forwardSession routes one session-keyed request: ring owner first, then
// wrong_owner redirects and dead-replica failover until the retry budget
// runs out, at which point the last upstream reply (or 503) is relayed.
// The whole routing episode is one span; every forward attempt carries its
// trace context so replica spans assemble under it.
func (g *Gateway) forwardSession(w http.ResponseWriter, r *http.Request, route, sessionID string, body []byte) {
	start := time.Now()
	span := g.startSpan(r, "gateway."+route)
	tc := span.Context()
	retries := 0
	finish := func(code int) {
		span.Attr("code", float64(code))
		span.Attr("retries", float64(retries))
		span.End()
		g.met.request(route, code, time.Since(start))
	}
	deadline := start.Add(g.cfg.RetryBudget)
	var last *upstream
	target, ok := g.ownerURL(sessionID)
	for time.Now().Before(deadline) {
		if !ok {
			// No routable replica at all right now: wait for the health
			// sweep to find one rather than failing fast mid-failover.
			if !g.sleep(r.Context(), g.cfg.HealthEvery) {
				finish(http.StatusBadGateway)
				return
			}
			target, ok = g.ownerURL(sessionID)
			continue
		}
		up, err := g.tryOnce(r.Context(), r.Method, target, r.URL.Path, r.URL.RawQuery, r.Header.Get("Content-Type"), body, tc)
		switch {
		case err != nil:
			// Replica gone mid-request: suspect it and fail over. The
			// request may have half-executed there, but every mutating
			// endpoint is idempotent-or-conflict by design, so replay
			// against the successor is safe.
			if r.Context().Err() != nil {
				finish(http.StatusBadGateway)
				return // client hung up; nothing to answer
			}
			g.suspect(target)
		case up.code == api.StatusWrongOwner:
			last = up
			if g.met != nil {
				g.met.wrongOwner.Inc()
			}
			var er api.ErrorReply
			_ = json.Unmarshal(up.body, &er)
			if next, okOwner := g.urlOf(er.Owner); okOwner && next != target {
				// The replica told us who owns the session; go there.
				target = next
				retries++
				if g.met != nil {
					g.met.retries.Inc()
				}
				continue
			}
			// Owner unknown or unroutable (likely dead and its lease still
			// ticking): wait a beat, then re-resolve. The sleep honors the
			// replica's hint but stays responsive for short CI TTLs.
			pause := 150 * time.Millisecond
			if er.RetryAfterSeconds > 0 {
				hinted := time.Duration(er.RetryAfterSeconds * float64(time.Second))
				if hinted < pause {
					pause = hinted
				}
			}
			if !g.sleep(r.Context(), pause) {
				finish(http.StatusBadGateway)
				return
			}
		case retryableStatus(up.code):
			last = up
			g.suspect(target)
		default:
			g.relay(w, up)
			finish(up.code)
			return
		}
		retries++
		if g.met != nil {
			g.met.retries.Inc()
		}
		target, ok = g.ownerURL(sessionID)
	}
	if last != nil {
		g.relay(w, last)
		finish(last.code)
		return
	}
	writeErr(w, http.StatusServiceUnavailable, api.CodeShuttingDown, "gateway: no routable replica")
	finish(http.StatusServiceUnavailable)
}

// sleep waits without outliving the request; false when the client hung up.
func (g *Gateway) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-g.stop:
		return false
	case <-t.C:
		return true
	}
}

func (g *Gateway) relay(w http.ResponseWriter, up *upstream) {
	if ct := up.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(up.code)
	_, _ = w.Write(up.body)
}

// ---- handlers ----

// handleCreate assigns the session ID when absent — placement is a function
// of the ID, so it must exist before routing — then forwards the (re-encoded)
// create to the owner.
func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<22)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.ID == "" {
		req.ID = newID()
	}
	body, err := json.Marshal(&req)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	g.forwardSession(w, r, "create", req.ID, body)
}

// handleSession routes every /v1/sessions/{id}[/{verb}] request by ring
// lookup on the session ID.
func (g *Gateway) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	route := r.PathValue("verb")
	if route == "" {
		route = "session"
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<22))
	if err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	g.forwardSession(w, r, route, id, body)
}

// handleHeartbeat routes a lease heartbeat. Lease IDs embed their session
// (dispatch.SessionOfLease), so the common case rides the ring like any
// session request; unparseable tokens fall back to asking every healthy
// replica (first 2xx wins — at most one replica knows the lease).
func (g *Gateway) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	leaseID := r.PathValue("id")
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if sessionID, ok := dispatch.SessionOfLease(leaseID); ok {
		g.forwardSession(w, r, "heartbeat", sessionID, body)
		return
	}
	start := time.Now()
	span := g.startSpan(r, "gateway.heartbeat")
	tc := span.Context()
	var last *upstream
	for _, url := range g.healthyURLs() {
		up, err := g.tryOnce(r.Context(), r.Method, url, r.URL.Path, r.URL.RawQuery, r.Header.Get("Content-Type"), body, tc)
		if err != nil {
			g.suspect(url)
			continue
		}
		last = up
		if up.code/100 == 2 {
			break
		}
	}
	if last == nil {
		writeErr(w, http.StatusServiceUnavailable, api.CodeShuttingDown, "gateway: no routable replica")
		span.Attr("code", http.StatusServiceUnavailable)
		span.End()
		g.met.request("heartbeat", http.StatusServiceUnavailable, time.Since(start))
		return
	}
	g.relay(w, last)
	span.Attr("code", float64(last.code))
	span.End()
	g.met.request("heartbeat", last.code, time.Since(start))
}

// handleList merges the live-session lists of every healthy replica.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	seen := make(map[string]bool)
	for _, url := range g.healthyURLs() {
		up, err := g.tryOnce(r.Context(), http.MethodGet, url, "/v1/sessions", "", "", nil, telemetry.TraceContext{})
		if err != nil || up.code != http.StatusOK {
			continue // partial views are fine for a listing
		}
		var reply api.SessionsReply
		if json.Unmarshal(up.body, &reply) != nil {
			continue
		}
		for _, id := range reply.Sessions {
			seen[id] = true
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	writeJSON(w, http.StatusOK, api.SessionsReply{Sessions: ids})
	g.met.request("list", http.StatusOK, time.Since(start))
}

// handleProblems relays the catalog from any healthy replica.
func (g *Gateway) handleProblems(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	for _, url := range g.healthyURLs() {
		up, err := g.tryOnce(r.Context(), http.MethodGet, url, "/v1/problems", "", "", nil, telemetry.TraceContext{})
		if err != nil {
			g.suspect(url)
			continue
		}
		g.relay(w, up)
		g.met.request("problems", up.code, time.Since(start))
		return
	}
	writeErr(w, http.StatusServiceUnavailable, api.CodeShuttingDown, "gateway: no routable replica")
	g.met.request("problems", http.StatusServiceUnavailable, time.Since(start))
}

// handleHealth reports the gateway's own liveness and routing view.
func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	g.mu.RLock()
	reps := make([]api.GatewayReplica, 0, len(g.replicas))
	anyHealthy := false
	for _, rep := range g.replicas {
		reps = append(reps, api.GatewayReplica{ID: rep.id, URL: rep.url, Healthy: rep.healthy})
		anyHealthy = anyHealthy || rep.healthy
	}
	g.mu.RUnlock()
	reply := api.GatewayHealthReply{
		OK:            anyHealthy,
		UptimeSeconds: time.Since(g.started).Seconds(),
		Version:       buildinfo.Version(),
		Replicas:      reps,
		Ring:          g.ring.Replicas(),
	}
	status := http.StatusOK
	if !reply.OK {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, reply)
}

// newID mirrors the server's session-ID scheme; the gateway mints IDs for
// anonymous creates so placement is decided before the request leaves it.
func newID() string {
	b := make([]byte, 8)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("gateway: crypto/rand: %v", err))
	}
	return "s" + hex.EncodeToString(b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, api.ErrorReply{Error: msg, Code: code})
}

package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNormPDFSymmetryAndPeak(t *testing.T) {
	if got, want := NormPDF(0), 1/math.Sqrt(2*math.Pi); math.Abs(got-want) > 1e-15 {
		t.Fatalf("NormPDF(0) = %v, want %v", got, want)
	}
	for _, x := range []float64{0.3, 1, 2.5, 7} {
		if math.Abs(NormPDF(x)-NormPDF(-x)) > 1e-16 {
			t.Fatalf("pdf not symmetric at %v", x)
		}
	}
}

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := NormCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("NormCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Float64()*0.9998 + 0.0001
		x := NormQuantile(p)
		return math.Abs(NormCDF(x)-p) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormQuantileExtremes(t *testing.T) {
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Fatal("quantile endpoints should be ±Inf")
	}
	if got := NormQuantile(0.5); math.Abs(got) > 1e-14 {
		t.Fatalf("NormQuantile(0.5) = %v, want 0", got)
	}
}

func TestNormLogCDFMatchesDirect(t *testing.T) {
	for _, x := range []float64{-5, -2, 0, 1, 4} {
		want := math.Log(NormCDF(x))
		if got := NormLogCDF(x); math.Abs(got-want) > 1e-10 {
			t.Fatalf("NormLogCDF(%v) = %v, want %v", x, got, want)
		}
	}
	// Deep tail: direct log underflows to -Inf, expansion must stay finite
	// and monotone.
	a, b := NormLogCDF(-40), NormLogCDF(-41)
	if math.IsInf(a, 0) || math.IsInf(b, 0) || b >= a {
		t.Fatalf("tail log-CDF not finite/monotone: %v, %v", a, b)
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if math.Abs(got-math.Log(6)) > 1e-12 {
		t.Fatalf("LogSumExp = %v, want log 6", got)
	}
	// Stability against overflow.
	got = LogSumExp([]float64{1000, 1000})
	if math.Abs(got-(1000+math.Log(2))) > 1e-9 {
		t.Fatalf("LogSumExp big = %v", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("LogSumExp(nil) should be -Inf")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	if s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("mean/median %v/%v", s.Mean, s.Median)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-wantStd) > 1e-14 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Std != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single-point summary %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if got := Quantile(sorted, 0.5); got != 25 {
		t.Fatalf("median = %v, want 25", got)
	}
	if got := Quantile(sorted, 0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(sorted, 1); got != 40 {
		t.Fatalf("q1 = %v", got)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if got, want := Variance(xs), 32.0/7.0; math.Abs(got-want) > 1e-14 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if Variance([]float64{1}) != 0 || Mean(nil) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestUniformInBoxBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lo, hi := []float64{-1, 5}, []float64{1, 6}
	pts := UniformInBox(rng, lo, hi, 200)
	if len(pts) != 200 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		for j := range p {
			if p[j] < lo[j] || p[j] > hi[j] {
				t.Fatalf("point %v outside box", p)
			}
		}
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 50
	lo, hi := []float64{0, 0}, []float64{1, 10}
	pts := LatinHypercube(rng, lo, hi, n)
	// Each dimension: exactly one point per stratum.
	for j := 0; j < 2; j++ {
		seen := make([]bool, n)
		for _, p := range pts {
			u := (p[j] - lo[j]) / (hi[j] - lo[j])
			k := int(u * float64(n))
			if k == n {
				k = n - 1
			}
			if seen[k] {
				t.Fatalf("dimension %d stratum %d hit twice", j, k)
			}
			seen[k] = true
		}
	}
}

func TestGaussianBallClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lo, hi := []float64{0}, []float64{1}
	pts := GaussianBall(rng, []float64{0.99}, lo, hi, 0.5, 500)
	for _, p := range pts {
		if p[0] < 0 || p[0] > 1 {
			t.Fatalf("point %v escaped the box", p)
		}
	}
	// With a wide sigma around 0.99 many points should clip to exactly 1.
	clipped := 0
	for _, p := range pts {
		if p[0] == 1 {
			clipped++
		}
	}
	if clipped == 0 {
		t.Fatal("expected some clipped points")
	}
}

func TestClip(t *testing.T) {
	got := Clip([]float64{-2, 0.5, 9}, []float64{0, 0, 0}, []float64{1, 1, 1})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Clip = %v, want %v", got, want)
		}
	}
}

func TestGaussHermiteMoments(t *testing.T) {
	for _, n := range []int{1, 3, 5, 10, 20, 31} {
		nodes, weights := GaussHermite(n)
		if len(nodes) != n || len(weights) != n {
			t.Fatalf("n=%d: wrong sizes", n)
		}
		m0, m1, m2, m4 := 0.0, 0.0, 0.0, 0.0
		for i := range nodes {
			m0 += weights[i]
			m1 += weights[i] * nodes[i]
			m2 += weights[i] * nodes[i] * nodes[i]
			m4 += weights[i] * math.Pow(nodes[i], 4)
		}
		if math.Abs(m0-1) > 1e-12 {
			t.Fatalf("n=%d: Σw = %v", n, m0)
		}
		if math.Abs(m1) > 1e-10 {
			t.Fatalf("n=%d: E[z] = %v", n, m1)
		}
		if n >= 2 && math.Abs(m2-1) > 1e-9 {
			t.Fatalf("n=%d: E[z²] = %v", n, m2)
		}
		if n >= 3 && math.Abs(m4-3) > 1e-8 {
			t.Fatalf("n=%d: E[z⁴] = %v, want 3", n, m4)
		}
	}
}

func TestGaussHermiteIntegratesSmoothFunction(t *testing.T) {
	// E[exp(z)] = e^{1/2} for standard normal z.
	nodes, weights := GaussHermite(20)
	s := 0.0
	for i := range nodes {
		s += weights[i] * math.Exp(nodes[i])
	}
	if math.Abs(s-math.Exp(0.5)) > 1e-10 {
		t.Fatalf("E[e^z] = %v, want %v", s, math.Exp(0.5))
	}
}

func TestGaussHermiteNodesSorted(t *testing.T) {
	nodes, _ := GaussHermite(15)
	if !sort.Float64sAreSorted(nodes) {
		t.Fatalf("nodes not sorted: %v", nodes)
	}
}

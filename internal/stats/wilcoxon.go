package stats

import (
	"math"
	"sort"
)

// RankSum performs the two-sided Wilcoxon–Mann–Whitney rank-sum test on two
// independent samples, returning the U statistic (for sample a) and the
// normal-approximation p-value with tie correction. It is used by the
// experiment harness to check whether two optimizers' outcome distributions
// differ significantly across replications.
//
// The normal approximation is adequate for the sample sizes the harness
// produces (n ≥ 8 per side); for tiny samples the p-value is conservative.
func RankSum(a, b []float64) (u float64, pValue float64) {
	na, nb := len(a), len(b)
	if na == 0 || nb == 0 {
		return 0, 1
	}
	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, na+nb)
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks, accumulating the tie-correction term Σ(t³−t).
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		if t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}
	ra := 0.0
	for i, o := range all {
		if o.fromA {
			ra += ranks[i]
		}
	}
	fa, fb := float64(na), float64(nb)
	u = ra - fa*(fa+1)/2
	mu := fa * fb / 2
	nTot := fa + fb
	sigma2 := fa * fb / 12 * ((nTot + 1) - tieTerm/(nTot*(nTot-1)))
	if sigma2 <= 0 {
		// All values tied: no evidence of difference.
		return u, 1
	}
	// Continuity-corrected z.
	z := (math.Abs(u-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	pValue = 2 * NormCDF(-z)
	if pValue > 1 {
		pValue = 1
	}
	return u, pValue
}

package stats

import (
	"math/rand"
	"testing"
)

func TestRankSumIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	_, p := RankSum(a, a)
	if p < 0.9 {
		t.Fatalf("identical samples should not differ: p = %v", p)
	}
}

func TestRankSumClearSeparation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{101, 102, 103, 104, 105, 106, 107, 108}
	u, p := RankSum(a, b)
	if u != 0 {
		t.Fatalf("all-below sample should have U = 0, got %v", u)
	}
	if p > 0.01 {
		t.Fatalf("separated samples should be significant: p = %v", p)
	}
}

func TestRankSumSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 10)
	b := make([]float64, 12)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64() + 0.5
	}
	_, pab := RankSum(a, b)
	_, pba := RankSum(b, a)
	if pab != pba {
		t.Fatalf("p-value should be symmetric: %v vs %v", pab, pba)
	}
}

func TestRankSumDetectsShiftAtModerateN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 30
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1.5
	}
	if _, p := RankSum(a, b); p > 0.001 {
		t.Fatalf("1.5σ shift at n=30 should be highly significant: p = %v", p)
	}
}

func TestRankSumNullCalibration(t *testing.T) {
	// Under the null, p-values should not be systematically tiny.
	rng := rand.New(rand.NewSource(3))
	small := 0
	const trials = 200
	for tr := 0; tr < trials; tr++ {
		a := make([]float64, 12)
		b := make([]float64, 12)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		if _, p := RankSum(a, b); p < 0.05 {
			small++
		}
	}
	// Expect ≈5 % false positives; allow generous slack.
	if small > trials/8 {
		t.Fatalf("null rejection rate too high: %d/%d", small, trials)
	}
}

func TestRankSumTiesHandled(t *testing.T) {
	a := []float64{1, 1, 1, 2, 2}
	b := []float64{1, 2, 2, 2, 3}
	_, p := RankSum(a, b)
	if p <= 0 || p > 1 {
		t.Fatalf("tied-sample p-value out of range: %v", p)
	}
	// Fully tied data: p must be exactly 1 (zero variance path).
	c := []float64{5, 5, 5}
	if _, p := RankSum(c, c); p != 1 {
		t.Fatalf("all-tied p = %v, want 1", p)
	}
}

func TestRankSumEmpty(t *testing.T) {
	if _, p := RankSum(nil, []float64{1}); p != 1 {
		t.Fatal("empty sample should return p = 1")
	}
}

package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample, matching the rows the
// paper reports in Tables 1 and 2 (mean/median/best/worst plus spread).
type Summary struct {
	N            int
	Mean, Median float64
	Min, Max     float64
	Std          float64 // sample standard deviation (n−1)
	Q1, Q3       float64 // quartiles (linear interpolation)
}

// Summarize computes descriptive statistics of xs. It panics on an empty
// sample, which always indicates a harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: summarize of empty sample")
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	s.Median = Quantile(sorted, 0.5)
	s.Q1 = Quantile(sorted, 0.25)
	s.Q3 = Quantile(sorted, 0.75)
	if len(sorted) > 1 {
		ss := 0.0
		for _, x := range sorted {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return s
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of a sorted sample using
// linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the sample variance (n−1 denominator) of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

package stats

import (
	"fmt"
	"math"
)

// GaussHermite returns n nodes and weights such that for a standard normal z,
//
//	E[f(z)] ≈ Σ_i w_i · f(x_i),
//
// i.e. the physicists' Gauss–Hermite rule rescaled to the probabilists'
// measure (x = √2·t, w = w_GH/√π). It is used as the deterministic
// alternative to Monte-Carlo propagation through the NARGP model.
func GaussHermite(n int) (nodes, weights []float64) {
	if n < 1 {
		panic(fmt.Sprintf("stats: gauss-hermite order %d < 1", n))
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	// Newton iteration on physicists' Hermite polynomials H_n, using
	// standard initial guesses (Numerical Recipes). Roots are symmetric,
	// so only the upper half is computed.
	m := (n + 1) / 2
	var z float64
	for i := 0; i < m; i++ {
		switch i {
		case 0:
			z = math.Sqrt(float64(2*n+1)) - 1.85575*math.Pow(float64(2*n+1), -1.0/6.0)
		case 1:
			z -= 1.14 * math.Pow(float64(n), 0.426) / z
		case 2:
			z = 1.86*z - 0.86*nodesPhys(nodes, n, 0)
		case 3:
			z = 1.91*z - 0.91*nodesPhys(nodes, n, 1)
		default:
			z = 2*z - nodesPhys(nodes, n, i-2)
		}
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p1 := math.Pow(math.Pi, -0.25)
			p2 := 0.0
			for j := 0; j < n; j++ {
				p3 := p2
				p2 = p1
				p1 = z*math.Sqrt(2/float64(j+1))*p2 - math.Sqrt(float64(j)/float64(j+1))*p3
			}
			pp = math.Sqrt(2*float64(n)) * p2
			dz := p1 / pp
			z -= dz
			if math.Abs(dz) < 1e-15 {
				break
			}
		}
		// Store physicists' nodes at the ends, mirrored.
		nodes[i] = -z
		nodes[n-1-i] = z
		w := 2 / (pp * pp)
		weights[i] = w
		weights[n-1-i] = w
	}
	// Rescale to probabilists' measure.
	sumW := 0.0
	for i := range nodes {
		nodes[i] *= math.Sqrt2
		weights[i] /= math.SqrtPi
		sumW += weights[i]
	}
	// Renormalize to exactly unit mass to kill residual Newton error.
	for i := range weights {
		weights[i] /= sumW
	}
	return nodes, weights
}

// nodesPhys returns the i-th stored physicists' root (positive side) given the
// mirrored storage layout used during construction.
func nodesPhys(nodes []float64, n, i int) float64 {
	return -nodes[i]
}

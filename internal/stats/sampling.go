package stats

import (
	"fmt"
	"math/rand"
)

// UniformInBox draws n points uniformly in the axis-aligned box [lo, hi]^d.
// Each returned point is a fresh slice of length d.
func UniformInBox(rng *rand.Rand, lo, hi []float64, n int) [][]float64 {
	d := len(lo)
	if len(hi) != d {
		panic(fmt.Sprintf("stats: box bounds length mismatch %d vs %d", d, len(hi)))
	}
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := 0; j < d; j++ {
			p[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
		}
		pts[i] = p
	}
	return pts
}

// LatinHypercube draws an n-point Latin hypercube design in [lo, hi]^d: each
// dimension is partitioned into n equal strata, each stratum sampled exactly
// once, with independent random permutations per dimension. LHS is the
// standard initialization for the BO training sets in the paper.
func LatinHypercube(rng *rand.Rand, lo, hi []float64, n int) [][]float64 {
	d := len(lo)
	if len(hi) != d {
		panic(fmt.Sprintf("stats: box bounds length mismatch %d vs %d", d, len(hi)))
	}
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
	}
	perm := make([]int, n)
	for j := 0; j < d; j++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for i := 0; i < n; i++ {
			u := (float64(perm[i]) + rng.Float64()) / float64(n)
			pts[i][j] = lo[j] + u*(hi[j]-lo[j])
		}
	}
	return pts
}

// GaussianBall draws n points from N(center, sigma²·I) clipped to [lo, hi].
// It implements the paper's §4.1 strategy of seeding a fraction of the
// acquisition-maximization starting points around the current incumbents.
func GaussianBall(rng *rand.Rand, center, lo, hi []float64, sigmaFrac float64, n int) [][]float64 {
	d := len(center)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := 0; j < d; j++ {
			sigma := sigmaFrac * (hi[j] - lo[j])
			v := center[j] + sigma*rng.NormFloat64()
			if v < lo[j] {
				v = lo[j]
			} else if v > hi[j] {
				v = hi[j]
			}
			p[j] = v
		}
		pts[i] = p
	}
	return pts
}

// Clip returns x clamped to [lo, hi] element-wise, in a new slice.
func Clip(x, lo, hi []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		v := x[i]
		if v < lo[i] {
			v = lo[i]
		} else if v > hi[i] {
			v = hi[i]
		}
		out[i] = v
	}
	return out
}

// Package stats provides the probability and sampling utilities shared by the
// Gaussian-process stack: standard-normal density/CDF/quantile, descriptive
// statistics for experiment tables, Latin-hypercube design sampling, and
// Gauss–Hermite quadrature nodes for deterministic uncertainty propagation.
package stats

import "math"

const (
	invSqrt2   = 1 / math.Sqrt2
	invSqrt2Pi = 1 / (math.Sqrt2 * math.SqrtPi)
)

// NormPDF returns the density of the standard normal distribution at x.
func NormPDF(x float64) float64 {
	return invSqrt2Pi * math.Exp(-0.5*x*x)
}

// NormCDF returns Φ(x), the standard normal CDF.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x*invSqrt2)
}

// NormLogCDF returns log Φ(x) with a numerically stable tail expansion for
// very negative x, where Φ(x) underflows.
func NormLogCDF(x float64) float64 {
	if x > -10 {
		return math.Log(NormCDF(x))
	}
	// Asymptotic expansion: Φ(x) ≈ φ(x)/(-x)·(1 − 1/x² + 3/x⁴ − …) for x → −∞.
	x2 := x * x
	series := 1 - 1/x2 + 3/(x2*x2) - 15/(x2*x2*x2)
	return -0.5*x2 - math.Log(-x) - 0.5*math.Log(2*math.Pi) + math.Log(series)
}

// NormQuantile returns Φ⁻¹(p) using the Acklam rational approximation refined
// by one Halley step; accuracy is ~1e-15 over (0,1).
func NormQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(0.5*x*x)
	x -= u / (1 + 0.5*x*u)
	return x
}

// LogSumExp returns log(Σ exp(xs_i)) computed stably.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	mx := xs[0]
	for _, x := range xs[1:] {
		if x > mx {
			mx = x
		}
	}
	if math.IsInf(mx, -1) {
		return mx
	}
	s := 0.0
	for _, x := range xs {
		s += math.Exp(x - mx)
	}
	return mx + math.Log(s)
}

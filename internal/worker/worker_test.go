package worker_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/dispatch"
	"repro/internal/problem"
	"repro/internal/server"
	"repro/internal/worker"
)

// newFleetServer boots a dispatch-enabled server over an httptest listener
// with short leases so worker-death recovery happens on test timescales.
func newFleetServer(t *testing.T) (*httptest.Server, *client.Client) {
	t.Helper()
	srv, err := server.New(server.Config{
		Dispatch: dispatch.Config{
			LeaseTTL:    250 * time.Millisecond,
			MaxInFlight: 3,
			MaxAttempts: 5,
			ScanEvery:   20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return ts, client.New(ts.URL, client.WithBackoff(time.Millisecond, 20*time.Millisecond))
}

func fleetSessionReq(id string, batch int) api.CreateSessionRequest {
	return api.CreateSessionRequest{
		ID:           id,
		Problem:      "constrained",
		Seed:         7,
		Budget:       6,
		InitLow:      8,
		InitHigh:     4,
		MSPStarts:    4,
		MSPLocalIter: 15,
		GPMaxIter:    30,
		Batch:        batch,
		Fantasy:      "constant-liar",
	}
}

func newWorker(t *testing.T, cl *client.Client, session, name string, lookup func(string) (problem.Problem, error)) *worker.Worker {
	t.Helper()
	w, err := worker.New(worker.Config{
		Client:  cl,
		Session: session,
		Name:    name,
		Poll:    5 * time.Millisecond,
		PollMax: 50 * time.Millisecond,
		Lookup:  lookup,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// blockingProblem delegates to the catalog problem but parks the first
// evaluation on a channel: the test uses it to catch a worker red-handed
// holding a lease, then Kill()s it — the signature of a SIGKILLed process.
type blockingProblem struct {
	problem.Problem
	started chan string // receives the blocked evaluation's signature once
	release chan struct{}
	once    sync.Once
}

func (p *blockingProblem) Evaluate(x []float64, f problem.Fidelity) problem.Evaluation {
	p.once.Do(func() {
		p.started <- "evaluating"
		<-p.release
	})
	return p.Problem.Evaluate(x, f)
}

// TestFleetSurvivesKilledWorker is the end-to-end acceptance test of the
// distributed fleet: three workers serve one batch-3 session; one worker is
// hard-killed while holding a lease mid-evaluation. Its lease must expire,
// the suggestion must be requeued to a surviving worker, and the session must
// run to completion with a consistent history.
func TestFleetSurvivesKilledWorker(t *testing.T) {
	_, cl := newFleetServer(t)

	ctx := context.Background()
	info, err := cl.CreateSession(ctx, fleetSessionReq("fleet", 3))
	if err != nil {
		t.Fatal(err)
	}

	// The victim evaluates through a problem that blocks its first
	// evaluation, so the test can kill it while it provably holds a lease.
	inner, err := catalog.Lookup("constrained")
	if err != nil {
		t.Fatal(err)
	}
	bp := &blockingProblem{
		Problem: inner,
		started: make(chan string, 1),
		release: make(chan struct{}),
	}
	defer close(bp.release) // unblock the leaked evaluation goroutine at exit

	victim := newWorker(t, cl, info.ID, "victim", func(string) (problem.Problem, error) { return bp, nil })
	victimDone := make(chan error, 1)
	go func() { victimDone <- victim.Run(ctx) }()

	// Wait until the victim is mid-evaluation (lease held, heartbeating),
	// then kill it: heartbeats stop, no report is ever sent.
	select {
	case <-bp.started:
	case <-time.After(30 * time.Second):
		t.Fatal("victim never started evaluating")
	}
	victim.Kill()
	select {
	case err := <-victimDone:
		if !errors.Is(err, worker.ErrKilled) {
			t.Fatalf("victim Run returned %v, want ErrKilled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("victim did not exit after Kill")
	}
	if victim.Evaluated() != 0 {
		t.Fatalf("killed victim reported %d evaluations, want 0", victim.Evaluated())
	}

	// Two healthy workers pick up the pieces — including the killed lease,
	// which the janitor requeues after the TTL — and drain the session.
	var wg sync.WaitGroup
	survivors := []*worker.Worker{
		newWorker(t, cl, info.ID, "w1", nil),
		newWorker(t, cl, info.ID, "w2", nil),
	}
	errs := make([]error, len(survivors))
	for i, w := range survivors {
		wg.Add(1)
		go func(i int, w *worker.Worker) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i, w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("fleet did not drain the session in time")
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
	}

	// The session ran to completion despite the killed worker.
	st, err := cl.Status(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != "done" {
		t.Fatalf("session phase %q, want done (status %+v)", st.Phase, st)
	}
	if st.Cost < st.Budget {
		t.Fatalf("session stopped early: cost %v < budget %v", st.Cost, st.Budget)
	}
	// Every observation was produced by a surviving worker (the victim never
	// reported), and the killed lease's suggestion was still evaluated: the
	// histories add up with no failures — the requeue recovered the work
	// without burning an attempt budget.
	reported := survivors[0].Evaluated() + survivors[1].Evaluated()
	hist, err := cl.History(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Observations) == 0 {
		t.Fatal("empty history after a completed run")
	}
	if reported < len(hist.Observations) {
		t.Fatalf("survivors reported %d evaluations, history has %d", reported, len(hist.Observations))
	}
	for i, ob := range hist.Observations {
		if ob.Failed {
			t.Fatalf("observation %d marked failed; requeue should have recovered it", i)
		}
	}
}

// TestWorkerGracefulDrain verifies the SIGTERM path: cancelling Run's context
// mid-evaluation lets the in-flight unit finish and report before Run returns.
func TestWorkerGracefulDrain(t *testing.T) {
	_, cl := newFleetServer(t)

	ctx := context.Background()
	info, err := cl.CreateSession(ctx, fleetSessionReq("drain", 2))
	if err != nil {
		t.Fatal(err)
	}

	inner, err := catalog.Lookup("constrained")
	if err != nil {
		t.Fatal(err)
	}
	bp := &blockingProblem{
		Problem: inner,
		started: make(chan string, 1),
		release: make(chan struct{}),
	}
	w := newWorker(t, cl, info.ID, "drainer", func(string) (problem.Problem, error) { return bp, nil })

	runCtx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(runCtx) }()

	select {
	case <-bp.started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never started evaluating")
	}
	// SIGTERM arrives mid-evaluation; the evaluation then completes.
	cancel()
	close(bp.release)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful drain returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not drain")
	}
	// The in-flight evaluation was finished AND reported.
	if got := w.Evaluated(); got != 1 {
		t.Fatalf("drained worker reported %d evaluations, want 1", got)
	}
	st, err := cl.Status(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Observations != 1 {
		t.Fatalf("session has %d observations after drain, want 1", st.Observations)
	}
}

package worker

import (
	"testing"
	"time"

	"repro/internal/client"
)

// TestHeartbeatJitterBounds pins the ±20% spread and checks that two workers
// (distinct names, hence distinct seeds) draw de-phased schedules.
func TestHeartbeatJitterBounds(t *testing.T) {
	base := time.Second
	if got := jitteredInterval(base, 0); got != 800*time.Millisecond {
		t.Fatalf("jitteredInterval(1s, 0) = %v, want 800ms", got)
	}
	if got := jitteredInterval(base, 0.5); got != time.Second {
		t.Fatalf("jitteredInterval(1s, 0.5) = %v, want 1s", got)
	}

	mk := func(name string) *Worker {
		w, err := New(Config{Client: &client.Client{}, Session: "s", Name: name})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := mk("alpha"), mk("beta")
	var seqA []time.Duration
	distinct := false
	for i := 0; i < 256; i++ {
		da, db := a.jitter(base), b.jitter(base)
		for _, d := range []time.Duration{da, db} {
			if d < 800*time.Millisecond || d >= 1200*time.Millisecond {
				t.Fatalf("draw %v outside [0.8, 1.2) × base", d)
			}
		}
		if da != db {
			distinct = true
		}
		seqA = append(seqA, da)
	}
	if !distinct {
		t.Fatal("alpha and beta drew identical jitter schedules; seeds not de-phased")
	}
	// Same name → same seed → reproducible schedule.
	a2 := mk("alpha")
	for i, want := range seqA {
		if got := a2.jitter(base); got != want {
			t.Fatalf("draw %d: re-seeded worker drew %v, want %v", i, got, want)
		}
	}
}

// Package worker implements the evaluation daemon of the distributed fleet:
// a loop that leases work from a session's dispatch queue (internal/dispatch
// via internal/client), evaluates it locally under the fault-tolerant
// robust.SafeProblem wrapper, heartbeats mid-evaluation so the lease stays
// alive through long SPICE-class simulations, and reports the outcome —
// cmd/mfbo-worker is a thin flag-parsing shell around this package.
//
// The loop is deliberately stateless: a worker holds no optimizer state, only
// the one lease it is currently serving. Every failure mode routes back to
// the queue's lease state machine — a crashed worker simply stops
// heartbeating and its lease expires; a slow worker whose lease was requeued
// learns so from lease_expired on heartbeat (abandon the unit) or a Duplicate
// report acknowledgment (its late result lost the race); a worker that
// cannot reach the server backs off with robust.Backoff and retries.
package worker

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/problem"
	"repro/internal/robust"
	"repro/internal/telemetry"
)

// ErrKilled is returned by Run when the worker was hard-aborted with Kill:
// the in-flight evaluation was abandoned without a report, as if the process
// had been SIGKILLed.
var ErrKilled = errors.New("worker: killed")

// Config describes one worker.
type Config struct {
	// Client talks to the optimization server (required).
	Client *client.Client
	// Session is the session ID to serve (required).
	Session string
	// Name identifies the worker in lease bookkeeping and logs
	// (default "worker").
	Name string
	// TTL is the lease duration to request (0 = server default). Heartbeats
	// are sent at roughly a third of the granted TTL.
	TTL time.Duration
	// Poll shapes the idle backoff when the queue has no work or the server
	// is unreachable: robust.Backoff over this base, capped at PollMax
	// (defaults 100ms / 2s).
	Poll, PollMax time.Duration
	// Robust wraps the local evaluator (panic recovery, retries, timeout —
	// see robust.Wrap). The zero value selects the robust defaults.
	Robust robust.Policy
	// Lookup resolves the session's problem name to the local evaluator
	// (default catalog.Lookup — the worker-side twin of the server catalog).
	Lookup func(name string) (problem.Problem, error)
	// Telemetry, when non-nil, registers the mfbo_worker_* metrics into its
	// registry and emits evaluation/heartbeat/report spans through its tracer.
	// Leases that carry a traceparent join the suggesting request's trace.
	Telemetry *telemetry.Recorder
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// sleep is injectable for tests.
	sleep func(ctx context.Context, d time.Duration) error
}

// workerMetrics are the mfbo_worker_* series; every field is nil (and every
// update free) when the worker runs without telemetry.
type workerMetrics struct {
	leases     *telemetry.Counter
	evals      *telemetry.Counter
	heartbeats *telemetry.Counter
	reports    *telemetry.Counter
	evalSecs   *telemetry.Histogram
}

func newWorkerMetrics(reg *telemetry.Registry) workerMetrics {
	return workerMetrics{
		leases:     reg.Counter("mfbo_worker_leases_total", "evaluation leases granted to this worker"),
		evals:      reg.Counter("mfbo_worker_evaluations_total", "leased evaluations started"),
		heartbeats: reg.Counter("mfbo_worker_heartbeats_total", "lease heartbeats sent"),
		reports:    reg.Counter("mfbo_worker_reports_total", "evaluation reports acknowledged by the server"),
		evalSecs:   reg.Histogram("mfbo_worker_eval_seconds", "wall-clock duration of one leased evaluation", nil),
	}
}

// Worker is one evaluation-daemon loop. Create with New, run with Run.
type Worker struct {
	cfg Config
	met workerMetrics

	killOnce sync.Once
	killed   chan struct{}

	mu        sync.Mutex
	rng       *rand.Rand // heartbeat jitter; guarded by mu
	evaluated int
	reported  int
}

// New validates cfg and builds a worker.
func New(cfg Config) (*Worker, error) {
	if cfg.Client == nil {
		return nil, errors.New("worker: Config.Client is required")
	}
	if cfg.Session == "" {
		return nil, errors.New("worker: Config.Session is required")
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 100 * time.Millisecond
	}
	if cfg.PollMax <= 0 {
		cfg.PollMax = 2 * time.Second
	}
	if cfg.Lookup == nil {
		cfg.Lookup = catalog.Lookup
	}
	if cfg.sleep == nil {
		cfg.sleep = sleepCtx
	}
	// Seed heartbeat jitter from the worker name so each member of a fleet
	// draws a distinct, reproducible phase.
	h := fnv.New64a()
	h.Write([]byte(cfg.Name))
	return &Worker{
		cfg:    cfg,
		met:    newWorkerMetrics(cfg.Telemetry.Registry()),
		rng:    rand.New(rand.NewSource(int64(h.Sum64()))),
		killed: make(chan struct{}),
	}, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Kill hard-aborts the worker: the in-flight evaluation is abandoned, no
// report is sent, and heartbeats stop immediately — exactly the signature of
// a SIGKILLed or crashed worker process. The lease is left to expire and
// requeue. Tests use it to exercise worker-death recovery; operational
// shutdown should cancel Run's context instead (graceful drain).
func (w *Worker) Kill() { w.killOnce.Do(func() { close(w.killed) }) }

// Evaluated returns how many evaluations the worker completed and reported.
func (w *Worker) Evaluated() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reported
}

// idleBackoff is the retry schedule for "no work" and "server unreachable".
func (w *Worker) idleBackoff(attempt int) time.Duration {
	return robust.Backoff(attempt, robust.Policy{
		BackoffBase: w.cfg.Poll,
		BackoffMax:  w.cfg.PollMax,
	})
}

// Run serves the session until its optimization completes or ctx is
// cancelled. Cancellation is a graceful drain (the SIGTERM path of
// cmd/mfbo-worker): the in-flight evaluation finishes — bounded by the
// robust policy's evaluation timeout — and its report is still delivered on
// a short grace deadline before Run returns nil. Kill aborts instead.
func (w *Worker) Run(ctx context.Context) error {
	cfg := &w.cfg
	// Resolve the session's problem from its status; retry while the server
	// comes up (workers are typically started alongside the daemon).
	var prob problem.Problem
	for attempt := 0; ; attempt++ {
		st, err := cfg.Client.Status(ctx, cfg.Session)
		if err == nil {
			if prob, err = cfg.Lookup(st.Problem); err != nil {
				return fmt.Errorf("worker %s: %w", cfg.Name, err)
			}
			break
		}
		if ctx.Err() != nil || w.isKilled() {
			return nil
		}
		w.logf("worker %s: session %s not reachable (%v); retrying", cfg.Name, cfg.Session, err)
		if w.sleepIdle(ctx, attempt) != nil {
			return nil
		}
	}
	safe := robust.Wrap(prob, cfg.Robust)
	w.logf("worker %s: serving session %s (problem %s)", cfg.Name, cfg.Session, prob.Name())

	idle := 0
	for {
		if w.isKilled() {
			return ErrKilled
		}
		if ctx.Err() != nil {
			w.logf("worker %s: drained", cfg.Name)
			return nil
		}
		rep, err := cfg.Client.Lease(ctx, cfg.Session, api.LeaseRequest{
			Worker:     cfg.Name,
			TTLSeconds: cfg.TTL.Seconds(),
		})
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil
			}
			w.logf("worker %s: lease: %v", cfg.Name, err)
			idle++
			if w.sleepIdle(ctx, idle) != nil {
				return nil
			}
			continue
		case rep.Done:
			w.logf("worker %s: session %s finished (%s)", cfg.Name, cfg.Session, rep.Reason)
			return nil
		case rep.None:
			idle++
			d := time.Duration(rep.RetryAfterSeconds * float64(time.Second))
			if b := w.idleBackoff(idle); b > d {
				d = b
			}
			if w.cfg.sleep(ctx, d) != nil {
				return nil
			}
			continue
		}
		idle = 0
		w.met.leases.Inc()
		w.serve(safe, &rep)
	}
}

func (w *Worker) isKilled() bool {
	select {
	case <-w.killed:
		return true
	default:
		return false
	}
}

// evalSpan begins the span for one leased evaluation: joined to the
// suggesting request's trace when the lease carries a traceparent (so a
// gateway→replica→worker round trip assembles as one trace), else a locally
// sampled root. May return nil; every use is nil-safe.
func (w *Worker) evalSpan(lease *api.LeaseReply) *telemetry.Span {
	rec := w.cfg.Telemetry
	if rec == nil {
		return nil
	}
	if tc, ok := telemetry.ParseTraceparent(lease.TraceParent); ok {
		return rec.Tracer.StartRemote("worker.evaluate", tc)
	}
	return rec.Tracer.Start("worker.evaluate")
}

// serve runs one leased evaluation: heartbeat in the background, evaluate
// under the safety wrapper, report. Contexts are detached from Run's on
// purpose — a graceful drain finishes and reports the unit it holds.
func (w *Worker) serve(safe *robust.SafeProblem, lease *api.LeaseReply) {
	w.mu.Lock()
	w.evaluated++
	w.mu.Unlock()
	w.met.evals.Inc()

	span := w.evalSpan(lease)
	span.Attr("fidelity", float64(lease.Fidelity))
	// "rung" duplicates the fidelity as an explicit ladder-rung index so span
	// queries read the same on two-fidelity and K-rung sessions.
	span.Attr("rung", float64(lease.Fidelity))
	span.Attr("attempt", float64(lease.Attempt))

	// Evaluation aborts on Kill (never on graceful drain).
	evCtx, cancelEv := context.WithCancel(context.Background())
	defer cancelEv()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeats(evCtx, cancelEv, lease, span)
	}()

	evStart := time.Now()
	ev, everr := safe.EvaluateCtx(evCtx, lease.X, problem.Fidelity(lease.Fidelity))
	w.met.evalSecs.Observe(time.Since(evStart).Seconds())
	cancelEv() // stop heartbeats
	<-hbDone
	if w.isKilled() {
		w.logf("worker %s: killed holding lease %s; abandoning", w.cfg.Name, lease.LeaseID)
		span.Attr("abandoned", 1)
		span.End()
		return
	}
	if everr != nil {
		ev.Failed = true
	}
	if ev.Failed {
		span.Attr("failed", 1)
	}
	defer span.End()

	repCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	repSpan := span.Child("worker.report")
	repCtx = telemetry.ContextWithSpan(repCtx, repSpan)
	defer repSpan.End()
	ack, err := w.cfg.Client.Report(repCtx, w.cfg.Session, api.ReportRequest{
		LeaseID:      lease.LeaseID,
		SuggestionID: lease.SuggestionID,
		Objective:    ev.Objective,
		Constraints:  ev.Constraints,
		Failed:       ev.Failed,
		// One key per (suggestion, attempt): a retry of this exact report is
		// acked as a duplicate server-side instead of double-processed.
		IdempotencyKey: lease.SuggestionID + "/" + strconv.Itoa(lease.Attempt),
	})
	switch {
	case err == nil:
		w.mu.Lock()
		w.reported++
		w.mu.Unlock()
		w.met.reports.Inc()
		if ack.Duplicate {
			w.logf("worker %s: report for %s was a duplicate (requeued elsewhere)", w.cfg.Name, lease.SuggestionID)
		}
	case client.IsLeaseExpired(err):
		w.logf("worker %s: lease %s expired before report; dropping", w.cfg.Name, lease.LeaseID)
	default:
		w.logf("worker %s: report %s: %v", w.cfg.Name, lease.SuggestionID, err)
	}
}

// jitterFrac is the spread applied around the base heartbeat interval: each
// wait is drawn uniformly from [0.8, 1.2) × base. Without it a fleet started
// (or restarted) in lockstep heartbeats against the daemon in synchronized
// bursts — a thundering herd that the jitter de-phases within a few beats.
const jitterFrac = 0.2

// jitteredInterval maps a uniform draw u ∈ [0,1) onto [1-jitterFrac,
// 1+jitterFrac) × base.
func jitteredInterval(base time.Duration, u float64) time.Duration {
	return time.Duration(float64(base) * (1 - jitterFrac + 2*jitterFrac*u))
}

// jitter draws one jittered heartbeat wait from the worker's seeded RNG.
func (w *Worker) jitter(base time.Duration) time.Duration {
	w.mu.Lock()
	u := w.rng.Float64()
	w.mu.Unlock()
	return jitteredInterval(base, u)
}

// heartbeats keeps the lease alive at roughly a third of its remaining TTL,
// each wait jittered ±20% so a fleet of workers spreads its heartbeats
// instead of hammering the daemon in phase. A lease_expired reply aborts the
// evaluation via cancelEv: the unit was requeued to someone else, so
// finishing it would be wasted work.
func (w *Worker) heartbeats(ctx context.Context, cancelEv context.CancelFunc, lease *api.LeaseReply, evalSpan *telemetry.Span) {
	interval := time.Second
	if lease.DeadlineUnixMs > 0 {
		if ttl := time.Until(time.UnixMilli(lease.DeadlineUnixMs)); ttl > 0 {
			interval = ttl / 3
		}
	}
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	t := time.NewTimer(w.jitter(interval))
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-w.killed:
			cancelEv() // a killed worker stops evaluating AND heartbeating
			return
		case <-t.C:
			t.Reset(w.jitter(interval))
			hbCtx, cancel := context.WithTimeout(ctx, interval)
			// Heartbeats are children of the evaluation span, created from
			// this goroutine — safe because Child only reads immutable span
			// identity, never the parent's mutable attrs.
			hbSpan := evalSpan.Child("worker.heartbeat")
			hbCtx = telemetry.ContextWithSpan(hbCtx, hbSpan)
			_, err := w.cfg.Client.Heartbeat(hbCtx, lease.LeaseID)
			hbSpan.End()
			w.met.heartbeats.Inc()
			cancel()
			switch {
			case err == nil, ctx.Err() != nil:
			case client.IsLeaseExpired(err):
				w.logf("worker %s: lease %s was requeued; aborting evaluation", w.cfg.Name, lease.LeaseID)
				cancelEv()
				return
			default:
				w.logf("worker %s: heartbeat %s: %v", w.cfg.Name, lease.LeaseID, err)
			}
		}
	}
}

// sleepIdle sleeps the idle backoff, returning non-nil when ctx ended.
func (w *Worker) sleepIdle(ctx context.Context, attempt int) error {
	return w.cfg.sleep(ctx, w.idleBackoff(attempt))
}

package fidelity

import (
	"testing"

	"repro/internal/problem"
	"repro/internal/testfunc"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		costs []float64
		ok    bool
	}{
		{"two-level", []float64{0.1, 1}, true},
		{"three-level", []float64{0.05, 0.3, 1}, true},
		{"one rung", []float64{1}, false},
		{"empty", nil, false},
		{"non-increasing", []float64{0.5, 0.5, 1}, false},
		{"decreasing", []float64{0.5, 0.1, 1}, false},
		{"zero cost", []float64{0, 1}, false},
		{"negative cost", []float64{-0.1, 1}, false},
		{"target not unit", []float64{0.1, 0.9}, false},
	}
	for _, tc := range cases {
		_, err := FromCosts(tc.costs)
		if (err == nil) != tc.ok {
			t.Errorf("%s: FromCosts(%v) err=%v, want ok=%v", tc.name, tc.costs, err, tc.ok)
		}
	}
}

func TestTwoLevelNamesAndCosts(t *testing.T) {
	l, err := TwoLevel(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rungs() != 2 || l.Target() != 1 {
		t.Fatalf("Rungs=%d Target=%d, want 2/1", l.Rungs(), l.Target())
	}
	if l.Name(0) != "low" || l.Name(1) != "high" {
		t.Fatalf("names %q/%q, want low/high", l.Name(0), l.Name(1))
	}
	if l.Cost(0) != 0.1 || l.Cost(1) != 1 {
		t.Fatalf("costs %g/%g", l.Cost(0), l.Cost(1))
	}
}

func TestThreeLevelNames(t *testing.T) {
	l, err := FromCosts([]float64{0.05, 0.3, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"low", "mid1", "high"}
	for k, w := range want {
		if l.Name(k) != w {
			t.Errorf("Name(%d)=%q, want %q", k, l.Name(k), w)
		}
	}
	costs := l.Costs()
	costs[0] = 99 // Costs must be a copy
	if l.Cost(0) != 0.05 {
		t.Fatal("Costs() aliases internal state")
	}
}

func TestOfProblemTwoFidelityMatchesCostRatio(t *testing.T) {
	p := testfunc.Forrester()
	l, err := OfProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rungs() != 2 {
		t.Fatalf("Rungs=%d, want 2", l.Rungs())
	}
	// Bit-identity with the engine's historical costLow expression.
	want := p.Cost(problem.Low) / p.Cost(problem.High)
	if l.Cost(0) != want {
		t.Fatalf("Cost(0)=%g, want %g (exact)", l.Cost(0), want)
	}
}

func TestOfProblemThreeRungs(t *testing.T) {
	p := testfunc.Forrester3()
	l, err := OfProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rungs() != 3 {
		t.Fatalf("Rungs=%d, want 3", l.Rungs())
	}
	target := p.Cost(problem.Fidelity(2))
	for k := 0; k < 3; k++ {
		if got, want := l.Cost(k), p.Cost(problem.Fidelity(k))/target; got != want {
			t.Errorf("Cost(%d)=%g, want %g", k, got, want)
		}
	}
}

func TestTwoFidelityView(t *testing.T) {
	p := testfunc.Forrester3()
	v := NewTwoFidelityView(p)
	if problem.NumFidelities(v) != 2 {
		t.Fatalf("view NumFidelities=%d, want 2", problem.NumFidelities(v))
	}
	if v.Name() != p.Name()+"-2f" {
		t.Fatalf("view name %q", v.Name())
	}
	x := []float64{0.4}
	if got, want := v.Evaluate(x, problem.Low), p.Evaluate(x, problem.Low); got.Objective != want.Objective {
		t.Fatalf("low eval %g != %g", got.Objective, want.Objective)
	}
	if got, want := v.Evaluate(x, problem.High), p.Evaluate(x, problem.Fidelity(2)); got.Objective != want.Objective {
		t.Fatalf("high eval should hit rung 2: %g != %g", got.Objective, want.Objective)
	}
	if v.Cost(problem.High) != p.Cost(problem.Fidelity(2)) {
		t.Fatal("high cost should be the target rung's")
	}
	if v.Cost(problem.Low) != p.Cost(problem.Low) {
		t.Fatal("low cost should be rung 0's")
	}
	l, err := OfProblem(v)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rungs() != 2 {
		t.Fatalf("view ladder Rungs=%d, want 2", l.Rungs())
	}
}

func TestNumFidelitiesUnwraps(t *testing.T) {
	if got := problem.NumFidelities(testfunc.Forrester3()); got != 3 {
		t.Fatalf("Forrester3 NumFidelities=%d, want 3", got)
	}
	if got := problem.NumFidelities(testfunc.Forrester()); got != 2 {
		t.Fatalf("Forrester NumFidelities=%d, want 2", got)
	}
}

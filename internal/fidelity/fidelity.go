// Package fidelity models the simulation accuracy axis as a first-class
// ladder of rungs rather than a low/high bool.
//
// A Ladder is an ordered list of K >= 2 rungs. Rung 0 is the cheapest
// simulation configuration (shortest transient, fewest corners), rung K-1 is
// the full-accuracy target whose cost defines the unit of equivalent
// simulations. Every other rung carries a relative cost gamma_k in (0, 1).
// The two-fidelity engine of the source paper is the K=2 special case: rung 0
// is "low" with cost gamma, rung 1 is "high" with cost 1.
//
// The package is deliberately tiny and dependency-light: the core engine, the
// catalog, the wire API and the CLI all consume the same Ladder value, so the
// rung count and the per-rung costs have exactly one source of truth per
// problem.
package fidelity

import (
	"fmt"

	"repro/internal/problem"
)

// Rung is one level of a fidelity ladder.
type Rung struct {
	// Name is a short human-readable label ("low", "mid1", "high").
	Name string
	// Cost is the price of one evaluation at this rung, expressed in
	// equivalent target-rung simulations. The target rung has Cost == 1.
	Cost float64
}

// Ladder is an immutable ordered list of fidelity rungs. The zero value is
// invalid; construct one with New, TwoLevel, FromCosts or OfProblem.
type Ladder struct {
	rungs []Rung
}

// New builds a ladder from explicit rungs. It returns an error unless there
// are at least two rungs, costs are strictly increasing and positive, and the
// final rung costs exactly 1.
func New(rungs []Rung) (Ladder, error) {
	if len(rungs) < 2 {
		return Ladder{}, fmt.Errorf("fidelity: ladder needs at least 2 rungs, got %d", len(rungs))
	}
	prev := 0.0
	for k, r := range rungs {
		if r.Cost <= prev {
			return Ladder{}, fmt.Errorf("fidelity: rung %d cost %g not strictly increasing and positive", k, r.Cost)
		}
		prev = r.Cost
	}
	if last := rungs[len(rungs)-1].Cost; last != 1 {
		return Ladder{}, fmt.Errorf("fidelity: target rung must cost exactly 1, got %g", last)
	}
	cp := make([]Rung, len(rungs))
	copy(cp, rungs)
	return Ladder{rungs: cp}, nil
}

// FromCosts builds a ladder from relative costs alone, naming the rungs
// low / mid1..midN / high.
func FromCosts(costs []float64) (Ladder, error) {
	rungs := make([]Rung, len(costs))
	for k, c := range costs {
		rungs[k] = Rung{Name: rungName(k, len(costs)), Cost: c}
	}
	return New(rungs)
}

// TwoLevel is the paper's two-fidelity ladder: rung 0 ("low") at relative
// cost gamma, rung 1 ("high") at cost 1.
func TwoLevel(gamma float64) (Ladder, error) {
	return FromCosts([]float64{gamma, 1})
}

// rungName matches the legacy two-fidelity vocabulary at the extremes so that
// telemetry strings are unchanged for K=2.
func rungName(k, total int) string {
	switch {
	case k == 0:
		return "low"
	case k == total-1:
		return "high"
	default:
		return fmt.Sprintf("mid%d", k)
	}
}

// Rungs returns the number of rungs K.
func (l Ladder) Rungs() int { return len(l.rungs) }

// Target returns the index of the full-accuracy rung, K-1.
func (l Ladder) Target() int { return len(l.rungs) - 1 }

// Cost returns the relative cost of rung k.
func (l Ladder) Cost(k int) float64 { return l.rungs[k].Cost }

// Name returns the label of rung k.
func (l Ladder) Name(k int) string { return l.rungs[k].Name }

// Costs returns a copy of the per-rung relative costs.
func (l Ladder) Costs() []float64 {
	out := make([]float64, len(l.rungs))
	for k, r := range l.rungs {
		out[k] = r.Cost
	}
	return out
}

// OfProblem derives a problem's ladder from its Cost schedule. The rung count
// comes from problem.NumFidelities (2 unless the problem implements
// problem.MultiFidelity), and cost k is normalized by the target rung's cost:
//
//	gamma_k = p.Cost(Fidelity(k)) / p.Cost(Fidelity(K-1))
//
// For K=2 this reproduces the engine's historical costLow ratio bit for bit.
func OfProblem(p problem.Problem) (Ladder, error) {
	k := problem.NumFidelities(p)
	target := p.Cost(problem.Fidelity(k - 1))
	if target <= 0 {
		return Ladder{}, fmt.Errorf("fidelity: problem %q target rung cost %g must be positive", p.Name(), target)
	}
	costs := make([]float64, k)
	for r := 0; r < k; r++ {
		costs[r] = p.Cost(problem.Fidelity(r)) / target
	}
	return FromCosts(costs)
}

// TwoFidelityView restricts a K-rung problem to its bottom and top rungs so
// the ladder and the classic two-fidelity engine can be compared on the same
// simulator. Evaluations at problem.Low map to rung 0 and everything else to
// the target rung; Cost follows the same mapping.
type TwoFidelityView struct {
	inner  problem.Problem
	target problem.Fidelity
}

// NewTwoFidelityView wraps p. If p has only two rungs the wrapper is a
// transparent rename.
func NewTwoFidelityView(p problem.Problem) *TwoFidelityView {
	return &TwoFidelityView{inner: p, target: problem.Fidelity(problem.NumFidelities(p) - 1)}
}

func (v *TwoFidelityView) Name() string { return v.inner.Name() + "-2f" }

func (v *TwoFidelityView) Dim() int { return v.inner.Dim() }

func (v *TwoFidelityView) Bounds() (lo, hi []float64) { return v.inner.Bounds() }

func (v *TwoFidelityView) NumConstraints() int { return v.inner.NumConstraints() }

func (v *TwoFidelityView) map2f(f problem.Fidelity) problem.Fidelity {
	if f == problem.Low {
		return problem.Low
	}
	return v.target
}

func (v *TwoFidelityView) Evaluate(x []float64, f problem.Fidelity) problem.Evaluation {
	return v.inner.Evaluate(x, v.map2f(f))
}

func (v *TwoFidelityView) Cost(f problem.Fidelity) float64 { return v.inner.Cost(v.map2f(f)) }

// NumFidelities pins the view at two rungs so problem.NumFidelities does not
// unwrap through to the inner ladder.
func (v *TwoFidelityView) NumFidelities() int { return 2 }

// Unwrap exposes the underlying K-rung problem.
func (v *TwoFidelityView) Unwrap() problem.Problem { return v.inner }

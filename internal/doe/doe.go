// Package doe provides low-discrepancy designs of experiments used to
// initialize Bayesian-optimization runs and to seed multi-start acquisition
// maximization: the base-2 radical inverse (van der Corput), Sobol'
// sequences (with the classic Bratley–Fox direction numbers, dimensions up
// to 18), and Halton sequences with Cranley–Patterson rotation for arbitrary
// dimension. All samplers expose the same signature as
// stats.LatinHypercube so the optimizer accepts any of them.
package doe

import (
	"fmt"
	"math/rand"
)

// VanDerCorput returns the base-2 radical inverse of i — the first Sobol'
// dimension.
func VanDerCorput(i uint32) float64 {
	i = (i << 16) | (i >> 16)
	i = ((i & 0x00ff00ff) << 8) | ((i & 0xff00ff00) >> 8)
	i = ((i & 0x0f0f0f0f) << 4) | ((i & 0xf0f0f0f0) >> 4)
	i = ((i & 0x33333333) << 2) | ((i & 0xcccccccc) >> 2)
	i = ((i & 0x55555555) << 1) | ((i & 0xaaaaaaaa) >> 1)
	return float64(i) / (1 << 32)
}

// sobolPoly lists primitive polynomials over GF(2) in the Bratley–Fox
// encoding: Degree s and interior coefficients packed into A (the polynomial
// is x^s + a₁x^{s−1} + … + a_{s−1}x + 1 with a-bits read from the most
// significant side). Dimensions beyond the first use successive entries.
var sobolPoly = []struct {
	Degree int
	A      uint32
}{
	{1, 0},
	{2, 1},
	{3, 1}, {3, 2},
	{4, 1}, {4, 4},
	{5, 2}, {5, 4}, {5, 7}, {5, 11}, {5, 13}, {5, 14},
	{6, 1}, {6, 13}, {6, 16}, {6, 19}, {6, 22}, {6, 25},
}

// MaxSobolDim is the largest dimensionality NewSobol accepts (first
// dimension = van der Corput plus one per table entry).
var MaxSobolDim = 1 + len(sobolPoly)

const sobolBits = 31

// Sobol generates a Sobol' low-discrepancy sequence.
type Sobol struct {
	dim int
	v   [][]uint32 // v[d][bit] direction numbers scaled to sobolBits
	x   []uint32   // current Gray-code state
	n   uint32
}

// NewSobol returns a Sobol' sequence generator for dim ≤ MaxSobolDim
// dimensions.
func NewSobol(dim int) *Sobol {
	if dim < 1 || dim > MaxSobolDim {
		panic(fmt.Sprintf("doe: Sobol dimension %d outside [1, %d]", dim, MaxSobolDim))
	}
	s := &Sobol{dim: dim, x: make([]uint32, dim)}
	s.v = make([][]uint32, dim)
	for d := 0; d < dim; d++ {
		v := make([]uint32, sobolBits)
		if d == 0 {
			for i := 0; i < sobolBits; i++ {
				v[i] = 1 << (sobolBits - 1 - i)
			}
		} else {
			p := sobolPoly[d-1]
			deg := p.Degree
			// Initial direction numbers m_i = 1 (odd, < 2^i): the original
			// Sobol' choice.
			m := make([]uint32, sobolBits)
			for i := 0; i < deg && i < sobolBits; i++ {
				m[i] = 1
			}
			// Recurrence: m_i = a₁·2·m_{i−1} ⊕ … ⊕ 2^s·m_{i−s} ⊕ m_{i−s}.
			for i := deg; i < sobolBits; i++ {
				mi := m[i-deg] ^ (m[i-deg] << deg)
				for k := 1; k < deg; k++ {
					if (p.A>>(deg-1-k))&1 == 1 {
						mi ^= m[i-k] << k
					}
				}
				m[i] = mi
			}
			for i := 0; i < sobolBits; i++ {
				v[i] = m[i] << (sobolBits - 1 - i)
			}
		}
		s.v[d] = v
	}
	return s
}

// Dim returns the sequence dimensionality.
func (s *Sobol) Dim() int { return s.dim }

// Next returns the next point in [0,1)^dim (Gray-code order; the first call
// returns the point after the origin).
func (s *Sobol) Next() []float64 {
	s.n++
	// Index of the lowest zero bit of n−1 (Gray-code step).
	c := 0
	for v := s.n - 1; v&1 == 1; v >>= 1 {
		c++
	}
	out := make([]float64, s.dim)
	for d := 0; d < s.dim; d++ {
		s.x[d] ^= s.v[d][c]
		out[d] = float64(s.x[d]) / (1 << sobolBits)
	}
	return out
}

// SobolInBox draws n Sobol' points mapped into [lo, hi]^d. The rng applies a
// random Cranley–Patterson shift so repeated designs differ across seeds;
// pass nil for the raw sequence.
func SobolInBox(rng *rand.Rand, lo, hi []float64, n int) [][]float64 {
	d := len(lo)
	s := NewSobol(d)
	shift := make([]float64, d)
	if rng != nil {
		for j := range shift {
			shift[j] = rng.Float64()
		}
	}
	out := make([][]float64, n)
	for i := range out {
		u := s.Next()
		p := make([]float64, d)
		for j := 0; j < d; j++ {
			uj := u[j] + shift[j]
			if uj >= 1 {
				uj -= 1
			}
			p[j] = lo[j] + uj*(hi[j]-lo[j])
		}
		out[i] = p
	}
	return out
}

// Primes returns the first n primes by trial division (n is small in DOE
// use: one prime per dimension).
func Primes(n int) []int {
	if n <= 0 {
		return nil
	}
	primes := make([]int, 0, n)
	for candidate := 2; len(primes) < n; candidate++ {
		isPrime := true
		for _, p := range primes {
			if p*p > candidate {
				break
			}
			if candidate%p == 0 {
				isPrime = false
				break
			}
		}
		if isPrime {
			primes = append(primes, candidate)
		}
	}
	return primes
}

// RadicalInverse returns the base-b radical inverse of i.
func RadicalInverse(i uint64, b int) float64 {
	inv := 1.0 / float64(b)
	f := inv
	v := 0.0
	for ; i > 0; i /= uint64(b) {
		v += float64(i%uint64(b)) * f
		f *= inv
	}
	return v
}

// HaltonInBox draws n Halton points (one prime base per dimension) mapped
// into [lo, hi]^d, with a Cranley–Patterson rotation from rng (nil for the
// raw sequence). Works for any dimension; preferred over Sobol beyond
// MaxSobolDim.
func HaltonInBox(rng *rand.Rand, lo, hi []float64, n int) [][]float64 {
	d := len(lo)
	bases := Primes(d)
	shift := make([]float64, d)
	if rng != nil {
		for j := range shift {
			shift[j] = rng.Float64()
		}
	}
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, d)
		for j := 0; j < d; j++ {
			u := RadicalInverse(uint64(i+1), bases[j]) + shift[j]
			if u >= 1 {
				u -= 1
			}
			p[j] = lo[j] + u*(hi[j]-lo[j])
		}
		out[i] = p
	}
	return out
}

// Sampler is the shared signature of all initialization designs
// (LatinHypercube, SobolInBox, HaltonInBox).
type Sampler func(rng *rand.Rand, lo, hi []float64, n int) [][]float64

// Auto picks Sobol for dimensions it supports and Halton above that.
func Auto(rng *rand.Rand, lo, hi []float64, n int) [][]float64 {
	if len(lo) <= MaxSobolDim {
		return SobolInBox(rng, lo, hi, n)
	}
	return HaltonInBox(rng, lo, hi, n)
}

package doe

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVanDerCorputFirstValues(t *testing.T) {
	// 1 → 0.5, 2 → 0.25, 3 → 0.75, 4 → 0.125 …
	cases := []struct {
		i    uint32
		want float64
	}{
		{0, 0}, {1, 0.5}, {2, 0.25}, {3, 0.75}, {4, 0.125}, {5, 0.625}, {6, 0.375}, {7, 0.875},
	}
	for _, c := range cases {
		if got := VanDerCorput(c.i); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("VdC(%d) = %v, want %v", c.i, got, c.want)
		}
	}
}

func TestVanDerCorputRange(t *testing.T) {
	f := func(i uint32) bool {
		v := VanDerCorput(i)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSobolFirstDimensionIsVdC(t *testing.T) {
	s := NewSobol(1)
	// Gray-code order visits the same set of points as VdC over a full
	// power-of-two block; check the visited set for n = 8.
	seen := map[float64]bool{}
	for i := 0; i < 8; i++ {
		seen[s.Next()[0]] = true
	}
	for _, want := range []float64{0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875} {
		if !seen[want] {
			t.Fatalf("VdC value %v missing from first Sobol dimension: %v", want, seen)
		}
	}
}

func TestSobolStratification(t *testing.T) {
	// Any 2^k consecutive-from-start block of a Sobol dimension places
	// exactly one point in each dyadic interval of width 2^−k.
	for dim := 1; dim <= MaxSobolDim; dim++ {
		s := NewSobol(dim)
		const k = 4
		n := 1 << k
		counts := make([][]int, dim)
		for d := range counts {
			counts[d] = make([]int, n)
			counts[d][0]++ // the generator skips the origin point
		}
		for i := 0; i < n-1; i++ {
			p := s.Next()
			for d, v := range p {
				if v < 0 || v >= 1 {
					t.Fatalf("dim %d point %v outside [0,1)", d, v)
				}
				counts[d][int(v*float64(n))]++
			}
		}
		for d := range counts {
			for bin, c := range counts[d] {
				if c != 1 {
					t.Fatalf("sobol dim %d/%d: bin %d has %d points", d, dim, bin, c)
				}
			}
		}
	}
}

func TestSobolDistinctDimensions(t *testing.T) {
	s := NewSobol(MaxSobolDim)
	n := 64
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = s.Next()
	}
	// No two dimensions should be identical.
	for a := 0; a < MaxSobolDim; a++ {
		for b := a + 1; b < MaxSobolDim; b++ {
			same := true
			for i := 0; i < n; i++ {
				if pts[i][a] != pts[i][b] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("sobol dims %d and %d identical", a, b)
			}
		}
	}
}

func TestSobolDimensionBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic above MaxSobolDim")
		}
	}()
	NewSobol(MaxSobolDim + 1)
}

func TestSobolInBoxMapsAndShifts(t *testing.T) {
	lo, hi := []float64{-1, 10}, []float64{1, 20}
	raw := SobolInBox(nil, lo, hi, 32)
	for _, p := range raw {
		if p[0] < -1 || p[0] >= 1 || p[1] < 10 || p[1] >= 20 {
			t.Fatalf("point %v outside box", p)
		}
	}
	shifted := SobolInBox(rand.New(rand.NewSource(1)), lo, hi, 32)
	diff := false
	for i := range raw {
		if raw[i][0] != shifted[i][0] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("Cranley–Patterson shift had no effect")
	}
}

func TestPrimes(t *testing.T) {
	want := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	got := Primes(10)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Primes(10) = %v", got)
		}
	}
	if Primes(0) != nil {
		t.Fatal("Primes(0) should be nil")
	}
}

func TestRadicalInverseBase3(t *testing.T) {
	// 1 → 1/3, 2 → 2/3, 3 → 1/9, 4 → 4/9 (digits reversed).
	cases := []struct {
		i    uint64
		want float64
	}{
		{1, 1.0 / 3}, {2, 2.0 / 3}, {3, 1.0 / 9}, {4, 4.0 / 9}, {5, 7.0 / 9},
	}
	for _, c := range cases {
		if got := RadicalInverse(c.i, 3); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("RadicalInverse(%d, 3) = %v, want %v", c.i, got, c.want)
		}
	}
}

func TestHaltonInBoxHighDimension(t *testing.T) {
	// 36 dimensions (the charge pump) must work and stay in the box.
	d := 36
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range hi {
		hi[i] = float64(i + 1)
	}
	pts := HaltonInBox(rand.New(rand.NewSource(2)), lo, hi, 50)
	if len(pts) != 50 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		for j := range p {
			if p[j] < lo[j] || p[j] >= hi[j] {
				t.Fatalf("coordinate %d = %v outside [%v, %v)", j, p[j], lo[j], hi[j])
			}
		}
	}
}

func TestHaltonUniformityBeatsClumping(t *testing.T) {
	// In 1-d, the Halton (= VdC base 2) prefix should have discrepancy far
	// below random sampling: check max gap between sorted points.
	lo, hi := []float64{0}, []float64{1}
	pts := HaltonInBox(nil, lo, hi, 64)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p[0]
	}
	maxGap := maxSortedGap(vals)
	if maxGap > 3.0/64 {
		t.Fatalf("Halton max gap %v too large", maxGap)
	}
}

func maxSortedGap(vals []float64) float64 {
	sorted := append([]float64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	maxGap := sorted[0]
	for i := 1; i < len(sorted); i++ {
		if g := sorted[i] - sorted[i-1]; g > maxGap {
			maxGap = g
		}
	}
	if g := 1 - sorted[len(sorted)-1]; g > maxGap {
		maxGap = g
	}
	return maxGap
}

func TestAutoSwitchesSampler(t *testing.T) {
	// Low dim uses Sobol, high dim Halton; both must produce in-box points.
	rng := rand.New(rand.NewSource(3))
	low := Auto(rng, []float64{0, 0}, []float64{1, 1}, 8)
	if len(low) != 8 {
		t.Fatal("auto low-dim failed")
	}
	d := MaxSobolDim + 5
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range hi {
		hi[i] = 1
	}
	high := Auto(rng, lo, hi, 8)
	if len(high) != 8 {
		t.Fatal("auto high-dim failed")
	}
}

func TestSamplerSignatureCompatibility(t *testing.T) {
	// All three designs satisfy the shared Sampler type.
	for _, s := range []Sampler{SobolInBox, HaltonInBox, Auto} {
		pts := s(rand.New(rand.NewSource(4)), []float64{0}, []float64{1}, 4)
		if len(pts) != 4 {
			t.Fatal("sampler did not produce requested count")
		}
	}
}

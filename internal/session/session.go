// Package session wraps the ask/tell core.Engine into a long-lived,
// concurrency-safe optimization session — the unit of work of the
// optimization-as-a-service subsystem (internal/server exposes sessions over
// HTTP, internal/client consumes them).
//
// A Session decouples "suggest" from "evaluate": external evaluators (SPICE
// farms, job schedulers, remote clients) poll Ask for the next query,
// run the simulation wherever they like, and feed the outcome back through
// Tell. The underlying engine guarantees that a session-driven trajectory is
// bit-identical to the in-process core.Optimize under the same seed.
//
// Sessions are durable: when Config.Store (pluggable storage engine) or
// Config.CheckpointPath (direct file) is set, every ingested observation is
// persisted atomically and durably, and Open restores a previously persisted
// session transparently — a process killed mid-run resumes exactly where its
// last checkpoint left off, rolling back past torn or corrupt snapshot
// generations when the store detects them.
//
// Surrogate fitting is the expensive step of Ask. Sessions sharing one
// *Limiter bound the number of concurrently fitting sessions process-wide,
// so a server with hundreds of live sessions degrades gracefully instead of
// oversubscribing the CPU (each fit itself parallelizes via
// internal/parallel up to Config.Core.Workers).
package session

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/problem"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// Limiter is a counting semaphore bounding how many sessions may run their
// surrogate-fit/acquisition pipeline at once. A nil *Limiter imposes no
// bound. InUse/Waiting expose the live queue state for observability (the
// server publishes them as gauges), at the cost of two atomic ops per
// Acquire.
type Limiter struct {
	sem     chan struct{}
	inUse   atomic.Int64
	waiting atomic.Int64
}

// NewLimiter builds a limiter admitting n concurrent fits; n <= 0 selects
// parallel.DefaultWorkers().
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		n = parallel.DefaultWorkers()
	}
	return &Limiter{sem: make(chan struct{}, n)}
}

// Acquire blocks until a fit slot is free or ctx is done.
func (l *Limiter) Acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	l.waiting.Add(1)
	defer l.waiting.Add(-1)
	select {
	case l.sem <- struct{}{}:
		l.inUse.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot taken by Acquire.
func (l *Limiter) Release() {
	if l == nil {
		return
	}
	l.inUse.Add(-1)
	<-l.sem
}

// Cap returns the number of concurrent fit slots (0 for a nil limiter).
func (l *Limiter) Cap() int {
	if l == nil {
		return 0
	}
	return cap(l.sem)
}

// InUse returns the number of slots currently held.
func (l *Limiter) InUse() int {
	if l == nil {
		return 0
	}
	return int(l.inUse.Load())
}

// Waiting returns the number of goroutines blocked in (or entering) Acquire.
func (l *Limiter) Waiting() int {
	if l == nil {
		return 0
	}
	return int(l.waiting.Load())
}

// Config describes one session.
type Config struct {
	// Problem is the optimization problem evaluators will be asked to
	// simulate (required). For service deployments this is the server-side
	// twin of whatever the evaluator runs; only its identity/shape and cost
	// model are consulted — evaluations arrive through Tell.
	Problem problem.Problem
	// Core tunes the optimizer. Core.Checkpointer is overridden when
	// CheckpointPath is set.
	Core core.Config
	// Seed seeds the session RNG; the whole trajectory is a deterministic
	// function of (Problem, Core, Seed).
	Seed int64
	// Store, when non-nil, persists a snapshot into the storage engine under
	// StoreID after every ingested observation and enables Open to restore
	// the session — the pluggable-backend successor of CheckpointPath, with
	// crash consistency, corruption detection and generational rollback
	// handled by the backend. Takes precedence over CheckpointPath.
	Store storage.Store
	// StoreID is the record ID snapshots are stored under (required when
	// Store is set; typically the server-side session ID).
	StoreID string
	// CheckpointPath, when non-empty (and Store is nil), persists a snapshot
	// after every completed iteration and enables Open to restore the
	// session.
	CheckpointPath string
	// Limiter, when non-nil, bounds concurrent surrogate fits across all
	// sessions sharing it.
	Limiter *Limiter
	// Telemetry, when non-nil, wires full-loop observability into the
	// session's engine (see core.Config.Telemetry). It takes effect only when
	// Core.Telemetry is unset, so callers that pre-wired the core keep their
	// recorder.
	Telemetry *telemetry.Recorder
}

// Session is a thread-safe, persistent ask/tell optimization run.
type Session struct {
	mu  sync.Mutex
	eng *core.Engine
	cfg Config

	created  time.Time
	lastUsed time.Time
}

// Status is a point-in-time summary of a session.
type Status struct {
	core.Progress
	Observations int
	Created      time.Time
	LastUsed     time.Time
}

func (c *Config) prepare() error {
	if c.Problem == nil {
		return errors.New("session: Config.Problem is required")
	}
	switch {
	case c.Store != nil:
		if c.StoreID == "" {
			return errors.New("session: Config.StoreID is required with Config.Store")
		}
		c.Core.Checkpointer = core.StoreCheckpointer(c.Store, c.StoreID)
	case c.CheckpointPath != "":
		c.Core.Checkpointer = core.FileCheckpointer(c.CheckpointPath)
	}
	if c.Core.Telemetry == nil {
		c.Core.Telemetry = c.Telemetry
	}
	return nil
}

// New starts a fresh session.
func New(cfg Config) (*Session, error) {
	if err := cfg.prepare(); err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(cfg.Problem, cfg.Core, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	now := time.Now()
	return &Session{eng: eng, cfg: cfg, created: now, lastUsed: now}, nil
}

// Restore rebuilds a session from a snapshot (validated against cfg;
// mismatches return core.ErrResumeMismatch).
func Restore(cfg Config, ck *core.Checkpoint) (*Session, error) {
	if err := cfg.prepare(); err != nil {
		return nil, err
	}
	eng, err := core.RestoreEngine(cfg.Problem, cfg.Core, rand.New(rand.NewSource(cfg.Seed)), ck)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	return &Session{eng: eng, cfg: cfg, created: now, lastUsed: now}, nil
}

// Open restores the session persisted in cfg.Store (or at
// cfg.CheckpointPath) when a snapshot exists, and starts a fresh session
// otherwise — the idempotent entry point for servers recovering their
// session inventory after a restart. A store whose every generation of the
// snapshot is corrupt reports storage.ErrNotFound (after quarantining the
// evidence), which also starts fresh: no acknowledged observation can be in
// a snapshot that never verified.
func Open(cfg Config) (*Session, error) {
	if cfg.Store != nil {
		switch ck, err := core.LoadCheckpointFromStore(cfg.Store, cfg.StoreID); {
		case err == nil:
			return Restore(cfg, ck)
		case errors.Is(err, storage.ErrNotFound):
			// No snapshot yet: fresh session.
		default:
			return nil, fmt.Errorf("session: open %s from store: %w", cfg.StoreID, err)
		}
		return New(cfg)
	}
	if cfg.CheckpointPath != "" {
		switch ck, err := core.LoadCheckpoint(cfg.CheckpointPath); {
		case err == nil:
			return Restore(cfg, ck)
		case errors.Is(err, fs.ErrNotExist):
			// No snapshot yet: fresh session.
		default:
			return nil, fmt.Errorf("session: open %s: %w", cfg.CheckpointPath, err)
		}
	}
	return New(cfg)
}

// touch records activity; callers hold s.mu.
func (s *Session) touch() { s.lastUsed = time.Now() }

// Ask returns the pending suggestion, computing the next one when none is
// outstanding. The fit budget (Config.Limiter) is acquired for the duration
// of the computation; ctx bounds only the wait for that slot plus the
// caller's patience — cancellation does NOT terminate the session, so an
// impatient HTTP client merely abandons its poll and can retry.
func (s *Session) Ask(ctx context.Context) (core.Suggestion, error) {
	if err := s.cfg.Limiter.Acquire(ctx); err != nil {
		return core.Suggestion{}, err
	}
	defer s.cfg.Limiter.Release()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch()
	// The engine gets a detached context on purpose: a per-request ctx would
	// terminally interrupt the run on client disconnect. Detach strips
	// deadlines and cancellation but keeps the request's trace span, so
	// engine.ask still attributes to the caller's trace.
	return s.eng.Ask(telemetry.Detach(ctx))
}

// AskBatch tops the session up to q concurrently-outstanding suggestions and
// returns the full outstanding set, oldest first (see core.Engine.AskBatch
// for the fantasization contract). Like Ask, it holds a fit slot for the
// duration of any surrogate computation; with every slot already outstanding
// it returns without fitting anything.
func (s *Session) AskBatch(ctx context.Context, q int) ([]core.Suggestion, error) {
	if err := s.cfg.Limiter.Acquire(ctx); err != nil {
		return nil, err
	}
	defer s.cfg.Limiter.Release()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch()
	// Detached context for the same reason as Ask: a per-request ctx would
	// terminally interrupt the run on client disconnect, while the trace
	// span survives for attribution.
	return s.eng.AskBatch(telemetry.Detach(ctx), q)
}

// Pending returns copies of the outstanding (asked-but-untold) suggestions,
// oldest first, without computing anything.
func (s *Session) Pending() []core.Suggestion {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Pending()
}

// TellByID ingests the outcome of the outstanding suggestion with the given
// ID — the out-of-order observation path of a distributed batch run (see
// core.Engine.TellByID).
func (s *Session) TellByID(id string, ev problem.Evaluation) error {
	return s.TellByIDCtx(context.Background(), id, ev)
}

// TellByIDCtx is TellByID with a context: a request span carried by ctx
// joins the engine.tell / storage.put spans to the reporting request's
// trace. Cancellation is never forwarded to the engine.
func (s *Session) TellByIDCtx(ctx context.Context, id string, ev problem.Evaluation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch()
	return s.eng.TellByIDCtx(telemetry.Detach(ctx), id, ev)
}

// Tell ingests the outcome of the pending suggestion (see core.Engine.Tell
// for the validation and sanitation contract) and persists a checkpoint when
// the session is durable.
func (s *Session) Tell(x []float64, fid problem.Fidelity, ev problem.Evaluation) error {
	return s.TellCtx(context.Background(), x, fid, ev)
}

// TellCtx is Tell with a context, for trace attribution like TellByIDCtx.
func (s *Session) TellCtx(ctx context.Context, x []float64, fid problem.Fidelity, ev problem.Evaluation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch()
	return s.eng.TellCtx(telemetry.Detach(ctx), x, fid, ev)
}

// Status summarizes the session.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		Progress:     s.eng.Progress(),
		Observations: len(s.eng.History()),
		Created:      s.created,
		LastUsed:     s.lastUsed,
	}
}

// History returns a copy of the observation log.
func (s *Session) History() []core.Observation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]core.Observation(nil), s.eng.History()...)
}

// Done reports whether the session reached a terminal state.
func (s *Session) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Done()
}

// Result assembles the run outcome (see core.Engine.Result).
func (s *Session) Result() (*core.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Result()
}

// Snapshot returns a deep-copied checkpoint of the current state.
func (s *Session) Snapshot() *core.Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Snapshot()
}

// Persist force-writes the current snapshot to the session's store or
// CheckpointPath (a no-op for non-durable sessions). Servers call it before
// evicting idle sessions and during graceful shutdown.
func (s *Session) Persist() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Store != nil {
		return core.StoreCheckpointer(s.cfg.Store, s.cfg.StoreID)(s.eng.Snapshot())
	}
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	return core.SaveCheckpoint(s.cfg.CheckpointPath, s.eng.Snapshot())
}

// LastUsed reports the time of the most recent Ask/Tell.
func (s *Session) LastUsed() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastUsed
}

// CheckpointPath returns the session's persistence file ("" when volatile).
func (s *Session) CheckpointPath() string { return s.cfg.CheckpointPath }

// Problem returns the session's problem.
func (s *Session) Problem() problem.Problem { return s.cfg.Problem }

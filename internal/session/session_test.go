package session

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/optimize"
	"repro/internal/problem"
	"repro/internal/testfunc"
)

func fastCore(budget float64) core.Config {
	return core.Config{
		Budget:    budget,
		InitLow:   8,
		InitHigh:  4,
		MSP:       optimize.MSPConfig{Starts: 6, LocalIter: 25},
		GPMaxIter: 40,
	}
}

// drive runs the full ask/tell protocol against a session with a local
// evaluator and returns its history.
func drive(t *testing.T, s *Session, p problem.Problem) []core.Observation {
	t.Helper()
	for {
		sug, err := s.Ask(context.Background())
		if errors.Is(err, core.ErrBudgetExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ev, everr := problem.EvaluateRich(p, sug.X, sug.Fid)
		if everr != nil {
			ev.Failed = true
		}
		if err := s.Tell(sug.X, sug.Fid, ev); err != nil {
			t.Fatal(err)
		}
	}
	return s.History()
}

// TestSessionMatchesOptimize: a session-driven trajectory is bit-identical to
// the in-process Optimize run under the same seed.
func TestSessionMatchesOptimize(t *testing.T) {
	ref, err := core.Optimize(testfunc.Forrester(), fastCore(8), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	p := testfunc.Forrester()
	s, err := New(Config{Problem: p, Core: fastCore(8), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	hist := drive(t, s, p)
	if len(hist) != len(ref.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(hist), len(ref.History))
	}
	for i := range hist {
		for j := range hist[i].X {
			if math.Float64bits(hist[i].X[j]) != math.Float64bits(ref.History[i].X[j]) {
				t.Fatalf("obs %d: x[%d] differs", i, j)
			}
		}
		if hist[i].Fid != ref.History[i].Fid {
			t.Fatalf("obs %d: fidelity differs", i)
		}
	}
	if !s.Done() {
		t.Fatal("session must be terminal after exhausting the budget")
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res.Best.Objective) != math.Float64bits(ref.Best.Objective) {
		t.Fatal("best objective differs from in-process run")
	}
}

// TestSessionOpenPersistRoundTrip: Open restores a persisted session (here
// snapshotted mid-initialization via Persist) and the continuation completes
// with the original prefix intact.
func TestSessionOpenPersistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sess.ckpt.json")
	cfg := Config{Problem: testfunc.Forrester(), Core: fastCore(6), Seed: 5, CheckpointPath: path}

	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate three initialization points, then persist and drop the session.
	p := cfg.Problem
	for i := 0; i < 3; i++ {
		sug, err := s.Ask(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Tell(sug.X, sug.Fid, p.Evaluate(sug.X, sug.Fid)); err != nil {
			t.Fatal(err)
		}
	}
	prefix := s.History()
	if err := s.Persist(); err != nil {
		t.Fatal(err)
	}

	cfg2 := Config{Problem: testfunc.Forrester(), Core: fastCore(6), Seed: 5, CheckpointPath: path}
	restored, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(restored.History()); got != len(prefix) {
		t.Fatalf("restored session has %d observations, want %d", got, len(prefix))
	}
	hist := drive(t, restored, cfg2.Problem)
	if len(hist) <= len(prefix) {
		t.Fatal("restored session did not continue past the snapshot")
	}
	for i := range prefix {
		for j := range prefix[i].X {
			if math.Float64bits(hist[i].X[j]) != math.Float64bits(prefix[i].X[j]) {
				t.Fatalf("obs %d: restored run rewrote the snapshot prefix", i)
			}
		}
	}
}

// TestSessionConfigValidation: a Problem is mandatory.
func TestSessionConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a problem must fail")
	}
}

// TestLimiter: nil limiters are no-ops; a full limiter blocks Acquire until
// Release or context cancellation.
func TestLimiter(t *testing.T) {
	var nilL *Limiter
	if err := nilL.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	nilL.Release()

	l := NewLimiter(1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("full limiter: want DeadlineExceeded, got %v", err)
	}
	l.Release()
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("released limiter must admit: %v", err)
	}
	l.Release()
}

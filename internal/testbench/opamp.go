package testbench

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/problem"
)

// OpAmpResult carries the raw two-stage op-amp metrics of one evaluation.
type OpAmpResult struct {
	GainDB   float64 // DC open-loop gain
	UGFMHz   float64 // unity-gain frequency
	PhaseDeg float64 // phase margin in degrees
	PowerUW  float64 // static power in µW
}

// OpAmp is an additional workload beyond the paper's two: a two-stage
// Miller-compensated operational amplifier where the cheap fidelity is the
// classic hand-analysis model (gm·ro products and the gm/C pole formulas
// evaluated at the simulated operating point) and the expensive fidelity a
// full small-signal AC sweep of the netlist. This is the textbook
// "equation-based model vs simulation" fidelity split that the paper's
// introduction contrasts (model-based vs simulation-based sizing), and it
// exercises the simulator's AC path.
//
// Design vector (8 variables):
//
//	x[0] W1   input-pair width (µm)
//	x[1] W3   mirror-load width (µm)
//	x[2] W5   tail-source width (µm)
//	x[3] W6   second-stage driver width (µm)
//	x[4] W7   second-stage load width (µm)
//	x[5] L    shared channel length (µm)
//	x[6] Cc   Miller capacitor (pF)
//	x[7] Ib   bias current (µA)
//
// Specification (minimize power):
//
//	gain > 55 dB, UGF > 20 MHz, phase margin > 60°.
type OpAmp struct {
	// Vdd is the supply (default 1.8 V).
	Vdd float64
	// CLoad is the output load capacitance (default 2 pF).
	CLoad float64
	// GainMinDB, UGFMinMHz, PMMinDeg are the spec limits
	// (defaults 55 dB / 20 MHz / 60°).
	GainMinDB, UGFMinMHz, PMMinDeg float64
	// SweepPoints per decade for the high-fidelity AC analysis (default 10)
	// over [1 kHz, 1 GHz].
	SweepPoints int
}

var _ problem.Problem = (*OpAmp)(nil)

// NewOpAmp returns the workload with default settings.
func NewOpAmp() *OpAmp {
	return &OpAmp{
		Vdd: 1.8, CLoad: 2e-12,
		GainMinDB: 55, UGFMinMHz: 20, PMMinDeg: 60,
		SweepPoints: 10,
	}
}

// Name implements problem.Problem.
func (p *OpAmp) Name() string { return "two-stage-opamp" }

// Dim implements problem.Problem.
func (p *OpAmp) Dim() int { return 8 }

// Bounds implements problem.Problem.
func (p *OpAmp) Bounds() (lo, hi []float64) {
	return []float64{2, 2, 2, 5, 5, 0.1, 0.5, 5},
		[]float64{60, 60, 60, 200, 200, 0.5, 5, 100}
}

// NumConstraints implements problem.Problem.
func (p *OpAmp) NumConstraints() int { return 3 }

// Cost implements problem.Problem: the hand model costs a single DC solve
// versus a full multi-point AC sweep (≈ 1:10).
func (p *OpAmp) Cost(f problem.Fidelity) float64 {
	if f == problem.Low {
		return 0.1
	}
	return 1
}

// Evaluate implements problem.Problem: minimize power subject to
// gain/UGF/phase-margin specs.
func (p *OpAmp) Evaluate(x []float64, f problem.Fidelity) problem.Evaluation {
	r := p.Simulate(x, f)
	return problem.Evaluation{
		Objective: r.PowerUW,
		Constraints: []float64{
			p.GainMinDB - r.GainDB,
			p.UGFMinMHz - r.UGFMHz,
			p.PMMinDeg - r.PhaseDeg,
		},
	}
}

// netlist builds the two-stage Miller op-amp for design x.
func (p *OpAmp) netlist(x []float64) *circuit.Circuit {
	w1, w3, w5, w6, w7 := x[0]*1e-6, x[1]*1e-6, x[2]*1e-6, x[3]*1e-6, x[4]*1e-6
	l := x[5] * 1e-6
	cc := x[6] * 1e-12
	ib := x[7] * 1e-6

	nm := func(w float64) circuit.MOSParams {
		return circuit.MOSParams{W: w, L: l, VTH: 0.45, KP: 250e-6, Lambda: 0.06 * (0.2e-6 / l)}
	}
	pm := func(w float64) circuit.MOSParams {
		return circuit.MOSParams{Type: circuit.PMOS, W: w, L: l, VTH: 0.45, KP: 110e-6, Lambda: 0.08 * (0.2e-6 / l)}
	}

	c := circuit.New()
	c.AddVSource("VDD", "vdd", circuit.Ground, circuit.DC(p.Vdd))
	// Differential inputs: common mode at mid-rail; inp carries the AC
	// stimulus, inn is AC ground. (Single-ended model of the diff drive.)
	c.AddVSource("VINP", "inp", circuit.Ground, circuit.DC(0.9)).SetAC(0.5, 0)
	c.AddVSource("VINN", "inn", circuit.Ground, circuit.DC(0.9)).SetAC(0.5, 180)
	// Bias: reference current into a diode NMOS mirrored to the tail and
	// the second-stage load via a PMOS diode.
	c.AddISource("IB", "vdd", "nbias", circuit.DC(ib))
	c.AddMOSFET("MB", "nbias", "nbias", circuit.Ground, nm(w5))
	// Tail current source.
	c.AddMOSFET("M5", "tail", "nbias", circuit.Ground, nm(w5))
	// Input pair (NMOS): M1 (inp) drives the mirror diode side, M2 (inn)
	// the output side of stage 1.
	c.AddMOSFET("M1", "d1", "inp", "tail", nm(w1))
	c.AddMOSFET("M2", "o1", "inn", "tail", nm(w1))
	// PMOS mirror load.
	c.AddMOSFET("M3", "d1", "d1", "vdd", pm(w3))
	c.AddMOSFET("M4", "o1", "d1", "vdd", pm(w3))
	// Second stage: PMOS common-source driver with NMOS mirror load.
	c.AddMOSFET("M6", "out", "o1", "vdd", pm(w6))
	c.AddMOSFET("M7", "out", "nbias", circuit.Ground, nm(w7))
	// Miller compensation and load.
	c.AddCapacitor("CC", "o1", "out", cc)
	c.AddCapacitor("CL", "out", circuit.Ground, p.CLoad)
	return c
}

// Simulate evaluates the op-amp at the requested fidelity. Failures report a
// maximally bad but finite result.
func (p *OpAmp) Simulate(x []float64, f problem.Fidelity) OpAmpResult {
	bad := OpAmpResult{GainDB: 0, UGFMHz: 0, PhaseDeg: 0, PowerUW: 1e6}
	ckt := p.netlist(x)
	sim := circuit.NewSim(ckt)
	op, err := sim.DC()
	if err != nil {
		return bad
	}
	// Static power: supply current × Vdd.
	vdd := ckt.Device("VDD").(*circuit.VSource)
	power := -p.Vdd * vdd.Current(op.X) * 1e6 // µW
	if power <= 0 || math.IsNaN(power) || math.IsInf(power, 0) {
		return bad
	}
	if f == problem.Low {
		return p.handModel(ckt, sim, op, power, x)
	}
	freqs := circuit.LogSpace(1e3, 1e9, 6*p.SweepPoints+1)
	res, err := sim.AC(freqs)
	if err != nil {
		return bad
	}
	return p.measureAC(res, freqs, power)
}

// measureAC extracts gain, UGF and phase margin from an AC sweep.
func (p *OpAmp) measureAC(res *circuit.ACResult, freqs []float64, powerUW float64) OpAmpResult {
	gainDC := cmplx.Abs(res.V("out", 0))
	out := OpAmpResult{PowerUW: powerUW}
	if gainDC <= 0 || math.IsNaN(gainDC) || math.IsInf(gainDC, 0) {
		return out
	}
	out.GainDB = 20 * math.Log10(gainDC)
	// Unity-gain crossing by log interpolation.
	prevMag := gainDC
	for k := 1; k < len(freqs); k++ {
		mag := cmplx.Abs(res.V("out", k))
		if prevMag >= 1 && mag < 1 {
			// Interpolate in log-log space.
			f0, f1 := freqs[k-1], freqs[k]
			t := math.Log(prevMag) / (math.Log(prevMag) - math.Log(mag))
			fu := math.Exp(math.Log(f0) + t*(math.Log(f1)-math.Log(f0)))
			out.UGFMHz = fu / 1e6
			// Phase at crossing (interpolated linearly).
			ph0 := res.PhaseDeg("out", k-1)
			ph1 := res.PhaseDeg("out", k)
			// Unwrap the step if needed.
			if ph1-ph0 > 180 {
				ph1 -= 360
			} else if ph0-ph1 > 180 {
				ph1 += 360
			}
			ph := ph0 + t*(ph1-ph0)
			// Phase margin relative to the inverting DC phase (±180°).
			pm := 180 - math.Abs(180-math.Abs(ph))
			out.PhaseDeg = pm
			break
		}
		prevMag = mag
	}
	return out
}

// handModel computes the classic two-stage formulas at the simulated
// operating point:
//
//	A_v  = gm1·(ro2 ∥ ro4) · gm6·(ro6 ∥ ro7)
//	UGF  ≈ gm1 / (2π·Cc)
//	PM   ≈ 90° − atan(UGF/p2) − atan(UGF/z),  p2 = gm6/CL, z = gm6/Cc
//
// This is the cheap model a designer uses before simulating — biased
// exactly the way equation-based sizing is biased.
func (p *OpAmp) handModel(ckt *circuit.Circuit, sim *circuit.Sim, op *circuit.Solution, powerUW float64, x []float64) OpAmpResult {
	gm := func(name string) (gmv, gds float64) {
		m := ckt.Device(name).(*circuit.MOSFET)
		return m.SmallSignal(op.X)
	}
	gm1, gds2 := gm("M2")
	_, gds4 := gm("M4")
	gm6, gds6 := gm("M6")
	_, gds7 := gm("M7")
	cc := x[6] * 1e-12
	av := gm1 / (gds2 + gds4) * gm6 / (gds6 + gds7)
	out := OpAmpResult{PowerUW: powerUW}
	if av <= 0 || math.IsNaN(av) {
		return out
	}
	out.GainDB = 20 * math.Log10(av)
	ugf := gm1 / (2 * math.Pi * cc)
	out.UGFMHz = ugf / 1e6
	p2 := gm6 / (2 * math.Pi * p.CLoad)
	z := gm6 / (2 * math.Pi * cc)
	pm := 90 - math.Atan(ugf/p2)*180/math.Pi - math.Atan(ugf/z)*180/math.Pi
	if pm < 0 {
		pm = 0
	}
	out.PhaseDeg = pm
	return out
}

// String renders a result row.
func (r OpAmpResult) String() string {
	return fmt.Sprintf("Gain=%.1fdB UGF=%.1fMHz PM=%.1f° P=%.1fµW",
		r.GainDB, r.UGFMHz, r.PhaseDeg, r.PowerUW)
}

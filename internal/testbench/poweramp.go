// Package testbench builds the two analog-synthesis workloads of the
// paper's evaluation on top of the internal circuit simulator:
//
//   - PowerAmp (§5.1): a class-A/AB power amplifier with an LC output match,
//     5 design variables (Cs, Cp, W, Vdd, Vb), maximizing drain efficiency
//     subject to output-power and distortion constraints. Low fidelity runs
//     a short, unsettled transient; high fidelity a long, settled one (the
//     paper's 10 ns vs 200 ns per-transistor budgets, a 1:20 cost ratio).
//
//   - ChargePump (§5.2): a cascoded charge-pump current-steering core with
//     18 transistors (36 W/L design variables), constraining the output
//     currents of M1 and M2 to a band around 40 µA across 27 PVT corners.
//     Low fidelity simulates the nominal corner only (a 1:27 cost ratio).
//
// Both testbenches substitute for the paper's proprietary foundry-PDK
// simulations; see DESIGN.md §2 for the substitution argument.
package testbench

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/problem"
)

// PAResult carries the raw power-amplifier metrics of one simulation.
type PAResult struct {
	EffPct  float64 // drain efficiency in percent
	PoutDBm float64 // fundamental output power in dBm
	THDdB   float64 // total harmonic distortion in dB
}

// PowerAmp is the §5.1 workload. It implements problem.Problem with
//
//	minimize  −Eff(x)
//	s.t.      Pout > 23 dBm   (c₁ = 23 − Pout < 0)
//	          THD  < 13.65 dB (c₂ = THD − 13.65 < 0)
//
// over x = (Cs, Cp, W, Vdd, Vb).
type PowerAmp struct {
	// Freq is the carrier frequency (default 2.4 GHz).
	Freq float64
	// PoutMinDBm / THDMaxDB are the spec limits (defaults 23 / 13.65).
	PoutMinDBm, THDMaxDB float64
	// HighPeriods / LowPeriods are the transient lengths in carrier periods
	// (defaults 24 / 4); the measurement windows are the last HighMeasure /
	// LowMeasure periods (defaults 8 / 2).
	HighPeriods, LowPeriods   int
	HighMeasure, LowMeasure   int
	HighStepsPer, LowStepsPer int // steps per period (defaults 64 / 32)
	// RLoad is the output load (default 5 Ω — the paper's 2048-cell array
	// scaled into a single representative device).
	RLoad float64
	// DriveAmp is the fixed gate drive amplitude (default 0.45 V).
	DriveAmp float64
}

var _ problem.Problem = (*PowerAmp)(nil)

// NewPowerAmp returns the workload with the paper's settings.
func NewPowerAmp() *PowerAmp {
	return &PowerAmp{
		Freq:        2.4e9,
		PoutMinDBm:  23,
		THDMaxDB:    13.65,
		HighPeriods: 24, LowPeriods: 4,
		HighMeasure: 8, LowMeasure: 2,
		HighStepsPer: 64, LowStepsPer: 32,
		RLoad:    5,
		DriveAmp: 0.6,
	}
}

// Name implements problem.Problem.
func (p *PowerAmp) Name() string { return "power-amplifier" }

// Dim implements problem.Problem.
func (p *PowerAmp) Dim() int { return 5 }

// Bounds implements problem.Problem. Variables are
// (Cs [pF], Cp [pF], W [mm], Vdd [V], Vb [V]).
func (p *PowerAmp) Bounds() (lo, hi []float64) {
	return []float64{2, 0.2, 0.05, 1.0, 1.0}, []float64{20, 2, 0.5, 2.0, 2.0}
}

// NumConstraints implements problem.Problem.
func (p *PowerAmp) NumConstraints() int { return 2 }

// Cost implements problem.Problem: the paper's 10 ns vs 200 ns budgets.
func (p *PowerAmp) Cost(f problem.Fidelity) float64 {
	if f == problem.Low {
		return 1.0 / 20
	}
	return 1
}

// Evaluate implements problem.Problem.
func (p *PowerAmp) Evaluate(x []float64, f problem.Fidelity) problem.Evaluation {
	r := p.Simulate(x, f)
	return problem.Evaluation{
		Objective: -r.EffPct,
		Constraints: []float64{
			p.PoutMinDBm - r.PoutDBm,
			r.THDdB - p.THDMaxDB,
		},
	}
}

// Simulate runs the transient testbench and returns the raw metrics.
// Simulation failures (non-convergence on pathological corners of the design
// space) are reported as a maximally bad — but finite — result so the
// optimizer can learn to avoid the region.
func (p *PowerAmp) Simulate(x []float64, f problem.Fidelity) PAResult {
	cs := x[0] * 1e-12
	cp := x[1] * 1e-12
	w := x[2] * 1e-3
	vdd := x[3]
	vb := x[4]

	ckt := circuit.New()
	ckt.AddVSource("VDD", "vdd", circuit.Ground, circuit.DC(vdd))
	ckt.AddVSource("VIN", "g", circuit.Ground, circuit.Sine{
		Offset: vb, Amplitude: p.DriveAmp, Freq: p.Freq,
	})
	ckt.AddInductor("LCHOKE", "vdd", "d", 8e-9)
	ckt.AddMOSFET("M1", "d", "g", circuit.Ground, circuit.MOSParams{
		W: w, L: 65e-9, VTH: 0.9, KP: 300e-6, Lambda: 0.1,
	})
	ckt.AddCapacitor("CS", "d", "out", cs)
	ckt.AddCapacitor("CP", "out", circuit.Ground, cp)
	ckt.AddResistor("RL", "out", circuit.Ground, p.RLoad)

	period := 1 / p.Freq
	nPeriods, nMeasure, stepsPer := p.HighPeriods, p.HighMeasure, p.HighStepsPer
	if f == problem.Low {
		nPeriods, nMeasure, stepsPer = p.LowPeriods, p.LowMeasure, p.LowStepsPer
	}
	dt := period / float64(stepsPer)
	tstop := float64(nPeriods) * period

	// badPA is the documented infeasible-penalty result: maximally bad but
	// finite on every metric, so the optimizer can learn to avoid the
	// region instead of choking on NaNs.
	bad := PAResult{EffPct: 0, PoutDBm: -100, THDdB: 60}

	sim := circuit.NewSim(ckt)
	wf, err := sim.Transient(tstop, dt)
	if err != nil {
		return bad
	}
	t0 := float64(nPeriods-nMeasure) * period
	start, end := wf.Window(t0, tstop)
	voutFull, err := wf.NodeVoltages("out")
	if err != nil {
		return bad
	}
	isupFull, err := wf.BranchCurrent("VDD")
	if err != nil {
		return bad
	}
	vout := voutFull[start:end]
	isup := isupFull[start:end]

	// Fundamental output power into the load.
	amp := circuit.HarmonicAmplitude(vout, dt, p.Freq, 1)
	pout := amp * amp / (2 * p.RLoad)
	// DC power: the supply source drives current out of its + terminal, so
	// delivered power is −Vdd·I_branch averaged. A NaN mean (silent NaN
	// propagation from a marginally-converged transient) is a failure, not
	// a number to divide by.
	pdc := -vdd * circuit.Mean(isup)
	if math.IsNaN(pout) || math.IsNaN(pdc) {
		return bad
	}
	if pdc <= 1e-9 {
		pdc = 1e-9
	}
	eff := 100 * pout / pdc
	if eff > 100 {
		eff = 100 // guard against unsettled-window measurement artifacts
	}
	thd := circuit.THDdB(vout, dt, p.Freq, 5)
	if math.IsNaN(thd) || math.IsInf(thd, 0) {
		thd = 60
	}
	poutDBm := -100.0
	if pout > 1e-13 {
		poutDBm = circuit.DBm(pout)
	}
	if math.IsNaN(eff) || math.IsInf(eff, 0) || math.IsNaN(poutDBm) || math.IsInf(poutDBm, 0) {
		return bad
	}
	return PAResult{EffPct: eff, PoutDBm: poutDBm, THDdB: thd}
}

// String renders a result row.
func (r PAResult) String() string {
	return fmt.Sprintf("Eff=%.2f%% Pout=%.2fdBm THD=%.2fdB", r.EffPct, r.PoutDBm, r.THDdB)
}

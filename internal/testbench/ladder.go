// Three-rung fidelity-ladder variants of the paper's workloads. The paper's
// fidelity knob on both testbenches is naturally graduated — transient length
// on the power amplifier, corner count on the charge pump — so an
// intermediate rung costs a fraction of the target simulation while carrying
// far more information than the cheapest one. These variants exercise the
// K-level ladder engine on the same simulators as the classic two-fidelity
// problems, whose behavior they leave untouched.
package testbench

import "repro/internal/problem"

// rung3 clamps a fidelity value onto a 3-rung ladder.
func rung3(f problem.Fidelity) int {
	switch {
	case f <= problem.Low:
		return 0
	case f >= 2:
		return 2
	default:
		return 1
	}
}

// PowerAmp3 is the power amplifier with a three-rung transient ladder:
// rung 0 is the classic short unsettled transient, rung 2 the classic long
// settled one, and rung 1 a mid-length transient (default 12 carrier periods,
// 4 measured, 48 steps per period) that resolves the fundamental well but
// still under-settles the harmonics.
type PowerAmp3 struct {
	*PowerAmp
	// MidPeriods / MidMeasure / MidStepsPer are rung 1's transient knobs
	// (defaults 12 / 4 / 48).
	MidPeriods, MidMeasure, MidStepsPer int
	// MidCost is rung 1's cost in equivalent target simulations
	// (default 0.25, the mid/high ratio of simulated work).
	MidCost float64
}

var _ problem.Problem = (*PowerAmp3)(nil)
var _ problem.MultiFidelity = (*PowerAmp3)(nil)

// NewPowerAmp3 returns the 3-rung power amplifier with default knobs.
func NewPowerAmp3() *PowerAmp3 {
	return &PowerAmp3{
		PowerAmp:   NewPowerAmp(),
		MidPeriods: 12, MidMeasure: 4, MidStepsPer: 48,
		MidCost: 0.25,
	}
}

// Name implements problem.Problem.
func (p *PowerAmp3) Name() string { return "power-amplifier-3r" }

// NumFidelities implements problem.MultiFidelity.
func (p *PowerAmp3) NumFidelities() int { return 3 }

// Cost implements problem.Problem: the extreme rungs keep the classic 1:20
// ratio; the mid rung prices its longer transient.
func (p *PowerAmp3) Cost(f problem.Fidelity) float64 {
	switch rung3(f) {
	case 0:
		return p.PowerAmp.Cost(problem.Low)
	case 1:
		return p.MidCost
	default:
		return 1
	}
}

// Evaluate implements problem.Problem. Rungs 0 and 2 are exactly the classic
// low/high simulations; rung 1 reruns the testbench with the mid transient
// knobs installed as its "high" setting.
func (p *PowerAmp3) Evaluate(x []float64, f problem.Fidelity) problem.Evaluation {
	switch rung3(f) {
	case 0:
		return p.PowerAmp.Evaluate(x, problem.Low)
	case 1:
		mid := *p.PowerAmp
		mid.HighPeriods, mid.HighMeasure, mid.HighStepsPer = p.MidPeriods, p.MidMeasure, p.MidStepsPer
		return mid.Evaluate(x, problem.High)
	default:
		return p.PowerAmp.Evaluate(x, problem.High)
	}
}

// CornersMid is the 9-corner mid-fidelity subset of the paper's PVT grid:
// the full process × supply product at nominal temperature. Process and
// supply dominate the charge pump's mirror-current spread, so the subset
// tracks the 27-corner aggregate closely at a third of the cost.
func CornersMid() []Corner {
	var out []Corner
	for _, p := range []string{"SS", "TT", "FF"} {
		for _, v := range []float64{0.9, 1.0, 1.1} {
			out = append(out, Corner{Process: p, VddFrac: v, TempC: 27})
		}
	}
	return out
}

// ChargePump3 is the charge pump with a three-rung corner ladder:
// rung 0 simulates the nominal corner, rung 1 the 9-corner process × supply
// subset, rung 2 the full 27-corner grid.
type ChargePump3 struct {
	*ChargePump
	midCorners []Corner
}

var _ problem.Problem = (*ChargePump3)(nil)
var _ problem.MultiFidelity = (*ChargePump3)(nil)

// NewChargePump3 returns the 3-rung charge pump with default settings.
func NewChargePump3() *ChargePump3 {
	return &ChargePump3{ChargePump: NewChargePump(), midCorners: CornersMid()}
}

// Name implements problem.Problem.
func (p *ChargePump3) Name() string { return "charge-pump-3r" }

// NumFidelities implements problem.MultiFidelity.
func (p *ChargePump3) NumFidelities() int { return 3 }

// Cost implements problem.Problem: corners simulated over 27.
func (p *ChargePump3) Cost(f problem.Fidelity) float64 {
	switch rung3(f) {
	case 0:
		return p.ChargePump.Cost(problem.Low)
	case 1:
		return float64(len(p.midCorners)) / 27
	default:
		return 1
	}
}

// Evaluate implements problem.Problem.
func (p *ChargePump3) Evaluate(x []float64, f problem.Fidelity) problem.Evaluation {
	switch rung3(f) {
	case 0:
		return p.ChargePump.Evaluate(x, problem.Low)
	case 1:
		mid := *p.ChargePump
		mid.corners = p.midCorners
		return mid.Evaluate(x, problem.High)
	default:
		return p.ChargePump.Evaluate(x, problem.High)
	}
}

package testbench

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/problem"
)

// cpNumTransistors is the number of sized transistors in the charge-pump
// core; each contributes a width and a length design variable (36 total,
// matching the paper).
const cpNumTransistors = 18

// cpTransistorNames documents the variable layout: design vector entry 2k is
// the width and 2k+1 the length of cpTransistorNames[k].
var cpTransistorNames = [cpNumTransistors]string{
	"MN_DIODE",  // bias diode receiving IREF
	"MN_MIR1",   // mirrors IREF into the PMOS diode branch
	"MN_MIR1C",  // its cascode
	"MP_DIODE",  // PMOS mirror diode
	"MP_DIODEC", // PMOS cascode diode
	"M1",        // UP output PMOS (the paper's M1)
	"M1C",       // its cascode
	"MSW_UP",    // UP switch (PMOS)
	"M2",        // DN output NMOS (the paper's M2)
	"M2C",       // its cascode
	"MSW_DN",    // DN switch (NMOS)
	"MN_CASC1",  // NMOS cascode bias diode (upper)
	"MN_CASC2",  // NMOS cascode bias diode (lower)
	"M1R",       // replica UP branch PMOS
	"M1RC",      // replica UP cascode
	"M2R",       // replica DN branch NMOS
	"M2RC",      // replica DN cascode
	"MN_BLEED",  // output bleed device
}

// Corner is one PVT condition.
type Corner struct {
	Process string  // "SS", "TT", "FF"
	VddFrac float64 // supply multiplier (0.9 / 1.0 / 1.1)
	TempC   float64 // junction temperature in °C
}

// Corners27 enumerates the full 3×3×3 PVT grid of the paper.
func Corners27() []Corner {
	var out []Corner
	for _, p := range []string{"SS", "TT", "FF"} {
		for _, v := range []float64{0.9, 1.0, 1.1} {
			for _, t := range []float64{-40, 27, 125} {
				out = append(out, Corner{Process: p, VddFrac: v, TempC: t})
			}
		}
	}
	return out
}

// NominalCorner is the single corner the low-fidelity simulation uses.
func NominalCorner() Corner { return Corner{Process: "TT", VddFrac: 1.0, TempC: 27} }

// CPResult carries the aggregated charge-pump metrics of eq. (16), all in µA.
type CPResult struct {
	MaxDiff1  float64 // max over corners of I(M1) max − avg
	MaxDiff2  float64 // max over corners of I(M1) avg − min
	MaxDiff3  float64 // max over corners of I(M2) max − avg
	MaxDiff4  float64 // max over corners of I(M2) avg − min
	Deviation float64 // max|I(M1)avg − 40µA| + max|I(M2)avg − 40µA|
	FOM       float64 // 0.3·Σ max_diff + 0.5·deviation
}

// ChargePump is the §5.2 workload: 36 sizing variables, minimize the FOM of
// eq. (16) subject to the five constraints of eq. (15).
type ChargePump struct {
	// VddNominal is the nominal supply (default 1.8 V).
	VddNominal float64
	// IRef is the reference bias current (default 20 µA).
	IRef float64
	// ITarget is the wanted output current (default 40 µA).
	ITarget float64
	// SweepPoints is the number of output-voltage operating points per
	// state (default 5, spread over [0.2, 0.8]·Vdd).
	SweepPoints int
	// corners caches the full grid.
	corners []Corner
}

var _ problem.Problem = (*ChargePump)(nil)

// NewChargePump returns the workload with the paper's settings.
func NewChargePump() *ChargePump {
	return &ChargePump{
		VddNominal:  1.8,
		IRef:        20e-6,
		ITarget:     40e-6,
		SweepPoints: 5,
		corners:     Corners27(),
	}
}

// Name implements problem.Problem.
func (p *ChargePump) Name() string { return "charge-pump" }

// Dim implements problem.Problem.
func (p *ChargePump) Dim() int { return 2 * cpNumTransistors }

// Bounds implements problem.Problem: widths in [0.4, 40] µm (even indices)
// and lengths in [0.04, 0.4] µm (odd indices).
func (p *ChargePump) Bounds() (lo, hi []float64) {
	lo = make([]float64, p.Dim())
	hi = make([]float64, p.Dim())
	for k := 0; k < cpNumTransistors; k++ {
		lo[2*k], hi[2*k] = 0.4, 40       // width, µm
		lo[2*k+1], hi[2*k+1] = 0.04, 0.4 // length, µm
	}
	return lo, hi
}

// NumConstraints implements problem.Problem (eq. 15).
func (p *ChargePump) NumConstraints() int { return 5 }

// Cost implements problem.Problem: 1 corner vs 27 corners.
func (p *ChargePump) Cost(f problem.Fidelity) float64 {
	if f == problem.Low {
		return 1.0 / 27
	}
	return 1
}

// Evaluate implements problem.Problem.
func (p *ChargePump) Evaluate(x []float64, f problem.Fidelity) problem.Evaluation {
	r := p.Simulate(x, f)
	return problem.Evaluation{
		Objective: r.FOM,
		Constraints: []float64{
			r.MaxDiff1 - 20,
			r.MaxDiff2 - 20,
			r.MaxDiff3 - 5,
			r.MaxDiff4 - 5,
			r.Deviation - 5,
		},
	}
}

// deviceParams maps a corner onto level-1 model parameters for one
// transistor: the process corner shifts VTH and KP, temperature degrades
// mobility as (T/T0)^−1.5 and drifts VTH by −2 mV/K.
func deviceParams(c Corner, typ circuit.MOSType, wUm, lUm float64) circuit.MOSParams {
	vth := 0.45
	kp := 250e-6
	if typ == circuit.PMOS {
		vth = 0.45
		kp = 110e-6
	}
	switch c.Process {
	case "SS":
		vth *= 1.10
		kp *= 0.85
	case "FF":
		vth *= 0.90
		kp *= 1.15
	}
	tK := c.TempC + 273.15
	kp *= math.Pow(tK/300.15, -1.5)
	vth -= 2e-3 * (tK - 300.15)
	return circuit.MOSParams{
		Type: typ, W: wUm * 1e-6, L: lUm * 1e-6,
		VTH: vth, KP: kp, Lambda: 0.08 * (0.1 / lUm), // longer channel → less CLM
	}
}

// Netlist builds the charge-pump core for a design vector x at corner c with
// switch states up/dn and the output node forced to vout. Exposed so that
// cmd/figures can print the schematic netlist (the paper's Figure 4).
func (p *ChargePump) Netlist(x []float64, c Corner, up, dn bool, vout float64) *circuit.Circuit {
	if len(x) != p.Dim() {
		panic(fmt.Sprintf("chargepump: design vector length %d != %d", len(x), p.Dim()))
	}
	par := func(i int, typ circuit.MOSType) circuit.MOSParams {
		return deviceParams(c, typ, x[2*i], x[2*i+1])
	}
	vdd := p.VddNominal * c.VddFrac
	ckt := circuit.New()
	ckt.AddVSource("VDD", "vdd", circuit.Ground, circuit.DC(vdd))
	// Force the output node for the operating-point sweep.
	ckt.AddVSource("VOUT", "cpout", circuit.Ground, circuit.DC(vout))

	// Bias: IREF into the NMOS mirror diode.
	ckt.AddISource("IREF", "vdd", "nbias", circuit.DC(p.IRef))
	ckt.AddMOSFET("MN_DIODE", "nbias", "nbias", circuit.Ground, par(0, circuit.NMOS))

	// NMOS cascode gate bias: stacked diodes fed by a second reference.
	ckt.AddISource("IREF2", "vdd", "ncasc", circuit.DC(p.IRef))
	ckt.AddMOSFET("MN_CASC1", "ncasc", "ncasc", "nc1", par(11, circuit.NMOS))
	ckt.AddMOSFET("MN_CASC2", "nc1", "nc1", circuit.Ground, par(12, circuit.NMOS))

	// PMOS mirror diode branch: cascoded NMOS mirror pulls IREF' through
	// the stacked PMOS diodes.
	ckt.AddMOSFET("MP_DIODE", "pbias", "pbias", "vdd", par(3, circuit.PMOS))
	ckt.AddMOSFET("MP_DIODEC", "pcasc", "pcasc", "pbias", par(4, circuit.PMOS))
	ckt.AddMOSFET("MN_MIR1C", "pcasc", "ncasc", "m1s", par(2, circuit.NMOS))
	ckt.AddMOSFET("MN_MIR1", "m1s", "nbias", circuit.Ground, par(1, circuit.NMOS))

	// UP branch: vdd → switch → M1 → cascode → cpout.
	upGate := "vdd" // PMOS off
	if up {
		upGate = "0"
	}
	ckt.AddMOSFET("MSW_UP", "swup", upGate, "vdd", par(7, circuit.PMOS))
	ckt.AddMOSFET("M1", "n1", "pbias", "swup", par(5, circuit.PMOS))
	ckt.AddMOSFET("M1C", "cpout", "pcasc", "n1", par(6, circuit.PMOS))

	// DN branch: cpout → cascode → M2 → switch → ground.
	dnGate := "0" // NMOS off
	if dn {
		dnGate = "vdd"
	}
	ckt.AddMOSFET("M2C", "cpout", "ncasc", "n2", par(9, circuit.NMOS))
	ckt.AddMOSFET("M2", "n2", "nbias", "swdn", par(8, circuit.NMOS))
	ckt.AddMOSFET("MSW_DN", "swdn", dnGate, circuit.Ground, par(10, circuit.NMOS))

	// Replica branch keeping the mirrors loaded when both switches are off.
	ckt.AddMOSFET("M1R", "nrep1", "pbias", "vdd", par(13, circuit.PMOS))
	ckt.AddMOSFET("M1RC", "rep", "pcasc", "nrep1", par(14, circuit.PMOS))
	ckt.AddMOSFET("M2RC", "rep", "ncasc", "nrep2", par(16, circuit.NMOS))
	ckt.AddMOSFET("M2R", "nrep2", "nbias", circuit.Ground, par(15, circuit.NMOS))

	// Bleed device at the output (sized small by a good design).
	ckt.AddMOSFET("MN_BLEED", "cpout", "nbias", circuit.Ground, par(17, circuit.NMOS))
	return ckt
}

// cornerCurrents returns the |I(M1)| and |I(M2)| samples (in µA) over the
// output-voltage sweep for one corner.
func (p *ChargePump) cornerCurrents(x []float64, c Corner) (im1, im2 []float64, err error) {
	vdd := p.VddNominal * c.VddFrac
	for k := 0; k < p.SweepPoints; k++ {
		frac := 0.2 + 0.6*float64(k)/float64(p.SweepPoints-1)
		vout := frac * vdd
		// UP phase: measure M1.
		ckt := p.Netlist(x, c, true, false, vout)
		sol, e := circuit.NewSim(ckt).DC()
		if e != nil {
			return nil, nil, e
		}
		m1 := ckt.Device("M1").(*circuit.MOSFET)
		i1 := math.Abs(m1.Current(sol.X)) * 1e6
		// DN phase: measure M2.
		ckt = p.Netlist(x, c, false, true, vout)
		sol, e = circuit.NewSim(ckt).DC()
		if e != nil {
			return nil, nil, e
		}
		m2 := ckt.Device("M2").(*circuit.MOSFET)
		i2 := math.Abs(m2.Current(sol.X)) * 1e6
		// A marginally-converged DC point can report non-finite currents;
		// treat them as a failed corner rather than letting NaN propagate
		// silently through the eq. (16) aggregation.
		if math.IsNaN(i1) || math.IsInf(i1, 0) || math.IsNaN(i2) || math.IsInf(i2, 0) {
			return nil, nil, fmt.Errorf("chargepump: non-finite branch current at vout=%g", vout)
		}
		im1 = append(im1, i1)
		im2 = append(im2, i2)
	}
	return im1, im2, nil
}

// Simulate aggregates eq. (16) over the corner set implied by the fidelity.
// Non-convergent designs are reported as maximally bad but finite.
func (p *ChargePump) Simulate(x []float64, f problem.Fidelity) CPResult {
	corners := p.corners
	if f == problem.Low {
		corners = []Corner{NominalCorner()}
	}
	bad := CPResult{MaxDiff1: 1e3, MaxDiff2: 1e3, MaxDiff3: 1e3, MaxDiff4: 1e3, Deviation: 1e3}
	bad.FOM = 0.3*(bad.MaxDiff1+bad.MaxDiff2+bad.MaxDiff3+bad.MaxDiff4) + 0.5*bad.Deviation

	var r CPResult
	var dev1, dev2 float64
	target := p.ITarget * 1e6
	for _, c := range corners {
		im1, im2, err := p.cornerCurrents(x, c)
		if err != nil {
			return bad
		}
		min1, max1 := circuit.MinMax(im1)
		min2, max2 := circuit.MinMax(im2)
		avg1 := circuit.Mean(im1)
		avg2 := circuit.Mean(im2)
		r.MaxDiff1 = math.Max(r.MaxDiff1, max1-avg1)
		r.MaxDiff2 = math.Max(r.MaxDiff2, avg1-min1)
		r.MaxDiff3 = math.Max(r.MaxDiff3, max2-avg2)
		r.MaxDiff4 = math.Max(r.MaxDiff4, avg2-min2)
		// eq. (16): the two deviation maxima are taken separately over the
		// corner set, then summed.
		dev1 = math.Max(dev1, math.Abs(avg1-target))
		dev2 = math.Max(dev2, math.Abs(avg2-target))
	}
	r.Deviation = dev1 + dev2
	r.FOM = 0.3*(r.MaxDiff1+r.MaxDiff2+r.MaxDiff3+r.MaxDiff4) + 0.5*r.Deviation
	// Belt-and-braces: eq. (16) aggregation must yield finite metrics; any
	// residual NaN/±Inf collapses to the documented infeasible penalty.
	for _, v := range []float64{r.MaxDiff1, r.MaxDiff2, r.MaxDiff3, r.MaxDiff4, r.Deviation, r.FOM} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return bad
		}
	}
	return r
}

// String renders a result row.
func (r CPResult) String() string {
	return fmt.Sprintf("FOM=%.2f d1=%.2f d2=%.2f d3=%.2f d4=%.2f dev=%.2f",
		r.FOM, r.MaxDiff1, r.MaxDiff2, r.MaxDiff3, r.MaxDiff4, r.Deviation)
}

// TransistorNames exposes the design-variable layout for documentation and
// the netlist printer.
func TransistorNames() []string { return append([]string(nil), cpTransistorNames[:]...) }

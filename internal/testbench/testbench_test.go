package testbench

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/problem"
	"repro/internal/stats"
)

func TestPowerAmpInterface(t *testing.T) {
	pa := NewPowerAmp()
	if pa.Dim() != 5 || pa.NumConstraints() != 2 {
		t.Fatal("PA shape wrong")
	}
	lo, hi := pa.Bounds()
	if len(lo) != 5 || len(hi) != 5 {
		t.Fatal("PA bounds wrong length")
	}
	for i := range lo {
		if lo[i] >= hi[i] {
			t.Fatalf("PA bound %d inverted", i)
		}
	}
	if pa.Cost(problem.Low) != 1.0/20 || pa.Cost(problem.High) != 1 {
		t.Fatal("PA cost ratio should be 1:20")
	}
}

func paMidpoint() []float64 { return []float64{11, 1.1, 0.27, 1.5, 1.5} }

func TestPowerAmpSimulateFinite(t *testing.T) {
	pa := NewPowerAmp()
	for _, f := range []problem.Fidelity{problem.Low, problem.High} {
		r := pa.Simulate(paMidpoint(), f)
		if math.IsNaN(r.EffPct) || math.IsNaN(r.PoutDBm) || math.IsNaN(r.THDdB) {
			t.Fatalf("NaN metrics at %v: %+v", f, r)
		}
		if r.EffPct < 0 || r.EffPct > 100 {
			t.Fatalf("efficiency %v out of range", r.EffPct)
		}
	}
}

func TestPowerAmpEvaluationConsistency(t *testing.T) {
	pa := NewPowerAmp()
	x := paMidpoint()
	r := pa.Simulate(x, problem.High)
	e := pa.Evaluate(x, problem.High)
	if e.Objective != -r.EffPct {
		t.Fatal("objective must be −Eff")
	}
	if e.Constraints[0] != 23-r.PoutDBm {
		t.Fatal("Pout constraint packed wrong")
	}
	if e.Constraints[1] != r.THDdB-13.65 {
		t.Fatal("THD constraint packed wrong")
	}
}

func TestPowerAmpDeterministic(t *testing.T) {
	pa := NewPowerAmp()
	a := pa.Simulate(paMidpoint(), problem.High)
	b := pa.Simulate(paMidpoint(), problem.High)
	if a != b {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestPowerAmpFidelitiesCorrelateButDiffer(t *testing.T) {
	// Over a random sample, low and high fidelity efficiencies must be
	// positively correlated yet not identical (the low model is biased).
	pa := NewPowerAmp()
	lo, hi := pa.Bounds()
	rng := rand.New(rand.NewSource(1))
	pts := stats.LatinHypercube(rng, lo, hi, 12)
	var hs, ls []float64
	for _, x := range pts {
		hs = append(hs, pa.Simulate(x, problem.High).EffPct)
		ls = append(ls, pa.Simulate(x, problem.Low).EffPct)
	}
	if corr(hs, ls) < 0.5 {
		t.Fatalf("fidelity correlation %.3f too weak", corr(hs, ls))
	}
	same := 0
	for i := range hs {
		if hs[i] == ls[i] {
			same++
		}
	}
	if same == len(hs) {
		t.Fatal("low fidelity identical to high — no bias to fuse away")
	}
}

func TestPowerAmpVbSweepNonlinearCorrelation(t *testing.T) {
	// The Figure-3 property: sweeping Vb with the rest fixed, low and high
	// fidelity efficiency curves are related but not by a constant offset.
	pa := NewPowerAmp()
	x := paMidpoint()
	var diffs []float64
	for _, vb := range []float64{1.0, 1.25, 1.5, 1.75, 2.0} {
		x[4] = vb
		h := pa.Simulate(x, problem.High).EffPct
		l := pa.Simulate(x, problem.Low).EffPct
		diffs = append(diffs, h-l)
	}
	lo, hi := stats.Summarize(diffs).Min, stats.Summarize(diffs).Max
	if hi-lo < 0.5 {
		t.Fatalf("low/high discrepancy is a constant offset (spread %.3f) — correlation is linear", hi-lo)
	}
}

func TestPowerAmpHasFeasibleRegion(t *testing.T) {
	// The known-good corner from design-space exploration.
	pa := NewPowerAmp()
	e := pa.Evaluate([]float64{18.6, 1.86, 0.43, 1.67, 1.94}, problem.High)
	if !e.Feasible() {
		t.Fatalf("known feasible design violated the spec: %+v", e)
	}
}

func corr(a, b []float64) float64 {
	ma, mb := stats.Mean(a), stats.Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	return sab / math.Sqrt(saa*sbb)
}

func TestChargePumpInterface(t *testing.T) {
	cp := NewChargePump()
	if cp.Dim() != 36 || cp.NumConstraints() != 5 {
		t.Fatalf("CP shape: dim %d nc %d", cp.Dim(), cp.NumConstraints())
	}
	if cp.Cost(problem.Low) != 1.0/27 {
		t.Fatal("CP cost ratio should be 1:27")
	}
	if len(TransistorNames()) != 18 {
		t.Fatal("expected 18 sized transistors")
	}
	if len(Corners27()) != 27 {
		t.Fatal("expected 27 corners")
	}
}

// tunedChargePump returns the hand-tuned 2:1-mirror design used as a
// feasibility witness.
func tunedChargePump() []float64 {
	cp := NewChargePump()
	x := make([]float64, cp.Dim())
	for k, n := range TransistorNames() {
		w, l := 5.0, 0.2
		switch n {
		case "M1", "M1C", "M1R", "M1RC":
			w = 20
		case "MP_DIODE", "MP_DIODEC":
			w = 10
		case "M2", "M2C", "M2R", "M2RC":
			w = 10
		case "MN_DIODE", "MN_MIR1", "MN_MIR1C":
			w = 5
		case "MSW_UP":
			w = 30
		case "MSW_DN":
			w = 15
		case "MN_BLEED":
			w, l = 0.4, 0.4
		}
		x[2*k], x[2*k+1] = w, l
	}
	return x
}

func TestChargePumpTunedDesignFeasible(t *testing.T) {
	cp := NewChargePump()
	e := cp.Evaluate(tunedChargePump(), problem.High)
	if !e.Feasible() {
		t.Fatalf("tuned design infeasible: %+v", e)
	}
	if e.Objective > 5 {
		t.Fatalf("tuned design FOM %v unexpectedly bad", e.Objective)
	}
}

func TestChargePumpRandomDesignsMostlyInfeasible(t *testing.T) {
	cp := NewChargePump()
	lo, hi := cp.Bounds()
	rng := rand.New(rand.NewSource(2))
	feasible := 0
	for _, x := range stats.LatinHypercube(rng, lo, hi, 8) {
		if cp.Evaluate(x, problem.Low).Feasible() {
			feasible++
		}
	}
	if feasible > 4 {
		t.Fatalf("%d/8 random designs feasible — problem too easy", feasible)
	}
}

func TestChargePumpLowVsHighFidelity(t *testing.T) {
	cp := NewChargePump()
	x := tunedChargePump()
	h := cp.Simulate(x, problem.High)
	l := cp.Simulate(x, problem.Low)
	// The multi-corner deviation must be at least the nominal-corner one
	// (maxima over a superset).
	if h.Deviation < l.Deviation-1e-9 {
		t.Fatalf("27-corner deviation %v below nominal-corner %v", h.Deviation, l.Deviation)
	}
	if h.MaxDiff1 < l.MaxDiff1-1e-9 || h.MaxDiff3 < l.MaxDiff3-1e-9 {
		t.Fatal("corner maxima must dominate the nominal corner")
	}
	if h == l {
		t.Fatal("corners have no effect — PVT modelling broken")
	}
}

func TestChargePumpFOMFormula(t *testing.T) {
	cp := NewChargePump()
	r := cp.Simulate(tunedChargePump(), problem.Low)
	want := 0.3*(r.MaxDiff1+r.MaxDiff2+r.MaxDiff3+r.MaxDiff4) + 0.5*r.Deviation
	if math.Abs(r.FOM-want) > 1e-12 {
		t.Fatalf("FOM %v does not match eq. 16 (%v)", r.FOM, want)
	}
}

func TestChargePumpConstraintPacking(t *testing.T) {
	cp := NewChargePump()
	x := tunedChargePump()
	r := cp.Simulate(x, problem.High)
	e := cp.Evaluate(x, problem.High)
	wants := []float64{r.MaxDiff1 - 20, r.MaxDiff2 - 20, r.MaxDiff3 - 5, r.MaxDiff4 - 5, r.Deviation - 5}
	for i, w := range wants {
		if math.Abs(e.Constraints[i]-w) > 1e-12 {
			t.Fatalf("constraint %d packed wrong: %v vs %v", i, e.Constraints[i], w)
		}
	}
	if e.Objective != r.FOM {
		t.Fatal("objective must be the FOM")
	}
}

func TestChargePumpNetlistPrints(t *testing.T) {
	cp := NewChargePump()
	ckt := cp.Netlist(tunedChargePump(), NominalCorner(), true, false, 0.9)
	s := ckt.String()
	for _, dev := range []string{"M1", "M2", "MSW_UP", "MSW_DN", "MN_DIODE"} {
		if !strings.Contains(s, dev) {
			t.Fatalf("netlist missing %s:\n%s", dev, s)
		}
	}
}

func TestCornerParameterShifts(t *testing.T) {
	nom := deviceParams(NominalCorner(), 0, 10, 0.1)
	ss := deviceParams(Corner{Process: "SS", VddFrac: 1, TempC: 27}, 0, 10, 0.1)
	ff := deviceParams(Corner{Process: "FF", VddFrac: 1, TempC: 27}, 0, 10, 0.1)
	hot := deviceParams(Corner{Process: "TT", VddFrac: 1, TempC: 125}, 0, 10, 0.1)
	if !(ss.VTH > nom.VTH && ff.VTH < nom.VTH) {
		t.Fatal("process corner VTH shifts wrong")
	}
	if !(ss.KP < nom.KP && ff.KP > nom.KP) {
		t.Fatal("process corner KP shifts wrong")
	}
	if !(hot.KP < nom.KP && hot.VTH < nom.VTH) {
		t.Fatal("temperature effects wrong")
	}
}

func TestChargePumpDeterministic(t *testing.T) {
	cp := NewChargePump()
	x := tunedChargePump()
	if cp.Simulate(x, problem.Low) != cp.Simulate(x, problem.Low) {
		t.Fatal("simulation not deterministic")
	}
}

package testbench

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/problem"
	"repro/internal/stats"
)

// opampWitness is a known-feasible design from design-space exploration.
func opampWitness() []float64 {
	return []float64{55.5, 23.9, 14.9, 186, 101, 0.11, 1.6, 23.9}
}

func TestOpAmpInterface(t *testing.T) {
	oa := NewOpAmp()
	if oa.Dim() != 8 || oa.NumConstraints() != 3 {
		t.Fatalf("opamp shape: %d vars, %d cons", oa.Dim(), oa.NumConstraints())
	}
	lo, hi := oa.Bounds()
	for i := range lo {
		if lo[i] >= hi[i] {
			t.Fatalf("bound %d inverted", i)
		}
	}
	if oa.Cost(problem.Low) >= oa.Cost(problem.High) {
		t.Fatal("low fidelity must be cheaper")
	}
}

func TestOpAmpSimulateFinite(t *testing.T) {
	oa := NewOpAmp()
	for _, f := range []problem.Fidelity{problem.Low, problem.High} {
		r := oa.Simulate(opampWitness(), f)
		for _, v := range []float64{r.GainDB, r.UGFMHz, r.PhaseDeg, r.PowerUW} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite metric at %v: %+v", f, r)
			}
		}
		if r.PowerUW <= 0 {
			t.Fatalf("non-positive power: %+v", r)
		}
	}
}

func TestOpAmpWitnessIsHealthy(t *testing.T) {
	oa := NewOpAmp()
	r := oa.Simulate(opampWitness(), problem.High)
	if r.GainDB < 40 {
		t.Fatalf("witness gain %v dB too low", r.GainDB)
	}
	if r.UGFMHz < 10 {
		t.Fatalf("witness UGF %v MHz too low", r.UGFMHz)
	}
	if r.PhaseDeg < 45 {
		t.Fatalf("witness phase margin %v too low", r.PhaseDeg)
	}
}

func TestOpAmpFidelityBiasIsSystematic(t *testing.T) {
	// The hand model reproduces the DC gain (same linearization) but
	// overestimates the unity-gain frequency — the classic textbook bias.
	oa := NewOpAmp()
	lo, hi := oa.Bounds()
	rng := rand.New(rand.NewSource(3))
	over := 0
	n := 0
	for _, x := range stats.LatinHypercube(rng, lo, hi, 10) {
		h := oa.Simulate(x, problem.High)
		l := oa.Simulate(x, problem.Low)
		if h.UGFMHz <= 0 || l.UGFMHz <= 0 {
			continue
		}
		n++
		if math.Abs(h.GainDB-l.GainDB) > 0.5 {
			t.Fatalf("hand-model gain should match AC gain: %v vs %v", l.GainDB, h.GainDB)
		}
		if l.UGFMHz > h.UGFMHz {
			over++
		}
	}
	if n == 0 {
		t.Fatal("no valid samples")
	}
	if over < n*2/3 {
		t.Fatalf("hand model overestimated UGF only %d/%d times — bias structure lost", over, n)
	}
}

func TestOpAmpEvaluatePacking(t *testing.T) {
	oa := NewOpAmp()
	x := opampWitness()
	r := oa.Simulate(x, problem.High)
	e := oa.Evaluate(x, problem.High)
	if e.Objective != r.PowerUW {
		t.Fatal("objective must be power")
	}
	wants := []float64{oa.GainMinDB - r.GainDB, oa.UGFMinMHz - r.UGFMHz, oa.PMMinDeg - r.PhaseDeg}
	for i, w := range wants {
		if math.Abs(e.Constraints[i]-w) > 1e-12 {
			t.Fatalf("constraint %d packed wrong", i)
		}
	}
}

func TestOpAmpMillerCapSlowsUGF(t *testing.T) {
	// Increasing Cc must reduce the measured unity-gain frequency.
	oa := NewOpAmp()
	x := opampWitness()
	small := append([]float64(nil), x...)
	small[6] = 0.8
	big := append([]float64(nil), x...)
	big[6] = 4
	fSmall := oa.Simulate(small, problem.High).UGFMHz
	fBig := oa.Simulate(big, problem.High).UGFMHz
	if fBig >= fSmall {
		t.Fatalf("larger Cc should slow the amp: %v vs %v MHz", fBig, fSmall)
	}
}

func TestOpAmpPowerScalesWithBias(t *testing.T) {
	oa := NewOpAmp()
	x := opampWitness()
	lowI := append([]float64(nil), x...)
	lowI[7] = 8
	highI := append([]float64(nil), x...)
	highI[7] = 80
	pLow := oa.Simulate(lowI, problem.High).PowerUW
	pHigh := oa.Simulate(highI, problem.High).PowerUW
	if pHigh <= pLow {
		t.Fatalf("10× bias current should cost more power: %v vs %v µW", pHigh, pLow)
	}
}

func TestOpAmpDeterministic(t *testing.T) {
	oa := NewOpAmp()
	if oa.Simulate(opampWitness(), problem.High) != oa.Simulate(opampWitness(), problem.High) {
		t.Fatal("simulation not deterministic")
	}
}

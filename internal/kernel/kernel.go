// Package kernel implements covariance functions for Gaussian-process
// regression: squared-exponential and Matérn kernels with ARD length scales,
// sum/product/slice combinators, and the structured multi-fidelity kernel of
// Perdikaris et al. (2017) used by the paper's fusion model:
//
//	k_h(z, z') = k1(f, f') · k2(x, x') + k3(x, x'),
//
// where z = (x, f) is the design vector augmented with the low-fidelity
// posterior value.
//
// All hyperparameters live in log-space so that unconstrained optimizers can
// train them, and every kernel provides analytic gradients with respect to its
// log-hyperparameters for fast marginal-likelihood training.
package kernel

import "fmt"

// Kernel is a positive-definite covariance function with trainable
// log-hyperparameters.
type Kernel interface {
	// Dim returns the expected input dimensionality.
	Dim() int
	// NumHyper returns the number of log-hyperparameters.
	NumHyper() int
	// Hyper appends the current log-hyperparameters to dst and returns it.
	Hyper(dst []float64) []float64
	// SetHyper installs log-hyperparameters from src and returns the number
	// consumed (always NumHyper()).
	SetHyper(src []float64) int
	// Eval returns k(x1, x2).
	Eval(x1, x2 []float64) float64
	// EvalGrad returns k(x1, x2) and writes ∂k/∂logθ_j into grad, which must
	// have length NumHyper().
	EvalGrad(x1, x2 []float64, grad []float64) float64
	// Bounds appends per-hyperparameter [lo, hi] log-space training bounds.
	Bounds(lo, hi []float64) ([]float64, []float64)
	// Clone returns an independent deep copy.
	Clone() Kernel
}

// HyperVector returns the kernel's log-hyperparameters as a fresh slice.
func HyperVector(k Kernel) []float64 {
	return k.Hyper(make([]float64, 0, k.NumHyper()))
}

// SetHyperVector installs a full hyperparameter vector, panicking if the
// length does not match.
func SetHyperVector(k Kernel, v []float64) {
	if len(v) != k.NumHyper() {
		panic(fmt.Sprintf("kernel: hyper length %d != %d", len(v), k.NumHyper()))
	}
	k.SetHyper(v)
}

// BoundsVectors returns fresh lo/hi slices of log-space training bounds.
func BoundsVectors(k Kernel) (lo, hi []float64) {
	lo = make([]float64, 0, k.NumHyper())
	hi = make([]float64, 0, k.NumHyper())
	return k.Bounds(lo, hi)
}

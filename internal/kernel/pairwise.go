package kernel

import "math"

// PairProfile is a hyperparameter-resolved snapshot of a kernel that
// evaluates on a cached coordinate-difference vector diff = x1 − x2 instead
// of the raw points. Profiles hoist every hyperparameter transcendental
// (exp of log-amplitudes/length scales, Matérn constants, …) out of the
// per-pair loop: the GP training loop computes them once per objective
// evaluation instead of once per matrix entry, which is the dominant cost of
// the direct Eval path.
//
// # Bit-identity contract
//
// For every built-in kernel, Profile().Eval(diff) and
// Profile().EvalGrad(diff, grad) are bit-identical to Eval(x1, x2) and
// EvalGrad(x1, x2, grad) when diff[i] == x1[i]−x2[i]: the per-dimension
// arithmetic runs in the same order with the same roundings, only the
// loop-invariant factors are precomputed. Tests enforce this, and the GP
// trainer relies on it so that enabling the geometry cache cannot move an
// NLML optimum by even one ulp.
//
// A profile captures the kernel's hyperparameters at Profile() time — it
// does NOT track later SetHyper calls. Profiles carry internal scratch and
// are not safe for concurrent use; build one per goroutine.
type PairProfile interface {
	// NumHyper returns the number of log-hyperparameters (gradient length).
	NumHyper() int
	// Eval returns k for the pair with coordinate differences diff.
	Eval(diff []float64) float64
	// EvalGrad returns k and writes ∂k/∂logθ_j into grad (length NumHyper).
	EvalGrad(diff, grad []float64) float64
}

// Pairwise is implemented by kernels that can produce a PairProfile.
// Profile may return nil when a composite kernel contains a sub-kernel
// without pairwise support; callers must fall back to the direct Eval path.
type Pairwise interface {
	Kernel
	Profile() PairProfile
}

// ProfileOf returns a PairProfile for k, or nil when k (or any of its
// sub-kernels) does not support pairwise evaluation.
func ProfileOf(k Kernel) PairProfile {
	if p, ok := k.(Pairwise); ok {
		return p.Profile()
	}
	return nil
}

// --- SEARD ---

type seProfile struct {
	logAmp float64
	s      []float64 // exp(−log l_i)
	scaled []float64 // scratch: (Δ_i/l_i)²
}

// Profile implements Pairwise.
func (k *SEARD) Profile() PairProfile {
	p := &seProfile{logAmp: k.logAmp, s: make([]float64, k.dim), scaled: make([]float64, k.dim)}
	for i, ls := range k.logScale {
		p.s[i] = math.Exp(-ls)
	}
	return p
}

func (p *seProfile) NumHyper() int { return 1 + len(p.s) }

func (p *seProfile) Eval(diff []float64) float64 {
	q := 0.0
	for i, s := range p.s {
		d := diff[i] * s
		q += d * d
	}
	return math.Exp(2*p.logAmp - 0.5*q)
}

func (p *seProfile) EvalGrad(diff, grad []float64) float64 {
	q := 0.0
	for i, s := range p.s {
		d := diff[i] * s
		p.scaled[i] = d * d
		q += p.scaled[i]
	}
	v := math.Exp(2*p.logAmp - 0.5*q)
	grad[0] = 2 * v
	for i, sc := range p.scaled {
		grad[1+i] = v * sc
	}
	return v
}

// --- Matern ---

type maternProfile struct {
	nu32   bool
	amp2   float64 // exp(2·log σ_f)
	s      []float64
	scaled []float64
}

// Profile implements Pairwise.
func (k *Matern) Profile() PairProfile {
	p := &maternProfile{nu32: k.nu32, amp2: math.Exp(2 * k.logAmp),
		s: make([]float64, k.dim), scaled: make([]float64, k.dim)}
	for i, ls := range k.logScale {
		p.s[i] = math.Exp(-ls)
	}
	return p
}

func (p *maternProfile) NumHyper() int { return 1 + len(p.s) }

func (p *maternProfile) q(diff, scaled []float64) float64 {
	q := 0.0
	for i, s := range p.s {
		d := diff[i] * s
		sq := d * d
		if scaled != nil {
			scaled[i] = sq
		}
		q += sq
	}
	return q
}

func (p *maternProfile) Eval(diff []float64) float64 {
	r := math.Sqrt(p.q(diff, nil))
	if p.nu32 {
		c := math.Sqrt(3) * r
		return p.amp2 * (1 + c) * math.Exp(-c)
	}
	c := math.Sqrt(5) * r
	return p.amp2 * (1 + c + c*c/3) * math.Exp(-c)
}

func (p *maternProfile) EvalGrad(diff, grad []float64) float64 {
	r := math.Sqrt(p.q(diff, p.scaled))
	var v, dFactor float64
	if p.nu32 {
		c := math.Sqrt(3) * r
		e := math.Exp(-c)
		v = p.amp2 * (1 + c) * e
		dFactor = 3 * p.amp2 * e
	} else {
		c := math.Sqrt(5) * r
		e := math.Exp(-c)
		v = p.amp2 * (1 + c + c*c/3) * e
		dFactor = (5.0 / 3.0) * p.amp2 * (1 + c) * e
	}
	grad[0] = 2 * v
	for i, sc := range p.scaled {
		grad[1+i] = dFactor * sc
	}
	return v
}

// --- Constant ---

type constProfile struct{ v float64 }

// Profile implements Pairwise.
func (k *Constant) Profile() PairProfile {
	return &constProfile{v: math.Exp(2 * k.logAmp)}
}

func (p *constProfile) NumHyper() int          { return 1 }
func (p *constProfile) Eval([]float64) float64 { return p.v }
func (p *constProfile) EvalGrad(_, g []float64) float64 {
	g[0] = 2 * p.v
	return p.v
}

// --- RationalQuadratic ---

type rqProfile struct {
	amp2   float64
	alpha  float64
	s      []float64
	scaled []float64
}

// Profile implements Pairwise.
func (k *RationalQuadratic) Profile() PairProfile {
	p := &rqProfile{amp2: math.Exp(2 * k.logAmp), alpha: math.Exp(k.logAlpha),
		s: make([]float64, k.dim), scaled: make([]float64, k.dim)}
	for i, ls := range k.logScale {
		p.s[i] = math.Exp(-ls)
	}
	return p
}

func (p *rqProfile) NumHyper() int { return 2 + len(p.s) }

func (p *rqProfile) q(diff, scaled []float64) float64 {
	q := 0.0
	for i, s := range p.s {
		d := diff[i] * s
		sq := d * d
		if scaled != nil {
			scaled[i] = sq
		}
		q += sq
	}
	return q
}

func (p *rqProfile) Eval(diff []float64) float64 {
	q := p.q(diff, nil)
	u := 1 + q/(2*p.alpha)
	return p.amp2 * math.Pow(u, -p.alpha)
}

func (p *rqProfile) EvalGrad(diff, grad []float64) float64 {
	q := p.q(diff, p.scaled)
	u := 1 + q/(2*p.alpha)
	v := p.amp2 * math.Pow(u, -p.alpha)
	grad[0] = 2 * v
	grad[1] = p.alpha * v * (-math.Log(u) + q/(2*p.alpha*u))
	base := p.amp2 * math.Pow(u, -p.alpha-1)
	for i, sc := range p.scaled {
		grad[2+i] = base * sc
	}
	return v
}

// --- Periodic ---

type periodicProfile struct {
	logAmp  float64
	period  []float64 // exp(log p_i)
	scale2  []float64 // exp(2·log l_i)
	terms   []float64 // scratch
	dPeriod []float64 // scratch
}

// Profile implements Pairwise.
func (k *Periodic) Profile() PairProfile {
	p := &periodicProfile{logAmp: k.logAmp,
		period: make([]float64, k.dim), scale2: make([]float64, k.dim),
		terms: make([]float64, k.dim), dPeriod: make([]float64, k.dim)}
	for i := 0; i < k.dim; i++ {
		p.period[i] = math.Exp(k.logPeriod[i])
		p.scale2[i] = math.Exp(2 * k.logScale[i])
	}
	return p
}

func (p *periodicProfile) NumHyper() int { return 1 + 2*len(p.period) }

func (p *periodicProfile) Eval(diff []float64) float64 {
	sum := 0.0
	for i, pe := range p.period {
		s := math.Sin(math.Pi * diff[i] / pe)
		sum += 2 * s * s / p.scale2[i]
	}
	return math.Exp(2*p.logAmp - sum)
}

func (p *periodicProfile) EvalGrad(diff, grad []float64) float64 {
	d := len(p.period)
	sum := 0.0
	for i, pe := range p.period {
		l2 := p.scale2[i]
		delta := diff[i]
		arg := math.Pi * delta / pe
		s := math.Sin(arg)
		p.terms[i] = 2 * s * s / l2
		sum += p.terms[i]
		p.dPeriod[i] = -(2 * math.Pi * delta / (pe * l2)) * math.Sin(2*arg)
	}
	v := math.Exp(2*p.logAmp - sum)
	grad[0] = 2 * v
	for i := 0; i < d; i++ {
		grad[1+i] = -v * p.dPeriod[i]
		grad[1+d+i] = 2 * v * p.terms[i]
	}
	return v
}

// --- Combinators ---

type sumProfile struct {
	a, b PairProfile
	na   int
}

// Profile implements Pairwise. Returns nil unless both summands support
// pairwise evaluation.
func (k *Sum) Profile() PairProfile {
	pa, pb := ProfileOf(k.A), ProfileOf(k.B)
	if pa == nil || pb == nil {
		return nil
	}
	return &sumProfile{a: pa, b: pb, na: k.A.NumHyper()}
}

func (p *sumProfile) NumHyper() int { return p.na + p.b.NumHyper() }

func (p *sumProfile) Eval(diff []float64) float64 {
	return p.a.Eval(diff) + p.b.Eval(diff)
}

func (p *sumProfile) EvalGrad(diff, grad []float64) float64 {
	va := p.a.EvalGrad(diff, grad[:p.na])
	vb := p.b.EvalGrad(diff, grad[p.na:])
	return va + vb
}

type productProfile struct {
	a, b PairProfile
	na   int
}

// Profile implements Pairwise. Returns nil unless both factors support
// pairwise evaluation.
func (k *Product) Profile() PairProfile {
	pa, pb := ProfileOf(k.A), ProfileOf(k.B)
	if pa == nil || pb == nil {
		return nil
	}
	return &productProfile{a: pa, b: pb, na: k.A.NumHyper()}
}

func (p *productProfile) NumHyper() int { return p.na + p.b.NumHyper() }

func (p *productProfile) Eval(diff []float64) float64 {
	return p.a.Eval(diff) * p.b.Eval(diff)
}

func (p *productProfile) EvalGrad(diff, grad []float64) float64 {
	va := p.a.EvalGrad(diff, grad[:p.na])
	vb := p.b.EvalGrad(diff, grad[p.na:])
	for i := 0; i < p.na; i++ {
		grad[i] *= vb
	}
	for i := p.na; i < len(grad); i++ {
		grad[i] *= va
	}
	return va * vb
}

type sliceProfile struct {
	inner      PairProfile
	start, end int
}

// Profile implements Pairwise: the inner profile sees diff[Start:End],
// which equals the difference vector of the sliced coordinates exactly.
func (k *Slice) Profile() PairProfile {
	pi := ProfileOf(k.Inner)
	if pi == nil {
		return nil
	}
	return &sliceProfile{inner: pi, start: k.Start, end: k.End}
}

func (p *sliceProfile) NumHyper() int { return p.inner.NumHyper() }

func (p *sliceProfile) Eval(diff []float64) float64 {
	return p.inner.Eval(diff[p.start:p.end])
}

func (p *sliceProfile) EvalGrad(diff, grad []float64) float64 {
	return p.inner.EvalGrad(diff[p.start:p.end], grad)
}

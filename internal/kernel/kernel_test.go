package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

// checkGradFD compares EvalGrad against central finite differences.
func checkGradFD(t *testing.T, k Kernel, x1, x2 []float64, tol float64) {
	t.Helper()
	n := k.NumHyper()
	grad := make([]float64, n)
	v := k.EvalGrad(x1, x2, grad)
	if got := k.Eval(x1, x2); math.Abs(got-v) > 1e-12*(1+math.Abs(v)) {
		t.Fatalf("EvalGrad value %v != Eval %v", v, got)
	}
	theta := HyperVector(k)
	const h = 1e-6
	for j := 0; j < n; j++ {
		save := theta[j]
		theta[j] = save + h
		SetHyperVector(k, theta)
		up := k.Eval(x1, x2)
		theta[j] = save - h
		SetHyperVector(k, theta)
		dn := k.Eval(x1, x2)
		theta[j] = save
		SetHyperVector(k, theta)
		fd := (up - dn) / (2 * h)
		if math.Abs(fd-grad[j]) > tol*(1+math.Abs(fd)) {
			t.Fatalf("hyper %d: analytic %v vs fd %v", j, grad[j], fd)
		}
	}
}

func randVec(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randHyper(rng *rand.Rand, k Kernel) {
	h := make([]float64, k.NumHyper())
	for i := range h {
		h[i] = rng.Float64()*2 - 1
	}
	SetHyperVector(k, h)
}

func TestSEARDValue(t *testing.T) {
	k := NewSEARD(2) // unit amplitude, unit length scales
	if got := k.Eval([]float64{0, 0}, []float64{0, 0}); math.Abs(got-1) > 1e-15 {
		t.Fatalf("k(x,x) = %v, want 1", got)
	}
	want := math.Exp(-0.5 * (1 + 4))
	if got := k.Eval([]float64{0, 0}, []float64{1, 2}); math.Abs(got-want) > 1e-15 {
		t.Fatalf("k = %v, want %v", got, want)
	}
}

func TestSEARDLengthScaleEffect(t *testing.T) {
	k := NewSEARD(1)
	SetHyperVector(k, []float64{0, math.Log(10)}) // long length scale
	far := k.Eval([]float64{0}, []float64{1})
	SetHyperVector(k, []float64{0, math.Log(0.1)}) // short length scale
	near := k.Eval([]float64{0}, []float64{1})
	if far <= near {
		t.Fatalf("longer length scale should increase correlation: %v vs %v", far, near)
	}
}

func TestSEARDGradient(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(4)
		k := NewSEARD(d)
		randHyper(rng, k)
		x1, x2 := randVec(rng, d), randVec(rng, d)
		grad := make([]float64, k.NumHyper())
		v := k.EvalGrad(x1, x2, grad)
		theta := HyperVector(k)
		const h = 1e-6
		for j := range theta {
			save := theta[j]
			theta[j] = save + h
			SetHyperVector(k, theta)
			up := k.Eval(x1, x2)
			theta[j] = save - h
			SetHyperVector(k, theta)
			dn := k.Eval(x1, x2)
			theta[j] = save
			SetHyperVector(k, theta)
			fd := (up - dn) / (2 * h)
			if math.Abs(fd-grad[j]) > 1e-5*(1+math.Abs(fd)) {
				return false
			}
		}
		_ = v
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaternGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, mk := range []Kernel{NewMatern32(3), NewMatern52(3)} {
		randHyper(rng, mk)
		checkGradFD(t, mk, randVec(rng, 3), randVec(rng, 3), 1e-5)
	}
}

func TestMaternAtZeroDistance(t *testing.T) {
	for _, mk := range []Kernel{NewMatern32(2), NewMatern52(2)} {
		x := []float64{0.3, -0.7}
		if got := mk.Eval(x, x); math.Abs(got-1) > 1e-15 {
			t.Fatalf("k(x,x) = %v, want 1 (unit amplitude)", got)
		}
		// Gradient at zero distance must be finite (no r=0 singularity).
		grad := make([]float64, mk.NumHyper())
		mk.EvalGrad(x, x, grad)
		for _, g := range grad {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				t.Fatalf("gradient at zero distance: %v", grad)
			}
		}
	}
}

func TestMaternHeavierTails(t *testing.T) {
	// At large distance, Matérn decays slower than SE.
	se := NewSEARD(1)
	m52 := NewMatern52(1)
	x1, x2 := []float64{0}, []float64{4}
	if se.Eval(x1, x2) >= m52.Eval(x1, x2) {
		t.Fatal("SE should decay faster than Matérn-5/2 at large distance")
	}
}

func TestConstantKernel(t *testing.T) {
	k := NewConstant(3)
	SetHyperVector(k, []float64{math.Log(2)})
	if got := k.Eval(randVec(rand.New(rand.NewSource(1)), 3), randVec(rand.New(rand.NewSource(2)), 3)); math.Abs(got-4) > 1e-12 {
		t.Fatalf("constant = %v, want 4", got)
	}
	rng := rand.New(rand.NewSource(9))
	checkGradFD(t, k, randVec(rng, 3), randVec(rng, 3), 1e-6)
}

func TestSumProductValues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := NewSEARD(2), NewMatern52(2)
	randHyper(rng, a)
	randHyper(rng, b)
	x1, x2 := randVec(rng, 2), randVec(rng, 2)
	sum := NewSum(a.Clone(), b.Clone())
	prod := NewProduct(a.Clone(), b.Clone())
	if got, want := sum.Eval(x1, x2), a.Eval(x1, x2)+b.Eval(x1, x2); math.Abs(got-want) > 1e-14 {
		t.Fatalf("sum %v != %v", got, want)
	}
	if got, want := prod.Eval(x1, x2), a.Eval(x1, x2)*b.Eval(x1, x2); math.Abs(got-want) > 1e-14 {
		t.Fatalf("product %v != %v", got, want)
	}
}

func TestSumProductGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k := NewSum(NewProduct(NewSEARD(2), NewMatern32(2)), NewSEARD(2))
	randHyper(rng, k)
	checkGradFD(t, k, randVec(rng, 2), randVec(rng, 2), 1e-5)
}

func TestHyperRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k := NewNARGP(3)
	randHyper(rng, k)
	h1 := HyperVector(k)
	SetHyperVector(k, h1)
	h2 := HyperVector(k)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("hyper round trip mismatch at %d", i)
		}
	}
	if k.NumHyper() != len(h1) {
		t.Fatalf("NumHyper %d != len %d", k.NumHyper(), len(h1))
	}
}

func TestSliceKernel(t *testing.T) {
	inner := NewSEARD(2)
	s := NewSlice(inner, 1, 3, 4)
	x1 := []float64{9, 0.1, 0.2, 9}
	x2 := []float64{-9, 0.3, 0.4, -9}
	want := inner.Eval([]float64{0.1, 0.2}, []float64{0.3, 0.4})
	if got := s.Eval(x1, x2); math.Abs(got-want) > 1e-15 {
		t.Fatalf("slice eval %v != %v", got, want)
	}
	if s.Dim() != 4 {
		t.Fatalf("slice dim %d", s.Dim())
	}
}

func TestSlicePanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSlice(NewSEARD(2), 0, 1, 4)
}

func TestNARGPStructure(t *testing.T) {
	d := 3
	k := NewNARGP(d)
	if k.Dim() != d+1 {
		t.Fatalf("NARGP dim %d, want %d", k.Dim(), d+1)
	}
	// NumHyper: k1 (1-d SE: 2) + k2 (d-dim SE: d+1) + k3 (d+1) = d+d+4... wait
	want := 2 + (d + 1) + (d + 1)
	if k.NumHyper() != want {
		t.Fatalf("NARGP hypers %d, want %d", k.NumHyper(), want)
	}
	rng := rand.New(rand.NewSource(8))
	randHyper(rng, k)
	checkGradFD(t, k, randVec(rng, d+1), randVec(rng, d+1), 1e-5)
}

func TestNARGPIgnoresFWhenK1Flat(t *testing.T) {
	// With a huge k1 length scale on the f coordinate, the kernel should be
	// nearly independent of f.
	d := 2
	k := NewNARGP(d)
	h := make([]float64, k.NumHyper())
	h[1] = 5 // log l_f large → k1 ≈ constant
	SetHyperVector(k, h)
	z1 := []float64{0.1, 0.2, -3}
	z2 := []float64{0.1, 0.2, +3}
	v1 := k.Eval(z1, z1)
	v2 := k.Eval(z1, z2)
	if math.Abs(v1-v2) > 1e-3*v1 {
		t.Fatalf("flat k1 should suppress f dependence: %v vs %v", v1, v2)
	}
}

// Gram matrices of valid kernels must be symmetric PSD.
func TestGramPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	kernels := []Kernel{
		NewSEARD(3), NewMatern32(3), NewMatern52(3),
		NewSum(NewSEARD(3), NewMatern52(3)),
		NewProduct(NewSEARD(3), NewMatern32(3)),
	}
	for _, k := range kernels {
		randHyper(rng, k)
		n := 8
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = randVec(rng, 3)
		}
		g := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g.Set(i, j, k.Eval(pts[i], pts[j]))
			}
		}
		// Symmetry.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if math.Abs(g.At(i, j)-g.At(j, i)) > 1e-12 {
					t.Fatalf("gram not symmetric for %T", k)
				}
			}
		}
		vals, _, err := linalg.SymEigen(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			if v < -1e-8 {
				t.Fatalf("gram of %T has negative eigenvalue %v", k, v)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	k := NewNARGP(2)
	c := k.Clone()
	h := make([]float64, k.NumHyper())
	for i := range h {
		h[i] = 1
	}
	SetHyperVector(c, h)
	for _, v := range HyperVector(k) {
		if v != 0 {
			t.Fatal("Clone shares hyperparameter storage")
		}
	}
}

func TestBoundsLengths(t *testing.T) {
	for _, k := range []Kernel{NewSEARD(4), NewMatern52(2), NewNARGP(3), NewConstant(1)} {
		lo, hi := BoundsVectors(k)
		if len(lo) != k.NumHyper() || len(hi) != k.NumHyper() {
			t.Fatalf("%T bounds lengths %d/%d, want %d", k, len(lo), len(hi), k.NumHyper())
		}
		for i := range lo {
			if lo[i] >= hi[i] {
				t.Fatalf("%T bounds inverted at %d", k, i)
			}
		}
	}
}

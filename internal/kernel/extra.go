package kernel

import (
	"fmt"
	"math"
)

// RationalQuadratic is the RQ kernel with ARD length scales — a scale
// mixture of SE kernels that models multi-scale variation:
//
//	k(x, x') = σ_f²·(1 + r²/(2α))^{−α},  r² = Σ_i (x_i−x'_i)²/l_i².
//
// Hyperparameters (log-space): [log σ_f, log α, log l_1, …, log l_d].
// As α → ∞ it converges to the SE kernel.
type RationalQuadratic struct {
	dim      int
	logAmp   float64
	logAlpha float64
	logScale []float64
}

// NewRationalQuadratic returns an RQ kernel with unit amplitude, α = 1 and
// unit length scales.
func NewRationalQuadratic(d int) *RationalQuadratic {
	if d < 1 {
		panic(fmt.Sprintf("kernel: RQ dimension %d < 1", d))
	}
	return &RationalQuadratic{dim: d, logScale: make([]float64, d)}
}

// Dim implements Kernel.
func (k *RationalQuadratic) Dim() int { return k.dim }

// NumHyper implements Kernel.
func (k *RationalQuadratic) NumHyper() int { return 2 + k.dim }

// Hyper implements Kernel.
func (k *RationalQuadratic) Hyper(dst []float64) []float64 {
	dst = append(dst, k.logAmp, k.logAlpha)
	return append(dst, k.logScale...)
}

// SetHyper implements Kernel.
func (k *RationalQuadratic) SetHyper(src []float64) int {
	k.logAmp = src[0]
	k.logAlpha = src[1]
	copy(k.logScale, src[2:2+k.dim])
	return 2 + k.dim
}

func (k *RationalQuadratic) parts(x1, x2 []float64, scaled []float64) (q float64) {
	for i := 0; i < k.dim; i++ {
		d := (x1[i] - x2[i]) * math.Exp(-k.logScale[i])
		s := d * d
		if scaled != nil {
			scaled[i] = s
		}
		q += s
	}
	return q
}

// Eval implements Kernel.
func (k *RationalQuadratic) Eval(x1, x2 []float64) float64 {
	q := k.parts(x1, x2, nil)
	alpha := math.Exp(k.logAlpha)
	u := 1 + q/(2*alpha)
	return math.Exp(2*k.logAmp) * math.Pow(u, -alpha)
}

// EvalGrad implements Kernel.
func (k *RationalQuadratic) EvalGrad(x1, x2 []float64, grad []float64) float64 {
	scaled := make([]float64, k.dim)
	q := k.parts(x1, x2, scaled)
	alpha := math.Exp(k.logAlpha)
	amp2 := math.Exp(2 * k.logAmp)
	u := 1 + q/(2*alpha)
	v := amp2 * math.Pow(u, -alpha)
	grad[0] = 2 * v
	// ∂k/∂log α = α·k·(−ln u + q/(2αu)).
	grad[1] = alpha * v * (-math.Log(u) + q/(2*alpha*u))
	// ∂k/∂log l_i = σ_f²·u^{−α−1}·scaled_i.
	base := amp2 * math.Pow(u, -alpha-1)
	for i := 0; i < k.dim; i++ {
		grad[2+i] = base * scaled[i]
	}
	return v
}

// Bounds implements Kernel.
func (k *RationalQuadratic) Bounds(lo, hi []float64) ([]float64, []float64) {
	lo = append(lo, -6, -3)
	hi = append(hi, 6, 5)
	for i := 0; i < k.dim; i++ {
		lo = append(lo, -5)
		hi = append(hi, 5)
	}
	return lo, hi
}

// Clone implements Kernel.
func (k *RationalQuadratic) Clone() Kernel {
	return &RationalQuadratic{dim: k.dim, logAmp: k.logAmp, logAlpha: k.logAlpha,
		logScale: append([]float64(nil), k.logScale...)}
}

// Periodic is the exp-sine-squared kernel with per-dimension period and
// length scale, for strictly periodic structure:
//
//	k(x, x') = σ_f²·exp(−Σ_i 2·sin²(π(x_i−x'_i)/p_i)/l_i²).
//
// Hyperparameters (log-space): [log σ_f, log p_1, …, log p_d, log l_1, …,
// log l_d].
type Periodic struct {
	dim       int
	logAmp    float64
	logPeriod []float64
	logScale  []float64
}

// NewPeriodic returns a periodic kernel with unit amplitude, periods and
// length scales.
func NewPeriodic(d int) *Periodic {
	if d < 1 {
		panic(fmt.Sprintf("kernel: periodic dimension %d < 1", d))
	}
	return &Periodic{dim: d, logPeriod: make([]float64, d), logScale: make([]float64, d)}
}

// Dim implements Kernel.
func (k *Periodic) Dim() int { return k.dim }

// NumHyper implements Kernel.
func (k *Periodic) NumHyper() int { return 1 + 2*k.dim }

// Hyper implements Kernel.
func (k *Periodic) Hyper(dst []float64) []float64 {
	dst = append(dst, k.logAmp)
	dst = append(dst, k.logPeriod...)
	return append(dst, k.logScale...)
}

// SetHyper implements Kernel.
func (k *Periodic) SetHyper(src []float64) int {
	k.logAmp = src[0]
	copy(k.logPeriod, src[1:1+k.dim])
	copy(k.logScale, src[1+k.dim:1+2*k.dim])
	return 1 + 2*k.dim
}

// Eval implements Kernel.
func (k *Periodic) Eval(x1, x2 []float64) float64 {
	sum := 0.0
	for i := 0; i < k.dim; i++ {
		p := math.Exp(k.logPeriod[i])
		l2 := math.Exp(2 * k.logScale[i])
		s := math.Sin(math.Pi * (x1[i] - x2[i]) / p)
		sum += 2 * s * s / l2
	}
	return math.Exp(2*k.logAmp - sum)
}

// EvalGrad implements Kernel.
func (k *Periodic) EvalGrad(x1, x2 []float64, grad []float64) float64 {
	sum := 0.0
	terms := make([]float64, k.dim)
	dPeriod := make([]float64, k.dim)
	for i := 0; i < k.dim; i++ {
		p := math.Exp(k.logPeriod[i])
		l2 := math.Exp(2 * k.logScale[i])
		delta := x1[i] - x2[i]
		arg := math.Pi * delta / p
		s := math.Sin(arg)
		terms[i] = 2 * s * s / l2
		sum += terms[i]
		// ∂term/∂log p = −(2πΔ/(p·l²))·sin(2πΔ/p).
		dPeriod[i] = -(2 * math.Pi * delta / (p * l2)) * math.Sin(2*arg)
	}
	v := math.Exp(2*k.logAmp - sum)
	grad[0] = 2 * v
	for i := 0; i < k.dim; i++ {
		grad[1+i] = -v * dPeriod[i]
		grad[1+k.dim+i] = 2 * v * terms[i] // ∂term/∂log l = −2·term
	}
	return v
}

// Bounds implements Kernel.
func (k *Periodic) Bounds(lo, hi []float64) ([]float64, []float64) {
	lo = append(lo, -6)
	hi = append(hi, 6)
	for i := 0; i < k.dim; i++ {
		lo = append(lo, -4)
		hi = append(hi, 4)
	}
	for i := 0; i < k.dim; i++ {
		lo = append(lo, -5)
		hi = append(hi, 5)
	}
	return lo, hi
}

// Clone implements Kernel.
func (k *Periodic) Clone() Kernel {
	return &Periodic{dim: k.dim, logAmp: k.logAmp,
		logPeriod: append([]float64(nil), k.logPeriod...),
		logScale:  append([]float64(nil), k.logScale...)}
}

package kernel

import "fmt"

// Sum is the pointwise sum of two kernels over the same input space.
type Sum struct {
	A, B Kernel
}

// NewSum returns a + b. Both kernels must share the input dimension.
func NewSum(a, b Kernel) *Sum {
	if a.Dim() != b.Dim() {
		panic(fmt.Sprintf("kernel: sum dim mismatch %d vs %d", a.Dim(), b.Dim()))
	}
	return &Sum{A: a, B: b}
}

// Dim implements Kernel.
func (k *Sum) Dim() int { return k.A.Dim() }

// NumHyper implements Kernel.
func (k *Sum) NumHyper() int { return k.A.NumHyper() + k.B.NumHyper() }

// Hyper implements Kernel.
func (k *Sum) Hyper(dst []float64) []float64 { return k.B.Hyper(k.A.Hyper(dst)) }

// SetHyper implements Kernel.
func (k *Sum) SetHyper(src []float64) int {
	n := k.A.SetHyper(src)
	n += k.B.SetHyper(src[n:])
	return n
}

// Eval implements Kernel.
func (k *Sum) Eval(x1, x2 []float64) float64 { return k.A.Eval(x1, x2) + k.B.Eval(x1, x2) }

// EvalGrad implements Kernel.
func (k *Sum) EvalGrad(x1, x2 []float64, grad []float64) float64 {
	na := k.A.NumHyper()
	va := k.A.EvalGrad(x1, x2, grad[:na])
	vb := k.B.EvalGrad(x1, x2, grad[na:])
	return va + vb
}

// Bounds implements Kernel.
func (k *Sum) Bounds(lo, hi []float64) ([]float64, []float64) {
	lo, hi = k.A.Bounds(lo, hi)
	return k.B.Bounds(lo, hi)
}

// Clone implements Kernel.
func (k *Sum) Clone() Kernel { return &Sum{A: k.A.Clone(), B: k.B.Clone()} }

// Product is the pointwise product of two kernels over the same input space.
type Product struct {
	A, B Kernel
}

// NewProduct returns a · b. Both kernels must share the input dimension.
func NewProduct(a, b Kernel) *Product {
	if a.Dim() != b.Dim() {
		panic(fmt.Sprintf("kernel: product dim mismatch %d vs %d", a.Dim(), b.Dim()))
	}
	return &Product{A: a, B: b}
}

// Dim implements Kernel.
func (k *Product) Dim() int { return k.A.Dim() }

// NumHyper implements Kernel.
func (k *Product) NumHyper() int { return k.A.NumHyper() + k.B.NumHyper() }

// Hyper implements Kernel.
func (k *Product) Hyper(dst []float64) []float64 { return k.B.Hyper(k.A.Hyper(dst)) }

// SetHyper implements Kernel.
func (k *Product) SetHyper(src []float64) int {
	n := k.A.SetHyper(src)
	n += k.B.SetHyper(src[n:])
	return n
}

// Eval implements Kernel.
func (k *Product) Eval(x1, x2 []float64) float64 { return k.A.Eval(x1, x2) * k.B.Eval(x1, x2) }

// EvalGrad implements Kernel.
func (k *Product) EvalGrad(x1, x2 []float64, grad []float64) float64 {
	na := k.A.NumHyper()
	va := k.A.EvalGrad(x1, x2, grad[:na])
	vb := k.B.EvalGrad(x1, x2, grad[na:])
	for i := 0; i < na; i++ {
		grad[i] *= vb
	}
	for i := na; i < len(grad); i++ {
		grad[i] *= va
	}
	return va * vb
}

// Bounds implements Kernel.
func (k *Product) Bounds(lo, hi []float64) ([]float64, []float64) {
	lo, hi = k.A.Bounds(lo, hi)
	return k.B.Bounds(lo, hi)
}

// Clone implements Kernel.
func (k *Product) Clone() Kernel { return &Product{A: k.A.Clone(), B: k.B.Clone()} }

// Slice adapts a kernel over a sub-range of input coordinates: the wrapped
// kernel sees x[Start:End]. It is the building block for structured kernels
// over augmented inputs such as (x, f_l(x)).
type Slice struct {
	Inner      Kernel
	Start, End int // half-open coordinate range
	fullDim    int
}

// NewSlice wraps inner so that it reads coordinates [start, end) of a
// fullDim-dimensional input. inner.Dim() must equal end−start.
func NewSlice(inner Kernel, start, end, fullDim int) *Slice {
	if start < 0 || end > fullDim || end-start != inner.Dim() {
		panic(fmt.Sprintf("kernel: slice [%d,%d) of %d-dim input for %d-dim kernel",
			start, end, fullDim, inner.Dim()))
	}
	return &Slice{Inner: inner, Start: start, End: end, fullDim: fullDim}
}

// Dim implements Kernel.
func (k *Slice) Dim() int { return k.fullDim }

// NumHyper implements Kernel.
func (k *Slice) NumHyper() int { return k.Inner.NumHyper() }

// Hyper implements Kernel.
func (k *Slice) Hyper(dst []float64) []float64 { return k.Inner.Hyper(dst) }

// SetHyper implements Kernel.
func (k *Slice) SetHyper(src []float64) int { return k.Inner.SetHyper(src) }

// Eval implements Kernel.
func (k *Slice) Eval(x1, x2 []float64) float64 {
	return k.Inner.Eval(x1[k.Start:k.End], x2[k.Start:k.End])
}

// EvalGrad implements Kernel.
func (k *Slice) EvalGrad(x1, x2 []float64, grad []float64) float64 {
	return k.Inner.EvalGrad(x1[k.Start:k.End], x2[k.Start:k.End], grad)
}

// Bounds implements Kernel.
func (k *Slice) Bounds(lo, hi []float64) ([]float64, []float64) { return k.Inner.Bounds(lo, hi) }

// Clone implements Kernel.
func (k *Slice) Clone() Kernel {
	return &Slice{Inner: k.Inner.Clone(), Start: k.Start, End: k.End, fullDim: k.fullDim}
}

// NewNARGP builds the structured multi-fidelity kernel of eq. (9) over the
// augmented input z = (x_1..x_d, f_l(x)):
//
//	k_h(z, z') = k1(f, f') · k2(x, x') + k3(x, x'),
//
// with squared-exponential factors. k1 acts on the low-fidelity posterior
// value (last coordinate), k2 and k3 on the original design variables.
func NewNARGP(d int) Kernel {
	full := d + 1
	k1 := NewSlice(NewSEARD(1), d, d+1, full)
	k2 := NewSlice(NewSEARD(d), 0, d, full)
	k3 := NewSlice(NewSEARD(d), 0, d, full)
	return NewSum(NewProduct(k1, k2), k3)
}

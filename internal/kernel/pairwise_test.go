package kernel

import (
	"math/rand"
	"testing"
)

// profileKernels enumerates every built-in kernel (including the NARGP
// composite) with a fresh instance per call.
func profileKernels(d int) map[string]Kernel {
	return map[string]Kernel{
		"seard":    NewSEARD(d),
		"matern32": NewMatern32(d),
		"matern52": NewMatern52(d),
		"constant": NewConstant(d),
		"rq":       NewRationalQuadratic(d),
		"periodic": NewPeriodic(d),
		"sum":      NewSum(NewSEARD(d), NewMatern52(d)),
		"product":  NewProduct(NewSEARD(d), NewConstant(d)),
		"slice":    NewSlice(NewSEARD(d-1), 1, d, d),
		"nargp":    NewNARGP(d - 1),
	}
}

func TestProfileBitIdenticalToDirect(t *testing.T) {
	const d = 4
	rng := rand.New(rand.NewSource(7))
	for name, k := range profileKernels(d) {
		t.Run(name, func(t *testing.T) {
			nh := k.NumHyper()
			for trial := 0; trial < 20; trial++ {
				h := make([]float64, nh)
				lo, hi := BoundsVectors(k)
				for j := range h {
					h[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
				}
				SetHyperVector(k, h)
				p := ProfileOf(k)
				if p == nil {
					t.Fatalf("%s: no profile", name)
				}
				if p.NumHyper() != nh {
					t.Fatalf("%s: profile NumHyper %d != %d", name, p.NumHyper(), nh)
				}
				x1 := make([]float64, d)
				x2 := make([]float64, d)
				diff := make([]float64, d)
				for j := 0; j < d; j++ {
					x1[j] = rng.NormFloat64()
					x2[j] = rng.NormFloat64()
					diff[j] = x1[j] - x2[j]
				}
				gDirect := make([]float64, nh)
				gProf := make([]float64, nh)
				if got, want := p.Eval(diff), k.Eval(x1, x2); got != want {
					t.Fatalf("%s trial %d: profile Eval %v != direct %v", name, trial, got, want)
				}
				vd := k.EvalGrad(x1, x2, gDirect)
				vp := p.EvalGrad(diff, gProf)
				if vp != vd {
					t.Fatalf("%s trial %d: profile EvalGrad %v != direct %v", name, trial, vp, vd)
				}
				for j := range gDirect {
					if gProf[j] != gDirect[j] {
						t.Fatalf("%s trial %d: grad[%d] profile %v != direct %v",
							name, trial, j, gProf[j], gDirect[j])
					}
				}
				// Zero-distance pair (diagonal of a covariance matrix).
				if got, want := p.Eval(make([]float64, d)), k.Eval(x1, x1); got != want {
					t.Fatalf("%s trial %d: diagonal profile %v != direct %v", name, trial, got, want)
				}
			}
		})
	}
}

// opaqueKernel wraps a kernel while hiding its Pairwise implementation.
type opaqueKernel struct{ Kernel }

func (o opaqueKernel) Clone() Kernel { return opaqueKernel{o.Kernel.Clone()} }

func TestProfileOfUnsupportedReturnsNil(t *testing.T) {
	plain := opaqueKernel{NewSEARD(2)}
	if p := ProfileOf(plain); p != nil {
		t.Fatal("opaque kernel unexpectedly produced a profile")
	}
	// Composites degrade to nil when any sub-kernel is unsupported.
	for name, k := range map[string]Kernel{
		"sum":     NewSum(NewSEARD(2), plain),
		"product": NewProduct(plain, NewSEARD(2)),
		"slice":   NewSlice(opaqueKernel{NewSEARD(1)}, 0, 1, 2),
	} {
		if p := ProfileOf(k); p != nil {
			t.Fatalf("%s with opaque sub-kernel unexpectedly produced a profile", name)
		}
	}
}

func TestProfileSnapshotsHyperparameters(t *testing.T) {
	k := NewSEARD(2)
	SetHyperVector(k, []float64{0.3, -0.2, 0.1})
	p := ProfileOf(k)
	x1 := []float64{0.5, -1.2}
	x2 := []float64{-0.3, 0.7}
	diff := []float64{x1[0] - x2[0], x1[1] - x2[1]}
	before := p.Eval(diff)
	SetHyperVector(k, []float64{1.1, 0.4, -0.9})
	if got := p.Eval(diff); got != before {
		t.Fatalf("profile tracked SetHyper: %v != snapshot %v", got, before)
	}
	if fresh := ProfileOf(k).Eval(diff); fresh != k.Eval(x1, x2) {
		t.Fatalf("fresh profile %v != direct %v", fresh, k.Eval(x1, x2))
	}
}

package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestRQValueAtZeroDistance(t *testing.T) {
	k := NewRationalQuadratic(2)
	x := []float64{0.3, -0.2}
	if got := k.Eval(x, x); math.Abs(got-1) > 1e-15 {
		t.Fatalf("k(x,x) = %v, want 1", got)
	}
}

func TestRQApproachesSEForLargeAlpha(t *testing.T) {
	rq := NewRationalQuadratic(1)
	se := NewSEARD(1)
	SetHyperVector(rq, []float64{0, 12, 0}) // α = e¹² → SE limit
	x1, x2 := []float64{0}, []float64{0.7}
	if math.Abs(rq.Eval(x1, x2)-se.Eval(x1, x2)) > 1e-4 {
		t.Fatalf("RQ with huge α %v != SE %v", rq.Eval(x1, x2), se.Eval(x1, x2))
	}
}

func TestRQHeavierTailsThanSE(t *testing.T) {
	// With small α the RQ mixture has heavier tails than SE.
	rq := NewRationalQuadratic(1)
	SetHyperVector(rq, []float64{0, math.Log(0.5), 0})
	se := NewSEARD(1)
	x1, x2 := []float64{0}, []float64{3}
	if rq.Eval(x1, x2) <= se.Eval(x1, x2) {
		t.Fatal("small-α RQ should decay slower than SE")
	}
}

func TestRQGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := NewRationalQuadratic(3)
	randHyper(rng, k)
	checkGradFD(t, k, randVec(rng, 3), randVec(rng, 3), 1e-5)
}

func TestPeriodicExactPeriodicity(t *testing.T) {
	k := NewPeriodic(1)
	SetHyperVector(k, []float64{0, math.Log(0.5), 0}) // period 0.5
	x := []float64{0.13}
	for _, shift := range []float64{0.5, 1, 2.5} {
		y := []float64{0.13 + shift}
		if got := k.Eval(x, y); math.Abs(got-1) > 1e-12 {
			t.Fatalf("shift %v: k = %v, want 1 (periodic)", shift, got)
		}
	}
	// Half a period away: maximal decorrelation.
	far := k.Eval([]float64{0}, []float64{0.25})
	near := k.Eval([]float64{0}, []float64{0.01})
	if far >= near {
		t.Fatal("half-period distance should decorrelate")
	}
}

func TestPeriodicGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := NewPeriodic(2)
	randHyper(rng, k)
	checkGradFD(t, k, randVec(rng, 2), randVec(rng, 2), 1e-5)
}

func TestExtraKernelsGramPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []Kernel{NewRationalQuadratic(2), NewPeriodic(2)} {
		randHyper(rng, k)
		n := 7
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = randVec(rng, 2)
		}
		g := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g.Set(i, j, k.Eval(pts[i], pts[j]))
			}
		}
		vals, _, err := linalg.SymEigen(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			if v < -1e-8 {
				t.Fatalf("%T gram has negative eigenvalue %v", k, v)
			}
		}
	}
}

func TestExtraKernelsRoundTripAndClone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, k := range []Kernel{NewRationalQuadratic(3), NewPeriodic(3)} {
		randHyper(rng, k)
		h := HyperVector(k)
		if len(h) != k.NumHyper() {
			t.Fatalf("%T hyper length %d != %d", k, len(h), k.NumHyper())
		}
		c := k.Clone()
		zero := make([]float64, k.NumHyper())
		SetHyperVector(c, zero)
		h2 := HyperVector(k)
		for i := range h {
			if h[i] != h2[i] {
				t.Fatalf("%T clone shares storage", k)
			}
		}
		lo, hi := BoundsVectors(k)
		if len(lo) != k.NumHyper() || len(hi) != k.NumHyper() {
			t.Fatalf("%T bounds lengths wrong", k)
		}
	}
}

func TestExtraKernelsComposable(t *testing.T) {
	// RQ + Periodic·SE trains as a composite without issue (value check).
	rng := rand.New(rand.NewSource(5))
	comp := NewSum(NewRationalQuadratic(2), NewProduct(NewPeriodic(2), NewSEARD(2)))
	randHyper(rng, comp)
	checkGradFD(t, comp, randVec(rng, 2), randVec(rng, 2), 1e-5)
}

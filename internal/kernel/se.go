package kernel

import (
	"fmt"
	"math"
)

// SEARD is the squared-exponential (RBF) kernel with automatic relevance
// determination, eq. (2) of the paper:
//
//	k(x, x') = σ_f² · exp(−½ Σ_i (x_i − x'_i)² / l_i²).
//
// Hyperparameters (log-space): [log σ_f, log l_1, …, log l_d].
type SEARD struct {
	dim      int
	logAmp   float64   // log σ_f
	logScale []float64 // log l_i
}

// NewSEARD returns an SE-ARD kernel for d-dimensional inputs with unit
// amplitude and unit length scales.
func NewSEARD(d int) *SEARD {
	if d < 1 {
		panic(fmt.Sprintf("kernel: SEARD dimension %d < 1", d))
	}
	return &SEARD{dim: d, logScale: make([]float64, d)}
}

// Dim implements Kernel.
func (k *SEARD) Dim() int { return k.dim }

// NumHyper implements Kernel.
func (k *SEARD) NumHyper() int { return 1 + k.dim }

// Hyper implements Kernel.
func (k *SEARD) Hyper(dst []float64) []float64 {
	dst = append(dst, k.logAmp)
	return append(dst, k.logScale...)
}

// SetHyper implements Kernel.
func (k *SEARD) SetHyper(src []float64) int {
	k.logAmp = src[0]
	copy(k.logScale, src[1:1+k.dim])
	return 1 + k.dim
}

// Eval implements Kernel.
func (k *SEARD) Eval(x1, x2 []float64) float64 {
	k.checkDim(x1, x2)
	q := 0.0
	for i := 0; i < k.dim; i++ {
		d := (x1[i] - x2[i]) * math.Exp(-k.logScale[i])
		q += d * d
	}
	return math.Exp(2*k.logAmp - 0.5*q)
}

// EvalGrad implements Kernel.
func (k *SEARD) EvalGrad(x1, x2 []float64, grad []float64) float64 {
	k.checkDim(x1, x2)
	q := 0.0
	scaled := make([]float64, k.dim)
	for i := 0; i < k.dim; i++ {
		d := (x1[i] - x2[i]) * math.Exp(-k.logScale[i])
		scaled[i] = d * d
		q += scaled[i]
	}
	v := math.Exp(2*k.logAmp - 0.5*q)
	grad[0] = 2 * v // ∂k/∂log σ_f
	for i := 0; i < k.dim; i++ {
		grad[1+i] = v * scaled[i] // ∂k/∂log l_i = k·Δ_i²/l_i²
	}
	return v
}

// Bounds implements Kernel. Amplitude in [e⁻⁶, e⁶]; length scales in
// [e⁻⁵, e⁵] — generous ranges for inputs standardized to unit scale.
func (k *SEARD) Bounds(lo, hi []float64) ([]float64, []float64) {
	lo = append(lo, -6)
	hi = append(hi, 6)
	for i := 0; i < k.dim; i++ {
		lo = append(lo, -5)
		hi = append(hi, 5)
	}
	return lo, hi
}

// Clone implements Kernel.
func (k *SEARD) Clone() Kernel {
	return &SEARD{dim: k.dim, logAmp: k.logAmp, logScale: append([]float64(nil), k.logScale...)}
}

func (k *SEARD) checkDim(x1, x2 []float64) {
	if len(x1) != k.dim || len(x2) != k.dim {
		panic(fmt.Sprintf("kernel: SEARD input dims %d/%d != %d", len(x1), len(x2), k.dim))
	}
}

// Matern is the Matérn covariance with ARD length scales and ν ∈ {3/2, 5/2}.
// Hyperparameters (log-space): [log σ_f, log l_1, …, log l_d].
type Matern struct {
	dim      int
	nu32     bool // true: ν = 3/2, false: ν = 5/2
	logAmp   float64
	logScale []float64
}

// NewMatern32 returns a Matérn-3/2 ARD kernel.
func NewMatern32(d int) *Matern { return newMatern(d, true) }

// NewMatern52 returns a Matérn-5/2 ARD kernel.
func NewMatern52(d int) *Matern { return newMatern(d, false) }

func newMatern(d int, nu32 bool) *Matern {
	if d < 1 {
		panic(fmt.Sprintf("kernel: Matern dimension %d < 1", d))
	}
	return &Matern{dim: d, nu32: nu32, logScale: make([]float64, d)}
}

// Dim implements Kernel.
func (k *Matern) Dim() int { return k.dim }

// NumHyper implements Kernel.
func (k *Matern) NumHyper() int { return 1 + k.dim }

// Hyper implements Kernel.
func (k *Matern) Hyper(dst []float64) []float64 {
	dst = append(dst, k.logAmp)
	return append(dst, k.logScale...)
}

// SetHyper implements Kernel.
func (k *Matern) SetHyper(src []float64) int {
	k.logAmp = src[0]
	copy(k.logScale, src[1:1+k.dim])
	return 1 + k.dim
}

func (k *Matern) r2(x1, x2 []float64, scaled []float64) float64 {
	q := 0.0
	for i := 0; i < k.dim; i++ {
		d := (x1[i] - x2[i]) * math.Exp(-k.logScale[i])
		s := d * d
		if scaled != nil {
			scaled[i] = s
		}
		q += s
	}
	return q
}

// Eval implements Kernel.
func (k *Matern) Eval(x1, x2 []float64) float64 {
	r := math.Sqrt(k.r2(x1, x2, nil))
	amp2 := math.Exp(2 * k.logAmp)
	if k.nu32 {
		c := math.Sqrt(3) * r
		return amp2 * (1 + c) * math.Exp(-c)
	}
	c := math.Sqrt(5) * r
	return amp2 * (1 + c + c*c/3) * math.Exp(-c)
}

// EvalGrad implements Kernel.
func (k *Matern) EvalGrad(x1, x2 []float64, grad []float64) float64 {
	scaled := make([]float64, k.dim)
	r := math.Sqrt(k.r2(x1, x2, scaled))
	amp2 := math.Exp(2 * k.logAmp)
	var v, dFactor float64
	if k.nu32 {
		c := math.Sqrt(3) * r
		e := math.Exp(-c)
		v = amp2 * (1 + c) * e
		// ∂k/∂log l_i = 3·σ_f²·e^{−√3 r}·Δ_i²/l_i²
		dFactor = 3 * amp2 * e
	} else {
		c := math.Sqrt(5) * r
		e := math.Exp(-c)
		v = amp2 * (1 + c + c*c/3) * e
		// ∂k/∂log l_i = (5/3)·σ_f²·(1+√5 r)·e^{−√5 r}·Δ_i²/l_i²
		dFactor = (5.0 / 3.0) * amp2 * (1 + c) * e
	}
	grad[0] = 2 * v
	for i := 0; i < k.dim; i++ {
		grad[1+i] = dFactor * scaled[i]
	}
	return v
}

// Bounds implements Kernel.
func (k *Matern) Bounds(lo, hi []float64) ([]float64, []float64) {
	lo = append(lo, -6)
	hi = append(hi, 6)
	for i := 0; i < k.dim; i++ {
		lo = append(lo, -5)
		hi = append(hi, 5)
	}
	return lo, hi
}

// Clone implements Kernel.
func (k *Matern) Clone() Kernel {
	return &Matern{dim: k.dim, nu32: k.nu32, logAmp: k.logAmp,
		logScale: append([]float64(nil), k.logScale...)}
}

// Constant is the constant covariance k(x, x') = σ². Hyperparameter: [log σ].
type Constant struct {
	dim    int
	logAmp float64
}

// NewConstant returns a constant kernel for d-dimensional inputs.
func NewConstant(d int) *Constant { return &Constant{dim: d} }

// Dim implements Kernel.
func (k *Constant) Dim() int { return k.dim }

// NumHyper implements Kernel.
func (k *Constant) NumHyper() int { return 1 }

// Hyper implements Kernel.
func (k *Constant) Hyper(dst []float64) []float64 { return append(dst, k.logAmp) }

// SetHyper implements Kernel.
func (k *Constant) SetHyper(src []float64) int {
	k.logAmp = src[0]
	return 1
}

// Eval implements Kernel.
func (k *Constant) Eval(_, _ []float64) float64 { return math.Exp(2 * k.logAmp) }

// EvalGrad implements Kernel.
func (k *Constant) EvalGrad(_, _ []float64, grad []float64) float64 {
	v := math.Exp(2 * k.logAmp)
	grad[0] = 2 * v
	return v
}

// Bounds implements Kernel.
func (k *Constant) Bounds(lo, hi []float64) ([]float64, []float64) {
	return append(lo, -6), append(hi, 6)
}

// Clone implements Kernel.
func (k *Constant) Clone() Kernel { return &Constant{dim: k.dim, logAmp: k.logAmp} }

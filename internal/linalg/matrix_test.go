package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %d×%d, want 3×4", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("new matrix not zeroed: %v", m.Data)
		}
	}
}

func TestNewMatrixFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewMatrixFrom(2, 2, []float64{1, 2, 3})
}

func TestAtSetAdd(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I[%d][%d] = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %d×%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		m := randomMatrix(rng, r, c)
		tt := m.T().T()
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMulAgainstHand(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrixFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := a.Mul(b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if got.Data[i] != w {
			t.Fatalf("Mul = %v, want %v", got.Data, want)
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 4, 4)
	got := m.Mul(Identity(4))
	for i := range m.Data {
		if !almostEq(got.Data[i], m.Data[i], 1e-15) {
			t.Fatalf("A·I != A at %d", i)
		}
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(5), 1+rng.Intn(5)
		m := randomMatrix(rng, r, c)
		v := make([]float64, c)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		got := m.MulVec(v)
		vm := NewMatrixFrom(c, 1, append([]float64(nil), v...))
		want := m.Mul(vm)
		for i := range got {
			if !almostEq(got[i], want.Data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{4, 3, 2, 1})
	sum := a.AddMat(b)
	for _, v := range sum.Data {
		if v != 5 {
			t.Fatalf("AddMat = %v", sum.Data)
		}
	}
	diff := sum.SubMat(b)
	for i := range a.Data {
		if diff.Data[i] != a.Data[i] {
			t.Fatalf("SubMat = %v, want %v", diff.Data, a.Data)
		}
	}
	sc := a.Clone().Scale(2)
	for i := range a.Data {
		if sc.Data[i] != 2*a.Data[i] {
			t.Fatalf("Scale = %v", sc.Data)
		}
	}
}

func TestTraceAndMaxAbs(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, -9, 3, 4})
	if m.Trace() != 5 {
		t.Fatalf("Trace = %v, want 5", m.Trace())
	}
	if m.MaxAbs() != 9 {
		t.Fatalf("MaxAbs = %v, want 9", m.MaxAbs())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewMatrixFrom(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestDotAndNorms(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2([]float64{0, 0}); got != 0 {
		t.Fatalf("Norm2(0) = %v", got)
	}
	// Overflow-safety: naive sum of squares would overflow here.
	big := 1e200
	if got := Norm2([]float64{big, big}); math.IsInf(got, 0) {
		t.Fatalf("Norm2 overflowed: %v", got)
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if got := AddVec(a, b); got[0] != 4 || got[1] != 7 {
		t.Fatalf("AddVec = %v", got)
	}
	if got := SubVec(b, a); got[0] != 2 || got[1] != 3 {
		t.Fatalf("SubVec = %v", got)
	}
	if got := ScaleVec(2, a); got[0] != 2 || got[1] != 4 {
		t.Fatalf("ScaleVec = %v", got)
	}
	y := []float64{1, 1}
	AXPY(3, a, y)
	if y[0] != 4 || y[1] != 7 {
		t.Fatalf("AXPY = %v", y)
	}
}

func TestRowIsView(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(1)
	r[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatal("Row should alias the matrix data")
	}
}

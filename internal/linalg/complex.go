package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CMatrix is a dense row-major complex matrix, used by the circuit
// simulator's small-signal (AC) analysis.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zeroed r×c complex matrix.
func NewCMatrix(r, c int) *CMatrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %d×%d", r, c))
	}
	return &CMatrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// At returns element (i, j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *CMatrix) Clone() *CMatrix {
	d := make([]complex128, len(m.Data))
	copy(d, m.Data)
	return &CMatrix{Rows: m.Rows, Cols: m.Cols, Data: d}
}

// MulVec returns m·v as a new vector.
func (m *CMatrix) MulVec(v []complex128) []complex128 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: cmulvec shape mismatch %d×%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s complex128
		for j, r := range row {
			s += r * v[j]
		}
		out[i] = s
	}
	return out
}

// CLU is a row-pivoted LU factorization of a complex square matrix.
type CLU struct {
	lu    *CMatrix
	pivot []int
}

// NewCLU factorizes the square complex matrix a with partial pivoting
// (by magnitude). a is not modified.
func NewCLU(a *CMatrix) (*CLU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: CLU of non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	for k := 0; k < n; k++ {
		p := k
		mx := cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(lu.At(i, k)); v > mx {
				mx, p = v, i
			}
		}
		if mx == 0 || math.IsNaN(mx) {
			return nil, ErrSingular
		}
		pivot[k] = p
		if p != k {
			rk := lu.Data[k*n : (k+1)*n]
			rp := lu.Data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) * inv
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri := lu.Data[i*n+k+1 : (i+1)*n]
			rk := lu.Data[k*n+k+1 : (k+1)*n]
			for j := range ri {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &CLU{lu: lu, pivot: pivot}, nil
}

// SolveVec solves A·x = b, returning x as a new vector.
func (f *CLU) SolveVec(b []complex128) []complex128 {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: CLU solve length %d != %d", len(b), n))
	}
	x := make([]complex128, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : i*n+i]
		s := x[i]
		for k, v := range row {
			s -= v * x[k]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := f.lu.Data[i*n : (i+1)*n]
		for k := i + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveComplex is a convenience wrapper: factorize a and solve a·x = b.
func SolveComplex(a *CMatrix, b []complex128) ([]complex128, error) {
	f, err := NewCLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}

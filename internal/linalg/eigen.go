package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SymEigen computes all eigenvalues (ascending) and the corresponding
// orthonormal eigenvectors of the symmetric matrix a using the cyclic Jacobi
// method. It is used for conditioning diagnostics of GP covariance matrices,
// not on hot paths. Eigenvectors are returned as the columns of V.
func SymEigen(a *Matrix) (vals []float64, V *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("linalg: eigen of non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	A := a.Clone()
	V = Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += A.At(i, j) * A.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := A.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := A.At(p, p), A.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(A, V, p, q, c, s)
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = A.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedV := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedV.Set(r, newCol, V.At(r, oldCol))
		}
	}
	return sortedVals, sortedV, nil
}

// rotate applies the Jacobi rotation J(p,q,θ) to A (two-sided) and
// accumulates it into V (one-sided).
func rotate(A, V *Matrix, p, q int, c, s float64) {
	n := A.Rows
	for k := 0; k < n; k++ {
		akp, akq := A.At(k, p), A.At(k, q)
		A.Set(k, p, c*akp-s*akq)
		A.Set(k, q, s*akp+c*akq)
	}
	for k := 0; k < n; k++ {
		apk, aqk := A.At(p, k), A.At(q, k)
		A.Set(p, k, c*apk-s*aqk)
		A.Set(q, k, s*apk+c*aqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := V.At(k, p), V.At(k, q)
		V.Set(k, p, c*vkp-s*vkq)
		V.Set(k, q, s*vkp+c*vkq)
	}
}

// ConditionNumber estimates the 2-norm condition number of the symmetric
// matrix a via its extreme eigenvalues. Returns +Inf for singular matrices.
func ConditionNumber(a *Matrix) (float64, error) {
	vals, _, err := SymEigen(a)
	if err != nil {
		return 0, err
	}
	if len(vals) == 0 {
		return 1, nil
	}
	lo, hi := math.Abs(vals[0]), math.Abs(vals[len(vals)-1])
	for _, v := range vals {
		if av := math.Abs(v); av < lo {
			lo = av
		} else if av > hi {
			hi = av
		}
	}
	if lo == 0 {
		return math.Inf(1), nil
	}
	return hi / lo, nil
}

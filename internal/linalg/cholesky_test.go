package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds A = BᵀB + n·I, which is SPD with good conditioning.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := randomMatrix(rng, n, n)
	a := b.T().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		c, err := NewCholesky(a)
		if err != nil {
			return false
		}
		llt := c.L.Mul(c.L.T())
		for i := range a.Data {
			if !almostEq(llt.Data[i], a.Data[i], 1e-10) {
				return false
			}
		}
		return c.Jitter == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		c, err := NewCholesky(a)
		if err != nil {
			return false
		}
		got := c.SolveVec(b)
		for i := range x {
			if !almostEq(got[i], x[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// Diagonal matrix: log det is the sum of log diagonal entries.
	a := NewMatrixFrom(3, 3, []float64{
		2, 0, 0,
		0, 3, 0,
		0, 0, 4,
	})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(2) + math.Log(3) + math.Log(4)
	if !almostEq(c.LogDet(), want, 1e-12) {
		t.Fatalf("LogDet = %v, want %v", c.LogDet(), want)
	}
}

func TestCholeskyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPD(rng, 5)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := c.Inverse()
	prod := a.Mul(inv)
	id := Identity(5)
	for i := range prod.Data {
		if !almostEq(prod.Data[i], id.Data[i], 1e-8) {
			t.Fatalf("A·A⁻¹ != I:\n%v", prod)
		}
	}
}

func TestCholeskyJitterRescuesSemidefinite(t *testing.T) {
	// Rank-1 PSD matrix: plain Cholesky fails, jitter should rescue it.
	v := []float64{1, 2, 3}
	a := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, v[i]*v[j])
		}
	}
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("jitter failed to rescue PSD matrix: %v", err)
	}
	if c.Jitter == 0 {
		t.Fatal("expected nonzero jitter for rank-deficient matrix")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{
		1, 2,
		2, 1, // eigenvalues 3 and −1
	})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected failure on an indefinite matrix")
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestForwardBackwardConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 6)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// SolveVec must equal BackwardSolve(ForwardSolve(b)).
	x1 := c.SolveVec(b)
	x2 := c.BackwardSolve(c.ForwardSolve(b))
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("SolveVec disagrees with composed solves")
		}
	}
}

func TestSolveMatColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSPD(rng, 4)
	B := randomMatrix(rng, 4, 3)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	X := c.SolveMat(B)
	AX := a.Mul(X)
	for i := range B.Data {
		if !almostEq(AX.Data[i], B.Data[i], 1e-8) {
			t.Fatal("A·SolveMat(B) != B")
		}
	}
}

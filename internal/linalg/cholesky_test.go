package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds A = BᵀB + n·I, which is SPD with good conditioning.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := randomMatrix(rng, n, n)
	a := b.T().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		c, err := NewCholesky(a)
		if err != nil {
			return false
		}
		llt := c.L.Mul(c.L.T())
		for i := range a.Data {
			if !almostEq(llt.Data[i], a.Data[i], 1e-10) {
				return false
			}
		}
		return c.Jitter == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		c, err := NewCholesky(a)
		if err != nil {
			return false
		}
		got := c.SolveVec(b)
		for i := range x {
			if !almostEq(got[i], x[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// Diagonal matrix: log det is the sum of log diagonal entries.
	a := NewMatrixFrom(3, 3, []float64{
		2, 0, 0,
		0, 3, 0,
		0, 0, 4,
	})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(2) + math.Log(3) + math.Log(4)
	if !almostEq(c.LogDet(), want, 1e-12) {
		t.Fatalf("LogDet = %v, want %v", c.LogDet(), want)
	}
}

func TestCholeskyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPD(rng, 5)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := c.Inverse()
	prod := a.Mul(inv)
	id := Identity(5)
	for i := range prod.Data {
		if !almostEq(prod.Data[i], id.Data[i], 1e-8) {
			t.Fatalf("A·A⁻¹ != I:\n%v", prod)
		}
	}
}

func TestCholeskyJitterRescuesSemidefinite(t *testing.T) {
	// Rank-1 PSD matrix: plain Cholesky fails, jitter should rescue it.
	v := []float64{1, 2, 3}
	a := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, v[i]*v[j])
		}
	}
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("jitter failed to rescue PSD matrix: %v", err)
	}
	if c.Jitter == 0 {
		t.Fatal("expected nonzero jitter for rank-deficient matrix")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{
		1, 2,
		2, 1, // eigenvalues 3 and −1
	})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected failure on an indefinite matrix")
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestForwardBackwardConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 6)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// SolveVec must equal BackwardSolve(ForwardSolve(b)).
	x1 := c.SolveVec(b)
	x2 := c.BackwardSolve(c.ForwardSolve(b))
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("SolveVec disagrees with composed solves")
		}
	}
}

func TestSolveMatColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSPD(rng, 4)
	B := randomMatrix(rng, 4, 3)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	X := c.SolveMat(B)
	AX := a.Mul(X)
	for i := range B.Data {
		if !almostEq(AX.Data[i], B.Data[i], 1e-8) {
			t.Fatal("A·SolveMat(B) != B")
		}
	}
}

// unblockedCholesky is the reference column-by-column algorithm the blocked
// factorization must reproduce bit-identically.
func unblockedCholesky(a *Matrix) (*Matrix, bool) {
	n := a.Rows
	L := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lj := L.Data[j*n : j*n+j]
		for _, v := range lj {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, false
		}
		ljj := math.Sqrt(d)
		L.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := L.Data[i*n : i*n+j]
			for k, v := range lj {
				s -= li[k] * v
			}
			L.Set(i, j, s/ljj)
		}
	}
	return L, true
}

func TestBlockedCholeskyBitIdenticalToUnblocked(t *testing.T) {
	for _, n := range []int{1, 7, cholBlock - 1, cholBlock, cholBlock + 1, 3*cholBlock + 5} {
		rng := rand.New(rand.NewSource(int64(n)))
		a := randomSPD(rng, n)
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ref, ok := unblockedCholesky(a)
		if !ok {
			t.Fatalf("n=%d: reference factorization failed", n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if got, want := c.L.At(i, j), ref.At(i, j); got != want {
					t.Fatalf("n=%d: L[%d,%d] = %v, reference %v", n, i, j, got, want)
				}
			}
		}
	}
}

func TestCholeskyReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a1 := randomSPD(rng, 20)
	a2 := randomSPD(rng, 20)
	fresh1, err := NewCholesky(a1)
	if err != nil {
		t.Fatal(err)
	}
	fresh2, err := NewCholesky(a2)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse fresh1's buffers for a2: result must match a fresh factorization
	// and must reuse the same backing storage.
	reused, err := NewCholeskyReuse(a2, fresh1)
	if err != nil {
		t.Fatal(err)
	}
	if &reused.L.Data[0] != &fresh1.L.Data[0] {
		t.Fatal("NewCholeskyReuse did not reuse the existing factor storage")
	}
	for i := range fresh2.L.Data {
		if reused.L.Data[i] != fresh2.L.Data[i] {
			t.Fatal("reused factorization differs from fresh factorization")
		}
	}
	// Dimension mismatch must fall back to fresh allocation.
	small := randomSPD(rng, 4)
	c2, err := NewCholeskyReuse(small, fresh1)
	if err != nil {
		t.Fatal(err)
	}
	if c2.N != 4 {
		t.Fatalf("reuse with mismatched size returned N=%d", c2.N)
	}
}

func TestSolveIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 10
	a := randomSPD(rng, n)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := c.SolveVec(b)
	got := make([]float64, n)
	c.SolveVecInto(b, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("SolveVecInto disagrees with SolveVec")
		}
	}
	// Aliased in-place solve.
	inPlace := append([]float64(nil), b...)
	c.SolveVecInto(inPlace, inPlace)
	for i := range want {
		if inPlace[i] != want[i] {
			t.Fatal("aliased SolveVecInto disagrees with SolveVec")
		}
	}
	// InverseInto against Inverse.
	inv := c.Inverse()
	dst := NewMatrix(n, n)
	c.InverseInto(dst, make([]float64, n))
	for i := range inv.Data {
		if dst.Data[i] != inv.Data[i] {
			t.Fatal("InverseInto disagrees with Inverse")
		}
	}
}

package linalg

import (
	"math/rand"
	"testing"
)

// factorEq compares the live lower triangles of two factors within tol
// (relative to the larger magnitude).
func factorEq(a, b *Cholesky, tol float64) bool {
	if a.N != b.N {
		return false
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j <= i; j++ {
			if !almostEq(a.L.At(i, j), b.L.At(i, j), tol) {
				return false
			}
		}
	}
	return true
}

// TestAppendRowMatchesFreshFactorization grows factors one bordered update at
// a time over 200 random SPD sequences and pins each intermediate factor to a
// from-scratch factorization of the same leading submatrix.
func TestAppendRowMatchesFreshFactorization(t *testing.T) {
	for seq := 0; seq < 200; seq++ {
		rng := rand.New(rand.NewSource(int64(1000 + seq)))
		nMax := 2 + rng.Intn(24)
		a := randomSPD(rng, nMax)
		n0 := 1 + rng.Intn(nMax)
		lead := NewMatrix(n0, n0)
		for i := 0; i < n0; i++ {
			for j := 0; j < n0; j++ {
				lead.Set(i, j, a.At(i, j))
			}
		}
		c, err := NewCholesky(lead)
		if err != nil {
			t.Fatalf("seq %d: seed factorization: %v", seq, err)
		}
		for n := n0; n < nMax; n++ {
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				row[j] = a.At(n, j)
			}
			if err := c.AppendRow(row, a.At(n, n)); err != nil {
				t.Fatalf("seq %d: append to n=%d: %v", seq, n, err)
			}
			sub := NewMatrix(n+1, n+1)
			for i := 0; i <= n; i++ {
				for j := 0; j <= n; j++ {
					sub.Set(i, j, a.At(i, j))
				}
			}
			fresh, err := NewCholesky(sub)
			if err != nil {
				t.Fatalf("seq %d: fresh factorization n=%d: %v", seq, n+1, err)
			}
			if !factorEq(c, fresh, 1e-9) {
				t.Fatalf("seq %d: incremental factor diverged from fresh at n=%d", seq, n+1)
			}
		}
	}
}

// TestAppendThenDropRestoresFactorBitwise proves DropLast is an exact
// retraction: pushing k bordered rows and popping them returns the original
// factor bit-for-bit (the leading block is never touched by AppendRow).
func TestAppendThenDropRestoresFactorBitwise(t *testing.T) {
	for seq := 0; seq < 200; seq++ {
		rng := rand.New(rand.NewSource(int64(5000 + seq)))
		nMax := 3 + rng.Intn(20)
		a := randomSPD(rng, nMax)
		n0 := 1 + rng.Intn(nMax-1)
		lead := NewMatrix(n0, n0)
		for i := 0; i < n0; i++ {
			for j := 0; j < n0; j++ {
				lead.Set(i, j, a.At(i, j))
			}
		}
		c, err := NewCholesky(lead)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		before := make([]float64, 0, n0*(n0+1)/2)
		for i := 0; i < n0; i++ {
			for j := 0; j <= i; j++ {
				before = append(before, c.L.At(i, j))
			}
		}
		k := nMax - n0
		for n := n0; n < nMax; n++ {
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				row[j] = a.At(n, j)
			}
			if err := c.AppendRow(row, a.At(n, n)); err != nil {
				t.Fatalf("seq %d: append: %v", seq, err)
			}
		}
		c.DropLast(k)
		if c.N != n0 {
			t.Fatalf("seq %d: N=%d after retraction, want %d", seq, c.N, n0)
		}
		idx := 0
		for i := 0; i < n0; i++ {
			for j := 0; j <= i; j++ {
				if c.L.At(i, j) != before[idx] {
					t.Fatalf("seq %d: L[%d,%d] changed across append+drop", seq, i, j)
				}
				idx++
			}
		}
	}
}

// TestRankOneUpdateDowndateRoundTrip checks both directions over 200 random
// SPD matrices: the updated factor matches a fresh factorization of A + vvᵀ,
// and downdating with the same vector returns (within roundoff) the original.
func TestRankOneUpdateDowndateRoundTrip(t *testing.T) {
	for seq := 0; seq < 200; seq++ {
		rng := rand.New(rand.NewSource(int64(9000 + seq)))
		n := 1 + rng.Intn(16)
		a := randomSPD(rng, n)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		orig, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		c.RankOneUpdate(v)
		up := a.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				up.Add(i, j, v[i]*v[j])
			}
		}
		fresh, err := NewCholesky(up)
		if err != nil {
			t.Fatalf("seq %d: fresh updated factorization: %v", seq, err)
		}
		if !factorEq(c, fresh, 1e-8) {
			t.Fatalf("seq %d: rank-1 update diverged from fresh factorization", seq)
		}
		if err := c.RankOneDowndate(v); err != nil {
			t.Fatalf("seq %d: downdate: %v", seq, err)
		}
		if !factorEq(c, orig, 1e-7) {
			t.Fatalf("seq %d: update+downdate did not restore the original factor", seq)
		}
	}
}

func TestRankOneDowndateRejectsIndefinite(t *testing.T) {
	a := Identity(3)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// I − vvᵀ with |v| > 1 is indefinite.
	if err := c.RankOneDowndate([]float64{2, 0, 0}); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite for an indefinite downdate")
	}
}

// TestReuseGrowthDoublesCapacity pins the explicit-growth contract of
// NewCholeskyReuse: growing past the capacity doubles it, and every
// subsequent reuse within the capacity keeps the same backing array.
func TestReuseGrowthDoublesCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c, err := NewCholesky(randomSPD(rng, 10))
	if err != nil {
		t.Fatal(err)
	}
	if c.Cap() != 10 {
		t.Fatalf("fresh capacity %d, want 10", c.Cap())
	}
	c, err = NewCholeskyReuse(randomSPD(rng, 11), c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cap() != 20 {
		t.Fatalf("grown capacity %d, want doubled 20", c.Cap())
	}
	base := &c.L.Data[0]
	for n := 12; n <= 20; n++ {
		c, err = NewCholeskyReuse(randomSPD(rng, n), c)
		if err != nil {
			t.Fatal(err)
		}
		if &c.L.Data[0] != base {
			t.Fatalf("reuse at n=%d reallocated within capacity", n)
		}
	}
}

// TestAppendRowSteadyStateZeroAlloc proves the incremental hot path allocates
// nothing once capacity is available: an append+retract cycle at constant
// size must be allocation-free.
func TestAppendRowSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 32
	a := randomSPD(rng, n+1)
	lead := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lead.Set(i, j, a.At(i, j))
		}
	}
	c, err := NewCholesky(lead)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, n)
	for j := range row {
		row[j] = a.At(n, j)
	}
	d := a.At(n, n)
	// First append grows the storage once; afterwards the cycle is free.
	if err := c.AppendRow(row, d); err != nil {
		t.Fatal(err)
	}
	c.DropLast(1)
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.AppendRow(row, d); err != nil {
			t.Fatal(err)
		}
		c.DropLast(1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state AppendRow+DropLast allocates %v objects per cycle, want 0", allocs)
	}
}

// TestSolvesRespectStride runs the solver entry points on a factor whose
// storage capacity exceeds its logical dimension (post-growth state) and
// checks them against a fresh tight factor.
func TestSolvesRespectStride(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := 12
	a := randomSPD(rng, n)
	tight, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	wide := &Cholesky{L: NewMatrix(40, 40)}
	wide, err = NewCholeskyReuse(a, wide)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Cap() != 40 {
		t.Fatalf("capacity %d, want 40", wide.Cap())
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xw, xt := wide.SolveVec(b), tight.SolveVec(b)
	for i := range xw {
		if xw[i] != xt[i] {
			t.Fatal("SolveVec differs between wide and tight storage")
		}
	}
	if wide.LogDet() != tight.LogDet() {
		t.Fatal("LogDet differs between wide and tight storage")
	}
	iw, it := wide.Inverse(), tight.Inverse()
	for i := range iw.Data {
		if iw.Data[i] != it.Data[i] {
			t.Fatal("Inverse differs between wide and tight storage")
		}
	}
}

func BenchmarkAppendRowSteadyState(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	n := 200
	a := randomSPD(rng, n+1)
	lead := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lead.Set(i, j, a.At(i, j))
		}
	}
	c, err := NewCholesky(lead)
	if err != nil {
		b.Fatal(err)
	}
	row := make([]float64, n)
	for j := range row {
		row[j] = a.At(n, j)
	}
	d := a.At(n, n)
	if err := c.AppendRow(row, d); err != nil {
		b.Fatal(err)
	}
	c.DropLast(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.AppendRow(row, d); err != nil {
			b.Fatal(err)
		}
		c.DropLast(1)
	}
}

package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when an LU factorization encounters a pivot that is
// exactly zero (the matrix is singular to working precision).
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds a row-pivoted LU factorization P·A = L·U packed into a single
// matrix (unit lower triangle implicit). It is the general-purpose solver used
// by the circuit simulator, where matrices are square but not symmetric.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  int
}

// NewLU factorizes the square matrix a with partial pivoting. a is not
// modified.
func NewLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: LU of non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		mx := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > mx {
				mx, p = v, i
			}
		}
		if mx == 0 {
			return nil, ErrSingular
		}
		pivot[k] = p
		if p != k {
			rk := lu.Data[k*n : (k+1)*n]
			rp := lu.Data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			sign = -sign
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) * inv
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri := lu.Data[i*n+k+1 : (i+1)*n]
			rk := lu.Data[k*n+k+1 : (k+1)*n]
			for j := range ri {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// SolveVec solves A·x = b, returning x as a new vector.
func (f *LU) SolveVec(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: LU solve length %d != %d", len(b), n))
	}
	x := make([]float64, n)
	copy(x, b)
	// Apply permutation.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : i*n+i]
		s := x[i]
		for k, v := range row {
			s -= v * x[k]
		}
		x[i] = s
	}
	// Backward substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := f.lu.Data[i*n : (i+1)*n]
		for k := i + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x
}

// Det returns the determinant of A.
func (f *LU) Det() float64 {
	n := f.lu.Rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLinear is a convenience wrapper: factorize a and solve a·x = b.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}

package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomMatrix(rng, n, n)
		// Diagonal dominance guarantees nonsingularity.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+1)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLURequiresPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewMatrixFrom(2, 2, []float64{
		0, 1,
		1, 0,
	})
	x, err := SolveLinear(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 7, 1e-14) || !almostEq(x[1], 3, 1e-14) {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{
		1, 2,
		2, 4,
	})
	if _, err := NewLU(a); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{
		3, 1,
		4, 2,
	})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 2, 1e-12) {
		t.Fatalf("Det = %v, want 2", f.Det())
	}
	// Row-swapped matrix should negate the determinant.
	b := NewMatrixFrom(2, 2, []float64{
		4, 2,
		3, 1,
	})
	g, err := NewLU(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(g.Det(), -2, 1e-12) {
		t.Fatalf("Det = %v, want -2", g.Det())
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := NewLU(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestLUDoesNotModifyInput(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	orig := a.Clone()
	if _, err := NewLU(a); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != orig.Data[i] {
			t.Fatal("NewLU modified its input")
		}
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{
		5, 0, 0,
		0, 1, 0,
		0, 0, 3,
	})
	vals, _, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	for i := range want {
		if !almostEq(vals[i], want[i], 1e-10) {
			t.Fatalf("eigenvalues = %v, want %v", vals, want)
		}
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomSPD(rng, 5)
	vals, V, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	// A ≈ V·diag(vals)·Vᵀ
	D := NewMatrix(5, 5)
	for i, v := range vals {
		D.Set(i, i, v)
	}
	recon := V.Mul(D).Mul(V.T())
	for i := range a.Data {
		if !almostEq(recon.Data[i], a.Data[i], 1e-8) {
			t.Fatal("eigendecomposition does not reconstruct A")
		}
	}
	// Eigenvalues of an SPD matrix must be positive.
	for _, v := range vals {
		if v <= 0 {
			t.Fatalf("non-positive eigenvalue %v for SPD matrix", v)
		}
	}
}

func TestConditionNumber(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{
		10, 0,
		0, 2,
	})
	k, err := ConditionNumber(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(k, 5, 1e-9) {
		t.Fatalf("cond = %v, want 5", k)
	}
	sing := NewMatrixFrom(2, 2, []float64{1, 1, 1, 1})
	k, err = ConditionNumber(sing)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(k, 1) {
		t.Fatalf("cond of singular = %v, want +Inf", k)
	}
}

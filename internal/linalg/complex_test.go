package linalg

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCMatrix(rng *rand.Rand, n int) *CMatrix {
	m := NewCMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	// Diagonal dominance for guaranteed nonsingularity.
	for i := 0; i < n; i++ {
		m.Add(i, i, complex(float64(2*n), 0))
	}
	return m
}

func TestCLUSolveRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomCMatrix(rng, n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := a.MulVec(x)
		got, err := SolveComplex(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(got[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCLUPurelyImaginary(t *testing.T) {
	// [[ j, 0], [0, -j]]·x = [j, j] → x = [1, -1].
	a := NewCMatrix(2, 2)
	a.Set(0, 0, complex(0, 1))
	a.Set(1, 1, complex(0, -1))
	x, err := SolveComplex(a, []complex128{complex(0, 1), complex(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-1) > 1e-14 || cmplx.Abs(x[1]+1) > 1e-14 {
		t.Fatalf("x = %v", x)
	}
}

func TestCLURequiresPivoting(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	x, err := SolveComplex(a, []complex128{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-7) > 1e-14 || cmplx.Abs(x[1]-3) > 1e-14 {
		t.Fatalf("x = %v", x)
	}
}

func TestCLUSingular(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := NewCLU(a); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestCLUNonSquare(t *testing.T) {
	if _, err := NewCLU(NewCMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestCLUDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomCMatrix(rng, 3)
	orig := a.Clone()
	if _, err := NewCLU(a); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != orig.Data[i] {
			t.Fatal("NewCLU modified its input")
		}
	}
}

func TestCMatrixMulVecShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCMatrix(2, 2).MulVec(make([]complex128, 3))
}

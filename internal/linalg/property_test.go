package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Cholesky and LU must agree on SPD systems.
func TestCholeskyLUConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		xc := ch.SolveVec(b)
		xl, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range xc {
			if !almostEq(xc[i], xl[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// log|A| from Cholesky must equal log of the LU determinant on SPD input.
func TestLogDetConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		lu, err := NewLU(a)
		if err != nil {
			return false
		}
		det := lu.Det()
		if det <= 0 {
			return false // SPD determinant must be positive
		}
		return almostEq(ch.LogDet(), math.Log(det), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Eigenvalue sum equals trace; eigenvalue product equals determinant.
func TestEigenTraceDetInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(5)
		a := randomSPD(rng, n)
		vals, _, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		sum, prod := 0.0, 1.0
		for _, v := range vals {
			sum += v
			prod *= v
		}
		if !almostEq(sum, a.Trace(), 1e-8) {
			t.Fatalf("eigen sum %v != trace %v", sum, a.Trace())
		}
		lu, err := NewLU(a)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(prod, lu.Det(), 1e-6) {
			t.Fatalf("eigen product %v != det %v", prod, lu.Det())
		}
	}
}

// Solving with the identity returns the RHS unchanged.
func TestSolveIdentity(t *testing.T) {
	f := func(b0, b1, b2 float64) bool {
		if math.IsNaN(b0) || math.IsInf(b0, 0) ||
			math.IsNaN(b1) || math.IsInf(b1, 0) ||
			math.IsNaN(b2) || math.IsInf(b2, 0) {
			return true
		}
		b := []float64{b0, b1, b2}
		x, err := SolveLinear(Identity(3), b)
		if err != nil {
			return false
		}
		for i := range b {
			if x[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
